package iorchestra

// Monitor measurement coverage under degraded devices: a slow RAID
// member (member=INDEX:FACTOR fault, docs/FAULTS.md) must surface
// through the sanctioned Monitor read surface — HostPathP99 from the
// recorder's host-path histograms and the per-core MeanLatency samples
// of CoreSnapshot — because those are exactly the inputs the federation
// registry publishes and the G-state controller's latency verdict
// consumes. A degradation the Monitor cannot see is one no policy can
// react to.

import (
	"testing"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
)

// monitorDegradedRun drives a fixed congestion-prone population on the
// dedicated-core SDC topology (the only mode with per-core latency
// classes) and returns the platform for Monitor inspection.
func monitorDegradedRun(t *testing.T, faultSpec string, extra ...Option) *Platform {
	t.Helper()
	opts := append([]Option{WithTracing(1 << 18)}, extra...)
	if faultSpec != "" {
		spec, err := ParseFaultSpec(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithFaults(spec))
	}
	p := NewPlatform(SystemSDC, 99, opts...)
	congestProneVM(p, 0)
	congestProneVM(p, 1)
	p.RunFor(4 * Second)
	if d := p.Trace.Dropped(); d > 0 {
		t.Fatalf("trace ring evicted %d records; raise the cap", d)
	}
	return p
}

// TestMonitorHostPathP99UnderSlowMember pins that a slow member inflates
// the Monitor's p99 host-path latency relative to the same seed healthy.
func TestMonitorHostPathP99UnderSlowMember(t *testing.T) {
	healthy := monitorDegradedRun(t, "")
	degraded := monitorDegradedRun(t, "member=0:8")

	hp99 := healthy.Host.Monitor().HostPathP99()
	dp99 := degraded.Host.Monitor().HostPathP99()
	if hp99 <= 0 {
		t.Fatalf("healthy HostPathP99 = %v, want > 0 (tracing is on and I/O completed)", hp99)
	}
	if dp99 <= hp99 {
		t.Fatalf("slow member did not inflate HostPathP99: healthy %v, degraded %v", hp99, dp99)
	}
}

// maxCoreLatency samples the per-class (per dedicated I/O core)
// trailing-window mean latencies and returns the worst, failing on any
// class that reports no traffic or a non-positive mean.
func maxCoreLatency(t *testing.T, p *Platform) float64 {
	t.Helper()
	cs := p.Host.Monitor().CoreSnapshot(p.Kernel.Now())
	if !cs.AnyTraffic {
		t.Fatal("no I/O core processed any request")
	}
	if len(cs.Latencies) == 0 {
		t.Fatal("CoreSnapshot has no latency classes on the dedicated-core topology")
	}
	worst := 0.0
	for i, l := range cs.Latencies {
		if l <= 0 {
			t.Fatalf("core %d mean latency = %v, want > 0 under sustained streams", i, l)
		}
		if l > worst {
			worst = l
		}
	}
	return worst
}

// TestMonitorCoreLatencyClasses pins the per-class MeanLatency surface:
// a core-side bottleneck (expensive polling cores) must raise the
// per-class means well above the 100µs idle floor, while a device-side
// slow member must NOT be misattributed to the cores — its per-class
// means stay at the healthy level even as HostPathP99 inflates (pinned
// above). The split is what lets a controller tell "cores are the
// bottleneck" from "the array is degraded".
func TestMonitorCoreLatencyClasses(t *testing.T) {
	healthy := maxCoreLatency(t, monitorDegradedRun(t, ""))
	slowCores := maxCoreLatency(t, monitorDegradedRun(t, "",
		WithHostConfig(hypervisor.Config{IOCoreCostPerReq: 2 * sim.Millisecond})))
	slowMember := maxCoreLatency(t, monitorDegradedRun(t, "member=0:8"))

	if slowCores <= 2*healthy {
		t.Fatalf("expensive cores did not raise per-class mean latency: healthy %g, slow cores %g", healthy, slowCores)
	}
	if slowMember > 1.5*healthy {
		t.Fatalf("device-side slow member misattributed to the cores: healthy %g, slow member %g", healthy, slowMember)
	}
}

package iorchestra

// Integration tests: end-to-end flows across the full stack — workload →
// guest I/O stack → paravirtual path → host → device, with the control
// plane observing and intervening. These complement the per-package unit
// tests by asserting the emergent behaviours the experiments rely on.

import (
	"testing"

	"iorchestra/internal/apps"
	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/store"
	"iorchestra/internal/workload"
)

func TestIntegrationFlushPolicyKeepsCachesCleanerThanBaseline(t *testing.T) {
	dirtyIntegral := func(sys System) float64 {
		p := NewPlatform(sys, 11, WithPolicies(Policies{Flush: true}))
		var vms []*VM
		for i := 0; i < 4; i++ {
			rt := p.NewVM(1, 1, guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
				TotalPages: (1 << 30) / pagecache.PageSize,
				DirtyRatio: 0.4, BackgroundRatio: 0.2, WritebackWindow: 64}})
			fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
				Threads: 2, MeanFileSize: 1 << 20, Think: 6 * Millisecond,
				WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
				BurstOn: Second, BurstOff: 2 * Second,
			}, p.Rng.Fork(string(rune('a'+i))))
			fs.Start()
			vms = append(vms, rt)
		}
		// Sample dirty bytes periodically.
		var integral float64
		for step := 0; step < 60; step++ {
			p.RunFor(500 * Millisecond)
			for _, vm := range vms {
				integral += float64(vm.G.Disks()[0].Cache.DirtyBytes())
			}
		}
		return integral
	}
	base := dirtyIntegral(SystemBaseline)
	io := dirtyIntegral(SystemIOrchestra)
	if io >= base {
		t.Fatalf("IOrchestra dirty integral %.0f not below baseline %.0f", io, base)
	}
}

func TestIntegrationCongestionVetoUnderRealWorkload(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 12, WithPolicies(Policies{Congestion: true}))
	rt := p.NewVM(2, 2, guest.DiskConfig{
		Name:        "xvda",
		QueueConfig: blkio.Config{Limit: 48, DispatchWindow: 16, MaxMerge: 64 << 10},
		MaxTransfer: 64 << 10,
	})
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 6, 64<<20, 1<<20, p.Rng.Fork("ms"))
	ms.Start()
	p.RunFor(5 * Second)
	if p.Manager.Counters().Vetoes == 0 {
		t.Fatal("no vetoes despite queue pressure on an idle array")
	}
	drv := p.Manager.Driver(rt.G.ID())
	if drv.Releases() == 0 {
		t.Fatal("driver never released its queue")
	}
	if ms.Ops().Completed() == 0 {
		t.Fatal("workload made no progress")
	}
}

func TestIntegrationStoreTrafficFlowsBothWays(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 13)
	rt := p.NewVM(2, 2)
	proc := rt.G.NewProcess(1)
	for i := 0; i < 50; i++ {
		rt.G.Disks()[0].Write(proc, 1<<20, nil)
	}
	p.RunFor(2 * Second)
	reads, writes, notifies := p.Host.Store().Stats()
	if writes == 0 || notifies == 0 {
		t.Fatalf("store idle: reads=%d writes=%d notifies=%d", reads, writes, notifies)
	}
	// The guest's dirty state must be visible to Dom0 under the paper's
	// key layout.
	v, err := p.Host.Store().Read(store.Dom0,
		store.DomainPath(rt.G.ID())+"/virt-dev/xvda/has_dirty_pages")
	if err != nil {
		t.Fatalf("Dom0 cannot read guest state: %v", err)
	}
	if v != "0" && v != "1" {
		t.Fatalf("has_dirty_pages = %q", v)
	}
}

func TestIntegrationIsolationGuestsCannotTouchEachOther(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 14)
	a := p.NewVM(1, 1)
	b := p.NewVM(1, 1)
	// Guest B attempts to read and clobber guest A's policy keys.
	pathA := store.DomainPath(a.G.ID()) + "/virt-dev/xvda/flush_now"
	if _, err := p.Host.Store().Read(b.G.ID(), pathA); err == nil {
		t.Fatal("guest B read guest A's keys")
	}
	if err := p.Host.Store().Write(b.G.ID(), pathA, "1"); err == nil {
		t.Fatal("guest B wrote guest A's keys")
	}
}

func TestIntegrationFourSystemsCompleteSameWorkload(t *testing.T) {
	for _, sys := range Systems() {
		p := NewPlatform(sys, 15)
		cl := func() *apps.CassandraCluster {
			var nodes []*apps.CassandraNode
			for i := 0; i < 2; i++ {
				vm := p.NewVM(2, 4)
				nodes = append(nodes, apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0],
					apps.CassandraConfig{}, p.Rng.Fork(string(rune('x'+i)))))
			}
			return apps.NewCassandraCluster(p.Kernel, nodes, p.Rng.Fork("cl"))
		}()
		run := workload.NewYCSBOpenLoop(p.Kernel, workload.YCSB1(), cl, 1000, 2000, p.Rng.Fork("gen"))
		run.Gen.Start()
		p.RunFor(30 * Second)
		if got := run.Rec.Completed(); got != 2000 {
			t.Fatalf("%v: completed %d/2000 ops", sys, got)
		}
		if run.Rec.Latency.Mean() <= 0 {
			t.Fatalf("%v: degenerate latency", sys)
		}
	}
}

func TestIntegrationPairedSeedsAcrossSystems(t *testing.T) {
	// The same seed must produce identical workload draws on different
	// systems: operation counts at a fixed horizon may differ (policies
	// change service times) but issued request sequences must match. We
	// verify via open-loop issue counts, which depend only on the
	// generator's stream.
	counts := map[System]uint64{}
	for _, sys := range Systems() {
		p := NewPlatform(sys, 16)
		vm := p.NewVM(2, 4)
		n := apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0], apps.CassandraConfig{}, p.Rng.Fork("n"))
		cl := apps.NewCassandraCluster(p.Kernel, []*apps.CassandraNode{n}, p.Rng.Fork("cl"))
		run := workload.NewYCSBOpenLoop(p.Kernel, workload.YCSB1(), cl, 500, 0, p.Rng.Fork("gen"))
		run.Gen.Start()
		p.RunFor(10 * Second)
		counts[sys] = run.Rec.Started()
	}
	for _, sys := range Systems()[1:] {
		if counts[sys] != counts[SystemBaseline] {
			t.Fatalf("issue counts diverged: %v=%d baseline=%d",
				sys, counts[sys], counts[SystemBaseline])
		}
	}
}

func TestIntegrationCoschedBalancesBigVM(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 17,
		WithPolicies(Policies{Cosched: true}),
		WithHostConfig(HostConfig{Sockets: 2, CoresPerSocket: 6,
			IOCoreCostPerReq: 10 * Microsecond, IOCoreBps: 2e9}))
	rt := p.NewVM(10, 10, guest.DiskConfig{Name: "xvda", MaxTransfer: 256 << 10})
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 4, 128<<20, 1<<20, p.Rng.Fork("ms"))
	ms.Start()
	p.RunFor(10 * Second)
	w := rt.G.ProcessWeightBySocket()
	if w[0] == 0 || w[1] == 0 {
		t.Fatalf("co-scheduling left sockets unbalanced: %v", w)
	}
	c0, c1 := p.Host.IOCores()[0], p.Host.IOCores()[1]
	if c0.Processed() == 0 || c1.Processed() == 0 {
		t.Fatalf("one core idle: %d/%d", c0.Processed(), c1.Processed())
	}
}

func TestIntegrationDeterministicEndToEnd(t *testing.T) {
	run := func() (uint64, Time) {
		p := NewPlatform(SystemIOrchestra, 18)
		rt := p.NewVM(2, 2)
		fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{Threads: 2}, p.Rng.Fork("fs"))
		fs.Start()
		p.RunFor(5 * Second)
		return fs.Ops().Completed(), fs.Ops().Latency.Max()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", c1, m1, c2, m2)
	}
	if c1 == 0 {
		t.Fatal("no work done")
	}
}

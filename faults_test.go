package iorchestra

// Fault-injection acceptance tests (ISSUE PR 2): with 100% uncooperative
// guests IOrchestra must match Baseline throughput within 5%, and every
// injected timeout/fallback must surface as a typed trace event that
// survives the NDJSON export cmd/iorchestra-trace consumes.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"iorchestra/internal/core"
	"iorchestra/internal/fault"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
	"iorchestra/internal/workload"
)

// faultFSVM is flushProneVM returning the workload for throughput
// accounting.
func faultFSVM(p *Platform, i int) *workload.FS {
	rt := p.NewVM(1, 1, guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages:      (1 << 30) / pagecache.PageSize,
			DirtyRatio:      0.2,
			BackgroundRatio: 0.1,
			WritebackWindow: 64,
		},
	})
	fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
		Threads: 2, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
		WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
		BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
	}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
	fs.Start()
	return fs
}

func runFaultPoint(t *testing.T, sys System, spec FaultSpec) float64 {
	t.Helper()
	p := NewPlatform(sys, 42,
		WithPolicies(Policies{Flush: true, Congestion: true}),
		WithFaults(spec))
	var written float64
	var fss []*workload.FS
	for i := 0; i < 4; i++ {
		fss = append(fss, faultFSVM(p, i))
	}
	p.RunFor(8 * Second)
	for _, fs := range fss {
		written += fs.WrittenBytes()
	}
	return written
}

// With every guest uncooperative the manager has nobody to manage:
// IOrchestra must degrade to Baseline, not below it.
func TestFullyUncooperativeMatchesBaseline(t *testing.T) {
	spec := FaultSpec{Uncoop: 1}
	base := runFaultPoint(t, SystemBaseline, spec)
	io := runFaultPoint(t, SystemIOrchestra, spec)
	if base == 0 {
		t.Fatal("baseline wrote nothing")
	}
	if delta := math.Abs(io-base) / base; delta > 0.05 {
		t.Fatalf("100%% uncoop: IOrchestra %.1f MB vs Baseline %.1f MB (%.1f%% apart, want <= 5%%)",
			io/1e6, base/1e6, delta*100)
	}
}

// Every injected fault and every degradation decision must appear as a
// typed trace event, and the stream must survive the NDJSON cycle.
func TestInjectedTimeoutsAreTypedTraceEvents(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 42,
		WithTracing(0),
		WithPolicies(Policies{Flush: true}),
		WithManagerConfig(core.ManagerConfig{
			FlushTimeout:    100 * sim.Millisecond,
			FlushCooldown:   50 * sim.Millisecond,
			FallbackPenalty: sim.Hour, // keep the guests demoted for assertions
		}),
		WithFaults(FaultSpec{StuckSyncProb: 1}))
	for i := 0; i < 4; i++ {
		faultFSVM(p, i)
	}
	p.RunFor(10 * Second)
	if p.Faults == nil || p.Faults.Count("stucksync") == 0 {
		t.Fatal("no stuck syncs injected")
	}
	requireKinds(t, p.Trace, trace.KindFaultInject, trace.KindFlushTimeout,
		trace.KindFallbackEnter)
	if p.Manager.Counters().FlushTimeouts == 0 || p.Manager.Counters().Fallbacks == 0 {
		t.Fatalf("degradation counters empty: timeouts=%d fallbacks=%d",
			p.Manager.Counters().FlushTimeouts, p.Manager.Counters().Fallbacks)
	}
	// Counters and trace agree: every timeout/fallback the manager counted
	// is a typed event in the stream.
	if got := p.Trace.Count(trace.KindFlushTimeout); got != p.Manager.Counters().FlushTimeouts {
		t.Fatalf("flush.timeout events %d != counter %d", got, p.Manager.Counters().FlushTimeouts)
	}
	if got := p.Trace.Count(trace.KindFallbackEnter); got != p.Manager.Counters().Fallbacks {
		t.Fatalf("fallback.enter events %d != counter %d", got, p.Manager.Counters().Fallbacks)
	}
	// NDJSON round trip preserves the typed events.
	var buf bytes.Buffer
	if err := p.Trace.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]uint64{}
	for _, e := range back {
		counts[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindFaultInject, trace.KindFlushTimeout, trace.KindFallbackEnter} {
		if counts[k] == 0 {
			t.Fatalf("no %s events after NDJSON round trip", k)
		}
	}
}

// A crashed-and-restarted driver round-trips through fallback.enter and
// fallback.exit, driven end-to-end by the -faults grammar.
func TestCrashRestartRoundTripViaSpec(t *testing.T) {
	spec, err := fault.ParseSpec("crash=1@1s+2s")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(SystemIOrchestra, 42, WithTracing(0),
		WithPolicies(Policies{Flush: true}), WithFaults(spec))
	fs := faultFSVM(p, 0)
	_ = fs
	p.RunFor(6 * Second)
	if p.Faults.Count("crash") != 1 || p.Faults.Count("restart") != 1 {
		t.Fatalf("crash/restart schedule wrong: %v", p.Faults.Counts())
	}
	if p.Manager.Counters().Fallbacks == 0 || p.Manager.Counters().Restores == 0 {
		t.Fatalf("fallbacks=%d restores=%d, want both > 0",
			p.Manager.Counters().Fallbacks, p.Manager.Counters().Restores)
	}
	requireKinds(t, p.Trace, trace.KindHeartbeatMiss,
		trace.KindFallbackEnter, trace.KindFallbackExit)
}

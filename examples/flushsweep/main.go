// Command flushsweep demonstrates the cross-domain flush policy (Sec. 5.3,
// Fig. 8): a population of write-bursting fileserver VMs on one host, with
// and without IOrchestra's Algorithm 1, sweeping the VM count. It prints
// accepted write throughput and the policy's activity counters.
//
//	go run ./examples/flushsweep
package main

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/workload"
)

func run(sys iorchestra.System, vms int) (mbps float64, notices uint64) {
	p := iorchestra.NewPlatform(sys, 42,
		iorchestra.WithPolicies(iorchestra.Policies{Flush: true}))
	var gens []*workload.FS
	for i := 0; i < vms; i++ {
		rt := p.NewVM(1, 1, guest.DiskConfig{
			Name: "xvda",
			CacheConfig: pagecache.Config{
				TotalPages:      (1 << 30) / pagecache.PageSize,
				DirtyRatio:      0.2,
				BackgroundRatio: 0.1,
				WritebackWindow: 64,
			},
		})
		fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
			Threads:      2,
			MeanFileSize: 1 << 20,
			Think:        6 * iorchestra.Millisecond,
			WriteFrac:    0.8, AppendFrac: 0.1, ReadFrac: 0.05,
			BurstOn:  1500 * iorchestra.Millisecond,
			BurstOff: 3500 * iorchestra.Millisecond,
		}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
		gens = append(gens, fs)
	}
	for _, g := range gens {
		g.Start()
	}
	const dur = 30 * iorchestra.Second
	p.RunFor(dur)
	var total float64
	for _, g := range gens {
		total += g.WrittenBytes()
	}
	if p.Manager != nil {
		notices = p.Manager.Counters().FlushNotices
	}
	return total / dur.Seconds() / 1e6, notices
}

func main() {
	fmt.Println("cross-domain flush control: bursty fileserver VMs, 30 s per point")
	fmt.Printf("%4s %18s %18s %12s %14s\n", "VMs", "baseline (MB/s)", "IOrchestra (MB/s)", "gain", "flush notices")
	for _, vms := range []int{2, 6, 10, 14, 18} {
		base, _ := run(iorchestra.SystemBaseline, vms)
		io, notices := run(iorchestra.SystemIOrchestra, vms)
		fmt.Printf("%4d %18.1f %18.1f %11.1f%% %14d\n",
			vms, base, io, (io-base)/base*100, notices)
	}
	fmt.Println("\nThe management module tells the guest with the most dirty pages to")
	fmt.Println("sync() whenever the array is quiet (Algorithm 1); pre-cleaned caches")
	fmt.Println("absorb the next write burst at memory speed instead of blocking.")
}

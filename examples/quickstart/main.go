// Command quickstart is the minimal IOrchestra demonstration: the paper's
// Sec. 2 motivation test. Two VMs each run eight concurrent sequential
// readers; Linux's congestion-avoidance scheme falsely triggers on the
// guests' request queues even though the shared array is not saturated.
// The demo runs the stock baseline, the avoidance-disabled configuration,
// and IOrchestra's collaborative congestion control, and prints the
// resulting read latencies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/workload"
)

func main() {
	fmt.Println("IOrchestra quickstart — Sec. 2 motivation test")
	fmt.Println("two VMs x eight 1-GiB streams on a shared RAID0 array, 10 s")
	fmt.Println()

	type variant struct {
		name       string
		sys        iorchestra.System
		controller blkio.CongestionController
	}
	variants := []variant{
		{"baseline (avoidance on)", iorchestra.SystemBaseline, nil},
		{"avoidance disabled", iorchestra.SystemBaseline, blkio.NeverController{}},
		{"IOrchestra (collaborative)", iorchestra.SystemIOrchestra, nil},
	}

	for _, v := range variants {
		p := iorchestra.NewPlatform(v.sys, 42,
			iorchestra.WithPolicies(iorchestra.Policies{Congestion: true}))
		var gens []*workload.MultiStream
		for i := 0; i < 2; i++ {
			dc := guest.DiskConfig{
				Name:        "xvda",
				QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
				MaxTransfer: 64 << 10,
			}
			if v.controller != nil {
				dc.QueueConfig.Controller = v.controller
			}
			vm := p.NewVM(4, 4, dc)
			ms := workload.NewMultiStream(p.Kernel, vm.G, vm.G.Disks()[0],
				8, 1<<30, 1<<20, p.Rng.Fork(fmt.Sprintf("ms%d", i)))
			ms.Start()
			gens = append(gens, ms)
		}
		p.RunFor(10 * iorchestra.Second)

		var reads uint64
		var meanSum float64
		var p999 float64
		for _, g := range gens {
			h := g.Ops().Latency
			reads += h.Count()
			meanSum += h.Mean().Milliseconds() * float64(h.Count())
			if v := h.Percentile(99.9).Milliseconds(); v > p999 {
				p999 = v
			}
		}
		fmt.Printf("%-28s mean %6.2f ms   p99.9 %7.2f ms   (%d reads)\n",
			v.name, meanSum/float64(reads), p999, reads)
	}

	fmt.Println()
	fmt.Println("Falsely triggered congestion avoidance inflates the tail by an")
	fmt.Println("order of magnitude; IOrchestra's host-informed veto (Algorithm 2)")
	fmt.Println("recovers the avoidance-off behaviour without giving up the")
	fmt.Println("protection when the host really is congested.")
}

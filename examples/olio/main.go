// Command olio runs the paper's flagship multi-tier scenario (Sec. 5.1):
// a three-VM Olio deployment (Apache+PHP web tier, MySQL database tier,
// file-server tier) plus two two-node Cassandra stores serving YCSB1 and
// YCSB2, all on one host, under Baseline and IOrchestra. It prints
// per-application and per-tier latencies — the data behind Figs. 4–6.
//
//	go run ./examples/olio
package main

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/workload"
)

func cassandraDisk() guest.DiskConfig {
	return guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages:      (128 << 20) / pagecache.PageSize,
			DirtyRatio:      0.6,
			BackgroundRatio: 0.35,
		},
	}
}

func fmtHist(name string, h *metrics.Histogram, ms bool) string {
	if ms {
		return fmt.Sprintf("  %-22s mean %8.2f ms   p99 %8.2f ms   p99.9 %8.2f ms",
			name, h.Mean().Milliseconds(), h.Percentile(99).Milliseconds(),
			h.Percentile(99.9).Milliseconds())
	}
	return fmt.Sprintf("  %-22s mean %8.0f us   p99 %8.0f us   p99.9 %8.0f us",
		name, h.Mean().Microseconds(), h.Percentile(99).Microseconds(),
		h.Percentile(99.9).Microseconds())
}

func main() {
	fmt.Println("Olio + 2x Cassandra on one host — 200 CloudStone clients,")
	fmt.Println("YCSB1/YCSB2 at 2000 req/s each, 30 s of virtual time")

	for _, sys := range []iorchestra.System{iorchestra.SystemBaseline, iorchestra.SystemIOrchestra} {
		p := iorchestra.NewPlatform(sys, 42)
		k := p.Kernel

		mkStore := func(label string) *apps.CassandraCluster {
			var nodes []*apps.CassandraNode
			for i := 0; i < 2; i++ {
				vm := p.NewVM(2, 4, cassandraDisk())
				nodes = append(nodes, apps.NewCassandraNode(k, vm.G, vm.G.Disks()[0],
					apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("%s%d", label, i))))
			}
			return apps.NewCassandraCluster(k, nodes, p.Rng.Fork(label))
		}
		s1, s2 := mkStore("cass1"), mkStore("cass2")
		y1 := workload.NewYCSBOpenLoop(k, workload.YCSB1(), s1, 2000, 0, p.Rng.Fork("y1"))
		y2 := workload.NewYCSBOpenLoop(k, workload.YCSB2(), s2, 2000, 0, p.Rng.Fork("y2"))

		web, db, fs := p.NewVM(2, 4), p.NewVM(2, 4), p.NewVM(2, 4)
		olio := apps.NewOlio(k, web.G, db.G, fs.G, apps.OlioConfig{}, p.Rng.Fork("olio"))
		faban := workload.NewClosedLoop(k, 200, iorchestra.Second, olio.Request, p.Rng.Fork("faban"))

		faban.Start()
		y1.Gen.Start()
		y2.Gen.Start()
		p.RunFor(30 * iorchestra.Second)

		fmt.Printf("\n=== %s ===\n", sys)
		fmt.Println(fmtHist("Olio (end-to-end)", olio.WebLatency(), true))
		fmt.Println(fmtHist("Olio database tier", olio.DBLatency(), true))
		fmt.Println(fmtHist("Olio file-server tier", olio.FSLatency(), true))
		fmt.Println(fmtHist("YCSB1 (update-heavy)", y1.Rec.Latency, false))
		fmt.Println(fmtHist("YCSB2 (read-mostly)", y2.Rec.Latency, false))
		if p.Manager != nil {
			fmt.Printf("  policy activity: %d flush notices, %d congestion vetoes, %d co-sched runs\n",
				p.Manager.Counters().FlushNotices, p.Manager.Counters().Vetoes, p.Manager.Counters().CoschedRuns)
		}
	}
}

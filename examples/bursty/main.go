// Command bursty reproduces the Sec. 5.6 scenario interactively: YCSB1
// against a two-node Cassandra store under skewed inter-arrival times
// (synchronized bursts at ten times the average rate), comparing all four
// systems at one load level.
//
//	go run ./examples/bursty
package main

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/workload"
)

func main() {
	const (
		rate  = 600 // average req/s
		burst = 100 * iorchestra.Millisecond
	)
	fmt.Printf("bursty YCSB1: %d req/s average, 10x bursts of %v every 500 ms, 30 s\n\n", rate, burst)
	fmt.Printf("%-12s %10s %10s %10s\n", "system", "mean(us)", "p99(us)", "p99.9(us)")

	for _, sys := range iorchestra.Systems() {
		p := iorchestra.NewPlatform(sys, 42,
			iorchestra.WithManagerConfig(core.ManagerConfig{
				MinFlushBytes: 24 << 20,
				FlushCooldown: iorchestra.Second,
			}))
		var nodes []*apps.CassandraNode
		for i := 0; i < 2; i++ {
			vm := p.NewVM(2, 4, guest.DiskConfig{
				Name: "xvda",
				CacheConfig: pagecache.Config{
					TotalPages:      (128 << 20) / pagecache.PageSize,
					DirtyRatio:      0.6,
					BackgroundRatio: 0.35,
				},
			})
			nodes = append(nodes, apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0],
				apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("node%d", i))))
		}
		cl := apps.NewCassandraCluster(p.Kernel, nodes, p.Rng.Fork("cl"))
		run := workload.NewYCSBBursty(p.Kernel, workload.YCSB1(), cl,
			rate, burst, 500*iorchestra.Millisecond, 0, p.Rng.Fork("gen"))
		run.Gen.Start()
		p.RunFor(30 * iorchestra.Second)
		h := run.Rec.Latency
		fmt.Printf("%-12s %10.0f %10.0f %10.0f\n", sys,
			h.Mean().Microseconds(), h.Percentile(99).Microseconds(),
			h.Percentile(99.9).Microseconds())
	}
	fmt.Println("\nThe baseline's tail blows past a millisecond once bursts collide")
	fmt.Println("with uncoordinated flushing; IOrchestra keeps the tail flat.")
}

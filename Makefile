# Standard verification pipeline: `make check` is what CI runs.
GO ?= go

.PHONY: all build fmt vet lint test race bench check chaos experiments clean

all: check

build:
	$(GO) build ./...

# Fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-invariant static analysis (internal/analysis, docs/LINTING.md):
# determinism, store key schema, watch-handler re-entrancy, the Monitor
# read contract, the trace/counter mirror, and deprecation hygiene.
lint:
	$(GO) run ./cmd/iorchestra-vet ./...

test:
	$(GO) test ./...

# The race run covers the concurrent watch-table paths in internal/store.
race:
	$(GO) test -race ./...

# Manager-tick microbenchmarks (all three policies over 8 guests), then
# the netstore wire-protocol load bench: 64 live clients plus stalled
# watchers against an in-process server, writing BENCH_netstore.json at
# the repo root (schema in cmd/netstore-load/main.go).
bench:
	$(GO) test -run '^$$' -bench BenchmarkManagerTick -benchtime 1x ./internal/core/
	$(GO) run ./cmd/netstore-load -clients 64 -stalled 4 -duration 2s -out BENCH_netstore.json

check: fmt vet lint build test race

# Fault-injection smoke: sweeps uncooperative-guest fractions and
# control-plane fault rates at quick scale (docs/FAULTS.md).
chaos:
	$(GO) run ./cmd/experiments -run chaos

# Quick-scale regeneration of every paper figure, with decision traces.
experiments:
	$(GO) run ./cmd/experiments -run all -trace traces/

clean:
	rm -rf traces/

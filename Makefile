# Standard verification pipeline: `make check` is what CI runs.
GO ?= go

.PHONY: all build fmt vet lint test race bench bench-sim check chaos sla experiments clean

all: check

build:
	$(GO) build ./...

# Fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-invariant static analysis (internal/analysis, docs/LINTING.md):
# determinism, store key schema, watch-handler re-entrancy, the Monitor
# read contract, the trace/counter mirror, deprecation hygiene, shard
# store-loop confinement, epoch-goroutine isolation, hot-path allocation
# discipline and bounded retries. The second run audits the
# //lint:allow ledger: unjustified or stale directives fail the build.
lint:
	$(GO) run ./cmd/iorchestra-vet ./...
	$(GO) run ./cmd/iorchestra-vet -audit ./...

test:
	$(GO) test ./...

# The race run covers the concurrent watch-table paths in internal/store.
race:
	$(GO) test -race ./...

# Manager-tick microbenchmarks (all three policies over 8 guests), then
# the netstore wire-protocol load bench in its two tracked scenarios
# (docs/PERFORMANCE.md): the 64-client fleet with stalled watchers, and
# the single-client batched hot path that carries the throughput target.
# Both append to the BENCH_netstore.json trajectory and fail on a >20%
# regression against the best comparable tracked run.
bench:
	$(GO) test -run '^$$' -bench BenchmarkManagerTick -benchtime 1x ./internal/core/
	$(GO) run ./cmd/netstore-load -clients 64 -stalled 4 -batch 1 -proto 1 -duration 2s -out BENCH_netstore.json
	$(GO) run ./cmd/netstore-load -clients 1 -stalled 0 -batch 96 -proto 2 -duration 3s -out BENCH_netstore.json

# Simulator-scaling trajectory (docs/PERFORMANCE.md §"Simulator scaling"):
# the three tracked scale points appended to BENCH_sim.json, each gated
# >20% below the best comparable tracked run. The 10k point shards over
# 50 per-host kernels with a full-span epoch — the bench workload has no
# cross-host coupling, so one barrier per runUntil keeps each kernel's
# working set hot (see the doc for the epoch-length tradeoff).
bench-sim:
	$(GO) run ./cmd/sim-bench -guests 100 -hosts 1 -epoch 3000ms -out BENCH_sim.json
	$(GO) run ./cmd/sim-bench -guests 1000 -hosts 1 -epoch 3000ms -out BENCH_sim.json
	$(GO) run ./cmd/sim-bench -guests 10000 -hosts 50 -epoch 3000ms -out BENCH_sim.json

check: fmt vet lint build test race

# Fault-injection smoke: sweeps uncooperative-guest fractions and
# control-plane fault rates at quick scale (docs/FAULTS.md).
chaos:
	$(GO) run ./cmd/experiments -run chaos

# Tiered-SLA gate (docs/GSTATES.md): the sweep's acceptance tests —
# gold within bronze's violation budget under gstate, strictly fewer
# gold violation-seconds than the no-gstate baseline on every tier mix,
# and the chaos composition (an uncooperative bronze guest must not
# cause extra gold violation episodes) — then the sweep itself for the
# human-readable tables.
sla:
	$(GO) test -run 'TestSLA' -v ./internal/experiments/
	$(GO) run ./cmd/experiments -run sla

# Quick-scale regeneration of every paper figure, with decision traces.
experiments:
	$(GO) run ./cmd/experiments -run all -trace traces/

clean:
	rm -rf traces/

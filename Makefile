# Standard verification pipeline: `make check` is what CI runs.
GO ?= go

.PHONY: all build vet test race check chaos experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race run covers the concurrent watch-table paths in internal/store.
race:
	$(GO) test -race ./...

check: vet build test race

# Fault-injection smoke: sweeps uncooperative-guest fractions and
# control-plane fault rates at quick scale (docs/FAULTS.md).
chaos:
	$(GO) run ./cmd/experiments -run chaos

# Quick-scale regeneration of every paper figure, with decision traces.
experiments:
	$(GO) run ./cmd/experiments -run all -trace traces/

clean:
	rm -rf traces/

package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelZeroValueStartsAtZero(t *testing.T) {
	var k Kernel
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", k.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal timestamps)", i, v, i)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 150 {
		t.Fatalf("fired at %v, want 150", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel and cancel-nil are no-ops.
	k.Cancel(e)
	k.Cancel(nil)
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	var e *Event
	k.At(5, func() { k.Cancel(e) })
	e = k.At(10, func() { fired = true })
	k.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	k := NewKernel()
	var at Time
	e := k.At(10, func() { at = k.Now() })
	if !k.Reschedule(e, 25) {
		t.Fatal("Reschedule returned false for pending event")
	}
	k.Run()
	if at != 25 {
		t.Fatalf("fired at %v, want 25", at)
	}
	if k.Reschedule(e, 30) {
		t.Fatal("Reschedule returned true for already-fired event")
	}
}

func TestRunUntilAdvancesClockExactly(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() { fired = append(fired, k.Now()) })
	k.At(40, func() { fired = append(fired, k.Now()) })
	k.RunUntil(25)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 2 || fired[1] != 40 {
		t.Fatalf("fired = %v, want [10 40]", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	tk := k.Every(10, func() {
		ticks = append(ticks, k.Now())
	})
	k.At(35, func() { tk.Stop() })
	k.Run()
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	k := NewKernel()
	n := 0
	var tk *Ticker
	tk = k.Every(1, func() {
		n++
		if n == 5 {
			tk.Stop()
		}
	})
	k.Run()
	if n != 5 {
		t.Fatalf("ticked %d times, want 5", n)
	}
}

func TestExecutedCounts(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.At(Time(i), func() {})
	}
	e := k.At(100, func() {})
	k.Cancel(e)
	k.Run()
	if k.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", k.Executed())
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the clock ends at the max offset.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		k := NewKernel()
		var fired []Time
		var max Time
		for _, o := range offsets {
			tt := Time(o)
			if tt > max {
				max = tt
			}
			k.At(tt, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	if d := DurationOf(1.5); d != 1500*Millisecond {
		t.Errorf("DurationOf(1.5) = %v", d)
	}
	if d := DurationOf(-3); d != 0 {
		t.Errorf("DurationOf(-3) = %v, want 0", d)
	}
	if d := DurationOf(1e300); d != Forever {
		t.Errorf("DurationOf(1e300) = %v, want Forever", d)
	}
}

func TestTimeConversions(t *testing.T) {
	tt := 1500 * Microsecond
	if got := tt.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := tt.Microseconds(); got != 1500 {
		t.Errorf("Microseconds() = %v, want 1500", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
}

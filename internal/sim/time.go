// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is a classic event-calendar design: callbacks are scheduled at
// virtual timestamps and executed in (time, sequence) order, which gives a
// deterministic total order for events scheduled at the same instant. All
// model code in this repository — guest OS I/O stacks, devices, the
// hypervisor, and workload generators — runs on top of this kernel, while
// the IOrchestra control plane (store, bus, policies) is ordinary Go code
// that happens to be driven by simulated callbacks.
//
// The kernel itself is strictly single-threaded. Parallelism in experiment
// sweeps is obtained by running many independent Kernel instances across a
// worker pool (see internal/experiments), each seeded independently, so
// every replication remains reproducible.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. It is deliberately a distinct type from time.Duration
// so that wall-clock values cannot be mixed into the simulation by accident.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Forever is a sentinel time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// String renders a Time with an adaptive unit, for logs and test failures.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// DurationOf converts floating-point seconds to a Duration, saturating at
// Forever for non-finite or overflowing inputs.
func DurationOf(seconds float64) Duration {
	ns := seconds * float64(Second)
	if !(ns < float64(Forever)) { // catches +Inf and NaN
		return Forever
	}
	if ns < 0 {
		return 0
	}
	return Duration(ns)
}

package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are returned by the scheduling
// methods so that callers can cancel them; a zero Event is never returned.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. The zero value is ready
// to use at time zero. Kernel is not safe for concurrent use; each
// simulation owns exactly one goroutine.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// executed counts dispatched (non-canceled) events, for tests and
	// runaway detection.
	executed uint64
}

// NewKernel returns a kernel positioned at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are queued (including canceled ones not
// yet discarded).
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would hide causality
// violations.
func (k *Kernel) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At with nil fn")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d from now. Negative d panics via At.
func (k *Kernel) After(d Duration, fn func()) *Event { return k.At(k.now+d, fn) }

// Cancel removes e from the calendar if it has not yet fired. Canceling an
// already-fired or already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.events, e.index)
		e.index = -1
	}
	e.fn = nil
}

// Reschedule moves a pending event to a new absolute time, preserving FIFO
// fairness at the new instant (it is assigned a fresh sequence number). If
// the event already fired or was canceled, Reschedule schedules nothing and
// returns false.
func (k *Kernel) Reschedule(e *Event, t Time) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling at %v, before now %v", t, k.now))
	}
	e.at = t
	e.seq = k.seq
	k.seq++
	heap.Fix(&k.events, e.index)
	return true
}

// Step dispatches the single earliest event, advancing the clock to its
// timestamp. It reports false when the calendar is empty or the kernel has
// been stopped.
func (k *Kernel) Step() bool {
	for {
		if k.stopped || len(k.events) == 0 {
			return false
		}
		e := heap.Pop(&k.events).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		k.executed++
		fn()
		return true
	}
}

// Run dispatches events until the calendar is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t (if the simulation has not been stopped earlier). Events
// scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped && len(k.events) > 0 {
		next := k.events[0]
		if next.canceled {
			heap.Pop(&k.events)
			continue
		}
		if next.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Stop halts the run loop after the current event completes. Further Step
// calls return false. Stop is idempotent.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn observes the tick time via Kernel.Now.
func (k *Kernel) Every(d Duration, fn func()) *Ticker {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.ev = k.After(d, t.tick)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.ev = t.k.After(t.period, t.tick)
	}
}

// Stop cancels future ticks. Safe to call multiple times and from within
// the tick callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.k.Cancel(t.ev)
}

package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events are returned by the scheduling
// methods so that callers can cancel them; a zero Event is never returned.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// heapSlot is one calendar entry with the ordering key held inline, so
// sift comparisons read sequential heap memory instead of dereferencing
// two Events per compare — the difference profiles as the simulator's
// hottest loop at scale. e.at/e.seq mirror the slot key; Reschedule
// rewrites both.
type heapSlot struct {
	at  Time
	seq uint64
	e   *Event
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). The comparison is
// a strict total order (seq is unique), so dispatch order is identical
// for any valid heap shape — the arity and the hole-based sifts are
// pure mechanical sympathy: one level per four contiguous children and
// one slot store per level, instead of container/heap's interface calls
// and pairwise swaps.
type eventHeap []heapSlot

func slotBefore(a, b heapSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp moves h[i] toward the root until its parent fires no later.
//
// hotpath
func (h eventHeap) siftUp(i int) {
	s := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !slotBefore(s, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].e.index = i
		i = p
	}
	h[i] = s
	s.e.index = i
}

// siftDown moves h[i] toward the leaves until no child fires earlier.
//
// hotpath
func (h eventHeap) siftDown(i int) {
	n := len(h)
	s := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if slotBefore(h[j], h[m]) {
				m = j
			}
		}
		if !slotBefore(h[m], s) {
			break
		}
		h[i] = h[m]
		h[i].e.index = i
		i = m
	}
	h[i] = s
	s.e.index = i
}

// push appends e and restores heap order.
//
// hotpath
func (k *Kernel) pushEvent(e *Event) {
	e.index = len(k.events)
	k.events = append(k.events, heapSlot{at: e.at, seq: e.seq, e: e})
	k.events.siftUp(e.index)
}

// popEvent removes and returns the earliest event.
//
// hotpath
func (k *Kernel) popEvent() *Event {
	h := k.events
	e := h[0].e
	n := len(h) - 1
	last := h[n]
	h[n] = heapSlot{}
	k.events = h[:n]
	e.index = -1
	if n == 0 {
		return e
	}
	h = h[:n]
	// Bottom-up reinsertion (Wegener's heapsort trick): walk the root hole
	// down the min-child path to a leaf, then sift the displaced bottom
	// slot up from there. The displaced slot almost always belongs near a
	// leaf, so this saves the per-level comparison against it that a
	// classic siftDown pays on the simulator's hottest loop.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if slotBefore(h[j], h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		h[i].e.index = i
		i = m
	}
	h[i] = last
	h.siftUp(i)
	return e
}

// removeEvent deletes the event at index i.
func (k *Kernel) removeEvent(i int) {
	h := k.events
	n := len(h) - 1
	e := h[i].e
	last := h[n]
	h[n] = heapSlot{}
	k.events = h[:n]
	e.index = -1
	if i < n {
		h[i] = last
		last.e.index = i
		k.events.siftDown(i)
		if last.e.index == i {
			k.events.siftUp(i)
		}
	}
}

// fixEvent restores heap order after h[i]'s event key changed.
func (k *Kernel) fixEvent(i int) {
	e := k.events[i].e
	k.events[i].at, k.events[i].seq = e.at, e.seq
	k.events.siftDown(i)
	if e.index == i {
		k.events.siftUp(i)
	}
}

// Kernel is a discrete-event simulation executive. The zero value is ready
// to use at time zero. Kernel is not safe for concurrent use; each
// simulation owns exactly one goroutine.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// slab batches Event allocations: events are transient but numerous
	// (one per scheduled callback), so handing them out of a chunk cuts
	// allocator round trips ~64x. Events are never recycled — a retained
	// handle stays valid after its event fires — the chunk just amortizes
	// the malloc.
	slab []Event

	// executed counts dispatched (non-canceled) events, for tests and
	// runaway detection.
	executed uint64
}

// NewKernel returns a kernel positioned at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are queued (including canceled ones not
// yet discarded).
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would hide causality
// violations.
func (k *Kernel) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At with nil fn")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v, before now %v", t, k.now))
	}
	if len(k.slab) == 0 {
		k.slab = make([]Event, 64)
	}
	e := &k.slab[0]
	k.slab = k.slab[1:]
	e.at, e.seq, e.fn, e.index = t, k.seq, fn, -1
	k.seq++
	k.pushEvent(e)
	return e
}

// After schedules fn to run d from now. Negative d panics via At.
func (k *Kernel) After(d Duration, fn func()) *Event { return k.At(k.now+d, fn) }

// Cancel removes e from the calendar if it has not yet fired. Canceling an
// already-fired or already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		k.removeEvent(e.index)
	}
	e.fn = nil
}

// Reschedule moves a pending event to a new absolute time, preserving FIFO
// fairness at the new instant (it is assigned a fresh sequence number). If
// the event already fired or was canceled, Reschedule schedules nothing and
// returns false.
func (k *Kernel) Reschedule(e *Event, t Time) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling at %v, before now %v", t, k.now))
	}
	e.at = t
	e.seq = k.seq
	k.seq++
	k.fixEvent(e.index)
	return true
}

// Step dispatches the single earliest event, advancing the clock to its
// timestamp. It reports false when the calendar is empty or the kernel has
// been stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.events) == 0 {
		return false
	}
	e := k.popEvent()
	k.now = e.at
	fn := e.fn
	e.fn = nil
	k.executed++
	fn()
	return true
}

// Run dispatches events until the calendar is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t (if the simulation has not been stopped earlier). Events
// scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Stop halts the run loop after the current event completes. Further Step
// calls return false. Stop is idempotent.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Every schedules fn at now+d, then every d thereafter, until the returned
// Ticker is stopped. fn observes the tick time via Kernel.Now.
func (k *Kernel) Every(d Duration, fn func()) *Ticker {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.tickFn = t.tick // bind the method value once; rearming reuses it
	t.ev = k.After(d, t.tickFn)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period.
type Ticker struct {
	k       *Kernel
	period  Duration
	fn      func()
	tickFn  func() // t.tick, bound once — a method value allocates per use
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.ev = t.k.After(t.period, t.tickFn)
	}
}

// Stop cancels future ticks. Safe to call multiple times and from within
// the tick callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.k.Cancel(t.ev)
}

package sim

// WaitQueue models a set of sleeping processes, in the spirit of a kernel
// wait queue: continuations park in FIFO order and are resumed by WakeOne
// or WakeAll. Resumption happens through the kernel calendar so that woken
// continuations run after the waker finishes, never reentrantly.
type WaitQueue struct {
	k       *Kernel
	waiters []func()
}

// NewWaitQueue returns an empty wait queue bound to k.
func NewWaitQueue(k *Kernel) *WaitQueue { return &WaitQueue{k: k} }

// Len reports the number of parked continuations.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks fn until a wake-up.
func (q *WaitQueue) Wait(fn func()) {
	if fn == nil {
		panic("sim: WaitQueue.Wait with nil fn")
	}
	q.waiters = append(q.waiters, fn)
}

// WakeOne resumes the oldest waiter after delay, preserving FIFO order.
// It reports whether a waiter was present.
func (q *WaitQueue) WakeOne(delay Duration) bool {
	if len(q.waiters) == 0 {
		return false
	}
	fn := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil
	q.waiters = q.waiters[:len(q.waiters)-1]
	q.k.After(delay, fn)
	return true
}

// WakeAll resumes every waiter. Each waiter i is resumed at now + delay +
// i*stagger; the paper's congestion-control policy wakes VMs "in a FIFO
// order and interleaved with a random time interval", which callers express
// by passing per-call delays instead.
func (q *WaitQueue) WakeAll(delay, stagger Duration) int {
	n := len(q.waiters)
	for i, fn := range q.waiters {
		q.k.After(delay+Duration(i)*stagger, fn)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
	return n
}

// FIFO is a bounded queue of arbitrary items with occupancy accounting,
// used as a building block for request queues. A zero capacity means
// unbounded.
type FIFO[T any] struct {
	items []T
	cap   int
}

// NewFIFO returns a FIFO with the given capacity (0 = unbounded).
func NewFIFO[T any](capacity int) *FIFO[T] { return &FIFO[T]{cap: capacity} }

// Len reports current occupancy.
func (f *FIFO[T]) Len() int { return len(f.items) }

// Cap reports the configured capacity (0 = unbounded).
func (f *FIFO[T]) Cap() int { return f.cap }

// Full reports whether the queue is at capacity.
func (f *FIFO[T]) Full() bool { return f.cap > 0 && len(f.items) >= f.cap }

// Push appends an item, reporting false when the queue is full.
func (f *FIFO[T]) Push(item T) bool {
	if f.Full() {
		return false
	}
	f.items = append(f.items, item)
	return true
}

// Pop removes and returns the oldest item. ok is false when empty.
func (f *FIFO[T]) Pop() (item T, ok bool) {
	if len(f.items) == 0 {
		return item, false
	}
	item = f.items[0]
	var zero T
	copy(f.items, f.items[1:])
	f.items[len(f.items)-1] = zero
	f.items = f.items[:len(f.items)-1]
	return item, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (item T, ok bool) {
	if len(f.items) == 0 {
		return item, false
	}
	return f.items[0], true
}

// Drain removes and returns all items in order.
func (f *FIFO[T]) Drain() []T {
	out := f.items
	f.items = nil
	return out
}

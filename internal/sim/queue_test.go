package sim

import (
	"testing"
	"testing/quick"
)

func TestWaitQueueFIFOWake(t *testing.T) {
	k := NewKernel()
	q := NewWaitQueue(k)
	var order []int
	k.At(1, func() {
		for i := 0; i < 3; i++ {
			i := i
			q.Wait(func() { order = append(order, i) })
		}
	})
	k.At(2, func() {
		q.WakeOne(0)
		q.WakeOne(0)
		q.WakeOne(0)
	})
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestWaitQueueWakeOneEmpty(t *testing.T) {
	k := NewKernel()
	q := NewWaitQueue(k)
	if q.WakeOne(0) {
		t.Fatal("WakeOne on empty queue returned true")
	}
}

func TestWaitQueueWakeAllStagger(t *testing.T) {
	k := NewKernel()
	q := NewWaitQueue(k)
	var times []Time
	k.At(10, func() {
		for i := 0; i < 4; i++ {
			q.Wait(func() { times = append(times, k.Now()) })
		}
		if n := q.WakeAll(5, 2); n != 4 {
			t.Errorf("WakeAll = %d, want 4", n)
		}
	})
	k.Run()
	want := []Time{15, 17, 19, 21}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after WakeAll, want 0", q.Len())
	}
}

func TestWaitQueueWakeNonReentrant(t *testing.T) {
	k := NewKernel()
	q := NewWaitQueue(k)
	stage := 0
	k.At(1, func() {
		q.Wait(func() {
			if stage != 1 {
				t.Error("waiter ran reentrantly inside waker")
			}
		})
		q.WakeOne(0)
		stage = 1
	})
	k.Run()
}

func TestFIFOPushPopOrder(t *testing.T) {
	f := NewFIFO[int](0)
	for i := 0; i < 10; i++ {
		if !f.Push(i) {
			t.Fatalf("Push(%d) on unbounded queue failed", i)
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestFIFOBounded(t *testing.T) {
	f := NewFIFO[string](2)
	if !f.Push("a") || !f.Push("b") {
		t.Fatal("pushes under capacity failed")
	}
	if f.Push("c") {
		t.Fatal("push over capacity succeeded")
	}
	if !f.Full() {
		t.Fatal("Full() = false at capacity")
	}
	if v, ok := f.Peek(); !ok || v != "a" {
		t.Fatalf("Peek() = %q,%v", v, ok)
	}
	f.Pop()
	if f.Full() {
		t.Fatal("Full() = true after Pop")
	}
}

func TestFIFODrain(t *testing.T) {
	f := NewFIFO[int](0)
	f.Push(1)
	f.Push(2)
	got := f.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Drain() = %v", got)
	}
	if f.Len() != 0 {
		t.Fatalf("Len() = %d after Drain", f.Len())
	}
}

// Property: a FIFO behaves like a slice under any push/pop sequence.
func TestPropertyFIFOMatchesSlice(t *testing.T) {
	f := func(ops []bool, vals []int) bool {
		q := NewFIFO[int](0)
		var model []int
		vi := 0
		for _, push := range ops {
			if push {
				v := 0
				if vi < len(vals) {
					v = vals[vi]
					vi++
				}
				q.Push(v)
				model = append(model, v)
			} else {
				got, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if !ok || got != want {
					return false
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package device

import (
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/trace"
)

// SSDConfig parameterizes a solid-state device model.
type SSDConfig struct {
	Name string
	// SeqReadBps / SeqWriteBps are peak sequential bandwidths.
	SeqReadBps  float64
	SeqWriteBps float64
	// RandReadIOPS / RandWriteIOPS bound small random operations.
	RandReadIOPS  float64
	RandWriteIOPS float64
	// AccessLatency is the fixed per-request latency floor.
	AccessLatency sim.Duration
	// InternalParallelism is the number of requests serviced concurrently
	// (channels/planes); further requests queue.
	InternalParallelism int
	// QueueLimit is nr_requests for the host-side queue (default 128).
	QueueLimit int
	// JitterFrac adds a uniform ±fraction to each service time so latency
	// distributions have realistic spread (e.g. 0.15).
	JitterFrac float64
	// WriteVariability adds occasional long-tail writes (GC pauses): with
	// probability 1/WriteTailOdds a write takes WriteTailFactor times
	// longer. Zero disables.
	WriteTailOdds   int
	WriteTailFactor float64
	// StreamSwitchPenalty is added to a sequential request whose
	// (owner, stream) differs from the previous one serviced: on
	// file-backed virtual disks, interleaved "sequential" streams from
	// many VMs degenerate into scattered host I/O (extent allocation,
	// journal commits, stripe misalignment). Coordinated flushing keeps
	// streams contiguous and avoids this cost — the physical basis of
	// Fig. 8's gains. Reads pay a quarter of the penalty.
	StreamSwitchPenalty sim.Duration
}

// Intel520Config models one of the paper's 120 GB Intel 520 SSDs.
func Intel520Config(name string) SSDConfig {
	return SSDConfig{
		Name: name,
		// Effective rates, not spec-sheet rates: the guests' virtual
		// disks are files on the host filesystem (nested-filesystem
		// overheads, Le et al. FAST '12), writes are incompressible, and
		// the md layer adds its own costs. The paper's Sec. 2 test (16
		// streams sustaining ~100 MB/s aggregate with ~200 ms per-MiB
		// latencies) pins the effective array throughput at a small
		// fraction of the devices' rated speed.
		SeqReadBps:    120e6,
		SeqWriteBps:   60e6,
		RandReadIOPS:  12000,
		RandWriteIOPS: 6000,
		AccessLatency: 60 * sim.Microsecond,
		// Two concurrent commands per device: enough for NCQ overlap,
		// low enough that large writes visibly delay reads on the same
		// member — the interference channel the flush policies manage.
		InternalParallelism: 2,
		QueueLimit:          DefaultQueueLimit,
		JitterFrac:          0.15,
		WriteTailOdds:       400,
		WriteTailFactor:     12,
		StreamSwitchPenalty: 1500 * sim.Microsecond,
	}
}

// SSD is a flash device with internal parallelism and a bounded host queue.
type SSD struct {
	k   *sim.Kernel
	cfg SSDConfig
	rng *stats.Stream

	queue    *sim.FIFO[*Request]
	inflight int
	// Last sequential stream serviced, for switch-penalty accounting.
	lastOwner, lastStream int
	haveLast              bool

	util metrics.Utilization
	bw   *metrics.WindowRate

	// completed and bytesMoved are lifetime counters.
	completed  uint64
	bytesMoved float64
	latency    *metrics.Histogram

	// rec, when set, receives a dev.service record per completion with
	// the device-level service latency (submit at device → finish).
	rec *trace.Recorder
}

// NewSSD builds an SSD from cfg, drawing service jitter from rng.
func NewSSD(k *sim.Kernel, cfg SSDConfig, rng *stats.Stream) *SSD {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.InternalParallelism <= 0 {
		cfg.InternalParallelism = 1
	}
	return &SSD{
		k:       k,
		cfg:     cfg,
		rng:     rng,
		queue:   sim.NewFIFO[*Request](0),
		bw:      metrics.NewWindowRate(100*sim.Millisecond, 512),
		latency: metrics.NewHistogram(),
	}
}

// SetRecorder mirrors each completion into the decision-trace recorder.
func (d *SSD) SetRecorder(r *trace.Recorder) { d.rec = r }

// Name implements BlockDevice.
func (d *SSD) Name() string { return d.cfg.Name }

// CapacityBps implements BlockDevice, reporting peak sequential read
// bandwidth as the reference capacity.
func (d *SSD) CapacityBps() float64 { return d.cfg.SeqReadBps }

// QueueLimit implements BlockDevice.
func (d *SSD) QueueLimit() int { return d.cfg.QueueLimit }

// Pending implements BlockDevice.
func (d *SSD) Pending() int { return d.queue.Len() + d.inflight }

// Congested implements BlockDevice.
func (d *SSD) Congested() bool {
	return d.Pending() >= d.cfg.QueueLimit*CongestedOnNum/CongestedOnDen
}

// Idle implements BlockDevice.
func (d *SSD) Idle() bool { return d.Pending() == 0 }

// BandwidthBps implements BlockDevice.
func (d *SSD) BandwidthBps(now sim.Time) float64 { return d.bw.Rate(now) }

// UtilFraction implements BlockDevice.
func (d *SSD) UtilFraction(now sim.Time) float64 { return d.util.Fraction(now) }

// Completed reports the number of finished requests.
func (d *SSD) Completed() uint64 { return d.completed }

// BytesMoved reports lifetime transferred bytes.
func (d *SSD) BytesMoved() float64 { return d.bytesMoved }

// ServiceLatency exposes the device-level service-time histogram.
func (d *SSD) ServiceLatency() *metrics.Histogram { return d.latency }

// Submit implements BlockDevice.
func (d *SSD) Submit(r *Request) {
	r.Submitted = d.k.Now()
	if d.inflight < d.cfg.InternalParallelism {
		d.start(r)
		return
	}
	d.queue.Push(r)
}

func (d *SSD) start(r *Request) {
	d.inflight++
	d.util.SetBusy(d.k.Now(), true)
	svc := d.serviceTime(r)
	if r.Sequential && d.cfg.StreamSwitchPenalty > 0 {
		if d.haveLast && (d.lastOwner != r.Owner || d.lastStream != r.Stream) {
			p := d.cfg.StreamSwitchPenalty
			if r.Op == Read {
				p /= 4
			}
			svc += p
		}
		d.haveLast = true
		d.lastOwner, d.lastStream = r.Owner, r.Stream
	}
	d.k.After(svc, func() { d.finish(r) })
}

func (d *SSD) finish(r *Request) {
	now := d.k.Now()
	d.inflight--
	d.completed++
	d.bytesMoved += float64(r.Size)
	d.bw.Add(now, float64(r.Size))
	d.latency.Record(now - r.Submitted)
	if d.rec != nil {
		d.rec.Record(trace.Record{
			Kind: trace.KindDevService, Dom: r.Owner, Device: d.cfg.Name,
			Write: r.Op == Write, Size: r.Size, Latency: now - r.Submitted,
		})
	}
	if next, ok := d.queue.Pop(); ok {
		d.start(next)
	} else if d.inflight == 0 {
		d.util.SetBusy(now, false)
	}
	if r.Done != nil {
		r.Done()
	}
}

// serviceTime computes the device-side latency of one request: the fixed
// access cost plus transfer time at the applicable bandwidth, with jitter
// and occasional write tails (flash GC).
func (d *SSD) serviceTime(r *Request) sim.Duration {
	var bps float64
	if r.Sequential {
		if r.Op == Read {
			bps = d.cfg.SeqReadBps
		} else {
			bps = d.cfg.SeqWriteBps
		}
	} else {
		// Random accesses are limited by IOPS for small requests and by
		// bandwidth for large ones; take the slower of the two.
		var iops float64
		if r.Op == Read {
			iops, bps = d.cfg.RandReadIOPS, d.cfg.SeqReadBps
		} else {
			iops, bps = d.cfg.RandWriteIOPS, d.cfg.SeqWriteBps
		}
		iopsBps := iops * float64(r.Size)
		if iopsBps < bps {
			bps = iopsBps
		}
	}
	if bps <= 0 {
		bps = 1
	}
	t := float64(d.cfg.AccessLatency) + float64(r.Size)/bps*float64(sim.Second)
	if d.cfg.JitterFrac > 0 && d.rng != nil {
		t *= 1 + d.cfg.JitterFrac*(2*d.rng.Float64()-1)
	}
	if r.Op == Write && d.cfg.WriteTailOdds > 0 && d.rng != nil &&
		d.rng.Intn(d.cfg.WriteTailOdds) == 0 {
		t *= d.cfg.WriteTailFactor
	}
	return sim.Duration(t)
}

package device

import (
	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
)

// Degraded wraps a BlockDevice with a throttle stage that models a slow
// or failing RAID member: every request first passes a single-server FIFO
// whose service time is factor× the member's nominal full-bandwidth
// transfer time, capping effective throughput at CapacityBps()/factor.
//
// Deliberately, CapacityBps still reports the NOMINAL capacity — the
// host's spec-sheet belief. That divergence is the interesting fault: the
// flush policy's "one tenth of capacity" idleness test and the share
// arithmetic both reason from the nominal figure while the device
// underdelivers, exactly as a degraded-but-not-yet-failed member behaves
// in a real array.
type Degraded struct {
	k      *sim.Kernel
	inner  BlockDevice
	factor float64
	staged []*Request // FIFO awaiting the throttle stage
	busy   bool
}

// NewDegraded wraps inner with a slowdown factor (≥ 1; 1 means no
// degradation beyond serialization through the throttle stage).
func NewDegraded(k *sim.Kernel, inner BlockDevice, factor float64) *Degraded {
	if factor < 1 {
		factor = 1
	}
	return &Degraded{k: k, inner: inner, factor: factor}
}

// Factor reports the configured slowdown multiple.
func (d *Degraded) Factor() float64 { return d.factor }

// Inner exposes the wrapped device.
func (d *Degraded) Inner() BlockDevice { return d.inner }

// SetRecorder forwards the decision-trace recorder to the wrapped device
// when it supports per-request service tracing.
func (d *Degraded) SetRecorder(r *trace.Recorder) {
	if mr, ok := d.inner.(interface{ SetRecorder(*trace.Recorder) }); ok {
		mr.SetRecorder(r)
	}
}

// Submit implements BlockDevice: the request joins the throttle FIFO and
// is forwarded to the wrapped device once its slowed-down transfer time
// has elapsed.
func (d *Degraded) Submit(r *Request) {
	r.Submitted = d.k.Now()
	d.staged = append(d.staged, r)
	if !d.busy {
		d.advance()
	}
}

func (d *Degraded) advance() {
	if len(d.staged) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	r := d.staged[0]
	hold := sim.Duration(float64(r.Size) * d.factor / d.inner.CapacityBps() * float64(sim.Second))
	if hold < 1 {
		hold = 1
	}
	d.k.After(hold, func() {
		d.staged = d.staged[1:]
		d.inner.Submit(r)
		d.advance()
	})
}

// Name implements BlockDevice.
func (d *Degraded) Name() string { return d.inner.Name() }

// CapacityBps implements BlockDevice, reporting the wrapped device's
// nominal capacity (see the type comment for why degradation is hidden).
func (d *Degraded) CapacityBps() float64 { return d.inner.CapacityBps() }

// QueueLimit implements BlockDevice.
func (d *Degraded) QueueLimit() int { return d.inner.QueueLimit() }

// Pending implements BlockDevice, counting both staged and in-flight
// requests so congestion feedback still sees the real backlog.
func (d *Degraded) Pending() int { return len(d.staged) + d.inner.Pending() }

// Congested implements BlockDevice against the combined backlog.
func (d *Degraded) Congested() bool {
	return d.Pending() >= d.QueueLimit()*CongestedOnNum/CongestedOnDen
}

// BandwidthBps implements BlockDevice (delivered, not nominal, rate).
func (d *Degraded) BandwidthBps(now sim.Time) float64 { return d.inner.BandwidthBps(now) }

// UtilFraction implements BlockDevice.
func (d *Degraded) UtilFraction(now sim.Time) float64 { return d.inner.UtilFraction(now) }

// Idle implements BlockDevice.
func (d *Degraded) Idle() bool { return len(d.staged) == 0 && d.inner.Idle() }

// Package device models physical block storage: SSDs, HDDs and RAID0
// arrays with service-time, queueing, utilization and congestion behaviour.
// The experiment platform mirrors the paper's testbed: a 960 GB RAID0
// volume striped over eight 120 GB SSDs.
package device

import (
	"fmt"

	"iorchestra/internal/sim"
)

// Op distinguishes reads from writes.
type Op uint8

const (
	// Read transfers data from the device.
	Read Op = iota
	// Write transfers data to the device.
	Write
)

// String names the operation.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one block I/O request as seen by a physical device.
type Request struct {
	// Op is the transfer direction.
	Op Op
	// Size is the transfer length in bytes.
	Size int64
	// Sequential marks streaming access; sequential transfers enjoy the
	// device's full bandwidth while random ones pay per-IOP costs.
	Sequential bool
	// Owner tags the submitting domain for accounting (0 = host itself).
	Owner int
	// Socket tags the NUMA socket of the submitting process's VCPU; the
	// host's dedicated-I/O-core routing uses it (Sec. 3.3).
	Socket int
	// Stream tags the logical I/O stream (process/file); back-merging in
	// the block layer only combines requests of the same stream, since
	// different streams are not contiguous on disk.
	Stream int
	// Done is invoked at completion time, on the simulation goroutine.
	Done func()

	// Submitted is stamped by the device at submission.
	Submitted sim.Time
}

func (r *Request) String() string {
	return fmt.Sprintf("%v %dB seq=%v dom%d", r.Op, r.Size, r.Sequential, r.Owner)
}

// BlockDevice is the interface the host block layer drives and the
// monitoring module samples.
type BlockDevice interface {
	// Submit enqueues a request; Done fires on completion.
	Submit(r *Request)
	// Name identifies the device.
	Name() string
	// CapacityBps reports the peak sequential bandwidth in bytes/second,
	// the reference for the flush policy's "one tenth of capacity" test.
	CapacityBps() float64
	// QueueLimit reports the host-side request-queue limit (nr_requests).
	QueueLimit() int
	// Pending reports queued plus in-flight requests.
	Pending() int
	// Congested reports whether the device queue has crossed the Linux
	// congestion-on threshold (7/8 of the queue limit).
	Congested() bool
	// BandwidthBps reports the recent transfer rate (trailing window).
	BandwidthBps(now sim.Time) float64
	// UtilFraction reports the busy fraction since the last reset.
	UtilFraction(now sim.Time) float64
	// Idle reports whether the device is entirely quiescent right now.
	Idle() bool
}

// CongestedOn and CongestedOff are the Linux block-layer congestion
// thresholds: avoidance turns on above 7/8 of the queue limit and off
// below 13/16 (Sec. 2 of the paper).
const (
	CongestedOnNum    = 7
	CongestedOnDen    = 8
	CongestedOffNum   = 13
	CongestedOffDen   = 16
	DefaultQueueLimit = 128
)

package device

import (
	"testing"

	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// A Degraded member must cap delivered throughput at capacity/factor
// while still reporting the nominal spec-sheet capacity.
func TestDegradedThrottlesButReportsNominal(t *testing.T) {
	k := sim.NewKernel()
	inner := testSSD(k)
	d := NewDegraded(k, inner, 4)
	if d.CapacityBps() != inner.CapacityBps() {
		t.Fatal("Degraded must report the nominal capacity")
	}
	if d.Name() != inner.Name() || d.QueueLimit() != inner.QueueLimit() {
		t.Fatal("passthroughs wrong")
	}
	var doneAt sim.Time
	const size = 8 << 20
	n := 0
	for i := 0; i < 4; i++ {
		d.Submit(&Request{Op: Read, Size: size, Sequential: true, Done: func() {
			n++
			doneAt = k.Now()
		}})
	}
	if d.Pending() == 0 || d.Idle() {
		t.Fatal("staged requests not visible in Pending/Idle")
	}
	k.Run()
	if n != 4 {
		t.Fatalf("completed %d/4", n)
	}
	if !d.Idle() {
		t.Fatal("not idle after drain")
	}
	// The single-server throttle serializes at factor× the transfer time,
	// so four requests take at least 4·factor·size/capacity.
	minWall := sim.Duration(4 * 4 * float64(size) / inner.CapacityBps() * float64(sim.Second))
	if doneAt < sim.Time(minWall) {
		t.Fatalf("drained in %v, faster than the 4x throttle allows (%v)", doneAt, minWall)
	}
}

// PaperArrayWith must produce the same member randomness as PaperArray
// and let a wrapper replace individual members.
func TestPaperArrayWithWrapsMembers(t *testing.T) {
	k := sim.NewKernel()
	wrapped := 0
	a := PaperArrayWith(k, stats.NewStream(3, "array"), func(i int, m BlockDevice) BlockDevice {
		if i == 3 {
			wrapped++
			return NewDegraded(k, m, 8)
		}
		return m
	})
	if wrapped != 1 {
		t.Fatalf("wrap called for %d members, want 1", wrapped)
	}
	if _, ok := a.Members()[3].(*Degraded); !ok {
		t.Fatal("member 3 not degraded")
	}
	if _, ok := a.Members()[0].(*Degraded); ok {
		t.Fatal("member 0 wrongly degraded")
	}
	// Nominal capacity is unchanged by degradation.
	b := PaperArray(k, stats.NewStream(3, "array"))
	if a.CapacityBps() != b.CapacityBps() {
		t.Fatal("degraded array must report nominal aggregate capacity")
	}
}

package device

import (
	"fmt"

	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/trace"
)

// RAID0 stripes requests across member devices. It matches the paper's
// testbed volume: eight SSDs in RAID0 behind a single block device.
type RAID0 struct {
	k          *sim.Kernel
	name       string
	members    []BlockDevice
	stripeSize int64
	next       int // round-robin start member for successive requests
}

// NewRAID0 assembles members into a striped array with the given stripe
// unit (bytes). Typical stripe units are 64–512 KiB.
func NewRAID0(k *sim.Kernel, name string, members []BlockDevice, stripeSize int64) *RAID0 {
	if len(members) == 0 {
		panic("device: RAID0 with no members")
	}
	if stripeSize <= 0 {
		stripeSize = 256 << 10
	}
	return &RAID0{k: k, name: name, members: members, stripeSize: stripeSize}
}

// PaperArray builds the evaluation platform's storage: eight Intel 520
// SSDs in RAID0 with a 256 KiB stripe.
func PaperArray(k *sim.Kernel, rng *stats.Stream) *RAID0 {
	return PaperArrayWith(k, rng, nil)
}

// PaperArrayWith builds the paper array but lets the caller wrap each
// member as it is assembled — the fault layer uses this to slip Degraded
// throttles in front of individual SSDs. A nil wrap (or a wrap returning
// its argument) leaves the member untouched; member RNG forks are taken
// before wrapping, so wrapped and unwrapped arrays draw identical service
// randomness.
func PaperArrayWith(k *sim.Kernel, rng *stats.Stream, wrap func(i int, m BlockDevice) BlockDevice) *RAID0 {
	members := make([]BlockDevice, 8)
	for i := range members {
		cfg := Intel520Config(fmt.Sprintf("ssd%d", i))
		var m BlockDevice = NewSSD(k, cfg, rng.Fork(cfg.Name))
		if wrap != nil {
			m = wrap(i, m)
		}
		members[i] = m
	}
	return NewRAID0(k, "md0", members, 256<<10)
}

// SetRecorder forwards the decision-trace recorder to every member that
// supports per-request service tracing.
func (a *RAID0) SetRecorder(r *trace.Recorder) {
	for _, m := range a.members {
		if mr, ok := m.(interface{ SetRecorder(*trace.Recorder) }); ok {
			mr.SetRecorder(r)
		}
	}
}

// Name implements BlockDevice.
func (a *RAID0) Name() string { return a.name }

// Members exposes the member devices (read-only use).
func (a *RAID0) Members() []BlockDevice { return a.members }

// CapacityBps implements BlockDevice as the sum of member capacities.
func (a *RAID0) CapacityBps() float64 {
	var sum float64
	for _, m := range a.members {
		sum += m.CapacityBps()
	}
	return sum
}

// QueueLimit implements BlockDevice as the sum of member limits.
func (a *RAID0) QueueLimit() int {
	n := 0
	for _, m := range a.members {
		n += m.QueueLimit()
	}
	return n
}

// Pending implements BlockDevice.
func (a *RAID0) Pending() int {
	n := 0
	for _, m := range a.members {
		n += m.Pending()
	}
	return n
}

// Congested implements BlockDevice: the array is congested when its
// aggregate queue crosses the 7/8 threshold, the same rule Linux applies
// to the md device's own queue.
func (a *RAID0) Congested() bool {
	return a.Pending() >= a.QueueLimit()*CongestedOnNum/CongestedOnDen
}

// Idle implements BlockDevice.
func (a *RAID0) Idle() bool {
	for _, m := range a.members {
		if !m.Idle() {
			return false
		}
	}
	return true
}

// BandwidthBps implements BlockDevice.
func (a *RAID0) BandwidthBps(now sim.Time) float64 {
	var sum float64
	for _, m := range a.members {
		sum += m.BandwidthBps(now)
	}
	return sum
}

// UtilFraction implements BlockDevice as the mean member utilization.
func (a *RAID0) UtilFraction(now sim.Time) float64 {
	var sum float64
	for _, m := range a.members {
		sum += m.UtilFraction(now)
	}
	return sum / float64(len(a.members))
}

// Submit implements BlockDevice: the request is split at stripe-unit
// boundaries round-robin across members; Done fires when the last chunk
// completes.
func (a *RAID0) Submit(r *Request) {
	r.Submitted = a.k.Now()
	nChunks := int((r.Size + a.stripeSize - 1) / a.stripeSize)
	if nChunks <= 1 {
		m := a.members[a.next]
		a.next = (a.next + 1) % len(a.members)
		m.Submit(&Request{
			Op: r.Op, Size: r.Size, Sequential: r.Sequential,
			Owner: r.Owner, Done: r.Done,
		})
		return
	}
	remaining := nChunks
	done := func() {
		remaining--
		if remaining == 0 && r.Done != nil {
			r.Done()
		}
	}
	size := r.Size
	start := a.next
	a.next = (a.next + nChunks) % len(a.members)
	for i := 0; i < nChunks; i++ {
		chunk := a.stripeSize
		if size < chunk {
			chunk = size
		}
		size -= chunk
		m := a.members[(start+i)%len(a.members)]
		m.Submit(&Request{
			Op: r.Op, Size: chunk, Sequential: r.Sequential,
			Owner: r.Owner, Done: done,
		})
	}
}

// HDDConfig parameterizes a rotating-disk model, provided as an
// alternative substrate (the paper's congestion examples generalize to
// disks, where falsely triggered avoidance is even more costly).
type HDDConfig struct {
	Name       string
	SeqBps     float64      // sustained transfer rate
	AvgSeek    sim.Duration // average seek+rotational delay
	QueueLimit int
	JitterFrac float64
}

// DefaultHDDConfig models a 7200 RPM SATA disk.
func DefaultHDDConfig(name string) HDDConfig {
	return HDDConfig{
		Name:       name,
		SeqBps:     150e6,
		AvgSeek:    8 * sim.Millisecond,
		QueueLimit: DefaultQueueLimit,
		JitterFrac: 0.3,
	}
}

// HDD is a single-actuator rotating disk: one request in service at a
// time, seeks dominate random access.
type HDD struct {
	*SSD // reuse the queue/accounting machinery with HDD-shaped parameters
}

// NewHDD builds a rotating-disk model.
func NewHDD(k *sim.Kernel, cfg HDDConfig, rng *stats.Stream) *HDD {
	ssdCfg := SSDConfig{
		Name:        cfg.Name,
		SeqReadBps:  cfg.SeqBps,
		SeqWriteBps: cfg.SeqBps,
		// A disk's random IOPS is 1/seek-time.
		RandReadIOPS:        1 / cfg.AvgSeek.Seconds(),
		RandWriteIOPS:       1 / cfg.AvgSeek.Seconds(),
		AccessLatency:       cfg.AvgSeek / 4, // track-to-track component on sequential runs
		InternalParallelism: 1,
		QueueLimit:          cfg.QueueLimit,
		JitterFrac:          cfg.JitterFrac,
	}
	return &HDD{SSD: NewSSD(k, ssdCfg, rng)}
}

package device

import (
	"testing"
	"testing/quick"

	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

func testSSD(k *sim.Kernel) *SSD {
	cfg := Intel520Config("ssd-test")
	cfg.JitterFrac = 0 // deterministic timings for assertions
	cfg.WriteTailOdds = 0
	return NewSSD(k, cfg, stats.NewStream(1, "ssd"))
}

func TestSSDSequentialReadTiming(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k)
	var doneAt sim.Time
	d.Submit(&Request{Op: Read, Size: 1 << 20, Sequential: true, Done: func() { doneAt = k.Now() }})
	k.Run()
	cfg := Intel520Config("ref")
	want := cfg.AccessLatency + sim.Duration(float64(1<<20)/cfg.SeqReadBps*float64(sim.Second))
	if diff := doneAt - want; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("read completed at %v, want ~%v", doneAt, want)
	}
}

func TestSSDRandomSmallReadIOPSBound(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k)
	var doneAt sim.Time
	d.Submit(&Request{Op: Read, Size: 4096, Sequential: false, Done: func() { doneAt = k.Now() }})
	k.Run()
	cfg := Intel520Config("ref")
	want := cfg.AccessLatency + sim.Duration(float64(sim.Second)/cfg.RandReadIOPS)
	if diff := doneAt - want; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("random read at %v, want ~%v", doneAt, want)
	}
}

func TestSSDQueueingBeyondParallelism(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k) // parallelism 4
	completions := 0
	for i := 0; i < 8; i++ {
		d.Submit(&Request{Op: Read, Size: 1 << 20, Sequential: true, Done: func() { completions++ }})
	}
	if d.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8", d.Pending())
	}
	k.Run()
	if completions != 8 {
		t.Fatalf("completions = %d", completions)
	}
	if !d.Idle() {
		t.Fatal("device not idle after drain")
	}
	if d.Completed() != 8 {
		t.Fatalf("Completed = %d", d.Completed())
	}
	if d.BytesMoved() != 8*(1<<20) {
		t.Fatalf("BytesMoved = %v", d.BytesMoved())
	}
}

func TestSSDCongestionThreshold(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k) // queue limit 128, threshold 112
	for i := 0; i < 111; i++ {
		d.Submit(&Request{Op: Write, Size: 4096})
	}
	if d.Congested() {
		t.Fatal("congested below 7/8 threshold")
	}
	d.Submit(&Request{Op: Write, Size: 4096})
	if !d.Congested() {
		t.Fatalf("not congested at %d/128 pending", d.Pending())
	}
	k.Run()
}

func TestSSDUtilizationIntegrates(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k)
	d.Submit(&Request{Op: Read, Size: 50 << 20, Sequential: true}) // ~100ms busy
	k.Run()
	end := k.Now()
	frac := d.UtilFraction(end)
	if frac < 0.99 {
		t.Fatalf("UtilFraction = %v during solid busy period", frac)
	}
	// Now idle for an equal period: fraction halves.
	k.At(end*2, func() {})
	k.Run()
	if frac := d.UtilFraction(k.Now()); frac < 0.45 || frac > 0.55 {
		t.Fatalf("UtilFraction after idle = %v, want ~0.5", frac)
	}
}

func TestSSDBandwidthWindow(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k)
	d.Submit(&Request{Op: Read, Size: 10 << 20, Sequential: true})
	k.Run()
	bw := d.BandwidthBps(k.Now())
	if bw < 100e6 {
		t.Fatalf("BandwidthBps = %v right after a 10MiB transfer", bw)
	}
}

func TestSSDServiceLatencyHistogram(t *testing.T) {
	k := sim.NewKernel()
	d := testSSD(k)
	for i := 0; i < 10; i++ {
		d.Submit(&Request{Op: Read, Size: 4096})
	}
	k.Run()
	if d.ServiceLatency().Count() != 10 {
		t.Fatalf("latency samples = %d", d.ServiceLatency().Count())
	}
}

func TestWriteTailApplies(t *testing.T) {
	k := sim.NewKernel()
	cfg := Intel520Config("tail")
	cfg.JitterFrac = 0
	cfg.WriteTailOdds = 1 // every write hits the tail
	cfg.WriteTailFactor = 10
	d := NewSSD(k, cfg, stats.NewStream(2, "tail"))
	var doneAt sim.Time
	d.Submit(&Request{Op: Write, Size: 4096, Done: func() { doneAt = k.Now() }})
	k.Run()
	base := 60*sim.Microsecond + sim.Duration(float64(4096)/(40000*4096)*float64(sim.Second))
	if doneAt < 9*base {
		t.Fatalf("tail write at %v, want ≥ 9×%v", doneAt, base)
	}
}

func TestRAID0SplitsAndCompletesOnce(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(3, "raid")
	members := make([]BlockDevice, 4)
	for i := range members {
		cfg := Intel520Config("m")
		cfg.JitterFrac = 0
		cfg.WriteTailOdds = 0
		members[i] = NewSSD(k, cfg, rng.Fork("m"))
	}
	a := NewRAID0(k, "md0", members, 256<<10)
	completions := 0
	a.Submit(&Request{Op: Read, Size: 1 << 20, Sequential: true, Done: func() { completions++ }})
	k.Run()
	if completions != 1 {
		t.Fatalf("Done fired %d times, want exactly 1", completions)
	}
	moved := 0.0
	for _, m := range members {
		moved += m.(*SSD).BytesMoved()
	}
	if moved != 1<<20 {
		t.Fatalf("members moved %v bytes, want %v", moved, 1<<20)
	}
	// 1MiB/256KiB = 4 chunks over 4 members: all must have participated.
	for i, m := range members {
		if m.(*SSD).Completed() != 1 {
			t.Fatalf("member %d completed %d, want 1", i, m.(*SSD).Completed())
		}
	}
}

func TestRAID0ParallelSpeedup(t *testing.T) {
	mk := func(nMembers int) sim.Time {
		k := sim.NewKernel()
		rng := stats.NewStream(4, "raidspeed")
		members := make([]BlockDevice, nMembers)
		for i := range members {
			cfg := Intel520Config("m")
			cfg.JitterFrac = 0
			cfg.WriteTailOdds = 0
			members[i] = NewSSD(k, cfg, rng.Fork("m"))
		}
		a := NewRAID0(k, "md0", members, 256<<10)
		var doneAt sim.Time
		a.Submit(&Request{Op: Read, Size: 64 << 20, Sequential: true, Done: func() { doneAt = k.Now() }})
		k.Run()
		return doneAt
	}
	t1, t8 := mk(1), mk(8)
	if t8*4 > t1 {
		t.Fatalf("8-way RAID0 (%v) not ≥4x faster than single (%v)", t8, t1)
	}
}

func TestRAID0SmallRequestSingleMember(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(5, "raidsmall")
	members := make([]BlockDevice, 2)
	for i := range members {
		cfg := Intel520Config("m")
		members[i] = NewSSD(k, cfg, rng.Fork("m"))
	}
	a := NewRAID0(k, "md0", members, 256<<10)
	a.Submit(&Request{Op: Read, Size: 4096})
	a.Submit(&Request{Op: Read, Size: 4096})
	k.Run()
	// Round-robin: the two small requests land on different members.
	if members[0].(*SSD).Completed() != 1 || members[1].(*SSD).Completed() != 1 {
		t.Fatalf("small requests not spread: %d/%d",
			members[0].(*SSD).Completed(), members[1].(*SSD).Completed())
	}
}

func TestRAID0AggregateAccounting(t *testing.T) {
	k := sim.NewKernel()
	a := PaperArray(k, stats.NewStream(6, "paper"))
	if got := a.CapacityBps(); got != 8*Intel520Config("ref").SeqReadBps {
		t.Fatalf("CapacityBps = %v", got)
	}
	if got := a.QueueLimit(); got != 8*128 {
		t.Fatalf("QueueLimit = %v", got)
	}
	if !a.Idle() {
		t.Fatal("fresh array not idle")
	}
	if a.Congested() {
		t.Fatal("fresh array congested")
	}
	if len(a.Members()) != 8 {
		t.Fatalf("Members = %d", len(a.Members()))
	}
}

func TestHDDSlowerThanSSDOnRandom(t *testing.T) {
	k := sim.NewKernel()
	h := NewHDD(k, DefaultHDDConfig("hdd0"), stats.NewStream(7, "hdd"))
	s := testSSD(k)
	var hAt, sAt sim.Time
	h.Submit(&Request{Op: Read, Size: 4096, Done: func() { hAt = k.Now() }})
	s.Submit(&Request{Op: Read, Size: 4096, Done: func() { sAt = k.Now() }})
	k.Run()
	if hAt < 10*sAt {
		t.Fatalf("HDD random read (%v) not ≫ SSD (%v)", hAt, sAt)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op.String broken")
	}
	r := Request{Op: Write, Size: 512, Owner: 3}
	if r.String() == "" {
		t.Fatal("empty Request.String")
	}
}

// Property: any workload mix fully drains and conserves request count.
func TestPropertyDeviceConservesRequests(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		k := sim.NewKernel()
		cfg := Intel520Config("prop")
		d := NewSSD(k, cfg, stats.NewStream(seed, "prop"))
		done := 0
		for i, s := range sizes {
			op := Read
			if i%2 == 0 {
				op = Write
			}
			d.Submit(&Request{Op: op, Size: int64(s) + 1, Sequential: i%3 == 0, Done: func() { done++ }})
		}
		k.Run()
		return done == len(sizes) && d.Idle() && d.Completed() == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

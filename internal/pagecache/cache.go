// Package pagecache models the guest page cache's write path: buffered
// writes dirty pages, per-BDI flusher threads write them back, writers are
// throttled at the dirty ratio (Linux balance_dirty_pages), and sync()
// flushes everything — the machinery behind the paper's cross-domain
// flush-control policy (Sec. 3.1, Algorithm 1).
package pagecache

import (
	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
)

// PageSize is the fixed page granularity (bytes).
const PageSize = 4096

// Config parameterizes a cache instance (one per virtual disk / BDI).
type Config struct {
	// TotalPages is the guest's page budget for this cache.
	TotalPages int64
	// DirtyRatio is the hard throttle point: writers block above it
	// (Linux vm.dirty_ratio; the paper sweeps 10–40 %).
	DirtyRatio float64
	// BackgroundRatio starts background writeback (vm.dirty_background_ratio).
	BackgroundRatio float64
	// DirtyExpire writes back pages older than this regardless of count
	// (vm.dirty_expire_centisecs, default 30 s).
	DirtyExpire sim.Duration
	// WakeInterval is the flusher thread period (default 5 s).
	WakeInterval sim.Duration
	// WritebackChunk is the size of each writeback request (default 1 MiB).
	WritebackChunk int64
	// WritebackWindow bounds concurrent writeback requests (default 8).
	WritebackWindow int
	// MemCopyBps is the in-memory buffered-write speed (default 8 GB/s).
	MemCopyBps float64
	// CongestionBackoff is the flusher's congestion_wait sleep when the
	// block queue has congestion avoidance engaged (Linux: 100 ms).
	CongestionBackoff sim.Duration
}

func (c *Config) fillDefaults() {
	if c.TotalPages <= 0 {
		c.TotalPages = (1 << 30) / PageSize // 1 GiB default
	}
	if c.DirtyRatio <= 0 {
		c.DirtyRatio = 0.20
	}
	if c.BackgroundRatio <= 0 {
		c.BackgroundRatio = c.DirtyRatio / 2
	}
	if c.DirtyExpire <= 0 {
		c.DirtyExpire = 30 * sim.Second
	}
	if c.WakeInterval <= 0 {
		c.WakeInterval = 5 * sim.Second
	}
	if c.WritebackChunk <= 0 {
		c.WritebackChunk = 1 << 20
	}
	if c.WritebackWindow <= 0 {
		c.WritebackWindow = 8
	}
	if c.MemCopyBps <= 0 {
		c.MemCopyBps = 8e9
	}
	if c.CongestionBackoff <= 0 {
		c.CongestionBackoff = 100 * sim.Millisecond
	}
}

// Cache is the dirty-page side of one BDI.
type Cache struct {
	k     *sim.Kernel
	cfg   Config
	queue *blkio.Queue
	owner int

	dirtyPages  int64
	oldestDirty sim.Time
	inFlight    int   // writeback requests outstanding
	wbTarget    int64 // flush until dirtyPages <= wbTarget (-1: not flushing)

	hardPages int64 // precomputed hardLimit
	bgPages   int64 // precomputed bgLimit

	throttledW   *sim.WaitQueue
	syncWaits    []func()
	timer        *sim.Event // flusher wakeup, armed only while dirty
	backoffArmed bool       // congestion_wait backoff pending
	closed       bool

	// OnDirtyChange, when set, observes every dirty-count change — the
	// IOrchestra guest driver uses it to maintain has_dirty_pages in the
	// system store.
	OnDirtyChange func(nrPages int64)

	// Stats.
	written     metrics.Throughput // bytes accepted from writers
	writtenBack metrics.Throughput // bytes flushed to the device
	throttles   uint64
}

// New builds a cache flushing through q on behalf of owner (domain id,
// stamped on writeback requests for accounting).
func New(k *sim.Kernel, cfg Config, q *blkio.Queue, owner int) *Cache {
	cfg.fillDefaults()
	c := &Cache{
		k:          k,
		cfg:        cfg,
		queue:      q,
		owner:      owner,
		wbTarget:   -1,
		hardPages:  int64(float64(cfg.TotalPages) * cfg.DirtyRatio),
		bgPages:    int64(float64(cfg.TotalPages) * cfg.BackgroundRatio),
		throttledW: sim.NewWaitQueue(k),
	}
	return c
}

// Close stops the flusher thread.
func (c *Cache) Close() {
	c.closed = true
	if c.timer != nil {
		c.k.Cancel(c.timer)
		c.timer = nil
	}
}

// armTimer schedules the next flusher wakeup. The timer exists only while
// dirty pages do, so an idle cache contributes no simulation events and a
// drained simulation terminates.
func (c *Cache) armTimer() {
	if c.timer != nil || c.closed || c.dirtyPages == 0 {
		return
	}
	c.timer = c.k.After(c.cfg.WakeInterval, func() {
		c.timer = nil
		c.periodic()
		c.armTimer()
	})
}

// DirtyPages reports the current dirty-page count (the bdi_writeback "nr"
// Algorithm 1 reads).
func (c *Cache) DirtyPages() int64 { return c.dirtyPages }

// DirtyBytes reports dirty bytes.
func (c *Cache) DirtyBytes() int64 { return c.dirtyPages * PageSize }

// DirtyFraction reports dirty pages over the page budget.
func (c *Cache) DirtyFraction() float64 {
	return float64(c.dirtyPages) / float64(c.cfg.TotalPages)
}

// Throttles reports how many writer blocks occurred at the dirty ratio.
func (c *Cache) Throttles() uint64 { return c.throttles }

// WrittenBytes reports bytes accepted from writers (application-visible
// write throughput).
func (c *Cache) WrittenBytes() float64 { return c.written.Total() }

// WrittenBackBytes reports bytes flushed to storage.
func (c *Cache) WrittenBackBytes() float64 { return c.writtenBack.Total() }

// hardLimit and bgLimit in pages, fixed at construction (they sit on the
// per-write path).
func (c *Cache) hardLimit() int64 { return c.hardPages }
func (c *Cache) bgLimit() int64   { return c.bgPages }

// Write buffers size bytes; done fires when the write call returns to the
// application (after the memory copy, or later if the writer was
// throttled at the dirty ratio). The data itself reaches storage
// asynchronously via writeback.
func (c *Cache) Write(size int64, done func()) {
	c.tryWrite(size, done)
}

// WriteAt buffers like Write and reports the virtual time at which the
// write call returns to the application, with ok=false (and nothing
// buffered) when the writer would be throttled at the dirty ratio — the
// caller must fall back to Write and its callback then. Nothing the
// model does between buffering and the memory copy completing can change
// the returned instant, so answering inline is exact, and a metric-only
// writer costs no calendar event — at scale those per-write wakeups are
// the most numerous events in the simulation.
func (c *Cache) WriteAt(size int64) (at sim.Time, ok bool) {
	if c.dirtyPages >= c.hardLimit() {
		return 0, false
	}
	return c.k.Now() + c.buffer(size), true
}

func (c *Cache) tryWrite(size int64, done func()) {
	if c.dirtyPages >= c.hardLimit() {
		// balance_dirty_pages: writer blocks and contributes nothing
		// until writeback makes room.
		c.throttles++
		c.kickWriteback(c.bgLimit())
		c.throttledW.Wait(func() { c.tryWrite(size, done) })
		return
	}
	copyTime := c.buffer(size)
	if done != nil {
		c.k.After(copyTime, done)
	}
}

// buffer dirties the pages of one accepted (un-throttled) write and
// returns the memory-copy time the write call spends before returning.
func (c *Cache) buffer(size int64) sim.Duration {
	pages := (size + PageSize - 1) / PageSize
	if c.dirtyPages == 0 {
		c.oldestDirty = c.k.Now()
	}
	c.setDirty(c.dirtyPages + pages)
	c.written.Add(c.k.Now(), float64(size))
	copyTime := sim.Duration(float64(size) / c.cfg.MemCopyBps * float64(sim.Second))
	if c.dirtyPages >= c.bgLimit() {
		c.kickWriteback(c.bgLimit())
	}
	return copyTime
}

func (c *Cache) setDirty(nr int64) {
	if nr < 0 {
		nr = 0
	}
	changed := nr != c.dirtyPages
	c.dirtyPages = nr
	if nr == 0 && c.timer != nil {
		c.k.Cancel(c.timer)
		c.timer = nil
	}
	if nr > 0 {
		c.armTimer()
	}
	if changed && c.OnDirtyChange != nil {
		c.OnDirtyChange(nr)
	}
}

// periodic is the flusher-thread wakeup: background writeback (down to
// the background target) when the ratio is exceeded, full writeback when
// the oldest dirty page has expired.
func (c *Cache) periodic() {
	if c.dirtyPages == 0 {
		return
	}
	if c.k.Now()-c.oldestDirty >= c.cfg.DirtyExpire {
		c.kickWriteback(0)
		return
	}
	if c.dirtyPages >= c.bgLimit() {
		c.kickWriteback(c.bgLimit())
	}
}

// Sync flushes all dirty pages; done fires when the cache is clean — the
// sync() system call Algorithm 1's flush_now notification triggers.
func (c *Cache) Sync(done func()) {
	if c.dirtyPages == 0 && c.inFlight == 0 {
		if done != nil {
			done()
		}
		return
	}
	if done != nil {
		c.syncWaits = append(c.syncWaits, done)
	}
	c.kickWriteback(0)
}

// FlushNow starts a full writeback without a completion callback.
func (c *Cache) FlushNow() { c.Sync(nil) }

// kickWriteback lowers the flush target and pumps writeback requests.
func (c *Cache) kickWriteback(target int64) {
	if c.wbTarget < 0 || target < c.wbTarget {
		c.wbTarget = target
	}
	c.pumpWriteback()
}

func (c *Cache) pumpWriteback() {
	if c.wbTarget < 0 {
		return
	}
	// congestion_wait semantics: when the queue's congestion-avoidance
	// scheme is engaged, the flusher backs off instead of piling on —
	// the very sleep that false triggers make so expensive (Sec. 2).
	if c.queue.AvoidanceEngaged() {
		if !c.backoffArmed {
			c.backoffArmed = true
			c.k.After(c.cfg.CongestionBackoff, func() {
				c.backoffArmed = false
				c.pumpWriteback()
			})
		}
		return
	}
	// Pages already in flight count toward the target so we do not
	// over-issue.
	for c.inFlight < c.cfg.WritebackWindow {
		inFlightPages := int64(c.inFlight) * (c.cfg.WritebackChunk / PageSize)
		remaining := c.dirtyPages - inFlightPages - c.wbTarget
		if remaining <= 0 {
			break
		}
		chunkPages := c.cfg.WritebackChunk / PageSize
		if remaining < chunkPages {
			chunkPages = remaining
		}
		c.issue(chunkPages)
	}
	if c.inFlight == 0 && c.dirtyPages <= c.wbTarget {
		// Flush round complete (all the way to clean for sync, or down to
		// the background target otherwise).
		if c.dirtyPages == 0 {
			c.finishFlush()
		} else {
			c.wbTarget = -1
		}
	}
}

func (c *Cache) issue(pages int64) {
	c.inFlight++
	size := pages * PageSize
	c.queue.Submit(&device.Request{
		Op:         device.Write,
		Size:       size,
		Sequential: true, // writeback is clustered/sorted
		Owner:      c.owner,
		Done: func() {
			c.inFlight--
			c.setDirty(c.dirtyPages - pages)
			c.writtenBack.Add(c.k.Now(), float64(size))
			if c.dirtyPages > 0 {
				// Approximate age reset: remaining dirty data is newer.
				c.oldestDirty = c.k.Now() - c.cfg.DirtyExpire/2
			}
			// Room below the hard limit: wake one throttled writer per
			// completion to avoid a stampede.
			if c.dirtyPages < c.hardLimit() {
				c.throttledW.WakeOne(100 * sim.Microsecond)
			}
			c.pumpWriteback()
		},
	})
}

func (c *Cache) finishFlush() {
	c.wbTarget = -1
	waits := c.syncWaits
	c.syncWaits = nil
	for _, fn := range waits {
		fn()
	}
}

package pagecache

import (
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// fixture wires a cache to a real SSD through a block queue.
type fixture struct {
	k     *sim.Kernel
	ssd   *device.SSD
	queue *blkio.Queue
	cache *Cache
}

func mkFixture(cfg Config) *fixture {
	k := sim.NewKernel()
	ssdCfg := device.Intel520Config("ssd0")
	ssdCfg.JitterFrac = 0
	ssdCfg.WriteTailOdds = 0
	ssd := device.NewSSD(k, ssdCfg, stats.NewStream(1, "ssd"))
	q := blkio.NewQueue(k, blkio.Config{Name: "xvda"}, stats.NewStream(2, "q"),
		blkio.LowerFunc(func(r *device.Request) { ssd.Submit(r) }))
	c := New(k, cfg, q, 1)
	return &fixture{k: k, ssd: ssd, queue: q, cache: c}
}

func TestBufferedWriteDirtiesPages(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1 << 18}) // 1 GiB
	returned := false
	f.cache.Write(64<<10, func() { returned = true })
	if f.cache.DirtyPages() != 16 {
		t.Fatalf("DirtyPages = %d, want 16", f.cache.DirtyPages())
	}
	f.k.RunUntil(sim.Millisecond)
	if !returned {
		t.Fatal("buffered write did not return promptly")
	}
	if f.cache.DirtyBytes() != 64<<10 {
		t.Fatalf("DirtyBytes = %d", f.cache.DirtyBytes())
	}
	f.cache.Close()
}

func TestBackgroundWritebackStartsAboveRatio(t *testing.T) {
	// 1000 pages, background at 10% = 100 pages.
	f := mkFixture(Config{TotalPages: 1000, DirtyRatio: 0.4, BackgroundRatio: 0.1})
	f.cache.Write(99*PageSize, nil)
	f.k.RunUntil(100 * sim.Millisecond)
	if f.cache.WrittenBackBytes() != 0 {
		t.Fatal("writeback started below background ratio")
	}
	f.cache.Write(50*PageSize, nil)
	f.k.RunUntil(2 * sim.Second)
	if f.cache.WrittenBackBytes() == 0 {
		t.Fatal("writeback never started above background ratio")
	}
	// Background flush stops at the background target, not zero.
	if f.cache.DirtyPages() == 0 {
		t.Fatal("background writeback flushed to zero")
	}
	if f.cache.DirtyPages() > 100 {
		t.Fatalf("dirty pages %d above background target", f.cache.DirtyPages())
	}
	f.cache.Close()
}

func TestDirtyExpireTriggersPeriodicFlush(t *testing.T) {
	f := mkFixture(Config{TotalPages: 100000, DirtyExpire: 10 * sim.Second, WakeInterval: sim.Second})
	f.cache.Write(10*PageSize, nil) // way below background ratio
	f.k.RunUntil(5 * sim.Second)
	if f.cache.WrittenBackBytes() != 0 {
		t.Fatal("expired too early")
	}
	f.k.RunUntil(20 * sim.Second)
	if f.cache.DirtyPages() != 0 {
		t.Fatalf("expired pages not written back: %d", f.cache.DirtyPages())
	}
	f.cache.Close()
}

func TestSyncFlushesEverything(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1 << 18})
	f.cache.Write(8<<20, nil)
	synced := false
	f.cache.Sync(func() { synced = true })
	f.k.RunUntil(10 * sim.Second)
	if !synced {
		t.Fatal("Sync callback never fired")
	}
	if f.cache.DirtyPages() != 0 {
		t.Fatalf("dirty after sync: %d", f.cache.DirtyPages())
	}
	if got := f.cache.WrittenBackBytes(); got != 8<<20 {
		t.Fatalf("wrote back %v bytes, want %v", got, 8<<20)
	}
	f.cache.Close()
}

func TestSyncOnCleanCacheFiresImmediately(t *testing.T) {
	f := mkFixture(Config{})
	fired := false
	f.cache.Sync(func() { fired = true })
	if !fired {
		t.Fatal("Sync on clean cache deferred")
	}
	f.cache.Close()
}

func TestWriterThrottledAtDirtyRatio(t *testing.T) {
	// 1000 pages, hard at 20% = 200 pages.
	f := mkFixture(Config{TotalPages: 1000, DirtyRatio: 0.2, BackgroundRatio: 0.1})
	f.cache.Write(200*PageSize, nil)
	blockedReturned := false
	f.cache.Write(10*PageSize, func() { blockedReturned = true })
	if f.cache.Throttles() != 1 {
		t.Fatalf("Throttles = %d, want 1", f.cache.Throttles())
	}
	// The blocked writer completes once writeback makes room.
	f.k.RunUntil(5 * sim.Second)
	if !blockedReturned {
		t.Fatal("throttled writer never unblocked")
	}
	f.cache.Close()
}

func TestThrottledWriterContributesAfterUnblock(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1000, DirtyRatio: 0.2})
	f.cache.Write(200*PageSize, nil)
	f.cache.Write(50*PageSize, nil) // throttled
	f.k.RunUntil(10 * sim.Second)
	if got := f.cache.WrittenBytes(); got != 250*PageSize {
		t.Fatalf("WrittenBytes = %v, want %v", got, 250*PageSize)
	}
	f.cache.Close()
}

func TestOnDirtyChangeHookObservesTransitions(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1 << 18})
	var transitions []int64
	f.cache.OnDirtyChange = func(nr int64) { transitions = append(transitions, nr) }
	f.cache.Write(PageSize, nil)
	f.cache.Sync(nil)
	f.k.RunUntil(sim.Second)
	if len(transitions) < 2 {
		t.Fatalf("transitions = %v, want dirty then clean", transitions)
	}
	if transitions[0] != 1 {
		t.Fatalf("first transition = %d, want 1", transitions[0])
	}
	if transitions[len(transitions)-1] != 0 {
		t.Fatalf("last transition = %d, want 0", transitions[len(transitions)-1])
	}
	f.cache.Close()
}

func TestFlushNowEquivalentToSyncWithoutCallback(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1 << 18})
	f.cache.Write(4<<20, nil)
	f.cache.FlushNow()
	f.k.RunUntil(5 * sim.Second)
	if f.cache.DirtyPages() != 0 {
		t.Fatalf("FlushNow left %d dirty pages", f.cache.DirtyPages())
	}
	f.cache.Close()
}

func TestWritebackWindowBoundsInFlight(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1 << 20, WritebackWindow: 2, WritebackChunk: 1 << 20})
	f.cache.Write(100<<20, nil)
	f.cache.Sync(nil)
	// Immediately after the sync kick, at most 2 chunks may be in flight
	// in the block queue.
	if p := f.queue.Pending(); p > 2 {
		t.Fatalf("queue pending = %d with window 2", p)
	}
	f.k.RunUntil(30 * sim.Second)
	if f.cache.DirtyPages() != 0 {
		t.Fatalf("sync incomplete: %d pages", f.cache.DirtyPages())
	}
	f.cache.Close()
}

func TestDirtyFraction(t *testing.T) {
	f := mkFixture(Config{TotalPages: 1000})
	f.cache.Write(100*PageSize, nil)
	if got := f.cache.DirtyFraction(); got != 0.1 {
		t.Fatalf("DirtyFraction = %v", got)
	}
	f.cache.Close()
}

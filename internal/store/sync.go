package store

import (
	"sort"
	"strings"
)

// This file is the store's cheap-reconnect machinery (ISSUE 6): rolling
// per-subtree content hashes and a bounded mutation journal. Together
// they let a client that cached a subtree earlier catch up with a single
// round trip — a hash match means "nothing changed, keep your copy", a
// journal hit means "here are exactly the paths that moved", and only a
// journal miss (the client is older than the retained window) forces the
// full snapshot walk. internal/netstore's sync op is the wire surface;
// docs/WIRE_PROTOCOL.md §6 documents the sequence.
//
// Both structures are maintained incrementally inside Write/Remove/
// AddDomain on the kernel goroutine, so they follow the store's
// single-goroutine discipline and stay deterministic: same operation
// sequence, same hashes, same journal.

// DefaultJournalCap bounds the mutation journal: the store retains at
// least this many most-recent (version, path) entries. Reconnects older
// than the retained window fall back to a full snapshot.
const DefaultJournalCap = 4096

// journalEntry records one mutated path at one store version. removed
// marks subtree removals: a sync client must prune its copy of the
// subtree even if the path was later recreated (remove-then-recreate
// would otherwise leave the client holding children that died with the
// first incarnation).
type journalEntry struct {
	version uint64
	path    string
	removed bool
}

// Delta is one journal-window change as reported by DeltasSince: a path
// that was mutated, plus whether a subtree removal of it occurred
// anywhere in the window (the path may exist again now).
type Delta struct {
	Path    string
	Removed bool
}

// nodeHash is the per-node content hash over path and value with a
// separator, XOR-folded into subtree hashes. XOR folding makes node
// insertion and removal O(1): adding and removing the same (path, value)
// cancel exactly. The hash is never persisted or compared across
// processes — a client's remembered hash only ever meets the same
// server's counter — so it needs collision resistance, not a fixed
// algorithm. It mixes 8-byte words per multiply instead of FNV's
// byte-at-a-time chain: value payloads dominate the bytes hashed on the
// write path, and the serial multiply per byte was the single hottest
// instruction in the store under load.
func nodeHash(path, value string) uint64 {
	return mixString(pathHashState(path), value)
}

// pathHashState is the node-hash state after folding the path and the
// path/value separator — the per-path prefix of nodeHash. The path cache
// memoizes it so a hot-key write hashes only the old and new values.
func pathHashState(path string) uint64 {
	h := mixString(14695981039346656037, path)
	return mixWord(h, 0xa5) // path/value separator
}

// mixWord folds one 64-bit word into the running hash (FxHash-style
// rotate-xor-multiply).
func mixWord(h, k uint64) uint64 {
	h = (h<<5 | h>>59) ^ k
	return h * 0x517cc1b727220a95
}

// mixString folds a string into the running hash 8 bytes at a time, with
// the length folded in so "ab"+"c" and "a"+"bc" cannot collide across
// the separator.
func mixString(h uint64, s string) uint64 {
	h = mixWord(h, uint64(len(s)))
	for len(s) >= 8 {
		k := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
		h = mixWord(h, k)
		s = s[8:]
	}
	if len(s) > 0 {
		var k uint64
		for i := 0; i < len(s); i++ {
			k |= uint64(s[i]) << (8 * i)
		}
		h = mixWord(h, k)
	}
	return h
}

// bucketOf maps a path (as split parts) to its hash bucket: the owning
// domain's id segment (a substring of the path — no allocation on the
// write path), or "" for structural nodes at or above the domain level.
// The short key is internal; SubtreeHash translates from the public
// /local/domain/<id> spelling.
func bucketOf(parts []string) string {
	if len(parts) >= 3 && parts[0] == "local" && parts[1] == "domain" {
		return parts[2]
	}
	return ""
}

// noteNode folds one node's presence (or, called twice, a value change)
// into its subtree hash.
func (s *Store) noteNode(parts []string, path, value string) {
	*s.hashCell(bucketOf(parts)) ^= nodeHash(path, value)
}

// noteCreated folds the freshly created empty nodes of a Write (levels
// first..len(parts)-1 — creation cascades, so they are a suffix of the
// chain) into their subtree hashes and journals them at version v. Only
// runs when a write actually created nodes, so the hot path (re-writing
// an existing key) never materializes intermediate path strings.
func (s *Store) noteCreated(parts []string, first int, v uint64) {
	path := ""
	for i := 0; i < first; i++ {
		path += "/" + parts[i]
	}
	for i := first; i < len(parts); i++ {
		path += "/" + parts[i]
		s.noteNode(parts[:i+1], path, "")
		s.journalAppend(v, path, false)
	}
}

// unhashSubtree folds a subtree out of the bucket hashes ahead of its
// removal. XOR makes the traversal order irrelevant.
func (s *Store) unhashSubtree(parts []string, path string, n *node) {
	s.noteNode(parts, path, n.value)
	for name, child := range n.children {
		s.unhashSubtree(append(parts, name), path+"/"+name, child)
	}
}

// SubtreeHash reports the rolling content hash of a subtree. root must
// be a /local/domain/<id> subtree root (the per-domain bucket), or "/",
// "/local" or "/local/domain" for the XOR of every bucket including the
// structural one. Hashes cover node paths and values, not permissions.
func (s *Store) SubtreeHash(root string) uint64 {
	parts, err := split(root)
	if err != nil {
		return 0
	}
	if b := bucketOf(parts); b != "" {
		if len(parts) != 3 {
			return 0 // deeper than a bucket root: not tracked
		}
		if p := s.subHashes[b]; p != nil {
			return *p
		}
		return 0
	}
	var h uint64
	for _, v := range s.subHashes {
		h ^= *v
	}
	return h
}

// SetJournalCap resizes the retained journal window (minimum 1). It
// applies from the next mutation on.
func (s *Store) SetJournalCap(n int) {
	if n < 1 {
		n = 1
	}
	s.journalCap = n
}

// journalAppend records a mutated path (removed marks subtree
// removals). The ring is compacted in halves so appends stay amortized
// O(1); evictedThrough remembers how far back DeltasSince can still
// answer.
func (s *Store) journalAppend(version uint64, path string, removed bool) {
	cap := s.journalCap
	if cap <= 0 {
		cap = DefaultJournalCap
		s.journalCap = cap
	}
	if len(s.journal) >= 2*cap {
		s.evictedThrough = s.journal[len(s.journal)-cap-1].version
		s.journal = append(s.journal[:0], s.journal[len(s.journal)-cap:]...)
	}
	s.journal = append(s.journal, journalEntry{version: version, path: path, removed: removed})
}

// DeltasSince reports every path mutated after store version v, deduped
// and sorted, with ok=false when the journal no longer covers v (the
// caller must fall back to a full walk). A Delta's Removed flag is true
// when any subtree removal of the path happened in the window — the
// consumer must prune its copy before applying current state, because
// the path may have been recreated since and its old children are gone.
func (s *Store) DeltasSince(v uint64) (deltas []Delta, ok bool) {
	if v < s.evictedThrough {
		return nil, false
	}
	removed := map[string]bool{}
	var paths []string
	for _, e := range s.journal {
		if e.version <= v {
			continue
		}
		if _, dup := removed[e.path]; !dup {
			paths = append(paths, e.path)
		}
		removed[e.path] = removed[e.path] || e.removed
	}
	// Deterministic order for wire replies and tests.
	sort.Strings(paths)
	deltas = make([]Delta, len(paths))
	for i, p := range paths {
		deltas[i] = Delta{Path: p, Removed: removed[p]}
	}
	return deltas, true
}

// ChangesSince is DeltasSince flattened to just the touched paths.
func (s *Store) ChangesSince(v uint64) (paths []string, ok bool) {
	deltas, ok := s.DeltasSince(v)
	if !ok {
		return nil, false
	}
	paths = make([]string, len(deltas))
	for i, d := range deltas {
		paths[i] = d.Path
	}
	return paths, true
}

// EnsureRoot creates the structural /local/domain chain without creating
// any domain home, so a snapshot of the tree root has its spine before
// the first handshake. Idempotent; netstore's shard 0 calls it at server
// start (sharded snapshots export structural nodes from shard 0 only).
func (s *Store) EnsureRoot() {
	n := s.root
	path := ""
	for _, p := range []string{"local", "domain"} {
		path += "/" + p
		child := n.child(p)
		if child == nil {
			child = &node{owner: Dom0}
			if n.children == nil {
				n.children = map[string]*node{}
			}
			n.children[p] = child
			n.sorted = nil
			s.noteNode(strings.Split(path[1:], "/"), path, "")
		}
		n = child
	}
}

package store

import (
	"testing"

	"iorchestra/internal/sim"
)

// The fault hooks must (a) lose a write while acknowledging it, with no
// watch firing, (b) drop a delivery per-watch, and (c) stretch delivery
// latency — each visible in FaultStats.
func TestFaultHooksDropWrite(t *testing.T) {
	k, s := newTestStore()
	var fired int
	s.Watch(Dom0, "/local/domain/1", func(path, value string) { fired++ })
	s.Write(Dom0, "/local/domain/1/key", "old")
	drop := false
	s.SetFaultHooks(&FaultHooks{
		DropWrite: func(dom DomID, path string) bool { return drop },
	})
	drop = true
	if err := s.Write(Dom0, "/local/domain/1/key", "new"); err != nil {
		t.Fatalf("dropped write must still succeed from the writer's view: %v", err)
	}
	k.RunUntil(sim.Second)
	if v, _ := s.Read(Dom0, "/local/domain/1/key"); v != "old" {
		t.Fatalf("stale key = %q, want old value preserved", v)
	}
	if fired != 1 {
		t.Fatalf("watch fired %d times, want 1 (none for the lost write)", fired)
	}
	dw, _, _ := s.FaultStats()
	if dw != 1 {
		t.Fatalf("droppedWrites = %d", dw)
	}
}

func TestFaultHooksDropAndDelayDelivery(t *testing.T) {
	k, s := newTestStore()
	var got []sim.Time
	s.Watch(Dom0, "/local/domain/1", func(path, value string) {
		got = append(got, k.Now())
	})
	mode := ""
	s.SetFaultHooks(&FaultHooks{
		Delivery: func(dom DomID, path string) (sim.Duration, bool) {
			switch mode {
			case "drop":
				return 0, true
			case "delay":
				return sim.Millisecond, false
			}
			return 0, false
		},
	})
	s.Write(Dom0, "/local/domain/1/key", "a") // clean: notifyLatency only
	mode = "drop"
	s.Write(Dom0, "/local/domain/1/key", "b") // lost
	mode = "delay"
	s.Write(Dom0, "/local/domain/1/key", "c") // +1ms
	k.RunUntil(sim.Second)
	if len(got) != 2 {
		t.Fatalf("delivered %d notifications, want 2 (one dropped)", len(got))
	}
	if got[0] != sim.Time(10*sim.Microsecond) {
		t.Fatalf("clean delivery at %v", got[0])
	}
	if got[1] != sim.Time(sim.Millisecond+10*sim.Microsecond) {
		t.Fatalf("delayed delivery at %v", got[1])
	}
	_, dn, dl := s.FaultStats()
	if dn != 1 || dl != 1 {
		t.Fatalf("FaultStats notifies: dropped=%d delayed=%d", dn, dl)
	}
	// Uninstalling restores clean behavior.
	s.SetFaultHooks(nil)
	mode = "drop"
	s.Write(Dom0, "/local/domain/1/key", "d")
	k.RunUntil(2 * sim.Second)
	if len(got) != 3 {
		t.Fatal("delivery still faulted after SetFaultHooks(nil)")
	}
}

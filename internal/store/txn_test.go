package store

// Transaction edge cases: read-your-writes, conflict windows on every
// shape of outside mutation, pre-validated permission failures leaving
// no partial state, and interleaved retry loops racing a shared counter.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"iorchestra/internal/sim"
)

func txnStore(t *testing.T) (*sim.Kernel, *Store) {
	t.Helper()
	k := sim.NewKernel()
	s := New(k, 0)
	s.AddDomain(3)
	return k, s
}

func mustWrite(t *testing.T, s *Store, dom DomID, path, value string) {
	t.Helper()
	if err := s.Write(dom, path, value); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/a", "old")

	txn := s.Begin(3)
	if err := txn.Write(base+"/a", "new"); err != nil {
		t.Fatal(err)
	}
	if v, err := txn.Read(base + "/a"); err != nil || v != "new" {
		t.Fatalf("buffered write not visible: %q, %v", v, err)
	}
	// The underlying store must still hold the old value pre-commit.
	if v, _ := s.Read(3, base+"/a"); v != "old" {
		t.Fatalf("uncommitted write leaked: %q", v)
	}
	if err := txn.Remove(base + "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read(base + "/a"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("buffered removal should read as absent, got %v", err)
	}
	// Last buffered op wins: write after remove resurrects the key.
	if err := txn.Write(base+"/a", "again"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read(3, base+"/a"); v != "again" {
		t.Fatalf("want final buffered value applied, got %q", v)
	}
}

func TestTxnConflictWhenReadKeyChanges(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/k", "1")

	txn := s.Begin(3)
	if _, err := txn.Read(base + "/k"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(base+"/other", "x"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 3, base+"/k", "2") // outside write invalidates the read
	if err := txn.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if s.Exists(base + "/other") {
		t.Fatal("conflicted commit applied a buffered write")
	}
}

func TestTxnConflictWhenReadKeyRemoved(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/k", "1")

	txn := s.Begin(3)
	if _, err := txn.Read(base + "/k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(3, base+"/k"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict after outside removal, got %v", err)
	}
}

func TestTxnConflictWhenAbsentKeyCreated(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)

	txn := s.Begin(3)
	if _, err := txn.Read(base + "/new"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("want ErrNoEntry on absent read, got %v", err)
	}
	mustWrite(t, s, 3, base+"/new", "created") // appears mid-transaction
	if err := txn.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("absence is part of the read set; want ErrConflict, got %v", err)
	}
}

func TestTxnWriteWriteConflictAndRetry(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/n", "0")

	txn := s.Begin(3)
	if err := txn.Write(base+"/n", "10"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, 3, base+"/n", "5")
	if err := txn.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want write-write ErrConflict, got %v", err)
	}
	// The canonical retry: a fresh transaction over the new state wins.
	retry := s.Begin(3)
	v, err := retry.Read(base + "/n")
	if err != nil || v != "5" {
		t.Fatalf("retry read: %q, %v", v, err)
	}
	if err := retry.Write(base+"/n", v+"0"); err != nil {
		t.Fatal(err)
	}
	if err := retry.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if v, _ := s.Read(3, base+"/n"); v != "50" {
		t.Fatalf("retry result: %q", v)
	}
}

func TestTxnRemoveAbsentIsNoop(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	txn := s.Begin(3)
	if err := txn.Remove(base + "/ghost"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("removing an absent node must commit cleanly, got %v", err)
	}
}

func TestTxnPermissionFailureAppliesNothing(t *testing.T) {
	_, s := txnStore(t)
	s.AddDomain(4)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/mine", "old")

	txn := s.Begin(3)
	if err := txn.Write(base+"/mine", "new"); err != nil {
		t.Fatal(err)
	}
	// Second buffered write targets dom4's subtree: commit must
	// pre-validate and reject WITHOUT applying the first write.
	if err := txn.Write(DomainPath(4)+"/theirs", "x"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrPermission) {
		t.Fatalf("want ErrPermission, got %v", err)
	}
	if v, _ := s.Read(3, base+"/mine"); v != "old" {
		t.Fatalf("partial application after permission failure: %q", v)
	}
}

func TestTxnFinishedTransactionRejectsEverything(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	txn := s.Begin(3)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("double commit must error")
	}
	if _, err := txn.Read(base + "/a"); err == nil {
		t.Fatal("read on finished txn must error")
	}
	if err := txn.Write(base+"/a", "x"); err == nil {
		t.Fatal("write on finished txn must error")
	}
	if err := txn.Remove(base + "/a"); err == nil {
		t.Fatal("remove on finished txn must error")
	}
	aborted := s.Begin(3)
	aborted.Abort()
	if err := aborted.Commit(); err == nil {
		t.Fatal("commit after abort must error")
	}
}

func TestTxnDisjointInterleavedCommits(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	a, b := s.Begin(3), s.Begin(3)
	if err := a.Write(base+"/a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(base+"/b", "2"); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("txn a: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("txn b (disjoint keys): %v", err)
	}
}

// TestTxnConcurrentRetryLoops runs goroutine retry loops incrementing
// one shared counter. Store access is serialized by a mutex (the
// single-goroutine discipline a store loop provides), but transactions
// stay open ACROSS the serialization boundary, so commits genuinely
// race each other's read sets. Every increment must land exactly once —
// under -race this also proves Txn keeps no hidden shared state.
func TestTxnConcurrentRetryLoops(t *testing.T) {
	_, s := txnStore(t)
	base := DomainPath(3)
	mustWrite(t, s, 3, base+"/counter", "0")

	const workers = 8
	const increments = 25
	var mu sync.Mutex
	conflicts := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				// The conflict retry is bounded: a livelock here would
				// otherwise hang the whole suite, and 10k failed commits
				// for one increment across 8 workers means the conflict
				// detector is broken, not unlucky.
				for attempt := 0; ; attempt++ {
					if attempt > 10000 {
						t.Errorf("increment starved: %d conflict retries without a commit", attempt)
						return
					}
					mu.Lock()
					txn := s.Begin(3)
					v, err := txn.Read(base + "/counter")
					mu.Unlock()
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					var n int
					fmt.Sscanf(v, "%d", &n)
					runtime.Gosched() // widen the conflict window
					mu.Lock()
					err = txn.Write(base+"/counter", fmt.Sprint(n+1))
					if err == nil {
						err = txn.Commit()
					}
					if errors.Is(err, ErrConflict) {
						conflicts++
						mu.Unlock()
						continue
					}
					mu.Unlock()
					if err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	v, err := s.Read(3, base+"/counter")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(workers * increments); v != want {
		t.Fatalf("lost increments: counter %s, want %s (%d conflicts retried)", v, want, conflicts)
	}
	t.Logf("counter %s after %d conflict retries", v, conflicts)
}

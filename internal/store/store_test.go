package store

import (
	"errors"
	"strconv"
	"sync"
	"testing"

	"iorchestra/internal/sim"
)

func newTestStore() (*sim.Kernel, *Store) {
	k := sim.NewKernel()
	return k, New(k, 10*sim.Microsecond)
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, s := newTestStore()
	if err := s.Write(Dom0, "/local/domain/1/virt-dev/xvda/congested", "1"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(Dom0, "/local/domain/1/virt-dev/xvda/congested")
	if err != nil || v != "1" {
		t.Fatalf("Read = %q, %v", v, err)
	}
}

func TestReadMissingEntry(t *testing.T) {
	_, s := newTestStore()
	_, err := s.Read(Dom0, "/nope")
	if !errors.Is(err, ErrNoEntry) {
		t.Fatalf("err = %v, want ErrNoEntry", err)
	}
}

func TestBadPaths(t *testing.T) {
	_, s := newTestStore()
	for _, p := range []string{"", "relative", "/a//b", "/a/"} {
		if err := s.Write(Dom0, p, "x"); !errors.Is(err, ErrBadPath) {
			t.Errorf("Write(%q) err = %v, want ErrBadPath", p, err)
		}
	}
	if err := s.Write(Dom0, "/", "x"); !errors.Is(err, ErrBadPath) {
		t.Errorf("writing root err = %v", err)
	}
}

func TestDomainIsolation(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(1)
	s.AddDomain(2)
	// Dom 1 sets up its own subtree.
	if err := s.Write(1, DomainPath(1)+"/virt-dev/xvda/nr", "42"); err != nil {
		t.Fatal(err)
	}
	// Dom 2 cannot read or write Dom 1's data.
	if _, err := s.Read(2, DomainPath(1)+"/virt-dev/xvda/nr"); !errors.Is(err, ErrPermission) {
		t.Fatalf("cross-domain read err = %v, want ErrPermission", err)
	}
	if err := s.Write(2, DomainPath(1)+"/virt-dev/xvda/nr", "0"); !errors.Is(err, ErrPermission) {
		t.Fatalf("cross-domain write err = %v, want ErrPermission", err)
	}
	// Dom0 can do both.
	if _, err := s.Read(Dom0, DomainPath(1)+"/virt-dev/xvda/nr"); err != nil {
		t.Fatalf("Dom0 read err = %v", err)
	}
	if err := s.Write(Dom0, DomainPath(1)+"/virt-dev/xvda/flush_now", "1"); err != nil {
		t.Fatalf("Dom0 write err = %v", err)
	}
	// And Dom 1 can read what Dom0 wrote in its subtree... only if it can
	// read the node; Dom0-created node under dom1's subtree is owned by
	// Dom0, so Dom0 must grant access.
	if _, err := s.Read(1, DomainPath(1)+"/virt-dev/xvda/flush_now"); !errors.Is(err, ErrPermission) {
		t.Fatalf("ungranted read err = %v, want ErrPermission", err)
	}
	if err := s.Grant(Dom0, DomainPath(1)+"/virt-dev/xvda/flush_now", 1, PermWrite); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(1, DomainPath(1)+"/virt-dev/xvda/flush_now"); err != nil || v != "1" {
		t.Fatalf("granted read = %q, %v", v, err)
	}
}

func TestGrantRequiresOwnerOrDom0(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(1)
	s.AddDomain(2)
	s.Write(1, "/local/domain/1/x", "v")
	if err := s.Grant(2, "/local/domain/1/x", 2, PermRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner Grant err = %v", err)
	}
	if err := s.Grant(1, "/local/domain/1/x", 2, PermRead); err != nil {
		t.Fatalf("owner Grant err = %v", err)
	}
	if _, err := s.Read(2, "/local/domain/1/x"); err != nil {
		t.Fatalf("granted read err = %v", err)
	}
	// Read grant does not allow writes.
	if err := s.Write(2, "/local/domain/1/x", "w"); !errors.Is(err, ErrPermission) {
		t.Fatalf("read-granted write err = %v", err)
	}
}

func TestRemoveSubtree(t *testing.T) {
	_, s := newTestStore()
	s.Write(Dom0, "/a/b/c", "1")
	s.Write(Dom0, "/a/b/d", "2")
	if err := s.Remove(Dom0, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a/b/c") || s.Exists("/a/b") {
		t.Fatal("subtree survives removal")
	}
	if !s.Exists("/a") {
		t.Fatal("parent removed")
	}
	if err := s.Remove(Dom0, "/a/b"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestList(t *testing.T) {
	_, s := newTestStore()
	s.Write(Dom0, "/dir/z", "1")
	s.Write(Dom0, "/dir/a", "2")
	names, err := s.List(Dom0, "/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("List = %v, want sorted [a z]", names)
	}
}

func TestWatchFiresAfterLatency(t *testing.T) {
	k, s := newTestStore()
	s.AddDomain(1)
	var gotPath, gotValue string
	var at sim.Time
	_, err := s.Watch(Dom0, "/local/domain/1", func(p, v string) {
		gotPath, gotValue, at = p, v, k.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.At(sim.Millisecond, func() {
		s.Write(1, "/local/domain/1/has_dirty_pages", "1")
	})
	k.Run()
	if gotPath != "/local/domain/1/has_dirty_pages" || gotValue != "1" {
		t.Fatalf("watch got (%q, %q)", gotPath, gotValue)
	}
	if want := sim.Millisecond + 10*sim.Microsecond; at != want {
		t.Fatalf("watch fired at %v, want %v", at, want)
	}
}

func TestWatchPrefixSemantics(t *testing.T) {
	k, s := newTestStore()
	count := 0
	s.Watch(Dom0, "/a/b", func(p, v string) { count++ })
	k.At(1, func() {
		s.Write(Dom0, "/a/b", "x")       // exact: fires
		s.Write(Dom0, "/a/b/c", "x")     // child: fires
		s.Write(Dom0, "/a/bb", "x")      // sibling with prefix string: must NOT fire
		s.Write(Dom0, "/a", "x")         // ancestor: must NOT fire
		s.Write(Dom0, "/other/b/c", "x") // unrelated: must NOT fire
	})
	k.Run()
	if count != 2 {
		t.Fatalf("watch fired %d times, want 2", count)
	}
}

func TestWatchPermissionFiltered(t *testing.T) {
	k, s := newTestStore()
	s.AddDomain(1)
	s.AddDomain(2)
	fired := false
	// Dom 2 watches dom 1's subtree; it cannot read it, so no events.
	s.Watch(2, "/local/domain/1", func(p, v string) { fired = true })
	k.At(1, func() { s.Write(1, "/local/domain/1/x", "v") })
	k.Run()
	if fired {
		t.Fatal("watch leaked across domains")
	}
}

func TestUnwatchDropsInFlight(t *testing.T) {
	k, s := newTestStore()
	fired := false
	id, _ := s.Watch(Dom0, "/a", func(p, v string) { fired = true })
	k.At(1, func() {
		s.Write(Dom0, "/a/x", "v")
		s.Unwatch(id) // notification already queued, must be dropped
	})
	k.Run()
	if fired {
		t.Fatal("unwatched watch fired")
	}
}

func TestWatchOnRemove(t *testing.T) {
	k, s := newTestStore()
	var gotValue string
	fired := 0
	s.Watch(Dom0, "/a", func(p, v string) { fired++; gotValue = v })
	k.At(1, func() {
		s.Write(Dom0, "/a/x", "v")
		s.Remove(Dom0, "/a/x")
	})
	k.Run()
	if fired != 2 {
		t.Fatalf("fired %d, want 2 (write + remove)", fired)
	}
	if gotValue != "" {
		t.Fatalf("remove notification value = %q, want empty", gotValue)
	}
}

func TestTypedHelpers(t *testing.T) {
	_, s := newTestStore()
	if err := s.WriteInt(Dom0, "/n", 42); err != nil {
		t.Fatal(err)
	}
	if v, err := s.ReadInt(Dom0, "/n", -1); err != nil || v != 42 {
		t.Fatalf("ReadInt = %d, %v", v, err)
	}
	if v, err := s.ReadInt(Dom0, "/missing", 7); err != nil || v != 7 {
		t.Fatalf("ReadInt default = %d, %v", v, err)
	}
	s.WriteBool(Dom0, "/b", true)
	if v, err := s.ReadBool(Dom0, "/b"); err != nil || !v {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	s.WriteBool(Dom0, "/b", false)
	if v, _ := s.ReadBool(Dom0, "/b"); v {
		t.Fatal("ReadBool after false write = true")
	}
	if v, err := s.ReadBool(Dom0, "/missingbool"); err != nil || v {
		t.Fatalf("ReadBool missing = %v, %v", v, err)
	}
	s.WriteFloat(Dom0, "/f", 2.5)
	if v, err := s.ReadFloat(Dom0, "/f", 0); err != nil || v != 2.5 {
		t.Fatalf("ReadFloat = %v, %v", v, err)
	}
	if v, err := s.ReadFloat(Dom0, "/missf", 1.25); err != nil || v != 1.25 {
		t.Fatalf("ReadFloat default = %v, %v", v, err)
	}
	// Corrupt values report errors with defaults.
	s.Write(Dom0, "/bad", "not-a-number")
	if _, err := s.ReadInt(Dom0, "/bad", 0); err == nil {
		t.Fatal("ReadInt of garbage succeeded")
	}
	if _, err := s.ReadFloat(Dom0, "/bad", 0); err == nil {
		t.Fatal("ReadFloat of garbage succeeded")
	}
}

func TestStatsCount(t *testing.T) {
	k, s := newTestStore()
	s.Watch(Dom0, "/a", func(p, v string) {})
	k.At(1, func() {
		s.Write(Dom0, "/a/x", "1")
		s.Read(Dom0, "/a/x")
	})
	k.Run()
	r, w, n := s.Stats()
	if r != 1 || w != 1 || n != 1 {
		t.Fatalf("Stats = %d,%d,%d", r, w, n)
	}
}

func TestTxnCommitAppliesAtomically(t *testing.T) {
	k, s := newTestStore()
	count := 0
	s.Watch(Dom0, "/t", func(p, v string) { count++ })
	k.At(1, func() {
		tx := s.Begin(Dom0)
		tx.Write("/t/a", "1")
		tx.Write("/t/b", "2")
		if v, err := tx.Read("/t/a"); err != nil || v != "1" {
			t.Errorf("txn read-own-write = %q, %v", v, err)
		}
		if s.Exists("/t/a") {
			t.Error("write visible before commit")
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("Commit: %v", err)
		}
	})
	k.Run()
	if v, _ := s.Read(Dom0, "/t/b"); v != "2" {
		t.Fatal("committed write missing")
	}
	if count != 2 {
		t.Fatalf("watches fired %d, want 2", count)
	}
}

func TestTxnConflictDetected(t *testing.T) {
	_, s := newTestStore()
	s.Write(Dom0, "/c/x", "old")
	tx := s.Begin(Dom0)
	if _, err := tx.Read("/c/x"); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer changes the node.
	s.Write(Dom0, "/c/x", "new")
	tx.Write("/c/y", "1")
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
	if s.Exists("/c/y") {
		t.Fatal("conflicted txn leaked a write")
	}
}

func TestTxnWriteWriteConflict(t *testing.T) {
	_, s := newTestStore()
	s.Write(Dom0, "/c/x", "old")
	tx := s.Begin(Dom0)
	tx.Write("/c/x", "mine")
	s.Write(Dom0, "/c/x", "theirs")
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
	if v, _ := s.Read(Dom0, "/c/x"); v != "theirs" {
		t.Fatalf("value = %q, want theirs", v)
	}
}

func TestTxnPermissionCheckedAtCommit(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(1)
	s.AddDomain(2)
	s.Write(1, "/local/domain/1/x", "v")
	tx := s.Begin(2)
	tx.Write("/local/domain/1/x", "stolen")
	if err := tx.Commit(); !errors.Is(err, ErrPermission) {
		t.Fatalf("Commit err = %v, want ErrPermission", err)
	}
	if v, _ := s.Read(Dom0, "/local/domain/1/x"); v != "v" {
		t.Fatal("permission-denied txn mutated store")
	}
}

func TestTxnRemove(t *testing.T) {
	_, s := newTestStore()
	s.Write(Dom0, "/r/x", "v")
	tx := s.Begin(Dom0)
	tx.Remove("/r/x")
	if _, err := tx.Read("/r/x"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("txn read of buffered removal err = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/r/x") {
		t.Fatal("removal not applied")
	}
}

func TestTxnAbortAndReuse(t *testing.T) {
	_, s := newTestStore()
	tx := s.Begin(Dom0)
	tx.Write("/a/x", "1")
	tx.Abort()
	if s.Exists("/a/x") {
		t.Fatal("aborted txn applied writes")
	}
	if err := tx.Write("/a/y", "2"); err == nil {
		t.Fatal("write on finished txn succeeded")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit on finished txn succeeded")
	}
}

func TestDomainPathFormat(t *testing.T) {
	if got := DomainPath(17); got != "/local/domain/17" {
		t.Fatalf("DomainPath = %q", got)
	}
}

// TestConcurrentWatchUnwatch exercises the watch table under -race: worker
// goroutines register and remove watches while the main goroutine (the
// simulation goroutine) writes and steps the kernel. Node data stays on
// the kernel goroutine — only Watch/Unwatch are called concurrently, which
// is exactly the contract the watchMu lock provides.
func TestConcurrentWatchUnwatch(t *testing.T) {
	k, s := newTestStore()
	const workers = 8
	const perWorker = 200

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, err := s.Watch(Dom0, "/contended", func(path, value string) {})
				if err != nil {
					t.Error(err)
					return
				}
				s.Unwatch(id)
			}
		}()
	}

	// Meanwhile the simulation goroutine keeps writing (firing watches,
	// which snapshots the table) and delivering notifications.
	for i := 0; i < 100; i++ {
		if err := s.Write(Dom0, "/contended/key", strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
		k.RunUntil(k.Now() + sim.Millisecond)
	}
	close(stop)
	wg.Wait()

	// A watch registered after the churn still works.
	fired := false
	if _, err := s.Watch(Dom0, "/contended", func(path, value string) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(Dom0, "/contended/key", "final"); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(k.Now() + sim.Second)
	if !fired {
		t.Fatal("watch registered after concurrent churn did not fire")
	}
}

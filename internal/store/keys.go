package store

// This file owns the cluster half of the store key schema: the /cluster
// namespace the federation layer (internal/federation) keeps beside the
// per-domain /local/domain tree. docs/CLUSTER.md is the normative
// reference for the keys below; docs/STORE_KEYS.md indexes both halves.
//
// Layout:
//
//	/cluster/hypervisors/<id>/...   one registered host: heartbeat,
//	                                capacity and load keys published by
//	                                its HostAgent, TTL-expired by the
//	                                registry when the heartbeat stalls
//	/cluster/guests/<uid>/...       one cluster-placed guest: the host
//	                                holding it and its placement record
//
// The whole namespace is rooted at a Dom0-owned node, so only the
// control plane writes it; guests never see cluster state directly.
// The storekeys vet pass enforces that raw "/cluster/..." literals
// appear only in this file — every other package must build cluster
// paths through these constructors (docs/LINTING.md).

// ClusterRoot is the top of the cluster-coordination namespace. Like
// Root it is the only sanctioned spelling of the prefix outside this
// package.
const ClusterRoot = "/cluster"

// HypervisorsPath returns the host-registry directory,
// /cluster/hypervisors; each child is one registered hypervisor.
func HypervisorsPath() string { return ClusterRoot + "/hypervisors" }

// HypervisorPath returns the registry subtree root for one host:
// /cluster/hypervisors/<id>.
func HypervisorPath(id string) string { return HypervisorsPath() + "/" + id }

// HypervisorKey returns the absolute path of one host-registry key:
// /cluster/hypervisors/<id>/<key>.
func HypervisorKey(id, key string) string { return HypervisorPath(id) + "/" + key }

// ClusterGuestsPath returns the guest-placement directory,
// /cluster/guests; each child is one cluster-placed guest.
func ClusterGuestsPath() string { return ClusterRoot + "/guests" }

// ClusterGuestPath returns the placement subtree root for one guest:
// /cluster/guests/<uid>.
func ClusterGuestPath(uid string) string { return ClusterGuestsPath() + "/" + uid }

// ClusterGuestKey returns the absolute path of one guest placement key:
// /cluster/guests/<uid>/<key>.
func ClusterGuestKey(uid, key string) string { return ClusterGuestPath(uid) + "/" + key }

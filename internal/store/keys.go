package store

// This file owns the schema constructors beyond the per-disk tree: the
// /cluster namespace the federation layer (internal/federation) keeps
// beside the per-domain /local/domain tree, and the per-guest /sla
// subtree the G-state subsystem (internal/gstate) declares tiers under.
// docs/CLUSTER.md and docs/GSTATES.md are the normative references for
// the keys below; docs/STORE_KEYS.md indexes all of them.
//
// Layout:
//
//	/cluster/hypervisors/<id>/...   one registered host: heartbeat,
//	                                capacity and load keys published by
//	                                its HostAgent, TTL-expired by the
//	                                registry when the heartbeat stalls
//	/cluster/hypervisors/<id>/tiers/<tier>
//	                                per-tier admitted-guest count the
//	                                host's agent publishes for tiered
//	                                placement
//	/cluster/guests/<uid>/...       one cluster-placed guest: the host
//	                                holding it and its placement record
//	/local/domain/<dom>/sla/...     one guest's declared SLA tier and
//	                                targets plus the published G-state
//
// The /cluster namespace is rooted at a Dom0-owned node, so only the
// control plane writes it; guests never see cluster state directly.
// The storekeys vet pass enforces that raw "/cluster/..." (and
// "/local/domain/...") literals appear only in this package — every
// other package must build paths through these constructors
// (docs/LINTING.md).

// ClusterRoot is the top of the cluster-coordination namespace. Like
// Root it is the only sanctioned spelling of the prefix outside this
// package.
const ClusterRoot = "/cluster"

// HypervisorsPath returns the host-registry directory,
// /cluster/hypervisors; each child is one registered hypervisor.
func HypervisorsPath() string { return ClusterRoot + "/hypervisors" }

// HypervisorPath returns the registry subtree root for one host:
// /cluster/hypervisors/<id>.
func HypervisorPath(id string) string { return HypervisorsPath() + "/" + id }

// HypervisorKey returns the absolute path of one host-registry key:
// /cluster/hypervisors/<id>/<key>.
func HypervisorKey(id, key string) string { return HypervisorPath(id) + "/" + key }

// ClusterGuestsPath returns the guest-placement directory,
// /cluster/guests; each child is one cluster-placed guest.
func ClusterGuestsPath() string { return ClusterRoot + "/guests" }

// ClusterGuestPath returns the placement subtree root for one guest:
// /cluster/guests/<uid>.
func ClusterGuestPath(uid string) string { return ClusterGuestsPath() + "/" + uid }

// ClusterGuestKey returns the absolute path of one guest placement key:
// /cluster/guests/<uid>/<key>.
func ClusterGuestKey(uid, key string) string { return ClusterGuestPath(uid) + "/" + key }

// HypervisorTiersPath returns the per-tier admitted-guest directory for
// one host: /cluster/hypervisors/<id>/tiers. Each child is one SLA tier
// name holding the count of admitted guests in that tier, published by
// the host's agent for tiered placement (docs/GSTATES.md).
func HypervisorTiersPath(id string) string { return HypervisorPath(id) + "/tiers" }

// HypervisorTierKey returns the absolute path of one host's per-tier
// admitted count: /cluster/hypervisors/<id>/tiers/<tier>.
func HypervisorTierKey(id, tier string) string { return HypervisorTiersPath(id) + "/" + tier }

// SLAPath returns the SLA subtree root for a domain,
// /local/domain/<dom>/sla: the guest's declared tier and per-tier
// targets plus the manager-published performance state
// (internal/gstate, docs/GSTATES.md).
func SLAPath(dom DomID) string { return DomainPath(dom) + "/sla" }

// SLAKey returns the absolute path of one SLA key:
// /local/domain/<dom>/sla/<key>.
func SLAKey(dom DomID, key string) string { return SLAPath(dom) + "/" + key }

package store

import "fmt"

// Txn is an optimistic transaction, mirroring XenStore's
// TRANSACTION_START/END: reads are tracked, writes are buffered, and Commit
// fails with ErrConflict if any node read or written during the transaction
// changed underneath it, in which case the caller retries.
type Txn struct {
	s    *Store
	dom  DomID
	done bool

	readSet  map[string]uint64  // path -> version observed (0 = absent)
	writeSet map[string]*string // nil value = remove
	order    []string           // write order, for deterministic watch firing
}

// Begin starts a transaction on behalf of dom.
func (s *Store) Begin(dom DomID) *Txn {
	return &Txn{
		s:        s,
		dom:      dom,
		readSet:  map[string]uint64{},
		writeSet: map[string]*string{},
	}
}

func (t *Txn) versionOf(path string) uint64 {
	parts, err := split(path)
	if err != nil {
		return 0
	}
	n := t.s.lookup(parts)
	if n == nil {
		return 0
	}
	return n.version
}

// Read reads within the transaction, observing earlier buffered writes.
func (t *Txn) Read(path string) (string, error) {
	if t.done {
		return "", fmt.Errorf("store: use of finished transaction")
	}
	if v, ok := t.writeSet[path]; ok {
		if v == nil {
			return "", fmt.Errorf("%w: %s", ErrNoEntry, path)
		}
		return *v, nil
	}
	if _, ok := t.readSet[path]; !ok {
		t.readSet[path] = t.versionOf(path)
	}
	return t.s.Read(t.dom, path)
}

// Write buffers a write; permission is checked at commit.
func (t *Txn) Write(path, value string) error {
	if t.done {
		return fmt.Errorf("store: use of finished transaction")
	}
	if _, err := split(path); err != nil {
		return err
	}
	if _, ok := t.writeSet[path]; !ok {
		t.order = append(t.order, path)
	}
	// Record the version only if this is the first touch: a write after a
	// read must validate against the version the read observed, or a
	// read-modify-write racing another commit would silently lose it.
	if _, ok := t.readSet[path]; !ok {
		t.readSet[path] = t.versionOf(path)
	}
	v := value
	t.writeSet[path] = &v
	return nil
}

// Remove buffers a removal.
func (t *Txn) Remove(path string) error {
	if t.done {
		return fmt.Errorf("store: use of finished transaction")
	}
	if _, err := split(path); err != nil {
		return err
	}
	if _, ok := t.writeSet[path]; !ok {
		t.order = append(t.order, path)
	}
	if _, ok := t.readSet[path]; !ok {
		t.readSet[path] = t.versionOf(path)
	}
	t.writeSet[path] = nil
	return nil
}

// Commit validates the read set and applies buffered writes atomically.
// On ErrConflict nothing is applied and the caller may retry with a fresh
// transaction.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("store: double commit")
	}
	t.done = true
	for path, ver := range t.readSet {
		if t.versionOf(path) != ver {
			return fmt.Errorf("%w: %s changed", ErrConflict, path)
		}
	}
	// Pre-validate permissions so a failed write cannot leave a partial
	// application behind.
	for _, path := range t.order {
		if v := t.writeSet[path]; v == nil {
			parts, _ := split(path)
			n := t.s.lookup(parts)
			if n == nil {
				continue // removing an absent node is a no-op
			}
			if !canWrite(n, t.dom) {
				return fmt.Errorf("%w: dom%d removing %s", ErrPermission, t.dom, path)
			}
		} else if err := t.s.checkWritable(t.dom, path); err != nil {
			return err
		}
	}
	for _, path := range t.order {
		if v := t.writeSet[path]; v == nil {
			if t.s.Exists(path) {
				if err := t.s.Remove(t.dom, path); err != nil {
					panic(fmt.Sprintf("store: validated removal failed: %v", err))
				}
			}
		} else if err := t.s.Write(t.dom, path, *v); err != nil {
			panic(fmt.Sprintf("store: validated write failed: %v", err))
		}
	}
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// checkWritable reports whether dom could perform Write(path) right now,
// without mutating anything.
func (s *Store) checkWritable(dom DomID, path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	n := s.root
	for _, p := range parts {
		child := n.child(p)
		if child == nil {
			// Creation point: need write on the deepest existing ancestor.
			if !canWrite(n, dom) {
				return fmt.Errorf("%w: dom%d creating under %s", ErrPermission, dom, path)
			}
			return nil
		}
		n = child
	}
	if !canWrite(n, dom) {
		return fmt.Errorf("%w: dom%d writing %s", ErrPermission, dom, path)
	}
	return nil
}

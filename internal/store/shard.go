package store

import "strconv"

// Router is the deterministic shard router in front of a fleet of
// stores (ISSUE 6): per-domain /local/domain/<id> subtrees are disjoint,
// so a server may run one store (and one store-loop goroutine) per shard
// and route every operation by the domain its path belongs to. The
// mapping is pure arithmetic on the domain id — no state, no clock — so
// a sharded server replays a trace onto exactly the same shards every
// run, which is what keeps sim-kernel discipline and golden-trace parity
// intact per shard.
//
// Structural nodes at or above the domain level (/, /local,
// /local/domain) and non-numeric children of /local/domain have no
// owning domain; the Router reports them as global and the caller keeps
// them on shard 0 (internal/netstore documents the resulting
// semantics).
type Router struct{ n int }

// NewRouter returns a router over n shards (minimum 1).
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{n: n}
}

// Shards reports the shard count.
func (r Router) Shards() int { return r.n }

// ShardOf maps a domain to its home shard.
func (r Router) ShardOf(dom DomID) int {
	d := int(dom)
	if d < 0 {
		d = -d
	}
	return d % r.n
}

// PathShard maps an absolute path to the shard owning it. ok is false
// for structural/global paths, which live on shard 0 by convention (the
// index returned is 0 in that case, so callers that don't care about
// the distinction can use the index directly).
func (r Router) PathShard(path string) (shard int, ok bool) {
	dom, ok := PathDomain(path)
	if !ok {
		return 0, false
	}
	return r.ShardOf(dom), true
}

// PathDomain reports the domain owning path's /local/domain/<id>
// subtree. ok is false for paths at or above the domain level and for
// non-numeric children of /local/domain.
func PathDomain(path string) (DomID, bool) {
	const prefix = Root + "/"
	if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return 0, false
	}
	rest := path[len(prefix):]
	end := len(rest)
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			end = i
			break
		}
	}
	id, err := strconv.Atoi(rest[:end])
	if err != nil || id < 0 {
		return 0, false
	}
	return DomID(id), true
}

package store

import (
	"fmt"
	"reflect"
	"testing"
)

// recomputeBuckets walks the whole tree and rebuilds the per-subtree
// hash map from scratch — the oracle the incremental bookkeeping in
// Write/Remove/AddDomain must always agree with.
func recomputeBuckets(s *Store) map[string]uint64 {
	got := map[string]uint64{}
	var walk func(parts []string, path string, n *node)
	walk = func(parts []string, path string, n *node) {
		if path != "" {
			got[bucketOf(parts)] ^= nodeHash(path, n.value)
		}
		for name, child := range n.children {
			walk(append(parts, name), path+"/"+name, child)
		}
	}
	walk(nil, "", s.root)
	for b, h := range got {
		if h == 0 {
			delete(got, b) // cancelled buckets match an absent map entry
		}
	}
	return got
}

func checkHashes(t *testing.T, s *Store, when string) {
	t.Helper()
	want := recomputeBuckets(s)
	have := map[string]uint64{}
	for b, h := range s.subHashes {
		if *h != 0 {
			have[b] = *h
		}
	}
	if !reflect.DeepEqual(have, want) {
		t.Fatalf("%s: incremental hashes %v, recomputed %v", when, have, want)
	}
}

func TestSubtreeHashTracksMutations(t *testing.T) {
	_, s := newTestStore()
	s.EnsureRoot()
	checkHashes(t, s, "after EnsureRoot")

	s.AddDomain(3)
	checkHashes(t, s, "after AddDomain")

	if err := s.Write(Dom0, "/local/domain/3/virt-dev/xvda/congested", "1"); err != nil {
		t.Fatal(err)
	}
	checkHashes(t, s, "after deep creating write")

	before := s.SubtreeHash("/local/domain/3")
	if err := s.Write(Dom0, "/local/domain/3/virt-dev/xvda/congested", "0"); err != nil {
		t.Fatal(err)
	}
	checkHashes(t, s, "after overwrite")
	if s.SubtreeHash("/local/domain/3") == before {
		t.Fatal("overwrite did not change the subtree hash")
	}

	// Same path, same value → same hash as before the overwrite.
	if err := s.Write(Dom0, "/local/domain/3/virt-dev/xvda/congested", "1"); err != nil {
		t.Fatal(err)
	}
	if s.SubtreeHash("/local/domain/3") != before {
		t.Fatal("hash is not content-determined: same content, different hash")
	}

	if err := s.Remove(Dom0, "/local/domain/3/virt-dev"); err != nil {
		t.Fatal(err)
	}
	checkHashes(t, s, "after subtree remove")

	// A dropped write still persists created intermediates (and an empty
	// leaf), which must enter the hash so sync clients converge.
	s.SetFaultHooks(&FaultHooks{DropWrite: func(DomID, string) bool { return true }})
	if err := s.Write(Dom0, "/local/domain/3/ghost/key", "lost"); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHooks(nil)
	checkHashes(t, s, "after dropped creating write")
	if v, err := s.Read(Dom0, "/local/domain/3/ghost/key"); err != nil || v != "" {
		t.Fatalf("dropped write leaf = %q, %v; want empty persisted node", v, err)
	}
}

func TestSubtreeHashRoots(t *testing.T) {
	_, s := newTestStore()
	s.EnsureRoot()
	s.AddDomain(1)
	s.AddDomain(2)
	s.Write(Dom0, "/local/domain/1/a", "x")
	s.Write(Dom0, "/local/domain/2/b", "y")

	var all uint64
	for _, h := range s.subHashes {
		all ^= *h
	}
	for _, root := range []string{"/", "/local", "/local/domain"} {
		if got := s.SubtreeHash(root); got != all {
			t.Errorf("SubtreeHash(%q) = %#x, want XOR of all buckets %#x", root, got, all)
		}
	}
	if got := s.SubtreeHash("/local/domain/1/a"); got != 0 {
		t.Errorf("SubtreeHash below a bucket root = %#x, want 0 (untracked)", got)
	}
	if got := s.SubtreeHash("not-a-path"); got != 0 {
		t.Errorf("SubtreeHash of a bad path = %#x, want 0", got)
	}
}

func TestChangesSinceReportsMutatedPaths(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(1)
	v0 := s.Version()
	s.Write(Dom0, "/local/domain/1/b", "1")
	s.Write(Dom0, "/local/domain/1/a/deep", "2")
	s.Write(Dom0, "/local/domain/1/b", "3") // dedup with the first write
	paths, ok := s.ChangesSince(v0)
	if !ok {
		t.Fatal("journal should cover v0")
	}
	want := []string{
		// AddDomain journals the home at version+1 (it does not bump the
		// version), so an anchor taken right after it re-reads the home —
		// redundant but harmless.
		"/local/domain/1",
		"/local/domain/1/a",      // created intermediate
		"/local/domain/1/a/deep", // created leaf
		"/local/domain/1/b",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("ChangesSince = %v, want %v", paths, want)
	}

	vMid := s.Version()
	s.Remove(Dom0, "/local/domain/1/a")
	paths, ok = s.ChangesSince(vMid)
	if !ok || !reflect.DeepEqual(paths, []string{"/local/domain/1/a"}) {
		t.Fatalf("ChangesSince after remove = %v, %v; want just the subtree root", paths, ok)
	}
}

func TestChangesSinceJournalWindow(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(1)
	s.SetJournalCap(8)
	v0 := s.Version()
	for i := 0; i < 64; i++ {
		s.Write(Dom0, fmt.Sprintf("/local/domain/1/k%02d", i), "v")
	}
	if _, ok := s.ChangesSince(v0); ok {
		t.Fatal("journal claims to cover a version older than its window")
	}
	// The most recent window must still be answerable.
	vRecent := s.Version()
	s.Write(Dom0, "/local/domain/1/k00", "again")
	paths, ok := s.ChangesSince(vRecent)
	if !ok || !reflect.DeepEqual(paths, []string{"/local/domain/1/k00"}) {
		t.Fatalf("recent ChangesSince = %v, %v", paths, ok)
	}
	if _, ok := s.ChangesSince(s.Version()); !ok {
		t.Fatal("ChangesSince(current) must always be answerable")
	}
}

func TestAddDomainAfterRemoveIsJournalled(t *testing.T) {
	_, s := newTestStore()
	s.AddDomain(7)
	s.Write(Dom0, "/local/domain/7/key", "v")
	s.Remove(Dom0, DomainPath(7))
	v := s.Version()
	s.AddDomain(7)
	paths, ok := s.ChangesSince(v)
	if !ok {
		t.Fatal("journal should cover the re-add")
	}
	found := false
	for _, p := range paths {
		if p == DomainPath(7) {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-created domain home missing from journal: %v", paths)
	}
	checkHashes(t, s, "after remove + re-add")
}

func TestEnsureRootIdempotent(t *testing.T) {
	_, s := newTestStore()
	s.EnsureRoot()
	h := s.SubtreeHash("/")
	v := s.Version()
	s.EnsureRoot()
	if s.SubtreeHash("/") != h || s.Version() != v {
		t.Fatal("second EnsureRoot changed state")
	}
	if !s.Exists("/local/domain") {
		t.Fatal("structural spine missing")
	}
	checkHashes(t, s, "after EnsureRoot x2")
}

func TestRouterMapping(t *testing.T) {
	r := NewRouter(4)
	if r.Shards() != 4 {
		t.Fatalf("Shards = %d", r.Shards())
	}
	if NewRouter(0).Shards() != 1 {
		t.Fatal("router must clamp to at least one shard")
	}
	if r.ShardOf(0) != 0 || r.ShardOf(5) != 1 || r.ShardOf(-6) != 2 {
		t.Fatalf("ShardOf mapping wrong: %d %d %d", r.ShardOf(0), r.ShardOf(5), r.ShardOf(-6))
	}
	for path, want := range map[string]struct {
		shard int
		ok    bool
	}{
		"/local/domain/5":       {1, true},
		"/local/domain/5/a/b":   {1, true},
		"/local/domain/0":       {0, true},
		"/":                     {0, false},
		"/local":                {0, false},
		"/local/domain":         {0, false},
		"/local/domain/abc":     {0, false},
		"/local/domain/-3":      {0, false},
		"/other/local/domain/5": {0, false},
		"/local/domainx/5":      {0, false},
	} {
		shard, ok := r.PathShard(path)
		if shard != want.shard || ok != want.ok {
			t.Errorf("PathShard(%q) = (%d, %v), want (%d, %v)", path, shard, ok, want.shard, want.ok)
		}
	}
}

func TestPathDomain(t *testing.T) {
	if dom, ok := PathDomain("/local/domain/12/virt-dev"); !ok || dom != 12 {
		t.Fatalf("PathDomain = %d, %v", dom, ok)
	}
	for _, p := range []string{"/local/domain", "/local/domain/", "/local/domain/x1", "/local", "/"} {
		if _, ok := PathDomain(p); ok {
			t.Errorf("PathDomain(%q) should not resolve", p)
		}
	}
}

func TestWatchBuckets(t *testing.T) {
	k, s := newTestStore()
	var dom1, dom2, global, structural int
	s.Watch(Dom0, "/local/domain/1", func(path, value string) { dom1++ })
	s.Watch(Dom0, "/local/domain/2", func(path, value string) { dom2++ })
	s.Watch(Dom0, "/", func(path, value string) { global++ })
	s.Watch(Dom0, "/local", func(path, value string) { structural++ })

	s.Write(Dom0, "/local/domain/1/key", "a")
	s.Write(Dom0, "/local/domain/2/key", "b")
	s.Write(Dom0, "/other/key", "c")
	k.Run()

	if dom1 != 1 || dom2 != 1 {
		t.Fatalf("domain watches fired %d/%d, want 1/1", dom1, dom2)
	}
	if global != 3 {
		t.Fatalf("global watch fired %d, want 3", global)
	}
	if structural != 2 {
		t.Fatalf("/local watch fired %d, want 2 (both domain writes)", structural)
	}

	// Unwatch must drop the watch from its bucket, not just the id table.
	id, _ := s.Watch(Dom0, "/local/domain/1", func(path, value string) { dom1 += 100 })
	s.Unwatch(id)
	s.Write(Dom0, "/local/domain/1/key", "z")
	k.Run()
	if dom1 != 2 {
		t.Fatalf("dom1 fired %d after unwatch, want 2", dom1)
	}
}

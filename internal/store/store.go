// Package store implements the IOrchestra system store: a hierarchical,
// permission-checked key-value store with watches, equivalent to XenStore
// as the paper uses it (Sec. 3 and 4).
//
// Every domain registers configuration under /local/domain/<domid>/...;
// each VM may only access its own subtree while the hypervisor (domain 0)
// has access to everything. Watches deliver change notifications through
// the simulation kernel with a configurable notification latency, modelling
// the XenBus round trip; the store logic itself is ordinary control-plane
// code with no knowledge of the simulator beyond the clock.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
)

// DomID identifies a domain. Domain 0 is the privileged control domain
// (the hypervisor/driver domain in the paper's architecture).
type DomID int

// Dom0 is the privileged control domain.
const Dom0 DomID = 0

// Perm is an access level a domain holds on a node.
type Perm uint8

const (
	// PermNone grants nothing.
	PermNone Perm = iota
	// PermRead grants read access.
	PermRead
	// PermWrite grants write access (implies read, as in XenStore's "b").
	PermWrite
)

// Errors returned by store operations.
var (
	ErrNoEntry    = errors.New("store: no such entry")
	ErrPermission = errors.New("store: permission denied")
	ErrConflict   = errors.New("store: transaction conflict")
	ErrBadPath    = errors.New("store: malformed path")
)

type node struct {
	value    string
	owner    DomID
	perms    map[DomID]Perm // explicit grants beyond owner and Dom0
	children map[string]*node
	// sorted caches the sorted child names for List; every mutation of
	// children must reset it to nil. Directory shape changes far less
	// often than it is listed, so the sort happens once per change
	// instead of once per List.
	sorted  []string
	version uint64
}

func (n *node) child(name string) *node {
	if n.children == nil {
		return nil
	}
	return n.children[name]
}

// WatchID identifies a registered watch.
type WatchID int

type watch struct {
	id     WatchID
	dom    DomID
	prefix []string
	bucket string
	fn     func(path, value string)
	// removed is the delivery-time tombstone: XenStore drops events whose
	// watch was removed while they were queued. An atomic flag lets the
	// fan-out check it without retaking watchMu per delivery.
	removed atomic.Bool
}

// Store is the system store. Create with New.
//
// Node data follows the simulation kernel's single-goroutine discipline,
// but watch registration is also exercised from test harnesses and
// drivers living on other goroutines, so the watch table has its own
// lock: Watch, Unwatch and notification delivery are safe to interleave
// concurrently.
type Store struct {
	k             *sim.Kernel
	root          *node
	notifyLatency sim.Duration
	version       uint64

	// watchMu guards watches, watchBuckets and nextWatch. fireWatches
	// snapshots the table under the lock, and in-flight notifications
	// re-check registration under it at delivery time (XenStore drops
	// events whose watch was removed while they were queued).
	watchMu sync.Mutex
	watches map[WatchID]*watch
	// watchBuckets indexes watches by the /local/domain/<id> subtree
	// their prefix lives in ("" = structural prefixes that can match any
	// path), so fan-out scans only the watches a write can possibly
	// match instead of the whole table. Each bucket is kept in ascending
	// id order — ids are handed out monotonically, so registration is an
	// append — which makes the delivery order deterministic without a
	// per-fire sort. Buckets are indirected through a stable struct so
	// the path cache can hold the pointer and fan-out skips the map.
	watchBuckets map[string]*watchBucket
	// structWB is the "" bucket (structural prefixes), consulted on every
	// fire; held directly so the hot path never looks it up.
	structWB  *watchBucket
	nextWatch WatchID
	// matchScratch is fireWatches's reusable candidate buffer; safe
	// because fireWatches only runs on the kernel goroutine.
	matchScratch []*watch
	// partsScratch is splitScratch's reusable tokenization buffer, under
	// the same kernel-goroutine discipline.
	partsScratch []string
	// pathCache memoizes path resolution for the hot read/write keys: one
	// full-path lookup replaces tokenizing plus a map access per segment.
	// A node stays resolvable until a Remove covers it, so Remove is the
	// only invalidation point (AddDomain recreates a home under a fresh
	// node, but any cached descendants died with the Remove that made the
	// recreation possible). Kernel-goroutine discipline, like the tree.
	pathCache map[string]*pathEntry
	// cacheGen counts invalidatePaths calls; Cursors compare it to know
	// their pinned entry survived (Removes are control-plane rare, so the
	// occasional full re-pin is cheap).
	cacheGen uint64

	// rec, when set, receives store.write and store.watch trace records.
	rec *trace.Recorder

	// faults, when set, lets a fault injector lose writes and delay or
	// drop watch deliveries (internal/fault). Hooks run on the kernel
	// goroutine, inside Write.
	faults *FaultHooks

	// Cheap-reconnect sync state (sync.go): rolling per-subtree content
	// hashes plus a bounded (version, path) mutation journal. Cells are
	// pointers so the path cache can pin a key's bucket cell and the
	// per-write fold skips the map.
	subHashes      map[string]*uint64
	journal        []journalEntry
	journalCap     int
	evictedThrough uint64

	// Stats counters exposed for overhead accounting.
	reads, writes, notifies uint64
	// Fault accounting: writes silently lost and notifications dropped or
	// delayed by the installed FaultHooks.
	faultDroppedWrites, faultDroppedNotifies, faultDelayedNotifies uint64
}

// FaultHooks intercepts store traffic for fault injection. Either hook
// may be nil. They are consulted on the kernel goroutine only.
type FaultHooks struct {
	// DropWrite, when it returns true, makes Write succeed from the
	// writer's point of view while leaving the node's old value in place —
	// a stale/torn key. No watch fires for the lost write.
	DropWrite func(dom DomID, path string) bool
	// Delivery runs once per matched watch before a notification is
	// scheduled: extra is added to the notification latency, and drop
	// loses the event entirely (the watcher never hears about the write).
	Delivery func(dom DomID, path string) (extra sim.Duration, drop bool)
}

// SetFaultHooks installs (or, with nil, removes) fault-injection hooks.
func (s *Store) SetFaultHooks(h *FaultHooks) { s.faults = h }

// FaultStats reports writes lost and notifications dropped/delayed by the
// installed fault hooks.
func (s *Store) FaultStats() (droppedWrites, droppedNotifies, delayedNotifies uint64) {
	return s.faultDroppedWrites, s.faultDroppedNotifies, s.faultDelayedNotifies
}

// New returns an empty store bound to kernel k. notifyLatency is the delay
// between a write and delivery of watch callbacks (the XenBus event-channel
// round trip; tens of microseconds on the paper's hardware).
func New(k *sim.Kernel, notifyLatency sim.Duration) *Store {
	structWB := &watchBucket{}
	return &Store{
		k:             k,
		root:          &node{owner: Dom0},
		watches:       map[WatchID]*watch{},
		watchBuckets:  map[string]*watchBucket{"": structWB},
		structWB:      structWB,
		notifyLatency: notifyLatency,
	}
}

// watchBucket holds one bucket's watches behind a stable pointer: the
// slice header mutates under watchMu, the struct never moves, so cached
// references (pathEntry.wb, structWB) stay valid across registration.
type watchBucket struct {
	ws []*watch
}

// bucketFor returns (creating if needed) the bucket for key b. Callers
// must hold watchMu.
func (s *Store) bucketFor(b string) *watchBucket {
	wb := s.watchBuckets[b]
	if wb == nil {
		wb = &watchBucket{}
		s.watchBuckets[b] = wb
	}
	return wb
}

// hashCell returns (creating if needed) the subtree-hash cell for bucket
// b. Kernel-goroutine only, like the tree.
func (s *Store) hashCell(b string) *uint64 {
	if s.subHashes == nil {
		s.subHashes = map[string]*uint64{}
	}
	p := s.subHashes[b]
	if p == nil {
		p = new(uint64)
		s.subHashes[b] = p
	}
	return p
}

// split validates and tokenizes a path like /local/domain/3/virt-dev/xvda.
func split(path string) ([]string, error) {
	return splitInto(path, nil)
}

// Cold error constructors for the //hotpath functions below: fmt
// formatting reflects and allocates, so the hot operations build their
// (rare) errors through these out-of-line helpers. The hotpathalloc vet
// pass enforces the split (docs/LINTING.md).
func errBadPath(path string) error { return fmt.Errorf("%w: %q", ErrBadPath, path) }
func errNoEntry(path string) error { return fmt.Errorf("%w: %s", ErrNoEntry, path) }
func errPermission(dom DomID, verb, path string) error {
	return fmt.Errorf("%w: dom%d %s %s", ErrPermission, dom, verb, path)
}

// splitInto is split with a caller-supplied parts buffer, so the hot
// store operations tokenize without allocating. The returned segments
// are substrings of path.
//
// hotpath
func splitInto(path string, buf []string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, errBadPath(path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := buf[:0]
	rest := path[1:]
	for {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			if rest == "" {
				return nil, errBadPath(path)
			}
			return append(parts, rest), nil
		}
		if i == 0 {
			return nil, errBadPath(path)
		}
		parts = append(parts, rest[:i])
		rest = rest[i+1:]
	}
}

// splitScratch tokenizes into the store's reusable parts buffer. Like
// matchScratch it leans on the kernel-goroutine discipline for node
// operations; callers must not retain the result past their own return
// (Watch, which retains its prefix, uses split instead).
//
// hotpath
func (s *Store) splitScratch(path string) ([]string, error) {
	parts, err := splitInto(path, s.partsScratch)
	if cap(parts) > cap(s.partsScratch) {
		s.partsScratch = parts
	}
	return parts, err
}

// Root is the top of the per-domain namespace, mirroring XenStore's
// /local/domain. It is the only sanctioned spelling of the prefix
// outside this package: the storekeys vet pass flags raw path literals
// everywhere else (docs/STORE_KEYS.md, docs/LINTING.md).
const Root = "/local/domain"

// DomainPath returns the canonical subtree root for a domain, mirroring
// XenStore's /local/domain/<domid>.
func DomainPath(dom DomID) string {
	return Root + "/" + strconv.Itoa(int(dom))
}

// DiskPath returns the absolute path of a per-disk key under a domain's
// virt-dev subtree: /local/domain/<dom>/virt-dev/<disk>/<key>.
func DiskPath(dom DomID, disk, key string) string {
	return DomainPath(dom) + "/virt-dev/" + disk + "/" + key
}

// AddDomain creates the /local/domain/<dom> home directory owned by dom,
// the step the toolstack performs at domain creation in Xen. Without it a
// guest has nowhere it is allowed to write.
func (s *Store) AddDomain(dom DomID) {
	n := s.root
	path := ""
	for _, p := range []string{"local", "domain"} {
		path += "/" + p
		child := n.child(p)
		if child == nil {
			child = &node{owner: Dom0}
			if n.children == nil {
				n.children = map[string]*node{}
			}
			n.children[p] = child
			n.sorted = nil
			s.noteNode(strings.Split(path[1:], "/"), path, "")
		}
		n = child
	}
	name := strconv.Itoa(int(dom))
	if n.child(name) == nil {
		if n.children == nil {
			n.children = map[string]*node{}
		}
		n.children[name] = &node{owner: dom}
		n.sorted = nil
		home := Root + "/" + name
		s.noteNode([]string{"local", "domain", name}, home, "")
		// Journal the (re)created home so a client that pruned the subtree
		// after a Remove learns it is back on its next delta sync.
		s.journalAppend(s.version+1, home, false)
	}
}

func (s *Store) lookup(parts []string) *node {
	n := s.root
	for _, p := range parts {
		n = n.child(p)
		if n == nil {
			return nil
		}
	}
	return n
}

// pathEntry is one memoized resolution: the tokenized path, the node it
// names, the path's node-hash prefix state, and pinned pointers to the
// path's hash cell and watch bucket — everything a hot-key write needs,
// so the whole operation costs one map access. parts is owned by the
// entry (never a scratch alias).
type pathEntry struct {
	parts []string
	n     *node
	hpath uint64  // pathHashState(path): per-write hashing starts at the value
	hash  *uint64 // subtree-hash cell for the path's bucket
	wb    *watchBucket
}

// cachePath memoizes a successful resolution. parts may alias a scratch
// buffer; the entry stores a private copy.
func (s *Store) cachePath(path string, parts []string, n *node) *pathEntry {
	if s.pathCache == nil {
		s.pathCache = map[string]*pathEntry{}
	}
	b := bucketOf(parts)
	e := &pathEntry{parts: append([]string(nil), parts...), n: n, hpath: pathHashState(path)}
	e.hash = s.hashCell(b)
	s.watchMu.Lock()
	e.wb = s.bucketFor(b)
	s.watchMu.Unlock()
	s.pathCache[path] = e
	return e
}

// invalidatePaths drops every cached resolution at or below path, ahead
// of the subtree's removal. Removes are control-plane rare; the scan is
// the price of keeping the per-operation hot path to a single lookup.
func (s *Store) invalidatePaths(path string) {
	s.cacheGen++
	for p := range s.pathCache {
		if strings.HasPrefix(p, path) && (len(p) == len(path) || p[len(path)] == '/') {
			delete(s.pathCache, p)
		}
	}
}

// Cursor pins one path's resolution across repeated operations: the
// in-process bus handle keeps one per hot key, so a driver heartbeat
// costs a generation compare instead of hashing the absolute path on
// every store call. Obtain with Store.CursorFor; use from the kernel
// goroutine only, like every node operation.
type Cursor struct {
	path string
	e    *pathEntry
	gen  uint64
}

// CursorFor returns a cursor for path. The path need not exist yet; the
// cursor pins its resolution on first successful use.
func (s *Store) CursorFor(path string) *Cursor { return &Cursor{path: path} }

// Path reports the absolute path the cursor stands for.
func (c *Cursor) Path() string { return c.path }

// cursorEntry returns the pinned entry, re-pinning from the path cache
// after an invalidation (nil when the path has no cached resolution).
//
// hotpath
func (s *Store) cursorEntry(c *Cursor) *pathEntry {
	if c.e != nil && c.gen == s.cacheGen {
		return c.e
	}
	c.e, c.gen = s.pathCache[c.path], s.cacheGen
	return c.e
}

// WriteCursor is Write through a pinned cursor.
//
// hotpath
func (s *Store) WriteCursor(dom DomID, c *Cursor, value string) error {
	if e := s.cursorEntry(c); e != nil {
		return s.writeEntry(dom, e, c.path, value, -1)
	}
	if err := s.Write(dom, c.path, value); err != nil {
		return err
	}
	c.e, c.gen = s.pathCache[c.path], s.cacheGen
	return nil
}

// ReadCursor is Read through a pinned cursor.
//
// hotpath
func (s *Store) ReadCursor(dom DomID, c *Cursor) (string, error) {
	e := s.cursorEntry(c)
	if e == nil {
		v, err := s.Read(dom, c.path)
		if err == nil {
			c.e, c.gen = s.pathCache[c.path], s.cacheGen
		}
		return v, err
	}
	if !canRead(e.n, dom) {
		return "", errPermission(dom, "reading", c.path)
	}
	s.reads++
	return e.n.value, nil
}

// canRead reports whether dom may read node n. Dom0 reads everything; the
// owner reads its own nodes; explicit grants extend access.
func canRead(n *node, dom DomID) bool {
	if dom == Dom0 || n.owner == dom {
		return true
	}
	return n.perms[dom] >= PermRead
}

func canWrite(n *node, dom DomID) bool {
	if dom == Dom0 || n.owner == dom {
		return true
	}
	return n.perms[dom] >= PermWrite
}

// Read returns the value at path on behalf of dom.
//
// hotpath
func (s *Store) Read(dom DomID, path string) (string, error) {
	n := s.pathNode(path)
	if n == nil {
		parts, err := s.splitScratch(path)
		if err != nil {
			return "", err
		}
		if n = s.lookup(parts); n == nil {
			return "", errNoEntry(path)
		}
		s.cachePath(path, parts, n)
	}
	if !canRead(n, dom) {
		return "", errPermission(dom, "reading", path)
	}
	s.reads++
	return n.value, nil
}

// pathNode returns the memoized node for path, or nil on a cache miss.
//
// hotpath
func (s *Store) pathNode(path string) *node {
	if e := s.pathCache[path]; e != nil {
		return e.n
	}
	return nil
}

// Write sets the value at path on behalf of dom, creating intermediate
// nodes owned by dom as needed. Writing to another domain's subtree
// requires an explicit write grant on the closest existing ancestor.
func (s *Store) Write(dom DomID, path, value string) error {
	firstCreated := -1 // index of the shallowest node this write created
	e := s.pathCache[path]
	if e == nil {
		parts, err := s.splitScratch(path)
		if err != nil {
			return err
		}
		if len(parts) == 0 {
			return fmt.Errorf("%w: cannot write root", ErrBadPath)
		}
		n := s.root
		for i, p := range parts {
			child := n.child(p)
			if child == nil {
				if !canWrite(n, dom) {
					return fmt.Errorf("%w: dom%d creating under %s", ErrPermission, dom, path)
				}
				child = &node{owner: dom}
				if n.children == nil {
					n.children = map[string]*node{}
				}
				n.children[p] = child
				n.sorted = nil
				if firstCreated < 0 {
					firstCreated = i
				}
			}
			n = child
		}
		e = s.cachePath(path, parts, n)
	}
	return s.writeEntry(dom, e, path, value, firstCreated)
}

// writeEntry applies a write through a resolved cache entry; firstCreated
// is the index of the shallowest node the resolution created (-1 when the
// whole chain already existed).
//
// hotpath
func (s *Store) writeEntry(dom DomID, e *pathEntry, path, value string, firstCreated int) error {
	parts, n := e.parts, e.n
	if !canWrite(n, dom) {
		return errPermission(dom, "writing", path)
	}
	old := n.value // "" when the leaf was just created
	if s.faults != nil && s.faults.DropWrite != nil && s.faults.DropWrite(dom, path) {
		// The write is acknowledged but lost: the key keeps its stale
		// value and no watch fires, exactly a torn XenStore transaction.
		// Created intermediates (and an empty created leaf) do persist,
		// so they still enter the hash and journal.
		s.faultDroppedWrites++
		if firstCreated >= 0 {
			s.noteCreated(parts, firstCreated, s.version+1)
		}
		return nil
	}
	s.version++
	n.value = value
	n.version = s.version
	s.writes++
	if firstCreated >= 0 {
		s.noteCreated(parts, firstCreated, s.version)
	}
	// Fold the prior leaf content out of the subtree hash and the new
	// content in — the entry pins the bucket cell, and the memoized path
	// prefix state means only the values get hashed.
	*e.hash ^= mixString(e.hpath, old) ^ mixString(e.hpath, value)
	s.journalAppend(s.version, path, false)
	if s.rec != nil {
		s.rec.Record(trace.Record{Kind: trace.KindStoreWrite, Dom: int(dom), Path: path, Value: value})
	}
	s.fireWatches(e.wb, parts, n, path, value)
	return nil
}

// SetRecorder mirrors every store write and delivered watch notification
// into the decision-trace recorder.
func (s *Store) SetRecorder(r *trace.Recorder) { s.rec = r }

// Remove deletes the node at path (and its subtree) on behalf of dom.
func (s *Store) Remove(dom DomID, path string) error {
	parts, err := s.splitScratch(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	parent := s.lookup(parts[:len(parts)-1])
	if parent == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	name := parts[len(parts)-1]
	n := parent.child(name)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if !canWrite(n, dom) {
		return fmt.Errorf("%w: dom%d removing %s", ErrPermission, dom, path)
	}
	s.invalidatePaths(path)
	s.unhashSubtree(parts, path, n)
	delete(parent.children, name)
	parent.sorted = nil
	s.version++
	// Journal only the subtree root, flagged as a removal: sync clients
	// prune by prefix, even if the path is recreated later.
	s.journalAppend(s.version, path, true)
	// The node is gone: nil keeps the XenStore behavior of delivering the
	// removal to every matching watcher without a readability filter.
	s.watchMu.Lock()
	wb := s.bucketFor(bucketOf(parts))
	s.watchMu.Unlock()
	s.fireWatches(wb, parts, nil, path, "")
	return nil
}

// List returns the sorted child names under path readable by dom.
func (s *Store) List(dom DomID, path string) ([]string, error) {
	parts, err := s.splitScratch(path)
	if err != nil {
		return nil, err
	}
	n := s.lookup(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if !canRead(n, dom) {
		return nil, fmt.Errorf("%w: dom%d listing %s", ErrPermission, dom, path)
	}
	if n.sorted == nil && len(n.children) > 0 {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		n.sorted = names
	}
	// Callers may hold the slice across mutations; hand out a copy so the
	// cache stays private to the node.
	return append([]string(nil), n.sorted...), nil
}

// Grant gives target the given permission on path. Only Dom0 or the node
// owner may change permissions (XenStore SET_PERMS semantics).
func (s *Store) Grant(dom DomID, path string, target DomID, perm Perm) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	n := s.lookup(parts)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if dom != Dom0 && dom != n.owner {
		return fmt.Errorf("%w: dom%d setting perms on %s", ErrPermission, dom, path)
	}
	if n.perms == nil {
		n.perms = map[DomID]Perm{}
	}
	n.perms[target] = perm
	return nil
}

// Exists reports whether path names a node, regardless of readability.
func (s *Store) Exists(path string) bool {
	parts, err := s.splitScratch(path)
	if err != nil {
		return false
	}
	return s.lookup(parts) != nil
}

// Watch registers fn to be called (after the configured notification
// latency) whenever a node at or below prefix changes, provided dom can
// read the changed node. It returns an id for Unwatch. Matching follows
// XenStore: a watch on /a fires for writes to /a, /a/b, /a/b/c, ...
func (s *Store) Watch(dom DomID, prefix string, fn func(path, value string)) (WatchID, error) {
	parts, err := split(prefix)
	if err != nil {
		return 0, err
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	s.nextWatch++
	id := s.nextWatch
	b := bucketOf(parts)
	w := &watch{id: id, dom: dom, prefix: parts, bucket: b, fn: fn}
	s.watches[id] = w
	wb := s.bucketFor(b)
	wb.ws = append(wb.ws, w)
	return id, nil
}

// Unwatch removes a watch; unknown ids are ignored.
func (s *Store) Unwatch(id WatchID) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if w, ok := s.watches[id]; ok {
		w.removed.Store(true)
		delete(s.watches, id)
		if wb := s.watchBuckets[w.bucket]; wb != nil {
			for i, bw := range wb.ws {
				if bw.id == id {
					wb.ws = append(wb.ws[:i], wb.ws[i+1:]...)
					break
				}
			}
		}
	}
}

func hasPrefix(path, prefix []string) bool {
	if len(prefix) > len(path) {
		return false
	}
	for i, p := range prefix {
		if path[i] != p {
			return false
		}
	}
	return true
}

func (s *Store) fireWatches(wb *watchBucket, parts []string, n *node, path, value string) {
	// Snapshot the candidate watches under the lock, then match and
	// schedule outside it so callbacks cannot deadlock against Watch/
	// Unwatch. Only the path's own domain bucket plus the structural
	// bucket can possibly match (watch prefixes in other domain buckets
	// diverge at /local/domain/<id>), so fan-out cost tracks the watches
	// on this subtree, not the whole table; the caller hands in the
	// path's bucket, already pinned by its cache entry. Buckets are
	// id-sorted, so a two-way merge yields the deterministic
	// ascending-id delivery order with no per-fire sort; matchScratch is
	// reused across fires (kernel goroutine only).
	s.watchMu.Lock()
	matched := s.matchScratch[:0]
	db, sb := wb.ws, s.structWB.ws
	if wb == s.structWB {
		sb = nil // structural path: db already is the structural bucket
	}
	for len(db) > 0 || len(sb) > 0 {
		if len(sb) == 0 || (len(db) > 0 && db[0].id < sb[0].id) {
			matched, db = append(matched, db[0]), db[1:]
		} else {
			matched, sb = append(matched, sb[0]), sb[1:]
		}
	}
	s.matchScratch = matched
	s.watchMu.Unlock()
	// The caller hands in the written node (nil for removals): the node is
	// the same for every watcher, only the per-watcher permission differs.
	//
	// Deliveries that share a latency ride one kernel event: they were
	// scheduled back-to-back for the same instant with consecutive
	// sequence numbers, so no other event can interleave them — running
	// the callbacks consecutively inside one event preserves the exact
	// dispatch order while cutting the calendar traffic of the fan-out
	// (every write notifies at least the manager and the guest driver).
	var run []*watch
	runDelay := s.notifyLatency
	p, v := path, value
	flush := func() {
		if len(run) == 0 {
			return
		}
		ws := run
		run = nil
		s.k.After(runDelay, func() {
			for _, w := range ws {
				// The watch may have been removed while the notification
				// was in flight; XenStore drops such events.
				if w.removed.Load() {
					continue
				}
				if s.rec != nil {
					s.rec.Record(trace.Record{Kind: trace.KindStoreWatch, Dom: int(w.dom), Path: p, Value: v})
				}
				w.fn(p, v)
			}
		})
	}
	for _, w := range matched {
		if !hasPrefix(parts, w.prefix) {
			continue
		}
		if n != nil && !canRead(n, w.dom) {
			continue
		}
		delay := s.notifyLatency
		if s.faults != nil && s.faults.Delivery != nil {
			extra, drop := s.faults.Delivery(w.dom, path)
			if drop {
				s.faultDroppedNotifies++
				continue
			}
			if extra > 0 {
				s.faultDelayedNotifies++
				delay += extra
			}
		}
		if len(run) > 0 && delay != runDelay {
			flush()
		}
		runDelay = delay
		s.notifies++
		run = append(run, w)
	}
	flush()
}

// Stats reports cumulative operation counts (reads, writes, notifications),
// used to account for framework overhead.
func (s *Store) Stats() (reads, writes, notifies uint64) {
	return s.reads, s.writes, s.notifies
}

// Version reports the store's global mutation counter: it advances on
// every applied Write or Remove. Snapshot bootstrap (internal/netstore)
// pairs a tree walk with the version so a reconnecting client knows how
// stale its copy is.
func (s *Store) Version() uint64 { return s.version }

// --- Typed convenience helpers -------------------------------------------

// WriteInt writes an integer value.
func (s *Store) WriteInt(dom DomID, path string, v int64) error {
	return s.Write(dom, path, strconv.FormatInt(v, 10))
}

// ReadInt reads an integer value; absent nodes return defaultV.
func (s *Store) ReadInt(dom DomID, path string, defaultV int64) (int64, error) {
	raw, err := s.Read(dom, path)
	return parseIntValue(raw, err, path, defaultV)
}

// WriteBool writes "1" or "0", the encoding Algorithms 1 and 2 use for
// has_dirty_pages, flush_now, congested and release_request.
func (s *Store) WriteBool(dom DomID, path string, v bool) error {
	return s.Write(dom, path, boolValue(v))
}

// ReadBool reads a boolean; absent nodes return false.
func (s *Store) ReadBool(dom DomID, path string) (bool, error) {
	return parseBoolValue(s.Read(dom, path))
}

// WriteFloat writes a float value.
func (s *Store) WriteFloat(dom DomID, path string, v float64) error {
	return s.Write(dom, path, strconv.FormatFloat(v, 'g', -1, 64))
}

// ReadFloat reads a float value; absent nodes return defaultV.
func (s *Store) ReadFloat(dom DomID, path string, defaultV float64) (float64, error) {
	raw, err := s.Read(dom, path)
	return parseFloatValue(raw, err, path, defaultV)
}

// Cursor-typed variants, sharing the exact parse semantics above — the
// in-process bus handle routes every typed operation through these.

// WriteIntCursor writes an integer value through a pinned cursor.
func (s *Store) WriteIntCursor(dom DomID, c *Cursor, v int64) error {
	return s.WriteCursor(dom, c, strconv.FormatInt(v, 10))
}

// ReadIntCursor reads an integer value; absent nodes return defaultV.
func (s *Store) ReadIntCursor(dom DomID, c *Cursor, defaultV int64) (int64, error) {
	raw, err := s.ReadCursor(dom, c)
	return parseIntValue(raw, err, c.path, defaultV)
}

// WriteBoolCursor writes "1" or "0" through a pinned cursor.
func (s *Store) WriteBoolCursor(dom DomID, c *Cursor, v bool) error {
	return s.WriteCursor(dom, c, boolValue(v))
}

// ReadBoolCursor reads a boolean; absent nodes return false.
func (s *Store) ReadBoolCursor(dom DomID, c *Cursor) (bool, error) {
	return parseBoolValue(s.ReadCursor(dom, c))
}

// WriteFloatCursor writes a float value through a pinned cursor.
func (s *Store) WriteFloatCursor(dom DomID, c *Cursor, v float64) error {
	return s.WriteCursor(dom, c, strconv.FormatFloat(v, 'g', -1, 64))
}

// ReadFloatCursor reads a float value; absent nodes return defaultV.
func (s *Store) ReadFloatCursor(dom DomID, c *Cursor, defaultV float64) (float64, error) {
	raw, err := s.ReadCursor(dom, c)
	return parseFloatValue(raw, err, c.path, defaultV)
}

func boolValue(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func parseBoolValue(raw string, err error) (bool, error) {
	if errors.Is(err, ErrNoEntry) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return raw == "1" || raw == "true", nil
}

func parseIntValue(raw string, err error, path string, def int64) (int64, error) {
	if errors.Is(err, ErrNoEntry) {
		return def, nil
	}
	if err != nil {
		return def, err
	}
	v, perr := strconv.ParseInt(raw, 10, 64)
	if perr != nil {
		return def, fmt.Errorf("store: %s holds non-integer %q", path, raw)
	}
	return v, nil
}

func parseFloatValue(raw string, err error, path string, def float64) (float64, error) {
	if errors.Is(err, ErrNoEntry) {
		return def, nil
	}
	if err != nil {
		return def, err
	}
	v, perr := strconv.ParseFloat(raw, 64)
	if perr != nil {
		return def, fmt.Errorf("store: %s holds non-float %q", path, raw)
	}
	return v, nil
}

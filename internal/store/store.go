// Package store implements the IOrchestra system store: a hierarchical,
// permission-checked key-value store with watches, equivalent to XenStore
// as the paper uses it (Sec. 3 and 4).
//
// Every domain registers configuration under /local/domain/<domid>/...;
// each VM may only access its own subtree while the hypervisor (domain 0)
// has access to everything. Watches deliver change notifications through
// the simulation kernel with a configurable notification latency, modelling
// the XenBus round trip; the store logic itself is ordinary control-plane
// code with no knowledge of the simulator beyond the clock.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
)

// DomID identifies a domain. Domain 0 is the privileged control domain
// (the hypervisor/driver domain in the paper's architecture).
type DomID int

// Dom0 is the privileged control domain.
const Dom0 DomID = 0

// Perm is an access level a domain holds on a node.
type Perm uint8

const (
	// PermNone grants nothing.
	PermNone Perm = iota
	// PermRead grants read access.
	PermRead
	// PermWrite grants write access (implies read, as in XenStore's "b").
	PermWrite
)

// Errors returned by store operations.
var (
	ErrNoEntry    = errors.New("store: no such entry")
	ErrPermission = errors.New("store: permission denied")
	ErrConflict   = errors.New("store: transaction conflict")
	ErrBadPath    = errors.New("store: malformed path")
)

type node struct {
	value    string
	owner    DomID
	perms    map[DomID]Perm // explicit grants beyond owner and Dom0
	children map[string]*node
	// sorted caches the sorted child names for List; every mutation of
	// children must reset it to nil. Directory shape changes far less
	// often than it is listed, so the sort happens once per change
	// instead of once per List.
	sorted  []string
	version uint64
}

func (n *node) child(name string) *node {
	if n.children == nil {
		return nil
	}
	return n.children[name]
}

// WatchID identifies a registered watch.
type WatchID int

type watch struct {
	id     WatchID
	dom    DomID
	prefix []string
	bucket string
	fn     func(path, value string)
}

// Store is the system store. Create with New.
//
// Node data follows the simulation kernel's single-goroutine discipline,
// but watch registration is also exercised from test harnesses and
// drivers living on other goroutines, so the watch table has its own
// lock: Watch, Unwatch and notification delivery are safe to interleave
// concurrently.
type Store struct {
	k             *sim.Kernel
	root          *node
	notifyLatency sim.Duration
	version       uint64

	// watchMu guards watches, watchBuckets and nextWatch. fireWatches
	// snapshots the table under the lock, and in-flight notifications
	// re-check registration under it at delivery time (XenStore drops
	// events whose watch was removed while they were queued).
	watchMu sync.Mutex
	watches map[WatchID]*watch
	// watchBuckets indexes watches by the /local/domain/<id> subtree
	// their prefix lives in ("" = structural prefixes that can match any
	// path), so fan-out scans only the watches a write can possibly
	// match instead of the whole table. Each bucket is kept in ascending
	// id order — ids are handed out monotonically, so registration is an
	// append — which makes the delivery order deterministic without a
	// per-fire sort.
	watchBuckets map[string][]*watch
	nextWatch    WatchID
	// matchScratch is fireWatches's reusable candidate buffer; safe
	// because fireWatches only runs on the kernel goroutine.
	matchScratch []*watch

	// rec, when set, receives store.write and store.watch trace records.
	rec *trace.Recorder

	// faults, when set, lets a fault injector lose writes and delay or
	// drop watch deliveries (internal/fault). Hooks run on the kernel
	// goroutine, inside Write.
	faults *FaultHooks

	// Cheap-reconnect sync state (sync.go): rolling per-subtree content
	// hashes plus a bounded (version, path) mutation journal.
	subHashes      map[string]uint64
	journal        []journalEntry
	journalCap     int
	evictedThrough uint64

	// Stats counters exposed for overhead accounting.
	reads, writes, notifies uint64
	// Fault accounting: writes silently lost and notifications dropped or
	// delayed by the installed FaultHooks.
	faultDroppedWrites, faultDroppedNotifies, faultDelayedNotifies uint64
}

// FaultHooks intercepts store traffic for fault injection. Either hook
// may be nil. They are consulted on the kernel goroutine only.
type FaultHooks struct {
	// DropWrite, when it returns true, makes Write succeed from the
	// writer's point of view while leaving the node's old value in place —
	// a stale/torn key. No watch fires for the lost write.
	DropWrite func(dom DomID, path string) bool
	// Delivery runs once per matched watch before a notification is
	// scheduled: extra is added to the notification latency, and drop
	// loses the event entirely (the watcher never hears about the write).
	Delivery func(dom DomID, path string) (extra sim.Duration, drop bool)
}

// SetFaultHooks installs (or, with nil, removes) fault-injection hooks.
func (s *Store) SetFaultHooks(h *FaultHooks) { s.faults = h }

// FaultStats reports writes lost and notifications dropped/delayed by the
// installed fault hooks.
func (s *Store) FaultStats() (droppedWrites, droppedNotifies, delayedNotifies uint64) {
	return s.faultDroppedWrites, s.faultDroppedNotifies, s.faultDelayedNotifies
}

// New returns an empty store bound to kernel k. notifyLatency is the delay
// between a write and delivery of watch callbacks (the XenBus event-channel
// round trip; tens of microseconds on the paper's hardware).
func New(k *sim.Kernel, notifyLatency sim.Duration) *Store {
	return &Store{
		k:             k,
		root:          &node{owner: Dom0},
		watches:       map[WatchID]*watch{},
		notifyLatency: notifyLatency,
	}
}

// split validates and tokenizes a path like /local/domain/3/virt-dev/xvda.
func split(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

// Root is the top of the per-domain namespace, mirroring XenStore's
// /local/domain. It is the only sanctioned spelling of the prefix
// outside this package: the storekeys vet pass flags raw path literals
// everywhere else (docs/STORE_KEYS.md, docs/LINTING.md).
const Root = "/local/domain"

// DomainPath returns the canonical subtree root for a domain, mirroring
// XenStore's /local/domain/<domid>.
func DomainPath(dom DomID) string {
	return Root + "/" + strconv.Itoa(int(dom))
}

// DiskPath returns the absolute path of a per-disk key under a domain's
// virt-dev subtree: /local/domain/<dom>/virt-dev/<disk>/<key>.
func DiskPath(dom DomID, disk, key string) string {
	return DomainPath(dom) + "/virt-dev/" + disk + "/" + key
}

// AddDomain creates the /local/domain/<dom> home directory owned by dom,
// the step the toolstack performs at domain creation in Xen. Without it a
// guest has nowhere it is allowed to write.
func (s *Store) AddDomain(dom DomID) {
	n := s.root
	path := ""
	for _, p := range []string{"local", "domain"} {
		path += "/" + p
		child := n.child(p)
		if child == nil {
			child = &node{owner: Dom0}
			if n.children == nil {
				n.children = map[string]*node{}
			}
			n.children[p] = child
			n.sorted = nil
			s.noteNode(strings.Split(path[1:], "/"), path, "")
		}
		n = child
	}
	name := strconv.Itoa(int(dom))
	if n.child(name) == nil {
		if n.children == nil {
			n.children = map[string]*node{}
		}
		n.children[name] = &node{owner: dom}
		n.sorted = nil
		home := Root + "/" + name
		s.noteNode([]string{"local", "domain", name}, home, "")
		// Journal the (re)created home so a client that pruned the subtree
		// after a Remove learns it is back on its next delta sync.
		s.journalAppend(s.version+1, home, false)
	}
}

func (s *Store) lookup(parts []string) *node {
	n := s.root
	for _, p := range parts {
		n = n.child(p)
		if n == nil {
			return nil
		}
	}
	return n
}

// canRead reports whether dom may read node n. Dom0 reads everything; the
// owner reads its own nodes; explicit grants extend access.
func canRead(n *node, dom DomID) bool {
	if dom == Dom0 || n.owner == dom {
		return true
	}
	return n.perms[dom] >= PermRead
}

func canWrite(n *node, dom DomID) bool {
	if dom == Dom0 || n.owner == dom {
		return true
	}
	return n.perms[dom] >= PermWrite
}

// Read returns the value at path on behalf of dom.
func (s *Store) Read(dom DomID, path string) (string, error) {
	parts, err := split(path)
	if err != nil {
		return "", err
	}
	n := s.lookup(parts)
	if n == nil {
		return "", fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if !canRead(n, dom) {
		return "", fmt.Errorf("%w: dom%d reading %s", ErrPermission, dom, path)
	}
	s.reads++
	return n.value, nil
}

// Write sets the value at path on behalf of dom, creating intermediate
// nodes owned by dom as needed. Writing to another domain's subtree
// requires an explicit write grant on the closest existing ancestor.
func (s *Store) Write(dom DomID, path, value string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot write root", ErrBadPath)
	}
	n := s.root
	firstCreated := -1 // index of the shallowest node this write created
	for i, p := range parts {
		child := n.child(p)
		if child == nil {
			if !canWrite(n, dom) {
				return fmt.Errorf("%w: dom%d creating under %s", ErrPermission, dom, path)
			}
			child = &node{owner: dom}
			if n.children == nil {
				n.children = map[string]*node{}
			}
			n.children[p] = child
			n.sorted = nil
			if firstCreated < 0 {
				firstCreated = i
			}
		}
		n = child
	}
	if !canWrite(n, dom) {
		return fmt.Errorf("%w: dom%d writing %s", ErrPermission, dom, path)
	}
	old := n.value // "" when the leaf was just created
	if s.faults != nil && s.faults.DropWrite != nil && s.faults.DropWrite(dom, path) {
		// The write is acknowledged but lost: the key keeps its stale
		// value and no watch fires, exactly a torn XenStore transaction.
		// Created intermediates (and an empty created leaf) do persist,
		// so they still enter the hash and journal.
		s.faultDroppedWrites++
		if firstCreated >= 0 {
			s.noteCreated(parts, firstCreated, s.version+1)
		}
		return nil
	}
	s.version++
	n.value = value
	n.version = s.version
	s.writes++
	if firstCreated >= 0 {
		s.noteCreated(parts, firstCreated, s.version)
	}
	s.noteNode(parts, path, old)   // fold out the prior leaf content
	s.noteNode(parts, path, value) // fold in the new leaf content
	s.journalAppend(s.version, path, false)
	if s.rec != nil {
		s.rec.Record(trace.Record{Kind: trace.KindStoreWrite, Dom: int(dom), Path: path, Value: value})
	}
	s.fireWatches(parts, path, value)
	return nil
}

// SetRecorder mirrors every store write and delivered watch notification
// into the decision-trace recorder.
func (s *Store) SetRecorder(r *trace.Recorder) { s.rec = r }

// Remove deletes the node at path (and its subtree) on behalf of dom.
func (s *Store) Remove(dom DomID, path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	parent := s.lookup(parts[:len(parts)-1])
	if parent == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	name := parts[len(parts)-1]
	n := parent.child(name)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if !canWrite(n, dom) {
		return fmt.Errorf("%w: dom%d removing %s", ErrPermission, dom, path)
	}
	s.unhashSubtree(parts, path, n)
	delete(parent.children, name)
	parent.sorted = nil
	s.version++
	// Journal only the subtree root, flagged as a removal: sync clients
	// prune by prefix, even if the path is recreated later.
	s.journalAppend(s.version, path, true)
	s.fireWatches(parts, path, "")
	return nil
}

// List returns the sorted child names under path readable by dom.
func (s *Store) List(dom DomID, path string) ([]string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	n := s.lookup(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if !canRead(n, dom) {
		return nil, fmt.Errorf("%w: dom%d listing %s", ErrPermission, dom, path)
	}
	if n.sorted == nil && len(n.children) > 0 {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		n.sorted = names
	}
	// Callers may hold the slice across mutations; hand out a copy so the
	// cache stays private to the node.
	return append([]string(nil), n.sorted...), nil
}

// Grant gives target the given permission on path. Only Dom0 or the node
// owner may change permissions (XenStore SET_PERMS semantics).
func (s *Store) Grant(dom DomID, path string, target DomID, perm Perm) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	n := s.lookup(parts)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoEntry, path)
	}
	if dom != Dom0 && dom != n.owner {
		return fmt.Errorf("%w: dom%d setting perms on %s", ErrPermission, dom, path)
	}
	if n.perms == nil {
		n.perms = map[DomID]Perm{}
	}
	n.perms[target] = perm
	return nil
}

// Exists reports whether path names a node, regardless of readability.
func (s *Store) Exists(path string) bool {
	parts, err := split(path)
	if err != nil {
		return false
	}
	return s.lookup(parts) != nil
}

// Watch registers fn to be called (after the configured notification
// latency) whenever a node at or below prefix changes, provided dom can
// read the changed node. It returns an id for Unwatch. Matching follows
// XenStore: a watch on /a fires for writes to /a, /a/b, /a/b/c, ...
func (s *Store) Watch(dom DomID, prefix string, fn func(path, value string)) (WatchID, error) {
	parts, err := split(prefix)
	if err != nil {
		return 0, err
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	s.nextWatch++
	id := s.nextWatch
	b := bucketOf(parts)
	w := &watch{id: id, dom: dom, prefix: parts, bucket: b, fn: fn}
	s.watches[id] = w
	if s.watchBuckets == nil {
		s.watchBuckets = map[string][]*watch{}
	}
	s.watchBuckets[b] = append(s.watchBuckets[b], w)
	return id, nil
}

// Unwatch removes a watch; unknown ids are ignored.
func (s *Store) Unwatch(id WatchID) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if w, ok := s.watches[id]; ok {
		delete(s.watches, id)
		bucket := s.watchBuckets[w.bucket]
		for i, bw := range bucket {
			if bw.id == id {
				s.watchBuckets[w.bucket] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
	}
}

func hasPrefix(path, prefix []string) bool {
	if len(prefix) > len(path) {
		return false
	}
	for i, p := range prefix {
		if path[i] != p {
			return false
		}
	}
	return true
}

func (s *Store) fireWatches(parts []string, path, value string) {
	// Snapshot the candidate watches under the lock, then match and
	// schedule outside it so callbacks cannot deadlock against Watch/
	// Unwatch. Only the path's own domain bucket plus the structural
	// bucket can possibly match (watch prefixes in other domain buckets
	// diverge at /local/domain/<id>), so fan-out cost tracks the watches
	// on this subtree, not the whole table. Buckets are id-sorted, so a
	// two-way merge yields the deterministic ascending-id delivery order
	// with no per-fire sort; matchScratch is reused across fires (kernel
	// goroutine only).
	s.watchMu.Lock()
	b := bucketOf(parts)
	matched := s.matchScratch[:0]
	db, sb := s.watchBuckets[b], s.watchBuckets[""]
	if b == "" {
		sb = nil // structural path: db already is the structural bucket
	}
	for len(db) > 0 || len(sb) > 0 {
		if len(sb) == 0 || (len(db) > 0 && db[0].id < sb[0].id) {
			matched, db = append(matched, db[0]), db[1:]
		} else {
			matched, sb = append(matched, sb[0]), sb[1:]
		}
	}
	s.matchScratch = matched
	s.watchMu.Unlock()
	// One lookup for the whole fan-out: the node is the same for every
	// watcher, only the per-watcher read permission differs.
	n := s.lookup(parts)
	for _, w := range matched {
		if !hasPrefix(parts, w.prefix) {
			continue
		}
		if n != nil && !canRead(n, w.dom) {
			continue
		}
		delay := s.notifyLatency
		if s.faults != nil && s.faults.Delivery != nil {
			extra, drop := s.faults.Delivery(w.dom, path)
			if drop {
				s.faultDroppedNotifies++
				continue
			}
			if extra > 0 {
				s.faultDelayedNotifies++
				delay += extra
			}
		}
		id, dom, fn := w.id, w.dom, w.fn
		p, v := path, value
		s.notifies++
		s.k.After(delay, func() {
			// The watch may have been removed while the notification was
			// in flight; XenStore drops such events.
			s.watchMu.Lock()
			_, ok := s.watches[id]
			s.watchMu.Unlock()
			if !ok {
				return
			}
			if s.rec != nil {
				s.rec.Record(trace.Record{Kind: trace.KindStoreWatch, Dom: int(dom), Path: p, Value: v})
			}
			fn(p, v)
		})
	}
}

// Stats reports cumulative operation counts (reads, writes, notifications),
// used to account for framework overhead.
func (s *Store) Stats() (reads, writes, notifies uint64) {
	return s.reads, s.writes, s.notifies
}

// Version reports the store's global mutation counter: it advances on
// every applied Write or Remove. Snapshot bootstrap (internal/netstore)
// pairs a tree walk with the version so a reconnecting client knows how
// stale its copy is.
func (s *Store) Version() uint64 { return s.version }

// --- Typed convenience helpers -------------------------------------------

// WriteInt writes an integer value.
func (s *Store) WriteInt(dom DomID, path string, v int64) error {
	return s.Write(dom, path, strconv.FormatInt(v, 10))
}

// ReadInt reads an integer value; absent nodes return defaultV.
func (s *Store) ReadInt(dom DomID, path string, defaultV int64) (int64, error) {
	raw, err := s.Read(dom, path)
	if errors.Is(err, ErrNoEntry) {
		return defaultV, nil
	}
	if err != nil {
		return defaultV, err
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return defaultV, fmt.Errorf("store: %s holds non-integer %q", path, raw)
	}
	return v, nil
}

// WriteBool writes "1" or "0", the encoding Algorithms 1 and 2 use for
// has_dirty_pages, flush_now, congested and release_request.
func (s *Store) WriteBool(dom DomID, path string, v bool) error {
	if v {
		return s.Write(dom, path, "1")
	}
	return s.Write(dom, path, "0")
}

// ReadBool reads a boolean; absent nodes return false.
func (s *Store) ReadBool(dom DomID, path string) (bool, error) {
	raw, err := s.Read(dom, path)
	if errors.Is(err, ErrNoEntry) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return raw == "1" || raw == "true", nil
}

// WriteFloat writes a float value.
func (s *Store) WriteFloat(dom DomID, path string, v float64) error {
	return s.Write(dom, path, strconv.FormatFloat(v, 'g', -1, 64))
}

// ReadFloat reads a float value; absent nodes return defaultV.
func (s *Store) ReadFloat(dom DomID, path string, defaultV float64) (float64, error) {
	raw, err := s.Read(dom, path)
	if errors.Is(err, ErrNoEntry) {
		return defaultV, nil
	}
	if err != nil {
		return defaultV, err
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return defaultV, fmt.Errorf("store: %s holds non-float %q", path, raw)
	}
	return v, nil
}

package fault

import (
	"testing"

	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"uncoop=0.5",
		"crash=0.25@2s+3s",
		"crash=1",
		"watchdelay=10ms:0.3",
		"watchdrop=0.05",
		"stalewrite=0.02",
		"stucksync=0.5",
		"member=3:8",
		"uncoop=0.5,crash=0.25@2s+3s,watchdelay=10ms:0.3,watchdrop=0.05,stalewrite=0.02,stucksync=0.5,member=0:100,member=3:8",
	}
	for _, raw := range cases {
		s, err := ParseSpec(raw)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", raw, err)
		}
		if got := s.String(); got != raw {
			t.Errorf("ParseSpec(%q).String() = %q", raw, got)
		}
		// String() must itself re-parse to the same spec.
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s.String(), err)
		}
		if s2.String() != s.String() {
			t.Errorf("round-trip drift: %q vs %q", s.String(), s2.String())
		}
	}
}

func TestParseSpecFields(t *testing.T) {
	s, err := ParseSpec("uncoop=0.5, crash=0.25@2s+3s ,watchdelay=10ms:0.3,member=3:8")
	if err != nil {
		t.Fatal(err)
	}
	if s.Uncoop != 0.5 || s.CrashFrac != 0.25 ||
		s.CrashAt != 2*sim.Second || s.CrashRestart != 3*sim.Second ||
		s.WatchDelayMax != 10*sim.Millisecond || s.WatchDelayProb != 0.3 ||
		s.SlowMembers[3] != 8 {
		t.Fatalf("fields wrong: %+v", s)
	}
	if s.Empty() {
		t.Fatal("non-empty spec reported Empty")
	}
	if empty, _ := ParseSpec(""); !empty.Empty() {
		t.Fatal("empty string not Empty")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, raw := range []string{
		"bogus=1",
		"uncoop",
		"uncoop=2",
		"uncoop=-0.1",
		"crash=0.5@xyz",
		"watchdelay=10ms",
		"watchdelay=0:0.5",
		"member=3",
		"member=-1:2",
		"member=0:0.5",
		"stucksync=nan",
	} {
		if _, err := ParseSpec(raw); err == nil {
			t.Errorf("ParseSpec(%q) accepted", raw)
		}
	}
}

func TestUncooperativeDeterministicAndCounted(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(sim.NewKernel(), Spec{Uncoop: 0.5}, stats.NewStream(7, "faults"))
	}
	a, b := mk(), mk()
	var hits int
	for dom := store.DomID(1); dom <= 40; dom++ {
		av, bv := a.Uncooperative(dom), b.Uncooperative(dom)
		if av != bv {
			t.Fatalf("dom %d: draw not deterministic (%v vs %v)", dom, av, bv)
		}
		// Repeat calls must agree too (lexical fork, no shared state).
		if a.Uncooperative(dom) != av {
			t.Fatalf("dom %d: repeat draw differs", dom)
		}
		if av {
			hits++
		}
	}
	if hits == 0 || hits == 40 {
		t.Fatalf("uncoop=0.5 selected %d/40 guests", hits)
	}
	if a.Count("uncoop") == 0 || a.Total() == 0 {
		t.Fatal("injections not counted")
	}
	if NewInjector(sim.NewKernel(), Spec{Uncoop: 1}, stats.NewStream(7, "f")).Uncooperative(3) != true {
		t.Fatal("uncoop=1 must select every guest")
	}
}

func TestStoreHooksDropAndDelay(t *testing.T) {
	in := NewInjector(sim.NewKernel(), Spec{
		StaleWriteProb: 1, WatchDropProb: 1,
	}, stats.NewStream(1, "faults"))
	h := in.StoreHooks()
	if h == nil || h.DropWrite == nil || h.Delivery == nil {
		t.Fatal("hooks missing")
	}
	if !h.DropWrite(1, "/x") {
		t.Fatal("stalewrite=1 must drop every write")
	}
	if _, drop := h.Delivery(1, "/x"); !drop {
		t.Fatal("watchdrop=1 must drop every delivery")
	}
	in2 := NewInjector(sim.NewKernel(), Spec{
		WatchDelayProb: 1, WatchDelayMax: 10 * sim.Millisecond,
	}, stats.NewStream(1, "faults"))
	extra, drop := in2.StoreHooks().Delivery(1, "/x")
	if drop || extra <= 0 || extra > 10*sim.Millisecond {
		t.Fatalf("delay draw = (%v, %v)", extra, drop)
	}
	if NewInjector(sim.NewKernel(), Spec{Uncoop: 1}, stats.NewStream(1, "f")).StoreHooks() != nil {
		t.Fatal("no store faults must yield nil hooks")
	}
}

type fakeDriver struct{ crashes, restarts int }

func (f *fakeDriver) Crash()   { f.crashes++ }
func (f *fakeDriver) Restart() { f.restarts++ }

func TestScheduleCrashAndRestart(t *testing.T) {
	k := sim.NewKernel()
	in := NewInjector(k, Spec{CrashFrac: 1, CrashAt: 2 * sim.Second, CrashRestart: 3 * sim.Second},
		stats.NewStream(1, "faults"))
	var d fakeDriver
	in.ScheduleCrash(5, &d)
	k.RunUntil(sim.Second)
	if d.crashes != 0 {
		t.Fatal("crashed early")
	}
	k.RunUntil(2500 * sim.Millisecond)
	if d.crashes != 1 || d.restarts != 0 {
		t.Fatalf("at 2.5s: crashes=%d restarts=%d", d.crashes, d.restarts)
	}
	k.RunUntil(6 * sim.Second)
	if d.restarts != 1 {
		t.Fatalf("restart never fired (restarts=%d)", d.restarts)
	}
	if in.Count("crash") != 1 || in.Count("restart") != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

func TestSyncFaultNilWhenDisabled(t *testing.T) {
	in := NewInjector(sim.NewKernel(), Spec{}, stats.NewStream(1, "faults"))
	if in.SyncFault(1) != nil {
		t.Fatal("SyncFault must be nil for the empty spec")
	}
	in2 := NewInjector(sim.NewKernel(), Spec{StuckSyncProb: 1}, stats.NewStream(1, "faults"))
	fn := in2.SyncFault(1)
	if fn == nil || !fn("xvda") {
		t.Fatal("stucksync=1 must stick every sync")
	}
	if in2.Count("stucksync") != 1 {
		t.Fatalf("counts = %v", in2.Counts())
	}
}

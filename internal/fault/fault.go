// Package fault is IOrchestra's deterministic, seed-driven fault-injection
// subsystem. The paper's control plane assumes every guest runs a store
// driver and answers promptly; a production cloud never gets that (legacy
// guests, crashed drivers, lost XenStore events, devices degrading into
// IOTune-style G-states). This package injects exactly those failures —
// uncooperative guests, crashed/restarting drivers, delayed or dropped
// watch deliveries, stale store keys, slow or failed RAID members, and
// stuck guest syncs — so the management module's graceful-degradation
// paths (docs/FAULTS.md) can be exercised and measured.
//
// All randomness flows from a stats.Stream forked off the platform seed,
// so a given (seed, Spec) pair injects an identical fault schedule on
// every run. Every injected fault is counted and, when tracing is on,
// emitted as a typed fault.inject record.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Spec declares which faults to inject and how hard. The zero value
// injects nothing. ParseSpec builds one from the -faults flag grammar:
//
//	uncoop=0.5,crash=0.25@2s+3s,watchdelay=10ms:0.3,watchdrop=0.05,
//	stalewrite=0.02,stucksync=0.5,member=3:8
//
// Fields map one-to-one onto the grammar's clauses; see docs/FAULTS.md.
type Spec struct {
	// Uncoop is the fraction of guests that come up without a store
	// driver at all — legacy images the toolstack cannot modify. The
	// choice is deterministic per domain id.
	Uncoop float64
	// CrashFrac is the fraction of enabled drivers that crash (watches
	// torn down, heartbeats stopped, hooks detached — no goodbye write).
	CrashFrac float64
	// CrashAt is how long after enablement a selected driver crashes
	// (default 1s).
	CrashAt sim.Duration
	// CrashRestart, when positive, restarts a crashed driver that much
	// later; zero means the driver never comes back.
	CrashRestart sim.Duration
	// WatchDelayProb/WatchDelayMax add a uniform extra delay in
	// (0, WatchDelayMax] to a delivered watch notification with the given
	// probability.
	WatchDelayProb float64
	WatchDelayMax  sim.Duration
	// WatchDropProb loses a delivered watch notification entirely.
	WatchDropProb float64
	// StaleWriteProb makes a store write succeed from the writer's view
	// while the key silently keeps its old value (a torn transaction).
	StaleWriteProb float64
	// StuckSyncProb is the per-flush-order probability that the guest's
	// sync() never completes and flush_now is never reset.
	StuckSyncProb float64
	// SlowMembers maps RAID member index -> slowdown factor: the member's
	// effective bandwidth becomes capacity/factor while the host keeps
	// believing the spec-sheet number. Factors of 100+ model a failed
	// member limping on its last reallocated sectors (RAID0 has no
	// redundancy, so the whole array crawls with it).
	SlowMembers map[int]float64
}

// Empty reports whether the spec injects nothing at all.
func (s Spec) Empty() bool {
	return s.Uncoop <= 0 && s.CrashFrac <= 0 && s.WatchDelayProb <= 0 &&
		s.WatchDropProb <= 0 && s.StaleWriteProb <= 0 && s.StuckSyncProb <= 0 &&
		len(s.SlowMembers) == 0
}

// ParseSpec parses the comma-separated -faults grammar. Probabilities are
// floats in [0,1], durations use Go syntax (10ms, 2s), and member clauses
// may repeat. An empty string yields the empty Spec.
func ParseSpec(raw string) (Spec, error) {
	var s Spec
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return s, nil
	}
	for _, clause := range strings.Split(raw, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, val, ok := strings.Cut(clause, "=")
		if !ok {
			return s, fmt.Errorf("fault: clause %q is not name=value", clause)
		}
		var err error
		switch name {
		case "uncoop":
			s.Uncoop, err = parseProb(name, val)
		case "crash":
			err = parseCrash(&s, val)
		case "watchdelay":
			dur, prob, cutOK := strings.Cut(val, ":")
			if !cutOK {
				return s, fmt.Errorf("fault: watchdelay wants DURATION:PROB, got %q", val)
			}
			if s.WatchDelayMax, err = parseDur(name, dur); err == nil {
				s.WatchDelayProb, err = parseProb(name, prob)
			}
		case "watchdrop":
			s.WatchDropProb, err = parseProb(name, val)
		case "stalewrite":
			s.StaleWriteProb, err = parseProb(name, val)
		case "stucksync":
			s.StuckSyncProb, err = parseProb(name, val)
		case "member":
			idx, factor, cutOK := strings.Cut(val, ":")
			if !cutOK {
				return s, fmt.Errorf("fault: member wants INDEX:FACTOR, got %q", val)
			}
			var i int
			var f float64
			if i, err = strconv.Atoi(idx); err != nil || i < 0 {
				return s, fmt.Errorf("fault: bad member index %q", idx)
			}
			if f, err = strconv.ParseFloat(factor, 64); err != nil || f < 1 {
				return s, fmt.Errorf("fault: member factor %q must be a float >= 1", factor)
			}
			if s.SlowMembers == nil {
				s.SlowMembers = map[int]float64{}
			}
			s.SlowMembers[i] = f
		default:
			return s, fmt.Errorf("fault: unknown clause %q", name)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

// parseCrash handles FRAC[@AT][+RESTART], e.g. 0.25, 0.25@2s, 0.25@2s+3s.
func parseCrash(s *Spec, val string) error {
	frac := val
	if i := strings.IndexAny(val, "@+"); i >= 0 {
		frac = val[:i]
		rest := val[i:]
		if strings.HasPrefix(rest, "@") {
			at := rest[1:]
			if j := strings.IndexByte(at, '+'); j >= 0 {
				at, rest = at[:j], at[j:]
			} else {
				rest = ""
			}
			d, err := parseDur("crash", at)
			if err != nil {
				return err
			}
			s.CrashAt = d
		}
		if strings.HasPrefix(rest, "+") {
			d, err := parseDur("crash", rest[1:])
			if err != nil {
				return err
			}
			s.CrashRestart = d
		}
	}
	var err error
	s.CrashFrac, err = parseProb("crash", frac)
	return err
}

func parseProb(name, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	// The comparison form rejects NaN too.
	if err != nil || !(p >= 0 && p <= 1) {
		return 0, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", name, val)
	}
	return p, nil
}

func parseDur(name, val string) (sim.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("fault: %s wants a positive duration, got %q", name, val)
	}
	return sim.Duration(d.Nanoseconds()), nil
}

// String renders the spec back in the grammar ParseSpec accepts, with
// clauses in canonical order (round-trips through ParseSpec).
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.Uncoop > 0 {
		add("uncoop=%g", s.Uncoop)
	}
	if s.CrashFrac > 0 {
		c := fmt.Sprintf("crash=%g", s.CrashFrac)
		if s.CrashAt > 0 {
			c += "@" + goDur(s.CrashAt)
		}
		if s.CrashRestart > 0 {
			c += "+" + goDur(s.CrashRestart)
		}
		parts = append(parts, c)
	}
	if s.WatchDelayProb > 0 {
		add("watchdelay=%s:%g", goDur(s.WatchDelayMax), s.WatchDelayProb)
	}
	if s.WatchDropProb > 0 {
		add("watchdrop=%g", s.WatchDropProb)
	}
	if s.StaleWriteProb > 0 {
		add("stalewrite=%g", s.StaleWriteProb)
	}
	if s.StuckSyncProb > 0 {
		add("stucksync=%g", s.StuckSyncProb)
	}
	idxs := make([]int, 0, len(s.SlowMembers))
	for i := range s.SlowMembers {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		add("member=%d:%g", i, s.SlowMembers[i])
	}
	return strings.Join(parts, ",")
}

func goDur(d sim.Duration) string { return time.Duration(d).String() }

// CrashRestarter is the driver surface the injector needs: core.Driver
// implements it. Declared here so fault does not import core.
type CrashRestarter interface {
	Crash()
	Restart()
}

// Injector draws the fault schedule for one platform. Like the kernel it
// belongs to, it is not safe for concurrent use.
type Injector struct {
	k    *sim.Kernel
	spec Spec
	rng  *stats.Stream
	rec  *trace.Recorder

	counts map[string]uint64
	total  uint64
}

// NewInjector builds an injector for spec, drawing all randomness from
// rng (fork one off the platform seed so runs stay reproducible).
func NewInjector(k *sim.Kernel, spec Spec, rng *stats.Stream) *Injector {
	return &Injector{k: k, spec: spec, rng: rng, counts: map[string]uint64{}}
}

// Spec returns the injector's fault specification.
func (in *Injector) Spec() Spec { return in.spec }

// SetRecorder mirrors every injected fault into the decision trace as a
// typed fault.inject record.
func (in *Injector) SetRecorder(r *trace.Recorder) { in.rec = r }

// Note counts one injected fault and traces it. Fault sites inside the
// injector call it themselves; external wiring (device wrapping in the
// platform) uses it to register standing faults.
func (in *Injector) Note(kind string, dom store.DomID, path string) {
	in.counts[kind]++
	in.total++
	if in.rec != nil {
		in.rec.Record(trace.Record{Kind: trace.KindFaultInject, Dom: int(dom), Path: path, Value: kind})
	}
}

// Counts returns a copy of the per-kind injection counters.
func (in *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Count reports injections of one fault kind.
func (in *Injector) Count(kind string) uint64 { return in.counts[kind] }

// Total reports all injections so far.
func (in *Injector) Total() uint64 { return in.total }

// Uncooperative decides — deterministically per domain — whether dom runs
// without a store driver. The platform consults it before enabling a
// guest; an uncooperative guest simply never registers, the exact shape a
// legacy image presents to the manager.
func (in *Injector) Uncooperative(dom store.DomID) bool {
	p := in.spec.Uncoop
	if p <= 0 {
		return false
	}
	// A lexical fork keyed on the domain id makes the draw a pure
	// function of (seed, dom): repeat calls agree and consume no shared
	// stream state.
	if p >= 1 || in.rng.Fork(fmt.Sprintf("uncoop/%d", dom)).Bool(p) {
		in.Note("uncoop", dom, "")
		return true
	}
	return false
}

// StoreHooks builds the store-level fault hooks (stale writes, dropped
// and delayed watch deliveries), or nil when the spec has none.
func (in *Injector) StoreHooks() *store.FaultHooks {
	s := in.spec
	if s.StaleWriteProb <= 0 && s.WatchDropProb <= 0 && s.WatchDelayProb <= 0 {
		return nil
	}
	h := &store.FaultHooks{}
	if s.StaleWriteProb > 0 {
		r := in.rng.Fork("stalewrite")
		h.DropWrite = func(dom store.DomID, path string) bool {
			if r.Bool(s.StaleWriteProb) {
				in.Note("stalewrite", dom, path)
				return true
			}
			return false
		}
	}
	if s.WatchDropProb > 0 || s.WatchDelayProb > 0 {
		r := in.rng.Fork("delivery")
		h.Delivery = func(dom store.DomID, path string) (sim.Duration, bool) {
			if s.WatchDropProb > 0 && r.Bool(s.WatchDropProb) {
				in.Note("watchdrop", dom, path)
				return 0, true
			}
			if s.WatchDelayProb > 0 && r.Bool(s.WatchDelayProb) {
				in.Note("watchdelay", dom, path)
				return 1 + sim.Duration(r.Int63n(int64(s.WatchDelayMax))), false
			}
			return 0, false
		}
	}
	return h
}

// SyncFault builds the per-guest stuck-sync predicate the driver consults
// on each flush order, or nil when the spec has none. A true draw means
// the guest received flush_now but its sync() never completes — the
// manager's flush deadline is the only way out.
func (in *Injector) SyncFault(dom store.DomID) func(disk string) bool {
	p := in.spec.StuckSyncProb
	if p <= 0 {
		return nil
	}
	r := in.rng.Fork(fmt.Sprintf("stucksync/%d", dom))
	return func(disk string) bool {
		if r.Bool(p) {
			in.Note("stucksync", dom, disk)
			return true
		}
		return false
	}
}

// ScheduleCrash arms the crash (and optional restart) schedule for one
// enabled driver. The crash draw is deterministic per domain.
func (in *Injector) ScheduleCrash(dom store.DomID, drv CrashRestarter) {
	s := in.spec
	if s.CrashFrac <= 0 {
		return
	}
	if s.CrashFrac < 1 && !in.rng.Fork(fmt.Sprintf("crash/%d", dom)).Bool(s.CrashFrac) {
		return
	}
	at := s.CrashAt
	if at <= 0 {
		at = sim.Second
	}
	in.k.After(at, func() {
		in.Note("crash", dom, "")
		drv.Crash()
	})
	if s.CrashRestart > 0 {
		in.k.After(at+s.CrashRestart, func() {
			in.Note("restart", dom, "")
			drv.Restart()
		})
	}
}

package netstore

// Protocol v2 surface: version negotiation, batched frames, delta-watch
// sync, and the sharded server — the ISSUE 6 hot-path rework. In-package
// so negotiation tests can assert on wire-level details (c.proto) and
// sharded tests can reach shard internals via Do.

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"iorchestra/internal/store"
)

func dialVersionT(t *testing.T, sock string, dom store.DomID, ver uint8) *Client {
	t.Helper()
	c, err := DialVersion("unix", sock, dom, "", ver)
	if err != nil {
		t.Fatalf("dial v%d dom%d: %v", ver, dom, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// --- Version negotiation -----------------------------------------------------

func TestNegotiationModernPair(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	if c.Proto() != ProtocolV2 {
		t.Fatalf("negotiated v%d, want v%d", c.Proto(), ProtocolV2)
	}
}

func TestNegotiationV1ClientNewServer(t *testing.T) {
	// An old binary sends the v1 hello and expects the v1 reply layout;
	// the new server must serve it bit-compatibly.
	_, sock := startServer(t, Options{})
	c := dialVersionT(t, sock, 3, ProtocolV1)
	if c.Proto() != ProtocolV1 {
		t.Fatalf("negotiated v%d, want v1", c.Proto())
	}
	base := store.DomainPath(3)
	if err := c.Write(base+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(base + "/k")
	if err != nil || got != "v" {
		t.Fatalf("read over v1 = %q, %v", got, err)
	}
	// v2-only ops must be refused, not crash the connection.
	if _, err := c.SyncSubtree(base, 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("sync on v1 err = %v, want ErrBadRequest", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unhealthy after refused sync: %v", err)
	}
}

func TestNegotiationNewClientOldServer(t *testing.T) {
	// A v1-capped server refuses the v2 hello; Dial must transparently
	// redial pinned to v1.
	_, sock := startServer(t, Options{MaxProtocol: ProtocolV1})
	c := dialT(t, sock, 3)
	if c.Proto() != ProtocolV1 {
		t.Fatalf("fallback negotiated v%d, want v1", c.Proto())
	}
	if err := c.Write(store.DomainPath(3)+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	// A pinned v2 dial against the same server must surface the refusal.
	if _, err := DialVersion("unix", sock, 4, "", ProtocolV2); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("pinned v2 dial err = %v, want ErrBadRequest", err)
	}
}

// --- Batched frames ----------------------------------------------------------

func TestBatchAllOps(t *testing.T) {
	srv, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	base := store.DomainPath(3)

	res, err := c.NewBatch().
		Write(base+"/a", "1").
		Write(base+"/b/deep", "2").
		Read(base+"/a").
		Exists(base+"/b").
		Exists(base+"/nope").
		List(base).
		Grant(base+"/a", 4, store.PermRead).
		Ping().
		Read(base + "/missing"). // per-op error, not a batch error
		Remove(base + "/a").
		Run()
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results, want 10", len(res))
	}
	for i, r := range res[:8] {
		if r.Err != nil {
			t.Fatalf("op %d err = %v", i, r.Err)
		}
	}
	if res[2].Value != "1" {
		t.Errorf("batched read = %q", res[2].Value)
	}
	if !res[3].Present || res[4].Present {
		t.Errorf("batched exists = %v/%v, want true/false", res[3].Present, res[4].Present)
	}
	wantNames := []string{"a", "b"}
	if !sort.StringsAreSorted(res[5].Names) || len(res[5].Names) != 2 ||
		res[5].Names[0] != wantNames[0] || res[5].Names[1] != wantNames[1] {
		t.Errorf("batched list = %v, want %v", res[5].Names, wantNames)
	}
	if !errors.Is(res[8].Err, store.ErrNoEntry) {
		t.Errorf("batched missing read err = %v, want ErrNoEntry", res[8].Err)
	}
	if res[9].Err != nil {
		t.Errorf("batched remove err = %v", res[9].Err)
	}
	if ok, _ := c.Exists(base + "/a"); ok {
		t.Error("batched remove did not take effect")
	}

	ctr := srv.Counters()
	if ctr.Batches != 1 || ctr.BatchOps != 10 {
		t.Errorf("counters = %d batches / %d ops, want 1/10", ctr.Batches, ctr.BatchOps)
	}
}

func TestBatchEmptyAndOversize(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	if res, err := c.NewBatch().Run(); err != nil || res != nil {
		t.Fatalf("empty batch = %v, %v", res, err)
	}
	b := c.NewBatch()
	for i := 0; i <= MaxBatchOps; i++ {
		b.Ping()
	}
	if _, err := b.Run(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversize batch err = %v, want ErrBadRequest", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unhealthy: %v", err)
	}
}

func TestBatchV1Fallback(t *testing.T) {
	srv, sock := startServer(t, Options{})
	c := dialVersionT(t, sock, 3, ProtocolV1)
	base := store.DomainPath(3)
	res, err := c.NewBatch().
		Write(base+"/k", "v").
		Read(base + "/k").
		Read(base + "/missing").
		Run()
	if err != nil {
		t.Fatalf("fallback batch: %v", err)
	}
	if res[0].Err != nil || res[1].Value != "v" || !errors.Is(res[2].Err, store.ErrNoEntry) {
		t.Fatalf("fallback results wrong: %+v", res)
	}
	if ctr := srv.Counters(); ctr.Batches != 0 {
		t.Fatalf("v1 fallback must not reach the batch op (batches=%d)", ctr.Batches)
	}
}

func TestBatchCrossShard(t *testing.T) {
	srv, sock := startServer(t, Options{Shards: 4})
	c := dialT(t, sock, store.Dom0)
	b := c.NewBatch()
	for dom := 1; dom <= 8; dom++ {
		b.Write(fmt.Sprintf("%s/k", store.DomainPath(store.DomID(dom))), fmt.Sprint(dom))
	}
	res, err := b.Run()
	if err != nil {
		t.Fatalf("cross-shard batch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	// Results must come back in request order even though shards execute
	// their groups independently.
	b = c.NewBatch()
	for dom := 1; dom <= 8; dom++ {
		b.Read(fmt.Sprintf("%s/k", store.DomainPath(store.DomID(dom))))
	}
	res, err = b.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || r.Value != fmt.Sprint(i+1) {
			t.Fatalf("read %d = %q, %v; want %d", i, r.Value, r.Err, i+1)
		}
	}
	if ctr := srv.Counters(); ctr.Shards != 4 || ctr.BatchOps != 16 {
		t.Fatalf("counters = %+v", ctr)
	}
}

// --- Delta sync and Mirror ---------------------------------------------------

func TestSyncModes(t *testing.T) {
	srv, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	base := store.DomainPath(3)
	for i := 0; i < 4; i++ {
		if err := c.Write(fmt.Sprintf("%s/k%d", base, i), fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}

	m := c.NewMirror(base)
	mode, err := m.Sync()
	if err != nil || mode != SyncFull {
		t.Fatalf("bootstrap sync = mode %d, %v; want full", mode, err)
	}
	if v, ok := m.Get(base + "/k2"); !ok || v != "2" {
		t.Fatalf("mirror k2 = %q, %v", v, ok)
	}

	// Unchanged subtree: hash match, no payload.
	mode, err = m.Sync()
	if err != nil || mode != SyncMatch {
		t.Fatalf("idle sync = mode %d, %v; want match", mode, err)
	}

	// Small change: delta with exactly the touched paths.
	if err := c.Write(base+"/k1", "changed"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(base + "/k3"); err != nil {
		t.Fatal(err)
	}
	mode, err = m.Sync()
	if err != nil || mode != SyncDelta {
		t.Fatalf("delta sync = mode %d, %v; want delta", mode, err)
	}
	if v, _ := m.Get(base + "/k1"); v != "changed" {
		t.Fatalf("mirror missed delta: k1 = %q", v)
	}
	if _, ok := m.Get(base + "/k3"); ok {
		t.Fatal("mirror did not prune removed key")
	}

	// Whole-subtree removal prunes by prefix.
	if err := c.Write(base+"/sub/x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(base+"/sub/y", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(base + "/sub"); err != nil {
		t.Fatal(err)
	}
	if mode, err = m.Sync(); err != nil || mode != SyncDelta {
		t.Fatalf("post-remove sync = mode %d, %v", mode, err)
	}
	for _, p := range []string{base + "/sub", base + "/sub/x", base + "/sub/y"} {
		if _, ok := m.Get(p); ok {
			t.Fatalf("mirror kept pruned node %s", p)
		}
	}

	ctr := srv.Counters()
	if ctr.SyncFulls == 0 || ctr.SyncMatches == 0 || ctr.SyncDeltas == 0 {
		t.Fatalf("sync mode counters = %+v", ctr)
	}
}

func TestSyncJournalOverflowFallsBackToFull(t *testing.T) {
	srv, sock := startServer(t, Options{})
	srv.Do(func(st *store.Store) { st.SetJournalCap(8) })
	c := dialT(t, sock, 3)
	base := store.DomainPath(3)
	if err := c.Write(base+"/seed", "1"); err != nil {
		t.Fatal(err)
	}
	m := c.NewMirror(base)
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Blow past the journal window so the mirror's anchor is evicted.
	for i := 0; i < 64; i++ {
		if err := c.Write(fmt.Sprintf("%s/k%d", base, i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	mode, err := m.Sync()
	if err != nil || mode != SyncFull {
		t.Fatalf("overflowed sync = mode %d, %v; want full", mode, err)
	}
	if m.Len() != 66 { // seed + 64 keys + home node
		t.Fatalf("mirror has %d nodes, want 66", m.Len())
	}
	if ctr := srv.Counters(); ctr.SyncFulls < 2 {
		t.Fatalf("expected two full syncs, counters = %+v", ctr)
	}
}

func TestSyncDomainRecreation(t *testing.T) {
	// Remove-then-recreate of a whole domain home must heal through the
	// journal: the mirror prunes on the removal and re-learns the home.
	_, sock := startServer(t, Options{})
	c0 := dialT(t, sock, store.Dom0)
	c := dialT(t, sock, 7)
	base := store.DomainPath(7)
	if err := c.Write(base+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	m := c0.NewMirror(base)
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c0.Remove(base); err != nil {
		t.Fatal(err)
	}
	// A fresh handshake for dom7 recreates the home (AddDomain).
	c2 := dialT(t, sock, 7)
	if err := c2.Write(base+"/k2", "back"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(base + "/k"); ok {
		t.Fatal("mirror kept node removed with the domain")
	}
	if v, ok := m.Get(base + "/k2"); !ok || v != "back" {
		t.Fatalf("mirror missed recreated key: %q, %v", v, ok)
	}
}

func TestSyncBadRoot(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	for _, root := range []string{"/", "/local", store.Root, store.DomainPath(3) + "/deep"} {
		if _, err := c.SyncSubtree(root, 0, 0); !errors.Is(err, ErrBadRequest) {
			t.Errorf("SyncSubtree(%q) err = %v, want ErrBadRequest", root, err)
		}
	}
}

func TestMirrorV1FallsBackToSnapshot(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialVersionT(t, sock, 3, ProtocolV1)
	base := store.DomainPath(3)
	if err := c.Write(base+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	m := c.NewMirror(base)
	mode, err := m.Sync()
	if err != nil || mode != MirrorSyncedSnapshot {
		t.Fatalf("v1 mirror sync = mode %d, %v", mode, err)
	}
	if v, ok := m.Get(base + "/k"); !ok || v != "v" {
		t.Fatalf("v1 mirror k = %q, %v", v, ok)
	}
}

// --- Sharded server ----------------------------------------------------------

func TestShardedBasicOps(t *testing.T) {
	srv, sock := startServer(t, Options{Shards: 4})
	if srv.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", srv.ShardCount())
	}
	for dom := store.DomID(1); dom <= 6; dom++ {
		c := dialT(t, sock, dom)
		base := store.DomainPath(dom)
		if err := c.Write(base+"/k", fmt.Sprint(dom)); err != nil {
			t.Fatalf("dom%d write: %v", dom, err)
		}
		if v, err := c.Read(base + "/k"); err != nil || v != fmt.Sprint(dom) {
			t.Fatalf("dom%d read = %q, %v", dom, v, err)
		}
	}
}

func TestShardedCrossShardViews(t *testing.T) {
	_, sock := startServer(t, Options{Shards: 3})
	c0 := dialT(t, sock, store.Dom0)
	doms := []store.DomID{1, 2, 3, 4, 5}
	for _, dom := range doms {
		if err := c0.Write(store.DomainPath(dom)+"/k", fmt.Sprint(dom)); err != nil {
			t.Fatal(err)
		}
	}
	// Root list is the union across shards, sorted ("0" is Dom0's own
	// home, created by its handshake).
	names, err := c0.List(store.Root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "1", "2", "3", "4", "5"}
	if len(names) != len(want) {
		t.Fatalf("root list = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("root list = %v, want %v", names, want)
		}
	}
	// Root snapshot unions every shard's view: spine + all domain trees.
	snap, _, err := c0.Snapshot(store.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dom := range doms {
		if v := snap[store.DomainPath(dom)+"/k"]; v != fmt.Sprint(dom) {
			t.Fatalf("snapshot missing dom%d key: %q (snap %v)", dom, v, snap)
		}
	}
	if _, ok := snap[store.Root]; !ok {
		t.Fatal("snapshot missing structural spine")
	}
	// Removing a structural path on a sharded server is refused (it would
	// tear every shard's spine at once).
	if err := c0.Remove("/local"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("structural remove err = %v, want ErrBadRequest", err)
	}
}

func TestShardedWatches(t *testing.T) {
	_, sock := startServer(t, Options{Shards: 4})
	c0 := dialT(t, sock, store.Dom0)
	events := make(chan string, 64)
	// A structural-prefix watch must see writes on every shard.
	if _, err := c0.Watch(store.Root, func(path, value string) {
		events <- path + "=" + value
	}); err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for dom := store.DomID(1); dom <= 4; dom++ {
		clients = append(clients, dialT(t, sock, dom))
	}
	for i, c := range clients {
		if err := c.Write(store.DomainPath(store.DomID(i+1))+"/k", "x"); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	for i := 0; i < 4; i++ {
		got[<-events] = true
	}
	for dom := 1; dom <= 4; dom++ {
		key := fmt.Sprintf("%s/k=x", store.DomainPath(store.DomID(dom)))
		if !got[key] {
			t.Fatalf("global watch missed %s (got %v)", key, got)
		}
	}
	// A domain-prefix watch must only see its own shard's subtree.
	dom1Events := make(chan string, 8)
	id, err := c0.Watch(store.DomainPath(1), func(path, value string) {
		dom1Events <- path
	})
	if err != nil {
		t.Fatal(err)
	}
	clients[1].Write(store.DomainPath(2)+"/other", "y")
	clients[0].Write(store.DomainPath(1)+"/mine", "z")
	if p := <-dom1Events; p != store.DomainPath(1)+"/mine" {
		t.Fatalf("domain watch got %s", p)
	}
	select {
	case p := <-dom1Events:
		t.Fatalf("domain watch leaked cross-domain event %s", p)
	default:
	}
	c0.Unwatch(id)
}

func TestShardedTxnRejectsCrossShard(t *testing.T) {
	_, sock := startServer(t, Options{Shards: 4})
	c := dialT(t, sock, store.Dom0)
	for _, dom := range []store.DomID{1, 2} {
		if err := c.Write(store.DomainPath(dom)+"/k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(store.DomainPath(1)+"/k", "a"); err != nil {
		t.Fatalf("first txn op binds the shard: %v", err)
	}
	// Domain 2 lives on a different shard; the txn cannot span both.
	if err := txn.Write(store.DomainPath(2)+"/k", "b"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("cross-shard txn op err = %v, want ErrBadRequest", err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	// Same-shard txns still work end to end.
	txn, err = c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(store.DomainPath(1)+"/k", "committed"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Read(store.DomainPath(1) + "/k"); v != "committed" {
		t.Fatalf("post-commit read = %q", v)
	}
}

func TestShardedStateParity(t *testing.T) {
	// The same write stream applied to a 1-shard and a 4-shard server
	// must produce identical root snapshots.
	_, sock1 := startServer(t, Options{})
	_, sock4 := startServer(t, Options{Shards: 4})
	snaps := make([]map[string]string, 2)
	for i, sock := range []string{sock1, sock4} {
		c := dialT(t, sock, store.Dom0)
		for dom := 1; dom <= 6; dom++ {
			base := store.DomainPath(store.DomID(dom))
			for k := 0; k < 8; k++ {
				if err := c.Write(fmt.Sprintf("%s/d/k%d", base, k), fmt.Sprint(dom*100+k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Remove(base + "/d/k3"); err != nil {
				t.Fatal(err)
			}
		}
		snap, _, err := c.Snapshot(store.Root)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = snap
	}
	if len(snaps[0]) != len(snaps[1]) {
		t.Fatalf("snapshot sizes diverge: %d vs %d", len(snaps[0]), len(snaps[1]))
	}
	for p, v := range snaps[0] {
		if snaps[1][p] != v {
			t.Fatalf("sharded tree diverges at %s: %q vs %q", p, v, snaps[1][p])
		}
	}
}

package netstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"iorchestra/internal/store"
)

// Client is a wire connection to an iorchestra-stored server, bound to
// one domain by the handshake. Its method set mirrors the store surface a
// guest sees in-process; Domain() adapts it to the bus.Conn shape the
// guest driver consumes, so a driver can run out-of-process unchanged.
//
// A Client is safe for concurrent use. Requests may be issued from many
// goroutines; watch callbacks are delivered sequentially by a dedicated
// dispatcher goroutine, and may themselves issue Client operations.
type Client struct {
	c net.Conn
	// br buffers inbound frames: the reply stream is read by exactly one
	// goroutine (handshake, then readLoop), so pipelined replies cost one
	// read syscall instead of two per frame.
	br  *bufio.Reader
	dom store.DomID

	// proto is the protocol version the handshake negotiated: the server
	// answers min(requested, its max), so a new client against an old
	// server lands on v1 and transparently loses batching and sync
	// (Batch falls back to sequential calls, Mirror.Sync to Snapshot).
	proto uint8

	// storeVersion is the server's version counter at handshake.
	storeVersion uint64

	reqMu   sync.Mutex
	nextReq uint32
	pending map[uint32]chan *dec

	watchMu   sync.Mutex
	nextWatch uint32
	watchFns  map[uint32]func(path, value string)

	// events feeds the dispatcher goroutine; the buffer decouples the
	// read loop from user callbacks so a callback issuing RPCs cannot
	// deadlock against its own connection.
	events chan clientEvent

	timeout time.Duration

	closeOnce sync.Once
	closedCh  chan struct{}
	// err records why the connection died, for post-mortem reporting.
	errMu  sync.Mutex
	errVal error
}

type clientEvent struct {
	watch uint32
	path  string
	value string
}

// DefaultTimeout bounds each request round trip unless SetTimeout
// changes it.
const DefaultTimeout = 30 * time.Second

// Dial connects to an iorchestra-stored endpoint ("tcp" or "unix") and
// performs the handshake binding the connection to dom, negotiating the
// newest protocol both ends speak. An old (v1-only) server refuses the
// v2 hello outright — old binaries knew no other answer — so Dial
// redials once pinned to v1; the resulting client works against every
// server version. token is required only when dom is Dom0 and the
// server enforces a token.
func Dial(network, addr string, dom store.DomID, token string) (*Client, error) {
	c, err := DialVersion(network, addr, dom, token, ProtocolVersion)
	if err != nil && errors.Is(err, ErrBadRequest) && ProtocolVersion > ProtocolV1 {
		return DialVersion(network, addr, dom, token, ProtocolV1)
	}
	return c, err
}

// DialVersion is Dial pinned to one requested protocol version, with no
// fallback redial. Version-negotiation tests use it to stand in for an
// old client (ver == ProtocolV1).
func DialVersion(network, addr string, dom store.DomID, token string, ver uint8) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClientVersion(nc, dom, token, ver)
}

// NewClient performs the handshake over an established connection,
// requesting the newest protocol. Against an old server this fails with
// ErrBadRequest (the caller owns the socket, so no redial is possible);
// use Dial for transparent fallback or NewClientVersion to pin v1.
func NewClient(nc net.Conn, dom store.DomID, token string) (*Client, error) {
	return NewClientVersion(nc, dom, token, ProtocolVersion)
}

// NewClientVersion performs the handshake over an established
// connection, requesting protocol version ver.
func NewClientVersion(nc net.Conn, dom store.DomID, token string, ver uint8) (*Client, error) {
	c := &Client{
		c:        nc,
		br:       bufio.NewReaderSize(nc, 16<<10),
		dom:      dom,
		pending:  map[uint32]chan *dec{},
		watchFns: map[uint32]func(path, value string){},
		events:   make(chan clientEvent, 4096),
		timeout:  DefaultTimeout,
		closedCh: make(chan struct{}),
	}
	// Handshake is synchronous: one frame out, one frame back, before the
	// read loop owns the socket.
	e := &enc{}
	e.op(OpHandshake, 1)
	e.u32(Magic)
	e.u8(ver)
	e.u32(uint32(dom))
	e.str(token)
	if err := writeFrame(nc, e.b); err != nil {
		nc.Close()
		return nil, err
	}
	payload, err := readFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	d := &dec{b: payload}
	if Op(d.u8()) != OpReply || d.u32() != 1 {
		nc.Close()
		return nil, fmt.Errorf("%w: unexpected handshake reply", ErrBadRequest)
	}
	st := Status(d.u8())
	msg := d.str()
	if rerr := errOf(st, msg); rerr != nil {
		nc.Close()
		return nil, rerr
	}
	// A v1 hello gets the bare v1 reply (u64 version); a v2+ hello gets
	// the accepted version first. Old servers never accept a v2+ hello,
	// so the layouts cannot be confused.
	c.proto = ProtocolV1
	if ver >= ProtocolV2 {
		c.proto = d.u8()
	}
	c.storeVersion = d.u64()
	if err := d.done(); err != nil {
		nc.Close()
		return nil, err
	}
	if c.proto < ProtocolV1 || c.proto > ver {
		nc.Close()
		return nil, fmt.Errorf("%w: server negotiated impossible version %d", ErrBadRequest, c.proto)
	}
	go c.readLoop()
	go c.dispatchLoop()
	return c, nil
}

// ID reports the domain this connection is bound to.
func (c *Client) ID() store.DomID { return c.dom }

// Proto reports the negotiated protocol version (ProtocolV1 against an
// old server).
func (c *Client) Proto() uint8 { return c.proto }

// ServerVersion reports the store's mutation counter as of the
// handshake, the anchor for Snapshot-based catch-up.
func (c *Client) ServerVersion() uint64 { return c.storeVersion }

// SetTimeout bounds each request round trip (0 disables).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close tears the connection down; in-flight requests fail with
// ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Err reports why the connection died (nil while healthy).
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	select {
	case <-c.closedCh:
		return c.errVal
	default:
		return nil
	}
}

// fail closes the connection once, recording the cause and waking every
// waiter.
func (c *Client) fail(err error) {
	c.closeOnce.Do(func() {
		c.errMu.Lock()
		c.errVal = err
		c.errMu.Unlock()
		close(c.closedCh)
		c.c.Close()
		c.reqMu.Lock()
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
		c.reqMu.Unlock()
	})
}

func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			close(c.events)
			return
		}
		d := &dec{b: payload}
		op := Op(d.u8())
		id := d.u32()
		if d.err != nil {
			c.fail(fmt.Errorf("%w: truncated frame from server", ErrBadRequest))
			close(c.events)
			return
		}
		switch op {
		case OpReply:
			c.reqMu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.reqMu.Unlock()
			if ch != nil {
				ch <- d
			}
		case OpEvent:
			watch := d.u32()
			path := d.str()
			value := d.str()
			if d.done() == nil {
				c.events <- clientEvent{watch: watch, path: path, value: value}
			}
		default:
			c.fail(fmt.Errorf("%w: unexpected opcode %d from server", ErrBadRequest, uint8(op)))
			close(c.events)
			return
		}
	}
}

func (c *Client) dispatchLoop() {
	for ev := range c.events {
		c.watchMu.Lock()
		fn := c.watchFns[ev.watch]
		c.watchMu.Unlock()
		if fn != nil {
			fn(ev.path, ev.value)
		}
	}
}

// rpc sends one request payload and waits for its reply decoder.
func (c *Client) rpc(build func(e *enc, id uint32)) (*dec, error) {
	select {
	case <-c.closedCh:
		return nil, c.Err()
	default:
	}
	ch := make(chan *dec, 1)
	c.reqMu.Lock()
	c.nextReq++
	id := c.nextReq
	c.pending[id] = ch
	e := &enc{b: getBuf(64)}
	build(e, id)
	// Frames must hit the socket in pending-registration order, so the
	// write stays under reqMu; net.Conn writes are safe but interleaving
	// is on us.
	err := writeFrame(c.c, e.b)
	c.reqMu.Unlock()
	putBuf(e.b)
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return nil, c.Err()
	}
	var timer <-chan time.Time
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case d, ok := <-ch:
		if !ok {
			return nil, c.Err()
		}
		return d, nil
	case <-timer:
		c.reqMu.Lock()
		delete(c.pending, id)
		c.reqMu.Unlock()
		return nil, fmt.Errorf("%w after %v", ErrTimeout, c.timeout)
	}
}

// call performs an rpc and decodes the standard status+message prefix;
// the returned decoder is positioned at the op-specific body.
func (c *Client) call(op Op, args func(*enc)) (*dec, error) {
	d, err := c.rpc(func(e *enc, id uint32) {
		e.op(op, id)
		if args != nil {
			args(e)
		}
	})
	if err != nil {
		return nil, err
	}
	st := Status(d.u8())
	msg := d.str()
	if err := errOf(st, msg); err != nil {
		return nil, err
	}
	return d, nil
}

// --- Store surface ----------------------------------------------------------

// Read returns the value at an absolute path.
func (c *Client) Read(path string) (string, error) {
	d, err := c.call(OpRead, func(e *enc) { e.str(path) })
	if err != nil {
		return "", err
	}
	v := d.str()
	return v, d.done()
}

// Write sets the value at an absolute path.
func (c *Client) Write(path, value string) error {
	d, err := c.call(OpWrite, func(e *enc) { e.str(path); e.str(value) })
	if err != nil {
		return err
	}
	return d.done()
}

// Remove deletes the node (and subtree) at an absolute path.
func (c *Client) Remove(path string) error {
	d, err := c.call(OpRemove, func(e *enc) { e.str(path) })
	if err != nil {
		return err
	}
	return d.done()
}

// List returns the sorted child names under an absolute path.
func (c *Client) List(path string) ([]string, error) {
	d, err := c.call(OpList, func(e *enc) { e.str(path) })
	if err != nil {
		return nil, err
	}
	n := d.u32()
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		names = append(names, d.str())
	}
	return names, d.done()
}

// Grant gives target a permission on an absolute path.
func (c *Client) Grant(path string, target store.DomID, perm store.Perm) error {
	d, err := c.call(OpGrant, func(e *enc) {
		e.str(path)
		e.u32(uint32(target))
		e.u8(uint8(perm))
	})
	if err != nil {
		return err
	}
	return d.done()
}

// Exists reports whether an absolute path names a node.
func (c *Client) Exists(path string) (bool, error) {
	d, err := c.call(OpExists, func(e *enc) { e.str(path) })
	if err != nil {
		return false, err
	}
	v := d.u8()
	return v == 1, d.done()
}

// Ping round-trips an empty request (liveness / latency probe).
func (c *Client) Ping() error {
	d, err := c.call(OpPing, nil)
	if err != nil {
		return err
	}
	return d.done()
}

// Stats fetches the server's wire+store counters.
func (c *Client) Stats() (Counters, error) {
	var ctr Counters
	d, err := c.call(OpStats, nil)
	if err != nil {
		return ctr, err
	}
	blob := d.str()
	if err := d.done(); err != nil {
		return ctr, err
	}
	return ctr, json.Unmarshal([]byte(blob), &ctr)
}

// Snapshot walks the subtree at root readable by this domain and returns
// its nodes plus the store version at the instant of the walk — the
// reconnect bootstrap: snapshot first, then re-register watches, and no
// change is lost in between because the walk and the version are atomic
// on the server.
func (c *Client) Snapshot(root string) (map[string]string, uint64, error) {
	d, err := c.call(OpSnapshot, func(e *enc) { e.str(root) })
	if err != nil {
		return nil, 0, err
	}
	version := d.u64()
	n := d.u32()
	nodes := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		p := d.str()
		v := d.str()
		nodes[p] = v
	}
	return nodes, version, d.done()
}

// Watch registers fn on an absolute prefix. The callback runs on the
// client's dispatcher goroutine; events for the same path may be
// coalesced (latest value wins) if this client falls behind.
func (c *Client) Watch(prefix string, fn func(path, value string)) (store.WatchID, error) {
	c.watchMu.Lock()
	c.nextWatch++
	cwid := c.nextWatch
	// Install before sending: the first event may beat the reply.
	c.watchFns[cwid] = fn
	c.watchMu.Unlock()
	d, err := c.call(OpWatch, func(e *enc) { e.u32(cwid); e.str(prefix) })
	if err != nil {
		c.watchMu.Lock()
		delete(c.watchFns, cwid)
		c.watchMu.Unlock()
		return 0, err
	}
	if err := d.done(); err != nil {
		return 0, err
	}
	return store.WatchID(cwid), nil
}

// Unwatch removes a watch registered through this client.
func (c *Client) Unwatch(id store.WatchID) {
	cwid := uint32(id)
	c.watchMu.Lock()
	delete(c.watchFns, cwid)
	c.watchMu.Unlock()
	d, err := c.call(OpUnwatch, func(e *enc) { e.u32(cwid) })
	if err == nil {
		_ = d.done()
	}
}

// --- Typed helpers (mirror store.Store's encodings) -------------------------

// WriteInt writes an integer value.
func (c *Client) WriteInt(path string, v int64) error {
	return c.Write(path, strconv.FormatInt(v, 10))
}

// ReadInt reads an integer value; absent nodes return defaultV.
func (c *Client) ReadInt(path string, defaultV int64) (int64, error) {
	raw, err := c.Read(path)
	if errors.Is(err, store.ErrNoEntry) {
		return defaultV, nil
	}
	if err != nil {
		return defaultV, err
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return defaultV, fmt.Errorf("netstore: %s holds non-integer %q", path, raw)
	}
	return v, nil
}

// WriteBool writes "1" or "0".
func (c *Client) WriteBool(path string, v bool) error {
	if v {
		return c.Write(path, "1")
	}
	return c.Write(path, "0")
}

// ReadBool reads a boolean; absent nodes return false.
func (c *Client) ReadBool(path string) (bool, error) {
	raw, err := c.Read(path)
	if errors.Is(err, store.ErrNoEntry) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return raw == "1" || raw == "true", nil
}

// WriteFloat writes a float value.
func (c *Client) WriteFloat(path string, v float64) error {
	return c.Write(path, strconv.FormatFloat(v, 'g', -1, 64))
}

// ReadFloat reads a float value; absent nodes return defaultV.
func (c *Client) ReadFloat(path string, defaultV float64) (float64, error) {
	raw, err := c.Read(path)
	if errors.Is(err, store.ErrNoEntry) {
		return defaultV, nil
	}
	if err != nil {
		return defaultV, err
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return defaultV, fmt.Errorf("netstore: %s holds non-float %q", path, raw)
	}
	return v, nil
}

// DialStalled connects and handshakes as dom, registers a watch on
// prefix, and then never reads from the socket again — a deliberately
// stalled client. Eviction tests and the load bench use it to prove a
// wedged guest is coalesced around and eventually cut off while live
// clients keep their streams. Closing the returned conn is the caller's
// job.
func DialStalled(network, addr string, dom store.DomID, prefix string) (net.Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	fail := func(e error) (net.Conn, error) { nc.Close(); return nil, e }
	// A v1 hello works against every server version and keeps the reply
	// layout fixed, which is all a deliberately wedged client needs.
	hs := &enc{}
	hs.op(OpHandshake, 1)
	hs.u32(Magic)
	hs.u8(ProtocolV1)
	hs.u32(uint32(dom))
	hs.str("")
	if err := writeFrame(nc, hs.b); err != nil {
		return fail(err)
	}
	if err := readStalledReply(nc); err != nil {
		return fail(err)
	}
	w := &enc{}
	w.op(OpWatch, 2)
	w.u32(1)
	w.str(prefix)
	if err := writeFrame(nc, w.b); err != nil {
		return fail(err)
	}
	if err := readStalledReply(nc); err != nil {
		return fail(err)
	}
	return nc, nil
}

// readStalledReply consumes one reply frame (skipping any interleaved
// events) and surfaces its status. The skip count is bounded per the
// bounded-retry contract: a stalled dial expects at most a handful of
// events ahead of its reply, so thousands of them mean the prefix is
// pathologically hot and giving up loudly beats spinning forever.
func readStalledReply(nc net.Conn) error {
	const maxStalledSkips = 1 << 10
	skipped := 0
	for {
		payload, err := readFrame(nc)
		if err != nil {
			return err
		}
		d := &dec{b: payload}
		if Op(d.u8()) == OpEvent {
			skipped++
			if skipped > maxStalledSkips {
				return fmt.Errorf("%w: %d interleaved events while awaiting the watch reply",
					ErrBadRequest, skipped)
			}
			continue
		}
		d.u32() // request id
		st := Status(d.u8())
		msg := d.str()
		if err := errOf(st, msg); err != nil {
			return err
		}
		return nil
	}
}

// --- Transactions -----------------------------------------------------------

// Txn is a wire-backed optimistic transaction, mirroring store.Txn:
// reads are tracked and writes buffered server-side; Commit fails with
// store.ErrConflict if anything read changed underneath it.
type Txn struct {
	c   *Client
	tid uint32
}

// Begin opens a transaction on the server.
func (c *Client) Begin() (*Txn, error) {
	d, err := c.call(OpTxnBegin, nil)
	if err != nil {
		return nil, err
	}
	tid := d.u32()
	if err := d.done(); err != nil {
		return nil, err
	}
	return &Txn{c: c, tid: tid}, nil
}

// Read reads within the transaction.
func (t *Txn) Read(path string) (string, error) {
	d, err := t.c.call(OpTxnRead, func(e *enc) { e.u32(t.tid); e.str(path) })
	if err != nil {
		return "", err
	}
	v := d.str()
	return v, d.done()
}

// Write buffers a write within the transaction.
func (t *Txn) Write(path, value string) error {
	d, err := t.c.call(OpTxnWrite, func(e *enc) { e.u32(t.tid); e.str(path); e.str(value) })
	if err != nil {
		return err
	}
	return d.done()
}

// Remove buffers a removal within the transaction.
func (t *Txn) Remove(path string) error {
	d, err := t.c.call(OpTxnRemove, func(e *enc) { e.u32(t.tid); e.str(path) })
	if err != nil {
		return err
	}
	return d.done()
}

// Commit validates and applies the transaction atomically.
func (t *Txn) Commit() error {
	d, err := t.c.call(OpTxnCommit, func(e *enc) { e.u32(t.tid) })
	if err != nil {
		return err
	}
	return d.done()
}

// Abort discards the transaction.
func (t *Txn) Abort() error {
	d, err := t.c.call(OpTxnAbort, func(e *enc) { e.u32(t.tid) })
	if err != nil {
		return err
	}
	return d.done()
}

package netstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iorchestra/internal/fault"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Options configures a Server. The zero value is usable.
type Options struct {
	// NotifyQueue bounds the number of *watch events* queued per
	// connection (replies are demand-bounded and do not count). When the
	// queue is full, a newer event for the same (watch, path) replaces the
	// queued one (coalescing, latest value wins — XenStore semantics); an
	// event that cannot coalesce evicts the connection. Default 1024.
	NotifyQueue int
	// WriteTimeout evicts a connection whose socket cannot absorb one
	// frame within the window — the slow-client backstop for peers that
	// read just enough to keep the queue from overflowing. Default 2s.
	WriteTimeout time.Duration
	// Dom0Token, when non-empty, is required in the handshake to bind a
	// connection to Dom0. Guest domains authenticate by reachability
	// alone, as on a XenBus transport.
	Dom0Token string
	// TraceCapacity sizes each shard's decision-trace ring
	// (default trace.DefaultRecorderCapacity).
	TraceCapacity int
	// MaxTxns bounds concurrently open transactions per connection.
	// Default 64.
	MaxTxns int
	// Faults is a PR 2 fault-grammar spec (fault.ParseSpec) applied to the
	// server's store: stalewrite/watchdrop/watchdelay clauses exercise
	// clients against a misbehaving store. Empty disables injection.
	Faults string
	// FaultSeed seeds the injector's deterministic stream (default 1).
	FaultSeed uint64
	// Shards is the number of store-loop shards (default 1). Per-domain
	// /local/domain/<id> subtrees are disjoint, so each domain is routed
	// to one shard by store.Router and shards execute independently.
	// Structural paths (/, /local, /local/domain and non-domain subtrees)
	// live on shard 0. With Shards == 1 the server behaves exactly like
	// the pre-sharding implementation.
	Shards int
	// MaxProtocol caps the protocol version the handshake will accept
	// (default ProtocolVersion). Set to ProtocolV1 to emulate an old
	// server for interop testing: v2+ handshakes are then refused exactly
	// as a v1-only binary would refuse them.
	MaxProtocol uint8
}

func (o Options) withDefaults() Options {
	if o.NotifyQueue <= 0 {
		o.NotifyQueue = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.MaxTxns <= 0 {
		o.MaxTxns = 64
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.MaxProtocol == 0 {
		o.MaxProtocol = ProtocolVersion
	}
	return o
}

// Counters is a snapshot of the server's wire-level accounting, returned
// by OpStats as JSON (and by Server.Counters in-process). Store counters
// are summed across shards.
type Counters struct {
	Accepted  uint64 `json:"accepted"`
	Active    uint64 `json:"active"`
	Evicted   uint64 `json:"evicted"`
	Events    uint64 `json:"events"`
	Coalesced uint64 `json:"coalesced"`

	StoreReads    uint64 `json:"store_reads"`
	StoreWrites   uint64 `json:"store_writes"`
	StoreNotifies uint64 `json:"store_notifies"`

	Shards      uint64 `json:"shards,omitempty"`
	Batches     uint64 `json:"batches,omitempty"`
	BatchOps    uint64 `json:"batch_ops,omitempty"`
	Syncs       uint64 `json:"syncs,omitempty"`
	SyncMatches uint64 `json:"sync_matches,omitempty"`
	SyncDeltas  uint64 `json:"sync_deltas,omitempty"`
	SyncFulls   uint64 `json:"sync_fulls,omitempty"`

	FaultDroppedWrites   uint64 `json:"fault_dropped_writes,omitempty"`
	FaultDroppedNotifies uint64 `json:"fault_dropped_notifies,omitempty"`
	FaultDelayedNotifies uint64 `json:"fault_delayed_notifies,omitempty"`
}

// shard is one independent store loop: its own simulation kernel, store,
// trace recorder and op queue. The per-shard kernel/store/recorder trio
// keeps the single-goroutine discipline intact shard by shard — nothing
// outside a shard's loop ever touches its store or recorder.
type shard struct {
	idx int
	k   *sim.Kernel
	st  *store.Store
	rec *trace.Recorder
	ops chan func()
}

// Server hosts one or more store.Store shards behind the wire protocol.
// Create with NewServer, attach listeners with Serve, stop with Close.
//
// Each shard keeps the single-goroutine discipline: every operation is a
// closure executed by that shard's store-loop goroutine, which then
// drains the shard's private simulation kernel so watch notifications
// scheduled by the operation are delivered (and fanned out to
// connections) before the shard's next operation runs. Connection
// reader/writer goroutines never touch a store directly. Ordering is
// FIFO per shard; with Shards > 1 there is no cross-shard event order,
// which is safe because per-domain subtrees are disjoint.
type Server struct {
	opts   Options
	router store.Router
	shards []*shard

	// k, st and rec alias shard 0, the home of structural paths and
	// connection-lifecycle trace records.
	k   *sim.Kernel
	st  *store.Store
	rec *trace.Recorder

	quit chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[*srvConn]struct{}
	closed    bool
	nextConn  uint64

	accepted  atomic.Uint64
	evicted   atomic.Uint64
	events    atomic.Uint64
	coalesced atomic.Uint64

	batches  atomic.Uint64
	batchOps atomic.Uint64

	syncs       atomic.Uint64
	syncMatches atomic.Uint64
	syncDeltas  atomic.Uint64
	syncFulls   atomic.Uint64

	subMu sync.Mutex
	subs  map[chan []byte]struct{}
	// nsubs mirrors len(subs) so the recorder sink can skip the mutex
	// entirely when nobody is tailing the trace — the common case, paid
	// for on every store mutation otherwise.
	nsubs atomic.Int32
}

// NewServer builds a server around fresh store shards. Each store lives
// on a private simulation kernel with zero notification latency: virtual
// time only orders deliveries; the wire provides the real latency. A
// non-empty Options.Faults spec must parse, or NewServer panics: a store
// silently running without its requested faults would invalidate any
// soak result.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		router: store.NewRouter(opts.Shards),
		quit:   make(chan struct{}),
		conns:  map[*srvConn]struct{}{},
		subs:   map[chan []byte]struct{}{},
	}
	var spec fault.Spec
	var haveFaults bool
	if opts.Faults != "" {
		parsed, err := fault.ParseSpec(opts.Faults)
		if err != nil {
			panic(fmt.Sprintf("netstore: bad fault spec: %v", err))
		}
		spec, haveFaults = parsed, true
	}
	seed := opts.FaultSeed
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < opts.Shards; i++ {
		k := sim.NewKernel()
		s.shards = append(s.shards, &shard{
			idx: i, k: k, st: store.New(k, 0),
			rec: trace.NewRecorder(k, opts.TraceCapacity),
			ops: make(chan func()),
		})
	}
	s.k, s.st, s.rec = s.shards[0].k, s.shards[0].st, s.shards[0].rec
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.storeLoop(sh)
	}
	// Wire each shard on its own loop: recorder, fault hooks and trace
	// sink are store-loop state from the first operation onward, so even
	// these construction-time writes go through doOn (shardsafety-
	// enforced). Nothing is recorded during wiring, so ordering across
	// shards does not matter.
	for _, sh := range s.shards {
		sh := sh
		s.doOn(sh, func() {
			sh.st.SetRecorder(sh.rec)
			if haveFaults {
				// Shard 0 keeps the historical stream name so single-shard
				// fault soaks stay bit-for-bit reproducible across versions.
				name := "netstore/faults"
				if sh.idx > 0 {
					name = fmt.Sprintf("netstore/faults.%d", sh.idx)
				}
				inj := fault.NewInjector(sh.k, spec, stats.NewStream(seed, name))
				inj.SetRecorder(sh.rec)
				if hooks := inj.StoreHooks(); hooks != nil {
					sh.st.SetFaultHooks(hooks)
				}
			}
			sh.rec.SetSink(s.broadcast)
		})
	}
	// Shard 0 owns structural paths; give it the /local/domain spine up
	// front so cross-shard snapshots and lists always find it.
	s.doOn(s.shards[0], func() { s.st.EnsureRoot() })
	return s
}

// Kernel exposes shard 0's private simulation kernel, the clock a
// fault.Injector must be built on so watchdelay draws have a timeline to
// land in. Schedule work on it only via Do.
func (s *Server) Kernel() *sim.Kernel { return s.k }

// ShardCount reports the number of store-loop shards.
func (s *Server) ShardCount() int { return len(s.shards) }

// Do runs fn on each shard's store-loop goroutine in turn (shard 0
// first) with exclusive access to that shard's store, then drains the
// watch deliveries it scheduled. With one shard this is exactly the
// historical single-store Do; with several, fn observes each shard's
// partition of the tree. It is how out-of-band wiring (fault hooks,
// seeding) composes with the server. It reports false without running fn
// if the server is closed.
func (s *Server) Do(fn func(st *store.Store)) bool {
	for _, sh := range s.shards {
		st := sh.st
		if !s.doOn(sh, func() { fn(st) }) {
			return false
		}
	}
	return true
}

// storeLoop owns one shard: it drains the op queue and drives the
// shard's private kernel, so its direct access to shard state is the
// sanctioned baseline.
//
// storeloop
func (s *Server) storeLoop(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case fn := <-sh.ops:
			fn()
			sh.k.Run()
		case <-s.quit:
			return
		}
	}
}

// doOn submits fn to one shard's store loop and waits for it (plus the
// watch deliveries it triggers) to finish.
func (s *Server) doOn(sh *shard, fn func()) bool {
	done := make(chan struct{})
	select {
	case sh.ops <- func() { fn(); close(done) }:
		<-done
		return true
	case <-s.quit:
		return false
	}
}

// shardFor routes a path to its owning shard: the domain's home shard
// for /local/domain/<id> subtrees, shard 0 for structural paths.
func (s *Server) shardFor(path string) *shard {
	i, _ := s.router.PathShard(path)
	return s.shards[i]
}

// sharded reports whether cross-shard merge paths are in play.
func (s *Server) sharded() bool { return len(s.shards) > 1 }

// Serve accepts connections on l until the listener or server closes.
// It blocks; run one goroutine per listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.startConn(c)
	}
}

func (s *Server) startConn(c net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.nextConn++
	sc := &srvConn{
		srv:     s,
		c:       c,
		br:      bufio.NewReaderSize(c, 16<<10),
		id:      s.nextConn,
		watches: map[uint32]*connWatch{},
		txns:    map[uint32]*connTxn{},
		// Built here, not lazily in enqueueEvent: that is the event hot
		// path and a per-call nil check plus literal is an allocation the
		// hotpathalloc pass would rightly flag.
		evIdx: map[eventKey]int{},
	}
	sc.qcond = sync.NewCond(&sc.qmu)
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.accepted.Add(1)
	s.wg.Add(2)
	go sc.readLoop()
	go sc.writeLoop()
}

// Close stops the listeners, evicts every connection and terminates the
// store loops. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	listeners := s.listeners
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	close(s.quit)
	s.wg.Wait()
}

// Counters snapshots the wire + store accounting (store counters summed
// across shards).
func (s *Server) Counters() Counters {
	var ctr Counters
	ctr.Accepted = s.accepted.Load()
	ctr.Evicted = s.evicted.Load()
	ctr.Events = s.events.Load()
	ctr.Coalesced = s.coalesced.Load()
	ctr.Batches = s.batches.Load()
	ctr.BatchOps = s.batchOps.Load()
	ctr.Syncs = s.syncs.Load()
	ctr.SyncMatches = s.syncMatches.Load()
	ctr.SyncDeltas = s.syncDeltas.Load()
	ctr.SyncFulls = s.syncFulls.Load()
	ctr.Shards = uint64(len(s.shards))
	s.mu.Lock()
	ctr.Active = uint64(len(s.conns))
	s.mu.Unlock()
	s.Do(func(st *store.Store) {
		r, w, n := st.Stats()
		ctr.StoreReads += r
		ctr.StoreWrites += w
		ctr.StoreNotifies += n
		dw, dn, dl := st.FaultStats()
		ctr.FaultDroppedWrites += dw
		ctr.FaultDroppedNotifies += dn
		ctr.FaultDelayedNotifies += dl
	})
	return ctr
}

// --- Live trace streaming ---------------------------------------------------

// broadcast is the recorder sink: it runs on a store loop, so it only
// marshals and hands off; subscribers that cannot keep up lose records.
func (s *Server) broadcast(rec trace.Record) {
	if s.nsubs.Load() == 0 {
		return
	}
	s.subMu.Lock()
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		for ch := range s.subs {
			select {
			case ch <- line:
			default: // slow trace subscriber: drop, never block the store
			}
		}
	}
	s.subMu.Unlock()
}

// ServeTrace streams NDJSON trace records to every connection accepted
// on l (the iorchestra-trace live-tail endpoint). It blocks like Serve.
func (s *Server) ServeTrace(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go s.serveTraceConn(c)
	}
}

func (s *Server) serveTraceConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	ch := make(chan []byte, 1024)
	s.subMu.Lock()
	s.subs[ch] = struct{}{}
	s.nsubs.Store(int32(len(s.subs)))
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, ch)
		s.nsubs.Store(int32(len(s.subs)))
		s.subMu.Unlock()
	}()
	// Drain reads so a closing peer is noticed even while idle.
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				c.Close()
				return
			}
		}
	}()
	for {
		select {
		case line := <-ch:
			if s.opts.WriteTimeout > 0 {
				c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			if _, err := c.Write(line); err != nil {
				return
			}
		case <-s.quit:
			return
		}
	}
}

// --- Per-connection state ---------------------------------------------------

type eventKey struct {
	watch uint32
	path  string
}

type outFrame struct {
	payload []byte
	isEvent bool
	key     eventKey
}

// connWatch is one client watch, possibly fanned out across shards: a
// domain-subtree prefix registers on its home shard only; a structural
// prefix (which any shard's writes can match) registers on every shard.
type connWatch struct {
	prefix string
	ids    map[int]store.WatchID // shard index -> store watch id
}

// connTxn is one client transaction. The shard binding is lazy —
// store.Txn.Begin has no side effects, so the transaction binds to the
// shard of the first path it touches; operations on another shard's
// paths fail with StatusBadRequest (cross-shard transactions would need
// two-phase commit, which the disjoint-subtree model deliberately
// avoids).
type connTxn struct {
	sh  *shard
	txn *store.Txn
}

type srvConn struct {
	srv *Server
	c   net.Conn
	id  uint64

	// dom and proto are bound by the handshake, read-only afterwards.
	dom       store.DomID
	proto     uint8
	handshook bool

	// Outbound queue: writer goroutine pops from the front; reader and
	// store-loop goroutines push. qbase is the absolute index of q[0] so
	// evIdx (event key -> absolute index) survives pops.
	qmu     sync.Mutex
	qcond   *sync.Cond
	q       []outFrame
	qbase   int
	nEvents int
	evIdx   map[eventKey]int
	qclosed bool

	closeOnce sync.Once
	// dead flips when the connection is torn down (evicted or closed); it
	// makes eviction accounting idempotent — the queue-overflow evict and
	// the write error it provokes in writeLoop must count once.
	dead atomic.Bool

	// watches and txns are confined to the reader goroutine and the
	// store-loop closures it synchronously awaits, so accesses are
	// serialized without a lock.
	watches map[uint32]*connWatch
	txns    map[uint32]*connTxn
	nextTxn uint32

	// br buffers inbound frames so a burst of pipelined requests costs
	// one read syscall; rbuf is the readLoop's reusable frame buffer
	// (each request is fully decoded — dec copies string bytes out —
	// before the next read).
	br   *bufio.Reader
	rbuf []byte
}

// shutdown tears the connection down; safe from any goroutine, any number
// of times.
func (c *srvConn) shutdown() {
	c.closeOnce.Do(func() {
		c.dead.Store(true)
		c.qmu.Lock()
		c.qclosed = true
		c.qcond.Broadcast()
		c.qmu.Unlock()
		c.c.Close()
	})
}

// enqueue appends a reply frame; replies are bounded by the peer's
// outstanding requests, so they bypass the notify-queue cap.
//
// hotpath
func (c *srvConn) enqueue(payload []byte) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.qclosed {
		return
	}
	c.q = append(c.q, outFrame{payload: payload})
	c.qcond.Signal()
}

// enqueueEvent appends a watch-event frame under the notify-queue bound,
// with delta fan-out: an event still queued for the same (watch, path)
// is replaced by the newer value instead of queuing a second frame, so a
// connection that falls behind receives the net change per path, not the
// history — watch semantics promise "something changed here", never
// every intermediate value. Only when the queue is full AND nothing
// coalesces is the connection evicted. from is the shard whose store
// loop is delivering the event (eviction must record on a loop it
// already holds). It reports whether the connection survived.
//
// hotpath
func (c *srvConn) enqueueEvent(key eventKey, payload []byte, from *shard) bool {
	c.qmu.Lock()
	if c.qclosed {
		c.qmu.Unlock()
		return false
	}
	if abs, ok := c.evIdx[key]; ok && abs >= c.qbase {
		old := c.q[abs-c.qbase].payload
		c.q[abs-c.qbase].payload = payload
		c.qmu.Unlock()
		putBuf(old)
		c.srv.coalesced.Add(1)
		return true
	}
	if c.nEvents >= c.srv.opts.NotifyQueue {
		c.qmu.Unlock()
		c.evict("notify queue overflow", from)
		return false
	}
	c.q = append(c.q, outFrame{payload: payload, isEvent: true, key: key})
	c.evIdx[key] = c.qbase + len(c.q) - 1
	c.nEvents++
	c.qcond.Signal()
	c.qmu.Unlock()
	c.srv.events.Add(1)
	return true
}

// evict severs a connection that cannot keep up. onLoop must be the
// shard whose store loop the caller is already running on (watch
// delivery), where a doOn round trip would self-deadlock; nil when
// called from a socket goroutine. The direct onLoop.rec.Record is
// sanctioned by the same precondition, hence the marker.
//
// storeloop
func (c *srvConn) evict(reason string, onLoop *shard) {
	if !c.dead.CompareAndSwap(false, true) {
		c.shutdown()
		return
	}
	c.shutdown()
	c.srv.evicted.Add(1)
	rec := trace.Record{Kind: trace.KindWireConn, Dom: int(c.dom), Value: "evict", Path: reason}
	if onLoop != nil {
		onLoop.rec.Record(rec)
	} else {
		sh := c.srv.shards[0]
		c.srv.doOn(sh, func() { sh.rec.Record(rec) })
	}
}

// hotpath
func (c *srvConn) writeLoop() {
	defer c.srv.wg.Done()
	// Frames queued while the previous write was on the wire are drained
	// together and written with a single syscall — under load a burst of
	// replies and watch events costs one write, not one per frame. The
	// byte budget keeps the combined buffer poolable.
	const coalesceBudget = 48 << 10
	var frames []outFrame
	for {
		c.qmu.Lock()
		for len(c.q) == 0 && !c.qclosed {
			c.qcond.Wait()
		}
		if c.qclosed {
			c.qmu.Unlock()
			return
		}
		frames = frames[:0]
		total := 0
		for len(c.q) > 0 && total < coalesceBudget {
			fr := c.q[0]
			c.q[0] = outFrame{}
			c.q = c.q[1:]
			c.qbase++
			if fr.isEvent {
				c.nEvents--
				if abs, ok := c.evIdx[fr.key]; ok && abs == c.qbase-1 {
					delete(c.evIdx, fr.key)
				}
			}
			frames = append(frames, fr)
			total += 4 + len(fr.payload)
		}
		c.qmu.Unlock()
		buf := getBuf(total)
		for i := range frames {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(frames[i].payload)))
			buf = append(buf, frames[i].payload...)
			putBuf(frames[i].payload)
			frames[i] = outFrame{}
		}
		if wt := c.srv.opts.WriteTimeout; wt > 0 {
			c.c.SetWriteDeadline(time.Now().Add(wt))
		}
		_, err := c.c.Write(buf)
		putBuf(buf)
		if err != nil {
			c.evict("write stall: "+err.Error(), nil)
			return
		}
	}
}

func (c *srvConn) readLoop() {
	defer c.srv.wg.Done()
	defer func() {
		c.shutdown()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		// Tear down store-side state (watches, open transactions) shard by
		// shard; the connection-close record lands on shard 0 with the
		// rest of the connection lifecycle.
		dom, hs := c.dom, c.handshook
		for _, sh := range c.srv.shards {
			sh := sh
			c.srv.doOn(sh, func() {
				for _, cw := range c.watches {
					if wid, ok := cw.ids[sh.idx]; ok {
						sh.st.Unwatch(wid)
					}
				}
				for _, t := range c.txns {
					if t.txn != nil && t.sh == sh {
						t.txn.Abort()
					}
				}
				if sh.idx == 0 && hs {
					sh.rec.Record(trace.Record{Kind: trace.KindWireConn, Dom: int(dom), Value: "close"})
				}
			})
		}
		c.watches = map[uint32]*connWatch{}
		c.txns = map[uint32]*connTxn{}
	}()
	if err := c.handshake(); err != nil {
		return
	}
	for {
		payload, next, err := readFrameReuse(c.br, c.rbuf)
		c.rbuf = next
		if err != nil {
			return
		}
		d := &dec{b: payload}
		op := Op(d.u8())
		id := d.u32()
		if d.err != nil {
			return // unframeable garbage: drop the connection
		}
		c.handle(op, id, d)
	}
}

// reply builds a reply frame: status, message, then op-specific body.
// The returned buffer is pooled; writeLoop recycles it after the socket
// write.
func reply(id uint32, err error, body func(*enc)) []byte {
	e := &enc{b: getBuf(64)}
	e.op(OpReply, id)
	st := statusOf(err)
	e.u8(uint8(st))
	if err != nil {
		e.str(err.Error())
	} else {
		e.str("")
	}
	if body != nil && err == nil {
		body(e)
	}
	return e.b
}

// handshake reads and answers the binding frame, negotiating the
// protocol version: a v1 hello gets the exact v1 reply (u64 store
// version), a v2+ hello is answered with min(requested, MaxProtocol)
// followed by the version — unless the server is capped at v1, which
// refuses anything newer precisely as an old binary would. Its replies
// go straight to the socket, not through the outbound queue: nothing
// else can be queued yet (requests and watches require a completed
// handshake), and a rejection must reach the peer before the connection
// closes.
func (c *srvConn) handshake() error {
	payload, err := readFrame(c.br)
	if err != nil {
		return err
	}
	d := &dec{b: payload}
	op := Op(d.u8())
	id := d.u32()
	magic := d.u32()
	ver := d.u8()
	dom := store.DomID(d.u32())
	token := d.str()
	refuse := func(cause error) error {
		if wt := c.srv.opts.WriteTimeout; wt > 0 {
			c.c.SetWriteDeadline(time.Now().Add(wt))
		}
		out := reply(id, cause, nil)
		writeFrame(c.c, out)
		putBuf(out)
		return cause
	}
	if err := d.done(); err != nil || op != OpHandshake || magic != Magic {
		return refuse(fmt.Errorf("%w: malformed handshake", ErrBadRequest))
	}
	if ver < ProtocolV1 || (ver > ProtocolV1 && c.srv.opts.MaxProtocol <= ProtocolV1) {
		return refuse(fmt.Errorf("%w: protocol version %d (want %d)", ErrBadRequest, ver, ProtocolV1))
	}
	accepted := ver
	if accepted > c.srv.opts.MaxProtocol {
		accepted = c.srv.opts.MaxProtocol
	}
	if dom == store.Dom0 && c.srv.opts.Dom0Token != "" && token != c.srv.opts.Dom0Token {
		return refuse(fmt.Errorf("%w: dom0 token rejected", ErrAuth))
	}
	c.dom = dom
	c.proto = accepted
	c.handshook = true
	home := c.srv.shards[c.srv.router.ShardOf(dom)]
	var version uint64
	if !c.srv.sharded() {
		if !c.srv.doOn(home, func() {
			home.st.AddDomain(dom)
			version = home.st.Version()
			home.rec.Record(trace.Record{Kind: trace.KindWireConn, Dom: int(dom), Value: "connect"})
		}) {
			return ErrClosed
		}
	} else {
		if !c.srv.doOn(home, func() { home.st.AddDomain(dom) }) {
			return ErrClosed
		}
		for _, sh := range c.srv.shards {
			sh := sh
			var v uint64
			if !c.srv.doOn(sh, func() {
				v = sh.st.Version()
				if sh.idx == 0 {
					sh.rec.Record(trace.Record{Kind: trace.KindWireConn, Dom: int(dom), Value: "connect"})
				}
			}) {
				return ErrClosed
			}
			version += v
		}
	}
	if wt := c.srv.opts.WriteTimeout; wt > 0 {
		c.c.SetWriteDeadline(time.Now().Add(wt))
	}
	out := reply(id, nil, func(e *enc) {
		if accepted >= ProtocolV2 {
			e.u8(accepted)
		}
		e.u64(version)
	})
	err = writeFrame(c.c, out)
	putBuf(out)
	if err != nil {
		return err
	}
	c.c.SetWriteDeadline(time.Time{})
	return nil
}

// handle decodes and executes one request on the owning shard's store
// loop, then queues the reply. Malformed bodies produce StatusBadRequest
// rather than dropping the connection, so one bad client request stays
// diagnosable.
func (c *srvConn) handle(op Op, id uint32, d *dec) {
	var out []byte
	// runOn executes fn on one shard, recording the wire.op trace there.
	runOn := func(sh *shard, path string, fn func() (func(*enc), error)) {
		ok := c.srv.doOn(sh, func() {
			sh.rec.Record(trace.Record{
				Kind: trace.KindWireOp, Dom: int(c.dom), Path: path, Value: op.String(),
			})
			body, err := fn()
			out = reply(id, err, body)
		})
		if !ok {
			out = reply(id, ErrClosed, nil)
		}
	}
	// run routes by path and hands fn the owning shard's store.
	run := func(path string, fn func(st *store.Store) (func(*enc), error)) {
		sh := c.srv.shardFor(path)
		runOn(sh, path, func() (func(*enc), error) { return fn(sh.st) })
	}
	switch op {
	case OpPing:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		out = reply(id, nil, nil)

	case OpRead:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			v, err := st.Read(c.dom, path)
			return func(e *enc) { e.str(v) }, err
		})

	case OpWrite:
		path := d.path()
		value := d.value()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			return nil, st.Write(c.dom, path, value)
		})

	case OpRemove:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		if c.srv.sharded() && strings.HasPrefix(store.Root, path) {
			// /local and /local/domain are replicated spine on every
			// shard; removing them piecemeal would desynchronize routing.
			out = reply(id, fmt.Errorf("%w: cannot remove structural path %s on a sharded server", ErrBadRequest, path), nil)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			return nil, st.Remove(c.dom, path)
		})

	case OpList:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		if c.srv.sharded() && path == store.Root {
			out = c.crossList(id, op, path)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			names, err := st.List(c.dom, path)
			return func(e *enc) {
				e.u32(uint32(len(names)))
				for _, n := range names {
					e.str(n)
				}
			}, err
		})

	case OpGrant:
		path := d.path()
		target := store.DomID(d.u32())
		perm := store.Perm(d.u8())
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		if _, owned := c.srv.router.PathShard(path); c.srv.sharded() && !owned {
			// Structural nodes are replicated; apply the grant everywhere
			// it exists so permission checks agree across shards.
			out = c.crossGrant(id, op, path, target, perm)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			return nil, st.Grant(c.dom, path, target, perm)
		})

	case OpExists:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func(st *store.Store) (func(*enc), error) {
			v := uint8(0)
			if st.Exists(path) {
				v = 1
			}
			return func(e *enc) { e.u8(v) }, nil
		})

	case OpWatch:
		cwid := d.u32()
		prefix := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		out = c.handleWatch(id, op, cwid, prefix)

	case OpUnwatch:
		cwid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		cw := c.watches[cwid]
		delete(c.watches, cwid)
		runOn(c.srv.shards[0], "", func() (func(*enc), error) {
			if cw != nil {
				if wid, ok := cw.ids[0]; ok {
					c.srv.shards[0].st.Unwatch(wid)
				}
			}
			return nil, nil
		})
		if cw != nil {
			for _, sh := range c.srv.shards[1:] {
				if wid, ok := cw.ids[sh.idx]; ok {
					sh := sh
					c.srv.doOn(sh, func() { sh.st.Unwatch(wid) })
				}
			}
		}

	case OpTxnBegin:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		runOn(c.srv.shards[0], "", func() (func(*enc), error) {
			if len(c.txns) >= c.srv.opts.MaxTxns {
				return nil, fmt.Errorf("%w: %d transactions already open", ErrBadRequest, len(c.txns))
			}
			c.nextTxn++
			tid := c.nextTxn
			c.txns[tid] = &connTxn{}
			return func(e *enc) { e.u32(tid) }, nil
		})

	case OpTxnRead:
		tid := d.u32()
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		c.runTxn(&out, op, id, tid, path, func(t *connTxn) (func(*enc), error) {
			v, err := t.txn.Read(path)
			return func(e *enc) { e.str(v) }, err
		})

	case OpTxnWrite:
		tid := d.u32()
		path := d.path()
		value := d.value()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		c.runTxn(&out, op, id, tid, path, func(t *connTxn) (func(*enc), error) {
			return nil, t.txn.Write(path, value)
		})

	case OpTxnRemove:
		tid := d.u32()
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		c.runTxn(&out, op, id, tid, path, func(t *connTxn) (func(*enc), error) {
			return nil, t.txn.Remove(path)
		})

	case OpTxnCommit:
		tid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		t, ok := c.txns[tid]
		if !ok {
			out = reply(id, fmt.Errorf("%w: %d", ErrUnknownTxn, tid), nil)
			break
		}
		delete(c.txns, tid)
		sh := c.srv.shards[0]
		if t.sh != nil {
			sh = t.sh
		}
		runOn(sh, "", func() (func(*enc), error) {
			if t.txn == nil {
				return nil, nil // no ops: an empty transaction commits trivially
			}
			return nil, t.txn.Commit()
		})

	case OpTxnAbort:
		tid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		t, ok := c.txns[tid]
		if !ok {
			out = reply(id, fmt.Errorf("%w: %d", ErrUnknownTxn, tid), nil)
			break
		}
		delete(c.txns, tid)
		sh := c.srv.shards[0]
		if t.sh != nil {
			sh = t.sh
		}
		runOn(sh, "", func() (func(*enc), error) {
			if t.txn != nil {
				t.txn.Abort()
			}
			return nil, nil
		})

	case OpSnapshot:
		root := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		if _, owned := c.srv.router.PathShard(root); c.srv.sharded() && !owned {
			out = c.crossSnapshot(id, op, root)
			break
		}
		sh := c.srv.shardFor(root)
		runOn(sh, root, func() (func(*enc), error) {
			type pair struct{ p, v string }
			var pairs []pair
			snapshotWalk(sh.st, c.dom, root, func(p, v string) {
				pairs = append(pairs, pair{p, v})
			})
			version := sh.st.Version()
			return func(e *enc) {
				e.u64(version)
				e.u32(uint32(len(pairs)))
				for _, kv := range pairs {
					e.str(kv.p)
					e.str(kv.v)
				}
			}, nil
		})

	case OpStats:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		// Counters itself round-trips through the store loops; build the
		// reply outside runOn to avoid a self-deadlock.
		blob, err := json.Marshal(c.srv.Counters())
		if err != nil {
			out = reply(id, err, nil)
			break
		}
		out = reply(id, nil, func(e *enc) { e.str(string(blob)) })

	case OpBatch:
		out = c.handleBatch(id, d)

	case OpSync:
		out = c.handleSync(id, op, d)

	default:
		out = reply(id, fmt.Errorf("%w: opcode %d", ErrBadRequest, uint8(op)), nil)
	}
	c.enqueue(out)
}

// runTxn executes one transactional path op, binding the transaction to
// the path's shard on first touch (store.Txn.Begin has no side effects,
// so lazy binding is exact).
func (c *srvConn) runTxn(out *[]byte, op Op, id, tid uint32, path string, fn func(*connTxn) (func(*enc), error)) {
	t, ok := c.txns[tid]
	if !ok {
		*out = reply(id, fmt.Errorf("%w: %d", ErrUnknownTxn, tid), nil)
		return
	}
	sh := c.srv.shardFor(path)
	if t.sh != nil && t.sh != sh {
		*out = reply(id, fmt.Errorf("%w: cross-shard transaction: %s is on shard %d, transaction bound to shard %d",
			ErrBadRequest, path, sh.idx, t.sh.idx), nil)
		return
	}
	okDo := c.srv.doOn(sh, func() {
		sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: path, Value: op.String()})
		if t.txn == nil {
			t.sh = sh
			t.txn = sh.st.Begin(c.dom)
		}
		body, err := fn(t)
		*out = reply(id, err, body)
	})
	if !okDo {
		*out = reply(id, ErrClosed, nil)
	}
}

// handleWatch registers a watch: a domain-subtree prefix on its home
// shard only, a structural prefix on every shard (any shard's writes can
// match it). Event frames carry the client's watch id, so fan-in across
// shards is transparent to the peer.
func (c *srvConn) handleWatch(id uint32, op Op, cwid uint32, prefix string) []byte {
	if _, dup := c.watches[cwid]; dup {
		return reply(id, fmt.Errorf("%w: watch id %d in use", ErrBadRequest, cwid), nil)
	}
	_, owned := c.srv.router.PathShard(prefix)
	targets := c.srv.shards
	if owned || !c.srv.sharded() {
		targets = []*shard{c.srv.shardFor(prefix)}
	}
	cw := &connWatch{prefix: prefix, ids: map[int]store.WatchID{}}
	for i, sh := range targets {
		sh := sh
		cb := func(path, value string) {
			ev := &enc{b: getBuf(64)}
			ev.op(OpEvent, 0)
			ev.u32(cwid)
			ev.str(path)
			ev.str(value)
			c.enqueueEvent(eventKey{watch: cwid, path: path}, ev.b, sh)
		}
		var werr error
		recordHere := i == 0
		ok := c.srv.doOn(sh, func() {
			if recordHere {
				sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: prefix, Value: op.String()})
			}
			wid, err := sh.st.Watch(c.dom, prefix, cb)
			if err != nil {
				werr = err
				return
			}
			cw.ids[sh.idx] = wid
		})
		if !ok {
			return reply(id, ErrClosed, nil)
		}
		if werr != nil {
			// Roll back partial registrations.
			for idx, wid := range cw.ids {
				shx := c.srv.shards[idx]
				c.srv.doOn(shx, func() { shx.st.Unwatch(wid) })
			}
			return reply(id, werr, nil)
		}
	}
	c.watches[cwid] = cw
	return reply(id, nil, nil)
}

// crossList merges List(/local/domain) across shards: domain children
// live on their home shards, so the union (sorted, deduped) is the
// single-store answer. Shard 0's permission verdict governs — the spine
// is replicated with identical ownership everywhere.
func (c *srvConn) crossList(id uint32, op Op, path string) []byte {
	set := map[string]struct{}{}
	var firstErr error
	for _, sh := range c.srv.shards {
		sh := sh
		ok := c.srv.doOn(sh, func() {
			if sh.idx == 0 {
				sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: path, Value: op.String()})
			}
			names, err := sh.st.List(c.dom, path)
			if err != nil {
				if sh.idx == 0 {
					firstErr = err
				}
				return
			}
			for _, n := range names {
				set[n] = struct{}{}
			}
		})
		if !ok {
			return reply(id, ErrClosed, nil)
		}
	}
	if firstErr != nil {
		return reply(id, firstErr, nil)
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return reply(id, nil, func(e *enc) {
		e.u32(uint32(len(names)))
		for _, n := range names {
			e.str(n)
		}
	})
}

// crossGrant applies a structural-path grant on every shard where the
// node exists, so permission checks agree regardless of which shard
// evaluates them. Shard 0's verdict is the reply.
func (c *srvConn) crossGrant(id uint32, op Op, path string, target store.DomID, perm store.Perm) []byte {
	var firstErr error
	for _, sh := range c.srv.shards {
		sh := sh
		ok := c.srv.doOn(sh, func() {
			if sh.idx == 0 {
				sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: path, Value: op.String()})
			}
			if err := sh.st.Grant(c.dom, path, target, perm); err != nil && sh.idx == 0 {
				firstErr = err
			}
		})
		if !ok {
			return reply(id, ErrClosed, nil)
		}
	}
	return reply(id, firstErr, nil)
}

// crossSnapshot walks a structural root across shards: the spine and any
// non-domain subtrees come from shard 0 (pruned at /local/domain), then
// each domain subtree is walked on its home shard in sorted-name order.
// The reported version is the sum of shard versions — monotonic, like
// the handshake version. Node paths, not emission order, are the
// contract; ordering matches a single store except that domain subtrees
// sort after every structural node.
func (c *srvConn) crossSnapshot(id uint32, op Op, root string) []byte {
	type pair struct{ p, v string }
	var pairs []pair
	var version uint64
	coversRoot := strings.HasPrefix(store.Root, root) || root == store.Root
	domainSet := map[string]struct{}{}
	for _, sh := range c.srv.shards {
		sh := sh
		ok := c.srv.doOn(sh, func() {
			version += sh.st.Version()
			if sh.idx == 0 {
				sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: root, Value: op.String()})
				if coversRoot {
					snapshotWalkPruned(sh.st, c.dom, root, func(p, v string) {
						pairs = append(pairs, pair{p, v})
					})
				} else {
					// Non-domain subtree: shard 0 owns it outright.
					snapshotWalk(sh.st, c.dom, root, func(p, v string) {
						pairs = append(pairs, pair{p, v})
					})
				}
			}
			if coversRoot {
				if names, err := sh.st.List(c.dom, store.Root); err == nil {
					for _, n := range names {
						domainSet[n] = struct{}{}
					}
				}
			}
		})
		if !ok {
			return reply(id, ErrClosed, nil)
		}
	}
	if coversRoot {
		names := make([]string, 0, len(domainSet))
		for n := range domainSet {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			sub := store.Root + "/" + name
			sh := c.srv.shardFor(sub)
			ok := c.srv.doOn(sh, func() {
				snapshotWalk(sh.st, c.dom, sub, func(p, v string) {
					pairs = append(pairs, pair{p, v})
				})
			})
			if !ok {
				return reply(id, ErrClosed, nil)
			}
		}
	}
	return reply(id, nil, func(e *enc) {
		e.u64(version)
		e.u32(uint32(len(pairs)))
		for _, kv := range pairs {
			e.str(kv.p)
			e.str(kv.v)
		}
	})
}

// --- Batched frames (protocol v2) -------------------------------------------

// batchSub is one decoded sub-operation of an OpBatch frame.
type batchSub struct {
	op     Op
	path   string
	value  string
	target store.DomID
	perm   store.Perm
}

// handleBatch executes an OpBatch frame: N sub-ops in, N sub-replies
// out, one round trip. Sub-ops are grouped by owning shard and each
// group runs as a single store-loop closure — one channel hop and one
// wire.batch trace record per shard touched, which is where the hot-path
// amortization comes from. Results are reassembled in request order;
// per-op failures are per-op statuses, never a dropped frame.
func (c *srvConn) handleBatch(id uint32, d *dec) []byte {
	if c.proto < ProtocolV2 {
		return reply(id, fmt.Errorf("%w: batch requires protocol >= %d", ErrBadRequest, ProtocolV2), nil)
	}
	n := d.u32()
	if d.err == nil && n > MaxBatchOps {
		return reply(id, fmt.Errorf("%w: batch of %d ops exceeds MaxBatchOps", ErrBadRequest, n), nil)
	}
	subs := make([]batchSub, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		so := batchSub{op: Op(d.u8())}
		switch so.op {
		case OpRead, OpRemove, OpList, OpExists:
			so.path = d.path()
		case OpWrite:
			so.path = d.path()
			so.value = d.value()
		case OpGrant:
			so.path = d.path()
			so.target = store.DomID(d.u32())
			so.perm = store.Perm(d.u8())
		case OpPing:
		default:
			return reply(id, fmt.Errorf("%w: opcode %d not batchable", ErrBadRequest, uint8(so.op)), nil)
		}
		subs = append(subs, so)
	}
	if err := d.done(); err != nil {
		return reply(id, err, nil)
	}
	type subRes struct {
		err  error
		body func(*enc)
	}
	results := make([]subRes, len(subs))
	// Group by shard, preserving per-shard request order.
	groups := make([][]int, len(c.srv.shards))
	for i, so := range subs {
		if so.op == OpRemove && c.srv.sharded() && strings.HasPrefix(store.Root, so.path) {
			results[i] = subRes{err: fmt.Errorf("%w: cannot remove structural path %s on a sharded server", ErrBadRequest, so.path)}
			continue
		}
		shardIdx := 0
		if so.op != OpPing {
			shardIdx, _ = c.srv.router.PathShard(so.path)
		}
		groups[shardIdx] = append(groups[shardIdx], i)
	}
	for shardIdx, group := range groups {
		if len(group) == 0 {
			continue
		}
		sh := c.srv.shards[shardIdx]
		group := group
		ok := c.srv.doOn(sh, func() {
			sh.rec.Record(trace.Record{
				Kind: trace.KindWireBatch, Dom: int(c.dom), Value: "batch", Size: int64(len(group)),
			})
			for _, i := range group {
				so := subs[i]
				switch so.op {
				case OpPing:
					results[i] = subRes{}
				case OpRead:
					v, err := sh.st.Read(c.dom, so.path)
					results[i] = subRes{err: err, body: func(e *enc) { e.str(v) }}
				case OpWrite:
					results[i] = subRes{err: sh.st.Write(c.dom, so.path, so.value)}
				case OpRemove:
					results[i] = subRes{err: sh.st.Remove(c.dom, so.path)}
				case OpList:
					names, err := sh.st.List(c.dom, so.path)
					results[i] = subRes{err: err, body: func(e *enc) {
						e.u32(uint32(len(names)))
						for _, nm := range names {
							e.str(nm)
						}
					}}
				case OpExists:
					v := uint8(0)
					if sh.st.Exists(so.path) {
						v = 1
					}
					results[i] = subRes{body: func(e *enc) { e.u8(v) }}
				case OpGrant:
					results[i] = subRes{err: sh.st.Grant(c.dom, so.path, so.target, so.perm)}
				}
			}
		})
		if !ok {
			return reply(id, ErrClosed, nil)
		}
	}
	c.srv.batches.Add(1)
	c.srv.batchOps.Add(uint64(len(subs)))
	return reply(id, nil, func(e *enc) {
		e.u32(uint32(len(results)))
		for _, r := range results {
			e.u8(uint8(statusOf(r.err)))
			if r.err != nil {
				e.str(r.err.Error())
			} else {
				e.str("")
				if r.body != nil {
					r.body(e)
				}
			}
		}
	})
}

// --- Hash-versioned subtree sync (protocol v2) ------------------------------

// handleSync answers an OpSync catch-up request for one domain subtree.
// Three outcomes, cheapest first: the client's hash matches (nothing to
// send), the journal still covers the client's version (send exactly the
// paths that moved), or the client is older than the retained window
// (full permission-filtered walk). The version/hash pair anchors the
// client's next sync.
func (c *srvConn) handleSync(id uint32, op Op, d *dec) []byte {
	if c.proto < ProtocolV2 {
		return reply(id, fmt.Errorf("%w: sync requires protocol >= %d", ErrBadRequest, ProtocolV2), nil)
	}
	root := d.path()
	since := d.u64()
	known := d.u64()
	if err := d.done(); err != nil {
		return reply(id, err, nil)
	}
	if dom, ok := store.PathDomain(root); !ok || root != store.DomainPath(dom) {
		return reply(id, fmt.Errorf("%w: sync root %q is not a domain subtree root", ErrBadRequest, root), nil)
	}
	sh := c.srv.shardFor(root)
	type pair struct {
		p, v    string
		removed bool
	}
	var mode uint8
	var curV, curH uint64
	var pairs []pair
	var out []byte
	ok := c.srv.doOn(sh, func() {
		sh.rec.Record(trace.Record{Kind: trace.KindWireOp, Dom: int(c.dom), Path: root, Value: op.String()})
		curV = sh.st.Version()
		curH = sh.st.SubtreeHash(root)
		prefix := root + "/"
		if known == curH {
			mode = SyncMatch
		} else if deltas, covered := sh.st.DeltasSince(since); covered && since <= curV {
			mode = SyncDelta
			// Prune markers lead the reply so the client drops stale
			// subtrees before applying current values — a path removed and
			// then recreated in the window carries both a marker and a
			// value, in that order.
			var values []pair
			for _, dl := range deltas {
				p := dl.Path
				if p != root && !strings.HasPrefix(p, prefix) {
					continue
				}
				v, err := sh.st.Read(c.dom, p)
				switch {
				case dl.Removed:
					pairs = append(pairs, pair{p: p, removed: true})
					if err == nil {
						values = append(values, pair{p: p, v: v})
					}
				case err == nil:
					values = append(values, pair{p: p, v: v})
				case errors.Is(err, store.ErrNoEntry):
					pairs = append(pairs, pair{p: p, removed: true})
				default:
					// Unreadable for this domain: not part of its view.
				}
			}
			pairs = append(pairs, values...)
		} else {
			mode = SyncFull
			snapshotWalk(sh.st, c.dom, root, func(p, v string) {
				pairs = append(pairs, pair{p: p, v: v})
			})
		}
		out = reply(id, nil, func(e *enc) {
			e.u8(mode)
			e.u64(curV)
			e.u64(curH)
			e.u32(uint32(len(pairs)))
			for _, kv := range pairs {
				e.str(kv.p)
				r := uint8(0)
				if kv.removed {
					r = 1
				}
				e.u8(r)
				e.str(kv.v)
			}
		})
	})
	if !ok {
		return reply(id, ErrClosed, nil)
	}
	c.srv.syncs.Add(1)
	switch mode {
	case SyncMatch:
		c.srv.syncMatches.Add(1)
	case SyncDelta:
		c.srv.syncDeltas.Add(1)
	default:
		c.srv.syncFulls.Add(1)
	}
	return out
}

// snapshotWalk emits every node at or below root readable by dom, in
// deterministic (sorted-children) order. Runs on the owning store loop.
//
// storeloop
func snapshotWalk(st *store.Store, dom store.DomID, root string, emit func(path, value string)) {
	if v, err := st.Read(dom, root); err == nil {
		emit(root, v)
	}
	names, err := st.List(dom, root)
	if err != nil {
		return
	}
	base := root
	if base != "/" {
		base += "/"
	}
	for _, name := range names {
		snapshotWalk(st, dom, base+name, emit)
	}
}

// snapshotWalkPruned is snapshotWalk, except it does not descend below
// /local/domain — the cross-shard snapshot walks those subtrees on their
// home shards instead. Runs on the owning store loop.
//
// storeloop
func snapshotWalkPruned(st *store.Store, dom store.DomID, root string, emit func(path, value string)) {
	if v, err := st.Read(dom, root); err == nil {
		emit(root, v)
	}
	if root == store.Root {
		return
	}
	names, err := st.List(dom, root)
	if err != nil {
		return
	}
	base := root
	if base != "/" {
		base += "/"
	}
	for _, name := range names {
		snapshotWalkPruned(st, dom, base+name, emit)
	}
}

package netstore

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"iorchestra/internal/fault"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Options configures a Server. The zero value is usable.
type Options struct {
	// NotifyQueue bounds the number of *watch events* queued per
	// connection (replies are demand-bounded and do not count). When the
	// queue is full, a newer event for the same (watch, path) replaces the
	// queued one (coalescing, latest value wins — XenStore semantics); an
	// event that cannot coalesce evicts the connection. Default 1024.
	NotifyQueue int
	// WriteTimeout evicts a connection whose socket cannot absorb one
	// frame within the window — the slow-client backstop for peers that
	// read just enough to keep the queue from overflowing. Default 2s.
	WriteTimeout time.Duration
	// Dom0Token, when non-empty, is required in the handshake to bind a
	// connection to Dom0. Guest domains authenticate by reachability
	// alone, as on a XenBus transport.
	Dom0Token string
	// TraceCapacity sizes the server's decision-trace ring
	// (default trace.DefaultRecorderCapacity).
	TraceCapacity int
	// MaxTxns bounds concurrently open transactions per connection.
	// Default 64.
	MaxTxns int
	// Faults is a PR 2 fault-grammar spec (fault.ParseSpec) applied to the
	// server's store: stalewrite/watchdrop/watchdelay clauses exercise
	// clients against a misbehaving store. Empty disables injection.
	Faults string
	// FaultSeed seeds the injector's deterministic stream (default 1).
	FaultSeed uint64
}

func (o Options) withDefaults() Options {
	if o.NotifyQueue <= 0 {
		o.NotifyQueue = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.MaxTxns <= 0 {
		o.MaxTxns = 64
	}
	return o
}

// Counters is a snapshot of the server's wire-level accounting, returned
// by OpStats as JSON (and by Server.Counters in-process).
type Counters struct {
	Accepted  uint64 `json:"accepted"`
	Active    uint64 `json:"active"`
	Evicted   uint64 `json:"evicted"`
	Events    uint64 `json:"events"`
	Coalesced uint64 `json:"coalesced"`

	StoreReads    uint64 `json:"store_reads"`
	StoreWrites   uint64 `json:"store_writes"`
	StoreNotifies uint64 `json:"store_notifies"`

	FaultDroppedWrites   uint64 `json:"fault_dropped_writes,omitempty"`
	FaultDroppedNotifies uint64 `json:"fault_dropped_notifies,omitempty"`
	FaultDelayedNotifies uint64 `json:"fault_delayed_notifies,omitempty"`
}

// Server hosts a store.Store behind the wire protocol. Create with
// NewServer, attach listeners with Serve, stop with Close.
//
// The store keeps its single-goroutine discipline: every operation is a
// closure executed by one store-loop goroutine, which then drains the
// private simulation kernel so watch notifications scheduled by the
// operation are delivered (and fanned out to connections) before the
// next operation runs. Connection reader/writer goroutines never touch
// the store directly.
type Server struct {
	k    *sim.Kernel
	st   *store.Store
	rec  *trace.Recorder
	opts Options

	ops  chan func()
	quit chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[*srvConn]struct{}
	closed    bool
	nextConn  uint64

	accepted  atomic.Uint64
	evicted   atomic.Uint64
	events    atomic.Uint64
	coalesced atomic.Uint64

	subMu sync.Mutex
	subs  map[chan []byte]struct{}
}

// NewServer builds a server around a fresh store. The store lives on a
// private simulation kernel with zero notification latency: virtual time
// only orders deliveries; the wire provides the real latency. A non-empty
// Options.Faults spec must parse, or NewServer panics: a store silently
// running without its requested faults would invalidate any soak result.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	k := sim.NewKernel()
	st := store.New(k, 0)
	rec := trace.NewRecorder(k, opts.TraceCapacity)
	st.SetRecorder(rec)
	if opts.Faults != "" {
		spec, err := fault.ParseSpec(opts.Faults)
		if err != nil {
			panic(fmt.Sprintf("netstore: bad fault spec: %v", err))
		}
		seed := opts.FaultSeed
		if seed == 0 {
			seed = 1
		}
		inj := fault.NewInjector(k, spec, stats.NewStream(seed, "netstore/faults"))
		inj.SetRecorder(rec)
		if hooks := inj.StoreHooks(); hooks != nil {
			st.SetFaultHooks(hooks)
		}
	}
	s := &Server{
		k:     k,
		st:    st,
		rec:   rec,
		opts:  opts,
		ops:   make(chan func()),
		quit:  make(chan struct{}),
		conns: map[*srvConn]struct{}{},
		subs:  map[chan []byte]struct{}{},
	}
	rec.SetSink(s.broadcast)
	s.wg.Add(1)
	go s.storeLoop()
	return s
}

// Kernel exposes the server's private simulation kernel, the clock a
// fault.Injector must be built on so watchdelay draws have a timeline to
// land in. Schedule work on it only via Do.
func (s *Server) Kernel() *sim.Kernel { return s.k }

// Do runs fn on the store-loop goroutine with exclusive access to the
// store, then drains any watch deliveries it scheduled. It is how
// out-of-band wiring (fault hooks, seeding) composes with the server.
// It reports false without running fn if the server is closed.
func (s *Server) Do(fn func(st *store.Store)) bool {
	return s.do(func() { fn(s.st) })
}

func (s *Server) storeLoop() {
	defer s.wg.Done()
	for {
		select {
		case fn := <-s.ops:
			fn()
			s.k.Run()
		case <-s.quit:
			return
		}
	}
}

// do submits fn to the store loop and waits for it (plus the watch
// deliveries it triggers) to finish.
func (s *Server) do(fn func()) bool {
	done := make(chan struct{})
	select {
	case s.ops <- func() { fn(); close(done) }:
		<-done
		return true
	case <-s.quit:
		return false
	}
}

// Serve accepts connections on l until the listener or server closes.
// It blocks; run one goroutine per listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.startConn(c)
	}
}

func (s *Server) startConn(c net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.nextConn++
	sc := &srvConn{
		srv:     s,
		c:       c,
		id:      s.nextConn,
		watches: map[uint32]store.WatchID{},
		txns:    map[uint32]*store.Txn{},
	}
	sc.qcond = sync.NewCond(&sc.qmu)
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.accepted.Add(1)
	s.wg.Add(2)
	go sc.readLoop()
	go sc.writeLoop()
}

// Close stops the listeners, evicts every connection and terminates the
// store loop. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	listeners := s.listeners
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	close(s.quit)
	s.wg.Wait()
}

// Counters snapshots the wire + store accounting.
func (s *Server) Counters() Counters {
	var ctr Counters
	ctr.Accepted = s.accepted.Load()
	ctr.Evicted = s.evicted.Load()
	ctr.Events = s.events.Load()
	ctr.Coalesced = s.coalesced.Load()
	s.mu.Lock()
	ctr.Active = uint64(len(s.conns))
	s.mu.Unlock()
	s.Do(func(st *store.Store) {
		ctr.StoreReads, ctr.StoreWrites, ctr.StoreNotifies = st.Stats()
		ctr.FaultDroppedWrites, ctr.FaultDroppedNotifies, ctr.FaultDelayedNotifies = st.FaultStats()
	})
	return ctr
}

// --- Live trace streaming ---------------------------------------------------

// broadcast is the recorder sink: it runs on the store loop, so it only
// marshals and hands off; subscribers that cannot keep up lose records.
func (s *Server) broadcast(rec trace.Record) {
	s.subMu.Lock()
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		for ch := range s.subs {
			select {
			case ch <- line:
			default: // slow trace subscriber: drop, never block the store
			}
		}
	}
	s.subMu.Unlock()
}

// ServeTrace streams NDJSON trace records to every connection accepted
// on l (the iorchestra-trace live-tail endpoint). It blocks like Serve.
func (s *Server) ServeTrace(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go s.serveTraceConn(c)
	}
}

func (s *Server) serveTraceConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	ch := make(chan []byte, 1024)
	s.subMu.Lock()
	s.subs[ch] = struct{}{}
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, ch)
		s.subMu.Unlock()
	}()
	// Drain reads so a closing peer is noticed even while idle.
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				c.Close()
				return
			}
		}
	}()
	for {
		select {
		case line := <-ch:
			if s.opts.WriteTimeout > 0 {
				c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			if _, err := c.Write(line); err != nil {
				return
			}
		case <-s.quit:
			return
		}
	}
}

// --- Per-connection state ---------------------------------------------------

type eventKey struct {
	watch uint32
	path  string
}

type outFrame struct {
	payload []byte
	isEvent bool
	key     eventKey
}

type srvConn struct {
	srv *Server
	c   net.Conn
	id  uint64

	// dom is bound by the handshake and read-only afterwards.
	dom       store.DomID
	handshook bool

	// Outbound queue: writer goroutine pops from the front; reader and
	// store-loop goroutines push. qbase is the absolute index of q[0] so
	// evIdx (event key -> absolute index) survives pops.
	qmu     sync.Mutex
	qcond   *sync.Cond
	q       []outFrame
	qbase   int
	nEvents int
	evIdx   map[eventKey]int
	qclosed bool

	closeOnce sync.Once
	// dead flips when the connection is torn down (evicted or closed); it
	// makes eviction accounting idempotent — the queue-overflow evict and
	// the write error it provokes in writeLoop must count once.
	dead atomic.Bool

	// watches and txns are touched only inside store-loop closures.
	watches map[uint32]store.WatchID
	txns    map[uint32]*store.Txn
	nextTxn uint32
}

// shutdown tears the connection down; safe from any goroutine, any number
// of times.
func (c *srvConn) shutdown() {
	c.closeOnce.Do(func() {
		c.dead.Store(true)
		c.qmu.Lock()
		c.qclosed = true
		c.qcond.Broadcast()
		c.qmu.Unlock()
		c.c.Close()
	})
}

// enqueue appends a reply frame; replies are bounded by the peer's
// outstanding requests, so they bypass the notify-queue cap.
func (c *srvConn) enqueue(payload []byte) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.qclosed {
		return
	}
	c.q = append(c.q, outFrame{payload: payload})
	c.qcond.Signal()
}

// enqueueEvent appends a watch-event frame under the notify-queue bound.
// On overflow, a queued event for the same (watch, path) is replaced by
// the newer value; if nothing coalesces the connection is evicted. It
// reports whether the connection survived.
func (c *srvConn) enqueueEvent(key eventKey, payload []byte) bool {
	c.qmu.Lock()
	if c.qclosed {
		c.qmu.Unlock()
		return false
	}
	if c.nEvents >= c.srv.opts.NotifyQueue {
		if abs, ok := c.evIdx[key]; ok && abs >= c.qbase {
			c.q[abs-c.qbase].payload = payload
			c.qmu.Unlock()
			c.srv.coalesced.Add(1)
			return true
		}
		c.qmu.Unlock()
		// Called from watch delivery on the store loop, so the eviction
		// trace is recorded directly rather than via do().
		c.evict("notify queue overflow", true)
		return false
	}
	if c.evIdx == nil {
		c.evIdx = map[eventKey]int{}
	}
	c.q = append(c.q, outFrame{payload: payload, isEvent: true, key: key})
	c.evIdx[key] = c.qbase + len(c.q) - 1
	c.nEvents++
	c.qcond.Signal()
	c.qmu.Unlock()
	c.srv.events.Add(1)
	return true
}

// evict severs a connection that cannot keep up. onStoreLoop must be true
// when the caller already holds the store loop (watch delivery), where a
// do() round trip would self-deadlock.
func (c *srvConn) evict(reason string, onStoreLoop bool) {
	if !c.dead.CompareAndSwap(false, true) {
		c.shutdown()
		return
	}
	c.shutdown()
	c.srv.evicted.Add(1)
	rec := trace.Record{Kind: trace.KindWireConn, Dom: int(c.dom), Value: "evict", Path: reason}
	if onStoreLoop {
		c.srv.rec.Record(rec)
	} else {
		c.srv.do(func() { c.srv.rec.Record(rec) })
	}
}

func (c *srvConn) writeLoop() {
	defer c.srv.wg.Done()
	for {
		c.qmu.Lock()
		for len(c.q) == 0 && !c.qclosed {
			c.qcond.Wait()
		}
		if c.qclosed {
			c.qmu.Unlock()
			return
		}
		fr := c.q[0]
		c.q[0] = outFrame{}
		c.q = c.q[1:]
		c.qbase++
		if fr.isEvent {
			c.nEvents--
			if abs, ok := c.evIdx[fr.key]; ok && abs == c.qbase-1 {
				delete(c.evIdx, fr.key)
			}
		}
		c.qmu.Unlock()
		if wt := c.srv.opts.WriteTimeout; wt > 0 {
			c.c.SetWriteDeadline(time.Now().Add(wt))
		}
		if err := writeFrame(c.c, fr.payload); err != nil {
			c.evict("write stall: "+err.Error(), false)
			return
		}
	}
}

func (c *srvConn) readLoop() {
	defer c.srv.wg.Done()
	defer func() {
		c.shutdown()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		// Tear down store-side state (watches, open transactions).
		dom, hs := c.dom, c.handshook
		c.srv.do(func() {
			for _, id := range c.watches {
				c.srv.st.Unwatch(id)
			}
			c.watches = map[uint32]store.WatchID{}
			for _, txn := range c.txns {
				txn.Abort()
			}
			c.txns = map[uint32]*store.Txn{}
			if hs {
				c.srv.rec.Record(trace.Record{Kind: trace.KindWireConn, Dom: int(dom), Value: "close"})
			}
		})
	}()
	if err := c.handshake(); err != nil {
		return
	}
	for {
		payload, err := readFrame(c.c)
		if err != nil {
			return
		}
		d := &dec{b: payload}
		op := Op(d.u8())
		id := d.u32()
		if d.err != nil {
			return // unframeable garbage: drop the connection
		}
		c.handle(op, id, d)
	}
}

// reply builds a reply frame: status, message, then op-specific body.
func reply(id uint32, err error, body func(*enc)) []byte {
	e := &enc{}
	e.op(OpReply, id)
	st := statusOf(err)
	e.u8(uint8(st))
	if err != nil {
		e.str(err.Error())
	} else {
		e.str("")
	}
	if body != nil && err == nil {
		body(e)
	}
	return e.b
}

// handshake reads and answers the binding frame. Its replies go straight
// to the socket, not through the outbound queue: nothing else can be
// queued yet (requests and watches require a completed handshake), and a
// rejection must reach the peer before the connection closes.
func (c *srvConn) handshake() error {
	payload, err := readFrame(c.c)
	if err != nil {
		return err
	}
	d := &dec{b: payload}
	op := Op(d.u8())
	id := d.u32()
	magic := d.u32()
	ver := d.u8()
	dom := store.DomID(d.u32())
	token := d.str()
	refuse := func(cause error) error {
		if wt := c.srv.opts.WriteTimeout; wt > 0 {
			c.c.SetWriteDeadline(time.Now().Add(wt))
		}
		writeFrame(c.c, reply(id, cause, nil))
		return cause
	}
	if err := d.done(); err != nil || op != OpHandshake || magic != Magic {
		return refuse(fmt.Errorf("%w: malformed handshake", ErrBadRequest))
	}
	if ver != ProtocolVersion {
		return refuse(fmt.Errorf("%w: protocol version %d (want %d)", ErrBadRequest, ver, ProtocolVersion))
	}
	if dom == store.Dom0 && c.srv.opts.Dom0Token != "" && token != c.srv.opts.Dom0Token {
		return refuse(fmt.Errorf("%w: dom0 token rejected", ErrAuth))
	}
	c.dom = dom
	c.handshook = true
	var version uint64
	if !c.srv.do(func() {
		c.srv.st.AddDomain(dom)
		version = c.srv.st.Version()
		c.srv.rec.Record(trace.Record{Kind: trace.KindWireConn, Dom: int(dom), Value: "connect"})
	}) {
		return ErrClosed
	}
	if wt := c.srv.opts.WriteTimeout; wt > 0 {
		c.c.SetWriteDeadline(time.Now().Add(wt))
	}
	if err := writeFrame(c.c, reply(id, nil, func(e *enc) { e.u64(version) })); err != nil {
		return err
	}
	c.c.SetWriteDeadline(time.Time{})
	return nil
}

// handle decodes and executes one request on the store loop, then queues
// the reply. Malformed bodies produce StatusBadRequest rather than
// dropping the connection, so one bad client request stays diagnosable.
func (c *srvConn) handle(op Op, id uint32, d *dec) {
	var out []byte
	run := func(path string, fn func() (func(*enc), error)) {
		ok := c.srv.do(func() {
			c.srv.rec.Record(trace.Record{
				Kind: trace.KindWireOp, Dom: int(c.dom), Path: path, Value: op.String(),
			})
			body, err := fn()
			out = reply(id, err, body)
		})
		if !ok {
			out = reply(id, ErrClosed, nil)
		}
	}
	switch op {
	case OpPing:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		out = reply(id, nil, nil)

	case OpRead:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			v, err := c.srv.st.Read(c.dom, path)
			return func(e *enc) { e.str(v) }, err
		})

	case OpWrite:
		path := d.path()
		value := d.value()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			return nil, c.srv.st.Write(c.dom, path, value)
		})

	case OpRemove:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			return nil, c.srv.st.Remove(c.dom, path)
		})

	case OpList:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			names, err := c.srv.st.List(c.dom, path)
			return func(e *enc) {
				e.u32(uint32(len(names)))
				for _, n := range names {
					e.str(n)
				}
			}, err
		})

	case OpGrant:
		path := d.path()
		target := store.DomID(d.u32())
		perm := store.Perm(d.u8())
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			return nil, c.srv.st.Grant(c.dom, path, target, perm)
		})

	case OpExists:
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			v := uint8(0)
			if c.srv.st.Exists(path) {
				v = 1
			}
			return func(e *enc) { e.u8(v) }, nil
		})

	case OpWatch:
		cwid := d.u32()
		prefix := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(prefix, func() (func(*enc), error) {
			if _, dup := c.watches[cwid]; dup {
				return nil, fmt.Errorf("%w: watch id %d in use", ErrBadRequest, cwid)
			}
			wid, err := c.srv.st.Watch(c.dom, prefix, func(path, value string) {
				ev := &enc{}
				ev.op(OpEvent, 0)
				ev.u32(cwid)
				ev.str(path)
				ev.str(value)
				c.enqueueEvent(eventKey{watch: cwid, path: path}, ev.b)
			})
			if err == nil {
				c.watches[cwid] = wid
			}
			return nil, err
		})

	case OpUnwatch:
		cwid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run("", func() (func(*enc), error) {
			if wid, ok := c.watches[cwid]; ok {
				c.srv.st.Unwatch(wid)
				delete(c.watches, cwid)
			}
			return nil, nil
		})

	case OpTxnBegin:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run("", func() (func(*enc), error) {
			if len(c.txns) >= c.srv.opts.MaxTxns {
				return nil, fmt.Errorf("%w: %d transactions already open", ErrBadRequest, len(c.txns))
			}
			c.nextTxn++
			tid := c.nextTxn
			c.txns[tid] = c.srv.st.Begin(c.dom)
			return func(e *enc) { e.u32(tid) }, nil
		})

	case OpTxnRead:
		tid := d.u32()
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			txn, ok := c.txns[tid]
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, tid)
			}
			v, err := txn.Read(path)
			return func(e *enc) { e.str(v) }, err
		})

	case OpTxnWrite:
		tid := d.u32()
		path := d.path()
		value := d.value()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			txn, ok := c.txns[tid]
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, tid)
			}
			return nil, txn.Write(path, value)
		})

	case OpTxnRemove:
		tid := d.u32()
		path := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(path, func() (func(*enc), error) {
			txn, ok := c.txns[tid]
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, tid)
			}
			return nil, txn.Remove(path)
		})

	case OpTxnCommit:
		tid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run("", func() (func(*enc), error) {
			txn, ok := c.txns[tid]
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, tid)
			}
			delete(c.txns, tid)
			return nil, txn.Commit()
		})

	case OpTxnAbort:
		tid := d.u32()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run("", func() (func(*enc), error) {
			txn, ok := c.txns[tid]
			if !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, tid)
			}
			delete(c.txns, tid)
			txn.Abort()
			return nil, nil
		})

	case OpSnapshot:
		root := d.path()
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		run(root, func() (func(*enc), error) {
			type pair struct{ p, v string }
			var pairs []pair
			c.snapshotWalk(root, func(p, v string) {
				pairs = append(pairs, pair{p, v})
			})
			version := c.srv.st.Version()
			return func(e *enc) {
				e.u64(version)
				e.u32(uint32(len(pairs)))
				for _, kv := range pairs {
					e.str(kv.p)
					e.str(kv.v)
				}
			}, nil
		})

	case OpStats:
		if err := d.done(); err != nil {
			out = reply(id, err, nil)
			break
		}
		// Counters itself round-trips through the store loop; build the
		// reply outside run to avoid a self-deadlock.
		blob, err := json.Marshal(c.srv.Counters())
		if err != nil {
			out = reply(id, err, nil)
			break
		}
		out = reply(id, nil, func(e *enc) { e.str(string(blob)) })

	default:
		out = reply(id, fmt.Errorf("%w: opcode %d", ErrBadRequest, uint8(op)), nil)
	}
	c.enqueue(out)
}

// snapshotWalk emits every node at or below root readable by the
// connection's domain, in deterministic (sorted-children) order. Runs on
// the store loop.
func (c *srvConn) snapshotWalk(root string, emit func(path, value string)) {
	if v, err := c.srv.st.Read(c.dom, root); err == nil {
		emit(root, v)
	}
	names, err := c.srv.st.List(c.dom, root)
	if err != nil {
		return
	}
	base := root
	if base != "/" {
		base += "/"
	}
	for _, name := range names {
		c.snapshotWalk(base+name, emit)
	}
}

package netstore

import (
	"fmt"

	"iorchestra/internal/store"
)

// Batch accumulates store operations and runs them in a single round
// trip (protocol v2's OpBatch frame). The server executes sub-ops
// grouped per shard — one store-loop closure per shard touched — so a
// 32-op batch costs one syscall pair and a handful of channel hops where
// v1 cost 32 of each; this is where the hot-path throughput comes from.
//
// Against a v1 server (or a v1-negotiated connection) Run transparently
// falls back to issuing the operations sequentially, preserving the
// result contract at v1 speed, so callers never need to version-check.
//
// A Batch is not safe for concurrent use; build it, Run it, read the
// results. Failures are per-operation: Run only returns an error for
// transport or framing problems.
type Batch struct {
	c   *Client
	ops []batchReq
}

type batchReq struct {
	op     Op
	path   string
	value  string
	target store.DomID
	perm   store.Perm
}

// BatchResult is the outcome of one batched operation, in request order.
type BatchResult struct {
	// Err is the operation's error, reconstructed with the same taxonomy
	// as the unbatched call (errors.Is against store.ErrNoEntry etc.).
	Err error
	// Value is the read result (OpRead only).
	Value string
	// Names are the listed children (OpList only).
	Names []string
	// Present reports node existence (OpExists only).
	Present bool
}

// NewBatch starts an empty batch on this connection.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Read queues a read of an absolute path.
func (b *Batch) Read(path string) *Batch {
	b.ops = append(b.ops, batchReq{op: OpRead, path: path})
	return b
}

// Write queues a write of an absolute path.
func (b *Batch) Write(path, value string) *Batch {
	b.ops = append(b.ops, batchReq{op: OpWrite, path: path, value: value})
	return b
}

// Remove queues a subtree removal.
func (b *Batch) Remove(path string) *Batch {
	b.ops = append(b.ops, batchReq{op: OpRemove, path: path})
	return b
}

// List queues a child listing.
func (b *Batch) List(path string) *Batch {
	b.ops = append(b.ops, batchReq{op: OpList, path: path})
	return b
}

// Exists queues an existence probe.
func (b *Batch) Exists(path string) *Batch {
	b.ops = append(b.ops, batchReq{op: OpExists, path: path})
	return b
}

// Grant queues a permission grant.
func (b *Batch) Grant(path string, target store.DomID, perm store.Perm) *Batch {
	b.ops = append(b.ops, batchReq{op: OpGrant, path: path, target: target, perm: perm})
	return b
}

// Ping queues a no-op round-trip marker.
func (b *Batch) Ping() *Batch {
	b.ops = append(b.ops, batchReq{op: OpPing})
	return b
}

// Run executes the batch and returns one result per queued operation,
// in order. The batch is reset afterwards and may be refilled.
func (b *Batch) Run() ([]BatchResult, error) {
	ops := b.ops
	b.ops = nil
	if len(ops) == 0 {
		return nil, nil
	}
	if len(ops) > MaxBatchOps {
		return nil, fmt.Errorf("%w: batch of %d ops exceeds MaxBatchOps", ErrBadRequest, len(ops))
	}
	if b.c.proto < ProtocolV2 {
		return b.runSequential(ops)
	}
	d, err := b.c.call(OpBatch, func(e *enc) {
		e.u32(uint32(len(ops)))
		for _, op := range ops {
			e.u8(uint8(op.op))
			switch op.op {
			case OpRead, OpRemove, OpList, OpExists:
				e.str(op.path)
			case OpWrite:
				e.str(op.path)
				e.str(op.value)
			case OpGrant:
				e.str(op.path)
				e.u32(uint32(op.target))
				e.u8(uint8(op.perm))
			case OpPing:
			default:
				// Unreachable: builders only queue the ops above.
			}
		}
	})
	if err != nil {
		return nil, err
	}
	n := d.u32()
	if d.err == nil && int(n) != len(ops) {
		return nil, fmt.Errorf("%w: batch reply carries %d results for %d ops", ErrBadRequest, n, len(ops))
	}
	results := make([]BatchResult, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		st := Status(d.u8())
		msg := d.str()
		res := BatchResult{Err: errOf(st, msg)}
		if res.Err == nil {
			switch ops[i].op {
			case OpRead:
				res.Value = d.str()
			case OpList:
				m := d.u32()
				res.Names = make([]string, 0, m)
				for j := uint32(0); j < m; j++ {
					res.Names = append(res.Names, d.str())
				}
			case OpExists:
				res.Present = d.u8() == 1
			}
		}
		results = append(results, res)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return results, nil
}

// runSequential is the v1 fallback: the same operations, one frame each.
func (b *Batch) runSequential(ops []batchReq) ([]BatchResult, error) {
	results := make([]BatchResult, len(ops))
	for i, op := range ops {
		switch op.op {
		case OpRead:
			results[i].Value, results[i].Err = b.c.Read(op.path)
		case OpWrite:
			results[i].Err = b.c.Write(op.path, op.value)
		case OpRemove:
			results[i].Err = b.c.Remove(op.path)
		case OpList:
			results[i].Names, results[i].Err = b.c.List(op.path)
		case OpExists:
			results[i].Present, results[i].Err = b.c.Exists(op.path)
		case OpGrant:
			results[i].Err = b.c.Grant(op.path, op.target, op.perm)
		case OpPing:
			results[i].Err = b.c.Ping()
		}
		// A dead connection fails everything; surface it as the transport
		// error the batched path would have returned.
		if results[i].Err != nil && b.c.Err() != nil {
			return nil, results[i].Err
		}
	}
	return results, nil
}

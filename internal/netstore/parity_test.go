package netstore_test

// Wire/in-process parity: the ISSUE 5 acceptance criterion. A guest
// driven through netstore.Client against a live server must make exactly
// the Algorithm 1–3 decisions an in-process store yields on the same
// seed, and replaying a fixed-seed platform's store-write stream through
// the wire must reconstruct a byte-identical tree.

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iorchestra"
	"iorchestra/internal/guest"
	"iorchestra/internal/netstore"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
	"iorchestra/internal/workload"
)

// --- Transport abstraction ---------------------------------------------------

// pTxn is the transaction surface the scripted guest publishes weights
// through (Algorithm 3's atomic weight update).
type pTxn interface {
	Write(path, value string) error
	Commit() error
}

// pConn is the store surface both scripted actors run on; the in-process
// store and the netstore client each satisfy it.
type pConn interface {
	Write(path, value string) error
	Read(path string) (string, error)
	Watch(prefix string, fn func(path, value string)) (store.WatchID, error)
	beginTxn() (pTxn, error)
}

type localConn struct {
	st  *store.Store
	dom store.DomID
}

func (l localConn) Write(p, v string) error       { return l.st.Write(l.dom, p, v) }
func (l localConn) Read(p string) (string, error) { return l.st.Read(l.dom, p) }
func (l localConn) Watch(prefix string, fn func(path, value string)) (store.WatchID, error) {
	return l.st.Watch(l.dom, prefix, fn)
}
func (l localConn) beginTxn() (pTxn, error) { return l.st.Begin(l.dom), nil }

type wireConn struct{ c *netstore.Client }

func (w wireConn) Write(p, v string) error       { return w.c.Write(p, v) }
func (w wireConn) Read(p string) (string, error) { return w.c.Read(p) }
func (w wireConn) Watch(prefix string, fn func(path, value string)) (store.WatchID, error) {
	return w.c.Watch(prefix, fn)
}
func (w wireConn) beginTxn() (pTxn, error) { return w.c.Begin() }

// plog is the shared decision log both actors append to. Each actor logs
// its decision before issuing the writes that trigger the other side, so
// the combined order is identical whether delivery is an inline sim-step
// cascade or two socket round trips.
type plog struct {
	mu    sync.Mutex
	lines []string
}

func (l *plog) add(format string, args ...any) {
	l.mu.Lock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *plog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// --- Scripted actors ---------------------------------------------------------

const (
	parityGuestDom = store.DomID(3)
	parityRounds   = 30
	paritySeed     = 1315
)

// parityKeys is everything the exchange touches; the guest pre-creates
// all of them (guest-owned) so the manager's writes stay readable — the
// same registration discipline core.Driver documents.
var parityKeys = []string{
	"alg1/nr_dirty", "alg1/flush_now",
	"alg2/congest_query", "alg2/verdict", "alg2/release",
	"alg3/weight/0", "alg3/weight/1", "alg3/total_weight",
	"alg3/target/0", "alg3/target/1", "alg3/targets_ready",
}

// parityGuest is the scripted guest-side driver: it publishes seeded
// dirty-page counts (Algorithm 1), raises congestion queries (Algorithm
// 2) and transactionally publishes I/O weights (Algorithm 3), reacting
// to the manager's verdicts exactly as they arrive on its watch.
type parityGuest struct {
	conn pConn
	base string
	rng  *stats.Stream
	log  *plog
	fail func(error)
	done func()
}

func (g *parityGuest) key(rel string) string { return g.base + "/" + rel }

func (g *parityGuest) startRound() {
	nr := g.rng.Intn(16)
	g.log.add("guest: publish nr_dirty=%d", nr)
	g.write("alg1/nr_dirty", fmt.Sprint(nr))
}

func (g *parityGuest) write(rel, v string) {
	if err := g.conn.Write(g.key(rel), v); err != nil {
		g.fail(fmt.Errorf("guest write %s: %w", rel, err))
	}
}

// onEvent dispatches the guest's watch stream. Named method: watch
// callbacks must not be anonymous store-accessing literals (watchsafety).
func (g *parityGuest) onEvent(path, value string) {
	rel := strings.TrimPrefix(path, g.base+"/")
	switch rel {
	case "alg1/flush_now":
		if value == "1" {
			g.log.add("guest: sync dirty pages")
		} else {
			g.log.add("guest: no flush needed")
		}
		if q := g.rng.Intn(16); q >= 6 {
			g.log.add("guest: congestion trigger depth=%d, query host", q)
			g.write("alg2/congest_query", "1")
		} else {
			g.log.add("guest: queue calm")
			g.publishWeights()
		}
	case "alg2/verdict":
		switch value {
		case "veto":
			g.log.add("guest: released by veto")
			g.publishWeights()
		case "confirm":
			g.log.add("guest: held (host congested)")
		}
	case "alg2/release":
		if value == "1" {
			g.log.add("guest: queue release, wake producers")
			g.publishWeights()
		}
	case "alg3/targets_ready":
		if value != "1" {
			return
		}
		t0, err0 := g.conn.Read(g.key("alg3/target/0"))
		t1, err1 := g.conn.Read(g.key("alg3/target/1"))
		if err0 != nil || err1 != nil {
			g.fail(fmt.Errorf("guest read targets: %v, %v", err0, err1))
			return
		}
		socket := 0
		if t1 > t0 {
			socket = 1
		}
		g.log.add("guest: move io process to socket %d (targets %s, %s)", socket, t0, t1)
		g.done()
	}
}

// publishWeights is Algorithm 3's guest half: an atomic (transactional)
// weight publication, total last so the manager triggers once.
func (g *parityGuest) publishWeights() {
	w0 := g.rng.Range(0.5, 2.0)
	w1 := g.rng.Range(0.5, 2.0)
	g.log.add("guest: publish weights w0=%.4f w1=%.4f", w0, w1)
	txn, err := g.conn.beginTxn()
	if err != nil {
		g.fail(fmt.Errorf("guest txn begin: %w", err))
		return
	}
	werr := txn.Write(g.key("alg3/weight/0"), fmt.Sprintf("%.4f", w0))
	if werr == nil {
		werr = txn.Write(g.key("alg3/weight/1"), fmt.Sprintf("%.4f", w1))
	}
	if werr == nil {
		werr = txn.Write(g.key("alg3/total_weight"), fmt.Sprintf("%.4f", w0+w1))
	}
	if werr == nil {
		werr = txn.Commit()
	}
	if werr != nil {
		g.fail(fmt.Errorf("guest weight txn: %w", werr))
	}
}

// parityMgr is the scripted Dom0 management module: flush verdicts from
// published dirty counts, congestion verdicts from seeded device
// pressure, and weight targets from published weights.
type parityMgr struct {
	conn pConn
	base string
	rng  *stats.Stream
	log  *plog
	fail func(error)
}

func (m *parityMgr) key(rel string) string { return m.base + "/" + rel }

func (m *parityMgr) write(rel, v string) {
	if err := m.conn.Write(m.key(rel), v); err != nil {
		m.fail(fmt.Errorf("mgr write %s: %w", rel, err))
	}
}

func (m *parityMgr) onEvent(path, value string) {
	rel := strings.TrimPrefix(path, m.base+"/")
	switch rel {
	case "alg1/nr_dirty":
		nr := 0
		fmt.Sscanf(value, "%d", &nr)
		if nr >= 8 {
			m.log.add("mgr: flush order (nr_dirty=%d, device idle)", nr)
			m.write("alg1/flush_now", "1")
		} else {
			m.log.add("mgr: flush skipped (nr_dirty=%d)", nr)
			m.write("alg1/flush_now", "0")
		}
	case "alg2/congest_query":
		if value != "1" {
			return
		}
		pending := m.rng.Intn(16)
		if pending >= 8 {
			// Log both decisions before either write so the combined
			// order is transport-independent.
			m.log.add("mgr: congestion confirmed (dev_pending=%d), hold", pending)
			m.log.add("mgr: host relieved, release FIFO")
			m.write("alg2/verdict", "confirm")
			m.write("alg2/release", "1")
		} else {
			m.log.add("mgr: congestion veto (dev_pending=%d)", pending)
			m.write("alg2/verdict", "veto")
		}
	case "alg3/total_weight":
		w0s, err0 := m.conn.Read(m.key("alg3/weight/0"))
		w1s, err1 := m.conn.Read(m.key("alg3/weight/1"))
		if err0 != nil || err1 != nil {
			m.fail(fmt.Errorf("mgr read weights: %v, %v", err0, err1))
			return
		}
		var w0, w1 float64
		fmt.Sscanf(w0s, "%f", &w0)
		fmt.Sscanf(w1s, "%f", &w1)
		t0 := w0 / (w0 + w1)
		t1 := w1 / (w0 + w1)
		m.log.add("mgr: weight targets t0=%.4f t1=%.4f", t0, t1)
		m.write("alg3/target/0", fmt.Sprintf("%.4f", t0))
		m.write("alg3/target/1", fmt.Sprintf("%.4f", t1))
		m.write("alg3/targets_ready", "1")
	}
}

// resetRound rewinds the per-round latch keys so the next round's writes
// re-fire watches cleanly; runs from the driver between rounds.
func resetRound(guest pConn, base string) error {
	for _, k := range []string{"alg2/congest_query", "alg2/release", "alg3/targets_ready"} {
		if err := guest.Write(base+"/"+k, "0"); err != nil {
			return err
		}
	}
	return nil
}

// runParityLocal drives the scripted exchange against an in-process
// store: each round's whole causal chain cascades inside kernel Run.
func runParityLocal(t *testing.T) []string {
	t.Helper()
	k := sim.NewKernel()
	st := store.New(k, 0)
	st.AddDomain(parityGuestDom)
	base := store.DomainPath(parityGuestDom)
	log := &plog{}
	var failure error
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
	}
	doneRounds := 0
	g := &parityGuest{
		conn: localConn{st, parityGuestDom}, base: base,
		rng: stats.NewStream(paritySeed, "parity/guest"), log: log,
		fail: fail, done: func() { doneRounds++ },
	}
	m := &parityMgr{
		conn: localConn{st, store.Dom0}, base: base,
		rng: stats.NewStream(paritySeed, "parity/mgr"), log: log, fail: fail,
	}
	for _, key := range parityKeys {
		if err := st.Write(parityGuestDom, base+"/"+key, ""); err != nil {
			t.Fatalf("seed %s: %v", key, err)
		}
	}
	if _, err := st.Watch(store.Dom0, base, m.onEvent); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Watch(parityGuestDom, base, g.onEvent); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < parityRounds; r++ {
		g.startRound()
		k.Run()
		if failure != nil {
			t.Fatalf("round %d: %v", r, failure)
		}
		if doneRounds != r+1 {
			t.Fatalf("round %d did not complete (done=%d)", r, doneRounds)
		}
		if err := resetRound(g.conn, base); err != nil {
			t.Fatal(err)
		}
		k.Run()
	}
	return log.snapshot()
}

// runParityWire drives the identical exchange with both actors on
// netstore clients against a live server. opts configures the server
// (sharding, protocol cap); guestVer/mgrVer pin each client's protocol
// version so mixed v1/v2 fleets can be exercised.
func runParityWire(t *testing.T, opts netstore.Options, guestVer, mgrVer uint8) []string {
	t.Helper()
	srv := netstore.NewServer(opts)
	t.Cleanup(srv.Close)
	sock := filepath.Join(t.TempDir(), "parity.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	gc, err := netstore.DialVersion("unix", sock, parityGuestDom, "", guestVer)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gc.Close() })
	mc, err := netstore.DialVersion("unix", sock, store.Dom0, "", mgrVer)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })

	base := store.DomainPath(parityGuestDom)
	log := &plog{}
	fails := make(chan error, 8)
	fail := func(err error) {
		select {
		case fails <- err:
		default:
		}
	}
	done := make(chan struct{}, 1)
	g := &parityGuest{
		conn: wireConn{gc}, base: base,
		rng: stats.NewStream(paritySeed, "parity/guest"), log: log,
		fail: fail, done: func() { done <- struct{}{} },
	}
	m := &parityMgr{
		conn: wireConn{mc}, base: base,
		rng: stats.NewStream(paritySeed, "parity/mgr"), log: log, fail: fail,
	}
	for _, key := range parityKeys {
		if err := gc.Write(base+"/"+key, ""); err != nil {
			t.Fatalf("seed %s: %v", key, err)
		}
	}
	if _, err := mc.Watch(base, m.onEvent); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Watch(base, g.onEvent); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < parityRounds; r++ {
		g.startRound()
		select {
		case <-done:
		case err := <-fails:
			t.Fatalf("round %d: %v", r, err)
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d stalled; log so far:\n%s", r, strings.Join(log.snapshot(), "\n"))
		}
		if err := resetRound(g.conn, base); err != nil {
			t.Fatal(err)
		}
	}
	return log.snapshot()
}

// TestWireDecisionParity is the Algorithm 1–3 decision-parity acceptance
// test: the combined guest+manager decision log must be line-identical
// across the in-process store and the wire — on every protocol and
// server shape the fleet can negotiate (v2, legacy v1 both sides, a
// mixed v1/v2 fleet, and a sharded server).
func TestWireDecisionParity(t *testing.T) {
	local := runParityLocal(t)
	// The run must exercise every branch, or parity proves nothing.
	joined := strings.Join(local, "\n")
	for _, want := range []string{
		"sync dirty pages", "no flush needed", // Algorithm 1 both ways
		"congestion veto", "congestion confirmed", "queue release", // Algorithm 2
		"weight targets", "move io process", // Algorithm 3
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("scenario never hit %q; decisions:\n%s", want, joined)
		}
	}
	for _, tc := range []struct {
		name             string
		opts             netstore.Options
		guestVer, mgrVer uint8
	}{
		{"v2", netstore.Options{}, netstore.ProtocolV2, netstore.ProtocolV2},
		{"v1-fleet", netstore.Options{}, netstore.ProtocolV1, netstore.ProtocolV1},
		{"mixed-fleet", netstore.Options{}, netstore.ProtocolV1, netstore.ProtocolV2},
		{"v1-capped-server", netstore.Options{MaxProtocol: netstore.ProtocolV1}, netstore.ProtocolV1, netstore.ProtocolV1},
		{"sharded", netstore.Options{Shards: 4}, netstore.ProtocolV2, netstore.ProtocolV2},
		{"sharded-mixed", netstore.Options{Shards: 4}, netstore.ProtocolV2, netstore.ProtocolV1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wire := runParityWire(t, tc.opts, tc.guestVer, tc.mgrVer)
			if len(local) != len(wire) {
				t.Fatalf("decision counts diverge: local %d, wire %d\nlocal:\n%s\nwire:\n%s",
					len(local), len(wire), strings.Join(local, "\n"), strings.Join(wire, "\n"))
			}
			for i := range local {
				if local[i] != wire[i] {
					t.Fatalf("decision %d diverges:\n  local: %s\n  wire:  %s", i, local[i], wire[i])
				}
			}
		})
	}
}

// --- Golden-replay state parity ---------------------------------------------

// platformWrites runs a small fixed-seed platform (two flush-prone VMs
// under the full IOrchestra policy set) and returns its store-write
// stream in Seq order.
func platformWrites(t *testing.T) []trace.Record {
	t.Helper()
	p := iorchestra.NewPlatform(iorchestra.SystemIOrchestra, paritySeed,
		iorchestra.WithTracing(1<<19))
	for i := 0; i < 2; i++ {
		rt := p.NewVM(1, 1, guest.DiskConfig{
			Name: "xvda",
			CacheConfig: pagecache.Config{
				TotalPages:      (1 << 30) / pagecache.PageSize,
				DirtyRatio:      0.2,
				BackgroundRatio: 0.1,
				WritebackWindow: 64,
			},
		})
		fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
			Threads: 2, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
			WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
			BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
		}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
		fs.Start()
	}
	p.RunFor(3 * iorchestra.Second)
	if d := p.Trace.Dropped(); d > 0 {
		t.Fatalf("trace ring evicted %d records", d)
	}
	var writes []trace.Record
	for _, e := range p.Trace.Events() {
		if e.Kind == trace.KindStoreWrite {
			writes = append(writes, e)
		}
	}
	if len(writes) == 0 {
		t.Fatal("platform run produced no store writes")
	}
	return writes
}

// walkLocal flattens a store subtree as Dom0 sees it.
func walkLocal(st *store.Store, root string, out map[string]string) {
	if v, err := st.Read(store.Dom0, root); err == nil {
		out[root] = v
	}
	kids, err := st.List(store.Dom0, root)
	if err != nil {
		return
	}
	for _, k := range kids {
		walkLocal(st, root+"/"+k, out)
	}
}

// TestWireStateParity replays a fixed-seed platform's store-write stream
// twice — straight into a fresh store, and through per-domain netstore
// clients against a live server — and requires identical final trees.
func TestWireStateParity(t *testing.T) {
	writes := platformWrites(t)

	// Reference replay, in-process.
	k := sim.NewKernel()
	ref := store.New(k, 0)
	for _, w := range writes {
		ref.AddDomain(store.DomID(w.Dom))
		if err := ref.Write(store.DomID(w.Dom), w.Path, w.Value); err != nil {
			t.Fatalf("reference replay seq %d (dom%d %s): %v", w.Seq, w.Dom, w.Path, err)
		}
		k.Run()
	}
	want := map[string]string{}
	walkLocal(ref, store.Root, want)

	// Wire replay: one client per writing domain.
	srv := netstore.NewServer(netstore.Options{})
	t.Cleanup(srv.Close)
	sock := filepath.Join(t.TempDir(), "replay.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	clients := map[int]*netstore.Client{}
	clientFor := func(dom int) *netstore.Client {
		if c, ok := clients[dom]; ok {
			return c
		}
		c, err := netstore.Dial("unix", sock, store.DomID(dom), "")
		if err != nil {
			t.Fatalf("dial dom%d: %v", dom, err)
		}
		t.Cleanup(func() { c.Close() })
		clients[dom] = c
		return c
	}
	for _, w := range writes {
		if err := clientFor(w.Dom).Write(w.Path, w.Value); err != nil {
			t.Fatalf("wire replay seq %d (dom%d %s): %v", w.Seq, w.Dom, w.Path, err)
		}
	}
	got, _, err := clientFor(0).Snapshot(store.Root)
	if err != nil {
		t.Fatalf("wire snapshot: %v", err)
	}

	if len(got) != len(want) {
		t.Errorf("tree sizes diverge: wire %d nodes, reference %d", len(got), len(want))
	}
	for p, wv := range want {
		if gv, ok := got[p]; !ok {
			t.Errorf("wire tree missing %s", p)
		} else if gv != wv {
			t.Errorf("value diverges at %s: wire %q, reference %q", p, gv, wv)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			t.Errorf("wire tree has extra node %s", p)
		}
	}
}

package netstore

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// startServer brings up a server on a fresh Unix socket and tears both
// down with the test.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s := NewServer(opts)
	sock := filepath.Join(t.TempDir(), "stored.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	return s, sock
}

func dialT(t *testing.T, sock string, dom store.DomID) *Client {
	t.Helper()
	c, err := Dial("unix", sock, dom, "")
	if err != nil {
		t.Fatalf("dial dom%d: %v", dom, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)

	base := store.DomainPath(3)
	if err := c.Write(base+"/virt-dev/xvda/nr", "42"); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := c.Read(base + "/virt-dev/xvda/nr")
	if err != nil || v != "42" {
		t.Fatalf("read = %q, %v; want 42", v, err)
	}
	if _, err := c.Read(base + "/missing"); !errors.Is(err, store.ErrNoEntry) {
		t.Fatalf("missing read err = %v; want ErrNoEntry", err)
	}
	names, err := c.List(base + "/virt-dev")
	if err != nil || len(names) != 1 || names[0] != "xvda" {
		t.Fatalf("list = %v, %v; want [xvda]", names, err)
	}
	ok, err := c.Exists(base + "/virt-dev/xvda")
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v; want true", ok, err)
	}
	if err := c.Remove(base + "/virt-dev/xvda"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if ok, _ := c.Exists(base + "/virt-dev/xvda"); ok {
		t.Fatal("node survives remove")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestTypedHelpers(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 4)
	base := store.DomainPath(4)

	if err := c.WriteInt(base+"/n", 7); err != nil {
		t.Fatal(err)
	}
	if n, err := c.ReadInt(base+"/n", -1); err != nil || n != 7 {
		t.Fatalf("ReadInt = %d, %v", n, err)
	}
	if n, err := c.ReadInt(base+"/absent", 5); err != nil || n != 5 {
		t.Fatalf("ReadInt default = %d, %v", n, err)
	}
	if err := c.WriteBool(base+"/b", true); err != nil {
		t.Fatal(err)
	}
	if b, err := c.ReadBool(base + "/b"); err != nil || !b {
		t.Fatalf("ReadBool = %v, %v", b, err)
	}
	if err := c.WriteFloat(base+"/f", 2.5); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFloat(base+"/f", 0); err != nil || f != 2.5 {
		t.Fatalf("ReadFloat = %g, %v", f, err)
	}
}

func TestPermissionBoundary(t *testing.T) {
	_, sock := startServer(t, Options{})
	guest := dialT(t, sock, 3)
	intruder := dialT(t, sock, 5)
	dom0 := dialT(t, sock, store.Dom0)

	secret := store.DomainPath(3) + "/secret"
	if err := guest.Write(secret, "mine"); err != nil {
		t.Fatalf("guest write: %v", err)
	}
	// Another guest can neither read nor write dom3's subtree.
	if _, err := intruder.Read(secret); !errors.Is(err, store.ErrPermission) {
		t.Fatalf("cross-domain read err = %v; want ErrPermission", err)
	}
	if err := intruder.Write(secret, "stolen"); !errors.Is(err, store.ErrPermission) {
		t.Fatalf("cross-domain write err = %v; want ErrPermission", err)
	}
	// Dom0 reads everything.
	if v, err := dom0.Read(secret); err != nil || v != "mine" {
		t.Fatalf("dom0 read = %q, %v", v, err)
	}
	// An explicit grant opens the node to the intruder.
	if err := guest.Grant(secret, 5, store.PermRead); err != nil {
		t.Fatalf("grant: %v", err)
	}
	if v, err := intruder.Read(secret); err != nil || v != "mine" {
		t.Fatalf("granted read = %q, %v", v, err)
	}
}

func TestDom0Auth(t *testing.T) {
	_, sock := startServer(t, Options{Dom0Token: "s3cret"})
	if _, err := Dial("unix", sock, store.Dom0, "wrong"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad token err = %v; want ErrAuth", err)
	}
	c, err := Dial("unix", sock, store.Dom0, "s3cret")
	if err != nil {
		t.Fatalf("good token: %v", err)
	}
	c.Close()
	// Guests are not asked for the token.
	g, err := Dial("unix", sock, 7, "")
	if err != nil {
		t.Fatalf("guest dial: %v", err)
	}
	g.Close()
}

func TestWatchDelivery(t *testing.T) {
	_, sock := startServer(t, Options{})
	watcher := dialT(t, sock, 3)
	writer := dialT(t, sock, store.Dom0)

	type ev struct{ path, value string }
	got := make(chan ev, 16)
	base := store.DomainPath(3)
	// The guest creates its key first (guest-owned, so it can read it —
	// nodes Dom0 creates under a guest subtree are invisible to the
	// guest), then registers the watch, then Dom0 flips the value.
	if err := watcher.Write(base+"/flush_now", "0"); err != nil {
		t.Fatalf("create key: %v", err)
	}
	if _, err := watcher.Watch(base, func(p, v string) { got <- ev{p, v} }); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := writer.Write(base+"/flush_now", "1"); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case e := <-got:
		if e.path != base+"/flush_now" || e.value != "1" {
			t.Fatalf("event = %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch event never arrived")
	}
	// A write the watcher cannot read must not leak through the watch.
	other := store.DomainPath(9)
	if err := writer.Write(other+"/private", "x"); err != nil {
		t.Fatalf("write other: %v", err)
	}
	// And unwatch stops the stream.
	if err := writer.Write(base+"/flush_now", "0"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.value != "0" {
			t.Fatalf("second event = %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second event never arrived")
	}
}

func TestWatchCallbackMayReenterClient(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	base := store.DomainPath(3)

	done := make(chan string, 1)
	_, err := c.Watch(base+"/ping", func(p, v string) {
		// Issuing an RPC from the dispatcher goroutine must not deadlock.
		if v == "go" {
			if err := c.Write(base+"/pong", "ok"); err != nil {
				done <- err.Error()
				return
			}
			got, err := c.Read(base + "/pong")
			if err != nil {
				done <- err.Error()
				return
			}
			done <- got
		}
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if err := c.Write(base+"/ping", "go"); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case v := <-done:
		if v != "ok" {
			t.Fatalf("callback result = %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("re-entrant callback deadlocked")
	}
}

func TestUnwatchStopsEvents(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	base := store.DomainPath(3)

	got := make(chan string, 16)
	id, err := c.Watch(base, func(p, v string) { got <- p })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(base+"/a", "1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no event before unwatch")
	}
	c.Unwatch(id)
	if err := c.Write(base+"/b", "2"); err != nil {
		t.Fatal(err)
	}
	// The write round trip has fully drained the store loop; anything the
	// watch produced would already be queued. Ping once more to flush the
	// dispatcher, then assert silence.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		t.Fatalf("event %q after unwatch", p)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTxnCommitAndConflict(t *testing.T) {
	_, sock := startServer(t, Options{})
	a := dialT(t, sock, store.Dom0)
	b := dialT(t, sock, store.Dom0)
	path := store.DomainPath(0) + "/counter"
	if err := a.Write(path, "0"); err != nil {
		t.Fatal(err)
	}

	ta, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ta.Read(path); err != nil || v != "0" {
		t.Fatalf("txn read = %q, %v", v, err)
	}
	if err := ta.Write(path, "1"); err != nil {
		t.Fatal(err)
	}
	// A conflicting write from another connection lands first.
	if err := b.Write(path, "99"); err != nil {
		t.Fatal(err)
	}
	if err := ta.Commit(); !errors.Is(err, store.ErrConflict) {
		t.Fatalf("commit err = %v; want ErrConflict", err)
	}
	// Retry succeeds.
	ta2, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta2.Read(path); err != nil {
		t.Fatal(err)
	}
	if err := ta2.Write(path, "100"); err != nil {
		t.Fatal(err)
	}
	if err := ta2.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if v, _ := a.Read(path); v != "100" {
		t.Fatalf("final value = %q", v)
	}
	// Operations on a finished transaction answer ErrUnknownTxn.
	if err := ta2.Write(path, "x"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("finished txn err = %v; want ErrUnknownTxn", err)
	}
}

func TestTxnAbortAndLimit(t *testing.T) {
	_, sock := startServer(t, Options{MaxTxns: 2})
	c := dialT(t, sock, store.Dom0)
	path := store.DomainPath(0) + "/k"

	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(path, "v"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Exists(path); ok {
		t.Fatal("aborted write applied")
	}
	t1, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Abort()
	t2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Abort()
	if _, err := c.Begin(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("txn over limit err = %v; want ErrBadRequest", err)
	}
}

func TestSnapshotBootstrap(t *testing.T) {
	_, sock := startServer(t, Options{})
	base := store.DomainPath(3)
	seed := map[string]string{
		base + "/virt-dev/xvda/nr_dirty": "10",
		base + "/virt-dev/xvda/flush":    "0",
		base + "/io/weight/0":            "1.5",
	}
	// The guest seeds its own keys (guest-owned, so the snapshot walk can
	// read them), as a real driver does at registration.
	guest := dialT(t, sock, 3)
	for p, v := range seed {
		if err := guest.Write(p, v); err != nil {
			t.Fatalf("seed %s: %v", p, err)
		}
	}
	nodes, version, err := guest.Snapshot(base)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if version == 0 {
		t.Fatal("snapshot version = 0 after writes")
	}
	for p, want := range seed {
		if got, ok := nodes[p]; !ok || got != want {
			t.Fatalf("snapshot[%s] = %q, %v; want %q", p, got, ok, want)
		}
	}
	// A fresh connection reconstructs identical state: the reconnect path.
	guest2 := dialT(t, sock, 3)
	nodes2, v2, err := guest2.Snapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	if v2 < version || len(nodes2) != len(nodes) {
		t.Fatalf("reconnect snapshot: %d nodes @v%d vs %d @v%d", len(nodes2), v2, len(nodes), version)
	}
	// Guests cannot snapshot another domain's subtree contents.
	nodes3, _, err := guest.Snapshot(store.DomainPath(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes3) != 0 {
		t.Fatalf("guest snapshot of foreign subtree leaked %d nodes", len(nodes3))
	}
}

func TestStalledClientEvicted(t *testing.T) {
	srv, sock := startServer(t, Options{NotifyQueue: 4, WriteTimeout: 300 * time.Millisecond})
	// The blaster shares dom3 so the dom3 watchers can read every node it
	// creates (Dom0-created nodes would be invisible to them).
	writer := dialT(t, sock, 3)
	base := store.DomainPath(3)

	stalled, err := DialStalled("unix", sock, 3, base)
	if err != nil {
		t.Fatalf("stalled dial: %v", err)
	}
	defer stalled.Close()

	// A live watcher on the same subtree must survive the blast.
	live := dialT(t, sock, 3)
	var liveMu sync.Mutex
	liveLast := ""
	if _, err := live.Watch(base, func(p, v string) {
		liveMu.Lock()
		liveLast = v
		liveMu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// Distinct paths with fat values: the socket buffer fills, the writer
	// stalls, the queue overflows, and nothing can coalesce.
	fat := strings.Repeat("x", 32<<10)
	for i := 0; i < 200; i++ {
		if err := writer.Write(fmt.Sprintf("%s/blast/%d", base, i), fat); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Counters().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Final sentinel write: the live client must still be streaming.
	if err := writer.Write(base+"/blast/final", "final"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		liveMu.Lock()
		last := liveLast
		liveMu.Unlock()
		if last == "final" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live client lost the stream (last %q)", last)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if live.Err() != nil {
		t.Fatalf("live client died: %v", live.Err())
	}
}

func TestConcurrentClients(t *testing.T) {
	_, sock := startServer(t, Options{})
	const clients = 8
	const opsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(dom store.DomID) {
			defer wg.Done()
			c, err := Dial("unix", sock, dom, "")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := store.DomainPath(dom)
			for j := 0; j < opsPer; j++ {
				p := fmt.Sprintf("%s/k%d", base, j%5)
				if err := c.Write(p, fmt.Sprint(j)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Read(p); err != nil {
					errs <- err
					return
				}
				if j%10 == 0 {
					txn, err := c.Begin()
					if err != nil {
						errs <- err
						return
					}
					txn.Write(p, "txn")
					if err := txn.Commit(); err != nil && !errors.Is(err, store.ErrConflict) {
						errs <- err
						return
					}
				}
			}
		}(store.DomID(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}
}

func TestWireTraceRecords(t *testing.T) {
	srv, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	if err := c.Write(store.DomainPath(3)+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	var wireOps, wireConns uint64
	srv.Do(func(st *store.Store) {
		wireOps = srv.rec.Count(trace.KindWireOp)
		wireConns = srv.rec.Count(trace.KindWireConn)
	})
	if wireOps == 0 {
		t.Error("no wire.op trace records")
	}
	if wireConns == 0 {
		t.Error("no wire.conn trace records")
	}
}

func TestStatsCounters(t *testing.T) {
	_, sock := startServer(t, Options{})
	c := dialT(t, sock, 3)
	if err := c.Write(store.DomainPath(3)+"/k", "v"); err != nil {
		t.Fatal(err)
	}
	ctr, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if ctr.Accepted == 0 || ctr.Active == 0 || ctr.StoreWrites == 0 {
		t.Fatalf("counters look empty: %+v", ctr)
	}
}

func TestProtoRoundTrip(t *testing.T) {
	e := &enc{}
	e.op(OpWrite, 7)
	e.str("/a/b")
	e.str("value")
	e.u64(123456789)
	e.u8(3)
	d := &dec{b: e.b}
	if got := Op(d.u8()); got != OpWrite {
		t.Fatalf("op = %v", got)
	}
	if got := d.u32(); got != 7 {
		t.Fatalf("id = %d", got)
	}
	if got := d.str(); got != "/a/b" {
		t.Fatalf("str = %q", got)
	}
	if got := d.str(); got != "value" {
		t.Fatalf("str = %q", got)
	}
	if got := d.u64(); got != 123456789 {
		t.Fatalf("u64 = %d", got)
	}
	if got := d.u8(); got != 3 {
		t.Fatalf("u8 = %d", got)
	}
	if err := d.done(); err != nil {
		t.Fatalf("done: %v", err)
	}
	// Truncation is an error, not a panic.
	d2 := &dec{b: e.b[:3]}
	d2.u8()
	d2.u32()
	if d2.err == nil {
		t.Fatal("truncated decode did not error")
	}
}

func TestStatusErrorMapping(t *testing.T) {
	cases := []error{
		store.ErrNoEntry, store.ErrPermission, store.ErrConflict,
		store.ErrBadPath, ErrUnknownTxn, ErrAuth, ErrBadRequest,
	}
	for _, want := range cases {
		st := statusOf(fmt.Errorf("wrapped: %w", want))
		back := errOf(st, "ctx")
		if !errors.Is(back, want) {
			t.Errorf("round trip of %v through status %d lost identity (got %v)", want, st, back)
		}
	}
	if statusOf(nil) != StatusOK || errOf(StatusOK, "") != nil {
		t.Error("nil error mapping broken")
	}
}

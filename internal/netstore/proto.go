// Package netstore puts the IOrchestra system store on the wire: a
// binary, length-prefixed request/reply protocol (over TCP or Unix
// sockets) exposing the full store.Store surface — reads, writes,
// permission grants, optimistic transactions and *streaming* watch
// notifications — so guests, tools and load generators can run
// out-of-process and off-host while Dom0 keeps the authoritative tree.
//
// The paper's collaboration channel is XenStore crossed between
// protection domains; netstore is that boundary made explicit. A
// per-connection handshake binds the socket to a store.DomID, and the
// server evaluates every operation with the existing permission model
// (internal/store), so a guest on the wire can do exactly what a guest
// in-process can do and nothing more. Each connection owns a bounded
// outbound event queue with slow-client coalescing and eviction, so one
// stalled guest cannot wedge watch fan-out for everyone else.
//
// docs/WIRE_PROTOCOL.md is the normative frame-layout and semantics
// reference. Unlike every simulation package, netstore deals in real
// sockets and real deadlines; it is exempt from the iorchestra-vet
// determinism pass (docs/LINTING.md).
package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iorchestra/internal/store"
)

// Protocol constants. A frame is a uint32 big-endian payload length
// followed by the payload; the payload starts with a one-byte opcode and
// a uint32 request id (0 for server-initiated event frames).
const (
	// Magic opens every handshake request ("IORS").
	Magic uint32 = 0x494F5253
	// ProtocolVersion is bumped on incompatible frame-layout changes.
	ProtocolVersion uint8 = 1
	// MaxFrame bounds any single frame; larger frames poison the
	// connection (snapshot replies of big trees are the sizing case).
	MaxFrame = 16 << 20
	// MaxPath bounds a store path on the wire.
	MaxPath = 4 << 10
	// MaxValue bounds a store value on the wire.
	MaxValue = 256 << 10
)

// Op is a wire opcode.
type Op uint8

// Opcodes. OpReply and OpEvent flow server→client; everything else is a
// client request.
const (
	OpHandshake Op = 1
	OpReply     Op = 2
	OpEvent     Op = 3

	OpRead   Op = 4
	OpWrite  Op = 5
	OpRemove Op = 6
	OpList   Op = 7
	OpGrant  Op = 8
	OpExists Op = 9

	OpWatch   Op = 10
	OpUnwatch Op = 11

	OpTxnBegin  Op = 12
	OpTxnRead   Op = 13
	OpTxnWrite  Op = 14
	OpTxnRemove Op = 15
	OpTxnCommit Op = 16
	OpTxnAbort  Op = 17

	OpSnapshot Op = 18
	OpStats    Op = 19
	OpPing     Op = 20
)

// String names the opcode for traces and diagnostics.
func (o Op) String() string {
	switch o {
	case OpHandshake:
		return "handshake"
	case OpReply:
		return "reply"
	case OpEvent:
		return "event"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	case OpList:
		return "list"
	case OpGrant:
		return "grant"
	case OpExists:
		return "exists"
	case OpWatch:
		return "watch"
	case OpUnwatch:
		return "unwatch"
	case OpTxnBegin:
		return "txn.begin"
	case OpTxnRead:
		return "txn.read"
	case OpTxnWrite:
		return "txn.write"
	case OpTxnRemove:
		return "txn.remove"
	case OpTxnCommit:
		return "txn.commit"
	case OpTxnAbort:
		return "txn.abort"
	case OpSnapshot:
		return "snapshot"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the result code carried in every reply.
type Status uint8

// Statuses map one-to-one onto the store's error taxonomy plus the
// wire-only failure modes.
const (
	StatusOK         Status = 0
	StatusNoEntry    Status = 1
	StatusPermission Status = 2
	StatusConflict   Status = 3
	StatusBadPath    Status = 4
	StatusBadRequest Status = 5
	StatusUnknownTxn Status = 6
	StatusAuth       Status = 7
	StatusInternal   Status = 8
)

// Wire-only errors surfaced to clients.
var (
	// ErrAuth is returned when the handshake token is rejected.
	ErrAuth = errors.New("netstore: authentication failed")
	// ErrBadRequest is returned for malformed or oversized requests.
	ErrBadRequest = errors.New("netstore: bad request")
	// ErrUnknownTxn is returned for operations on an unknown (or already
	// finished) transaction id.
	ErrUnknownTxn = errors.New("netstore: unknown transaction")
	// ErrClosed is returned by client operations after the connection is
	// gone.
	ErrClosed = errors.New("netstore: connection closed")
	// ErrTimeout is returned when a request exceeds the client's timeout.
	ErrTimeout = errors.New("netstore: request timed out")
)

// statusOf maps a store (or wire) error to its wire status.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, store.ErrNoEntry):
		return StatusNoEntry
	case errors.Is(err, store.ErrPermission):
		return StatusPermission
	case errors.Is(err, store.ErrConflict):
		return StatusConflict
	case errors.Is(err, store.ErrBadPath):
		return StatusBadPath
	case errors.Is(err, ErrUnknownTxn):
		return StatusUnknownTxn
	case errors.Is(err, ErrAuth):
		return StatusAuth
	case errors.Is(err, ErrBadRequest):
		return StatusBadRequest
	default:
		return StatusInternal
	}
}

// errOf reconstructs a client-side error from a reply status so that
// errors.Is(err, store.ErrNoEntry) and friends keep working across the
// wire; msg carries the server's rendering for diagnostics.
func errOf(st Status, msg string) error {
	base := func(b error) error {
		if msg == "" {
			return b
		}
		return fmt.Errorf("%w: %s", b, msg)
	}
	switch st {
	case StatusOK:
		return nil
	case StatusNoEntry:
		return base(store.ErrNoEntry)
	case StatusPermission:
		return base(store.ErrPermission)
	case StatusConflict:
		return base(store.ErrConflict)
	case StatusBadPath:
		return base(store.ErrBadPath)
	case StatusUnknownTxn:
		return base(ErrUnknownTxn)
	case StatusAuth:
		return base(ErrAuth)
	case StatusBadRequest:
		return base(ErrBadRequest)
	default:
		return fmt.Errorf("netstore: server error: %s", msg)
	}
}

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrBadRequest, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrBadRequest, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// enc builds a payload. The zero value is ready to use.
type enc struct{ b []byte }

func (e *enc) op(o Op, id uint32) *enc {
	e.b = append(e.b, byte(o))
	e.u32(id)
	return e
}
func (e *enc) u8(v uint8) *enc { e.b = append(e.b, v); return e }
func (e *enc) u32(v uint32) *enc {
	e.b = binary.BigEndian.AppendUint32(e.b, v)
	return e
}
func (e *enc) u64(v uint64) *enc {
	e.b = binary.BigEndian.AppendUint64(e.b, v)
	return e
}
func (e *enc) str(s string) *enc {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// dec consumes a payload; the first decode error sticks and zero values
// flow from then on, so call sites check err once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated frame", ErrBadRequest)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

// path decodes a string and applies the wire path bound.
func (d *dec) path() string {
	s := d.str()
	if d.err == nil && len(s) > MaxPath {
		d.err = fmt.Errorf("%w: path of %d bytes exceeds MaxPath", ErrBadRequest, len(s))
	}
	return s
}

// value decodes a string and applies the wire value bound.
func (d *dec) value() string {
	s := d.str()
	if d.err == nil && len(s) > MaxValue {
		d.err = fmt.Errorf("%w: value of %d bytes exceeds MaxValue", ErrBadRequest, len(s))
	}
	return s
}

// done errors unless the payload was fully consumed.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadRequest, len(d.b))
	}
	return nil
}

// Package netstore puts the IOrchestra system store on the wire: a
// binary, length-prefixed request/reply protocol (over TCP or Unix
// sockets) exposing the full store.Store surface — reads, writes,
// permission grants, optimistic transactions and *streaming* watch
// notifications — so guests, tools and load generators can run
// out-of-process and off-host while Dom0 keeps the authoritative tree.
//
// The paper's collaboration channel is XenStore crossed between
// protection domains; netstore is that boundary made explicit. A
// per-connection handshake binds the socket to a store.DomID, and the
// server evaluates every operation with the existing permission model
// (internal/store), so a guest on the wire can do exactly what a guest
// in-process can do and nothing more.
//
// # Protocol generations
//
// The handshake negotiates a protocol version downward (ProtocolV1 or
// ProtocolV2), so either end may be old. V2 adds two frame kinds on top
// of the unchanged per-op layouts: OpBatch carries up to MaxBatchOps
// sub-ops and their replies in one round trip (the Batch builder falls
// back to sequential per-op frames on a v1 connection, so callers never
// branch on version), and OpSync resynchronizes a subtree from a
// hash-versioned snapshot — a reconnecting Mirror presents its last
// (version, content hash) and receives "match" (one small frame), a
// delta since that version, or a full snapshot, in that order of
// preference.
//
// # Sharding
//
// The server may run the store as N single-goroutine shard loops
// (Options.Shards) behind store.Router: per-domain /local/domain/<id>
// subtrees hash to a deterministic shard, structural paths live on
// shard 0, and cross-shard transactions are refused rather than locked.
// One connection goroutine dispatches to shards; a batch frame is split
// per shard and its replies reassembled in request order.
//
// # Watch fan-out: delta queues, coalescing, eviction
//
// Each connection owns a bounded outbound event queue (Options.
// NotifyQueue) holding the *net change per path*, not history: when an
// event for a (watch, path) pair is already queued, the new value
// replaces it in place (Counters.Coalesced) instead of consuming a
// slot. Consequently the queue grows only with the client's
// distinct-path backlog, and eviction — disconnecting the client, who
// recovers via OpSync — happens only when a stalled client's distinct
// watched paths exceed the queue bound. The invariants: an evicted
// client has missed nothing it could not recover by sync; a live client
// observes, for every path, the latest value and a value no older than
// any later-queued path's (queue order is first-enqueue order); and one
// stalled guest can never wedge fan-out for everyone else, because
// enqueueing never blocks on a slow socket. Writes out of a connection
// are flushed with syscall coalescing: queued reply and event frames
// are merged into one pooled buffer per writeLoop wakeup.
//
// docs/WIRE_PROTOCOL.md is the normative frame-layout and semantics
// reference; docs/PERFORMANCE.md tracks the measured cost of all of
// the above. Unlike every simulation package, netstore deals in real
// sockets and real deadlines; it is exempt from the iorchestra-vet
// determinism pass (docs/LINTING.md).
package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"iorchestra/internal/store"
)

// Protocol constants. A frame is a uint32 big-endian payload length
// followed by the payload; the payload starts with a one-byte opcode and
// a uint32 request id (0 for server-initiated event frames).
const (
	// Magic opens every handshake request ("IORS").
	Magic uint32 = 0x494F5253
	// ProtocolV1 is the original protocol: one op per frame, no sync.
	ProtocolV1 uint8 = 1
	// ProtocolV2 adds batched frames (OpBatch) and hash-versioned
	// subtree sync (OpSync). The per-op frame layouts are unchanged.
	ProtocolV2 uint8 = 2
	// ProtocolVersion is the newest protocol this package speaks. The
	// handshake negotiates downward (docs/WIRE_PROTOCOL.md §2), so a v1
	// peer on either end of the socket keeps working.
	ProtocolVersion = ProtocolV2
	// MaxFrame bounds any single frame; larger frames poison the
	// connection (snapshot replies of big trees are the sizing case).
	MaxFrame = 16 << 20
	// MaxPath bounds a store path on the wire.
	MaxPath = 4 << 10
	// MaxValue bounds a store value on the wire.
	MaxValue = 256 << 10
	// MaxBatchOps bounds the sub-ops a single OpBatch frame may carry.
	MaxBatchOps = 4096
)

// Op is a wire opcode.
type Op uint8

// Opcodes. OpReply and OpEvent flow server→client; everything else is a
// client request.
const (
	OpHandshake Op = 1
	OpReply     Op = 2
	OpEvent     Op = 3

	OpRead   Op = 4
	OpWrite  Op = 5
	OpRemove Op = 6
	OpList   Op = 7
	OpGrant  Op = 8
	OpExists Op = 9

	OpWatch   Op = 10
	OpUnwatch Op = 11

	OpTxnBegin  Op = 12
	OpTxnRead   Op = 13
	OpTxnWrite  Op = 14
	OpTxnRemove Op = 15
	OpTxnCommit Op = 16
	OpTxnAbort  Op = 17

	OpSnapshot Op = 18
	OpStats    Op = 19
	OpPing     Op = 20

	// Protocol v2 opcodes: a v1 connection answers both with
	// StatusBadRequest without poisoning the connection.
	OpBatch Op = 21
	OpSync  Op = 22
)

// String names the opcode for traces and diagnostics.
func (o Op) String() string {
	switch o {
	case OpHandshake:
		return "handshake"
	case OpReply:
		return "reply"
	case OpEvent:
		return "event"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	case OpList:
		return "list"
	case OpGrant:
		return "grant"
	case OpExists:
		return "exists"
	case OpWatch:
		return "watch"
	case OpUnwatch:
		return "unwatch"
	case OpTxnBegin:
		return "txn.begin"
	case OpTxnRead:
		return "txn.read"
	case OpTxnWrite:
		return "txn.write"
	case OpTxnRemove:
		return "txn.remove"
	case OpTxnCommit:
		return "txn.commit"
	case OpTxnAbort:
		return "txn.abort"
	case OpSnapshot:
		return "snapshot"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpBatch:
		return "batch"
	case OpSync:
		return "sync"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Sync reply modes (OpSync, protocol v2): how the server answered a
// subtree catch-up request, cheapest first.
const (
	// SyncMatch: the client's hash matches the subtree; nothing sent.
	SyncMatch uint8 = 0
	// SyncDelta: the mutation journal covered the client's version; the
	// reply carries exactly the paths that moved (with removal markers).
	SyncDelta uint8 = 1
	// SyncFull: the client predates the journal window; the reply is a
	// full permission-filtered subtree walk.
	SyncFull uint8 = 2
)

// Status is the result code carried in every reply.
type Status uint8

// Statuses map one-to-one onto the store's error taxonomy plus the
// wire-only failure modes.
const (
	StatusOK         Status = 0
	StatusNoEntry    Status = 1
	StatusPermission Status = 2
	StatusConflict   Status = 3
	StatusBadPath    Status = 4
	StatusBadRequest Status = 5
	StatusUnknownTxn Status = 6
	StatusAuth       Status = 7
	StatusInternal   Status = 8
)

// Wire-only errors surfaced to clients.
var (
	// ErrAuth is returned when the handshake token is rejected.
	ErrAuth = errors.New("netstore: authentication failed")
	// ErrBadRequest is returned for malformed or oversized requests.
	ErrBadRequest = errors.New("netstore: bad request")
	// ErrUnknownTxn is returned for operations on an unknown (or already
	// finished) transaction id.
	ErrUnknownTxn = errors.New("netstore: unknown transaction")
	// ErrClosed is returned by client operations after the connection is
	// gone.
	ErrClosed = errors.New("netstore: connection closed")
	// ErrTimeout is returned when a request exceeds the client's timeout.
	ErrTimeout = errors.New("netstore: request timed out")
)

// statusOf maps a store (or wire) error to its wire status.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, store.ErrNoEntry):
		return StatusNoEntry
	case errors.Is(err, store.ErrPermission):
		return StatusPermission
	case errors.Is(err, store.ErrConflict):
		return StatusConflict
	case errors.Is(err, store.ErrBadPath):
		return StatusBadPath
	case errors.Is(err, ErrUnknownTxn):
		return StatusUnknownTxn
	case errors.Is(err, ErrAuth):
		return StatusAuth
	case errors.Is(err, ErrBadRequest):
		return StatusBadRequest
	default:
		return StatusInternal
	}
}

// errOf reconstructs a client-side error from a reply status so that
// errors.Is(err, store.ErrNoEntry) and friends keep working across the
// wire; msg carries the server's rendering for diagnostics.
func errOf(st Status, msg string) error {
	base := func(b error) error {
		if msg == "" {
			return b
		}
		return fmt.Errorf("%w: %s", b, msg)
	}
	switch st {
	case StatusOK:
		return nil
	case StatusNoEntry:
		return base(store.ErrNoEntry)
	case StatusPermission:
		return base(store.ErrPermission)
	case StatusConflict:
		return base(store.ErrConflict)
	case StatusBadPath:
		return base(store.ErrBadPath)
	case StatusUnknownTxn:
		return base(ErrUnknownTxn)
	case StatusAuth:
		return base(ErrAuth)
	case StatusBadRequest:
		return base(ErrBadRequest)
	default:
		return fmt.Errorf("netstore: server error: %s", msg)
	}
}

// bufPool recycles frame and payload scratch buffers across requests.
// Oversized buffers (large snapshots) are dropped on return rather than
// pinned in the pool.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const poolMax = 64 << 10

// Cold error constructors for the //hotpath frame codecs below: fmt
// formatting reflects and allocates, so the bound checks pay for their
// (rare) errors out of line. The hotpathalloc vet pass enforces the
// split (docs/LINTING.md).
func errFrameSize(n int) error {
	return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrBadRequest, n)
}

func errPathSize(n int) error {
	return fmt.Errorf("%w: path of %d bytes exceeds MaxPath", ErrBadRequest, n)
}

func errValueSize(n int) error {
	return fmt.Errorf("%w: value of %d bytes exceeds MaxValue", ErrBadRequest, n)
}

// getBuf returns a zero-length pooled buffer with capacity ≥ n.
//
// hotpath
func getBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) < n {
		bufPool.Put(bp)
		b = make([]byte, 0, n)
	}
	return b
}

// putBuf returns a buffer obtained from getBuf (or any payload the
// caller has finished with) to the pool.
//
// hotpath
func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > poolMax {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// writeFrame sends one length-prefixed payload. Header and payload are
// combined into one pooled buffer so each frame costs a single Write —
// on the hot path that halves the syscalls per round trip.
//
// hotpath
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return errFrameSize(len(payload))
	}
	buf := getBuf(4 + len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	putBuf(buf)
	return err
}

// readFrame reads one length-prefixed payload into a fresh buffer. Use
// readFrameReuse on per-connection read loops where the payload is fully
// consumed before the next read.
//
// hotpath
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errFrameSize(int(n))
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// readFrameReuse reads one length-prefixed payload into buf, growing it
// as needed, and returns the payload slice (aliasing buf) plus the
// possibly grown buffer for the next call. The payload is only valid
// until the next read — callers must finish decoding (dec copies string
// bytes out) before reading again.
//
// hotpath
func readFrameReuse(r io.Reader, buf []byte) (payload, next []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, errFrameSize(int(n))
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, buf, err
	}
	return payload, buf, nil
}

// enc builds a payload. The zero value is ready to use.
type enc struct{ b []byte }

// hotpath
func (e *enc) op(o Op, id uint32) *enc {
	e.b = append(e.b, byte(o))
	e.u32(id)
	return e
}

// hotpath
func (e *enc) u8(v uint8) *enc { e.b = append(e.b, v); return e }

// hotpath
func (e *enc) u32(v uint32) *enc {
	e.b = binary.BigEndian.AppendUint32(e.b, v)
	return e
}

// hotpath
func (e *enc) u64(v uint64) *enc {
	e.b = binary.BigEndian.AppendUint64(e.b, v)
	return e
}

// hotpath
func (e *enc) str(s string) *enc {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// dec consumes a payload; the first decode error sticks and zero values
// flow from then on, so call sites check err once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated frame", ErrBadRequest)
	}
}

// hotpath
func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// hotpath
func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// hotpath
func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// hotpath
func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

// path decodes a string and applies the wire path bound.
//
// hotpath
func (d *dec) path() string {
	s := d.str()
	if d.err == nil && len(s) > MaxPath {
		d.err = errPathSize(len(s))
	}
	return s
}

// value decodes a string and applies the wire value bound.
//
// hotpath
func (d *dec) value() string {
	s := d.str()
	if d.err == nil && len(s) > MaxValue {
		d.err = errValueSize(len(s))
	}
	return s
}

// done errors unless the payload was fully consumed.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadRequest, len(d.b))
	}
	return nil
}

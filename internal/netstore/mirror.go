package netstore

import (
	"fmt"
	"strings"

	"iorchestra/internal/store"
)

// SyncPair is one path in a sync reply: a current value, or a removal
// marker the client must prune (including everything below the path).
type SyncPair struct {
	Path    string
	Value   string
	Removed bool
}

// SyncResult is the outcome of one OpSync round trip.
type SyncResult struct {
	// Mode is SyncMatch, SyncDelta or SyncFull.
	Mode uint8
	// Version and Hash anchor the next sync: the owning shard's store
	// version and the subtree's rolling content hash at reply time.
	Version uint64
	Hash    uint64
	// Pairs carries the delta (SyncDelta) or the full subtree (SyncFull);
	// empty for SyncMatch.
	Pairs []SyncPair
}

// SyncSubtree asks the server how a domain subtree has changed since the
// (version, hash) pair from a previous sync or bootstrap. root must be a
// /local/domain/<id> subtree root. Requires a v2 connection; v1 callers
// should use Mirror, which falls back to Snapshot.
func (c *Client) SyncSubtree(root string, sinceVersion, knownHash uint64) (SyncResult, error) {
	var res SyncResult
	if c.proto < ProtocolV2 {
		return res, fmt.Errorf("%w: sync requires protocol >= %d", ErrBadRequest, ProtocolV2)
	}
	d, err := c.call(OpSync, func(e *enc) {
		e.str(root)
		e.u64(sinceVersion)
		e.u64(knownHash)
	})
	if err != nil {
		return res, err
	}
	res.Mode = d.u8()
	res.Version = d.u64()
	res.Hash = d.u64()
	n := d.u32()
	res.Pairs = make([]SyncPair, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		p := d.str()
		removed := d.u8() == 1
		v := d.str()
		res.Pairs = append(res.Pairs, SyncPair{Path: p, Value: v, Removed: removed})
	}
	return res, d.done()
}

// Mirror is a client-side cache of one domain subtree kept current with
// cheap reconnect syncs: each Sync round trip costs nothing when the
// subtree is unchanged (hash match), a minimal delta while the server's
// mutation journal covers the mirror's age, and a full snapshot only
// beyond that window. Against a v1 server every Sync is a Snapshot —
// correct, just not cheap.
//
// A Mirror is not safe for concurrent use; drive it from one goroutine
// (watch callbacks run on the client's dispatcher goroutine, so either
// sync from there or don't mix the two).
type Mirror struct {
	c    *Client
	root string

	version uint64
	hash    uint64
	nodes   map[string]string
	synced  bool
}

// NewMirror creates an empty mirror of a domain subtree root (e.g.
// store.DomainPath(dom)). The first Sync populates it.
func (c *Client) NewMirror(root string) *Mirror {
	return &Mirror{c: c, root: root, nodes: map[string]string{}}
}

// Root reports the mirrored subtree root.
func (m *Mirror) Root() string { return m.root }

// Version reports the server version anchor from the last Sync.
func (m *Mirror) Version() uint64 { return m.version }

// Hash reports the subtree hash from the last Sync.
func (m *Mirror) Hash() uint64 { return m.hash }

// Len reports the number of mirrored nodes.
func (m *Mirror) Len() int { return len(m.nodes) }

// Get reads a mirrored node by absolute path.
func (m *Mirror) Get(path string) (string, bool) {
	v, ok := m.nodes[path]
	return v, ok
}

// Nodes returns a copy of the mirrored subtree.
func (m *Mirror) Nodes() map[string]string {
	out := make(map[string]string, len(m.nodes))
	for k, v := range m.nodes {
		out[k] = v
	}
	return out
}

// Mode constants Sync reports for observability; aliases of the wire
// modes plus the v1 fallback marker.
const (
	// MirrorSyncedSnapshot marks a v1-fallback full Snapshot refresh.
	MirrorSyncedSnapshot uint8 = 0xFF
)

// Sync brings the mirror up to date with one round trip and reports the
// mode the server chose (SyncMatch, SyncDelta, SyncFull — or
// MirrorSyncedSnapshot on the v1 fallback path).
func (m *Mirror) Sync() (uint8, error) {
	if m.c.proto < ProtocolV2 {
		nodes, version, err := m.c.Snapshot(m.root)
		if err != nil {
			return 0, err
		}
		m.nodes = nodes
		m.version = version
		m.hash = 0
		m.synced = true
		return MirrorSyncedSnapshot, nil
	}
	since, known := m.version, m.hash
	if !m.synced {
		// Fresh mirror: a since beyond any real version forces the full
		// walk (the server refuses to delta from the future), and the
		// sentinel hash avoids a spurious match against an empty cache.
		since = ^uint64(0)
		known = ^uint64(0)
	}
	res, err := m.c.SyncSubtree(m.root, since, known)
	if err != nil {
		return 0, err
	}
	switch res.Mode {
	case SyncMatch:
		// Nothing moved; keep the cache.
	case SyncDelta:
		for _, p := range res.Pairs {
			if p.Removed {
				m.prune(p.Path)
			} else {
				m.nodes[p.Path] = p.Value
			}
		}
	case SyncFull:
		m.nodes = make(map[string]string, len(res.Pairs))
		for _, p := range res.Pairs {
			m.nodes[p.Path] = p.Value
		}
	default:
		return 0, fmt.Errorf("%w: unknown sync mode %d", ErrBadRequest, res.Mode)
	}
	m.version = res.Version
	m.hash = res.Hash
	m.synced = true
	return res.Mode, nil
}

// prune removes a path and its whole subtree from the cache (removal
// markers journal only the subtree root).
func (m *Mirror) prune(path string) {
	delete(m.nodes, path)
	prefix := path + "/"
	for p := range m.nodes {
		if strings.HasPrefix(p, prefix) {
			delete(m.nodes, p)
		}
	}
}

// Bootstrap seeds the mirror from a Snapshot — useful on v2 when the
// caller already has snapshot data, and the only option on v1. After a
// bootstrap the next Sync on v2 is a delta from the snapshot version.
func (m *Mirror) Bootstrap() error {
	nodes, version, err := m.c.Snapshot(m.root)
	if err != nil {
		return err
	}
	m.nodes = nodes
	m.version = version
	m.hash = 0
	m.synced = true
	return nil
}

var _ = store.Root // keep the store import anchored for docs references

package netstore

import (
	"iorchestra/internal/bus"
	"iorchestra/internal/store"
)

// Domain adapts a Client to bus.Conn, the relative-path store surface a
// guest driver consumes, so the same driver code runs against an
// in-process bus.Domain or an iorchestra-stored server across a socket.
type Domain struct {
	c *Client
}

var _ bus.Conn = (*Domain)(nil)

// Domain returns the bus.Conn view of the client's bound domain.
func (c *Client) Domain() *Domain { return &Domain{c: c} }

// ID reports the domain id bound at handshake.
func (d *Domain) ID() store.DomID { return d.c.dom }

// Path resolves a relative key to the domain's absolute store path.
func (d *Domain) Path(rel string) string {
	if rel == "" {
		return store.DomainPath(d.c.dom)
	}
	return store.DomainPath(d.c.dom) + "/" + rel
}

// Write sets a key within the domain's own subtree.
func (d *Domain) Write(rel, value string) error { return d.c.Write(d.Path(rel), value) }

// WriteBool sets a boolean key within the domain's own subtree.
func (d *Domain) WriteBool(rel string, v bool) error { return d.c.WriteBool(d.Path(rel), v) }

// WriteInt sets an integer key within the domain's own subtree.
func (d *Domain) WriteInt(rel string, v int64) error { return d.c.WriteInt(d.Path(rel), v) }

// WriteFloat sets a float key within the domain's own subtree.
func (d *Domain) WriteFloat(rel string, v float64) error { return d.c.WriteFloat(d.Path(rel), v) }

// Read reads a key from the domain's own subtree.
func (d *Domain) Read(rel string) (string, error) { return d.c.Read(d.Path(rel)) }

// ReadBool reads a boolean key (false when absent).
func (d *Domain) ReadBool(rel string) (bool, error) { return d.c.ReadBool(d.Path(rel)) }

// ReadInt reads an integer key with a default.
func (d *Domain) ReadInt(rel string, def int64) (int64, error) {
	return d.c.ReadInt(d.Path(rel), def)
}

// ReadFloat reads a float key with a default.
func (d *Domain) ReadFloat(rel string, def float64) (float64, error) {
	return d.c.ReadFloat(d.Path(rel), def)
}

// Watch registers a callback on a relative prefix of the domain's own
// subtree; fn receives the path relative to the domain root, exactly as
// bus.Domain.Watch delivers it.
func (d *Domain) Watch(rel string, fn func(rel, value string)) (store.WatchID, error) {
	prefix := d.Path(rel)
	base := store.DomainPath(d.c.dom) + "/"
	return d.c.Watch(prefix, func(path, value string) {
		r := path
		if len(path) > len(base) && path[:len(base)] == base {
			r = path[len(base):]
		}
		fn(r, value)
	})
}

// Unwatch removes a previously registered watch.
func (d *Domain) Unwatch(id store.WatchID) { d.c.Unwatch(id) }

package netstore_test

// Concurrency soak: many clients hammering one server, with store-level
// watch faults injected, under the race detector. CI runs this with
// NETSTORE_SOAK=5s; plain `go test` keeps it short.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"iorchestra/internal/netstore"
	"iorchestra/internal/store"
)

func soakDuration() time.Duration {
	if v := os.Getenv("NETSTORE_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return 1500 * time.Millisecond
}

// TestSoakConcurrentClientsWithFaults runs 8 guest clients — a mixed
// fleet, half pinned to protocol v1 and half on v2 issuing batched
// frames — against a sharded server whose store drops 5% of
// notifications and delays 20% of the rest: the PR 2 fault grammar
// composed onto the wire path. Live clients must survive: no protocol
// errors, no evictions, and every client still answers a round trip at
// the end.
func TestSoakConcurrentClientsWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	srv := netstore.NewServer(netstore.Options{
		NotifyQueue:  256,
		WriteTimeout: time.Second,
		Shards:       2,
		Faults:       "watchdrop=0.05,watchdelay=2ms:0.2",
		FaultSeed:    paritySeed,
	})
	t.Cleanup(srv.Close)
	sock := filepath.Join(t.TempDir(), "soak.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	const nClients = 8
	const keysPerDom = 16
	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		dom := store.DomID(i + 1)
		// Mixed fleet: even domains speak v1, odd domains v2 with batches.
		ver := uint8(netstore.ProtocolV2)
		if i%2 == 0 {
			ver = netstore.ProtocolV1
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := netstore.DialVersion("unix", sock, dom, "", ver)
			if err != nil {
				errs <- fmt.Errorf("dom%d dial: %w", dom, err)
				return
			}
			defer c.Close()
			base := store.DomainPath(dom)
			for k := 0; k < keysPerDom; k++ {
				if err := c.Write(fmt.Sprintf("%s/k%d", base, k), "0"); err != nil {
					errs <- fmt.Errorf("dom%d seed: %w", dom, err)
					return
				}
			}
			var seen sync.Map
			if _, err := c.Watch(base, func(path, value string) {
				seen.Store(path, value)
			}); err != nil {
				errs <- fmt.Errorf("dom%d watch: %w", dom, err)
				return
			}
			for n := 0; time.Now().Before(deadline); n++ {
				key := fmt.Sprintf("%s/k%d", base, n%keysPerDom)
				var err error
				switch n % 6 {
				case 0, 1:
					err = c.Write(key, fmt.Sprint(n))
				case 2:
					_, err = c.Read(key)
				case 3:
					_, err = c.List(base)
				case 5:
					// Batched frame on v2 connections, sequential fallback
					// on the v1 half of the fleet — same result contract.
					res, berr := c.NewBatch().
						Write(key, fmt.Sprintf("b%d", n)).
						Read(key).
						Exists(base).
						Run()
					err = berr
					for _, r := range res {
						if err == nil && r.Err != nil {
							err = r.Err
						}
					}
				case 4:
					txn, terr := c.Begin()
					if terr != nil {
						err = terr
						break
					}
					if _, rerr := txn.Read(key); rerr != nil {
						txn.Abort()
						err = rerr
						break
					}
					if werr := txn.Write(key, fmt.Sprintf("txn%d", n)); werr != nil {
						txn.Abort()
						err = werr
						break
					}
					if cerr := txn.Commit(); cerr != nil && !errors.Is(cerr, store.ErrConflict) {
						err = cerr
					}
				}
				if err != nil {
					errs <- fmt.Errorf("dom%d op %d: %w", dom, n, err)
					return
				}
			}
			// A final round trip proves the connection survived the soak.
			if err := c.Ping(); err != nil {
				errs <- fmt.Errorf("dom%d final ping: %w", dom, err)
				return
			}
			if err := c.Err(); err != nil {
				errs <- fmt.Errorf("dom%d transport: %w", dom, err)
			}
		}()
	}

	// Dom0 observer: stats and snapshots while the guests hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := netstore.Dial("unix", sock, store.Dom0, "")
		if err != nil {
			errs <- fmt.Errorf("dom0 dial: %w", err)
			return
		}
		defer c.Close()
		for time.Now().Before(deadline) {
			if _, err := c.Stats(); err != nil {
				errs <- fmt.Errorf("dom0 stats: %w", err)
				return
			}
			if _, _, err := c.Snapshot(store.Root); err != nil {
				errs <- fmt.Errorf("dom0 snapshot: %w", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctr := srv.Counters()
	if ctr.Evicted != 0 {
		t.Errorf("soak evicted %d live clients", ctr.Evicted)
	}
	if ctr.Events == 0 {
		t.Error("soak delivered no watch events")
	}
	if ctr.FaultDroppedNotifies == 0 && ctr.FaultDelayedNotifies == 0 {
		t.Errorf("fault injection never fired: %+v", ctr)
	}
	if ctr.Batches == 0 {
		t.Error("soak issued no batched frames (v2 half of the fleet idle?)")
	}
	if ctr.Shards != 2 {
		t.Errorf("soak ran on %d shards, want 2", ctr.Shards)
	}
	t.Logf("soak counters: %+v", ctr)
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"iorchestra/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Percentile(99) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if h.CDF(10) != nil {
		t.Fatal("empty CDF != nil")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean().Milliseconds()
	if math.Abs(mean-50.5) > 2 {
		t.Fatalf("Mean = %vms, want ~50.5ms", mean)
	}
	if h.Min() > sim.Millisecond+sim.Millisecond/10 {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != 100*sim.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	p50 := h.Percentile(50).Milliseconds()
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %vms", p50)
	}
	p999 := h.Percentile(99.9).Milliseconds()
	if p999 < 90 {
		t.Fatalf("p99.9 = %vms", p999)
	}
}

func TestHistogramRelativePrecision(t *testing.T) {
	// Every recorded value must land in a bucket whose bounds are within
	// ~2*1/32 relative error of the value.
	f := func(raw uint32) bool {
		v := int64(raw)
		i := bucketIndex(v)
		lo, hi := bucketLow(i), bucketLow(i+1)
		if v < lo || v >= hi {
			return false
		}
		if v >= subBucketCount {
			width := hi - lo
			if float64(width) > float64(v)/8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatal("negative value not clamped to 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Record(sim.Time(i))
	}
	for i := 51; i <= 100; i++ {
		b.Record(sim.Time(i) * sim.Second)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 100*sim.Second {
		t.Fatalf("merged max = %v", a.Max())
	}
	if a.Min() != 1 {
		t.Fatalf("merged min = %v", a.Min())
	}
	// Merging an empty histogram changes nothing.
	before := a.Count()
	a.Merge(NewHistogram())
	if a.Count() != before {
		t.Fatal("merge of empty changed count")
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Record(sim.Time(i%997) * sim.Microsecond)
	}
	pts := h.CDF(50)
	if len(pts) == 0 || len(pts) > 50 {
		t.Fatalf("CDF has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if last := pts[len(pts)-1].Fraction; math.Abs(last-1) > 1e-9 {
		t.Fatalf("CDF does not reach 1: %v", last)
	}
}

func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Time(v))
		}
		prev := sim.Time(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 99.9, 100} {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputRate(t *testing.T) {
	var tp Throughput
	tp.Add(0, 100)
	tp.Add(2*sim.Second, 300)
	if tp.Total() != 400 {
		t.Fatalf("Total = %v", tp.Total())
	}
	if got := tp.Rate(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Rate = %v, want 200/s", got)
	}
	if got := tp.RateOver(4 * sim.Second); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RateOver = %v, want 100/s", got)
	}
}

func TestUtilizationFraction(t *testing.T) {
	var u Utilization
	u.SetBusy(0, true)
	u.SetBusy(3*sim.Second, false)
	u.SetBusy(5*sim.Second, true)
	got := u.Fraction(10 * sim.Second)
	want := (3.0 + 5.0) / 10.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Fraction = %v, want %v", got, want)
	}
	// Redundant transitions are ignored.
	u.SetBusy(10*sim.Second, true)
	if got := u.Fraction(10 * sim.Second); math.Abs(got-want) > 1e-9 {
		t.Fatalf("redundant SetBusy changed fraction: %v", got)
	}
}

func TestUtilizationReset(t *testing.T) {
	var u Utilization
	u.SetBusy(0, true)
	u.Reset(10 * sim.Second)
	got := u.Fraction(20 * sim.Second)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Fraction after reset = %v, want 1", got)
	}
}

func TestWindowRateExpiry(t *testing.T) {
	w := NewWindowRate(sim.Second, 4)
	w.Add(0, 10)
	w.Add(500*sim.Millisecond, 20)
	if got := w.Sum(900 * sim.Millisecond); got != 30 {
		t.Fatalf("Sum = %v, want 30", got)
	}
	// At t=1.2s the t=0 sample has fallen out of the 1s window.
	if got := w.Sum(1200 * sim.Millisecond); got != 20 {
		t.Fatalf("Sum = %v, want 20 after expiry", got)
	}
	if got := w.Rate(1200 * sim.Millisecond); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Rate = %v, want 20/s", got)
	}
}

func TestWindowRateGrowth(t *testing.T) {
	w := NewWindowRate(sim.Hour, 2)
	for i := 0; i < 100; i++ {
		w.Add(sim.Time(i), 1)
	}
	if got := w.Sum(100); got != 100 {
		t.Fatalf("Sum = %v after growth, want 100", got)
	}
}

func TestReservoirExactUnderCap(t *testing.T) {
	r := NewReservoir(100)
	for i := 0; i < 50; i++ {
		r.Record(float64(49 - i))
	}
	s := r.Samples()
	if len(s) != 50 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v != float64(i) {
			t.Fatal("samples not sorted or wrong")
		}
	}
	if r.Seen() != 50 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(10)
	for i := 0; i < 10000; i++ {
		r.Record(float64(i))
	}
	if len(r.Samples()) != 10 {
		t.Fatalf("reservoir grew past cap: %d", len(r.Samples()))
	}
	if r.Seen() != 10000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Millisecond)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

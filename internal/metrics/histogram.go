// Package metrics provides the measurement instruments the experiment
// harness consumes: latency recorders with exact percentiles, CDFs,
// throughput counters, and time-weighted utilization gauges — the same
// quantities the paper's figures plot (mean, standard deviation, 99.9th
// percentile, cumulative distributions, write throughput, CPU utilization).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"iorchestra/internal/sim"
)

// Histogram is a log-linear latency histogram (HdrHistogram-flavoured):
// values are bucketed with ~4 % relative precision across nanoseconds to
// hours, so tail percentiles remain accurate without storing every sample.
type Histogram struct {
	buckets []uint64 // index = log-linear bucket
	count   uint64
	sum     float64
	min     sim.Time
	max     sim.Time
}

const (
	subBucketBits  = 5 // 32 linear sub-buckets per power of two
	subBucketCount = 1 << subBucketBits
)

// bucketIndex maps a non-negative value to its log-linear bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	// Position of the highest set bit.
	exp := 63 - bits.LeadingZeros64(uint64(v))
	top := exp - subBucketBits
	sub := int(v>>uint(top)) & (subBucketCount - 1)
	return (top+1)*subBucketCount + sub
}

// bucketLow returns the smallest value mapping to bucket i; used to
// reconstruct representative values.
func bucketLow(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	top := i/subBucketCount - 1
	sub := i % subBucketCount
	return (int64(subBucketCount) + int64(sub)) << uint(top)
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: sim.Forever} }

// Record folds one latency into the histogram. Negative values are clamped
// to zero (they indicate a model bug, but must not corrupt the buckets).
func (h *Histogram) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(int64(v))
	if i >= len(h.buckets) {
		grown := make([]uint64, i+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[i]++
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the running total of recorded values. Together with Count
// it lets callers compute windowed means from two snapshots — the
// G-state controller's latency verdict uses exactly that delta.
func (h *Histogram) Sum() sim.Time { return sim.Time(h.sum) }

// Mean reports the arithmetic mean latency.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.count))
}

// Min reports the smallest recorded value (0 when empty).
func (h *Histogram) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded value.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile reports the p-th percentile (0 < p <= 100) with bucket
// midpoint interpolation.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			return sim.Time((lo + hi) / 2)
		}
	}
	return h.max
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if len(o.buckets) > len(h.buckets) {
		grown := make([]uint64, len(o.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String summarizes the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Max())
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Latency  sim.Time
	Fraction float64 // cumulative fraction <= Latency
}

// CDF returns an empirical CDF with at most maxPoints points, suitable for
// plotting Fig. 5 / Fig. 6 style curves.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{
			Latency:  sim.Time((bucketLow(i) + bucketLow(i+1)) / 2),
			Fraction: float64(cum) / float64(h.count),
		})
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		out := make([]CDFPoint, 0, maxPoints)
		stride := float64(len(pts)) / float64(maxPoints)
		for i := 0; i < maxPoints; i++ {
			out = append(out, pts[int(float64(i)*stride)])
		}
		out[len(out)-1] = pts[len(pts)-1]
		pts = out
	}
	return pts
}

// Reservoir keeps every sample exactly (bounded by cap with uniform
// reservoir sampling once full). It backs significance checks in tests
// where exact order statistics matter.
type Reservoir struct {
	samples []float64
	seen    uint64
	cap     int
	// xorshift state for reservoir eviction; determinism is preserved
	// because each Reservoir owns its state.
	rng uint64
}

// NewReservoir returns a reservoir holding at most capacity samples
// (capacity <= 0 means unbounded).
func NewReservoir(capacity int) *Reservoir {
	return &Reservoir{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

func (r *Reservoir) next() uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng
}

// Record adds a sample.
func (r *Reservoir) Record(v float64) {
	r.seen++
	if r.cap <= 0 || len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Uniform replacement keeps the reservoir a uniform sample.
	j := r.next() % r.seen
	if j < uint64(r.cap) {
		r.samples[j] = v
	}
}

// Seen reports the total number of samples offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Samples returns a sorted copy of the retained samples.
func (r *Reservoir) Samples() []float64 {
	out := make([]float64, len(r.samples))
	copy(out, r.samples)
	sort.Float64s(out)
	return out
}

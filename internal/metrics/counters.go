package metrics

import (
	"iorchestra/internal/sim"
)

// Throughput accumulates bytes (or operations) over simulated time and
// reports rates. It is the instrument behind the write-throughput
// improvements in Fig. 8, Table 2 and Fig. 11.
type Throughput struct {
	total   float64
	started sim.Time
	ended   sim.Time
	haveT   bool
}

// Add accumulates amount observed at time now.
func (tp *Throughput) Add(now sim.Time, amount float64) {
	if !tp.haveT {
		tp.started = now
		tp.haveT = true
	}
	if now > tp.ended {
		tp.ended = now
	}
	tp.total += amount
}

// Total reports the accumulated amount.
func (tp *Throughput) Total() float64 { return tp.total }

// Rate reports amount per second over [start, end]; end defaults to the
// last observation when the span is zero the total is returned.
func (tp *Throughput) Rate() float64 {
	span := (tp.ended - tp.started).Seconds()
	if span <= 0 {
		return tp.total
	}
	return tp.total / span
}

// RateOver reports amount per second over an externally supplied window,
// for harnesses that run a fixed-length test.
func (tp *Throughput) RateOver(window sim.Duration) float64 {
	s := window.Seconds()
	if s <= 0 {
		return 0
	}
	return tp.total / s
}

// Utilization integrates a busy/idle signal over virtual time, reporting
// the busy fraction — the instrument behind Fig. 10(c)'s CPU utilization
// and the device-idleness checks in the flush policy.
type Utilization struct {
	busySince sim.Time
	busy      bool
	busyTotal sim.Duration
	origin    sim.Time
	last      sim.Time
}

// SetBusy transitions the signal at time now.
func (u *Utilization) SetBusy(now sim.Time, busy bool) {
	if now > u.last {
		u.last = now
	}
	if busy == u.busy {
		return
	}
	if u.busy {
		u.busyTotal += now - u.busySince
	} else {
		u.busySince = now
	}
	u.busy = busy
}

// Busy reports the current state.
func (u *Utilization) Busy() bool { return u.busy }

// Fraction reports the busy fraction over [origin, now].
func (u *Utilization) Fraction(now sim.Time) float64 {
	total := now - u.origin
	if total <= 0 {
		return 0
	}
	busy := u.busyTotal
	if u.busy && now > u.busySince {
		busy += now - u.busySince
	}
	return float64(busy) / float64(total)
}

// Reset restarts the integration window at now, preserving current state.
func (u *Utilization) Reset(now sim.Time) {
	u.origin = now
	u.busyTotal = 0
	if u.busy {
		u.busySince = now
	}
	u.last = now
}

// WindowRate measures a rate over a sliding window of fixed length by
// remembering recent (time, amount) observations. The monitoring module
// uses it for per-device bandwidth estimates ("blktrace" style).
type WindowRate struct {
	window sim.Duration
	times  []sim.Time
	amts   []float64
	head   int
	count  int
	sum    float64
}

// NewWindowRate returns a rate estimator over the trailing window.
func NewWindowRate(window sim.Duration, capacity int) *WindowRate {
	if capacity <= 0 {
		capacity = 1024
	}
	return &WindowRate{
		window: window,
		times:  make([]sim.Time, capacity),
		amts:   make([]float64, capacity),
	}
}

// Add records amount at time now.
func (w *WindowRate) Add(now sim.Time, amount float64) {
	w.expire(now)
	if w.count == len(w.times) {
		// Grow in place preserving order.
		n := len(w.times)
		times := make([]sim.Time, 2*n)
		amts := make([]float64, 2*n)
		for i := 0; i < w.count; i++ {
			j := (w.head + i) % n
			times[i] = w.times[j]
			amts[i] = w.amts[j]
		}
		w.times, w.amts, w.head = times, amts, 0
	}
	tail := (w.head + w.count) % len(w.times)
	w.times[tail] = now
	w.amts[tail] = amount
	w.count++
	w.sum += amount
}

func (w *WindowRate) expire(now sim.Time) {
	cutoff := now - w.window
	for w.count > 0 && w.times[w.head] < cutoff {
		w.sum -= w.amts[w.head]
		w.head = (w.head + 1) % len(w.times)
		w.count--
	}
}

// Rate reports amount per second over the trailing window as of now.
func (w *WindowRate) Rate(now sim.Time) float64 {
	w.expire(now)
	s := w.window.Seconds()
	if s <= 0 {
		return 0
	}
	return w.sum / s
}

// Sum reports the raw amount within the window as of now.
func (w *WindowRate) Sum(now sim.Time) float64 {
	w.expire(now)
	return w.sum
}

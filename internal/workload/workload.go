// Package workload implements the load generators of the paper's
// evaluation: closed-loop clients (CloudStone/Faban style), open-loop
// fixed-rate and bursty generators (Sec. 5.6), the YCSB core-workload op
// mixes, the FileBench personalities (file server, web server, video
// server, multi-stream read), the mpiBLAST scan pattern, and a
// CPU-intensive Cloud9 stand-in.
package workload

import (
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// Operation is an asynchronous unit of work driven by a generator: it
// must call done exactly once when the operation completes.
type Operation func(done func())

// Recorder accumulates per-operation results for one generator.
type Recorder struct {
	Latency   *metrics.Histogram
	started   uint64
	completed uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{Latency: metrics.NewHistogram()} }

// Started and Completed report operation counts.
func (r *Recorder) Started() uint64 { return r.started }

// Completed reports finished operations.
func (r *Recorder) Completed() uint64 { return r.completed }

// ClosedLoop models N concurrent clients, each repeatedly issuing an
// operation and thinking before the next — the Faban/CloudStone user
// emulation driving Olio in Sec. 5.1.
type ClosedLoop struct {
	k   *sim.Kernel
	rng *stats.Stream
	op  Operation
	rec *Recorder

	// ThinkMean is the mean exponential think time (0 = back-to-back).
	ThinkMean sim.Duration

	clients int
	stopped bool
}

// NewClosedLoop builds a generator with n clients around op.
func NewClosedLoop(k *sim.Kernel, n int, thinkMean sim.Duration, op Operation, rng *stats.Stream) *ClosedLoop {
	return &ClosedLoop{k: k, rng: rng, op: op, rec: NewRecorder(), ThinkMean: thinkMean, clients: n}
}

// Recorder exposes results.
func (c *ClosedLoop) Recorder() *Recorder { return c.rec }

// Start launches all clients, desynchronized over one think time so the
// population does not arrive as a single wave.
func (c *ClosedLoop) Start() {
	for i := 0; i < c.clients; i++ {
		if c.ThinkMean > 0 {
			c.k.After(sim.Duration(c.rng.Int63n(int64(c.ThinkMean))), c.client)
		} else {
			c.client()
		}
	}
}

// Stop halts issuing after in-flight operations complete.
func (c *ClosedLoop) Stop() { c.stopped = true }

func (c *ClosedLoop) client() {
	if c.stopped {
		return
	}
	start := c.k.Now()
	c.rec.started++
	c.op(func() {
		c.rec.completed++
		c.rec.Latency.Record(c.k.Now() - start)
		think := sim.Duration(0)
		if c.ThinkMean > 0 {
			think = sim.DurationOf(c.rng.Exponential(1 / c.ThinkMean.Seconds()))
		}
		c.k.After(think, c.client)
	})
}

// OpenLoop issues operations at a fixed average rate with exponential
// inter-arrival times, regardless of completion — the requests-per-second
// axis of Fig. 4.
type OpenLoop struct {
	k   *sim.Kernel
	rng *stats.Stream
	op  Operation
	rec *Recorder

	rate    float64 // ops per second
	limit   uint64  // stop after this many issues (0 = until Stop)
	stopped bool
}

// NewOpenLoop builds a generator issuing op at rate/sec.
func NewOpenLoop(k *sim.Kernel, rate float64, limit uint64, op Operation, rng *stats.Stream) *OpenLoop {
	return &OpenLoop{k: k, rng: rng, op: op, rec: NewRecorder(), rate: rate, limit: limit}
}

// Recorder exposes results.
func (o *OpenLoop) Recorder() *Recorder { return o.rec }

// Start begins issuing.
func (o *OpenLoop) Start() { o.next() }

// Stop halts further issues.
func (o *OpenLoop) Stop() { o.stopped = true }

func (o *OpenLoop) next() {
	if o.stopped || (o.limit > 0 && o.rec.started >= o.limit) {
		return
	}
	gap := sim.DurationOf(o.rng.Exponential(o.rate))
	o.k.After(gap, func() {
		if o.stopped || (o.limit > 0 && o.rec.started >= o.limit) {
			return
		}
		start := o.k.Now()
		o.rec.started++
		o.op(func() {
			o.rec.completed++
			o.rec.Latency.Record(o.k.Now() - start)
		})
		o.next()
	})
}

// Bursty issues operations with skewed inter-arrival times: synchronized
// burst periods at up to 10× the average rate, following the methodology
// of Sec. 5.6 (Banga & Druschel / Kapoor et al.). The number of requests
// in a burst is controlled so different systems see identical load.
type Bursty struct {
	k   *sim.Kernel
	rng *stats.Stream
	op  Operation
	rec *Recorder

	avgRate     float64
	burstFactor float64
	burstLen    sim.Duration
	period      sim.Duration // one burst per period
	limit       uint64
	stopped     bool
}

// NewBursty builds a bursty generator: average avgRate ops/s overall, with
// one burst of length burstLen per period during which the instantaneous
// rate is burstFactor × avgRate (capped at 10× per the paper); the
// remainder of the period carries the residual rate.
func NewBursty(k *sim.Kernel, avgRate float64, burstLen, period sim.Duration,
	limit uint64, op Operation, rng *stats.Stream) *Bursty {
	return &Bursty{
		k: k, rng: rng, op: op, rec: NewRecorder(),
		avgRate: avgRate, burstFactor: 10, burstLen: burstLen, period: period, limit: limit,
	}
}

// Recorder exposes results.
func (b *Bursty) Recorder() *Recorder { return b.rec }

// Start launches the burst cycle.
func (b *Bursty) Start() { b.cycle() }

// Stop halts further issues.
func (b *Bursty) Stop() { b.stopped = true }

// cycle plays one period: a burst phase then a quiet phase.
func (b *Bursty) cycle() {
	if b.stopped || (b.limit > 0 && b.rec.started >= b.limit) {
		return
	}
	burstRate := b.avgRate * b.burstFactor
	// Requests in the burst: burstRate × burstLen.
	burstN := uint64(burstRate * b.burstLen.Seconds())
	if burstN == 0 {
		burstN = 1
	}
	// Residual requests spread over the rest of the period.
	totalN := uint64(b.avgRate * b.period.Seconds())
	var quietN uint64
	if totalN > burstN {
		quietN = totalN - burstN
	}
	quietLen := b.period - b.burstLen
	b.phase(burstN, b.burstLen, func() {
		b.phase(quietN, quietLen, b.cycle)
	})
}

// phase issues n requests uniformly over d, then calls next.
func (b *Bursty) phase(n uint64, d sim.Duration, next func()) {
	if b.stopped {
		return
	}
	for i := uint64(0); i < n; i++ {
		if b.limit > 0 && b.rec.started >= b.limit {
			break
		}
		at := sim.Duration(b.rng.Int63n(int64(d) + 1))
		b.rec.started++
		b.k.After(at, func() {
			start := b.k.Now()
			b.op(func() {
				b.rec.completed++
				b.rec.Latency.Record(b.k.Now() - start)
			})
		})
	}
	b.k.After(d, next)
}

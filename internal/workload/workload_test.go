package workload

import (
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// testGuest builds a guest with one disk over a fast fake device.
func testGuest(k *sim.Kernel, vcpus int, delay sim.Duration) (*guest.Guest, *guest.VDisk) {
	g := guest.New(k, guest.Config{ID: 1, VCPUs: vcpus, MemBytes: 4 << 30}, stats.NewStream(1, "g"))
	d := g.AddDisk(guest.DiskConfig{}, blkio.LowerFunc(func(r *device.Request) {
		k.After(delay, r.Done)
	}))
	return g, d
}

func TestClosedLoopKeepsNInFlight(t *testing.T) {
	k := sim.NewKernel()
	inFlight, maxInFlight := 0, 0
	op := func(done func()) {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		k.After(sim.Millisecond, func() { inFlight--; done() })
	}
	gen := NewClosedLoop(k, 5, 0, op, stats.NewStream(2, "cl"))
	gen.Start()
	k.At(50*sim.Millisecond, gen.Stop)
	k.RunUntil(60 * sim.Millisecond)
	if maxInFlight != 5 {
		t.Fatalf("maxInFlight = %d, want 5", maxInFlight)
	}
	if gen.Recorder().Completed() < 200 {
		t.Fatalf("completed = %d, want ~250", gen.Recorder().Completed())
	}
	if gen.Recorder().Latency.Count() == 0 {
		t.Fatal("no latency recorded")
	}
}

func TestClosedLoopThinkTimeSlowsRate(t *testing.T) {
	k := sim.NewKernel()
	op := func(done func()) { k.After(sim.Microsecond, done) }
	gen := NewClosedLoop(k, 1, 10*sim.Millisecond, op, stats.NewStream(3, "cl"))
	gen.Start()
	k.At(sim.Second, gen.Stop)
	k.RunUntil(1100 * sim.Millisecond)
	// ~1s / 10ms think ≈ 100 ops.
	got := gen.Recorder().Completed()
	if got < 50 || got > 200 {
		t.Fatalf("completed = %d, want ~100", got)
	}
}

func TestOpenLoopRateAndLimit(t *testing.T) {
	k := sim.NewKernel()
	op := func(done func()) { k.After(sim.Microsecond, done) }
	gen := NewOpenLoop(k, 1000, 500, op, stats.NewStream(4, "ol"))
	gen.Start()
	k.Run()
	if gen.Recorder().Started() != 500 {
		t.Fatalf("started = %d, want limit 500", gen.Recorder().Started())
	}
	// 500 ops at 1000/s ≈ 0.5s elapsed.
	if k.Now() < 300*sim.Millisecond || k.Now() > 900*sim.Millisecond {
		t.Fatalf("elapsed %v, want ~0.5s", k.Now())
	}
}

func TestOpenLoopIssuesDespiteSlowOps(t *testing.T) {
	k := sim.NewKernel()
	started := 0
	op := func(done func()) { started++; k.After(sim.Hour, done) } // never completes in window
	gen := NewOpenLoop(k, 100, 0, op, stats.NewStream(5, "ol"))
	gen.Start()
	k.RunUntil(sim.Second)
	gen.Stop()
	if started < 60 || started > 150 {
		t.Fatalf("open loop issued %d in 1s at 100/s", started)
	}
}

func TestBurstyRespectsAverageAndBursts(t *testing.T) {
	k := sim.NewKernel()
	var times []sim.Time
	op := func(done func()) {
		times = append(times, k.Now())
		k.After(sim.Microsecond, done)
	}
	// 1000/s average, 50ms bursts each 500ms period.
	gen := NewBursty(k, 1000, 50*sim.Millisecond, 500*sim.Millisecond, 0, op, stats.NewStream(6, "b"))
	gen.Start()
	k.RunUntil(2 * sim.Second)
	gen.Stop()
	total := len(times)
	if total < 1400 || total > 2600 {
		t.Fatalf("issued %d in 2s at 1000/s avg", total)
	}
	// Count ops inside the first burst window vs the first quiet window.
	inBurst, inQuiet := 0, 0
	for _, tm := range times {
		switch {
		case tm < 50*sim.Millisecond:
			inBurst++
		case tm >= 50*sim.Millisecond && tm < 500*sim.Millisecond:
			inQuiet++
		}
	}
	burstRate := float64(inBurst) / 0.05
	quietRate := float64(inQuiet) / 0.45
	if burstRate < 4*quietRate {
		t.Fatalf("burst rate %v not ≫ quiet rate %v", burstRate, quietRate)
	}
}

func TestBurstyLimitControlsTotal(t *testing.T) {
	k := sim.NewKernel()
	op := func(done func()) { k.After(sim.Microsecond, done) }
	gen := NewBursty(k, 1000, 50*sim.Millisecond, 200*sim.Millisecond, 300, op, stats.NewStream(7, "b"))
	gen.Start()
	k.RunUntil(10 * sim.Second)
	if got := gen.Recorder().Started(); got != 300 {
		t.Fatalf("started = %d, want exactly 300", got)
	}
}

func TestFSPersonalityMixesReadsAndWrites(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 2, 100*sim.Microsecond)
	fs := NewFS(k, g, d, FSConfig{Threads: 2}, stats.NewStream(8, "fs"))
	fs.Start()
	k.RunUntil(2 * sim.Second)
	fs.Stop()
	if fs.Ops().Completed() < 100 {
		t.Fatalf("FS completed %d ops", fs.Ops().Completed())
	}
	if fs.WrittenBytes() == 0 {
		t.Fatal("FS wrote nothing")
	}
	if d.ReadLatency().Count() == 0 {
		t.Fatal("FS read nothing")
	}
	d.Cache.Close()
}

func TestWSMostlyReads(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 2, 100*sim.Microsecond)
	ws := NewWS(k, g, d, WSConfig{Threads: 2}, stats.NewStream(9, "ws"))
	ws.Start()
	k.RunUntil(2 * sim.Second)
	ws.Stop()
	reads := d.ReadLatency().Count()
	writes := d.WriteLatency().Count()
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	if float64(writes) > 0.2*float64(reads) {
		t.Fatalf("WS not read-mostly: %d writes vs %d reads", writes, reads)
	}
	d.Cache.Close()
}

func TestVSStreamsAndAddsVideos(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 2, 200*sim.Microsecond)
	vs := NewVS(k, g, d, VSConfig{Readers: 3, VideoSize: 8 << 20, AddInterval: 500 * sim.Millisecond},
		stats.NewStream(10, "vs"))
	vs.Start()
	k.RunUntil(2 * sim.Second)
	vs.Stop()
	if vs.Ops().Completed() < 100 {
		t.Fatalf("VS streamed %d chunks", vs.Ops().Completed())
	}
	if vs.WrittenBytes() < 8<<20 {
		t.Fatalf("VS wrote %v bytes, want at least one video", vs.WrittenBytes())
	}
	d.Cache.Close()
}

func TestMultiStreamCompletesFiles(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 4, 50*sim.Microsecond)
	ms := NewMultiStream(k, g, d, 4, 4<<20, 1<<20, stats.NewStream(11, "ms"))
	ms.Files = 2
	allDone := false
	ms.OnAllDone = func() { allDone = true }
	ms.Start()
	k.RunUntil(10 * sim.Second)
	if !allDone {
		t.Fatal("streams never finished their quota")
	}
	// 4 streams × 2 files × 4 chunks = 32 reads.
	if got := ms.Ops().Completed(); got != 32 {
		t.Fatalf("chunks = %d, want 32", got)
	}
	d.Cache.Close()
}

// memKV is an in-memory KV for generator tests.
type memKV struct {
	k           *sim.Kernel
	reads, upds int
	keys        map[int]int
}

func (m *memKV) Read(key int, done func()) {
	m.reads++
	m.keys[key]++
	m.k.After(10*sim.Microsecond, done)
}
func (m *memKV) Update(key int, done func()) {
	m.upds++
	m.keys[key]++
	m.k.After(10*sim.Microsecond, done)
}

func TestYCSBMixFractions(t *testing.T) {
	k := sim.NewKernel()
	kv := &memKV{k: k, keys: map[int]int{}}
	op := YCSBOp(YCSB2(), kv, stats.NewStream(12, "y"))
	gen := NewOpenLoop(k, 10000, 20000, op, stats.NewStream(13, "y"))
	gen.Start()
	k.Run()
	total := kv.reads + kv.upds
	frac := float64(kv.reads) / float64(total)
	if frac < 0.93 || frac > 0.97 {
		t.Fatalf("YCSB2 read fraction = %v, want ~0.95", frac)
	}
}

func TestYCSBKeysSkewed(t *testing.T) {
	k := sim.NewKernel()
	kv := &memKV{k: k, keys: map[int]int{}}
	cfg := YCSB1()
	cfg.Records = 10000
	op := YCSBOp(cfg, kv, stats.NewStream(14, "y"))
	gen := NewOpenLoop(k, 100000, 50000, op, stats.NewStream(15, "y"))
	gen.Start()
	k.Run()
	// The hottest key should be far above uniform (5 per key).
	max := 0
	for _, c := range kv.keys {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key seen %d times; zipfian skew missing", max)
	}
}

func TestCPUBoundRunsAndFinishes(t *testing.T) {
	k := sim.NewKernel()
	g, _ := testGuest(k, 2, sim.Microsecond)
	cb := NewCPUBound(k, g, stats.NewStream(16, "c9"))
	cb.TotalBursts = 50
	doneAt := sim.Time(0)
	cb.OnDone = func() { doneAt = k.Now() }
	cb.Start()
	k.RunUntil(sim.Hour)
	if doneAt == 0 {
		t.Fatal("CPUBound never finished")
	}
	if cb.Ops().Completed() != 50 {
		t.Fatalf("bursts = %d, want 50", cb.Ops().Completed())
	}
	// 50 bursts × ~10ms on 2 VCPUs ≈ 250ms.
	if doneAt < 100*sim.Millisecond || doneAt > 2*sim.Second {
		t.Fatalf("finished at %v, want ~250ms", doneAt)
	}
}

func TestBlastScanSequentialAndFinite(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 1, 100*sim.Microsecond)
	bs := NewBlastScan(k, g, d, 64<<20, stats.NewStream(17, "blast"))
	done := false
	bs.OnDone = func() { done = true }
	bs.Start()
	k.RunUntil(sim.Minute)
	if !done {
		t.Fatal("scan never finished")
	}
	if got := bs.Ops().Completed(); got != 16 { // 64MiB / 4MiB
		t.Fatalf("chunks = %d, want 16", got)
	}
	d.Cache.Close()
}

func TestBlastScanLoops(t *testing.T) {
	k := sim.NewKernel()
	g, d := testGuest(k, 1, 10*sim.Microsecond)
	bs := NewBlastScan(k, g, d, 8<<20, stats.NewStream(18, "blast"))
	bs.Loop = true
	bs.Start()
	k.RunUntil(sim.Second)
	bs.Stop()
	if bs.Ops().Completed() < 10 {
		t.Fatalf("looping scan made little progress: %d", bs.Ops().Completed())
	}
	d.Cache.Close()
}

package workload

import (
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// CPUBound is the Cloud9 stand-in: threads running long compute bursts
// with negligible I/O (an on-demand software-testing service is
// constraint-solver bound). Its role in the evaluation is CPU ballast.
type CPUBound struct {
	k       *sim.Kernel
	g       *guest.Guest
	rng     *stats.Stream
	rec     *Recorder
	stopped bool

	// BurstMean is the mean compute burst (default 10 ms).
	BurstMean sim.Duration
	// Threads defaults to the guest's VCPU count.
	Threads int
	// TotalBursts bounds the run (0 = until Stop); OnDone fires when all
	// threads finish their quota.
	TotalBursts int
	OnDone      func()

	remaining int
	active    int
}

// NewCPUBound builds the Cloud9 stand-in on guest g.
func NewCPUBound(k *sim.Kernel, g *guest.Guest, rng *stats.Stream) *CPUBound {
	return &CPUBound{
		k: k, g: g, rng: rng, rec: NewRecorder(),
		BurstMean: 10 * sim.Millisecond,
		Threads:   g.NumVCPUs(),
	}
}

// Ops exposes the recorder (one op per burst).
func (c *CPUBound) Ops() *Recorder { return c.rec }

// Start launches the compute threads.
func (c *CPUBound) Start() {
	c.remaining = c.TotalBursts
	c.active = c.Threads
	for i := 0; i < c.Threads; i++ {
		p := c.g.NewProcess(0) // zero I/O weight: pure compute
		c.worker(p)
	}
}

// Stop halts the workload.
func (c *CPUBound) Stop() { c.stopped = true }

func (c *CPUBound) worker(p *guest.Process) {
	if c.stopped || (c.TotalBursts > 0 && c.remaining <= 0) {
		c.active--
		if c.active == 0 && c.OnDone != nil {
			c.OnDone()
		}
		return
	}
	if c.TotalBursts > 0 {
		c.remaining--
	}
	start := c.k.Now()
	c.rec.started++
	d := sim.DurationOf(c.rng.Exponential(1 / c.BurstMean.Seconds()))
	p.Compute(d, func() {
		c.rec.completed++
		c.rec.Latency.Record(c.k.Now() - start)
		c.worker(p)
	})
}

// BlastScan models an mpiBLAST worker: stream a database partition
// sequentially in large chunks, with alignment compute per chunk — the
// access pattern that makes congestion control the operative policy for
// BLAST in Fig. 7.
type BlastScan struct {
	k       *sim.Kernel
	g       *guest.Guest
	d       *guest.VDisk
	rng     *stats.Stream
	rec     *Recorder
	stopped bool

	// PartitionBytes is this worker's share of the database.
	PartitionBytes int64
	// ChunkSize per read (default 4 MiB).
	ChunkSize int64
	// ComputePerByte is alignment time per byte scanned (default
	// ~0.8 ns/B ≈ 1.2 GB/s scan rate).
	ComputePerByte float64
	// Loop restarts the scan when the partition ends (for fixed-duration
	// runs); otherwise OnDone fires at the end.
	Loop   bool
	OnDone func()
}

// NewBlastScan builds a worker scanning partitionBytes of database.
func NewBlastScan(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, partitionBytes int64, rng *stats.Stream) *BlastScan {
	return &BlastScan{
		k: k, g: g, d: d, rng: rng, rec: NewRecorder(),
		PartitionBytes: partitionBytes,
		ChunkSize:      4 << 20,
		ComputePerByte: 0.8,
	}
}

// Ops exposes the recorder (one op per chunk read).
func (b *BlastScan) Ops() *Recorder { return b.rec }

// Start launches the scan.
func (b *BlastScan) Start() {
	p := b.g.NewProcess(1)
	b.step(p, 0)
}

// Stop halts the scan.
func (b *BlastScan) Stop() { b.stopped = true }

func (b *BlastScan) step(p *guest.Process, offset int64) {
	if b.stopped {
		return
	}
	if offset >= b.PartitionBytes {
		if b.Loop {
			b.step(p, 0)
		} else if b.OnDone != nil {
			b.OnDone()
		}
		return
	}
	chunk := b.ChunkSize
	if b.PartitionBytes-offset < chunk {
		chunk = b.PartitionBytes - offset
	}
	start := b.k.Now()
	b.rec.started++
	b.d.Read(p, chunk, true, func() {
		b.rec.completed++
		b.rec.Latency.Record(b.k.Now() - start)
		compute := sim.Duration(float64(chunk) * b.ComputePerByte)
		p.Compute(compute, func() { b.step(p, offset+chunk) })
	})
}

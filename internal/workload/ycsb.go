package workload

import (
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// KV is the key-value surface YCSB drives (implemented by the Cassandra
// model in internal/apps).
type KV interface {
	// Read fetches a record; done fires when the value is available.
	Read(key int, done func())
	// Update writes a record; done fires when the store acknowledges.
	Update(key int, done func())
}

// YCSBConfig describes a core workload.
type YCSBConfig struct {
	// ReadFrac is the read proportion: 0.5 for YCSB1 (workload A,
	// update-heavy), 0.95 for YCSB2 (workload B, read-mostly).
	ReadFrac float64
	// Records is the keyspace size (default 1e6).
	Records int
	// Theta is the zipfian skew (default 0.99, the YCSB standard).
	Theta float64
}

// YCSB1 is the update-heavy core workload (read:write 50:50).
func YCSB1() YCSBConfig { return YCSBConfig{ReadFrac: 0.5} }

// YCSB2 is the read-mostly core workload (read:write 95:5).
func YCSB2() YCSBConfig { return YCSBConfig{ReadFrac: 0.95} }

func (c *YCSBConfig) fillDefaults() {
	if c.Records <= 0 {
		c.Records = 1 << 20
	}
	if c.Theta <= 0 {
		c.Theta = 0.99
	}
	if c.ReadFrac <= 0 {
		c.ReadFrac = 0.5
	}
}

// YCSBOp builds an Operation closure issuing one zipfian-keyed op against
// kv per invocation; plug it into OpenLoop, ClosedLoop or Bursty.
func YCSBOp(cfg YCSBConfig, kv KV, rng *stats.Stream) Operation {
	cfg.fillDefaults()
	zipf := stats.NewZipf(rng.Fork("zipf"), cfg.Records, cfg.Theta)
	return func(done func()) {
		key := zipf.ScrambledNext()
		if rng.Float64() < cfg.ReadFrac {
			kv.Read(key, done)
		} else {
			kv.Update(key, done)
		}
	}
}

// YCSBRun couples a config, generator and recorder for convenience.
type YCSBRun struct {
	Gen interface {
		Start()
		Stop()
	}
	Rec *Recorder
}

// NewYCSBOpenLoop builds an open-loop YCSB run at rate ops/s.
func NewYCSBOpenLoop(k *sim.Kernel, cfg YCSBConfig, kv KV, rate float64, limit uint64, rng *stats.Stream) *YCSBRun {
	gen := NewOpenLoop(k, rate, limit, YCSBOp(cfg, kv, rng.Fork("op")), rng.Fork("gen"))
	return &YCSBRun{Gen: gen, Rec: gen.Recorder()}
}

// NewYCSBBursty builds a bursty YCSB run (Sec. 5.6): average rate with
// 10× synchronized bursts of burstLen per period.
func NewYCSBBursty(k *sim.Kernel, cfg YCSBConfig, kv KV, rate float64,
	burstLen, period sim.Duration, limit uint64, rng *stats.Stream) *YCSBRun {
	gen := NewBursty(k, rate, burstLen, period, limit, YCSBOp(cfg, kv, rng.Fork("op")), rng.Fork("gen"))
	return &YCSBRun{Gen: gen, Rec: gen.Recorder()}
}

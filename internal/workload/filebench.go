package workload

import (
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// Personality is a FileBench-style self-driving workload bound to one
// guest disk. Start launches its threads; Stop ends them after in-flight
// operations finish.
type Personality interface {
	Start()
	Stop()
	Ops() *Recorder
}

// fbBase carries the machinery shared by the personalities.
type fbBase struct {
	k       *sim.Kernel
	g       *guest.Guest
	d       *guest.VDisk
	rng     *stats.Stream
	rec     *Recorder
	stopped bool

	// WrittenBytes tracks application-accepted write bytes, the quantity
	// behind Fig. 8's write-throughput improvement.
	written metrics.Throughput
}

func newFbBase(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, rng *stats.Stream) fbBase {
	return fbBase{k: k, g: g, d: d, rng: rng, rec: NewRecorder()}
}

// Ops exposes the operation recorder.
func (b *fbBase) Ops() *Recorder { return b.rec }

// Stop halts the personality.
func (b *fbBase) Stop() { b.stopped = true }

// WrittenBytes reports bytes accepted from the application's writes.
func (b *fbBase) WrittenBytes() float64 { return b.written.Total() }

// FSConfig parameterizes the file-server personality: create, read,
// write, delete over a directory tree (FileBench fileserver).
type FSConfig struct {
	Threads int
	// MeanFileSize for whole-file reads/writes (default 128 KiB).
	MeanFileSize int64
	// AppendSize for log appends (default 16 KiB).
	AppendSize int64
	// ThinkTime between operations (default 100 µs of CPU).
	Think sim.Duration
	// Op mix fractions (whole-file write, log append, whole-file read;
	// the remainder is metadata/delete). Defaults 0.35/0.20/0.35.
	WriteFrac, AppendFrac, ReadFrac float64
	// BurstOn/BurstOff alternate active and quiet phases (both zero =
	// steady load). Fileserver traffic is bursty; the quiet phases are
	// where coordinated flushing finds spare bandwidth.
	BurstOn, BurstOff sim.Duration
}

// FS is the FileBench fileserver personality: a metadata- and write-heavy
// mix of small whole-file operations (create/write/read/append/delete).
type FS struct {
	fbBase
	cfg    FSConfig
	quiet  bool
	parked []*guest.Process
}

// NewFS builds a file-server personality on disk d of guest g.
func NewFS(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, cfg FSConfig, rng *stats.Stream) *FS {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.MeanFileSize <= 0 {
		cfg.MeanFileSize = 128 << 10
	}
	if cfg.AppendSize <= 0 {
		cfg.AppendSize = 16 << 10
	}
	if cfg.Think <= 0 {
		cfg.Think = 100 * sim.Microsecond
	}
	if cfg.WriteFrac <= 0 {
		cfg.WriteFrac = 0.35
	}
	if cfg.AppendFrac <= 0 {
		cfg.AppendFrac = 0.20
	}
	if cfg.ReadFrac <= 0 {
		cfg.ReadFrac = 0.35
	}
	return &FS{fbBase: newFbBase(k, g, d, rng), cfg: cfg}
}

// Start launches the worker threads and, when configured, the burst
// phase cycle (staggered by a random offset so populations of FS VMs do
// not lockstep).
func (f *FS) Start() {
	for i := 0; i < f.cfg.Threads; i++ {
		p := f.g.NewProcess(1)
		f.worker(p)
	}
	if f.cfg.BurstOn > 0 && f.cfg.BurstOff > 0 {
		offset := sim.Duration(f.rng.Int63n(int64(f.cfg.BurstOn + f.cfg.BurstOff)))
		f.k.After(offset, f.phaseOff)
	}
}

func (f *FS) phaseOff() {
	if f.stopped {
		return
	}
	f.quiet = true
	f.k.After(f.cfg.BurstOff, f.phaseOn)
}

func (f *FS) phaseOn() {
	if f.stopped {
		return
	}
	f.quiet = false
	parked := f.parked
	f.parked = nil
	for _, p := range parked {
		f.worker(p)
	}
	f.k.After(f.cfg.BurstOn, f.phaseOff)
}

func (f *FS) worker(p *guest.Process) {
	if f.stopped {
		return
	}
	if f.quiet {
		f.parked = append(f.parked, p)
		return
	}
	start := f.k.Now()
	f.rec.started++
	size := int64(f.rng.Exponential(1.0/float64(f.cfg.MeanFileSize))) + 4096
	finish := func() {
		f.rec.completed++
		f.rec.Latency.Record(f.k.Now() - start)
		p.Compute(f.cfg.Think, func() { f.worker(p) })
	}
	// FileBench fileserver flow: weighted op mix.
	switch r := f.rng.Float64(); {
	case r < f.cfg.WriteFrac: // create+write a whole file (buffered)
		f.written.Add(f.k.Now(), float64(size))
		f.d.Write(p, size, finish)
	case r < f.cfg.WriteFrac+f.cfg.AppendFrac: // append to a log
		f.written.Add(f.k.Now(), float64(f.cfg.AppendSize))
		f.d.Write(p, f.cfg.AppendSize, finish)
	case r < f.cfg.WriteFrac+f.cfg.AppendFrac+f.cfg.ReadFrac: // whole-file read
		f.d.Read(p, size, false, finish)
	default: // delete: metadata update, small journal write
		f.written.Add(f.k.Now(), 4096)
		f.d.Write(p, 4096, finish)
	}
}

// WSConfig parameterizes the web-server personality: read web pages,
// append to an access log.
type WSConfig struct {
	Threads  int
	PageSize int64        // default 16 KiB
	LogSize  int64        // default 4 KiB appended every 10 reads
	Think    sim.Duration // default 200 µs
}

// WS is the FileBench webserver personality (read-mostly).
type WS struct {
	fbBase
	cfg   WSConfig
	reads map[*guest.Process]int
}

// NewWS builds a web-server personality.
func NewWS(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, cfg WSConfig, rng *stats.Stream) *WS {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 16 << 10
	}
	if cfg.LogSize <= 0 {
		cfg.LogSize = 4 << 10
	}
	if cfg.Think <= 0 {
		cfg.Think = 200 * sim.Microsecond
	}
	return &WS{fbBase: newFbBase(k, g, d, rng), cfg: cfg, reads: map[*guest.Process]int{}}
}

// Start launches the worker threads.
func (w *WS) Start() {
	for i := 0; i < w.cfg.Threads; i++ {
		p := w.g.NewProcess(1)
		w.worker(p)
	}
}

func (w *WS) worker(p *guest.Process) {
	if w.stopped {
		return
	}
	start := w.k.Now()
	w.rec.started++
	finish := func() {
		w.rec.completed++
		w.rec.Latency.Record(w.k.Now() - start)
		p.Compute(w.cfg.Think, func() { w.worker(p) })
	}
	w.reads[p]++
	if w.reads[p]%10 == 0 {
		w.written.Add(w.k.Now(), float64(w.cfg.LogSize))
		w.d.Write(p, w.cfg.LogSize, finish)
		return
	}
	w.d.Read(p, w.cfg.PageSize, false, finish)
}

// VSConfig parameterizes the video-server personality: streaming readers
// plus one thread adding new videos.
type VSConfig struct {
	Readers   int
	ChunkSize int64 // streaming read unit, default 1 MiB
	VideoSize int64 // new-video size, default 64 MiB
	// AddInterval between new videos (default 10 s).
	AddInterval sim.Duration
}

// VS is the FileBench videoserver personality.
type VS struct {
	fbBase
	cfg VSConfig
}

// NewVS builds a video-server personality.
func NewVS(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, cfg VSConfig, rng *stats.Stream) *VS {
	if cfg.Readers <= 0 {
		cfg.Readers = 4
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.VideoSize <= 0 {
		cfg.VideoSize = 64 << 20
	}
	if cfg.AddInterval <= 0 {
		cfg.AddInterval = 10 * sim.Second
	}
	return &VS{fbBase: newFbBase(k, g, d, rng), cfg: cfg}
}

// Start launches readers and the writer.
func (v *VS) Start() {
	for i := 0; i < v.cfg.Readers; i++ {
		p := v.g.NewProcess(1)
		v.reader(p)
	}
	v.writer(v.g.NewProcess(1))
}

func (v *VS) reader(p *guest.Process) {
	if v.stopped {
		return
	}
	start := v.k.Now()
	v.rec.started++
	v.d.Read(p, v.cfg.ChunkSize, true, func() {
		v.rec.completed++
		v.rec.Latency.Record(v.k.Now() - start)
		// Streaming pace: decode time per chunk.
		p.Compute(500*sim.Microsecond, func() { v.reader(p) })
	})
}

func (v *VS) writer(p *guest.Process) {
	if v.stopped {
		return
	}
	// Upload a new video in 1 MiB buffered writes, then wait.
	remaining := v.cfg.VideoSize
	var step func()
	step = func() {
		if v.stopped {
			return
		}
		if remaining <= 0 {
			v.k.After(v.cfg.AddInterval, func() { v.writer(p) })
			return
		}
		chunk := v.cfg.ChunkSize
		if remaining < chunk {
			chunk = remaining
		}
		remaining -= chunk
		v.written.Add(v.k.Now(), float64(chunk))
		v.d.Write(p, chunk, step)
	}
	step()
}

// MultiStream sequentially reads multiple files concurrently — the
// multi-stream read workload of Sec. 5.5 and the Sec. 2 motivation test.
type MultiStream struct {
	fbBase
	// Streams is the thread count; each reads FileSize bytes in
	// ChunkSize sequential requests, then starts the next file.
	Streams   int
	FileSize  int64
	ChunkSize int64
	// Files bounds files per stream (0 = unbounded until Stop).
	Files int

	finished int
	// OnAllDone fires when every stream has read its Files quota.
	OnAllDone func()
}

// NewMultiStream builds the generator (defaults: 8 streams × 1 GiB files
// in 1 MiB chunks, matching the Sec. 2 test).
func NewMultiStream(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, streams int, fileSize, chunk int64, rng *stats.Stream) *MultiStream {
	if streams <= 0 {
		streams = 8
	}
	if fileSize <= 0 {
		fileSize = 1 << 30
	}
	if chunk <= 0 {
		chunk = 1 << 20
	}
	return &MultiStream{
		fbBase: newFbBase(k, g, d, rng), Streams: streams, FileSize: fileSize, ChunkSize: chunk,
	}
}

// Start launches the streams.
func (m *MultiStream) Start() {
	for i := 0; i < m.Streams; i++ {
		p := m.g.NewProcess(1)
		m.stream(p, 0, 0)
	}
}

func (m *MultiStream) stream(p *guest.Process, filesDone int, offset int64) {
	if m.stopped {
		return
	}
	if offset >= m.FileSize {
		filesDone++
		if m.Files > 0 && filesDone >= m.Files {
			m.finished++
			if m.finished == m.Streams && m.OnAllDone != nil {
				m.OnAllDone()
			}
			return
		}
		offset = 0
	}
	start := m.k.Now()
	m.rec.started++
	chunk := m.ChunkSize
	if m.FileSize-offset < chunk {
		chunk = m.FileSize - offset
	}
	m.d.Read(p, chunk, true, func() {
		m.rec.completed++
		m.rec.Latency.Record(m.k.Now() - start)
		m.stream(p, filesDone, offset+chunk)
	})
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// E0Config parameterizes the Sec. 2 motivation test: two VMs, eight
// threads each, reading eight 1 GB files concurrently, with Linux
// congestion avoidance at defaults versus disabled versus IOrchestra's
// collaborative control.
type E0Config struct {
	Duration  sim.Duration
	Streams   int
	FileSize  int64
	ChunkSize int64
	// QueueLimit is the virtio ring / nr_requests budget; readahead from
	// eight streams fills it, falsely triggering avoidance.
	QueueLimit int
}

// E0Variant selects the congestion configuration under test.
type E0Variant int

const (
	// E0Default is stock Linux avoidance (the 220 ms case).
	E0Default E0Variant = iota
	// E0Disabled turns avoidance off (the 160 ms case).
	E0Disabled
	// E0IOrchestra uses the collaborative controller (Algorithm 2).
	E0IOrchestra
)

func (v E0Variant) String() string {
	switch v {
	case E0Default:
		return "avoidance-on"
	case E0Disabled:
		return "avoidance-off"
	default:
		return "IOrchestra"
	}
}

// E0Result is the mean application read latency per variant.
type E0Result struct {
	Variant E0Variant
	MeanMs  float64
	P999Ms  float64
	Chunks  uint64
}

// RunE0 executes the motivation test for all three variants.
func RunE0(scale Scale, seed uint64) []E0Result {
	cfg := E0Config{
		Duration:  scale.pick(4*sim.Second, 20*sim.Second),
		Streams:   8,
		FileSize:  1 << 30,
		ChunkSize: 1 << 20,
		// 8 streams × 16 readahead chunks merge into ~64 queued requests
		// per VM: above the 7/8 threshold (59) but below the hard limit
		// (68), so congestion avoidance is the binding constraint — the
		// regime of the paper's test.
		QueueLimit: 68,
	}
	variants := []E0Variant{E0Default, E0Disabled, E0IOrchestra}
	results := parallelMap(len(variants), func(i int) E0Result {
		return runE0Variant(variants[i], cfg, seed)
	})
	return results
}

func runE0Variant(v E0Variant, cfg E0Config, seed uint64) E0Result {
	sys := iorchestra.SystemBaseline
	if v == E0IOrchestra {
		sys = iorchestra.SystemIOrchestra
	}
	p := tracedPlatform(sys, seed,
		iorchestra.WithPolicies(iorchestra.Policies{Congestion: true}))
	var gens []*workload.MultiStream
	for vm := 0; vm < 2; vm++ {
		dc := guest.DiskConfig{
			Name: "xvda",
			QueueConfig: blkio.Config{
				Limit:    cfg.QueueLimit,
				MaxMerge: 128 << 10,
			},
			MaxTransfer: 64 << 10,
		}
		if v == E0Disabled {
			dc.QueueConfig.Controller = blkio.NeverController{}
		}
		rt := p.NewVM(4, 4, dc)
		ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0],
			cfg.Streams, cfg.FileSize, cfg.ChunkSize,
			p.Rng.Fork(fmt.Sprintf("ms%d", vm)))
		ms.Start()
		gens = append(gens, ms)
	}
	p.Kernel.RunUntil(cfg.Duration)
	dumpTrace(fmt.Sprintf("E0-%s-seed%d", v, seed), p)
	var total float64
	var p999 float64
	var chunks uint64
	for _, g := range gens {
		h := g.Ops().Latency
		total += h.Mean().Milliseconds() * float64(h.Count())
		chunks += h.Count()
		if v := h.Percentile(99.9).Milliseconds(); v > p999 {
			p999 = v
		}
	}
	mean := 0.0
	if chunks > 0 {
		mean = total / float64(chunks)
	}
	return E0Result{Variant: v, MeanMs: mean, P999Ms: p999, Chunks: chunks}
}

func init() {
	register(Runner{
		ID:       "E0",
		Describe: "Sec. 2 motivation: falsely triggered congestion avoidance on concurrent streams",
		Run: func(scale Scale, seed uint64) []*Table {
			rs := RunE0(scale, seed)
			t := &Table{
				Title:  "Sec. 2 motivation test — mean 1 MiB read latency",
				Header: []string{"variant", "mean (ms)", "p99.9 (ms)", "reads"},
			}
			for _, r := range rs {
				t.Rows = append(t.Rows, []string{
					r.Variant.String(),
					fmt.Sprintf("%.2f", r.MeanMs),
					fmt.Sprintf("%.2f", r.P999Ms),
					fmt.Sprintf("%d", r.Chunks),
				})
			}
			base := rs[0].MeanMs
			t.Rows = append(t.Rows, []string{
				"off vs on", fmt.Sprintf("%.1f%% faster", improvement(base, rs[1].MeanMs)), "", "",
			})
			return []*Table{t}
		},
	})
}

package experiments

import (
	"testing"

	"iorchestra/internal/gstate"
	"iorchestra/internal/sim"
)

// The ISSUE's acceptance inequalities for the tiered-SLA experiment,
// pinned at the fixed CI seed and quick scale:
//
//  1. under gstate, gold burns no more violation-seconds than bronze
//     (the controller meter — tiering worked);
//  2. gold suffers strictly fewer shadow-law violation-seconds with
//     gstate than plain IOrchestra on the same seed (the subsystem
//     helps, not just reshuffles);
//  3. the chaos composition: an uncooperative bronze guest must not
//     cause additional gold violation episodes — the controller
//     protects gold with the population it can actuate.
const slaTestSeed = 42

func slaTestDur() sim.Duration { return Quick.pick(6*sim.Second, 0) }

func TestSLAGoldWithinBronzeBudget(t *testing.T) {
	mix := slaMixes[0]
	pt := runSLAPoint(2, slaTestSeed, mix, false, slaTestDur(), "")
	if pt.ctrl == nil {
		t.Fatal("gstate run has no controller meter")
	}
	gold := pt.ctrl.ViolationSeconds(gstate.Gold)
	bronze := pt.ctrl.ViolationSeconds(gstate.Bronze)
	if bronze == 0 {
		t.Fatal("bronze burned no violation budget; the scenario is too idle to rank tiers")
	}
	if gold > bronze {
		t.Fatalf("gold burned more violation budget than bronze: gold %.2fs, bronze %.2fs", gold, bronze)
	}
}

func TestSLAGStateProtectsGold(t *testing.T) {
	for _, mix := range slaMixes {
		plain := runSLAPoint(1, slaTestSeed, mix, false, slaTestDur(), "")
		tiered := runSLAPoint(2, slaTestSeed, mix, false, slaTestDur(), "")
		pv := plain.shadow.ViolationSeconds(gstate.Gold)
		tv := tiered.shadow.ViolationSeconds(gstate.Gold)
		if pv == 0 {
			t.Fatalf("mix %s: plain IOrchestra shows no gold violations; the scenario cannot demonstrate protection", mix)
		}
		if tv >= pv {
			t.Fatalf("mix %s: gstate did not reduce gold violation-seconds: plain %.2fs, gstate %.2fs", mix, pv, tv)
		}
	}
}

func TestSLARogueBronzeDoesNotHurtGold(t *testing.T) {
	mix := slaMixes[0]
	clean := runSLAPoint(2, slaTestSeed, mix, false, slaTestDur(), "")
	rogue := runSLAPoint(2, slaTestSeed, mix, true, slaTestDur(), "")
	cg := clean.ctrl.Violations(gstate.Gold)
	rg := rogue.ctrl.Violations(gstate.Gold)
	if rg > cg {
		t.Fatalf("uncooperative bronze guest caused gold violations: clean %d episodes, rogue %d", cg, rg)
	}
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/device"
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/workload"
)

// RunFig10a reproduces the co-scheduling microbenchmark (Sec. 5.5): one
// big VM (10 VCPUs / 10 GB) spans both sockets; Cloud9 threads and
// multi-stream readers share it at I/O-thread ratios of 20–80 %. The
// baseline is the dedicated-core platform without IOrchestra's process
// redistribution (processes stay where the guest scheduler put them); the
// comparison reports I/O throughput improvement.
func RunFig10a(scale Scale, seed uint64) []*Table {
	ratios := []float64{0.2, 0.4, 0.6, 0.8}
	dur := scale.pick(20*sim.Second, 60*sim.Second)

	type job struct {
		ri int
		io bool
	}
	var jobs []job
	for ri := range ratios {
		jobs = append(jobs, job{ri, false}, job{ri, true})
	}
	const reps = 2
	results := parallelMap(len(jobs), func(ji int) float64 {
		j := jobs[ji]
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += runFig10aPoint(j.io, seed+uint64(rep)*1000, ratios[j.ri], dur)
		}
		return sum / reps
	})

	t := &Table{
		Title:  "Fig 10(a): I/O throughput improvement at I/O-thread ratios",
		Header: []string{"% I/O threads", "improvement"},
	}
	for ri, r := range ratios {
		var base, io float64
		for ji, j := range jobs {
			if j.ri == ri {
				if j.io {
					io = results[ji]
				} else {
					base = results[ji]
				}
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", r*100),
			fmt.Sprintf("%.1f%%", gain(base, io))})
	}
	return []*Table{t}
}

// runFig10aPoint returns multi-stream read throughput (bytes/sec). Both
// variants run on the identical dedicated-core platform; the baseline
// simply has the guest excluded from co-scheduling, so its I/O processes
// stay where the guest's round-robin scheduler put them.
func runFig10aPoint(cosched bool, seed uint64, ioRatio float64, dur sim.Duration) float64 {
	// A fast array (spec-rate members, a raw volume rather than
	// file-backed images — the single-VM microbenchmark has no
	// nested-filesystem interleaving) makes the polling cores the
	// contended resource, as in the paper's dedicated-core setting.
	specArray := func(k *sim.Kernel, rng *stats.Stream) device.BlockDevice {
		members := make([]device.BlockDevice, 8)
		for i := range members {
			cfg := device.Intel520Config(fmt.Sprintf("ssd%d", i))
			cfg.SeqReadBps = 450e6
			cfg.SeqWriteBps = 230e6
			cfg.RandReadIOPS = 45000
			cfg.InternalParallelism = 4
			members[i] = device.NewSSD(k, cfg, rng.Fork(cfg.Name))
		}
		return device.NewRAID0(k, "md0", members, 256<<10)
	}
	p := tracedPlatform(iorchestra.SystemIOrchestra, seed,
		iorchestra.WithPolicies(iorchestra.Policies{Cosched: true}),
		iorchestra.WithDevice(specArray),
		iorchestra.WithHostConfig(iorchestra.HostConfig{
			Sockets: 2, CoresPerSocket: 6,
			// The polling cores, not the array, must be the contended
			// resource (the paper's imbalance is on the I/O cores).
			IOCoreCostPerReq: 10 * sim.Microsecond,
			IOCoreBps:        3.8e9,
		}))
	rt := p.NewVM(10, 10, guest.DiskConfig{Name: "xvda", MaxTransfer: 256 << 10})
	if !cosched {
		p.Manager.DisableCosched(rt.G.ID())
	}

	nIO := int(ioRatio*10 + 0.5)
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], nIO, 256<<20, 1<<20,
		p.Rng.Fork("ms"))
	cb := workload.NewCPUBound(p.Kernel, rt.G, p.Rng.Fork("c9"))
	cb.Threads = 10 - nIO
	ms.Start()
	if cb.Threads > 0 {
		cb.Start()
	}
	p.Kernel.RunUntil(dur)
	dumpTrace(fmt.Sprintf("fig10a-cosched%t-io%.0f-seed%d", cosched, ioRatio*100, seed), p)
	return float64(ms.Ops().Completed()) * float64(1<<20) / dur.Seconds()
}

func init() {
	register(Runner{
		ID:       "fig10a",
		Describe: "Big cross-socket VM: I/O throughput improvement from co-scheduling",
		Run:      RunFig10a,
	})
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/cluster"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
)

// arrivalCfg builds the paper's dynamic-VM configuration (Sec. 5.3/5.5):
// Poisson arrivals at λ VMs/min, sizes 2–10 VCPUs (= GB), apps drawn from
// {FS, YCSB1, Cloud9}, FIFO admission, fixed problem sizes.
func arrivalCfg(lambda float64, dur sim.Duration) cluster.ArrivalsConfig {
	return cluster.ArrivalsConfig{
		Lambda:   lambda,
		Duration: dur,
		// Scaled problem sizes: ~1–2 minutes of service per VM, so the
		// host saturates within the sweep and throughput (not arrivals)
		// limits completions, as in the paper's hour-long runs.
		YCSBOps:      100000,
		FSBytes:      4 << 30,
		Cloud9Bursts: 6000,
	}
}

// runArrivalPoint runs one (system, λ) dynamic experiment and reports the
// engine for metric extraction.
func runArrivalPoint(sys iorchestra.System, pol iorchestra.Policies, seed uint64, lambda float64, dur sim.Duration) (*cluster.Arrivals, *iorchestra.Platform) {
	p := tracedPlatform(sys, seed, iorchestra.WithPolicies(pol))
	a := cluster.NewArrivals(p.Kernel, p.Host, arrivalCfg(lambda, dur), cluster.VMHooks{
		OnCreate: func(rt *hypervisor.GuestRuntime) { p.Enable(rt) },
		// Departing VMs must release their manager state (driver, watches,
		// heartbeat ledger, held congestion entries) or the degradation
		// layer would count them as heartbeat-dead forever.
		OnRemove: func(rt *hypervisor.GuestRuntime) { p.Disable(rt) },
	}, p.Rng.Fork("arrivals"))
	a.Start()
	// Run past the arrival window so in-flight VMs can finish.
	p.Kernel.RunUntil(dur + dur/4)
	dumpTrace(fmt.Sprintf("arrivals-%s-%s-lam%g-seed%d", sys, polTag(pol), lambda, seed), p)
	return a, p
}

// RunTable2 reproduces Table 2: aggregate write-throughput improvement of
// IOrchestra's flush policy under dynamic VM arrivals at λ = 4..20/min.
func RunTable2(scale Scale, seed uint64) []*Table {
	lambdas := []float64{4, 8, 12, 16, 20}
	dur := scale.pick(6*sim.Minute, 30*sim.Minute)
	pol := iorchestra.Policies{Flush: true}

	type job struct {
		li int
		io bool
	}
	var jobs []job
	for li := range lambdas {
		jobs = append(jobs, job{li, false}, job{li, true})
	}
	results := parallelMap(len(jobs), func(ji int) float64 {
		j := jobs[ji]
		sys := iorchestra.SystemBaseline
		if j.io {
			sys = iorchestra.SystemIOrchestra
		}
		a, _ := runArrivalPoint(sys, pol, seed, lambdas[j.li], dur)
		return a.WrittenBytes()
	})

	t := &Table{
		Title:  "Table 2: write-throughput improvement at VM arrival rate λ (per minute)",
		Header: []string{"λ", "improvement"},
	}
	for li, l := range lambdas {
		var base, io float64
		for ji, j := range jobs {
			if j.li == li {
				if j.io {
					io = results[ji]
				} else {
					base = results[ji]
				}
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", l), fmt.Sprintf("%.1f%%", gain(base, io))})
	}
	return []*Table{t}
}

func init() {
	register(Runner{
		ID:       "table2",
		Describe: "Write-throughput improvement under dynamic VM arrivals (flush policy)",
		Run:      RunTable2,
	})
}

// RunFig10bc reproduces Fig. 10(b) and 10(c): with the full IOrchestra
// (dedicated cores + co-scheduling) versus SDC versus baseline under the
// same dynamic arrivals — improvement in completed VMs, and average CPU
// utilization.
func RunFig10bc(scale Scale, seed uint64) []*Table {
	lambdas := []float64{4, 8, 12, 16, 20}
	dur := scale.pick(6*sim.Minute, 30*sim.Minute)

	systems := []iorchestra.System{iorchestra.SystemBaseline, iorchestra.SystemSDC, iorchestra.SystemIOrchestra}
	type res struct {
		completed int
		util      float64
		ioBytes   float64
	}
	type job struct {
		li, si int
	}
	var jobs []job
	for li := range lambdas {
		for si := range systems {
			jobs = append(jobs, job{li, si})
		}
	}
	results := parallelMap(len(jobs), func(ji int) res {
		j := jobs[ji]
		// Sec. 5.5 isolates the co-scheduling function for this experiment.
		a, p := runArrivalPoint(systems[j.si], iorchestra.Policies{Cosched: true},
			seed, lambdas[j.li], dur)
		return res{
			completed: a.Completed(),
			util:      p.Host.CPUUtilization(p.Kernel.Now()),
			ioBytes:   a.IOBytes(),
		}
	})
	get := func(li, si int) res {
		for ji, j := range jobs {
			if j.li == li && j.si == si {
				return results[ji]
			}
		}
		return res{}
	}

	tb := &Table{Title: "Fig 10(b): improvement in completed VMs vs baseline",
		Header: []string{"λ", "SDC", "IOrchestra"}}
	tc := &Table{Title: "Fig 10(c): average CPU utilization",
		Header: []string{"λ", "Baseline", "SDC", "IOrchestra"}}
	t11 := &Table{Title: "Fig 11: I/O throughput improvement vs baseline",
		Header: []string{"λ", "SDC", "IOrchestra"}}
	for li, l := range lambdas {
		b := get(li, 0)
		s := get(li, 1)
		io := get(li, 2)
		tb.Rows = append(tb.Rows, []string{fmt.Sprintf("%g", l),
			fmt.Sprintf("%.1f%%", gain(float64(b.completed), float64(s.completed))),
			fmt.Sprintf("%.1f%%", gain(float64(b.completed), float64(io.completed)))})
		tc.Rows = append(tc.Rows, []string{fmt.Sprintf("%g", l),
			fmt.Sprintf("%.0f%%", b.util*100), fmt.Sprintf("%.0f%%", s.util*100),
			fmt.Sprintf("%.0f%%", io.util*100)})
		t11.Rows = append(t11.Rows, []string{fmt.Sprintf("%g", l),
			fmt.Sprintf("%.1f%%", gain(b.ioBytes, s.ioBytes)),
			fmt.Sprintf("%.1f%%", gain(b.ioBytes, io.ioBytes))})
	}
	return []*Table{tb, tc, t11}
}

func init() {
	register(Runner{
		ID:       "fig10bc",
		Describe: "Dynamic arrivals: completed VMs, CPU utilization, and I/O throughput (also Fig 11)",
		Run:      RunFig10bc,
	})
	register(Runner{
		ID:       "fig11",
		Describe: "I/O throughput improvement at arrival rate λ (alias of fig10bc)",
		Run:      RunFig10bc,
	})
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/blkio"
	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// RunAblations exercises the design choices DESIGN.md §5 calls out:
// store-notification latency, the flush trigger threshold, the congestion
// release stagger, and the co-scheduling update cadence. Each ablation
// reruns a small representative scenario with one knob swept.
func RunAblations(scale Scale, seed uint64) []*Table {
	return []*Table{
		ablateStoreLatency(scale, seed),
		ablateFlushThreshold(scale, seed),
		ablateReleaseStagger(scale, seed),
		ablateCoschedCadence(scale, seed),
	}
}

// congestedDisk is the small-ring disk profile whose queues falsely
// trigger avoidance under multi-stream readahead.
func congestedDisk() guest.DiskConfig {
	return guest.DiskConfig{
		Name:        "xvda",
		QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
		MaxTransfer: 64 << 10,
	}
}

// ablateStoreLatency sweeps the watch-notification latency: how slow may
// the control channel get before the collaborative veto stops paying off?
func ablateStoreLatency(scale Scale, seed uint64) *Table {
	dur := scale.pick(6*sim.Second, 20*sim.Second)
	latencies := []sim.Duration{10 * sim.Microsecond, 100 * sim.Microsecond,
		sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond}
	results := parallelMap(len(latencies), func(i int) float64 {
		p := tracedPlatform(iorchestra.SystemIOrchestra, seed,
			iorchestra.WithPolicies(iorchestra.Policies{Congestion: true}),
			iorchestra.WithHostConfig(hypervisor.Config{StoreLatency: latencies[i]}))
		vm := p.NewVM(4, 4, congestedDisk())
		ms := workload.NewMultiStream(p.Kernel, vm.G, vm.G.Disks()[0], 8, 1<<30, 1<<20,
			p.Rng.Fork("ms"))
		ms.Start()
		p.Kernel.RunUntil(dur)
		dumpTrace(fmt.Sprintf("ablate-storelat-%s-seed%d", latencies[i], seed), p)
		return ms.Ops().Latency.Percentile(99.9).Milliseconds()
	})
	t := &Table{Title: "Ablation: store notification latency vs read p99.9 (congestion policy)",
		Header: []string{"notify latency", "p99.9 (ms)"}}
	for i, l := range latencies {
		t.Rows = append(t.Rows, []string{l.String(), fmt.Sprintf("%.2f", results[i])})
	}
	return t
}

// ablateFlushThreshold sweeps Algorithm 1's "one tenth of capacity"
// trigger and reports FS write throughput at the Fig. 8 sweet spot.
func ablateFlushThreshold(scale Scale, seed uint64) *Table {
	dur := scale.pick(20*sim.Second, 60*sim.Second)
	fracs := []float64{0.02, 0.05, 0.10, 0.25, 0.50}
	results := parallelMap(len(fracs), func(i int) float64 {
		p := tracedPlatform(iorchestra.SystemIOrchestra, seed,
			iorchestra.WithPolicies(iorchestra.Policies{Flush: true}),
			iorchestra.WithManagerConfig(core.ManagerConfig{FlushUtilFrac: fracs[i]}))
		var gens []*workload.FS
		for j := 0; j < 10; j++ {
			rt := p.NewVM(1, 1, guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
				TotalPages: (1 << 30) / pagecache.PageSize, DirtyRatio: 0.2,
				BackgroundRatio: 0.1, WritebackWindow: 64}})
			fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
				Threads: 2, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
				WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
				BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
			}, p.Rng.Fork(fmt.Sprintf("fs%d", j)))
			fs.Start()
			gens = append(gens, fs)
		}
		p.Kernel.RunUntil(dur)
		dumpTrace(fmt.Sprintf("ablate-flushfrac-%g-seed%d", fracs[i], seed), p)
		var total float64
		for _, g := range gens {
			total += g.WrittenBytes()
		}
		return total / dur.Seconds() / 1e6
	})
	t := &Table{Title: "Ablation: flush trigger threshold (fraction of device capacity)",
		Header: []string{"threshold", "write MB/s"}}
	for i, f := range fracs {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", f), fmt.Sprintf("%.1f", results[i])})
	}
	return t
}

// ablateReleaseStagger compares the paper's 0–99 ms FIFO wake-up stagger
// against no stagger (thundering herd) and a wider window, using the
// genuinely-congested relief scenario.
func ablateReleaseStagger(scale Scale, seed uint64) *Table {
	dur := scale.pick(10*sim.Second, 30*sim.Second)
	staggers := []sim.Duration{sim.Microsecond, 99 * sim.Millisecond, 500 * sim.Millisecond}
	labels := []string{"none (herd)", "0-99 ms (paper)", "0-500 ms"}
	results := parallelMap(len(staggers), func(i int) float64 {
		p := tracedPlatform(iorchestra.SystemIOrchestra, seed,
			iorchestra.WithPolicies(iorchestra.Policies{Congestion: true}),
			iorchestra.WithManagerConfig(core.ManagerConfig{ReleaseStaggerMax: staggers[i]}))
		var gens []*workload.MultiStream
		for j := 0; j < 4; j++ {
			vm := p.NewVM(2, 2, congestedDisk())
			ms := workload.NewMultiStream(p.Kernel, vm.G, vm.G.Disks()[0], 8, 256<<20, 1<<20,
				p.Rng.Fork(fmt.Sprintf("ms%d", j)))
			ms.Start()
			gens = append(gens, ms)
		}
		p.Kernel.RunUntil(dur)
		dumpTrace(fmt.Sprintf("ablate-stagger-%s-seed%d", staggers[i], seed), p)
		var sum float64
		var n float64
		for _, g := range gens {
			h := g.Ops().Latency
			sum += h.Percentile(99).Milliseconds() * float64(h.Count())
			n += float64(h.Count())
		}
		return sum / n
	})
	t := &Table{Title: "Ablation: congestion release stagger vs read p99 (4 congested VMs)",
		Header: []string{"stagger", "p99 (ms)"}}
	for i := range staggers {
		t.Rows = append(t.Rows, []string{labels[i], fmt.Sprintf("%.2f", results[i])})
	}
	return t
}

// ablateCoschedCadence sweeps the weight-update interval (the paper uses
// 1 s or a >50 % latency-ratio change) on the Fig. 10(a) scenario.
func ablateCoschedCadence(scale Scale, seed uint64) *Table {
	dur := scale.pick(15*sim.Second, 45*sim.Second)
	intervals := []sim.Duration{250 * sim.Millisecond, sim.Second, 4 * sim.Second, 16 * sim.Second}
	results := parallelMap(len(intervals), func(i int) float64 {
		p := tracedPlatform(iorchestra.SystemIOrchestra, seed,
			iorchestra.WithPolicies(iorchestra.Policies{Cosched: true}),
			iorchestra.WithManagerConfig(core.ManagerConfig{CoschedInterval: intervals[i]}),
			iorchestra.WithHostConfig(hypervisor.Config{Sockets: 2, CoresPerSocket: 6,
				IOCoreCostPerReq: 10 * sim.Microsecond, IOCoreBps: 2e9}))
		rt := p.NewVM(10, 10, guest.DiskConfig{Name: "xvda", MaxTransfer: 256 << 10})
		ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 4, 256<<20, 1<<20,
			p.Rng.Fork("ms"))
		cb := workload.NewCPUBound(p.Kernel, rt.G, p.Rng.Fork("c9"))
		cb.Threads = 6
		ms.Start()
		cb.Start()
		p.Kernel.RunUntil(dur)
		dumpTrace(fmt.Sprintf("ablate-cosched-%s-seed%d", intervals[i], seed), p)
		return float64(ms.Ops().Completed()) / dur.Seconds()
	})
	t := &Table{Title: "Ablation: co-scheduling update cadence vs stream throughput (MB/s)",
		Header: []string{"interval", "MB/s"}}
	for i, iv := range intervals {
		t.Rows = append(t.Rows, []string{iv.String(), fmt.Sprintf("%.0f", results[i])})
	}
	return t
}

func init() {
	register(Runner{
		ID:       "ablation",
		Describe: "Design-choice ablations: store latency, flush threshold, release stagger, cosched cadence",
		Run:      RunAblations,
	})
}

var _ = apps.NetLatency // keep the import available for future scenario ablations

// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5) plus the Sec. 2 motivation test. Each experiment is
// a pure function of (scale, seed): it builds fresh platforms, runs the
// scenario once per system under test, and returns the series the paper
// plots. Independent simulation points fan out over a worker pool sized
// to GOMAXPROCS — the kernels share nothing.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"iorchestra/internal/sim"
)

// Scale selects run length: Quick for CI-speed smoke numbers, Full for
// report-quality curves (still shorter than the paper's hour-long runs;
// EXPERIMENTS.md documents the scaling).
type Scale int

const (
	// Quick runs seconds of virtual time per point.
	Quick Scale = iota
	// Full runs the report-quality durations.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// pick returns q for Quick and f for Full.
func (s Scale) pick(q, f sim.Duration) sim.Duration {
	if s == Quick {
		return q
	}
	return f
}

// Series is one plotted line: Y value per X.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// SeriesTable renders aligned series sharing an X axis.
func SeriesTable(title, xName string, series []Series, format string) *Table {
	t := &Table{Title: title}
	t.Header = append(t.Header, xName)
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	if len(series) == 0 {
		return t
	}
	for i, x := range series[0].X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf(format, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// parallelMap runs fn over n indices on a bounded worker pool and
// collects results in order. Each index builds its own simulation, so the
// work is embarrassingly parallel.
func parallelMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// improvement reports (base-x)/base as a percentage (positive = better
// when smaller is better, e.g. latency).
func improvement(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - x) / base * 100
}

// gain reports (x-base)/base as a percentage (positive = better when
// larger is better, e.g. throughput).
func gain(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base * 100
}

// meanOf averages ys.
func meanOf(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	s := 0.0
	for _, y := range ys {
		s += y
	}
	return s / float64(len(ys))
}

// Registry maps experiment ids to runners so cmd/experiments can select
// them by name.
type Runner struct {
	ID       string
	Describe string
	Run      func(scale Scale, seed uint64) []*Table
}

var registry []Runner

func register(r Runner) { registry = append(registry, r) }

// Runners lists registered experiments sorted by id.
func Runners() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a runner by id (nil if absent).
func Lookup(id string) *Runner {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// fig4Scenario is the Sec. 5.1 testbed: a three-VM Olio deployment plus
// two two-VM Cassandra stores (one running YCSB1, one YCSB2), all on one
// host, driven concurrently.
type fig4Scenario struct {
	p    *iorchestra.Platform
	olio *apps.Olio
	gen  *workload.ClosedLoop
	y1   *workload.YCSBRun
	y2   *workload.YCSBRun
}

// cassandraDisk is the data-node disk profile: a 512 MiB page-cache
// budget (the JVM heap owns the rest of the 4 GB) makes memtable/commitlog
// flush dynamics visible within minutes.
func cassandraDisk() guest.DiskConfig {
	return guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages: (128 << 20) / pagecache.PageSize,
			// Stock ratios on a small budget: dirty data accumulates for
			// tens of seconds and then flushes in large expiry-driven
			// bursts — the uncoordinated behaviour Sec. 3.1 targets.
			DirtyRatio:      0.6,
			BackgroundRatio: 0.35,
		},
	}
}

func buildFig4(sys iorchestra.System, seed uint64, clients int, y1Rate, y2Rate float64) *fig4Scenario {
	p := tracedPlatform(sys, seed)
	k := p.Kernel

	// Two Cassandra stores first, two data nodes each: 14 VCPUs do not
	// fit 12 cores, and pinning the data nodes before the Olio tiers
	// keeps the inevitable core sharing inside the ms-scale web
	// application instead of starving a µs-scale data node.
	mkStore := func(label string) *apps.CassandraCluster {
		var nodes []*apps.CassandraNode
		for i := 0; i < 2; i++ {
			vm := p.NewVM(2, 4, cassandraDisk())
			nodes = append(nodes, apps.NewCassandraNode(k, vm.G, vm.G.Disks()[0],
				apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("%s-n%d", label, i))))
		}
		return apps.NewCassandraCluster(k, nodes, p.Rng.Fork(label))
	}
	s1 := mkStore("cass1")
	s2 := mkStore("cass2")
	y1 := workload.NewYCSBOpenLoop(k, workload.YCSB1(), s1, y1Rate, 0, p.Rng.Fork("y1"))
	y2 := workload.NewYCSBOpenLoop(k, workload.YCSB2(), s2, y2Rate, 0, p.Rng.Fork("y2"))

	// Olio: web, database, file-server VMs (2 VCPU / 4 GB each).
	web := p.NewVM(2, 4)
	db := p.NewVM(2, 4)
	fs := p.NewVM(2, 4)
	olio := apps.NewOlio(k, web.G, db.G, fs.G, apps.OlioConfig{}, p.Rng.Fork("olio"))
	gen := workload.NewClosedLoop(k, clients, sim.Second, olio.Request, p.Rng.Fork("faban"))

	return &fig4Scenario{p: p, olio: olio, gen: gen, y1: y1, y2: y2}
}

// fig4PointResult carries one (system, intensity) measurement.
type fig4PointResult struct {
	olioMeanMs, olioP999Ms float64
	y1MeanUs, y1P999Us     float64
	y2MeanUs, y2P999Us     float64

	// Retained histograms for Fig. 5 / Fig. 6 CDFs.
	y1Hist, y2Hist         *metrics.Histogram
	webHist, dbHist, fHist *metrics.Histogram
}

// fig4Reps replications per point are merged so tail percentiles are
// stable; every system sees the same replication seeds.
const fig4Reps = 3

func runFig4Point(sys iorchestra.System, seed uint64, clients int, y1Rate, y2Rate float64, dur sim.Duration) fig4PointResult {
	merged := fig4PointResult{
		y1Hist:  metrics.NewHistogram(),
		y2Hist:  metrics.NewHistogram(),
		webHist: metrics.NewHistogram(),
		dbHist:  metrics.NewHistogram(),
		fHist:   metrics.NewHistogram(),
	}
	for rep := 0; rep < fig4Reps; rep++ {
		sc := buildFig4(sys, seed+uint64(rep)*1000, clients, y1Rate, y2Rate)
		sc.gen.Start()
		sc.y1.Gen.Start()
		sc.y2.Gen.Start()
		sc.p.Kernel.RunUntil(dur)
		dumpTrace(fmt.Sprintf("fig4-%s-c%d-r%g-seed%d", sys, clients, y1Rate, seed+uint64(rep)*1000), sc.p)
		merged.y1Hist.Merge(sc.y1.Rec.Latency)
		merged.y2Hist.Merge(sc.y2.Rec.Latency)
		merged.webHist.Merge(sc.olio.WebLatency())
		merged.dbHist.Merge(sc.olio.DBLatency())
		merged.fHist.Merge(sc.olio.FSLatency())
	}
	merged.olioMeanMs = merged.webHist.Mean().Milliseconds()
	merged.olioP999Ms = merged.webHist.Percentile(99.9).Milliseconds()
	merged.y1MeanUs = merged.y1Hist.Mean().Microseconds()
	merged.y1P999Us = merged.y1Hist.Percentile(99.9).Microseconds()
	merged.y2MeanUs = merged.y2Hist.Mean().Microseconds()
	merged.y2P999Us = merged.y2Hist.Percentile(99.9).Microseconds()
	return merged
}

// Fig4Result holds the six panels of Fig. 4.
type Fig4Result struct {
	Clients []int
	Rates   []float64
	// Indexed [system][point].
	OlioMean, OlioP999 map[iorchestra.System][]float64
	Y1Mean, Y1P999     map[iorchestra.System][]float64
	Y2Mean, Y2P999     map[iorchestra.System][]float64
}

// RunFig4 sweeps workload intensity for all four systems.
func RunFig4(scale Scale, seed uint64) *Fig4Result {
	clients := []int{50, 100, 150, 200, 250, 300}
	rates := []float64{500, 1000, 1500, 2000, 2500, 3000}
	dur := scale.pick(30*sim.Second, 150*sim.Second)
	systems := iorchestra.Systems()

	type job struct {
		sys   iorchestra.System
		point int
	}
	var jobs []job
	for _, s := range systems {
		for i := range clients {
			jobs = append(jobs, job{s, i})
		}
	}
	results := parallelMap(len(jobs), func(i int) fig4PointResult {
		j := jobs[i]
		return runFig4Point(j.sys, seed, clients[j.point], rates[j.point], rates[j.point], dur)
	})

	out := &Fig4Result{
		Clients:  clients,
		Rates:    rates,
		OlioMean: map[iorchestra.System][]float64{}, OlioP999: map[iorchestra.System][]float64{},
		Y1Mean: map[iorchestra.System][]float64{}, Y1P999: map[iorchestra.System][]float64{},
		Y2Mean: map[iorchestra.System][]float64{}, Y2P999: map[iorchestra.System][]float64{},
	}
	for idx, j := range jobs {
		r := results[idx]
		out.OlioMean[j.sys] = append(out.OlioMean[j.sys], r.olioMeanMs)
		out.OlioP999[j.sys] = append(out.OlioP999[j.sys], r.olioP999Ms)
		out.Y1Mean[j.sys] = append(out.Y1Mean[j.sys], r.y1MeanUs)
		out.Y1P999[j.sys] = append(out.Y1P999[j.sys], r.y1P999Us)
		out.Y2Mean[j.sys] = append(out.Y2Mean[j.sys], r.y2MeanUs)
		out.Y2P999[j.sys] = append(out.Y2P999[j.sys], r.y2P999Us)
	}
	return out
}

func fig4Tables(r *Fig4Result) []*Table {
	systems := iorchestra.Systems()
	mk := func(title, xName string, xs []float64, data map[iorchestra.System][]float64, format string) *Table {
		var series []Series
		for _, s := range systems {
			series = append(series, Series{Label: s.String(), X: xs, Y: data[s]})
		}
		return SeriesTable(title, xName, series, format)
	}
	xc := make([]float64, len(r.Clients))
	for i, c := range r.Clients {
		xc[i] = float64(c)
	}
	var tables []*Table
	tables = append(tables,
		mk("Fig 4(a) Olio mean latency (ms)", "clients", xc, r.OlioMean, "%.1f"),
		mk("Fig 4(b) YCSB1 mean latency (us)", "req/s", r.Rates, r.Y1Mean, "%.0f"),
		mk("Fig 4(c) YCSB2 mean latency (us)", "req/s", r.Rates, r.Y2Mean, "%.0f"),
		mk("Fig 4(d) Olio p99.9 latency (ms)", "clients", xc, r.OlioP999, "%.1f"),
		mk("Fig 4(e) YCSB1 p99.9 latency (us)", "req/s", r.Rates, r.Y1P999, "%.0f"),
		mk("Fig 4(f) YCSB2 p99.9 latency (us)", "req/s", r.Rates, r.Y2P999, "%.0f"),
	)
	// Headline averages (paper: overall 9 % mean / 12 % tail; YCSB1 13 % / 16 %).
	sum := &Table{Title: "Fig 4 summary: IOrchestra improvement vs Baseline",
		Header: []string{"metric", "improvement"}}
	addImp := func(name string, base, io []float64) {
		var imps []float64
		for i := range base {
			imps = append(imps, improvement(base[i], io[i]))
		}
		sum.Rows = append(sum.Rows, []string{name, fmt.Sprintf("%.1f%%", meanOf(imps))})
	}
	b, io := iorchestra.SystemBaseline, iorchestra.SystemIOrchestra
	addImp("Olio mean", r.OlioMean[b], r.OlioMean[io])
	addImp("Olio p99.9", r.OlioP999[b], r.OlioP999[io])
	addImp("YCSB1 mean", r.Y1Mean[b], r.Y1Mean[io])
	addImp("YCSB1 p99.9", r.Y1P999[b], r.Y1P999[io])
	addImp("YCSB2 mean", r.Y2Mean[b], r.Y2Mean[io])
	addImp("YCSB2 p99.9", r.Y2P999[b], r.Y2P999[io])
	tables = append(tables, sum)
	return tables
}

func init() {
	register(Runner{
		ID:       "fig4",
		Describe: "Olio + YCSB1 + YCSB2 latency vs workload intensity, four systems",
		Run: func(scale Scale, seed uint64) []*Table {
			return fig4Tables(RunFig4(scale, seed))
		},
	})
}

// --- Fig. 5: latency CDFs at 3000 req/s ------------------------------------

// RunFig5 produces YCSB1/YCSB2 latency CDFs at the highest intensity for
// Baseline and IOrchestra.
func RunFig5(scale Scale, seed uint64) []*Table {
	dur := scale.pick(20*sim.Second, 120*sim.Second)
	systems := []iorchestra.System{iorchestra.SystemBaseline, iorchestra.SystemIOrchestra}
	results := parallelMap(len(systems), func(i int) fig4PointResult {
		return runFig4Point(systems[i], seed, 200, 3000, 3000, dur)
	})
	var tables []*Table
	for wi, name := range []string{"Fig 5(a) YCSB1", "Fig 5(b) YCSB2"} {
		t := &Table{Title: name + " latency CDF at 3000 req/s",
			Header: []string{"percentile", "Baseline (us)", "IOrchestra (us)"}}
		for _, p := range []float64{50, 75, 90, 95, 99, 99.9} {
			row := []string{fmt.Sprintf("p%g", p)}
			for si := range systems {
				h := results[si].y1Hist
				if wi == 1 {
					h = results[si].y2Hist
				}
				row = append(row, fmt.Sprintf("%.0f", h.Percentile(p).Microseconds()))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// --- Fig. 6: per-tier Olio CDFs ---------------------------------------------

// RunFig6 produces per-tier latency CDFs for Olio (web end-to-end,
// database queries, file-server ops), Baseline vs IOrchestra.
func RunFig6(scale Scale, seed uint64) []*Table {
	dur := scale.pick(20*sim.Second, 120*sim.Second)
	systems := []iorchestra.System{iorchestra.SystemBaseline, iorchestra.SystemIOrchestra}
	results := parallelMap(len(systems), func(i int) fig4PointResult {
		return runFig4Point(systems[i], seed, 200, 1500, 1500, dur)
	})
	tiers := []struct {
		name string
		get  func(fig4PointResult) *metrics.Histogram
	}{
		{"Fig 6(a) web server (end-to-end)", func(r fig4PointResult) *metrics.Histogram { return r.webHist }},
		{"Fig 6(b) database", func(r fig4PointResult) *metrics.Histogram { return r.dbHist }},
		{"Fig 6(c) file server", func(r fig4PointResult) *metrics.Histogram { return r.fHist }},
	}
	var tables []*Table
	for _, tier := range tiers {
		t := &Table{Title: tier.name + " latency CDF",
			Header: []string{"percentile", "Baseline (ms)", "IOrchestra (ms)"}}
		for _, p := range []float64{50, 75, 90, 95, 99, 99.9} {
			row := []string{fmt.Sprintf("p%g", p)}
			for si := range systems {
				row = append(row, fmt.Sprintf("%.2f", tier.get(results[si]).Percentile(p).Milliseconds()))
			}
			t.Rows = append(t.Rows, row)
		}
		base, io := tier.get(results[0]).Mean(), tier.get(results[1]).Mean()
		t.Rows = append(t.Rows, []string{"mean improvement",
			fmt.Sprintf("%.1f%%", improvement(float64(base), float64(io))), ""})
		tables = append(tables, t)
	}
	return tables
}

func init() {
	register(Runner{ID: "fig5", Describe: "YCSB latency CDFs at 3000 req/s, Baseline vs IOrchestra",
		Run: RunFig5})
	register(Runner{ID: "fig6", Describe: "Olio per-tier latency CDFs, Baseline vs IOrchestra",
		Run: RunFig6})
}

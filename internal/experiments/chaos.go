package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/fault"
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// The chaos experiment is the graceful-degradation acceptance test
// (docs/FAULTS.md): IOrchestra's collaborative policies must degrade to
// Baseline behaviour — never below it — as the control plane is broken
// out from under them.
//
// Table A sweeps the fraction of uncooperative guests (no store driver at
// all) from 0 to 1 and compares Baseline against IOrchestra throughput on
// the same seed: at 1.0 the manager has nobody to talk to and the two
// systems must match within noise.
//
// Table B holds the guest population cooperative but injects
// control-plane faults at increasing rates — driver crashes (with
// restart), stuck syncs, dropped and delayed watch deliveries, stale
// store writes — and reports IOrchestra's throughput and tail latency
// alongside the degradation counters, so a reader can line up "how hard
// was the control plane hit" with "what did the timeouts and fallbacks
// do about it".

const chaosVMs = 4

// chaosVM is the Fig. 8 flush-prone profile: a small cache with low dirty
// ratios under a write-heavy fileserver keeps Algorithm 1 busy, which is
// exactly the traffic the flush-deadline machinery needs to be exercised.
func chaosVM(p *iorchestra.Platform, i int) *workload.FS {
	rt := p.NewVM(1, 1, guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages:      (1 << 30) / pagecache.PageSize,
			DirtyRatio:      0.2,
			BackgroundRatio: 0.1,
			WritebackWindow: 64,
		},
	})
	fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
		Threads: 2, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
		WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
		BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
	}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
	fs.Start()
	return fs
}

type chaosPoint struct {
	mbps     float64
	p99      sim.Duration
	flushTO  uint64
	hbMiss   uint64
	fallback uint64
	restores uint64
	injected uint64
}

// runChaosPoint runs one (system, fault spec) scenario and collects
// throughput, tail latency and the degradation counters.
func runChaosPoint(sys iorchestra.System, seed uint64, spec fault.Spec, dur sim.Duration, label string) chaosPoint {
	p := tracedPlatform(sys, seed,
		// Backend mode for both systems (no co-scheduling) so Baseline
		// and IOrchestra run on an identical substrate and the delta is
		// purely the control plane's doing.
		iorchestra.WithPolicies(iorchestra.Policies{Flush: true, Congestion: true}),
		iorchestra.WithFaults(spec))
	var fss []*workload.FS
	for i := 0; i < chaosVMs; i++ {
		fss = append(fss, chaosVM(p, i))
	}
	p.RunFor(dur)

	var pt chaosPoint
	var written float64
	lat := metrics.NewHistogram()
	for _, fs := range fss {
		written += fs.WrittenBytes()
		lat.Merge(fs.Ops().Latency)
	}
	pt.mbps = written / dur.Seconds() / 1e6
	pt.p99 = lat.Percentile(99)
	if p.Manager != nil {
		c := p.Manager.Counters()
		pt.flushTO = c.FlushTimeouts
		pt.hbMiss = c.HeartbeatMisses
		pt.fallback = c.Fallbacks
		pt.restores = c.Restores
	}
	if p.Faults != nil {
		pt.injected = p.Faults.Total()
	}
	dumpTrace(label, p)
	return pt
}

// RunChaos sweeps fault intensity and reports Baseline-vs-IOrchestra
// throughput plus IOrchestra's degradation ledger.
func RunChaos(scale Scale, seed uint64) []*Table {
	dur := scale.pick(8*sim.Second, 40*sim.Second)

	// Table A: uncooperative-guest sweep, both systems.
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	type jobA struct {
		fi int
		io bool
	}
	var jobsA []jobA
	for fi := range fracs {
		jobsA = append(jobsA, jobA{fi, false}, jobA{fi, true})
	}
	resA := parallelMap(len(jobsA), func(ji int) chaosPoint {
		j := jobsA[ji]
		sys := iorchestra.SystemBaseline
		if j.io {
			sys = iorchestra.SystemIOrchestra
		}
		spec := fault.Spec{Uncoop: fracs[j.fi]}
		return runChaosPoint(sys, seed, spec, dur,
			fmt.Sprintf("chaos-uncoop%g-%s-seed%d", fracs[j.fi], sys, seed))
	})
	ta := &Table{
		Title:  "Chaos A: uncooperative-guest fraction, write throughput",
		Header: []string{"uncoop", "Baseline MB/s", "IOrchestra MB/s", "delta"},
	}
	for ji := 0; ji < len(jobsA); ji += 2 {
		base, io := resA[ji], resA[ji+1]
		ta.Rows = append(ta.Rows, []string{
			fmt.Sprintf("%g", fracs[jobsA[ji].fi]),
			fmt.Sprintf("%.1f", base.mbps),
			fmt.Sprintf("%.1f", io.mbps),
			fmt.Sprintf("%+.1f%%", gain(base.mbps, io.mbps)),
		})
	}

	// Table B: control-plane fault-rate sweep, IOrchestra only.
	rates := []float64{0, 0.25, 0.5, 1}
	resB := parallelMap(len(rates), func(ri int) chaosPoint {
		r := rates[ri]
		var spec fault.Spec
		if r > 0 {
			spec = fault.Spec{
				CrashFrac: r, CrashAt: dur / 4, CrashRestart: dur / 4,
				StuckSyncProb:  0.5 * r,
				WatchDropProb:  0.1 * r,
				StaleWriteProb: 0.05 * r,
				WatchDelayProb: 0.3 * r, WatchDelayMax: 10 * sim.Millisecond,
			}
		}
		return runChaosPoint(iorchestra.SystemIOrchestra, seed, spec, dur,
			fmt.Sprintf("chaos-rate%g-seed%d", r, seed))
	})
	tb := &Table{
		Title: "Chaos B: control-plane fault rate, IOrchestra degradation",
		Header: []string{"rate", "MB/s", "p99 lat", "injected",
			"hb miss", "flush t/o", "fallbacks", "restores"},
	}
	for ri, r := range rates {
		pt := resB[ri]
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%g", r),
			fmt.Sprintf("%.1f", pt.mbps),
			pt.p99.String(),
			fmt.Sprintf("%d", pt.injected),
			fmt.Sprintf("%d", pt.hbMiss),
			fmt.Sprintf("%d", pt.flushTO),
			fmt.Sprintf("%d", pt.fallback),
			fmt.Sprintf("%d", pt.restores),
		})
	}
	return []*Table{ta, tb}
}

func init() {
	register(Runner{
		ID:       "chaos",
		Describe: "Fault-injection sweep: uncooperative guests and control-plane faults vs graceful degradation",
		Run:      RunChaos,
	})
}

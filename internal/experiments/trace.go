package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iorchestra"
	"iorchestra/internal/trace"
)

// traceDir, when non-empty, enables decision tracing on every platform
// the experiments build: each simulation point writes
// <dir>/<label>.ndjson (the raw event stream, loadable by
// cmd/iorchestra-trace) and <dir>/<label>.summary.txt (the per-domain
// decision/metrics summary). Points run on parallelMap workers but each
// writes distinct files, so no locking is needed.
var traceDir string

// SetTraceDir enables per-point decision tracing, writing NDJSON traces
// and metrics summaries into dir (created by the caller). An empty dir
// disables tracing (the default).
func SetTraceDir(dir string) { traceDir = dir }

// tracedPlatform is the experiments' NewPlatform: identical, plus the
// experiment-wide tracing option when SetTraceDir was called.
func tracedPlatform(sys iorchestra.System, seed uint64, opts ...iorchestra.Option) *iorchestra.Platform {
	if traceDir != "" {
		opts = append([]iorchestra.Option{iorchestra.WithTracing(0)}, opts...)
	}
	return iorchestra.NewPlatform(sys, seed, opts...)
}

// dumpTrace exports a finished point's decision trace under label. A
// no-op unless tracing is enabled, so point functions call it
// unconditionally.
func dumpTrace(label string, p *iorchestra.Platform) {
	if traceDir == "" || p == nil || p.Trace == nil {
		return
	}
	events := p.Trace.Events()
	base := filepath.Join(traceDir, sanitizeLabel(label))
	f, err := os.Create(base + ".ndjson")
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	werr := trace.WriteNDJSON(f, events)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "trace: %s.ndjson: %v\n", base, werr)
		return
	}
	if err := os.WriteFile(base+".summary.txt",
		[]byte(trace.Summarize(events).Format()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
	}
}

// sanitizeLabel keeps labels filesystem-safe: anything outside
// [A-Za-z0-9._-] becomes '-'.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '-'
	}, label)
}

// polTag abbreviates a policy set for trace labels (F=flush,
// C=congestion, S=cosched).
func polTag(p iorchestra.Policies) string {
	var b strings.Builder
	if p.Flush {
		b.WriteByte('F')
	}
	if p.Congestion {
		b.WriteByte('C')
	}
	if p.Cosched {
		b.WriteByte('S')
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

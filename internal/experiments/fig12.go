package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/core"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// RunFig12 reproduces the bursty-write experiment (Sec. 5.6): YCSB1
// against a two-node Cassandra store with skewed inter-arrival times —
// synchronized bursts at 10× the average rate, 50 ms and 100 ms burst
// lengths — across all four systems, reporting p99.9 latency versus the
// average request rate.
func RunFig12(scale Scale, seed uint64) []*Table {
	rates := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	if scale == Quick {
		rates = []float64{200, 400, 600, 800, 1000}
	}
	bursts := []sim.Duration{50 * sim.Millisecond, 100 * sim.Millisecond}
	dur := scale.pick(40*sim.Second, 120*sim.Second)
	systems := iorchestra.Systems()

	type job struct {
		bi, ri, si int
	}
	var jobs []job
	for bi := range bursts {
		for ri := range rates {
			for si := range systems {
				jobs = append(jobs, job{bi, ri, si})
			}
		}
	}
	const reps = 2
	results := parallelMap(len(jobs), func(ji int) float64 {
		j := jobs[ji]
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += runFig12Point(systems[j.si], seed+uint64(rep)*1000, rates[j.ri], bursts[j.bi], dur)
		}
		return sum / reps
	})

	var tables []*Table
	for bi, b := range bursts {
		t := &Table{
			Title:  fmt.Sprintf("Fig 12: YCSB1 p99.9 latency (us), %v burst length", b),
			Header: []string{"req/s", "Baseline", "SDC", "DIF", "IOrchestra"},
		}
		var imps []float64
		for ri, r := range rates {
			row := []string{fmt.Sprintf("%g", r)}
			var base, io float64
			for ji, j := range jobs {
				if j.bi == bi && j.ri == ri {
					v := results[ji]
					row = append(row, fmt.Sprintf("%.0f", v))
					switch systems[j.si] {
					case iorchestra.SystemBaseline:
						base = v
					case iorchestra.SystemIOrchestra:
						io = v
					}
				}
			}
			imps = append(imps, improvement(base, io))
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, []string{"avg impr", fmt.Sprintf("%.1f%%", meanOf(imps)), "", "", ""})
		tables = append(tables, t)
	}
	return tables
}

// runFig12Point returns YCSB1 p99.9 latency in microseconds under bursty
// arrivals.
func runFig12Point(sys iorchestra.System, seed uint64, rate float64, burst sim.Duration, dur sim.Duration) float64 {
	p := tracedPlatform(sys, seed,
		// Under half-second burst cycles the flush policy must be
		// conservative: sizeable piles only, well spaced, so sync storms
		// never straddle the next burst.
		iorchestra.WithManagerConfig(core.ManagerConfig{
			MinFlushBytes: 24 << 20,
			FlushCooldown: sim.Second,
		}))
	var nodes []*apps.CassandraNode
	for i := 0; i < 2; i++ {
		vm := p.NewVM(2, 4, cassandraDisk())
		nodes = append(nodes, apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0],
			apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("node%d", i))))
	}
	cl := apps.NewCassandraCluster(p.Kernel, nodes, p.Rng.Fork("cl"))
	run := workload.NewYCSBBursty(p.Kernel, workload.YCSB1(), cl, rate,
		burst, 500*sim.Millisecond, 0, p.Rng.Fork("gen"))
	run.Gen.Start()
	p.Kernel.RunUntil(dur)
	dumpTrace(fmt.Sprintf("fig12-%s-rate%g-burst%s-seed%d", sys, rate, burst, seed), p)
	return run.Rec.Latency.Percentile(99.9).Microseconds()
}

func init() {
	register(Runner{
		ID:       "fig12",
		Describe: "Bursty YCSB1 p99.9 latency at 50/100 ms burst lengths, four systems",
		Run:      RunFig12,
	})
}

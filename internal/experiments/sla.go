package experiments

// The tiered-SLA experiment (docs/GSTATES.md): a multi-tenant host runs
// a mix of gold, silver and bronze guests under sustained congestion
// and the G-state controller is judged by the violation budget each
// tier actually burned.
//
// Table A sweeps tier mixes and compares Baseline, plain IOrchestra
// (flush + congestion, no G-states) and IOrchestra+gstate on a
// system-neutral yardstick: a shadow meter samples every guest's
// windowed mean host-path latency on the controller's own cadence and
// charges violation-seconds against the guest's declared per-tier
// latency budget. The shadow law is latency-only — Baseline has no
// performance states, so the bandwidth half of the controller's law
// would be meaningless there — and identical across systems, so the
// deltas are the policies' doing.
//
// Table B reports the controller's own meter (both violation laws,
// episode onsets and violation-seconds) for the gstate runs: the
// acceptance inequality "gold burns no more violation budget than
// bronze" is read off this table.
//
// Table C is the chaos composition: the same tiered population plus one
// uncooperative bronze guest — created, tier declared, workload
// running, but never enabled, so no store driver ever registers and no
// controller can actuate it. The rogue guest must not cause gold
// violations: the controller protects gold by demoting what it CAN
// control (the cooperative bronze and silver population).

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/blkio"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/workload"
)

// slaSampleEvery matches the G-state controller's decision cadence so
// the shadow meter and the controller judge the same windows.
const slaSampleEvery = 100 * sim.Millisecond

// slaMix is one tier population: gold strongest first.
type slaMix struct{ gold, silver, bronze int }

func (m slaMix) String() string { return fmt.Sprintf("%dg/%ds/%db", m.gold, m.silver, m.bronze) }

func (m slaMix) total() int { return m.gold + m.silver + m.bronze }

// slaMixes is the sweep: balanced, bronze-heavy, gold-heavy.
var slaMixes = []slaMix{{2, 2, 2}, {1, 2, 3}, {3, 2, 1}}

// slaVM is the congestion-prone profile (eight readahead streams
// against a small ring) with a declared tier: the population that keeps
// the device saturated enough for latency budgets to matter.
func slaVM(p *iorchestra.Platform, i int, tier gstate.Tier) *iorchestra.VM {
	disk := guest.DiskConfig{
		Name:        "xvda",
		QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
		MaxTransfer: 64 << 10,
	}
	rt := p.NewTieredVM(tier, gstate.SLA{}, 2, 2, disk)
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 8, 1<<30, 1<<20,
		p.Rng.Fork(fmt.Sprintf("sla%d", i)))
	ms.Start()
	return rt
}

// slaShadow samples one platform's guests against their latency budgets
// and accrues a system-neutral violation meter.
type slaShadow struct {
	p     *iorchestra.Platform
	meter *gstate.Meter
	doms  []store.DomID
	tiers map[store.DomID]gstate.Tier
	last  map[store.DomID]struct {
		count uint64
		sum   sim.Time
	}
}

func newSLAShadow(p *iorchestra.Platform) *slaShadow {
	return &slaShadow{
		p:     p,
		meter: gstate.NewMeter(),
		tiers: map[store.DomID]gstate.Tier{},
		last: map[store.DomID]struct {
			count uint64
			sum   sim.Time
		}{},
	}
}

func (sh *slaShadow) watch(rt *iorchestra.VM, tier gstate.Tier) {
	sh.doms = append(sh.doms, rt.G.ID())
	sh.tiers[rt.G.ID()] = tier
}

// start arms the sampling loop: every interval, each watched guest's
// windowed mean host-path latency is judged against its tier's budget.
// A window with no completions carries no evidence and keeps the guest's
// previous verdict open (Observe is only called on evidence).
func (sh *slaShadow) start() {
	var tick func()
	tick = func() {
		now := sh.p.Kernel.Now()
		for _, dom := range sh.doms {
			count, sum := sh.p.Host.Monitor().GuestPathStats(dom)
			prev := sh.last[dom]
			sh.last[dom] = struct {
				count uint64
				sum   sim.Time
			}{count, sum}
			if count <= prev.count {
				continue
			}
			mean := sim.Duration(sum-prev.sum) / sim.Duration(count-prev.count)
			tier := sh.tiers[dom]
			budget := gstate.DefaultSLA(tier).P99Budget
			sh.meter.Observe(dom, tier, mean > budget, now)
		}
		sh.p.Kernel.After(slaSampleEvery, tick)
	}
	sh.p.Kernel.After(slaSampleEvery, tick)
}

// slaPoint is one (system, mix) outcome: the shadow meter always, the
// controller's own meter when the gstate policy ran.
type slaPoint struct {
	shadow *gstate.Meter
	ctrl   *gstate.Meter
}

// slaSystems orders the compared configurations.
var slaSystems = []struct {
	label  string
	sys    iorchestra.System
	gstate bool
}{
	{"Baseline", iorchestra.SystemBaseline, false},
	{"IOrchestra", iorchestra.SystemIOrchestra, false},
	{"IOrchestra+gstate", iorchestra.SystemIOrchestra, true},
}

// runSLAPoint runs one tiered scenario. rogueBronze adds the chaos
// composition's uncooperative bronze guest.
func runSLAPoint(sysIdx int, seed uint64, mix slaMix, rogueBronze bool, dur sim.Duration, label string) slaPoint {
	cfg := slaSystems[sysIdx]
	pol := iorchestra.Policies{Flush: true, Congestion: true, GState: cfg.gstate}
	// The shadow meter reads host-path latency through the Monitor,
	// which requires the decision-trace recorder, so tracing is on for
	// every system (tracedPlatform only adds the export directory).
	// Host dispatch concurrency is bounded well below the population's
	// outstanding I/O so the weighted cgroup — the actuation surface the
	// G-state controller drives — is where requests queue; with the
	// default bound the device's internal FIFO absorbs the backlog and
	// no per-class differentiation is possible on any system.
	p := tracedPlatform(cfg.sys, seed,
		iorchestra.WithTracing(1<<19), iorchestra.WithPolicies(pol),
		iorchestra.WithHostConfig(hypervisor.Config{MaxDeviceInFlight: 8}))
	sh := newSLAShadow(p)
	i := 0
	populate := func(n int, tier gstate.Tier) {
		for j := 0; j < n; j++ {
			sh.watch(slaVM(p, i, tier), tier)
			i++
		}
	}
	populate(mix.gold, gstate.Gold)
	populate(mix.silver, gstate.Silver)
	populate(mix.bronze, gstate.Bronze)
	if rogueBronze {
		// The uncooperative guest: created and declared bronze, but never
		// enabled — no store driver registers, no controller attaches,
		// nothing can actuate it. Its streams still pound the device.
		rt := p.Host.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 2 << 30},
			guest.DiskConfig{
				Name:        "xvda",
				QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
				MaxTransfer: 64 << 10,
			})
		gstate.PublishSLA(p.Host.Store(), rt.G.ID(), gstate.Bronze, gstate.SLA{})
		ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 8, 1<<30, 1<<20,
			p.Rng.Fork("rogue"))
		ms.Start()
	}
	sh.start()
	p.RunFor(dur)

	pt := slaPoint{shadow: sh.meter}
	pt.shadow.CloseAll(p.Kernel.Now())
	if p.Manager != nil {
		if me := p.Manager.GStateMeter(); me != nil {
			me.CloseAll(p.Kernel.Now())
			pt.ctrl = me
		}
	}
	dumpTrace(label, p)
	return pt
}

// RunSLA sweeps tier mixes across the three configurations and runs the
// chaos composition, reporting per-tier violation budgets.
func RunSLA(scale Scale, seed uint64) []*Table {
	dur := scale.pick(6*sim.Second, 30*sim.Second)

	type job struct {
		mi, si int
	}
	var jobs []job
	for mi := range slaMixes {
		for si := range slaSystems {
			jobs = append(jobs, job{mi, si})
		}
	}
	res := parallelMap(len(jobs), func(ji int) slaPoint {
		j := jobs[ji]
		return runSLAPoint(j.si, seed, slaMixes[j.mi], false, dur,
			fmt.Sprintf("sla-%s-%s-seed%d", slaMixes[j.mi], slaSystems[j.si].label, seed))
	})
	at := func(mi, si int) slaPoint { return res[mi*len(slaSystems)+si] }

	ta := &Table{
		Title:  "SLA A: tier-mix sweep, shadow violation-seconds per tier (latency law, identical across systems)",
		Header: []string{"mix", "tier", "Baseline", "IOrchestra", "IOrchestra+gstate"},
	}
	tb := &Table{
		Title:  "SLA B: G-state controller meter per tier (both violation laws)",
		Header: []string{"mix", "tier", "violations", "violation-s"},
	}
	for mi, mix := range slaMixes {
		for _, tier := range gstate.Tiers() {
			ta.Rows = append(ta.Rows, []string{
				mix.String(), string(tier),
				fmt.Sprintf("%.2f", at(mi, 0).shadow.ViolationSeconds(tier)),
				fmt.Sprintf("%.2f", at(mi, 1).shadow.ViolationSeconds(tier)),
				fmt.Sprintf("%.2f", at(mi, 2).shadow.ViolationSeconds(tier)),
			})
			if ctrl := at(mi, 2).ctrl; ctrl != nil {
				tb.Rows = append(tb.Rows, []string{
					mix.String(), string(tier),
					fmt.Sprintf("%d", ctrl.Violations(tier)),
					fmt.Sprintf("%.2f", ctrl.ViolationSeconds(tier)),
				})
			}
		}
	}

	// Chaos composition: balanced mix, with and without the rogue.
	mix := slaMixes[0]
	clean := runSLAPoint(2, seed, mix, false, dur, fmt.Sprintf("sla-chaos-clean-seed%d", seed))
	rogue := runSLAPoint(2, seed, mix, true, dur, fmt.Sprintf("sla-chaos-rogue-seed%d", seed))
	tc := &Table{
		Title:  "SLA C: chaos composition — uncooperative bronze guest vs gold budget (controller meter)",
		Header: []string{"tier", "clean violations", "clean viol-s", "rogue violations", "rogue viol-s"},
	}
	for _, tier := range gstate.Tiers() {
		tc.Rows = append(tc.Rows, []string{
			string(tier),
			fmt.Sprintf("%d", clean.ctrl.Violations(tier)),
			fmt.Sprintf("%.2f", clean.ctrl.ViolationSeconds(tier)),
			fmt.Sprintf("%d", rogue.ctrl.Violations(tier)),
			fmt.Sprintf("%.2f", rogue.ctrl.ViolationSeconds(tier)),
		})
	}
	return []*Table{ta, tb, tc}
}

func init() {
	register(Runner{
		ID:       "sla",
		Describe: "tiered-SLA sweep: per-tier violation budgets, Baseline vs IOrchestra vs +gstate, plus the rogue-bronze chaos composition",
		Run:      RunSLA,
	})
}

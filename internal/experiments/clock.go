package experiments

import "time"

// Clock supplies wall-clock readings for progress reporting in the
// experiment binaries. It exists so cmd/experiments never calls time.Now
// itself: the determinism vet pass bans wall-clock reads across the
// simulation and its drivers, and elapsed-time reporting is the one
// legitimate wall-clock consumer — so it is injected from here, outside
// the deterministic scope, and tests can swap it for a fake.
type Clock func() time.Time

// wallClock is the process default; SetClock replaces it.
var wallClock Clock = time.Now

// SetClock installs an alternative clock (tests); nil restores the wall
// clock.
func SetClock(c Clock) {
	if c == nil {
		c = time.Now
	}
	wallClock = c
}

// Stopwatch measures elapsed wall time for progress lines.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// StartStopwatch begins timing on the injected clock.
func StartStopwatch() Stopwatch {
	return Stopwatch{clock: wallClock, start: wallClock()}
}

// Elapsed reports wall time since StartStopwatch.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock().Sub(s.start)
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// RunFig8 reproduces the dirty-page flushing experiment (Sec. 5.3):
// 2–20 single-VCPU/1 GB VMs run the FileBench fileserver with working
// sets larger than twice their memory, at dirty ratios of 10–40 %. Only
// the flush policy is enabled; the figure reports write-throughput
// improvement over the baseline.
func RunFig8(scale Scale, seed uint64) []*Table {
	vmCounts := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	ratios := []float64{0.10, 0.20, 0.30, 0.40}
	if scale == Quick {
		vmCounts = []int{2, 8, 14, 20}
	}
	dur := scale.pick(60*sim.Second, 240*sim.Second)

	type job struct {
		vmIdx, ratioIdx int
		io              bool
	}
	var jobs []job
	for vi := range vmCounts {
		for ri := range ratios {
			jobs = append(jobs, job{vi, ri, false}, job{vi, ri, true})
		}
	}
	const reps = 3
	results := parallelMap(len(jobs), func(ji int) float64 {
		j := jobs[ji]
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += runFig8Point(j.io, seed+uint64(rep)*1000, vmCounts[j.vmIdx], ratios[j.ratioIdx], dur)
		}
		return sum / reps
	})

	t := &Table{
		Title:  "Fig 8: FS write-throughput improvement (flush policy only)",
		Header: []string{"VMs", "10%", "20%", "30%", "40%"},
	}
	var all []float64
	for vi, n := range vmCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for ri := range ratios {
			var base, io float64
			for ji, j := range jobs {
				if j.vmIdx == vi && j.ratioIdx == ri {
					if j.io {
						io = results[ji]
					} else {
						base = results[ji]
					}
				}
			}
			g := gain(base, io)
			all = append(all, g)
			row = append(row, fmt.Sprintf("%.1f%%", g))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"mean", fmt.Sprintf("%.1f%%", meanOf(all)), "", "", ""})
	return []*Table{t}
}

// runFig8Point returns aggregate FS write throughput (bytes accepted per
// second of virtual time).
func runFig8Point(iorch bool, seed uint64, vms int, dirtyRatio float64, dur sim.Duration) float64 {
	sys := iorchestra.SystemBaseline
	if iorch {
		sys = iorchestra.SystemIOrchestra
	}
	p := tracedPlatform(sys, seed,
		iorchestra.WithPolicies(iorchestra.Policies{Flush: true}))
	var gens []*workload.FS
	for i := 0; i < vms; i++ {
		rt := p.NewVM(1, 1, guest.DiskConfig{
			Name: "xvda",
			CacheConfig: pagecache.Config{
				TotalPages:      (1 << 30) / pagecache.PageSize,
				DirtyRatio:      dirtyRatio,
				BackgroundRatio: dirtyRatio / 2,
				WritebackWindow: 64,
			},
		})
		fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0],
			workload.FSConfig{
				Threads:      2,
				MeanFileSize: 1 << 20,
				Think:        6 * sim.Millisecond,
				WriteFrac:    0.8, AppendFrac: 0.1, ReadFrac: 0.05,
				BurstOn:  1500 * sim.Millisecond,
				BurstOff: 3500 * sim.Millisecond,
			}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
		gens = append(gens, fs)
	}
	for _, g := range gens {
		g.Start()
	}
	p.Kernel.RunUntil(dur)
	dumpTrace(fmt.Sprintf("fig8-%s-vms%d-dirty%.0f-seed%d", sys, vms, dirtyRatio*100, seed), p)
	var total float64
	for _, g := range gens {
		total += g.WrittenBytes()
	}
	return total / dur.Seconds()
}

func init() {
	register(Runner{
		ID:       "fig8",
		Describe: "FS write-throughput improvement vs VM count and dirty ratio (flush policy)",
		Run:      RunFig8,
	})
}

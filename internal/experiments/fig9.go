package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/workload"
)

// RunFig9 reproduces the congestion-control experiment (Sec. 5.4):
// 2–20 single-VCPU/1 GB VMs run FS, WS or VS; only the congestion policy
// is enabled; the figure reports per-op latency normalized to baseline.
// FS issues many small mixed requests and falsely triggers avoidance at
// low VM counts (≈0.90); all curves approach 1.0 as the device becomes
// genuinely congested.
func RunFig9(scale Scale, seed uint64) []*Table {
	vmCounts := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	if scale == Quick {
		vmCounts = []int{2, 6, 10, 14, 20}
	}
	dur := scale.pick(20*sim.Second, 90*sim.Second)
	kinds := []string{"FS", "WS", "VS"}

	type job struct {
		kindIdx, vmIdx int
		io             bool
	}
	var jobs []job
	for ki := range kinds {
		for vi := range vmCounts {
			jobs = append(jobs, job{ki, vi, false}, job{ki, vi, true})
		}
	}
	const reps = 2
	results := parallelMap(len(jobs), func(ji int) float64 {
		j := jobs[ji]
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += runFig9Point(j.io, seed+uint64(rep)*1000, kinds[j.kindIdx], vmCounts[j.vmIdx], dur)
		}
		return sum / reps
	})

	t := &Table{
		Title:  "Fig 9: latency normalized to baseline (congestion policy only)",
		Header: []string{"VMs", "FS", "WS", "VS"},
	}
	for vi, n := range vmCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for ki := range kinds {
			var base, io float64
			for ji, j := range jobs {
				if j.kindIdx == ki && j.vmIdx == vi {
					if j.io {
						io = results[ji]
					} else {
						base = results[ji]
					}
				}
			}
			row = append(row, fmt.Sprintf("%.3f", io/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// runFig9Point returns the mean op latency (seconds) of the workload.
func runFig9Point(iorch bool, seed uint64, kind string, vms int, dur sim.Duration) float64 {
	sys := iorchestra.SystemBaseline
	if iorch {
		sys = iorchestra.SystemIOrchestra
	}
	p := tracedPlatform(sys, seed,
		iorchestra.WithPolicies(iorchestra.Policies{Congestion: true}))
	var pers []workload.Personality
	for i := 0; i < vms; i++ {
		rt := p.NewVM(1, 1, guest.DiskConfig{
			Name: "xvda",
			// A small virtio ring: bursts of small mixed requests cross
			// the 7/8 threshold well before the shared array is busy.
			QueueConfig: blkio.Config{Limit: 48, DispatchWindow: 16},
			MaxTransfer: 64 << 10,
		})
		rng := p.Rng.Fork(fmt.Sprintf("wl%d", i))
		var per workload.Personality
		switch kind {
		case "FS":
			per = workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
				Threads: 4, MeanFileSize: 256 << 10, Think: 2 * sim.Millisecond,
				BurstOn: sim.Second, BurstOff: 2 * sim.Second,
			}, rng)
		case "WS":
			per = workload.NewWS(p.Kernel, rt.G, rt.G.Disks()[0], workload.WSConfig{
				Threads: 4, Think: 2 * sim.Millisecond,
			}, rng)
		default:
			per = workload.NewVS(p.Kernel, rt.G, rt.G.Disks()[0], workload.VSConfig{
				Readers: 2, VideoSize: 32 << 20, AddInterval: 5 * sim.Second,
			}, rng)
		}
		pers = append(pers, per)
	}
	for _, per := range pers {
		per.Start()
	}
	p.Kernel.RunUntil(dur)
	dumpTrace(fmt.Sprintf("fig9-%s-%s-vms%d-seed%d", sys, kind, vms, seed), p)
	var sum float64
	var n float64
	for _, per := range pers {
		h := per.Ops().Latency
		sum += h.Mean().Seconds() * float64(h.Count())
		n += float64(h.Count())
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

func init() {
	register(Runner{
		ID:       "fig9",
		Describe: "FS/WS/VS normalized latency vs VM count (congestion policy)",
		Run:      RunFig9,
	})
}

package experiments

import (
	"fmt"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/baselines"
	"iorchestra/internal/cluster"
	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/workload"
)

// RunFig7 reproduces the scaled-out experiment (Sec. 5.2): each of 1–8
// machines hosts three VMs running Cloud9, an mpiBLAST worker, and a
// YCSB1 Cassandra node; mpiBLAST partitions its database across machines
// and Cassandra shards its keyspace. Mean I/O latency is normalized to
// the Baseline at the same cluster size.
func RunFig7(scale Scale, seed uint64) []*Table {
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8}
	systems := iorchestra.Systems()
	dur := scale.pick(20*sim.Second, 90*sim.Second)

	type point struct {
		blastMean float64 // seconds
		ycsbMean  float64
	}
	type job struct {
		sysIdx, sizeIdx int
	}
	var jobs []job
	for si := range systems {
		for zi := range sizes {
			jobs = append(jobs, job{si, zi})
		}
	}
	results := parallelMap(len(jobs), func(ji int) point {
		j := jobs[ji]
		return runFig7Point(systems[j.sysIdx], seed, sizes[j.sizeIdx], dur)
	})

	blast := map[iorchestra.System][]float64{}
	ycsb := map[iorchestra.System][]float64{}
	for ji, j := range jobs {
		s := systems[j.sysIdx]
		blast[s] = append(blast[s], results[ji].blastMean)
		ycsb[s] = append(ycsb[s], results[ji].ycsbMean)
	}

	mkNorm := func(title string, data map[iorchestra.System][]float64) *Table {
		t := &Table{Title: title, Header: []string{"machines", "IOrchestra", "SDC", "DIF"}}
		base := data[iorchestra.SystemBaseline]
		for i, n := range sizes {
			row := []string{fmt.Sprintf("%d", n)}
			for _, s := range []iorchestra.System{iorchestra.SystemIOrchestra, iorchestra.SystemSDC, iorchestra.SystemDIF} {
				row = append(row, fmt.Sprintf("%.3f", data[s][i]/base[i]))
			}
			t.Rows = append(t.Rows, row)
		}
		// Average improvement of IOrchestra (paper: 10.1 % blast, 12.9 % YCSB1).
		var imp []float64
		for i := range sizes {
			imp = append(imp, improvement(base[i], data[iorchestra.SystemIOrchestra][i]))
		}
		t.Rows = append(t.Rows, []string{"avg impr", fmt.Sprintf("%.1f%%", meanOf(imp)), "", ""})
		return t
	}
	return []*Table{
		mkNorm("Fig 7(a) mpiBLAST normalized mean I/O latency", blast),
		mkNorm("Fig 7(b) YCSB1 normalized mean I/O latency", ycsb),
	}
}

func runFig7Point(sys iorchestra.System, seed uint64, machines int, dur sim.Duration) (pt struct {
	blastMean float64
	ycsbMean  float64
}) {
	k := sim.NewKernel()
	rng := stats.NewStream(seed, "fig7")
	hostCfg := hypervisor.Config{}
	switch sys {
	case iorchestra.SystemSDC:
		hostCfg.Mode = hypervisor.ModeDedicated
	case iorchestra.SystemIOrchestra:
		hostCfg.Mode = hypervisor.ModeDedicated
		hostCfg.RouteBySocket = true
	}
	tb := cluster.NewTestbed(k, machines, hostCfg, rng.Fork("tb"))

	// Per-host system components.
	var mgrs []*core.Manager
	var difs []*baselines.DIF
	var sdcs []*baselines.SDC
	for _, h := range tb.Hosts() {
		switch sys {
		case iorchestra.SystemIOrchestra:
			mgrs = append(mgrs, core.NewManager(h, core.All(), core.ManagerConfig{}, rng.Fork(h.Name()+"/mgr")))
		case iorchestra.SystemDIF:
			difs = append(difs, baselines.NewDIF(h))
		case iorchestra.SystemSDC:
			sdcs = append(sdcs, baselines.NewSDC(h))
		}
	}
	enable := func(i int, rt *hypervisor.GuestRuntime) {
		switch sys {
		case iorchestra.SystemIOrchestra:
			mgrs[i].EnableGuest(rt)
		case iorchestra.SystemDIF:
			difs[i].EnableGuest(rt)
		case iorchestra.SystemSDC:
			sdcs[i].EnableGuest(rt)
		}
	}

	var blastGuests []*guest.Guest
	var nodes []*apps.CassandraNode
	var cpu []*workload.CPUBound
	for i, h := range tb.Hosts() {
		// Cloud9 VM.
		c9 := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
		enable(i, c9)
		cb := workload.NewCPUBound(k, c9.G, rng.Fork(fmt.Sprintf("c9-%d", i)))
		cpu = append(cpu, cb)
		// mpiBLAST worker VM.
		bw := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
		enable(i, bw)
		blastGuests = append(blastGuests, bw.G)
		// YCSB1 Cassandra node VM.
		cn := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30}, cassandraDisk())
		enable(i, cn)
		nodes = append(nodes, apps.NewCassandraNode(k, cn.G, cn.G.Disks()[0],
			apps.CassandraConfig{}, rng.Fork(fmt.Sprintf("cass-%d", i))))
	}
	// The database scales with the cluster so per-worker partitions stay
	// constant (weak scaling, as mpiBLAST deployments do).
	job := apps.NewBlastJob(k, blastGuests, int64(machines)*2<<30, true, rng.Fork("blast"))
	job.Start()
	cl := apps.NewCassandraCluster(k, nodes, rng.Fork("cl"))
	// Load scales with nodes; inter-node traffic grows with the cluster.
	y1 := workload.NewYCSBOpenLoop(k, workload.YCSB1(), cl, 700*float64(machines), 0, rng.Fork("y1"))
	y1.Gen.Start()
	for _, cb := range cpu {
		cb.Start()
	}
	k.RunUntil(dur)

	bh := metrics.NewHistogram()
	for _, w := range job.Workers() {
		bh.Merge(w.Ops().Latency)
	}
	pt.blastMean = bh.Mean().Seconds()
	pt.ycsbMean = y1.Rec.Latency.Mean().Seconds()
	return pt
}

func init() {
	register(Runner{
		ID:       "fig7",
		Describe: "Scaled-out mpiBLAST + YCSB1 + Cloud9 on 1-8 machines, normalized latency",
		Run:      RunFig7,
	})
}

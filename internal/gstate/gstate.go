// Package gstate is the tiered-SLA performance-state subsystem: discrete
// per-guest performance states ("G-states", after IOTune's elastic
// driver — see PAPERS.md) driven by a controller that trades bandwidth
// between SLA tiers under contention.
//
// The package holds the pure model half of the subsystem:
//
//   - the SLA tier taxonomy (gold/silver/bronze) with per-tier targets
//     (minimum bandwidth fraction, p99 latency budget) and the
//     /local/domain/<dom>/sla store schema that declares them per guest;
//   - the G0..G3 state machine with its deterministic demote/promote
//     victim selection (bronze before silver before gold, spread evenly
//     within a tier, ties to the lowest domain);
//   - the SLA-violation meter: per-tier violation counters and
//     violation-seconds accounting with per-episode duration histograms.
//
// The controller that feeds measurements in and actuates states lives in
// internal/core (gstate.go) beside the paper's three policies; it is
// enabled with core.Policies.GState. docs/GSTATES.md is the normative
// reference.
package gstate

import (
	"sort"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Tier is one SLA class. The zero value is not a tier; guests without a
// declared tier default to Bronze at admission.
type Tier string

// The three tiers, strongest first.
const (
	Gold   Tier = "gold"
	Silver Tier = "silver"
	Bronze Tier = "bronze"
)

// Tiers lists the tiers strongest-first — the presentation (and
// promotion-priority) order.
func Tiers() []Tier { return []Tier{Gold, Silver, Bronze} }

// ParseTier maps a store value to a tier, defaulting unknown or empty
// strings to Bronze: an undeclared guest gets the weakest guarantees,
// never accidentally the strongest.
func ParseTier(s string) Tier {
	switch Tier(s) {
	case Gold, Silver:
		return Tier(s)
	}
	return Bronze
}

// Rank orders tiers for victim selection: the lowest rank is demoted
// first and promoted last (Bronze 0, Silver 1, Gold 2).
func (t Tier) Rank() int {
	switch t {
	case Gold:
		return 2
	case Silver:
		return 1
	}
	return 0
}

// SLA is one tier's performance targets. A guest violates its SLA while
// either target is missed (see Meter).
type SLA struct {
	// MinBWFrac is the minimum fraction of full-speed device access the
	// guest is promised: the applied G-state weight must not fall below
	// it. Demoting a guest past this floor is a deliberate, metered
	// violation (the price of protecting stronger tiers).
	MinBWFrac float64
	// P99Budget is the per-request host-path latency budget. The
	// controller evaluates it against a windowed mean of the guest's
	// completion latencies — responsive enough to clear on relief, where
	// a lifetime p99 would stay saturated forever.
	P99Budget sim.Duration
}

// DefaultSLA returns a tier's default targets. Bronze's bandwidth floor
// (0.2) sits above G3's weight (0.15) on purpose: a bronze guest parked
// in G3 accrues violation-seconds, which is exactly what the metric is
// for — the demotion ladder trades metered bronze violations for gold
// headroom.
func DefaultSLA(t Tier) SLA {
	switch t {
	case Gold:
		return SLA{MinBWFrac: 0.5, P99Budget: 25 * sim.Millisecond}
	case Silver:
		return SLA{MinBWFrac: 0.3, P99Budget: 60 * sim.Millisecond}
	}
	return SLA{MinBWFrac: 0.2, P99Budget: 150 * sim.Millisecond}
}

// Store key suffixes, relative to /local/domain/<dom>/sla (build the
// absolute paths with store.SLAKey). docs/STORE_KEYS.md indexes them.
const (
	// KeyTier (string) — the guest's declared tier ("gold", "silver",
	// "bronze"); written by the operator/toolstack before the guest is
	// attached, read once at admission.
	KeyTier = "tier"
	// KeyMinBWFrac (float) — declared minimum bandwidth fraction,
	// overriding the tier default when > 0.
	KeyMinBWFrac = "min_bw_frac"
	// KeyP99Ms (float) — declared p99 latency budget in milliseconds,
	// overriding the tier default when > 0.
	KeyP99Ms = "p99_ms"
	// KeyState (int) — the manager-published current G-state index
	// (0 = G0). The guest driver watches it and scales its congestion
	// thresholds to match; operators and the trace CLI read it too.
	KeyState = "state"
)

// PublishSLA declares a guest's tier and targets in the store — the
// toolstack half of the schema, called before the guest is attached so
// admission sees the declaration. Zero-valued SLA fields publish the
// tier defaults.
func PublishSLA(st *store.Store, dom store.DomID, tier Tier, sla SLA) {
	def := DefaultSLA(tier)
	if sla.MinBWFrac <= 0 {
		sla.MinBWFrac = def.MinBWFrac
	}
	if sla.P99Budget <= 0 {
		sla.P99Budget = def.P99Budget
	}
	st.Write(store.Dom0, store.SLAKey(dom, KeyTier), string(tier))
	st.WriteFloat(store.Dom0, store.SLAKey(dom, KeyMinBWFrac), sla.MinBWFrac)
	st.WriteFloat(store.Dom0, store.SLAKey(dom, KeyP99Ms), float64(sla.P99Budget)/1e6)
}

// ReadSLA reads a guest's declared tier and targets, applying tier
// defaults for missing or unparseable keys. A guest with no /sla
// subtree at all reads as (Bronze, bronze defaults).
func ReadSLA(st *store.Store, dom store.DomID) (Tier, SLA) {
	raw, _ := st.Read(store.Dom0, store.SLAKey(dom, KeyTier))
	tier := ParseTier(raw)
	sla := DefaultSLA(tier)
	if f, err := st.ReadFloat(store.Dom0, store.SLAKey(dom, KeyMinBWFrac), 0); err == nil && f > 0 {
		sla.MinBWFrac = f
	}
	if f, err := st.ReadFloat(store.Dom0, store.SLAKey(dom, KeyP99Ms), 0); err == nil && f > 0 {
		sla.P99Budget = sim.Duration(f * 1e6)
	}
	return tier, sla
}

// sortedDoms returns a map's domain keys in ascending order, the
// deterministic iteration every selection loop in this package uses
// (map order would otherwise leak into victim choice and the trace).
func sortedDoms[V any](m map[store.DomID]V) []store.DomID {
	out := make([]store.DomID, 0, len(m))
	for dom := range m {
		out = append(out, dom)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

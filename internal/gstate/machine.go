package gstate

import "iorchestra/internal/store"

// State is one discrete performance state, G0 (full speed) down to G3
// (deep throttle) — IOTune's elastic-driver ladder. A state maps to a
// proportional-share weight at the host cgroup and a congestion-
// threshold scale inside the guest.
type State int

// The four G-states.
const (
	G0 State = iota // full speed
	G1              // light throttle
	G2              // heavy throttle
	G3              // deep throttle
)

// MaxState is the deepest throttle.
const MaxState = G3

// String names the state.
func (s State) String() string {
	switch s {
	case G0:
		return "G0"
	case G1:
		return "G1"
	case G2:
		return "G2"
	case G3:
		return "G3"
	}
	return "G?"
}

// Weight is the state's fraction of full-speed device access: the
// proportional-share weight the controller applies at the host cgroup
// (G0 guests keep the cgroup default of 1.0) and the scale the guest
// driver applies to its congestion thresholds.
func (s State) Weight() float64 {
	switch s {
	case G0:
		return 1.0
	case G1:
		return 0.6
	case G2:
		return 0.35
	}
	return 0.15
}

// Floor is the deepest state a tier may be demoted to: gold is never
// pushed past a light throttle, bronze absorbs the full ladder. The
// asymmetry is the admission-control contract — bronze degrades before
// silver before gold.
func (t Tier) Floor() State {
	switch t {
	case Gold:
		return G1
	case Silver:
		return G2
	}
	return G3
}

// Machine tracks every admitted guest's tier and current G-state and
// picks demotion/promotion victims deterministically. It is pure
// bookkeeping: the controller owns measurements, hysteresis and
// actuation.
type Machine struct {
	guests map[store.DomID]*slot
}

type slot struct {
	tier  Tier
	sla   SLA
	state State
}

// NewMachine returns an empty machine.
func NewMachine() *Machine {
	return &Machine{guests: map[store.DomID]*slot{}}
}

// Add admits a guest at G0 with its declared tier and targets. Re-adding
// an existing guest resets it to G0.
func (ma *Machine) Add(dom store.DomID, tier Tier, sla SLA) {
	ma.guests[dom] = &slot{tier: tier, sla: sla, state: G0}
}

// Remove forgets a guest; safe for guests never added.
func (ma *Machine) Remove(dom store.DomID) { delete(ma.guests, dom) }

// Has reports whether dom is admitted.
func (ma *Machine) Has(dom store.DomID) bool { return ma.guests[dom] != nil }

// Len reports the number of admitted guests.
func (ma *Machine) Len() int { return len(ma.guests) }

// Tier reports dom's tier (Bronze for unknown guests).
func (ma *Machine) Tier(dom store.DomID) Tier {
	if s := ma.guests[dom]; s != nil {
		return s.tier
	}
	return Bronze
}

// SLA reports dom's admitted targets (bronze defaults for unknown).
func (ma *Machine) SLA(dom store.DomID) SLA {
	if s := ma.guests[dom]; s != nil {
		return s.sla
	}
	return DefaultSLA(Bronze)
}

// State reports dom's current G-state (G0 for unknown guests).
func (ma *Machine) State(dom store.DomID) State {
	if s := ma.guests[dom]; s != nil {
		return s.state
	}
	return G0
}

// Doms lists admitted guests in ascending domain order.
func (ma *Machine) Doms() []store.DomID { return sortedDoms(ma.guests) }

// AnyDemoted reports whether any guest sits below G0 — the condition
// under which relief should promote before admission resumes.
func (ma *Machine) AnyDemoted() bool {
	for _, s := range ma.guests {
		if s.state > G0 {
			return true
		}
	}
	return false
}

// Demote picks and applies one demotion step, returning the victim and
// its new state. Victim order: the weakest tier first (bronze before
// silver before gold), within a tier the least-demoted guest first — so
// pressure spreads across a tier before any one guest hits the floor —
// ties to the lowest domain id. Guests already at their tier's floor
// are never picked; ok=false means every guest is floored.
func (ma *Machine) Demote() (dom store.DomID, st State, ok bool) {
	var victim *slot
	for _, d := range sortedDoms(ma.guests) {
		s := ma.guests[d]
		if s.state >= s.tier.Floor() {
			continue
		}
		if victim == nil ||
			s.tier.Rank() < victim.tier.Rank() ||
			(s.tier.Rank() == victim.tier.Rank() && s.state < victim.state) {
			victim, dom = s, d
		}
	}
	if victim == nil {
		return 0, G0, false
	}
	victim.state++
	return dom, victim.state, true
}

// Promote picks and applies one promotion step, returning the guest and
// its new state. Mirror order of Demote: the strongest tier first (gold
// recovers before silver before bronze), within a tier the most-demoted
// guest first, ties to the lowest domain id. ok=false means every guest
// already runs at G0.
func (ma *Machine) Promote() (dom store.DomID, st State, ok bool) {
	var pick *slot
	for _, d := range sortedDoms(ma.guests) {
		s := ma.guests[d]
		if s.state == G0 {
			continue
		}
		if pick == nil ||
			s.tier.Rank() > pick.tier.Rank() ||
			(s.tier.Rank() == pick.tier.Rank() && s.state > pick.state) {
			pick, dom = s, d
		}
	}
	if pick == nil {
		return 0, G0, false
	}
	pick.state--
	return dom, pick.state, true
}

package gstate

import (
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Meter is the SLA-violation instrument: it turns the controller's
// per-tick per-guest violation verdicts into the metrics the tiered
// experiments report — per-tier violation counts (episode onsets),
// accrued violation-seconds, and a histogram of completed episode
// durations. The controller mirrors every onset with a gstate.violation
// trace event and its counter (the 1:1 contract the tracecounter vet
// pass enforces); the meter itself is pure accounting.
type Meter struct {
	tiers map[Tier]*tierStats
	open  map[store.DomID]*episode
}

type tierStats struct {
	violations uint64
	violNanos  float64
	episodes   *metrics.Histogram
}

type episode struct {
	tier  Tier
	since sim.Time
	last  sim.Time
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{tiers: map[Tier]*tierStats{}, open: map[store.DomID]*episode{}}
}

func (me *Meter) tier(t Tier) *tierStats {
	ts := me.tiers[t]
	if ts == nil {
		ts = &tierStats{episodes: metrics.NewHistogram()}
		me.tiers[t] = ts
	}
	return ts
}

// Observe folds one verdict in: violating opens (or extends) dom's
// episode, accruing wall time since the last observation; a clean
// verdict closes any open episode. It reports whether this observation
// opened a new episode — the onset the controller traces and counts.
func (me *Meter) Observe(dom store.DomID, t Tier, violating bool, now sim.Time) (onset bool) {
	ep := me.open[dom]
	if violating {
		if ep == nil {
			me.open[dom] = &episode{tier: t, since: now, last: now}
			me.tier(t).violations++
			return true
		}
		me.tier(ep.tier).violNanos += float64(now - ep.last)
		ep.last = now
		return false
	}
	if ep != nil {
		me.close(dom, ep, now)
	}
	return false
}

// Forget closes dom's open episode (accruing up to now) and drops it —
// the detach path, so a removed guest's half-open violation still lands
// in the books.
func (me *Meter) Forget(dom store.DomID, now sim.Time) {
	if ep := me.open[dom]; ep != nil {
		me.close(dom, ep, now)
	}
}

// CloseAll closes every open episode at now — called at the end of an
// experiment so in-flight violation time is counted.
func (me *Meter) CloseAll(now sim.Time) {
	for _, dom := range sortedDoms(me.open) {
		me.close(dom, me.open[dom], now)
	}
}

func (me *Meter) close(dom store.DomID, ep *episode, now sim.Time) {
	ts := me.tier(ep.tier)
	ts.violNanos += float64(now - ep.last)
	ts.episodes.Record(sim.Time(now - ep.since))
	delete(me.open, dom)
}

// Violating reports whether dom has an open violation episode.
func (me *Meter) Violating(dom store.DomID) bool { return me.open[dom] != nil }

// AnyViolating reports whether any guest of tier t is currently in
// violation — the admission gate's input (new bronze arrivals are
// deferred while gold is violating).
func (me *Meter) AnyViolating(t Tier) bool {
	for _, ep := range me.open {
		if ep.tier == t {
			return true
		}
	}
	return false
}

// Violations reports the number of violation episodes opened for tier t.
func (me *Meter) Violations(t Tier) uint64 {
	if ts := me.tiers[t]; ts != nil {
		return ts.violations
	}
	return 0
}

// ViolationSeconds reports tier t's total accrued violation time in
// seconds (open episodes count up to their last observation; call
// CloseAll first for final numbers).
func (me *Meter) ViolationSeconds(t Tier) float64 {
	if ts := me.tiers[t]; ts != nil {
		return ts.violNanos / 1e9
	}
	return 0
}

// Episodes reports the histogram of completed episode durations for
// tier t (empty, never nil, when the tier has none).
func (me *Meter) Episodes(t Tier) *metrics.Histogram { return me.tier(t).episodes }

package gstate

import (
	"testing"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

func TestParseTierDefaultsToBronze(t *testing.T) {
	for raw, want := range map[string]Tier{
		"gold": Gold, "silver": Silver, "bronze": Bronze,
		"": Bronze, "platinum": Bronze,
	} {
		if got := ParseTier(raw); got != want {
			t.Errorf("ParseTier(%q) = %v, want %v", raw, got, want)
		}
	}
}

func TestTierOrdering(t *testing.T) {
	if !(Bronze.Rank() < Silver.Rank() && Silver.Rank() < Gold.Rank()) {
		t.Fatal("tier ranks must order bronze < silver < gold")
	}
	if !(Gold.Floor() < Silver.Floor() && Silver.Floor() < Bronze.Floor()) {
		t.Fatal("tier floors must deepen bronze-ward")
	}
	if Bronze.Floor() != MaxState {
		t.Fatalf("bronze floor = %v, want %v", Bronze.Floor(), MaxState)
	}
}

func TestStateWeightsMonotone(t *testing.T) {
	prev := 2.0
	for s := G0; s <= G3; s++ {
		w := s.Weight()
		if w <= 0 || w >= prev {
			t.Fatalf("state %v weight %v not strictly decreasing from %v", s, w, prev)
		}
		prev = w
	}
	if G0.Weight() != 1.0 {
		t.Fatalf("G0 weight = %v, want 1.0", G0.Weight())
	}
}

// TestDefaultSLAMetersDemotionFloor pins the deliberate overlap the
// violation metric depends on: bronze parked at its floor state is in
// bandwidth violation, gold and silver at their floors are not.
func TestDefaultSLAMetersDemotionFloor(t *testing.T) {
	for tier, wantViolating := range map[Tier]bool{
		Gold: false, Silver: false, Bronze: true,
	} {
		w := tier.Floor().Weight()
		if violating := w < DefaultSLA(tier).MinBWFrac; violating != wantViolating {
			t.Errorf("%s at floor %v: weight %v vs MinBWFrac %v -> violating=%v, want %v",
				tier, tier.Floor(), w, DefaultSLA(tier).MinBWFrac, violating, wantViolating)
		}
	}
}

// TestMachineVictimOrder walks the full demotion ladder for one guest
// per tier and checks bronze drains to its floor before silver is
// touched, silver before gold, and promotion recovers in mirror order.
func TestMachineVictimOrder(t *testing.T) {
	ma := NewMachine()
	ma.Add(1, Gold, DefaultSLA(Gold))
	ma.Add(2, Silver, DefaultSLA(Silver))
	ma.Add(3, Bronze, DefaultSLA(Bronze))

	type step struct {
		dom store.DomID
		st  State
	}
	var got []step
	for {
		dom, st, ok := ma.Demote()
		if !ok {
			break
		}
		got = append(got, step{dom, st})
	}
	want := []step{
		{3, G1}, {3, G2}, {3, G3}, // bronze first, to its floor
		{2, G1}, {2, G2}, // then silver
		{1, G1}, // gold last, only to its shallow floor
	}
	if len(got) != len(want) {
		t.Fatalf("demotion ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("demotion step %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}

	got = got[:0]
	for {
		dom, st, ok := ma.Promote()
		if !ok {
			break
		}
		got = append(got, step{dom, st})
	}
	want = []step{
		{1, G0},          // gold recovers first
		{2, G1}, {2, G0}, // then silver, most-demoted steps first
		{3, G2}, {3, G1}, {3, G0},
	}
	if len(got) != len(want) {
		t.Fatalf("promotion ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("promotion step %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if ma.AnyDemoted() {
		t.Fatal("machine still demoted after full promotion ladder")
	}
}

// TestMachineSpreadsWithinTier: with two bronze guests, demotion
// alternates between them instead of pushing one to the floor.
func TestMachineSpreadsWithinTier(t *testing.T) {
	ma := NewMachine()
	ma.Add(5, Bronze, DefaultSLA(Bronze))
	ma.Add(7, Bronze, DefaultSLA(Bronze))
	order := []store.DomID{5, 7, 5, 7, 5, 7}
	for i, want := range order {
		dom, _, ok := ma.Demote()
		if !ok || dom != want {
			t.Fatalf("demotion %d hit dom%d (ok=%v), want dom%d", i, dom, ok, want)
		}
	}
	if _, _, ok := ma.Demote(); ok {
		t.Fatal("demotion past every floor should report ok=false")
	}
}

func TestMeterAccrual(t *testing.T) {
	me := NewMeter()
	sec := sim.Time(sim.Second)
	if onset := me.Observe(1, Bronze, true, 10*sec); !onset {
		t.Fatal("first violating observation must be an onset")
	}
	if onset := me.Observe(1, Bronze, true, 12*sec); onset {
		t.Fatal("continued violation must not re-count the onset")
	}
	me.Observe(1, Bronze, false, 13*sec)
	if got := me.ViolationSeconds(Bronze); got != 3 {
		t.Fatalf("bronze violation-seconds = %v, want 3", got)
	}
	if got := me.Violations(Bronze); got != 1 {
		t.Fatalf("bronze violations = %d, want 1", got)
	}
	if n := me.Episodes(Bronze).Count(); n != 1 {
		t.Fatalf("bronze episodes = %d, want 1", n)
	}
	// A second episode, left open, then force-closed.
	me.Observe(1, Bronze, true, 20*sec)
	me.Observe(1, Bronze, true, 21*sec)
	if !me.AnyViolating(Bronze) || me.AnyViolating(Gold) {
		t.Fatal("open-episode tier attribution wrong")
	}
	me.CloseAll(25 * sec)
	if got := me.ViolationSeconds(Bronze); got != 8 {
		t.Fatalf("bronze violation-seconds after close = %v, want 8", got)
	}
	if me.AnyViolating(Bronze) {
		t.Fatal("CloseAll left an episode open")
	}
}

func TestSLASchemaRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	st := store.New(k, 0)
	st.AddDomain(3)
	PublishSLA(st, 3, Gold, SLA{})
	tier, sla := ReadSLA(st, 3)
	if tier != Gold || sla != DefaultSLA(Gold) {
		t.Fatalf("round trip = (%v, %+v), want gold defaults", tier, sla)
	}
	// Declared overrides survive.
	PublishSLA(st, 3, Silver, SLA{MinBWFrac: 0.42, P99Budget: 9 * sim.Millisecond})
	tier, sla = ReadSLA(st, 3)
	if tier != Silver || sla.MinBWFrac != 0.42 || sla.P99Budget != 9*sim.Millisecond {
		t.Fatalf("override round trip = (%v, %+v)", tier, sla)
	}
	// Undeclared guest: bronze defaults.
	st.AddDomain(4)
	tier, sla = ReadSLA(st, 4)
	if tier != Bronze || sla != DefaultSLA(Bronze) {
		t.Fatalf("undeclared guest = (%v, %+v), want bronze defaults", tier, sla)
	}
}

package blkio

import (
	"testing"

	"iorchestra/internal/device"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// instantLower completes requests after a fixed service delay.
type instantLower struct {
	k     *sim.Kernel
	delay sim.Duration
	seen  int
}

func (l *instantLower) Dispatch(r *device.Request) {
	l.seen++
	l.k.After(l.delay, r.Done)
}

func mkQueue(k *sim.Kernel, cfg Config, delay sim.Duration) (*Queue, *instantLower) {
	lower := &instantLower{k: k, delay: delay}
	q := NewQueue(k, cfg, stats.NewStream(1, "q"), lower)
	return q, lower
}

func TestSubmitCompletesThroughLower(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{Name: "xvda"}, sim.Millisecond)
	done := false
	q.Submit(&device.Request{Op: device.Read, Size: 4096, Done: func() { done = true }})
	k.Run()
	if !done || lower.seen != 1 {
		t.Fatalf("done=%v seen=%d", done, lower.seen)
	}
	if q.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", q.Pending())
	}
	if q.Completed() != 1 || q.Submitted() != 1 {
		t.Fatalf("counters: %d/%d", q.Completed(), q.Submitted())
	}
	if q.Latency().Count() != 1 || q.Latency().Mean() < sim.Millisecond {
		t.Fatalf("latency histogram: %v", q.Latency())
	}
}

func TestDispatchWindowBounded(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{DispatchWindow: 4}, sim.Second)
	for i := 0; i < 10; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1}) // non-sequential: no merge
	}
	if lower.seen != 4 {
		t.Fatalf("dispatched %d, want window 4", lower.seen)
	}
	k.RunUntil(1500 * sim.Millisecond)
	if lower.seen != 8 {
		t.Fatalf("dispatched %d after first batch completes, want 8", lower.seen)
	}
	k.Run()
}

func TestCongestionAvoidanceEngagesAndThrottles(t *testing.T) {
	k := sim.NewKernel()
	// Limit 16: on at 14, off below 13.
	q, _ := mkQueue(k, Config{Limit: 16, DispatchWindow: 1}, 10*sim.Millisecond)
	for i := 0; i < 14; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	}
	if !q.AvoidanceEngaged() {
		t.Fatalf("avoidance not engaged at %d/16", q.Pending())
	}
	// Next submission parks its producer.
	accepted := false
	q.Submit(&device.Request{Op: device.Read, Size: 1, Done: func() { accepted = true }})
	if q.ThrottledProducers() != 1 {
		t.Fatalf("ThrottledProducers = %d", q.ThrottledProducers())
	}
	if q.Throttled() != 1 {
		t.Fatalf("Throttled = %d", q.Throttled())
	}
	k.Run()
	if !accepted {
		t.Fatal("throttled producer never completed")
	}
	if q.AvoidanceEngaged() {
		t.Fatal("avoidance still engaged after drain")
	}
}

func TestOffThresholdWakesProducers(t *testing.T) {
	k := sim.NewKernel()
	q, _ := mkQueue(k, Config{Limit: 16, DispatchWindow: 2}, 5*sim.Millisecond)
	for i := 0; i < 14; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	}
	var wokenAt sim.Time
	q.Submit(&device.Request{Op: device.Read, Size: 1, Done: func() {}})
	// Track when the parked producer resubmits by watching Pending rise
	// back; instead observe completion count progresses past 14.
	k.Run()
	if q.Completed() != 15 {
		t.Fatalf("Completed = %d, want 15", q.Completed())
	}
	_ = wokenAt
}

// vetoController never engages avoidance — approximating a perfectly
// informed guest.
type vetoController struct{ asked int }

func (c *vetoController) OnCongested(*Queue) bool { c.asked++; return false }
func (c *vetoController) OnUncongested(*Queue)    {}

func TestControllerVetoPreventsThrottling(t *testing.T) {
	k := sim.NewKernel()
	ctl := &vetoController{}
	lower := &instantLower{k: k, delay: 10 * sim.Millisecond}
	q := NewQueue(k, Config{Limit: 16, DispatchWindow: 1, Controller: ctl}, stats.NewStream(2, "q"), lower)
	// 15 requests: above the on-threshold (14) but below the hard limit.
	for i := 0; i < 15; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	}
	if q.AvoidanceEngaged() {
		t.Fatal("avoidance engaged despite veto")
	}
	if ctl.asked == 0 {
		t.Fatal("controller never consulted")
	}
	if q.ThrottledProducers() != 0 {
		t.Fatalf("producers throttled despite veto: %d", q.ThrottledProducers())
	}
	k.Run()
}

func TestHardFullAlwaysSleeps(t *testing.T) {
	k := sim.NewKernel()
	ctl := &vetoController{}
	lower := &instantLower{k: k, delay: 10 * sim.Millisecond}
	q := NewQueue(k, Config{Limit: 8, DispatchWindow: 1, Controller: ctl}, stats.NewStream(3, "q"), lower)
	for i := 0; i < 10; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	}
	// 8 fill the queue; 2 sleep on hard-full even with avoidance vetoed.
	if q.ThrottledProducers() != 2 {
		t.Fatalf("hard-full sleepers = %d, want 2", q.ThrottledProducers())
	}
	k.Run()
	if q.Completed() != 10 {
		t.Fatalf("Completed = %d", q.Completed())
	}
}

func TestReleaseWakesFIFOWithStagger(t *testing.T) {
	k := sim.NewKernel()
	q, _ := mkQueue(k, Config{Limit: 16, DispatchWindow: 1, WakeMin: sim.Microsecond, WakeMax: 2 * sim.Microsecond}, sim.Second)
	for i := 0; i < 14; i++ {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	}
	if !q.AvoidanceEngaged() {
		t.Fatal("setup: avoidance should be engaged")
	}
	q.Submit(&device.Request{Op: device.Read, Size: 1})
	q.Submit(&device.Request{Op: device.Read, Size: 1})
	if q.ThrottledProducers() != 2 {
		t.Fatalf("setup: throttled = %d", q.ThrottledProducers())
	}
	q.Release(func(i int) sim.Duration { return sim.Duration(i) * 10 * sim.Millisecond })
	if q.AvoidanceEngaged() {
		t.Fatal("Release did not lift avoidance")
	}
	if q.ThrottledProducers() != 0 {
		t.Fatalf("Release left %d sleepers", q.ThrottledProducers())
	}
	k.Run()
}

func TestMergingCombinesSequential(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{DispatchWindow: 1, MaxMerge: 1 << 20}, 10*sim.Millisecond)
	doneCount := 0
	// First request dispatches immediately (window 1); the next three
	// sequential requests queue and merge into one.
	for i := 0; i < 4; i++ {
		q.Submit(&device.Request{Op: device.Write, Size: 64 << 10, Sequential: true,
			Done: func() { doneCount++ }})
	}
	k.Run()
	if doneCount != 4 {
		t.Fatalf("doneCount = %d, want all four callbacks", doneCount)
	}
	if lower.seen != 2 {
		t.Fatalf("lower saw %d requests, want 2 (1 direct + 1 merged)", lower.seen)
	}
	if q.Merged() != 2 {
		t.Fatalf("Merged = %d, want 2", q.Merged())
	}
}

func TestMergeRespectsMaxAndDirection(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{DispatchWindow: 1, MaxMerge: 100 << 10}, 10*sim.Millisecond)
	q.Submit(&device.Request{Op: device.Write, Size: 4096, Sequential: true})     // in flight
	q.Submit(&device.Request{Op: device.Write, Size: 64 << 10, Sequential: true}) // queued
	q.Submit(&device.Request{Op: device.Write, Size: 64 << 10, Sequential: true}) // too big to merge
	q.Submit(&device.Request{Op: device.Read, Size: 1 << 10, Sequential: true})   // wrong direction
	q.Submit(&device.Request{Op: device.Write, Size: 1 << 10, Sequential: false}) // not sequential
	k.Run()
	if q.Merged() != 0 {
		t.Fatalf("Merged = %d, want 0", q.Merged())
	}
	if lower.seen != 5 {
		t.Fatalf("lower saw %d", lower.seen)
	}
}

func TestPluggingDelaysAndBatches(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{PlugDelay: 3 * sim.Millisecond, PlugBatch: 4, MaxMerge: 1}, sim.Microsecond)
	k.At(sim.Millisecond, func() {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
	})
	k.RunUntil(2 * sim.Millisecond)
	if lower.seen != 0 {
		t.Fatal("plugged queue dispatched early")
	}
	k.RunUntil(5 * sim.Millisecond)
	if lower.seen != 1 {
		t.Fatalf("plug timer did not flush: seen=%d", lower.seen)
	}
	k.Run()

	// Batch-triggered unplug: 4 rapid submissions flush before the timer.
	k2 := sim.NewKernel()
	q2, lower2 := mkQueue(k2, Config{PlugDelay: sim.Second, PlugBatch: 4, MaxMerge: 1}, sim.Microsecond)
	k2.At(sim.Millisecond, func() {
		for i := 0; i < 4; i++ {
			q2.Submit(&device.Request{Op: device.Read, Size: 1})
		}
	})
	k2.RunUntil(10 * sim.Millisecond)
	if lower2.seen != 4 {
		t.Fatalf("batch unplug: seen=%d, want 4", lower2.seen)
	}
}

func TestUnplugFlushesImmediately(t *testing.T) {
	k := sim.NewKernel()
	q, lower := mkQueue(k, Config{PlugDelay: sim.Second, PlugBatch: 100, MaxMerge: 1}, sim.Microsecond)
	k.At(sim.Millisecond, func() {
		q.Submit(&device.Request{Op: device.Read, Size: 1})
		q.Unplug()
	})
	k.RunUntil(2 * sim.Millisecond)
	if lower.seen != 1 {
		t.Fatalf("Unplug did not flush: seen=%d", lower.seen)
	}
	k.Run()
}

func TestQueueLatencyRecorded(t *testing.T) {
	k := sim.NewKernel()
	q, _ := mkQueue(k, Config{DispatchWindow: 1}, 10*sim.Millisecond)
	q.Submit(&device.Request{Op: device.Read, Size: 1})
	q.Submit(&device.Request{Op: device.Read, Size: 1})
	k.Run()
	if q.QueueLatency().Count() != 2 {
		t.Fatalf("QueueLatency count = %d", q.QueueLatency().Count())
	}
	// Second request waited ~10ms behind the first.
	if q.QueueLatency().Max() < 9*sim.Millisecond {
		t.Fatalf("QueueLatency max = %v", q.QueueLatency().Max())
	}
}

func TestNOOPSchedulerFIFO(t *testing.T) {
	s := NewNOOP()
	a := &device.Request{Op: device.Read, Size: 1}
	b := &device.Request{Op: device.Read, Size: 2}
	s.Add(a)
	s.Add(b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Next(0); got != a {
		t.Fatal("NOOP not FIFO")
	}
	if got := s.Next(0); got != b {
		t.Fatal("NOOP not FIFO")
	}
	if s.Next(0) != nil {
		t.Fatal("Next on empty != nil")
	}
}

func TestDeadlinePrefersReadsButAgesWrites(t *testing.T) {
	s := NewDeadline(20 * sim.Millisecond)
	w := &device.Request{Op: device.Write, Size: 1, Submitted: 0}
	r := &device.Request{Op: device.Read, Size: 1, Submitted: 5 * sim.Millisecond}
	s.Add(w)
	s.Add(r)
	// Fresh write: read goes first.
	if got := s.Next(10 * sim.Millisecond); got != r {
		t.Fatal("deadline did not prefer read")
	}
	s.Add(r)
	// Write now older than its deadline: it must win over the read.
	if got := s.Next(25 * sim.Millisecond); got != w {
		t.Fatal("deadline did not age write")
	}
	if got := s.Next(25 * sim.Millisecond); got != r {
		t.Fatal("remaining read lost")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDeadlineMergeSameDirection(t *testing.T) {
	s := NewDeadline(0)
	a := &device.Request{Op: device.Write, Size: 4096, Sequential: true}
	s.Add(a)
	b := &device.Request{Op: device.Write, Size: 4096, Sequential: true}
	if !s.Merge(b, 1<<20) {
		t.Fatal("merge failed")
	}
	if a.Size != 8192 {
		t.Fatalf("merged size = %d", a.Size)
	}
	c := &device.Request{Op: device.Read, Size: 4096, Sequential: true}
	if s.Merge(c, 1<<20) {
		t.Fatal("cross-direction merge succeeded")
	}
}

func TestMergedDoneCallbacksAllFire(t *testing.T) {
	s := NewNOOP()
	count := 0
	a := &device.Request{Op: device.Write, Size: 1, Sequential: true, Done: func() { count++ }}
	s.Add(a)
	for i := 0; i < 3; i++ {
		b := &device.Request{Op: device.Write, Size: 1, Sequential: true, Done: func() { count++ }}
		if !s.Merge(b, 1<<20) {
			t.Fatal("merge failed")
		}
	}
	got := s.Next(0)
	got.Done()
	if count != 4 {
		t.Fatalf("merged Done fired %d, want 4", count)
	}
}

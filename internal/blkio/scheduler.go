package blkio

import (
	"iorchestra/internal/device"
	"iorchestra/internal/sim"
)

// Scheduler orders queued requests for dispatch. Implementations mirror
// Linux elevators in spirit: NOOP (FIFO with back-merging) and Deadline
// (reads preferred, writes aged).
type Scheduler interface {
	// Merge attempts to absorb r into an already-queued request (back
	// merge); it reports whether the merge happened, in which case r's
	// Done is chained onto the absorbing request.
	Merge(r *device.Request, maxMerge int64) bool
	// Add enqueues r.
	Add(r *device.Request)
	// Next pops the request to dispatch now, or nil when empty.
	Next(now sim.Time) *device.Request
	// Len reports queued requests.
	Len() int
}

// NOOP is a FIFO elevator with back-merging of sequential same-direction
// requests — the scheduler virtualized guests typically run.
type NOOP struct {
	q []*device.Request
}

// NewNOOP returns an empty NOOP elevator.
func NewNOOP() *NOOP { return &NOOP{} }

// Merge implements Scheduler: r merges into the queue tail if both are
// sequential, same direction, and the combined size stays under maxMerge.
func (s *NOOP) Merge(r *device.Request, maxMerge int64) bool {
	if len(s.q) == 0 {
		return false
	}
	tail := s.q[len(s.q)-1]
	if !tail.Sequential || !r.Sequential || tail.Op != r.Op ||
		tail.Owner != r.Owner || tail.Stream != r.Stream {
		return false
	}
	if tail.Size+r.Size > maxMerge {
		return false
	}
	tail.Size += r.Size
	prev := tail.Done
	rd := r.Done
	tail.Done = func() {
		if prev != nil {
			prev()
		}
		if rd != nil {
			rd()
		}
	}
	return true
}

// Add implements Scheduler.
func (s *NOOP) Add(r *device.Request) { s.q = append(s.q, r) }

// Next implements Scheduler.
func (s *NOOP) Next(sim.Time) *device.Request {
	if len(s.q) == 0 {
		return nil
	}
	r := s.q[0]
	copy(s.q, s.q[1:])
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	return r
}

// Len implements Scheduler.
func (s *NOOP) Len() int { return len(s.q) }

// Deadline dispatches reads ahead of writes unless a write has waited
// longer than its deadline, preventing starvation — a simplified
// mq-deadline.
type Deadline struct {
	reads, writes []*device.Request
	readDeadline  sim.Duration
	writeDeadline sim.Duration
	added         map[*device.Request]sim.Time
	clock         func() sim.Time
}

// NewDeadline returns a deadline elevator with the given write deadline
// (default 50 ms when zero) and read deadline fixed at 10 ms.
func NewDeadline(writeDeadline sim.Duration) *Deadline {
	if writeDeadline <= 0 {
		writeDeadline = 50 * sim.Millisecond
	}
	return &Deadline{
		readDeadline:  10 * sim.Millisecond,
		writeDeadline: writeDeadline,
		added:         map[*device.Request]sim.Time{},
	}
}

// Merge implements Scheduler: back merge within the matching direction.
func (s *Deadline) Merge(r *device.Request, maxMerge int64) bool {
	var q []*device.Request
	if r.Op == device.Read {
		q = s.reads
	} else {
		q = s.writes
	}
	if len(q) == 0 {
		return false
	}
	tail := q[len(q)-1]
	if !tail.Sequential || !r.Sequential || tail.Owner != r.Owner ||
		tail.Stream != r.Stream || tail.Size+r.Size > maxMerge {
		return false
	}
	tail.Size += r.Size
	prev := tail.Done
	rd := r.Done
	tail.Done = func() {
		if prev != nil {
			prev()
		}
		if rd != nil {
			rd()
		}
	}
	return true
}

// Add implements Scheduler.
func (s *Deadline) Add(r *device.Request) {
	if r.Op == device.Read {
		s.reads = append(s.reads, r)
	} else {
		s.writes = append(s.writes, r)
	}
}

// Next implements Scheduler.
func (s *Deadline) Next(now sim.Time) *device.Request {
	// Expired write first.
	if len(s.writes) > 0 && now-s.writes[0].Submitted > s.writeDeadline {
		return popFront(&s.writes)
	}
	if len(s.reads) > 0 {
		return popFront(&s.reads)
	}
	if len(s.writes) > 0 {
		return popFront(&s.writes)
	}
	return nil
}

// Len implements Scheduler.
func (s *Deadline) Len() int { return len(s.reads) + len(s.writes) }

func popFront(q *[]*device.Request) *device.Request {
	r := (*q)[0]
	copy(*q, (*q)[1:])
	(*q)[len(*q)-1] = nil
	*q = (*q)[:len(*q)-1]
	return r
}

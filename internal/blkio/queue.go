// Package blkio models the guest block I/O layer: a bounded request queue
// with merging, plugging, pluggable dispatch scheduling, and — centrally
// for this paper — Linux's congestion-avoidance scheme, which throttles
// request producers when the queue crosses 7/8 of its limit and releases
// them below 13/16 (Sec. 2).
//
// The congestion decision is delegated to a CongestionController so the
// three systems under study differ only in that policy object: the
// baseline consults local state only, while IOrchestra's guest driver
// consults the host through the system store (Algorithm 2).
package blkio

import (
	"iorchestra/internal/device"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/trace"
)

// Lower is where dispatched requests go: in a guest this is the
// paravirtual frontend driver; in tests it may be a device directly.
type Lower interface {
	Dispatch(r *device.Request)
}

// LowerFunc adapts a function to the Lower interface.
type LowerFunc func(r *device.Request)

// Dispatch implements Lower.
func (f LowerFunc) Dispatch(r *device.Request) { f(r) }

// CongestionController decides how the queue reacts to crossing the
// congestion-on threshold.
type CongestionController interface {
	// OnCongested fires when pending crosses the on-threshold. Returning
	// true engages congestion avoidance (producers are put to sleep);
	// false leaves the queue unthrottled. Collaborative controllers may
	// return true now and call Queue.Release later.
	OnCongested(q *Queue) bool
	// OnUncongested fires when pending falls below the off-threshold
	// while avoidance is engaged.
	OnUncongested(q *Queue)
}

// LocalController reproduces stock Linux behaviour: avoidance engages
// purely on local queue depth. This is the baseline's semantics — and the
// source of the falsely-triggered throttling the paper measures.
type LocalController struct{}

// OnCongested implements CongestionController.
func (LocalController) OnCongested(*Queue) bool { return true }

// OnUncongested implements CongestionController.
func (LocalController) OnUncongested(*Queue) {}

// NeverController disables congestion avoidance entirely — the manual
// "congestion avoidance disabled" configuration of the paper's Sec. 2
// motivation test. Producers still sleep at the hard queue limit.
type NeverController struct{}

// OnCongested implements CongestionController.
func (NeverController) OnCongested(*Queue) bool { return false }

// OnUncongested implements CongestionController.
func (NeverController) OnUncongested(*Queue) {}

// Config parameterizes a queue.
type Config struct {
	// Name identifies the virtual device (e.g. "xvda").
	Name string
	// Limit is nr_requests (default 128).
	Limit int
	// DispatchWindow bounds requests in flight to the lower layer (the
	// ring size of the paravirtual device, default 32).
	DispatchWindow int
	// MaxMerge bounds the size of a merged request (default 512 KiB).
	MaxMerge int64
	// PlugDelay holds back dispatch briefly after the queue goes
	// non-empty so adjacent requests can merge (default 0 = no plugging).
	PlugDelay sim.Duration
	// PlugBatch unplugs early once this many requests are queued
	// (default 4, only meaningful with PlugDelay > 0).
	PlugBatch int
	// WakeMin/WakeMax bound the scheduler wake-up latency a producer
	// sleeping on a full queue pays when a slot frees (defaults
	// 200µs–2ms: an ordinary wait-queue wakeup).
	WakeMin, WakeMax sim.Duration
	// CongWakeMin/CongWakeMax bound the wake-up latency of producers put
	// to sleep by congestion *avoidance* — Linux parks them in
	// congestion_wait with jiffy-granularity timeouts, so these sleeps
	// are an order of magnitude costlier (defaults 2–20 ms). This
	// asymmetry is what makes falsely triggered avoidance so expensive
	// (Sec. 2). Collaborative Release wake-ups use the fast path: the
	// host's event-channel notification substitutes for the timeout.
	CongWakeMin, CongWakeMax sim.Duration
	// Controller decides congestion engagement (default LocalController).
	Controller CongestionController
	// Scheduler orders dispatches (default NOOP).
	Scheduler Scheduler
}

func (c *Config) fillDefaults() {
	if c.Limit <= 0 {
		c.Limit = device.DefaultQueueLimit
	}
	if c.DispatchWindow <= 0 {
		c.DispatchWindow = 32
	}
	if c.MaxMerge <= 0 {
		c.MaxMerge = 512 << 10
	}
	if c.PlugBatch <= 0 {
		c.PlugBatch = 4
	}
	if c.WakeMin <= 0 {
		c.WakeMin = 200 * sim.Microsecond
	}
	if c.WakeMax <= c.WakeMin {
		c.WakeMax = c.WakeMin + 2*sim.Millisecond
	}
	if c.CongWakeMin <= 0 {
		c.CongWakeMin = 10 * sim.Millisecond
	}
	if c.CongWakeMax <= c.CongWakeMin {
		// congestion_wait(BLK_RW_ASYNC, HZ/10) sleeps up to 100 ms.
		c.CongWakeMax = c.CongWakeMin + 90*sim.Millisecond
	}
	if c.Controller == nil {
		c.Controller = LocalController{}
	}
	if c.Scheduler == nil {
		c.Scheduler = NewNOOP()
	}
}

// queued wraps a request while it sits in the scheduler.
type queued struct {
	req *device.Request
	// mergedDones collects completion callbacks of merged requests.
	mergedDones []func()
}

// Queue is one virtual device's block layer.
type Queue struct {
	k     *sim.Kernel
	cfg   Config
	rng   *stats.Stream
	lower Lower

	pending    int // queued in scheduler + in flight below
	inFlight   int
	avoidance  bool
	plugged    bool
	plugEvent  *sim.Event
	plugCount  int
	producers  *sim.WaitQueue
	fullSleeps *sim.WaitQueue

	// Stats.
	submitted    uint64
	completedN   uint64
	merged       uint64
	throttled    uint64
	latency      *metrics.Histogram
	queueLatency *metrics.Histogram

	// rec, when set, receives congestion engage/release trace records
	// tagged with recDom (the owning domain).
	rec    *trace.Recorder
	recDom int

	// congestScale (0 = unscaled) shrinks the congestion thresholds
	// below the stock 7/8 and 13/16 points — the per-guest
	// congestion-threshold actuation of the G-state subsystem
	// (docs/GSTATES.md): a demoted guest engages avoidance earlier, so
	// its producers feel backpressure before the shrunken device share
	// backs the queue up.
	congestScale float64
}

// NewQueue builds a block-layer queue dispatching to lower.
func NewQueue(k *sim.Kernel, cfg Config, rng *stats.Stream, lower Lower) *Queue {
	cfg.fillDefaults()
	q := &Queue{
		k:            k,
		cfg:          cfg,
		rng:          rng,
		lower:        lower,
		producers:    sim.NewWaitQueue(k),
		fullSleeps:   sim.NewWaitQueue(k),
		latency:      metrics.NewHistogram(),
		queueLatency: metrics.NewHistogram(),
	}
	return q
}

// Name identifies the queue's virtual device.
func (q *Queue) Name() string { return q.cfg.Name }

// SetController swaps the congestion controller at runtime — installing
// the IOrchestra guest driver is exactly this operation ("the guest OSes
// are integrated with IOrchestra's driver code", Sec. 2).
func (q *Queue) SetController(c CongestionController) {
	if c == nil {
		c = LocalController{}
	}
	q.cfg.Controller = c
}

// SetRecorder mirrors congestion-avoidance engagements and collaborative
// releases into the decision-trace recorder, tagged with the owning
// domain.
func (q *Queue) SetRecorder(r *trace.Recorder, dom int) {
	q.rec = r
	q.recDom = dom
}

// Pending reports queued plus in-flight requests.
func (q *Queue) Pending() int { return q.pending }

// Limit reports nr_requests.
func (q *Queue) Limit() int { return q.cfg.Limit }

// AvoidanceEngaged reports whether congestion avoidance is active.
func (q *Queue) AvoidanceEngaged() bool { return q.avoidance }

// ThrottledProducers reports how many producer continuations are asleep.
func (q *Queue) ThrottledProducers() int { return q.producers.Len() + q.fullSleeps.Len() }

// Submitted, Completed, Merged, Throttled expose lifetime counters.
func (q *Queue) Submitted() uint64 { return q.submitted }

// Completed reports completed requests.
func (q *Queue) Completed() uint64 { return q.completedN }

// Merged reports requests absorbed by merging.
func (q *Queue) Merged() uint64 { return q.merged }

// Throttled reports producer sleeps caused by congestion avoidance.
func (q *Queue) Throttled() uint64 { return q.throttled }

// Latency exposes the end-to-end (submit→complete) histogram.
func (q *Queue) Latency() *metrics.Histogram { return q.latency }

// QueueLatency exposes the submit→dispatch histogram.
func (q *Queue) QueueLatency() *metrics.Histogram { return q.queueLatency }

// SetCongestScale scales both congestion thresholds by f in (0, 1] —
// the guest driver applies its published G-state weight here, so a
// demoted guest self-throttles at a proportionally smaller backlog.
// Values outside (0, 1] reset to unscaled. Already-parked producers are
// unaffected; the new thresholds apply from the next submission.
func (q *Queue) SetCongestScale(f float64) {
	if f <= 0 || f >= 1 {
		f = 0
	}
	q.congestScale = f
}

// CongestScale reports the active threshold scale (0 = unscaled).
func (q *Queue) CongestScale() float64 { return q.congestScale }

// onThreshold and offThreshold are the Linux 7/8 and 13/16 points,
// shrunk by the G-state congestion scale when one is set. The scaled
// on-threshold never drops below 1, and both scale by the same factor
// so engage stays at or above release.
func (q *Queue) onThreshold() int {
	t := q.cfg.Limit * device.CongestedOnNum / device.CongestedOnDen
	if q.congestScale > 0 {
		if t = int(float64(t) * q.congestScale); t < 1 {
			t = 1
		}
	}
	return t
}
func (q *Queue) offThreshold() int {
	t := q.cfg.Limit * device.CongestedOffNum / device.CongestedOffDen
	if q.congestScale > 0 {
		t = int(float64(t) * q.congestScale)
	}
	return t
}

// Submit enqueues a request from a producer. If the queue is congested
// (and the controller engages avoidance) or full, the submission is
// parked and retried after wake-up — the producer only continues once the
// request has been accepted, which is how sleeping writers backpressure
// the application above.
func (q *Queue) Submit(r *device.Request) {
	q.submitted++
	q.trySubmit(r)
}

func (q *Queue) trySubmit(r *device.Request) {
	if q.pending >= q.cfg.Limit {
		// Hard full: the producer must sleep regardless of policy.
		q.throttled++
		q.fullSleeps.Wait(func() { q.trySubmit(r) })
		return
	}
	if q.avoidance {
		q.throttled++
		q.producers.Wait(func() { q.trySubmit(r) })
		return
	}
	q.accept(r)
	if !q.avoidance && q.pending >= q.onThreshold() {
		if q.cfg.Controller.OnCongested(q) {
			q.avoidance = true
			if q.rec != nil {
				q.rec.Record(trace.Record{
					Kind: trace.KindCongestEngage, Dom: q.recDom,
					Disk: q.cfg.Name, QueueDepth: q.pending,
				})
			}
		}
	}
}

func (q *Queue) accept(r *device.Request) {
	r.Submitted = q.k.Now()
	q.pending++
	if q.cfg.Scheduler.Merge(r, q.cfg.MaxMerge) {
		q.merged++
		q.pending-- // merged request occupies no extra slot
		return
	}
	q.cfg.Scheduler.Add(r)
	q.maybePlug()
	q.pump()
}

// maybePlug starts a plug window when the queue transitions to non-empty.
func (q *Queue) maybePlug() {
	if q.cfg.PlugDelay <= 0 || q.plugged || q.inFlight > 0 {
		return
	}
	if q.cfg.Scheduler.Len() != 1 {
		return
	}
	q.plugged = true
	q.plugCount = 0
	q.plugEvent = q.k.After(q.cfg.PlugDelay, func() {
		q.plugged = false
		q.pump()
	})
}

// Unplug releases a plug window immediately and pumps dispatches; the
// IOrchestra release path calls this ("unplug and flush the request
// queue", Sec. 3.2).
func (q *Queue) Unplug() {
	if q.plugged {
		q.plugged = false
		q.k.Cancel(q.plugEvent)
	}
	q.pump()
}

// pump dispatches while the window and plug state allow.
func (q *Queue) pump() {
	if q.plugged {
		q.plugCount++
		if q.plugCount < q.cfg.PlugBatch {
			return
		}
		q.plugged = false
		q.k.Cancel(q.plugEvent)
	}
	for q.inFlight < q.cfg.DispatchWindow {
		r := q.cfg.Scheduler.Next(q.k.Now())
		if r == nil {
			return
		}
		q.inFlight++
		q.queueLatency.Record(q.k.Now() - r.Submitted)
		orig := r.Done
		r.Done = func() { q.complete(r, orig) }
		q.lower.Dispatch(r)
	}
}

func (q *Queue) complete(r *device.Request, done func()) {
	now := q.k.Now()
	q.inFlight--
	q.pending--
	q.completedN++
	q.latency.Record(now - r.Submitted)
	if done != nil {
		done()
	}
	// Congestion-off check.
	if q.avoidance && q.pending < q.offThreshold() {
		q.avoidance = false
		q.cfg.Controller.OnUncongested(q)
		q.wakeProducers()
	}
	// Hard-full sleepers get priority for freed slots.
	if q.pending < q.cfg.Limit {
		q.fullSleeps.WakeOne(q.wakeDelay())
	}
	q.pump()
}

// wakeDelay draws the scheduler latency a producer sleeping on a freed
// slot pays.
func (q *Queue) wakeDelay() sim.Duration {
	if q.rng == nil {
		return q.cfg.WakeMin
	}
	return q.cfg.WakeMin + sim.Duration(q.rng.Int63n(int64(q.cfg.WakeMax-q.cfg.WakeMin)))
}

// congWakeDelay draws the congestion_wait-style timeout a producer parked
// by congestion avoidance pays before resuming.
func (q *Queue) congWakeDelay() sim.Duration {
	if q.rng == nil {
		return q.cfg.CongWakeMin
	}
	return q.cfg.CongWakeMin + sim.Duration(q.rng.Int63n(int64(q.cfg.CongWakeMax-q.cfg.CongWakeMin)))
}

func (q *Queue) wakeProducers() {
	// Waking everything at once recreates the burst; wake each with an
	// independent timeout-granularity delay, preserving FIFO order.
	for q.producers.Len() > 0 {
		q.producers.WakeOne(q.congWakeDelay())
	}
}

// Release is the collaborative-release entry point (Algorithm 2): the
// host has determined its I/O subsystem is not actually congested, so
// avoidance is lifted, the queue is unplugged and flushed, and sleeping
// producers are woken FIFO with the caller-supplied stagger between them.
func (q *Queue) Release(stagger func(i int) sim.Duration) {
	if q.rec != nil {
		q.rec.Record(trace.Record{
			Kind: trace.KindQueueRelease, Dom: q.recDom,
			Disk: q.cfg.Name, QueueDepth: q.pending,
		})
	}
	q.avoidance = false
	q.Unplug()
	i := 0
	for q.producers.Len() > 0 {
		d := q.wakeDelay()
		if stagger != nil {
			d += stagger(i)
		}
		q.producers.WakeOne(d)
		i++
	}
}

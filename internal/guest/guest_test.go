package guest

import (
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

func mkGuest(k *sim.Kernel, vcpus int) *Guest {
	return New(k, Config{ID: 1, VCPUs: vcpus, MemBytes: 1 << 30}, stats.NewStream(1, "g"))
}

// fakeLower completes dispatches after a delay.
func fakeLower(k *sim.Kernel, delay sim.Duration) blkio.Lower {
	return blkio.LowerFunc(func(r *device.Request) { k.After(delay, r.Done) })
}

func TestVCPUComputeFIFO(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	var order []int
	v := g.VCPU(0)
	v.Run(10*sim.Millisecond, func() { order = append(order, 1) })
	v.Run(5*sim.Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 15*sim.Millisecond {
		t.Fatalf("finished at %v, want 15ms", k.Now())
	}
}

func TestVCPUShareSlowsExecution(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	v := g.VCPU(0)
	v.SetShare(0.5)
	var doneAt sim.Time
	v.Run(10*sim.Millisecond, func() { doneAt = k.Now() })
	k.Run()
	if doneAt != 20*sim.Millisecond {
		t.Fatalf("half-share burst finished at %v, want 20ms", doneAt)
	}
	if v.Share() != 0.5 {
		t.Fatalf("Share = %v", v.Share())
	}
}

func TestVCPUUtilization(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	v := g.VCPU(0)
	v.Run(sim.Second, nil)
	k.Run()
	k.At(2*sim.Second, func() {})
	k.Run()
	if got := v.UtilFraction(k.Now()); got < 0.45 || got > 0.55 {
		t.Fatalf("UtilFraction = %v, want ~0.5", got)
	}
}

func TestProcessRoundRobinAssignment(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 4)
	for i := 0; i < 8; i++ {
		g.NewProcess(1)
	}
	for i, p := range g.Processes() {
		if p.VCPU().Index() != i%4 {
			t.Fatalf("proc %d on vcpu %d", i, p.VCPU().Index())
		}
	}
}

func TestProcessMoveAndSocketWeights(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 4)
	// Place VCPUs 0,1 on socket 0 and 2,3 on socket 1 (as a host would).
	g.VCPU(2).Socket = 1
	g.VCPU(3).Socket = 1
	p0 := g.NewProcess(2) // vcpu0, socket0
	p1 := g.NewProcess(3) // vcpu1, socket0
	p2 := g.NewProcess(5) // vcpu2, socket1
	w := g.ProcessWeightBySocket()
	if w[0] != 5 || w[1] != 5 {
		t.Fatalf("weights = %v", w)
	}
	if g.TotalProcessWeight() != 10 {
		t.Fatalf("total = %v", g.TotalProcessWeight())
	}
	p1.MoveTo(3)
	w = g.ProcessWeightBySocket()
	if w[0] != 2 || w[1] != 8 {
		t.Fatalf("weights after move = %v", w)
	}
	_ = p0
	_ = p2
	socks := g.Sockets()
	if len(socks) != 2 || socks[0] != 0 || socks[1] != 1 {
		t.Fatalf("Sockets = %v", socks)
	}
	if got := g.VCPUsOnSocket(1); len(got) != 2 {
		t.Fatalf("VCPUsOnSocket(1) = %v", got)
	}
}

func TestMoveToOutOfRangePanics(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 2)
	p := g.NewProcess(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MoveTo(5)
}

func TestAddDiskDefaultsAndLookup(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 2)
	v := g.AddDisk(DiskConfig{}, fakeLower(k, sim.Millisecond))
	if v.Name() != "xvda" {
		t.Fatalf("default name = %q", v.Name())
	}
	if g.Disk("xvda") != v {
		t.Fatal("Disk lookup failed")
	}
	if len(g.Disks()) != 1 {
		t.Fatal("Disks() wrong")
	}
	// Cache budget defaults to guest memory.
	if v.Cache.DirtyFraction() != 0 {
		t.Fatal("fresh cache dirty")
	}
	v.Cache.Close()
}

func TestVDiskReadCompletesWithLatency(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 2)
	v := g.AddDisk(DiskConfig{Name: "xvdb"}, fakeLower(k, 2*sim.Millisecond))
	p := g.NewProcess(1)
	done := false
	v.Read(p, 4096, false, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if v.ReadLatency().Count() != 1 {
		t.Fatalf("read latency samples = %d", v.ReadLatency().Count())
	}
	if v.ReadLatency().Mean() < 2*sim.Millisecond {
		t.Fatalf("read latency = %v, want >= 2ms", v.ReadLatency().Mean())
	}
	v.Cache.Close()
}

func TestVDiskCacheHitSkipsDevice(t *testing.T) {
	k := sim.NewKernel()
	g := New(k, Config{ID: 1, VCPUs: 1, MemBytes: 1 << 30, CacheHitFrac: 1.0}, stats.NewStream(2, "g"))
	dispatched := 0
	v := g.AddDisk(DiskConfig{}, blkio.LowerFunc(func(r *device.Request) {
		dispatched++
		k.After(sim.Millisecond, r.Done)
	}))
	p := g.NewProcess(1)
	done := false
	v.Read(p, 4096, false, func() { done = true })
	k.Run()
	if !done || dispatched != 0 {
		t.Fatalf("done=%v dispatched=%d, want hit served from memory", done, dispatched)
	}
	v.Cache.Close()
}

func TestVDiskBufferedWriteReturnsFast(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	v := g.AddDisk(DiskConfig{}, fakeLower(k, 50*sim.Millisecond))
	p := g.NewProcess(1)
	var returnedAt sim.Time
	v.Write(p, 1<<20, func() { returnedAt = k.Now() })
	k.RunUntil(10 * sim.Millisecond)
	if returnedAt == 0 || returnedAt > sim.Millisecond {
		t.Fatalf("buffered write returned at %v, want ≪1ms", returnedAt)
	}
	if v.WriteLatency().Count() != 1 {
		t.Fatal("write latency not recorded")
	}
	v.Cache.Close()
	k.Run()
}

func TestVDiskDirectWriteWaitsForDevice(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	v := g.AddDisk(DiskConfig{}, fakeLower(k, 5*sim.Millisecond))
	p := g.NewProcess(1)
	var returnedAt sim.Time
	v.DirectWrite(p, 4096, true, func() { returnedAt = k.Now() })
	k.Run()
	if returnedAt < 5*sim.Millisecond {
		t.Fatalf("direct write returned at %v, want >= 5ms", returnedAt)
	}
	v.Cache.Close()
}

func TestVDiskFsync(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 1)
	v := g.AddDisk(DiskConfig{}, fakeLower(k, sim.Millisecond))
	p := g.NewProcess(1)
	v.Write(p, 1<<20, nil)
	synced := false
	v.Fsync(func() { synced = true })
	k.RunUntil(sim.Second)
	if !synced {
		t.Fatal("Fsync never completed")
	}
	if v.Cache.DirtyPages() != 0 {
		t.Fatal("dirty pages after fsync")
	}
	v.Cache.Close()
}

func TestRequestsCarrySocketTag(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 2)
	g.VCPU(1).Socket = 1
	var gotSocket int
	v := g.AddDisk(DiskConfig{}, blkio.LowerFunc(func(r *device.Request) {
		gotSocket = r.Socket
		k.After(sim.Millisecond, r.Done)
	}))
	g.NewProcess(1)       // vcpu0
	p1 := g.NewProcess(1) // vcpu1 → socket 1
	v.Read(p1, 4096, false, nil)
	k.Run()
	if gotSocket != 1 {
		t.Fatalf("request socket = %d, want 1", gotSocket)
	}
	v.Cache.Close()
}

func TestMeanVCPUUtil(t *testing.T) {
	k := sim.NewKernel()
	g := mkGuest(k, 2)
	g.VCPU(0).Run(sim.Second, nil)
	k.Run()
	if got := g.MeanVCPUUtil(k.Now()); got < 0.45 || got > 0.55 {
		t.Fatalf("MeanVCPUUtil = %v", got)
	}
}

var _ = pagecache.PageSize // keep import available for config literals above

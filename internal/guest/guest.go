// Package guest models a guest VM's operating system as the paper's
// policies see it: VCPUs executing compute bursts, processes with I/O
// weights, and virtual disks combining a page cache with a block-layer
// queue that dispatches into a paravirtual frontend supplied by the host.
package guest

import (
	"fmt"
	"sort"

	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
)

// Config describes a guest VM.
type Config struct {
	// ID is the domain id (must be unique per host, > 0).
	ID store.DomID
	// VCPUs is the virtual CPU count.
	VCPUs int
	// MemBytes is guest memory; it bounds page-cache budgets.
	MemBytes int64
	// CacheHitFrac is the probability a read is served from the page
	// cache without device I/O (0 for the cold, data-intensive workloads
	// the paper studies).
	CacheHitFrac float64
}

// Guest is one VM.
type Guest struct {
	k   *sim.Kernel
	cfg Config
	rng *stats.Stream

	vcpus  []*VCPU
	vdisks map[string]*VDisk
	names  []string // vdisk names in creation order
	procs  []*Process
	nextPr int
}

// New builds a guest; disks are attached by the host via AddDisk.
func New(k *sim.Kernel, cfg Config, rng *stats.Stream) *Guest {
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 1 << 30
	}
	g := &Guest{k: k, cfg: cfg, rng: rng, vdisks: map[string]*VDisk{}}
	for i := 0; i < cfg.VCPUs; i++ {
		g.vcpus = append(g.vcpus, &VCPU{g: g, idx: i, share: 1})
	}
	return g
}

// ID reports the domain id.
func (g *Guest) ID() store.DomID { return g.cfg.ID }

// MemBytes reports configured guest memory.
func (g *Guest) MemBytes() int64 { return g.cfg.MemBytes }

// NumVCPUs reports the VCPU count.
func (g *Guest) NumVCPUs() int { return len(g.vcpus) }

// VCPU returns the i-th virtual CPU.
func (g *Guest) VCPU(i int) *VCPU { return g.vcpus[i] }

// ExecFunc executes a compute burst on behalf of a VCPU; the host installs
// one per VCPU to route bursts through the pinned physical core.
type ExecFunc func(d sim.Duration, done func())

// VCPU models one virtual CPU as a FIFO run queue of compute bursts. The
// host sets Socket at placement time; when Exec is installed, burst
// execution is delegated to the physical core (which serializes busy
// co-located VCPUs), otherwise bursts run locally scaled by the share
// factor.
type VCPU struct {
	g      *Guest
	idx    int
	Socket int
	// Exec, when non-nil, executes bursts on the pinned physical core.
	Exec ExecFunc

	busy  bool
	queue []burst
	share float64 // execution speed multiplier when Exec is nil
	util  metrics.Utilization
}

type burst struct {
	d    sim.Duration
	done func()
}

// Index reports the VCPU index within its guest.
func (v *VCPU) Index() int { return v.idx }

// SetShare sets the physical-core share (0 < s <= 1); bursts already
// executing are unaffected, subsequent ones run proportionally slower.
func (v *VCPU) SetShare(s float64) {
	if s <= 0 {
		s = 0.01
	}
	if s > 1 {
		s = 1
	}
	v.share = s
}

// Share reports the current physical-core share.
func (v *VCPU) Share() float64 { return v.share }

// UtilFraction reports the VCPU's busy fraction.
func (v *VCPU) UtilFraction(now sim.Time) float64 { return v.util.Fraction(now) }

// Run schedules a compute burst of duration d (at full-core speed); done
// fires when it finishes.
func (v *VCPU) Run(d sim.Duration, done func()) {
	v.queue = append(v.queue, burst{d: d, done: done})
	if !v.busy {
		v.dispatch()
	}
}

func (v *VCPU) dispatch() {
	if len(v.queue) == 0 {
		v.busy = false
		v.util.SetBusy(v.g.k.Now(), false)
		return
	}
	b := v.queue[0]
	copy(v.queue, v.queue[1:])
	v.queue[len(v.queue)-1] = burst{}
	v.queue = v.queue[:len(v.queue)-1]
	v.busy = true
	v.util.SetBusy(v.g.k.Now(), true)
	finish := func() {
		if b.done != nil {
			b.done()
		}
		v.dispatch()
	}
	if v.Exec != nil {
		v.Exec(b.d, finish)
		return
	}
	wall := sim.Duration(float64(b.d) / v.share)
	v.g.k.After(wall, finish)
}

// Process is a schedulable entity with an I/O weight; Sec. 3.3's
// co-scheduling distributes process weights across sockets.
type Process struct {
	id       int
	g        *Guest
	vcpu     *VCPU
	IOWeight float64
}

// NewProcess creates a process with the given I/O weight, assigned to
// VCPUs round-robin.
func (g *Guest) NewProcess(ioWeight float64) *Process {
	p := &Process{id: len(g.procs), g: g, vcpu: g.vcpus[g.nextPr%len(g.vcpus)], IOWeight: ioWeight}
	g.nextPr++
	g.procs = append(g.procs, p)
	return p
}

// Processes returns all processes.
func (g *Guest) Processes() []*Process { return g.procs }

// ID reports the process id.
func (p *Process) ID() int { return p.id }

// VCPU reports the process's current VCPU.
func (p *Process) VCPU() *VCPU { return p.vcpu }

// Socket reports the socket the process currently runs on.
func (p *Process) Socket() int { return p.vcpu.Socket }

// Compute runs d of CPU work on the process's VCPU.
func (p *Process) Compute(d sim.Duration, done func()) { p.vcpu.Run(d, done) }

// MoveTo migrates the process to another VCPU (the in-guest NUMA-aware
// placement IOrchestra's co-scheduling callback performs).
func (p *Process) MoveTo(vcpuIdx int) {
	if vcpuIdx < 0 || vcpuIdx >= len(p.g.vcpus) {
		panic(fmt.Sprintf("guest: MoveTo(%d) out of range", vcpuIdx))
	}
	p.vcpu = p.g.vcpus[vcpuIdx]
}

// Sockets reports the distinct sockets this guest's VCPUs span, ascending.
func (g *Guest) Sockets() []int {
	seen := map[int]bool{}
	for _, v := range g.vcpus {
		seen[v.Socket] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// ProcessWeightBySocket sums process I/O weights per socket — the
// W_SKT(VCPU_k) aggregation from Sec. 3.3.
func (g *Guest) ProcessWeightBySocket() map[int]float64 {
	out := map[int]float64{}
	for _, p := range g.procs {
		out[p.Socket()] += p.IOWeight
	}
	return out
}

// TotalProcessWeight sums all process I/O weights (the Σ P_l denominator).
func (g *Guest) TotalProcessWeight() float64 {
	var sum float64
	for _, p := range g.procs {
		sum += p.IOWeight
	}
	return sum
}

// VCPUsOnSocket returns indices of VCPUs on the given socket.
func (g *Guest) VCPUsOnSocket(socket int) []int {
	var out []int
	for _, v := range g.vcpus {
		if v.Socket == socket {
			out = append(out, v.idx)
		}
	}
	return out
}

// MeanVCPUUtil reports the average VCPU busy fraction.
func (g *Guest) MeanVCPUUtil(now sim.Time) float64 {
	var sum float64
	for _, v := range g.vcpus {
		sum += v.UtilFraction(now)
	}
	return sum / float64(len(g.vcpus))
}

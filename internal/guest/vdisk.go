package guest

import (
	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/metrics"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
)

// VDisk is one virtual disk: a filesystem-facing surface combining a page
// cache (buffered writes) with a block-layer queue dispatching to the
// paravirtual frontend the host supplied.
type VDisk struct {
	name        string
	g           *Guest
	Queue       *blkio.Queue
	Cache       *pagecache.Cache
	maxTransfer int64

	readLat  *metrics.Histogram // application-visible read latency
	writeLat *metrics.Histogram // application-visible write-return latency
}

// DiskConfig wires a virtual disk.
type DiskConfig struct {
	Name string
	// QueueConfig configures the block layer; the Controller field is how
	// policy variants plug in.
	QueueConfig blkio.Config
	// CacheConfig configures the dirty-page machinery; TotalPages
	// defaults to the guest's memory.
	CacheConfig pagecache.Config
	// MaxTransfer splits application reads larger than this into
	// concurrently submitted block requests, the way the kernel's
	// readahead and max_sectors splitting pipeline a streaming read
	// through the request queue. Zero disables splitting.
	MaxTransfer int64
}

// AddDisk attaches a virtual disk whose dispatches go to lower (the
// frontend driver created by the host). It returns the new disk.
func (g *Guest) AddDisk(cfg DiskConfig, lower blkio.Lower) *VDisk {
	if cfg.Name == "" {
		cfg.Name = "xvda"
	}
	if cfg.QueueConfig.Name == "" {
		cfg.QueueConfig.Name = cfg.Name
	}
	if cfg.CacheConfig.TotalPages <= 0 {
		cfg.CacheConfig.TotalPages = g.cfg.MemBytes / pagecache.PageSize
	}
	q := blkio.NewQueue(g.k, cfg.QueueConfig, g.rng.Fork("blkio/"+cfg.Name), lower)
	c := pagecache.New(g.k, cfg.CacheConfig, q, int(g.cfg.ID))
	v := &VDisk{
		name:        cfg.Name,
		g:           g,
		Queue:       q,
		Cache:       c,
		maxTransfer: cfg.MaxTransfer,
		readLat:     metrics.NewHistogram(),
		writeLat:    metrics.NewHistogram(),
	}
	g.vdisks[cfg.Name] = v
	g.names = append(g.names, cfg.Name)
	return v
}

// Disk returns a disk by name (nil if absent).
func (g *Guest) Disk(name string) *VDisk { return g.vdisks[name] }

// Disks returns all virtual disks in attach order.
func (g *Guest) Disks() []*VDisk {
	out := make([]*VDisk, 0, len(g.names))
	for _, n := range g.names {
		out = append(out, g.vdisks[n])
	}
	return out
}

// Name reports the disk name.
func (v *VDisk) Name() string { return v.name }

// ReadLatency exposes the application-visible read-latency histogram.
func (v *VDisk) ReadLatency() *metrics.Histogram { return v.readLat }

// WriteLatency exposes the application-visible write-return histogram.
func (v *VDisk) WriteLatency() *metrics.Histogram { return v.writeLat }

// Read issues a read of size bytes on behalf of p; done fires when data
// is available. A CacheHitFrac fraction of reads is served from memory.
func (v *VDisk) Read(p *Process, size int64, sequential bool, done func()) {
	start := v.g.k.Now()
	if v.g.cfg.CacheHitFrac > 0 && v.g.rng.Bool(v.g.cfg.CacheHitFrac) {
		v.g.k.After(5*sim.Microsecond, func() {
			v.readLat.Record(v.g.k.Now() - start)
			if done != nil {
				done()
			}
		})
		return
	}
	socket, stream := 0, 0
	if p != nil {
		socket = p.Socket()
		stream = p.ID()
	}
	finish := func() {
		v.readLat.Record(v.g.k.Now() - start)
		if done != nil {
			done()
		}
	}
	if v.maxTransfer > 0 && size > v.maxTransfer {
		// Readahead-style split: all chunks enter the request queue at
		// once and the read completes when the last chunk does.
		n := int((size + v.maxTransfer - 1) / v.maxTransfer)
		remaining := n
		onChunk := func() {
			remaining--
			if remaining == 0 {
				finish()
			}
		}
		left := size
		for i := 0; i < n; i++ {
			chunk := v.maxTransfer
			if left < chunk {
				chunk = left
			}
			left -= chunk
			v.Queue.Submit(&device.Request{
				Op: device.Read, Size: chunk, Sequential: sequential,
				Owner: int(v.g.cfg.ID), Socket: socket, Stream: stream,
				Done: onChunk,
			})
		}
		return
	}
	v.Queue.Submit(&device.Request{
		Op:         device.Read,
		Size:       size,
		Sequential: sequential,
		Owner:      int(v.g.cfg.ID),
		Socket:     socket,
		Stream:     stream,
		Done:       finish,
	})
}

// Write issues a buffered write; done fires when the write call returns
// to the application (memory-speed unless the writer is throttled at the
// dirty ratio).
func (v *VDisk) Write(p *Process, size int64, done func()) {
	start := v.g.k.Now()
	_ = p
	if done == nil {
		// Metric-only write: the cache reports the virtual return time
		// inline instead of scheduling a wakeup just to record it. Only a
		// throttled writer needs the callback machinery.
		if at, ok := v.Cache.WriteAt(size); ok {
			v.writeLat.Record(at - start)
			return
		}
	}
	v.Cache.Write(size, func() {
		v.writeLat.Record(v.g.k.Now() - start)
		if done != nil {
			done()
		}
	})
}

// DirectWrite bypasses the page cache (O_DIRECT): done fires when the
// device completes, as a database commit log would require.
func (v *VDisk) DirectWrite(p *Process, size int64, sequential bool, done func()) {
	start := v.g.k.Now()
	socket, stream := 0, 0
	if p != nil {
		socket = p.Socket()
		stream = p.ID()
	}
	v.Queue.Submit(&device.Request{
		Op:         device.Write,
		Size:       size,
		Sequential: sequential,
		Owner:      int(v.g.cfg.ID),
		Socket:     socket,
		Stream:     stream,
		Done: func() {
			v.writeLat.Record(v.g.k.Now() - start)
			if done != nil {
				done()
			}
		},
	})
}

// Fsync flushes the disk's dirty pages; done fires when clean.
func (v *VDisk) Fsync(done func()) { v.Cache.Sync(done) }

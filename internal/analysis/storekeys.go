package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// StoreKeys flags raw "/local/domain/..." and "/cluster/..." path
// literals. The store key schema (docs/STORE_KEYS.md) is owned by two
// places — internal/store's path helpers (store.Root, store.DomainPath,
// store.DiskPath, and the /cluster constructors in store's keys.go) and
// the typed key constructors in internal/core/keys.go. A hand-rolled
// path literal anywhere else bypasses both, so a schema change (or a
// typo) silently produces keys nothing watches.
var StoreKeys = &Analyzer{
	Name: "storekeys",
	Doc: "flag raw /local/domain/... and /cluster/... string literals outside " +
		"internal/store and internal/core/keys.go; build paths with " +
		"store.Root/DomainPath/DiskPath, store's /cluster key constructors " +
		"(HypervisorPath, ClusterGuestKey, ...), or the core keys.go constructors",
	AppliesTo: func(pkgPath string) bool {
		// internal/store owns the schema; internal/analysis quotes the
		// path in rule text without ever building keys from it.
		return pkgPath != "iorchestra/internal/store" &&
			pkgPath != "iorchestra/internal/analysis"
	},
	Run: runStoreKeys,
}

func runStoreKeys(p *Pass) error {
	walkFiles(p, func(file *ast.File, n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if !strings.Contains(lit.Value, "/local/domain") &&
			!strings.Contains(lit.Value, "/cluster/") &&
			lit.Value != `"/cluster"` {
			return true
		}
		// keys.go is the schema's designated home on the core side.
		pos := p.Fset.Position(lit.Pos())
		if p.Pkg != nil && p.Pkg.Path() == "iorchestra/internal/core" &&
			filepath.Base(pos.Filename) == "keys.go" {
			return true
		}
		p.Reportf(lit.Pos(),
			"raw store path literal %s; build it with store.Root/DomainPath/DiskPath or the internal/core/keys.go constructors (docs/STORE_KEYS.md)",
			lit.Value)
		return true
	})
	return nil
}

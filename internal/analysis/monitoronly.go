package analysis

import (
	"go/ast"
)

// Host accessors that expose raw measurement state. The Controller
// contract (docs/ARCHITECTURE.md) routes every policy read through
// hypervisor.Monitor's point-in-time snapshots so the read side of all
// policies stays uniform; actuation surfaces (Host.IOCores quanta,
// Host.SetClassWeight, the store) and wiring accessors (Kernel, Store,
// Monitor, Recorder, Guests) remain on Host.
var forbiddenHostReads = map[string]string{
	"Device":             "Monitor.DeviceSnapshot / Monitor.CapacityBps",
	"Cgroup":             "Monitor.QueueBacklog for reads, Host.SetClassWeight for actuation",
	"Tracer":             "Monitor snapshots",
	"PCore":              "Monitor snapshots",
	"CPUUtilization":     "Monitor snapshots",
	"BackendUtilization": "Monitor snapshots",
	"IOCongested":        "Monitor.IOCongested",
}

const hostType = "*iorchestra/internal/hypervisor.Host"

// MonitorOnly enforces the PR 3 Controller contract in the policy
// packages: measurements flow through hypervisor.Monitor, never through
// Host's raw subsystem accessors. The federation's host agents publish
// registry load stats, so they are policy readers too.
var MonitorOnly = &Analyzer{
	Name: "monitoronly",
	Doc: "policy controllers (internal/core, internal/baselines, " +
		"internal/federation) must read measurements through " +
		"hypervisor.Monitor snapshots, not Host's raw accessors (Device, " +
		"Cgroup, Tracer, PCore, CPUUtilization, BackendUtilization, IOCongested)",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "iorchestra/internal/core" ||
			pkgPath == "iorchestra/internal/baselines" ||
			pkgPath == "iorchestra/internal/federation" ||
			pkgPath == "iorchestra/internal/gstate"
	},
	Run: runMonitorOnly,
}

func runMonitorOnly(p *Pass) error {
	walkFiles(p, func(_ *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		instead, bad := forbiddenHostReads[sel.Sel.Name]
		if !bad || recvTypeString(p.TypesInfo, sel) != hostType {
			return true
		}
		p.Reportf(sel.Pos(),
			"controller touches Host.%s directly; the Controller contract reads measurements only via %s (docs/ARCHITECTURE.md)",
			sel.Sel.Name, instead)
		return true
	})
	return nil
}

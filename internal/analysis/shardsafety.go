package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// shardTrackedRecv are the receiver types that live behind a netstore
// shard: the store (node maps, watch buckets, subtree-hash cells), its
// transactions, the trace recorder and the private sim kernel. All of
// them are single-goroutine structures owned by the shard's store loop.
var shardTrackedRecv = map[string]bool{
	"*iorchestra/internal/store.Store":    true,
	"*iorchestra/internal/store.Txn":      true,
	"*iorchestra/internal/trace.Recorder": true,
	"*iorchestra/internal/sim.Kernel":     true,
}

// shardRunnerNames are the sanctioned wrappers that ship a closure to
// the owning shard's store loop; a function-literal argument to any of
// them runs on the loop and may touch tracked state freely. runTxn is
// the transactional variant: it executes its callback inside doOn on
// the transaction's bound shard.
var shardRunnerNames = map[string]bool{
	"doOn": true, "Do": true, "run": true, "runOn": true, "runTxn": true,
}

// ShardSafety enforces the netstore store-loop discipline PR 6's
// sharding rests on: every shard's store, recorder and kernel are
// confined to that shard's store-loop goroutine, and the cross-shard
// transaction refusal must stay the only cross-shard path. Tracked
// method calls must sit inside a closure passed to doOn/Do/run/runOn or
// inside a function marked //storeloop (one documented to execute on
// the owning loop, like snapshotWalk). The shard op queue itself is
// off-limits outside doOn/storeLoop: a raw send is a back door around
// the confinement.
var ShardSafety = &Analyzer{
	Name: "shardsafety",
	Doc: "netstore shard state (store, txns, recorder, kernel) may only be touched " +
		"from the owning shard's store loop: wrap calls in doOn/Do/run/runOn closures " +
		"or mark loop-context functions //storeloop; the op queue belongs to doOn/storeLoop",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "iorchestra/internal/netstore"
	},
	Run: runShardSafety,
}

func runShardSafety(p *Pass) error {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasMarker(fd, "storeloop") {
				continue
			}
			w := &shardWalker{p: p, fn: fd.Name.Name}
			w.walk(fd.Body, false)
		}
	}
	return nil
}

type shardWalker struct {
	p  *Pass
	fn string // enclosing function name, for the op-queue ownership rule
}

// walk inspects a subtree; onLoop records whether it executes on the
// owning shard's store loop (i.e. inside a runner closure).
func (w *shardWalker) walk(n ast.Node, onLoop bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if shardRunnerNames[calleeName(n)] {
				// The closure argument runs on the loop; everything else
				// in the call stays in the caller's context.
				w.walk(n.Fun, onLoop)
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						w.walk(lit.Body, true)
					} else {
						w.walk(arg, onLoop)
					}
				}
				return false
			}
			if onLoop {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv := recvTypeString(w.p.TypesInfo, sel); shardTrackedRecv[recv] {
					w.p.Reportf(n.Pos(), "(%s).%s may only run on the owning shard's store loop; "+
						"wrap the call in doOn/Do/run/runOn or mark the function //storeloop",
						recv, sel.Sel.Name)
				}
			}
		case *ast.SendStmt:
			if w.isOpsChan(n.Chan) && w.fn != "doOn" {
				w.reportOps(n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.isOpsChan(n.X) && w.fn != "doOn" && w.fn != "storeLoop" {
				w.reportOps(n.Pos())
			}
		case *ast.RangeStmt:
			if w.isOpsChan(n.X) && w.fn != "storeLoop" {
				w.reportOps(n.Pos())
			}
		}
		return true
	})
}

func (w *shardWalker) reportOps(pos token.Pos) {
	w.p.Reportf(pos, "the shard op queue belongs to doOn and storeLoop; submit work "+
		"through doOn so cross-shard transaction refusal stays the only cross-shard path")
}

// isOpsChan reports whether e is a selector named ops with channel type
// (the shard's op queue).
func (w *shardWalker) isOpsChan(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ops" {
		return false
	}
	tv, ok := w.p.TypesInfo.Types[sel]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeprecated keeps the Counters() migration final: PR 3 deprecated the
// per-counter getters on Manager and this PR deleted them. The pass
// fails any reintroduction — a Manager method named after a Counters
// field, or a Manager method parked behind a "Deprecated:" marker
// instead of being removed.
var NoDeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc: "Manager must not regrow per-counter getter methods (use " +
		"Counters() snapshots) nor keep methods marked Deprecated: " +
		"deprecation cycles end with deletion, not accretion",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "iorchestra/internal/core"
	},
	Run: runNoDeprecated,
}

func runNoDeprecated(p *Pass) error {
	counterFields := countersFields(p.Pkg)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !isManagerRecv(fd) {
				continue
			}
			if counterFields[fd.Name.Name] {
				p.Reportf(fd.Name.Pos(),
					"Manager.%s shadows the Counters.%s field; per-counter getters were removed — callers take a Counters() snapshot",
					fd.Name.Name, fd.Name.Name)
			}
			if fd.Doc != nil && hasDeprecatedMarker(fd.Doc.Text()) {
				p.Reportf(fd.Name.Pos(),
					"Manager.%s carries a Deprecated: marker; delete retired Manager methods instead of keeping them for migration",
					fd.Name.Name)
			}
		}
	}
	return nil
}

// countersFields lists the exported field names of the package's
// Counters struct (empty map when the package has none).
func countersFields(pkg *types.Package) map[string]bool {
	out := map[string]bool{}
	if pkg == nil {
		return out
	}
	obj := pkg.Scope().Lookup("Counters")
	if obj == nil {
		return out
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		out[st.Field(i).Name()] = true
	}
	return out
}

// isManagerRecv reports whether fd's receiver is Manager or *Manager.
func isManagerRecv(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Manager"
}

// hasDeprecatedMarker reports whether a doc comment contains a godoc
// deprecation paragraph.
func hasDeprecatedMarker(doc string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

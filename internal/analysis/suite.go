package analysis

// Suite returns every pass of iorchestra-vet in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		StoreKeys,
		WatchSafety,
		MonitorOnly,
		TraceCounter,
		NoDeprecated,
		ShardSafety,
		EpochSafety,
		HotPathAlloc,
		BoundedRetry,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A simulation-driving command NOT in nonSimScope: the cmd/ prefix
// keeps it inside the determinism pass.
package main

import "time"

func main() {
	_ = time.Now() // want `time.Now reads the wall clock`
}

// Command iorchestra-stored's stand-in: under iorchestra/cmd/ but in
// nonSimScope, so its real-time accept-loop plumbing stays legal — the
// exemption must win over the cmd/ prefix match.
package main

import "time"

func main() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}

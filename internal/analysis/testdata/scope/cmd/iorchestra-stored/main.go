// Command iorchestra-stored's stand-in: under iorchestra/cmd/ but in
// nonSimScope, so its real-time accept-loop plumbing stays legal — the
// exemption must win over the cmd/ prefix match.
package main

import (
	"fmt"
	"time"
)

func main() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
	fmt.Println(hotStatus(0))
}

// hotStatus is hotpathalloc's scope negative: the pass only covers
// internal/, so a marked function in a command may keep fmt — no want
// comment.
//
// hotpath
func hotStatus(n int) string {
	return fmt.Sprintf("conns=%d", n)
}

// Command sim-bench's stand-in: under iorchestra/cmd/ and NOT in
// nonSimScope, so the scenario-driving file stays inside the
// determinism pass even though the package's stamp.go steps out via
// nonSimFiles — the exemption is per file, not per package.
package main

import "time"

func main() {
	_ = time.Now() // want `time.Now reads the wall clock`
	stamp()
}

// The measurement shell: listed in nonSimFiles, so its wall-clock
// stopwatch is legal while main.go in the same package stays covered.
package main

import "time"

func stamp() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}

module iorchestra

go 1.22

// Package store mirrors the real store's receiver types so the
// shardsafety receiver matching (keyed on iorchestra/internal/store
// types) can be exercised inside the scope fixture module.
package store

type DomID int

type Store struct{ vals map[string]string }

func (s *Store) Read(dom DomID, path string) (string, error) {
	return s.vals[path], nil
}

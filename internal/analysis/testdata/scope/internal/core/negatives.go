// negatives.go holds out-of-scope twins of the shardsafety and
// epochsafety scope-fixture violations: core is neither netstore nor
// cluster, so neither pass may fire here — no want comments.
package core

import "iorchestra/internal/store"

type coreShard struct{ st *store.Store }

// Outside netstore, direct store access is the ordinary
// single-goroutine discipline, not a shard violation.
func CoreDirect(sh *coreShard, dom store.DomID) (string, error) {
	return sh.st.Read(dom, "/x")
}

// Outside cluster, goroutines are not epoch workers.
func CoreSpawn() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++
		close(done)
	}()
	<-done
	return total
}

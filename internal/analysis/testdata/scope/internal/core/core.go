// Package core stands in for a deterministic-sim package: the
// determinism pass must flag wall-clock reads here.
package core

import "time"

func Tick() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

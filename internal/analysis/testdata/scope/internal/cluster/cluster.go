// Package cluster is inside epochsafety's gate: goroutine bodies here
// are epoch workers and must keep the share-nothing discipline. The
// same shape in internal/core carries no want comment.
package cluster

func Advance() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want `mutates total`
		close(done)
	}()
	<-done
	return total
}

// Package netstore stands in for the wire-facing store server: it is in
// nonSimScope, so its wall-clock socket deadlines must NOT be flagged —
// no want comments in this file, and the scope test fails on any
// unexpected diagnostic.
package netstore

import "time"

func Deadline() time.Time {
	return time.Now().Add(2 * time.Second)
}

func Pace() {
	time.Sleep(time.Millisecond)
}

// shard.go exercises the in-scope side of the PR 9 passes: netstore is
// inside shardsafety's, hotpathalloc's and boundedretry's gates, so the
// violations below must be flagged under auto scoping. Their twins in
// internal/core, internal/analysis and cmd/iorchestra-stored carry
// no expectations and prove the gates' negative side.
package netstore

import (
	"fmt"

	"iorchestra/internal/store"
)

type shard struct {
	st  *store.Store
	ops chan func()
}

func direct(sh *shard, dom store.DomID) (string, error) {
	return sh.st.Read(dom, "/x") // want `owning shard's store loop`
}

// hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf formats through reflection`
}

func probe() bool { return true }

func retry() {
	for { // want `unbounded retry loop`
		if probe() {
			return
		}
		continue
	}
}

// Package analysis is boundedretry's scope carve-out: the real pass
// suite constructs retry-shaped loops as fixtures and test subjects, so
// the pass must not fire here — no want comments.
package analysis

func Probe() bool { return true }

func SpinForever() {
	for {
		if Probe() {
			return
		}
		continue
	}
}

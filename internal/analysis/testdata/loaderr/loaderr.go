// Package loaderr is deliberately mis-typed: the loader tests assert
// Load fails loudly, naming the file and the type error, instead of
// returning a half-typed package for the passes to misread.
package loaderr

var answer int = "forty-two"

// Package monitoronlyfix is an iorchestra-vet test fixture: policy code
// reading measurements straight off hypervisor.Host is flagged; the
// Monitor surface and Host's wiring accessors stay legal.
package monitoronlyfix

import "iorchestra/internal/hypervisor"

type policy struct {
	h   *hypervisor.Host
	mon *hypervisor.Monitor
}

func (p *policy) tick() {
	// Monitor reads are the sanctioned measurement surface.
	_ = p.mon.IOCongested()
	_ = p.mon.CapacityBps()

	_ = p.h.IOCongested() // want "touches Host.IOCongested directly"
	dev := p.h.Device()   // want "touches Host.Device directly"
	_ = dev.CapacityBps()

	// Wiring accessors remain on Host.
	_ = p.h.Kernel()
	_ = p.h.Monitor()
}

// Package monitoronlyfix is an iorchestra-vet test fixture: policy code
// reading measurements straight off hypervisor.Host is flagged; the
// Monitor surface and Host's wiring accessors stay legal.
package monitoronlyfix

import "iorchestra/internal/hypervisor"

type policy struct {
	h   *hypervisor.Host
	mon *hypervisor.Monitor
}

func (p *policy) tick() {
	// Monitor reads are the sanctioned measurement surface.
	_ = p.mon.IOCongested()
	_ = p.mon.CapacityBps()

	_ = p.h.IOCongested() // want "touches Host.IOCongested directly"
	dev := p.h.Device()   // want "touches Host.Device directly"
	_ = dev.CapacityBps()

	// Wiring accessors remain on Host.
	_ = p.h.Kernel()
	_ = p.h.Monitor()
}

// gstateTick mimics the G-state controller's measurement pattern: the
// sanctioned Monitor snapshot and per-guest latency stats pass, a
// direct backend-utilization read is flagged.
func (p *policy) gstateTick() {
	_ = p.mon.DeviceSnapshot(0)
	_, _ = p.mon.GuestPathStats(1)
	_ = p.h.BackendUtilization(0) // want "touches Host.BackendUtilization directly"
}

// Package shardsafety exercises the netstore store-loop discipline
// pass. The shapes mirror internal/netstore's server: a shard struct
// bundling a store, recorder and kernel behind an op queue, the
// doOn/run runner wrappers, and //storeloop functions documented to
// execute on the owning loop.
package shardsafety

import (
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

type shard struct {
	k   *sim.Kernel
	st  *store.Store
	rec *trace.Recorder
	ops chan func()
}

type server struct{ shards []*shard }

func (s *server) doOn(sh *shard, fn func()) {
	done := make(chan struct{})
	sh.ops <- func() { fn(); close(done) }
	<-done
}

// storeLoop owns the shard: it drains the op queue and drives the
// private kernel, so its direct access is the sanctioned baseline.
//
// storeloop
func (s *server) storeLoop(sh *shard) {
	for fn := range sh.ops {
		fn()
		sh.k.Run()
	}
}

// bad touches shard state outside any runner closure: flagged.
func (s *server) bad(sh *shard, dom store.DomID, path string) (string, error) {
	sh.rec.Record(trace.Record{}) // want `owning shard's store loop`
	return sh.st.Read(dom, path)  // want `owning shard's store loop`
}

// good is the sanctioned shape: a closure shipped through doOn.
func (s *server) good(sh *shard, dom store.DomID, path string) (v string, err error) {
	s.doOn(sh, func() {
		sh.rec.Record(trace.Record{})
		v, err = sh.st.Read(dom, path)
	})
	return v, err
}

// viaRun mirrors netstore's handle: a local runner named run sanctions
// its closure argument too.
func (s *server) viaRun(sh *shard, dom store.DomID, path string) (v string, err error) {
	run := func(fn func(st *store.Store)) { s.doOn(sh, func() { fn(sh.st) }) }
	run(func(st *store.Store) { v, err = st.Read(dom, path) })
	return v, err
}

// walk is documented to run on the owning loop (the snapshotWalk
// shape): the marker exempts it.
//
// storeloop
func walk(st *store.Store, dom store.DomID, root string) (string, error) {
	return st.Read(dom, root)
}

// sneak bypasses doOn with a raw send on the op queue — the cross-shard
// back door the refusal path exists to close.
func (s *server) sneak(sh *shard) {
	sh.ops <- func() {} // want `op queue`
}

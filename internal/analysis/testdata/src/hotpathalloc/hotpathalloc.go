// Package hotpathalloc exercises the hot-path allocation pass: only
// functions marked //hotpath are inspected, and inside them closures,
// fmt calls, map/slice literals and interface boxing are flagged.
package hotpathalloc

import "fmt"

type sink interface{ accept(int) }

type counter struct{ n int }

func (c *counter) accept(v int) { c.n += v }

func feed(s sink) {
	if s != nil {
		s.accept(1)
	}
}

// cold allocates freely: no marker, never inspected.
func cold() func() int {
	m := map[string]int{"a": 1}
	fmt.Println(len(m))
	return func() int { return m["a"] }
}

// hotpath
func hotClosure(vals []int) func() int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return func() int { return total } // want `allocates a closure`
}

// hotpath
func hotFmt(path string) error {
	return fmt.Errorf("missing %s", path) // want `fmt\.Errorf formats through reflection`
}

// hotpath
func hotLiterals() int {
	m := map[string]int{} // want `map literal allocates`
	s := []int{1, 2, 3}   // want `slice literal allocates`
	return len(m) + len(s)
}

type stat struct{ n, m int }

func (s stat) accept(v int) { _ = s.n + v }

// hotpath
func hotBoxing(s stat) {
	feed(s) // want `boxes concrete stat into interface sink`
}

// hotpath
func hotConversion(s stat) sink {
	return sink(s) // want `boxes concrete stat into interface sink`
}

// hotPointer stays clean: pointers are pointer-shaped, so converting
// them to an interface stores them directly — no allocation.
//
// hotpath
func hotPointer(c *counter) {
	feed(c)
}

// hotClean stays clean: struct and array literals, appends, builtins
// and concrete calls do not allocate per call.
//
// hotpath
func hotClean(buf []byte, v uint32) []byte {
	tmp := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	return append(buf, tmp[:]...)
}

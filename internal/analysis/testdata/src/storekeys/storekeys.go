// Package storekeysfix is an iorchestra-vet test fixture for the
// storekeys pass, including both shapes of the //lint:allow escape
// hatch (justified and rejected).
package storekeysfix

import "iorchestra/internal/store"

// Paths built through the schema owners are clean.
var (
	good        = store.DiskPath(1, "xvda", "nr_dirty")
	alsoGood    = store.DomainPath(2) + "/heartbeat"
	clusterGood = store.HypervisorKey("ha", "heartbeat")
	guestGood   = store.ClusterGuestPath("vm001")
)

// bad spells the schema by hand.
var bad = "/local/domain/1/virt-dev/xvda/nr_dirty" // want "raw store path literal"

// The cluster registry schema is owned by store's /cluster constructors.
var (
	clusterBad = "/cluster/hypervisors/x/heartbeat" // want "raw store path literal"
	rootBad    = "/cluster"                         // want "raw store path literal"
)

// concatenated prefixes are raw literals too.
func prefix(suffix string) string {
	return "/local/domain/" + suffix // want "raw store path literal"
}

// allowed is suppressed by a justified escape hatch.
var allowed = "/local/domain/3/x" //lint:allow storekeys -- fixture: exercising the documented escape hatch

// badAllow's directive has no justification: the directive itself is
// reported and the finding is not suppressed.
var badAllow = "/local/domain/4/x" //lint:allow storekeys // want "needs a justification" "raw store path literal"

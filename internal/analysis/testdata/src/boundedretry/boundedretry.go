// Package boundedretry exercises the bounded-retry pass: a bare for
// that retries via continue must bound its attempts with a relational
// counter or deadline check that bails out.
package boundedretry

import "errors"

var errGiveUp = errors.New("gave up")

func poll() (bool, error) { return false, nil }

// Unbounded: retries forever on a transient miss.
func unboundedRetry() error {
	for { // want `unbounded retry loop`
		ok, err := poll()
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		return nil
	}
}

// Bounded by an attempt counter: the relational guard bails out.
func boundedRetry() error {
	attempts := 0
	for {
		ok, err := poll()
		if err != nil {
			return err
		}
		attempts++
		if attempts > 8 {
			return errGiveUp
		}
		if !ok {
			continue
		}
		return nil
	}
}

// Bounded in the header: not a bare for, out of the pass's shape.
func headerBounded() {
	for i := 0; i < 4; i++ {
		if ok, _ := poll(); !ok {
			continue
		}
		return
	}
}

// A bare for with no loop-level continue is a dispatch loop (sift
// loops, select loops), not a retry loop: never flagged.
func dispatchLoop() int {
	n := 0
	for {
		n++
		if n == 10 {
			return n
		}
	}
}

// A continue confined to a nested loop does not make the outer
// dispatch loop retry-shaped.
func nestedContinue(items []int) int {
	total := 0
	for {
		for _, v := range items {
			if v < 0 {
				continue
			}
			total += v
		}
		if total != 0 {
			return total
		}
		total = 1
	}
}

// A panic bail-out behind a relational guard also counts as a bound.
func boundedByPanic() {
	tries := 0
	for {
		if ok, _ := poll(); ok {
			return
		}
		tries++
		if tries >= 100 {
			panic("poll never succeeded")
		}
		continue
	}
}

// Package generics proves the stdlib-only loader type-checks modern
// syntax: generic helpers are common in test scaffolding, and Load must
// either understand them fully or fail loudly — never mis-type.
package generics

type number interface{ ~int | ~float64 }

func sum[T number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

func keys[K comparable, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Used instantiates both helpers so the loader has to type-check real
// instantiations, not just the declarations.
func Used() (int, int) {
	return sum([]int{1, 2, 3}), len(keys(map[string]int{"a": 1}))
}

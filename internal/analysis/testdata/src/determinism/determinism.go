// Package determinismfix is an iorchestra-vet test fixture: every line
// marked want must be flagged by the determinism pass, everything else
// must stay clean.
package determinismfix

import (
	"math/rand"
	"time"
)

// bad exercises the forbidden wall-clock and global-rand entry points.
func bad() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	if rand.Intn(10) > 5 {       // want "rand.Intn draws from the global math/rand source"
		<-time.After(time.Second) // want "time.After reads the wall clock"
	}
	return time.Since(start) // want "time.Since reads the wall clock"
}

// good shows the legal surface: duration arithmetic and an explicitly
// seeded generator.
func good() time.Duration {
	r := rand.New(rand.NewSource(42))
	return time.Duration(r.Int63n(1000)) * time.Millisecond
}

// Package watchsafetyfix is an iorchestra-vet test fixture: watch
// callbacks that re-enter the store synchronously are flagged; the
// kernel-deferred and routed shapes are the sanctioned alternatives.
package watchsafetyfix

import (
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// reentrant calls store accessors synchronously inside the callback.
func reentrant(st *store.Store) {
	st.Watch(store.Dom0, store.Root, func(path, value string) {
		st.WriteBool(store.Dom0, path, true) // want "st.WriteBool re-enters the store synchronously"
		_, _ = st.Read(store.Dom0, path)     // want "st.Read re-enters the store synchronously"
	})
}

// deferred is the sanctioned shape: the nested closure handed to the
// kernel runs after notification delivery unwinds.
func deferred(k *sim.Kernel, st *store.Store) {
	st.Watch(store.Dom0, store.Root, func(path, value string) {
		k.After(sim.Millisecond, func() {
			st.Write(store.Dom0, path, "1")
		})
	})
}

// routed hands the event to a named method; named handlers are audited
// by review, not by this pass.
func routed(st *store.Store) {
	st.Watch(store.Dom0, store.Root, func(path, value string) {
		handle(st, path)
	})
}

func handle(st *store.Store, path string) {
	st.Write(store.Dom0, path, "0")
}

// Package nodeprecatedfix is an iorchestra-vet test fixture: Manager
// must not regrow per-counter getters or keep Deprecated: methods.
package nodeprecatedfix

// Counters mirrors the management module's snapshot struct.
type Counters struct {
	Vetoes   uint64
	Releases uint64
}

// Manager mimics internal/core's Manager surface.
type Manager struct {
	vetoes   uint64
	releases uint64
}

// Counters returns the snapshot: the one sanctioned counter read.
func (m *Manager) Counters() Counters {
	return Counters{Vetoes: m.vetoes, Releases: m.releases}
}

// Vetoes regrows a per-counter getter.
func (m *Manager) Vetoes() uint64 { return m.vetoes } // want "shadows the Counters.Vetoes field"

// Releases is parked behind a deprecation marker instead of deleted.
//
// Deprecated: use Counters().Releases.
func (m *Manager) Releases() uint64 { return m.releases } // want "shadows the Counters.Releases field" "carries a Deprecated: marker"

// Name is an ordinary Manager method and stays legal.
func (m *Manager) Name() string { return "manager" }

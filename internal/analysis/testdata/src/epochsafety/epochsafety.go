// Package epochsafety exercises the epoch-goroutine share-nothing
// pass: goroutines here stand in for cluster.RunEpochs kernel workers,
// which may drive their own kernel and the barrier's wait group but
// must leave cross-host state to the between-epoch sync callback.
package epochsafety

import (
	"fmt"
	"sync"

	"iorchestra/internal/sim"
)

// runEpoch is the sanctioned shape: each worker drives its own kernel
// and signals the barrier, nothing else.
func runEpoch(kernels []*sim.Kernel, upto sim.Time) {
	var wg sync.WaitGroup
	for _, k := range kernels {
		wg.Add(1)
		go func(k *sim.Kernel) {
			defer wg.Done()
			k.RunUntil(upto)
		}(k)
	}
	wg.Wait()
}

// leakyEpoch smuggles cross-host state into the workers: flagged.
func leakyEpoch(kernels []*sim.Kernel, upto sim.Time, done map[int]bool) {
	var wg sync.WaitGroup
	total := 0
	results := make(chan int, len(kernels))
	for i, k := range kernels {
		wg.Add(1)
		i, k := i, k
		go func() {
			defer wg.Done()
			k.RunUntil(upto)
			total++        // want `mutates total`
			done[i] = true // want `mutates done`
			fmt.Println(i) // want `move fmt\.Println into`
			results <- i   // want `channel traffic`
		}()
	}
	wg.Wait()
	close(results)
	_ = total
}

func spin() {}

// namedGoroutine hides its body from the pass: flagged.
func namedGoroutine() {
	go spin() // want `must be function literals`
}

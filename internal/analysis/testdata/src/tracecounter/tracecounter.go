// Package tracecounterfix is an iorchestra-vet test fixture for the 1:1
// degradation trace-event / counter mirror.
package tracecounterfix

import "iorchestra/internal/trace"

// ctl mimics the management module's counter fields.
type ctl struct {
	rec             *trace.Recorder
	heartbeatMisses uint64
	fallbacks       uint64
	restores        uint64
	places          uint64
	expiries        uint64
	gstateDemotes   uint64
	gstateAdmits    uint64
}

// good keeps the mirror: emission and increment in the same function.
func (c *ctl) good(dom int) {
	c.heartbeatMisses++
	c.rec.Record(trace.Record{Kind: trace.KindHeartbeatMiss, Dom: dom})
}

// missingCounter emits without bumping the mirrored counter.
func (c *ctl) missingCounter(dom int) {
	c.rec.Record(trace.Record{Kind: trace.KindFallbackEnter, Dom: dom}) // want "KindFallbackEnter emitted without incrementing the mirrored fallbacks counter"
}

// missingTrace bumps without emitting the mirrored event.
func (c *ctl) missingTrace() {
	c.restores++ // want "restores incremented without emitting the mirrored trace.KindFallbackExit"
}

// passedKind hands the kind to an emitting helper: a use counts as an
// emission, so only the counter side is checked here — and it holds.
func (c *ctl) passedKind() {
	c.fallbacks++
	c.emit(trace.KindFallbackEnter)
}

func (c *ctl) emit(k trace.Kind) {
	c.rec.Record(trace.Record{Kind: k})
}

// clusterGood keeps the mirror for a federation cluster.* kind.
func (c *ctl) clusterGood(host string) {
	c.places++
	c.rec.Record(trace.Record{Kind: trace.KindClusterPlace, Host: host})
}

// clusterMissingCounter emits a cluster kind without the mirrored bump.
func (c *ctl) clusterMissingCounter(host string) {
	c.rec.Record(trace.Record{Kind: trace.KindClusterExpire, Host: host}) // want "KindClusterExpire emitted without incrementing the mirrored expiries counter"
}

// gstateGood keeps the mirror for a G-state kind.
func (c *ctl) gstateGood(dom int) {
	c.gstateDemotes++
	c.rec.Record(trace.Record{Kind: trace.KindGStateDemote, Dom: dom})
}

// gstateMissingCounter emits a G-state kind without the mirrored bump.
func (c *ctl) gstateMissingCounter(dom int) {
	c.rec.Record(trace.Record{Kind: trace.KindGStateViolation, Dom: dom}) // want "KindGStateViolation emitted without incrementing the mirrored gstateViolations counter"
}

// gstateMissingTrace bumps a G-state counter without the mirrored event.
func (c *ctl) gstateMissingTrace() {
	c.gstateAdmits++ // want "gstateAdmits incremented without emitting the mirrored trace.KindGStateAdmit"
}

package analysis

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// mapNames is generic on purpose: iorchestra-vet type-checks this very
// file when make lint runs with -tests, so a generics regression in the
// stdlib-only loader fails the lint gate itself, not only these tests.
func mapNames[T any](in []T, f func(T) string) []string {
	out := make([]string, 0, len(in))
	for _, v := range in {
		out = append(out, f(v))
	}
	sort.Strings(out)
	return out
}

// TestLoadGenerics loads a fixture package built around type-parameter
// syntax (union constraints, multi-param instantiation) and asserts the
// loader produced a fully typed package.
func TestLoadGenerics(t *testing.T) {
	pkgs, err := Load(LoadConfig{Tests: true}, filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatalf("Load on the generics fixture: %v", err)
	}
	names := mapNames(pkgs, func(p *Package) string { return p.Path })
	if len(names) != 1 || !strings.HasSuffix(names[0], "generics") {
		t.Fatalf("expected exactly the generics package, got %v", names)
	}
	pkg := pkgs[0]
	used := pkg.Types.Scope().Lookup("Used")
	if used == nil {
		t.Fatal("generics fixture type-checked without exporting Used")
	}
	if len(pkg.Info.Defs) == 0 || len(pkg.Info.Types) == 0 {
		t.Fatal("generics fixture loaded with empty type information")
	}
}

// TestLoadTypeErrorIsLoud pins the failure mode for code the loader
// cannot type-check: a hard error naming the phase, the package and the
// offending file — never a silently mis-typed package.
func TestLoadTypeErrorIsLoud(t *testing.T) {
	_, err := Load(LoadConfig{}, filepath.Join("testdata", "loaderr"))
	if err == nil {
		t.Fatal("Load succeeded on a deliberately mis-typed package")
	}
	msg := err.Error()
	for _, needle := range []string{"type-checking", "loaderr.go", "forty-two"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("load error %q does not mention %q", msg, needle)
		}
	}
}

package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// determinismScope lists the packages whose behavior feeds the
// fixed-seed golden decision traces (testdata/golden): everything the
// simulation executes, plus the binaries that drive it. A wall-clock
// read or a draw from the global math/rand source anywhere in here
// silently breaks byte-identical replay.
var determinismScope = map[string]bool{
	"iorchestra":                     true,
	"iorchestra/internal/core":       true,
	"iorchestra/internal/store":      true,
	"iorchestra/internal/trace":      true,
	"iorchestra/internal/fault":      true,
	"iorchestra/internal/hypervisor": true,
	"iorchestra/internal/device":     true,
	"iorchestra/internal/blkio":      true,
	"iorchestra/internal/federation": true,
	"iorchestra/internal/cluster":    true,
}

// nonSimScope exempts the wire-facing packages from the determinism
// pass. They bridge the simulated store to real sockets, so wall-clock
// deadlines, timeouts and load pacing are their job, not a leak: the
// store they host still runs on a private sim.Kernel, and golden-trace
// parity is enforced on that side of the boundary (see
// internal/netstore parity tests). The exemption wins over the
// iorchestra/cmd/ prefix below.
var nonSimScope = map[string]bool{
	"iorchestra/internal/netstore":       true,
	"iorchestra/cmd/iorchestra-stored":   true,
	"iorchestra/cmd/netstore-load":       true,
	"iorchestra/cmd/iorchestra-clusterd": true,
}

// nonSimFiles exempts single files inside packages the pass otherwise
// covers, for binaries that mix deterministic scenario driving with a
// wall-clock measurement shell: sim-bench's simulation construction
// must stay inside the pass, while its stopwatch/trajectory-stamping
// file is real time by definition. Narrower than a nonSimScope entry —
// a new file in the package is covered until it is listed here.
var nonSimFiles = map[string]map[string]bool{
	"iorchestra/cmd/sim-bench": {"stamp.go": true},
}

// Wall-clock and timer entry points of package time. Pure conversions
// (time.Duration, time.ParseDuration, the unit constants) stay legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Package-level functions of math/rand (and v2) that draw from the
// process-global source. Constructing an explicitly seeded generator
// (rand.New, rand.NewSource, rand.NewZipf) stays legal — that is what
// stats.Stream does.
var forbiddenRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true, "N": true,
}

// Determinism forbids wall-clock time and the global math/rand source in
// the deterministic-simulation packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since/timers and the global math/rand source in " +
		"deterministic-sim packages; virtual time comes from sim.Kernel and " +
		"randomness from an explicitly seeded stats.Stream",
	AppliesTo: func(pkgPath string) bool {
		if nonSimScope[pkgPath] {
			return false
		}
		return determinismScope[pkgPath] || strings.HasPrefix(pkgPath, "iorchestra/cmd/")
	},
	Run: runDeterminism,
}

func runDeterminism(p *Pass) error {
	exempt := nonSimFiles[strings.TrimSuffix(p.Pkg.Path(), "_test")]
	walkFiles(p, func(f *ast.File, n ast.Node) bool {
		if exempt != nil && exempt[filepath.Base(p.Fset.Position(f.Package).Filename)] {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPkg(p.TypesInfo, sel) {
		case "time":
			if forbiddenTimeFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(),
					"%s reads the wall clock; deterministic-sim code must take time from sim.Kernel (golden-trace parity depends on it)",
					pkgName(sel))
			}
		case "math/rand", "math/rand/v2":
			if forbiddenRandFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(),
					"%s draws from the global math/rand source; use an explicitly seeded stats.Stream so fixed-seed runs replay identically",
					pkgName(sel))
			}
		}
		return true
	})
	return nil
}

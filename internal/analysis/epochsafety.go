package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// epochAllowedRecv are the receiver types an epoch goroutine may call:
// its own per-host kernel and the barrier's wait group. Everything else
// is potential cross-host shared state.
var epochAllowedRecv = map[string]bool{
	"*iorchestra/internal/sim.Kernel": true,
	"sync.WaitGroup":                  true,
	"*sync.WaitGroup":                 true,
}

// EpochSafety guards the share-nothing contract of the PR 8 epoch
// barrier: cluster.RunEpochs advances per-host kernels on parallel
// goroutines, and its parity-vs-sequential proof only holds if those
// goroutines share nothing — cross-host state may change solely in the
// single-threaded between-epoch sync callbacks. Inside any goroutine
// spawned in internal/cluster the pass flags: assignments to variables
// declared outside the goroutine, channel sends/receives, and calls to
// anything other than builtins, conversions, locally-declared closures,
// sim.Kernel or sync.WaitGroup methods. Goroutines must be function
// literals so the pass can see their bodies.
var EpochSafety = &Analyzer{
	Name: "epochsafety",
	Doc: "goroutines spawned in internal/cluster (the RunEpochs epoch workers) share " +
		"nothing: no writes to captured state, no channel traffic, no calls beyond " +
		"sim.Kernel/sync.WaitGroup — cross-host state moves in the sync callback",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "iorchestra/internal/cluster"
	},
	Run: runEpochSafety,
}

func runEpochSafety(p *Pass) error {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				p.Reportf(gs.Pos(), "epoch goroutines must be function literals so epochsafety "+
					"can check their bodies; inline the body of %s", calleeName(gs.Call))
				return true
			}
			checkEpochLit(p, lit)
			return false
		})
	}
	return nil
}

func checkEpochLit(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkEpochMutation(p, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkEpochMutation(p, lit, n.X)
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel traffic inside an epoch goroutine; exchange "+
				"cross-host state in the between-epoch sync callback")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.Reportf(n.Pos(), "channel traffic inside an epoch goroutine; exchange "+
					"cross-host state in the between-epoch sync callback")
			}
		case *ast.CallExpr:
			checkEpochCall(p, lit, n)
		}
		return true
	})
}

// checkEpochMutation flags an assignment target whose base variable is
// declared outside the goroutine literal: a data race against the other
// epoch workers or the coordinator.
func checkEpochMutation(p *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	id := baseIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return // goroutine-local (declared or received as a parameter inside)
	}
	p.Reportf(lhs.Pos(), "epoch goroutine mutates %s, declared outside the goroutine; "+
		"cross-host state may only change in the single-threaded sync callback", id.Name)
}

func checkEpochCall(p *Pass, lit *ast.FuncLit, call *ast.CallExpr) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		return // conversion
	}
	if _, ok := call.Fun.(*ast.FuncLit); ok {
		return // immediately-invoked literal: its body is walked directly
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch p.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			return
		}
		// A function declared inside the goroutine is walked anyway; one
		// declared outside hides shared state from this pass.
		if obj := p.TypesInfo.Uses[id]; obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return
		}
	}
	name := calleeName(call)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if epochAllowedRecv[recvTypeString(p.TypesInfo, sel)] {
			return
		}
		name = pkgName(sel)
	}
	p.Reportf(call.Pos(), "epoch goroutines may only drive their own kernel "+
		"(sim.Kernel, sync.WaitGroup methods); move %s into the between-epoch sync callback",
		name)
}

// baseIdent unwraps selectors, indexes, stars and parens to the root
// identifier of an assignable expression.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

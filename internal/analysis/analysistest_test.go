package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture tests mirror x/tools' analysistest: each pass has a
// package under testdata/src/<pass>/ whose sources mark every expected
// finding with a trailing `// want "regexp"` comment (several patterns
// when several findings land on one line). The harness runs the pass
// with scope gating disabled and fails on any unexpected or missing
// diagnostic, so the fixtures double as executable documentation of
// what each rule does and does not flag.

func TestDeterminismFixture(t *testing.T)  { runFixture(t, Determinism, "determinism") }
func TestStoreKeysFixture(t *testing.T)    { runFixture(t, StoreKeys, "storekeys") }
func TestWatchSafetyFixture(t *testing.T)  { runFixture(t, WatchSafety, "watchsafety") }
func TestMonitorOnlyFixture(t *testing.T)  { runFixture(t, MonitorOnly, "monitoronly") }
func TestTraceCounterFixture(t *testing.T) { runFixture(t, TraceCounter, "tracecounter") }
func TestNoDeprecatedFixture(t *testing.T) { runFixture(t, NoDeprecated, "nodeprecated") }
func TestShardSafetyFixture(t *testing.T)  { runFixture(t, ShardSafety, "shardsafety") }
func TestEpochSafetyFixture(t *testing.T)  { runFixture(t, EpochSafety, "epochsafety") }
func TestHotPathAllocFixture(t *testing.T) { runFixture(t, HotPathAlloc, "hotpathalloc") }
func TestBoundedRetryFixture(t *testing.T) { runFixture(t, BoundedRetry, "boundedretry") }

// TestScopeFixture proves both sides of every scope-gated pass on a
// miniature module tree (testdata/scope, module path iorchestra), with
// scoping ENABLED — the opposite of runFixture. Determinism:
// sim packages and commands are flagged while nonSimScope's wire-facing
// packages and nonSimFiles' single files (sim-bench's stamp.go) use the
// wall clock freely. ShardSafety fires only in internal/netstore,
// EpochSafety only in internal/cluster, HotPathAlloc only under
// internal/, and BoundedRetry everywhere except internal/analysis. The
// out-of-scope twins of each violation carry no want comments, so any
// diagnostic from them fails the test.
func TestScopeFixture(t *testing.T) {
	dir := filepath.Join("testdata", "scope")
	pkgs, err := Load(LoadConfig{}, dir+"/...")
	if err != nil {
		t.Fatalf("loading scope fixture: %v", err)
	}
	var wants []*want
	flagged := map[string]bool{}
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
		flagged[pkg.Path] = false
	}
	for _, p := range []string{
		"iorchestra/internal/core", "iorchestra/internal/netstore",
		"iorchestra/internal/cluster", "iorchestra/internal/store",
		"iorchestra/internal/analysis",
		"iorchestra/cmd/iorchestra-stored", "iorchestra/cmd/iorchestra-vet",
		"iorchestra/cmd/sim-bench",
	} {
		if _, ok := flagged[p]; !ok {
			t.Fatalf("scope fixture did not load %s; got %v", p, flagged)
		}
	}
	scoped := []*Analyzer{Determinism, ShardSafety, EpochSafety, HotPathAlloc, BoundedRetry}
	diags, err := RunAnalyzers(pkgs, scoped, false)
	if err != nil {
		t.Fatalf("running scoped passes on scope fixture: %v", err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic (scope gate leaked): %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.src)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	hit  bool
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(LoadConfig{Tests: true}, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a}, true)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.src)
		}
	}
}

// claim marks the first unclaimed expectation on the diagnostic's line
// that matches its message.
func claim(wants []*want, d Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantPattern extracts the quoted expectations after a "// want" marker:
// double-quoted Go strings or backquoted raw strings, each a regexp.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantPattern.FindAllString(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					src, err := unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %q does not compile: %v", pos.Filename, pos.Line, src, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						src:  src,
					})
				}
			}
		}
	}
	return wants
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		if len(s) < 2 || !strings.HasSuffix(s, "`") {
			return "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : len(s)-1], nil
	}
	return strconv.Unquote(s)
}

package analysis

import (
	"go/ast"
)

// Types whose Watch callbacks are delivered by the store's notification
// machinery, and whose accessors therefore must not be re-entered
// synchronously from a callback literal.
var watchRecvTypes = map[string]bool{
	"*iorchestra/internal/store.Store": true,
	"*iorchestra/internal/bus.Domain":  true,
}

// Store accessors that re-enter the store when called from a callback.
var storeAccessors = map[string]bool{
	"Read": true, "Write": true,
	"ReadBool": true, "WriteBool": true,
	"ReadInt": true, "WriteInt": true,
	"ReadFloat": true, "WriteFloat": true,
	"Watch": true, "Unwatch": true,
}

// WatchSafety enforces the PR 2 watch-handler audit convention: a
// function literal passed to Store.Watch / bus.Domain.Watch is a
// notification trampoline — it may parse the event and route it, but
// must not synchronously call back into the store. Re-entry belongs in
// a kernel callback (k.After) or an audited named handler, where the
// recursion through fireWatches is bounded and reviewable.
var WatchSafety = &Analyzer{
	Name: "watchsafety",
	Doc: "function literals passed to Store.Watch/Domain.Watch must not call " +
		"store accessors synchronously (re-entrancy hazard, PR 2 watch-handler " +
		"audit); defer through sim.Kernel or route to an audited method",
	Run: runWatchSafety,
}

func runWatchSafety(p *Pass) error {
	walkFiles(p, func(_ *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Watch" {
			return true
		}
		if !watchRecvTypes[recvTypeString(p.TypesInfo, sel)] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				checkWatchLiteral(p, lit)
			}
		}
		return true
	})
	return nil
}

// checkWatchLiteral flags synchronous store accessor calls lexically
// inside the callback. Nested function literals are skipped: a closure
// handed to k.After (or stored for later) runs outside the notification
// delivery and is the sanctioned way to touch the store again.
func checkWatchLiteral(p *Pass, outer *ast.FuncLit) {
	ast.Inspect(outer.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != outer {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !storeAccessors[sel.Sel.Name] {
			return true
		}
		if !watchRecvTypes[recvTypeString(p.TypesInfo, sel)] {
			return true
		}
		p.Reportf(call.Pos(),
			"%s re-enters the store synchronously inside a watch callback; defer it through sim.Kernel (k.After) or route to an audited handler method",
			pkgName(sel))
		return true
	})
}

// Package analysis is iorchestra-vet: a suite of static-analysis passes
// that mechanically enforce the invariants this reproduction's
// correctness story rests on — deterministic simulation (golden-trace
// parity), the documented store key schema, watch-handler re-entrancy
// discipline, the Controller measurement contract, and the 1:1
// trace-event/counter mirror. docs/LINTING.md is the normative rule
// reference; each Analyzer's Doc is the short form.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained: packages are
// parsed and type-checked with the standard library only (go/parser,
// go/types), so the tool builds with zero dependencies beyond the Go
// toolchain. cmd/iorchestra-vet is the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics, -run selections and
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph rule statement shown by -list.
	Doc string
	// AppliesTo reports whether the pass runs on a package; nil means
	// every package. The driver consults it under -scope=auto; tests and
	// -scope=all run passes regardless.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// pkgName reports the receiver-qualified selector name for diagnostics.
func pkgName(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// RunAnalyzers applies every analyzer to every package it matches,
// honors //lint:allow escape hatches, and returns the surviving
// diagnostics sorted by position. scopeAll disables AppliesTo gating.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, scopeAll bool) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersWithAllows(pkgs, analyzers, scopeAll)
	return diags, err
}

// RunAnalyzersWithAllows is RunAnalyzers plus the escape-hatch ledger:
// every justified //lint:allow directive is returned with a count of
// the findings it actually suppressed in this run, which is what the
// driver's -audit mode reports (a directive that suppressed nothing is
// stale — the violation it excused is gone, so the directive must go).
func RunAnalyzersWithAllows(pkgs []*Package, analyzers []*Analyzer, scopeAll bool) ([]Diagnostic, []*AllowDirective, error) {
	var diags []Diagnostic
	var directives []*AllowDirective
	for _, pkg := range pkgs {
		allows, dirs, allowDiags := collectAllows(pkg)
		directives = append(directives, dirs...)
		diags = append(diags, allowDiags...)
		for _, a := range analyzers {
			if !scopeAll && a.AppliesTo != nil && !a.AppliesTo(strings.TrimSuffix(pkg.Path, "_test")) {
				continue
			}
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
			for _, d := range found {
				if !allows.suppresses(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(directives, func(i, j int) bool {
		a, b := directives[i], directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags, directives, nil
}

// AllowDirective is one justified //lint:allow escape hatch, with the
// suppression accounting -audit reports. Suppressed counts the findings
// the directive absorbed in this run; zero means the violation it
// excused is gone and the directive is stale.
type AllowDirective struct {
	Pos           token.Position
	Passes        []string
	Justification string
	Suppressed    int
}

// allowTable indexes //lint:allow directives by (file, line, pass); the
// leaf points back at the directive so suppressions can be counted.
type allowTable map[string]map[int]map[string]*AllowDirective

func (t allowTable) suppresses(pass string, pos token.Position) bool {
	lines := t[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line (trailing comment)
	// and on the line directly below it (directive above the statement).
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := lines[line][pass]; d != nil {
			d.Suppressed++
			return true
		}
	}
	return false
}

const allowPrefix = "//lint:allow "

// collectAllows parses every //lint:allow directive in the package. A
// directive must carry a justification after " -- "; one without it
// suppresses nothing and is itself reported, so the escape hatch can
// never be used silently.
func collectAllows(pkg *Package) (allowTable, []*AllowDirective, []Diagnostic) {
	table := allowTable{}
	var directives []*AllowDirective
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				names, reason, ok := strings.Cut(body, " -- ")
				if !ok || strings.TrimSpace(reason) == "" || strings.TrimSpace(names) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "lintallow",
						Pos:      pos,
						Message:  "lint:allow directive needs a justification: //lint:allow <pass>[,<pass>] -- <why this site is exempt>",
					})
					continue
				}
				d := &AllowDirective{Pos: pos, Justification: strings.TrimSpace(reason)}
				lines := table[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]*AllowDirective{}
					table[pos.Filename] = lines
				}
				passes := lines[pos.Line]
				if passes == nil {
					passes = map[string]*AllowDirective{}
					lines[pos.Line] = passes
				}
				for _, n := range strings.Split(names, ",") {
					name := strings.TrimSpace(n)
					d.Passes = append(d.Passes, name)
					passes[name] = d
				}
				directives = append(directives, d)
			}
		}
	}
	return table, directives, diags
}

// walkFiles runs fn over every node of every file in the pass.
func walkFiles(p *Pass, fn func(file *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return fn(file, n)
		})
	}
}

// importedPkg resolves a selector base identifier to the import path of
// the package it names, or "" when it is not a package reference.
func importedPkg(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// hasMarker reports whether a function's doc comment carries the given
// marker on a line of its own (e.g. "hotpath", written //hotpath; gofmt
// may normalize it to "// hotpath", so both spellings count). Markers
// opt declarations into pass-specific treatment: //hotpath submits a
// function to hotpathalloc, //storeloop exempts one from shardsafety.
func hasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// recvTypeString resolves the receiver type of a selector call like
// x.M(...) to its full type string (e.g. "*iorchestra/internal/store.Store"),
// or "" when no type information is available.
func recvTypeString(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		return types.TypeString(s.Recv(), nil)
	}
	// Not a method selection (package qualifier or struct field access).
	return ""
}

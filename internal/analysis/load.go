package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path; external test packages get the
	// base path with a "_test" suffix.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Tests includes _test.go files: in-package test files are merged
	// into their package, external test packages are loaded separately.
	Tests bool
	// Dir anchors relative patterns; empty means the working directory.
	Dir string
}

// Load expands go-style package patterns ("./...", "dir", "dir/...") and
// returns each matched package parsed and type-checked. Resolution is
// toolchain-free: module-internal imports are type-checked from source
// recursively (memoized), standard-library imports go through go/importer's
// source importer. Directories named testdata and hidden directories are
// skipped, exactly as the go tool skips them.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	base := cfg.Dir
	if base == "" {
		base = "."
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		expanded, err := expandDir(root, rec)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	loaders := map[string]*moduleLoader{} // module root -> loader
	for _, dir := range dirs {
		modRoot, modPath, err := findModule(dir)
		if err != nil {
			return nil, err
		}
		l := loaders[modRoot]
		if l == nil {
			l = newModuleLoader(modRoot, modPath)
			loaders[modRoot] = l
		}
		loaded, err := l.loadDir(dir, cfg.Tests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// expandDir lists dir (and recursively its subdirectories) that contain
// at least one .go file.
func expandDir(root string, recursive bool) ([]string, error) {
	if !recursive {
		return []string{root}, nil
	}
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// findModule ascends from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// moduleLoader type-checks packages of one module. Import resolves
// module-internal paths from source (memoized, without test files) and
// delegates everything else to the standard library's source importer.
type moduleLoader struct {
	fset    *token.FileSet
	std     types.Importer
	modRoot string
	modPath string
	memo    map[string]*types.Package
	loading map[string]bool
}

func newModuleLoader(modRoot, modPath string) *moduleLoader {
	fset := token.NewFileSet()
	return &moduleLoader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		modRoot: modRoot,
		modPath: modPath,
		memo:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer for dependency resolution.
func (l *moduleLoader) Import(path string) (*types.Package, error) {
	if p := l.memo[path]; p != nil {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, _, _, err := l.check(path, filepath.Join(l.modRoot, rel), noTestFiles)
		if err != nil {
			return nil, err
		}
		l.memo[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// importPath maps a directory inside the module to its import path.
func (l *moduleLoader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// File-set selectors for check.
type fileMode int

const (
	noTestFiles    fileMode = iota // package sources only
	withTestFiles                  // sources plus in-package _test.go files
	onlyXTestFiles                 // the external foo_test package
)

// loadDir loads the package in dir for analysis: the primary package
// (with its in-package test files when tests is set) and, when present
// and requested, the external _test package.
func (l *moduleLoader) loadDir(dir string, tests bool) ([]*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	mode := noTestFiles
	if tests {
		mode = withTestFiles
	}
	pkg, files, info, err := l.check(path, dir, mode)
	if err != nil {
		return nil, err
	}
	out := []*Package{{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info}}
	if tests {
		xpkg, xfiles, xinfo, err := l.check(path+"_test", dir, onlyXTestFiles)
		if err != nil {
			return nil, err
		}
		if len(xfiles) > 0 {
			out = append(out, &Package{Path: path + "_test", Dir: dir, Fset: l.fset, Files: xfiles, Types: xpkg, Info: xinfo})
		}
	}
	return out, nil
}

// check parses and type-checks the files of one package in dir.
func (l *moduleLoader) check(path, dir string, mode fileMode) (*types.Package, []*ast.File, *types.Info, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if mode == noTestFiles && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			// Syntax the loader cannot parse must fail the load loudly,
			// never silently narrow the package it hands to the passes.
			return nil, nil, nil, fmt.Errorf("parsing %s: %w", filepath.Join(dir, n), err)
		}
		isTest := strings.HasSuffix(n, "_test.go")
		isXTest := isTest && strings.HasSuffix(f.Name.Name, "_test")
		switch mode {
		case withTestFiles:
			if isXTest {
				continue
			}
		case onlyXTestFiles:
			if !isXTest {
				continue
			}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if mode == onlyXTestFiles {
			return nil, nil, nil, nil
		}
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err.Error())
			}
		},
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, nil, fmt.Errorf("type-checking %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return pkg, files, info, nil
}

package analysis

import (
	"go/ast"
	"go/token"
)

// BoundedRetry extends the PR 2 graceful-degradation contract to every
// retry loop in the tree: a loop that spins on "try again" must decide,
// in bounded time, to give up loudly. The manager's flush/release
// deadlines follow this discipline; an unbounded `for { ...; continue }`
// anywhere else is a hang waiting for a fault injector to find it.
//
// Shape matched: a bare `for {` (no init/cond/post) containing a
// loop-level `continue`. Such a loop passes only if it also contains a
// relational comparison (<, <=, >, >=) — an attempt counter or deadline
// check — guarding a bail-out (break, return or panic). Loops bounded
// in the header (`for i := 0; i < n; i++`) and dispatch loops with no
// loop-level continue are out of shape and never flagged.
var BoundedRetry = &Analyzer{
	Name: "boundedretry",
	Doc: "bare for-loops that retry via continue must bound their attempts: a " +
		"relational attempt-count or deadline comparison guarding a break/return/panic " +
		"(the PR 2 bounded-degradation contract, applied tree-wide)",
	AppliesTo: func(pkgPath string) bool {
		// The pass suite itself builds retry-shaped loops as fixtures and
		// test subjects; everything else is in scope.
		return pkgPath != "iorchestra/internal/analysis"
	},
	Run: runBoundedRetry,
}

func runBoundedRetry(p *Pass) error {
	walkFiles(p, func(_ *ast.File, n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !hasLoopLevelContinue(loop) {
			return true
		}
		if hasBoundedBail(loop) {
			return true
		}
		p.Reportf(loop.Pos(), "unbounded retry loop: a bare for that retries via continue "+
			"must bound its attempts with a counter or deadline check that breaks out "+
			"(see docs/LINTING.md#boundedretry)")
		return true
	})
	return nil
}

// inspectLoopBody walks the loop body without descending into nested
// loops or function literals, whose continues and bail-outs belong to a
// different control context.
func inspectLoopBody(loop *ast.ForStmt, fn func(n ast.Node) bool) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		return fn(n)
	})
}

// hasLoopLevelContinue reports whether the loop retries: an unlabeled
// continue that targets this loop (not a nested one).
func hasLoopLevelContinue(loop *ast.ForStmt) bool {
	found := false
	inspectLoopBody(loop, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.CONTINUE && br.Label == nil {
			found = true
		}
		return !found
	})
	return found
}

// hasBoundedBail reports whether the loop carries a bound: an if whose
// condition contains a relational comparison and whose body (or else)
// bails out via break, return or panic.
func hasBoundedBail(loop *ast.ForStmt) bool {
	found := false
	inspectLoopBody(loop, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !hasRelationalCmp(ifs.Cond) {
			return !found
		}
		if bailsOut(ifs.Body) || (ifs.Else != nil && bailsOut(ifs.Else)) {
			found = true
		}
		return !found
	})
	return found
}

func hasRelationalCmp(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

func bailsOut(stmt ast.Node) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc guards the allocation discipline that took the netstore
// hot path from 35k to 409k ops/s and the simulator to 25k guest-s/s
// (docs/PERFORMANCE.md): functions marked //hotpath — store dispatch
// and cursor ops, v2 frame encode/decode, the 4-ary heap sifts — must
// not allocate per call. Flagged inside marked functions:
//
//   - function literals (closure capture allocates),
//   - fmt package calls (reflection + allocation; build errors in cold
//     helpers instead),
//   - map and slice composite literals (per-call heap allocation),
//   - boxing a known concrete value into an interface parameter or via
//     an interface conversion.
//
// Unmarked functions are never inspected: the marker is the opt-in
// contract, so cold paths keep fmt and closures freely.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "functions marked //hotpath must not allocate per call: no function " +
		"literals, no fmt calls, no map/slice literals, no boxing of concrete " +
		"values into interfaces",
	AppliesTo: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "iorchestra/internal/")
	},
	Run: runHotPathAlloc,
}

func runHotPathAlloc(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd, "hotpath") {
				continue
			}
			checkHotBody(p, fd.Body)
		}
	}
	return nil
}

func checkHotBody(p *Pass, body *ast.BlockStmt) {
	qual := types.RelativeTo(p.Pkg)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "function literal allocates a closure on every call of a "+
				"//hotpath function; hoist it out of the hot path or bind it once at setup")
			return false
		case *ast.CompositeLit:
			tv, ok := p.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates on every call of a //hotpath "+
					"function; hoist it to a struct field or package variable")
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates on every call of a //hotpath "+
					"function; hoist it or reuse a scratch buffer")
			}
		case *ast.CallExpr:
			checkHotCall(p, qual, n)
		}
		return true
	})
}

// checkHotCall flags fmt calls and interface boxing at a call site
// inside a //hotpath function.
func checkHotCall(p *Pass, qual types.Qualifier, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && importedPkg(p.TypesInfo, sel) == "fmt" {
		// The fmt finding subsumes the boxing of its variadic arguments;
		// one diagnostic per site keeps the output actionable.
		p.Reportf(call.Pos(), "%s formats through reflection and allocates on every call "+
			"of a //hotpath function; build the message in a cold helper", pkgName(sel))
		return
	}
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		// A conversion: T(x) boxes when T is an interface and x concrete.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			reportBoxing(p, qual, call.Args[0], tv.Type)
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // builtin (append, len, panic, ...)
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through, no boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			reportBoxing(p, qual, arg, pt)
		}
	}
}

// isPointerShaped reports whether values of t fit directly in an
// interface's data word (pointers, channels, maps, funcs, and structs
// or arrays wrapping exactly one such field), so converting them to an
// interface never allocates.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && isPointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && isPointerShaped(u.Elem())
	}
	return false
}

func reportBoxing(p *Pass, qual types.Qualifier, arg ast.Expr, ifaceType types.Type) {
	if _, ok := ifaceType.(*types.TypeParam); ok {
		return
	}
	tv, ok := p.TypesInfo.Types[arg]
	if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if tv.Value != nil {
		return // constants box into static data, not per-call allocations
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return // untyped nil converts without a runtime box
	}
	if _, ok := tv.Type.(*types.TypeParam); ok {
		return
	}
	if isPointerShaped(tv.Type) {
		return // stored directly in the interface word, no allocation
	}
	p.Reportf(arg.Pos(), "argument boxes concrete %s into interface %s on a //hotpath "+
		"function; keep hot signatures concrete or pre-box the value once",
		types.TypeString(tv.Type, qual), types.TypeString(ifaceType, qual))
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The 1:1 trace/counter contract: every typed decision trace event is
// mirrored by a counter, so operators can reconcile NDJSON traces
// against Counters() snapshots even when the ring has evicted events.
// Keys are the trace.Kind constant names; values the counter fields the
// emitting module bumps. Two modules carry the contract: internal/core's
// degradation events (PR 2, docs/FAULTS.md) and internal/federation's
// cluster.* decision events (docs/CLUSTER.md). Kind and counter names
// are disjoint across the two, so one merged map checks both.
var degradationKinds = map[string]string{
	// internal/core degradation events.
	"KindHeartbeatMiss":  "heartbeatMisses",
	"KindFallbackEnter":  "fallbacks",
	"KindFallbackExit":   "restores",
	"KindFlushTimeout":   "timeouts",
	"KindReleaseRetry":   "releaseRetries",
	"KindReleaseTimeout": "releaseTimeouts",
	"KindHoldTimeout":    "holdTimeouts",
	// internal/federation cluster.* decisions.
	"KindClusterJoin":         "joins",
	"KindClusterExpire":       "expiries",
	"KindClusterPlace":        "places",
	"KindClusterReject":       "rejects",
	"KindClusterMigrateStart": "migrateStarts",
	"KindClusterMigrateSync":  "migrateSyncs",
	"KindClusterMigrateDone":  "migrateDones",
	"KindClusterMigrateAbort": "migrateAborts",
	// internal/core's elastic G-state decisions (docs/GSTATES.md). The
	// counter names carry the gstate prefix because this map is checked
	// across modules: a bare "demotes" would collide with any future
	// counter of that name elsewhere.
	"KindGStateDemote":    "gstateDemotes",
	"KindGStatePromote":   "gstatePromotes",
	"KindGStateViolation": "gstateViolations",
	"KindGStateAdmit":     "gstateAdmits",
	"KindGStateDefer":     "gstateDefers",
}

// degradationCounters is the reverse index.
var degradationCounters = func() map[string]string {
	m := make(map[string]string, len(degradationKinds))
	for k, c := range degradationKinds {
		m[c] = k
	}
	return m
}()

// TraceCounter checks both directions of the mirror within each
// function of the management module: a degradation trace.Kind used in a
// function requires the mapped counter to be incremented there, and a
// counter increment requires the kind to be emitted (directly or by
// passing the kind to an emitting helper) in the same function.
var TraceCounter = &Analyzer{
	Name: "tracecounter",
	Doc: "every mirrored trace-event emission site must increment its " +
		"counter in the same function, and vice versa (1:1 trace/counter " +
		"contract: docs/FAULTS.md for core, docs/CLUSTER.md for federation)",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "iorchestra/internal/core" ||
			pkgPath == "iorchestra/internal/federation" ||
			pkgPath == "iorchestra/internal/gstate"
	},
	Run: runTraceCounter,
}

func runTraceCounter(p *Pass) error {
	for _, f := range p.Files {
		// The contract binds the management module itself, not tests
		// asserting over it.
		if pos := p.Fset.Position(f.Pos()); strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMirror(p, fd)
		}
	}
	return nil
}

func checkMirror(p *Pass, fd *ast.FuncDecl) {
	kindUses := map[string]ast.Node{}    // kind const name -> first use
	counterIncs := map[string]ast.Node{} // counter field -> first bump
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if importedPkg(p.TypesInfo, n) == "iorchestra/internal/trace" {
				if _, ok := degradationKinds[n.Sel.Name]; ok && kindUses[n.Sel.Name] == nil {
					kindUses[n.Sel.Name] = n
				}
			}
		case *ast.IncDecStmt:
			if n.Tok == token.INC {
				if name, ok := bumpedField(n.X); ok && counterIncs[name] == nil {
					counterIncs[name] = n
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if name, ok := bumpedField(n.Lhs[0]); ok && counterIncs[name] == nil {
					counterIncs[name] = n
				}
			}
		}
		return true
	})
	for kind, node := range kindUses {
		counter := degradationKinds[kind]
		if counterIncs[counter] == nil {
			p.Reportf(node.Pos(),
				"trace.%s emitted without incrementing the mirrored %s counter in the same function (1:1 trace/counter contract)",
				kind, counter)
		}
	}
	for counter, node := range counterIncs {
		kind := degradationCounters[counter]
		if kindUses[kind] == nil {
			p.Reportf(node.Pos(),
				"%s incremented without emitting the mirrored trace.%s in the same function (1:1 trace/counter contract)",
				counter, kind)
		}
	}
}

// bumpedField extracts the field name from expressions like cc.holdTimeouts.
func bumpedField(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, tracked := degradationCounters[sel.Sel.Name]; !tracked {
		return "", false
	}
	return sel.Sel.Name, true
}

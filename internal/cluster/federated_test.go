package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"iorchestra/internal/fault"
	"iorchestra/internal/federation"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

var updateClusterGolden = flag.Bool("update", false, "rewrite the cluster golden trace fixture")

// fedBed is a federated two-or-more-host testbed over a dedicated
// cluster store. Only the federation records into rec, so the trace is
// pure cluster.* decisions.
type fedBed struct {
	k      *sim.Kernel
	cs     *store.Store
	rec    *trace.Recorder
	fed    *federation.Federation
	hosts  []*hypervisor.Host
	agents []*federation.HostAgent
}

func newFedBed(t testing.TB, seed uint64, nHosts int, fcfg federation.Config) *fedBed {
	t.Helper()
	k := sim.NewKernel()
	rng := stats.NewStream(seed, "fedbed")
	b := &fedBed{
		k:   k,
		cs:  store.New(k, 30*sim.Microsecond),
		rec: trace.NewRecorder(k, 1<<16),
	}
	b.fed = federation.New(k, federation.LocalView{St: b.cs}, b.rec, fcfg)
	for i := 0; i < nHosts; i++ {
		id := fmt.Sprintf("host%d", i)
		h := hypervisor.New(k, hypervisor.Config{Sockets: 1, CoresPerSocket: 6}, rng.Fork(id))
		ag, err := b.fed.Join(id, "", h)
		if err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
		b.hosts = append(b.hosts, h)
		b.agents = append(b.agents, ag)
	}
	b.fed.Start()
	return b
}

// inject queues one VM directly (bypassing the Poisson process) and
// pushes it through the placement engine.
func (f *FederatedArrivals) inject(uid string, vcpus int, app AppKind) {
	f.arrived++
	f.queue = append(f.queue, fedPending{uid: uid, vcpus: vcpus, app: app})
	f.tryPlace()
}

// runningUIDs lists the engine's live VMs in uid order.
func (f *FederatedArrivals) runningUIDs() []string {
	uids := make([]string, 0, len(f.running))
	for uid := range f.running {
		uids = append(uids, uid)
	}
	sort.Strings(uids)
	return uids
}

// assertCountersMirrorTrace enforces the 1:1 trace↔counter contract the
// tracecounter vet pass promises statically, on a live run.
func assertCountersMirrorTrace(t *testing.T, b *fedBed) {
	t.Helper()
	c := b.fed.Counters()
	for _, m := range []struct {
		kind trace.Kind
		n    uint64
	}{
		{trace.KindClusterJoin, c.Joins},
		{trace.KindClusterExpire, c.Expiries},
		{trace.KindClusterPlace, c.Places},
		{trace.KindClusterReject, c.Rejects},
		{trace.KindClusterMigrateStart, c.MigrateStarts},
		{trace.KindClusterMigrateSync, c.MigrateSyncs},
		{trace.KindClusterMigrateDone, c.MigrateDones},
		{trace.KindClusterMigrateAbort, c.MigrateAborts},
	} {
		if got := b.rec.Count(m.kind); got != m.n {
			t.Errorf("%s events = %d, counter = %d", m.kind, got, m.n)
		}
	}
}

const fedGoldenSeed = 4711

// runFedGoldenScenario is the fixed-seed two-host acceptance scenario:
// Poisson arrivals flow through the scoring engine, the rebalancer runs,
// and one migration is forced at a fixed instant so every run exercises
// the full freeze/sync/commit path.
func runFedGoldenScenario(t testing.TB, seed uint64) (*fedBed, *FederatedArrivals) {
	t.Helper()
	b := newFedBed(t, seed, 2, federation.Config{
		RebalanceInterval: 10 * sim.Second,
		RebalanceGap:      4,
	})
	fa := NewFederatedArrivals(b.k, b.fed, ArrivalsConfig{
		Lambda:   10,
		Duration: 2 * sim.Minute,
		Sizes:    []int{2, 4},
		YCSBOps:  1500, FSBytes: 32 << 20, Cloud9Bursts: 200,
	}, VMHooks{}, stats.NewStream(seed, "arrivals"))
	fa.Start()
	// From t=45s on, force one cross-host migration of the first movable
	// VM (retrying each second until a candidate is running) so every run
	// exercises the freeze/sync/commit path even when the rebalancer
	// finds the hosts balanced.
	var force func()
	force = func() {
		for _, uid := range fa.runningUIDs() {
			from := b.fed.GuestHost(uid)
			to := "host0"
			if from == to {
				to = "host1"
			}
			if b.fed.Migrate(uid, from, to) {
				return
			}
		}
		b.k.After(sim.Second, force)
	}
	b.k.After(45*sim.Second, force)
	b.k.RunUntil(5 * sim.Minute)
	return b, fa
}

func fedGoldenPath() string {
	return filepath.Join("testdata", "golden_cluster.ndjson")
}

// TestFederatedGoldenClusterTrace is the PR's acceptance run: a
// fixed-seed two-host arrival experiment must place guests through the
// scoring engine, complete at least one live migration, and emit a
// byte-stable cluster.* decision trace (testdata fixture; -update
// rewrites it).
func TestFederatedGoldenClusterTrace(t *testing.T) {
	b, fa := runFedGoldenScenario(t, fedGoldenSeed)
	c := b.fed.Counters()
	if c.Places == 0 {
		t.Fatal("no guest went through the placement engine")
	}
	if c.MigrateDones == 0 || fa.Migrated() == 0 {
		t.Fatalf("no live migration completed (counters %+v)", c)
	}
	if fa.Completed() == 0 {
		t.Fatal("no VM completed its problem size")
	}
	assertCountersMirrorTrace(t, b)
	if d := b.rec.Dropped(); d > 0 {
		t.Fatalf("trace ring evicted %d records; raise the capacity", d)
	}

	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf, b.rec.Events()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := fedGoldenPath()
	if *updateClusterGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records)", path, bytes.Count(got, []byte("\n")))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster decision trace diverged from %s (golden %d bytes, got %d)",
			path, len(want), len(got))
	}
}

// TestFederatedGoldenDetectsPerturbation guards the harness: a different
// seed must not reproduce the fixture, or the scenario would be too
// inert to catch behavior changes.
func TestFederatedGoldenDetectsPerturbation(t *testing.T) {
	if *updateClusterGolden {
		t.Skip("fixture being rewritten")
	}
	want, err := os.ReadFile(fedGoldenPath())
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	b, _ := runFedGoldenScenario(t, fedGoldenSeed+1)
	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf, b.rec.Events()); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		t.Fatal("perturbed seed reproduced the fixture exactly")
	}
}

// abortCfg times migration phases against the heartbeat TTL so a host
// killed right after a beat is still live at +210 ms and +410 ms but
// stale at +610 ms: pre-copy and freeze proceed, catch-up aborts.
var abortCfg = federation.Config{
	HeartbeatInterval: 100 * sim.Millisecond,
	TTL:               500 * sim.Millisecond,
	MigrationStep:     200 * sim.Millisecond,
}

// TestMigrationAbortsWhenTargetDies is the PR's second acceptance case:
// the target is fault-killed mid-transfer (after freeze), the migration
// aborts with reason target-dead, and the guest is restored on the
// source, where it runs to completion.
func TestMigrationAbortsWhenTargetDies(t *testing.T) {
	b := newFedBed(t, 7, 2, abortCfg)
	fa := NewFederatedArrivals(b.k, b.fed, ArrivalsConfig{
		Cloud9Bursts: 800, // ≈8 s of 10 ms bursts: still running at the 2 s audit
	}, VMHooks{}, stats.NewStream(7, "arr"))
	fa.inject("vm001", 2, AppCloud9)
	if got := b.fed.GuestHost("vm001"); got != "host0" {
		t.Fatalf("vm001 placed on %q, want host0", got)
	}

	// Kill the target just after its beat at t=500ms, then start the
	// migration while the registry still believes it is alive.
	b.k.RunUntil(510 * sim.Millisecond)
	b.agents[1].Stop()
	if !b.fed.Migrate("vm001", "host0", "host1") {
		t.Fatal("Migrate refused a live-looking target")
	}

	b.k.RunUntil(2 * sim.Second)
	c := b.fed.Counters()
	if c.MigrateStarts != 1 || c.MigrateAborts != 1 || c.MigrateDones != 0 {
		t.Fatalf("counters = %+v, want one started, one aborted migration", c)
	}
	var abort *trace.Record
	for _, e := range b.rec.Events() {
		if e.Kind == trace.KindClusterMigrateAbort {
			e := e
			abort = &e
		}
	}
	if abort == nil || abort.Value != "target-dead" || abort.Host != "host0" || abort.Path != "vm001" {
		t.Fatalf("abort event = %+v, want target-dead on vm001 from host0", abort)
	}

	// Restored on the source: record intact, guest present, app running.
	vm := fa.running["vm001"]
	if vm == nil || vm.frozen || vm.host != "host0" {
		t.Fatalf("vm001 after abort = %+v, want unfrozen on host0", vm)
	}
	if b.fed.GuestHost("vm001") != "host0" {
		t.Fatalf("guest record moved to %q", b.fed.GuestHost("vm001"))
	}
	if b.hosts[0].Guest(vm.dom) == nil {
		t.Fatal("source guest vanished during aborted migration")
	}

	b.k.RunUntil(4 * sim.Minute)
	if fa.Completed() != 1 {
		t.Fatalf("Completed = %d, want the restored VM to finish on the source", fa.Completed())
	}
	assertCountersMirrorTrace(t, b)
}

// TestMigrationAbortsWhenSourceExpires: the source's heartbeat expires
// mid-migration (after freeze). The commit gate notices and aborts with
// source-dead — the authoritative guest state died with the host, so the
// cluster record is dropped instead of restored.
func TestMigrationAbortsWhenSourceExpires(t *testing.T) {
	b := newFedBed(t, 8, 2, abortCfg)
	fa := NewFederatedArrivals(b.k, b.fed, ArrivalsConfig{
		Cloud9Bursts: 150,
	}, VMHooks{}, stats.NewStream(8, "arr"))
	fa.inject("vm001", 2, AppCloud9)

	// Kill the SOURCE after its beat; phases run at +200/400/600/800 ms,
	// so pre-copy, freeze and catch-up see a live target, and the commit
	// at +810 ms finds the source stale (age ≈ 810 ms > 500 ms TTL).
	b.k.RunUntil(510 * sim.Millisecond)
	b.agents[0].Stop()
	if !b.fed.Migrate("vm001", "host0", "host1") {
		t.Fatal("Migrate refused")
	}

	b.k.RunUntil(3 * sim.Second)
	c := b.fed.Counters()
	if c.MigrateAborts != 1 || c.MigrateDones != 0 {
		t.Fatalf("counters = %+v, want one aborted migration", c)
	}
	var abort *trace.Record
	for _, e := range b.rec.Events() {
		if e.Kind == trace.KindClusterMigrateAbort {
			e := e
			abort = &e
		}
	}
	if abort == nil || abort.Value != "source-dead" {
		t.Fatalf("abort event = %+v, want source-dead", abort)
	}
	if got := b.fed.GuestHost("vm001"); got != "" {
		t.Fatalf("guest record survived a dead source: %q", got)
	}
	assertCountersMirrorTrace(t, b)
}

// TestMigrationCarriesRacingGuestWrites is the satellite race case:
// writes landing in the source subtree after the pre-copy snapshot (but
// before freeze) must reach the target via the delta catch-up rounds,
// prune markers included, and the moved guest must be able to write its
// transferred nodes on the target.
func TestMigrationCarriesRacingGuestWrites(t *testing.T) {
	b := newFedBed(t, 9, 2, federation.Config{MigrationStep: 5 * sim.Millisecond})
	fa := NewFederatedArrivals(b.k, b.fed, ArrivalsConfig{
		Cloud9Bursts: 5000,
	}, VMHooks{}, stats.NewStream(9, "arr"))
	fa.inject("vm001", 2, AppCloud9)
	vm := fa.running["vm001"]
	srcDom := vm.dom
	srcRoot := store.DomainPath(srcDom)
	src := b.hosts[0].Store()
	if err := src.Write(srcDom, srcRoot+"/race/pre", "v0"); err != nil {
		t.Fatal(err)
	}

	b.k.RunUntil(100 * sim.Millisecond)
	if !b.fed.Migrate("vm001", "host0", "host1") {
		t.Fatal("Migrate refused")
	}
	// Pre-copy snapshots at +5 ms, freeze lands at +10 ms. The +2 ms
	// write rides the snapshot; the +7 ms batch races it and must be
	// caught by the post-freeze delta rounds.
	b.k.After(2*sim.Millisecond, func() {
		src.Write(srcDom, srcRoot+"/race/early", "e1")
	})
	b.k.After(7*sim.Millisecond, func() {
		src.Write(srcDom, srcRoot+"/race/early", "e2")
		src.Write(srcDom, srcRoot+"/race/late", "l1")
		src.Remove(store.Dom0, srcRoot+"/race/pre")
	})

	b.k.RunUntil(400 * sim.Millisecond)
	if got := b.fed.Counters().MigrateDones; got != 1 {
		t.Fatalf("MigrateDones = %d, want 1", got)
	}
	if vm.host != "host1" {
		t.Fatalf("vm001 on %q, want host1", vm.host)
	}
	dstRoot := store.DomainPath(vm.dom)
	dst := b.hosts[1].Store()
	for path, want := range map[string]string{
		dstRoot + "/race/early": "e2",
		dstRoot + "/race/late":  "l1",
	} {
		got, err := dst.Read(store.Dom0, path)
		if err != nil || got != want {
			t.Fatalf("target %s = (%q, %v), want %q", path, got, err, want)
		}
	}
	if _, err := dst.Read(store.Dom0, dstRoot+"/race/pre"); err == nil {
		t.Fatal("removed-before-freeze node resurfaced on the target")
	}
	// The handoff granted the new domain write access to its own nodes.
	if err := dst.Write(vm.dom, dstRoot+"/race/late", "owned"); err != nil {
		t.Fatalf("migrated guest cannot write its transferred node: %v", err)
	}
	// The source copy is retired.
	if _, err := src.Read(store.Dom0, srcRoot); err == nil {
		t.Fatal("source subtree survived the commit")
	}
	// The sync rounds actually used the delta path and converged.
	sawDelta, last := false, ""
	for _, e := range b.rec.Events() {
		if e.Kind == trace.KindClusterMigrateSync {
			last = e.Value
			if e.Value == "delta" {
				sawDelta = true
			}
		}
	}
	if !sawDelta || last != "match" {
		t.Fatalf("sync rounds = (delta seen %v, last %q), want delta then match", sawDelta, last)
	}
}

func clusterSoakDuration() sim.Duration {
	if v := os.Getenv("CLUSTER_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return sim.Duration(d.Nanoseconds())
		}
	}
	return 45 * sim.Second
}

// TestClusterSoakUnderStoreFaults drives federation traffic — arrivals,
// heartbeats, rebalancer migrations — over a cluster store that drops 5%
// of watch notifications and delays 20% of the rest (the PR 2 fault
// grammar). Spurious expiries must self-heal, no VM may be lost, and the
// trace↔counter mirror must survive. CI stretches it via CLUSTER_SOAK.
func TestClusterSoakUnderStoreFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	b := newFedBed(t, 1315, 3, federation.Config{
		RebalanceInterval: 2 * sim.Second,
		RebalanceGap:      4,
	})
	spec, err := fault.ParseSpec("watchdrop=0.05,watchdelay=5ms:0.2")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(b.k, spec, stats.NewStream(1315, "faults"))
	b.cs.SetFaultHooks(inj.StoreHooks())

	dur := clusterSoakDuration()
	fa := NewFederatedArrivals(b.k, b.fed, ArrivalsConfig{
		Lambda:   20,
		Duration: dur,
		Sizes:    []int{2, 4},
		YCSBOps:  1500, FSBytes: 32 << 20, Cloud9Bursts: 200,
	}, VMHooks{}, stats.NewStream(1316, "arr"))
	fa.Start()
	b.k.RunUntil(dur)

	// Quiesce: faults off, let in-flight migrations resolve and the
	// registry heal, then stop the periodic loops and audit.
	b.cs.SetFaultHooks(nil)
	b.k.RunUntil(dur + 2*sim.Second)
	b.fed.Stop()
	b.k.RunUntil(dur + 4*sim.Second)

	if n := len(b.fed.Migrating()); n != 0 {
		t.Fatalf("%d migrations still in flight after quiesce", n)
	}
	c := b.fed.Counters()
	if c.MigrateStarts != c.MigrateDones+c.MigrateAborts {
		t.Fatalf("migration ledger broken: %+v", c)
	}
	if fa.Arrived() != fa.Completed()+fa.Running()+fa.QueueLen() {
		t.Fatalf("VM ledger broken: arrived %d != completed %d + running %d + queued %d",
			fa.Arrived(), fa.Completed(), fa.Running(), fa.QueueLen())
	}
	for _, uid := range fa.runningUIDs() {
		vm := fa.running[uid]
		if vm.frozen {
			t.Fatalf("%s left frozen after quiesce", uid)
		}
		if b.fed.Member(vm.host) == nil || b.fed.Member(vm.host).Guest(vm.dom) == nil {
			t.Fatalf("%s lost its guest (host %s dom %d)", uid, vm.host, vm.dom)
		}
	}
	// Every host healed back into the registry despite dropped beats.
	reg := b.fed.Registry()
	if got := reg.Hosts(); len(got) != 3 {
		t.Fatalf("registry = %v, want all 3 hosts after healing", got)
	}
	for _, id := range reg.Hosts() {
		if !reg.Live(id) {
			t.Fatalf("host %s not live after faults removed", id)
		}
	}
	assertCountersMirrorTrace(t, b)
	t.Logf("soak %v: %d arrived, %d completed, %d migrations (%d aborted), %d expiries, %d faults",
		dur, fa.Arrived(), fa.Completed(), c.MigrateDones, c.MigrateAborts, c.Expiries, inj.Total())
}

package cluster

import (
	"iorchestra/internal/apps"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/workload"
)

// AppKind selects the application a dynamically arriving VM runs; the
// paper's mix is {FS, YCSB1, Cloud9} (Sec. 5.3).
type AppKind int

const (
	// AppFS runs the FileBench fileserver until FSBytes are written.
	AppFS AppKind = iota
	// AppYCSB1 runs the update-heavy YCSB mix for YCSBOps operations.
	AppYCSB1
	// AppCloud9 runs CPU bursts until Cloud9Bursts complete.
	AppCloud9
)

// String names the app kind.
func (a AppKind) String() string {
	switch a {
	case AppFS:
		return "FS"
	case AppYCSB1:
		return "YCSB1"
	default:
		return "Cloud9"
	}
}

// ArrivalsConfig parameterizes the dynamic experiment.
type ArrivalsConfig struct {
	// Lambda is the Poisson VM arrival rate per minute (paper: 4..20).
	Lambda float64
	// Duration is the experiment length (paper: one hour per λ).
	Duration sim.Duration
	// Sizes are the candidate VCPU counts (= GB of memory); paper:
	// {2,4,6,8,10}.
	Sizes []int
	// Apps is the candidate application mix.
	Apps []AppKind
	// Problem sizes (paper: 50,000 YCSB operations; 2 GB FS data).
	YCSBOps      uint64
	FSBytes      int64
	Cloud9Bursts int
	// Overcommit allows activeVCPUs up to Overcommit × usable cores
	// (default 1.0: no overcommit, FIFO queueing instead).
	Overcommit float64
}

func (c *ArrivalsConfig) fillDefaults() {
	if c.Lambda <= 0 {
		c.Lambda = 4
	}
	if c.Duration <= 0 {
		c.Duration = sim.Hour
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 4, 6, 8, 10}
	}
	if len(c.Apps) == 0 {
		c.Apps = []AppKind{AppFS, AppYCSB1, AppCloud9}
	}
	if c.YCSBOps == 0 {
		c.YCSBOps = 50000
	}
	if c.FSBytes == 0 {
		c.FSBytes = 2 << 30
	}
	if c.Cloud9Bursts == 0 {
		c.Cloud9Bursts = 2000
	}
	if c.Overcommit <= 0 {
		c.Overcommit = 1.0
	}
}

// VMHooks lets the experiment wire a system (baseline, SDC, DIF,
// IOrchestra) into each VM's lifecycle.
type VMHooks struct {
	// OnCreate runs after guest creation, before its app starts —
	// install drivers here.
	OnCreate func(rt *hypervisor.GuestRuntime)
	// OnRemove runs just before guest removal.
	OnRemove func(rt *hypervisor.GuestRuntime)
}

type pendingVM struct {
	vcpus int
	app   AppKind
}

type runningVM struct {
	rt    *hypervisor.GuestRuntime
	vcpus int
	app   AppKind
	stop  func()
	// written reports application write bytes accepted so far; ioBytes
	// the total I/O bytes. Used for live throughput accounting.
	written func() float64
	ioBytes func() float64
}

// Arrivals drives the dynamic VM experiment on one host.
type Arrivals struct {
	k     *sim.Kernel
	h     *hypervisor.Host
	cfg   ArrivalsConfig
	hooks VMHooks
	// rng drives the arrival process only (gaps, sizes, app choice); VM
	// workloads get independent per-placement streams derived from
	// appSeed, so arrival sequences stay identical across compared
	// systems no matter when each system finishes its VMs.
	rng     *stats.Stream
	appSeed uint64

	queue       []pendingVM
	running     map[store.DomID]*runningVM
	activeVCPUs int
	usableCores int

	arrived      int
	placed       int
	completed    int
	writtenBytes float64
	ioBytes      float64

	stopped bool
}

// NewArrivals builds the engine on host h.
func NewArrivals(k *sim.Kernel, h *hypervisor.Host, cfg ArrivalsConfig, hooks VMHooks, rng *stats.Stream) *Arrivals {
	cfg.fillDefaults()
	// Admission budgets by total cores on every platform: VCPUs may share
	// cores (work-conserving), so reserving polling cores does not shrink
	// the admission budget, only the compute capacity.
	usable := h.TotalCores()
	return &Arrivals{
		k: k, h: h, cfg: cfg, hooks: hooks, rng: rng,
		appSeed: rng.Uint64(),
		running: map[store.DomID]*runningVM{}, usableCores: usable,
	}
}

// Arrived, Placed, Completed, QueueLen report progress.
func (a *Arrivals) Arrived() int { return a.arrived }

// Placed reports VMs that obtained capacity.
func (a *Arrivals) Placed() int { return a.placed }

// Completed reports VMs that finished their problem size (Fig. 10b).
func (a *Arrivals) Completed() int { return a.completed }

// QueueLen reports VMs waiting FIFO for capacity.
func (a *Arrivals) QueueLen() int { return len(a.queue) }

// WrittenBytes reports aggregate application write bytes (Table 2),
// including VMs still running.
func (a *Arrivals) WrittenBytes() float64 {
	total := a.writtenBytes
	for _, run := range a.running {
		if run.written != nil {
			total += run.written()
		}
	}
	return total
}

// IOBytes reports aggregate application I/O bytes, read and write
// (Fig. 11's I/O throughput numerator), including VMs still running.
func (a *Arrivals) IOBytes() float64 {
	total := a.ioBytes
	for _, run := range a.running {
		if run.ioBytes != nil {
			total += run.ioBytes()
		}
	}
	return total
}

// Start begins Poisson arrivals and runs until the configured duration;
// VMs still running at the end are left to finish or be abandoned by the
// caller's RunUntil horizon.
func (a *Arrivals) Start() { a.scheduleNext() }

// Stop halts new arrivals.
func (a *Arrivals) Stop() { a.stopped = true }

func (a *Arrivals) scheduleNext() {
	if a.stopped {
		return
	}
	ratePerSec := a.cfg.Lambda / 60.0
	gap := sim.DurationOf(a.rng.Exponential(ratePerSec))
	a.k.After(gap, func() {
		if a.stopped || a.k.Now() >= a.cfg.Duration {
			return
		}
		a.arrive()
		a.scheduleNext()
	})
}

func (a *Arrivals) arrive() {
	a.arrived++
	vm := pendingVM{
		vcpus: stats.Pick(a.rng, a.cfg.Sizes),
		app:   stats.Pick(a.rng, a.cfg.Apps),
	}
	a.queue = append(a.queue, vm)
	a.tryPlace()
}

// tryPlace admits queued VMs FIFO while capacity remains.
func (a *Arrivals) tryPlace() {
	budget := int(float64(a.usableCores) * a.cfg.Overcommit)
	for len(a.queue) > 0 {
		vm := a.queue[0]
		if a.activeVCPUs+vm.vcpus > budget {
			return
		}
		a.queue = a.queue[1:]
		a.place(vm)
	}
}

func (a *Arrivals) place(vm pendingVM) {
	a.placed++
	a.activeVCPUs += vm.vcpus
	rt := a.h.CreateGuest(guest.Config{
		VCPUs:    vm.vcpus,
		MemBytes: int64(vm.vcpus) << 30,
	}, guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
		// The OS page cache available for dirty data is bounded by what
		// the apps leave free, not the whole VM (≈1 GB regardless of
		// size); write bursts therefore outrun the dirty budget, which is
		// the regime the flush policy targets.
		TotalPages:      (1 << 30) / pagecache.PageSize,
		DirtyRatio:      0.2,
		BackgroundRatio: 0.1,
		WritebackWindow: 64,
	}})
	if a.hooks.OnCreate != nil {
		a.hooks.OnCreate(rt)
	}
	run := &runningVM{rt: rt, vcpus: vm.vcpus, app: vm.app}
	a.running[rt.G.ID()] = run
	a.startApp(run)
}

func (a *Arrivals) finish(run *runningVM, written, io float64) {
	if _, ok := a.running[run.rt.G.ID()]; !ok {
		return
	}
	run.written, run.ioBytes = nil, nil
	delete(a.running, run.rt.G.ID())
	a.completed++
	a.writtenBytes += written
	a.ioBytes += io
	a.activeVCPUs -= run.vcpus
	if a.hooks.OnRemove != nil {
		a.hooks.OnRemove(run.rt)
	}
	a.h.RemoveGuest(run.rt.G.ID())
	a.tryPlace()
}

// startApp launches the VM's application with its fixed problem size.
func (a *Arrivals) startApp(run *runningVM) {
	g := run.rt.G
	d := g.Disks()[0]
	rng := stats.NewStream(a.appSeed+uint64(a.placed), "app")
	switch run.app {
	case AppFS:
		fs := workload.NewFS(a.k, g, d, workload.FSConfig{
			Threads:      run.vcpus,
			MeanFileSize: 1 << 20,
			Think:        6 * sim.Millisecond,
			WriteFrac:    0.8, AppendFrac: 0.1, ReadFrac: 0.05,
			BurstOn:  1500 * sim.Millisecond,
			BurstOff: 3500 * sim.Millisecond,
		}, rng)
		fs.Start()
		run.stop = fs.Stop
		run.written = fs.WrittenBytes
		run.ioBytes = fs.WrittenBytes
		// Poll for the data-transmission quota; FS has no natural end.
		target := float64(a.cfg.FSBytes)
		var check func()
		check = func() {
			if _, ok := a.running[run.rt.G.ID()]; !ok {
				return
			}
			if fs.WrittenBytes() >= target {
				fs.Stop()
				a.finish(run, fs.WrittenBytes(), fs.WrittenBytes())
				return
			}
			a.k.After(250*sim.Millisecond, check)
		}
		a.k.After(250*sim.Millisecond, check)
	case AppYCSB1:
		node := apps.NewCassandraNode(a.k, g, d, apps.CassandraConfig{}, rng.Fork("node"))
		cl := apps.NewCassandraCluster(a.k, []*apps.CassandraNode{node}, rng.Fork("cl"))
		// Closed-loop with one client per VCPU ("the number of
		// application threads is the same as its VCPUs").
		cfg := workload.YCSB1()
		op := workload.YCSBOp(cfg, cl, rng.Fork("op"))
		gen := workload.NewClosedLoop(a.k, run.vcpus, 0, op, rng.Fork("gen"))
		gen.Start()
		run.stop = gen.Stop
		run.written = func() float64 { return float64(gen.Recorder().Completed()) / 2 * 4096 }
		run.ioBytes = func() float64 { return float64(gen.Recorder().Completed()) * 4096 }
		ops := a.cfg.YCSBOps
		var check func()
		check = func() {
			if _, ok := a.running[run.rt.G.ID()]; !ok {
				return
			}
			if gen.Recorder().Completed() >= ops {
				gen.Stop()
				// Half the ops are 4 KiB commitlog updates.
				written := float64(ops) / 2 * 4096
				a.finish(run, written, written*2)
				return
			}
			a.k.After(250*sim.Millisecond, check)
		}
		a.k.After(250*sim.Millisecond, check)
	case AppCloud9:
		cb := workload.NewCPUBound(a.k, g, rng)
		cb.TotalBursts = a.cfg.Cloud9Bursts
		cb.OnDone = func() { a.finish(run, 0, 0) }
		cb.Start()
		run.stop = cb.Stop
	}
}

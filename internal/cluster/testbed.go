// Package cluster provides the multi-host testbed and the dynamic
// VM-arrival engine the paper's Sec. 5.3/5.5 experiments use: Poisson
// arrivals of randomly-sized VMs running a random application with a
// fixed problem size, served FIFO, with completion and throughput
// accounting.
package cluster

import (
	"fmt"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// Testbed is a set of hosts, each with its own storage array, connected
// by the model network (one-way latency folded into the app models).
type Testbed struct {
	k     *sim.Kernel
	hosts []*hypervisor.Host
}

// NewTestbed builds n identically configured hosts. Each host gets an
// independent RNG fork and its own device (cfg.Device must be nil so
// per-host arrays are created).
func NewTestbed(k *sim.Kernel, n int, cfg hypervisor.Config, rng *stats.Stream) *Testbed {
	if n <= 0 {
		n = 1
	}
	t := &Testbed{k: k}
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("host%d", i)
		c.Device = nil
		t.hosts = append(t.hosts, hypervisor.New(k, c, rng.Fork(c.Name)))
	}
	return t
}

// Hosts exposes the members.
func (t *Testbed) Hosts() []*hypervisor.Host { return t.hosts }

// Host returns the i-th host.
func (t *Testbed) Host(i int) *hypervisor.Host { return t.hosts[i] }

// Size reports the number of hosts.
func (t *Testbed) Size() int { return len(t.hosts) }

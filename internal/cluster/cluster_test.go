package cluster

import (
	"testing"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

func TestTestbedBuildsIndependentHosts(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 3, hypervisor.Config{}, stats.NewStream(1, "tb"))
	if tb.Size() != 3 {
		t.Fatalf("Size = %d", tb.Size())
	}
	if tb.Host(0).Device() == tb.Host(1).Device() {
		t.Fatal("hosts share a device")
	}
	if tb.Host(0).Name() == tb.Host(1).Name() {
		t.Fatal("hosts share a name")
	}
	if len(tb.Hosts()) != 3 {
		t.Fatal("Hosts() wrong")
	}
}

func TestArrivalsPlacesRunsAndCompletes(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(2, "arr")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	cfg := ArrivalsConfig{
		Lambda:       12,
		Duration:     4 * sim.Minute,
		Sizes:        []int{2, 4},
		Apps:         []AppKind{AppFS, AppYCSB1, AppCloud9},
		YCSBOps:      2000,
		FSBytes:      64 << 20,
		Cloud9Bursts: 200,
	}
	created, removed := 0, 0
	a := NewArrivals(k, h, cfg, VMHooks{
		OnCreate: func(rt *hypervisor.GuestRuntime) { created++ },
		OnRemove: func(rt *hypervisor.GuestRuntime) { removed++ },
	}, rng.Fork("arr"))
	a.Start()
	k.RunUntil(6 * sim.Minute)
	if a.Arrived() < 20 {
		t.Fatalf("Arrived = %d at λ=12 over 4 min", a.Arrived())
	}
	if a.Placed() == 0 || a.Completed() == 0 {
		t.Fatalf("placed=%d completed=%d", a.Placed(), a.Completed())
	}
	if created != a.Placed() || removed != a.Completed() {
		t.Fatalf("hooks: created=%d placed=%d removed=%d completed=%d",
			created, a.Placed(), removed, a.Completed())
	}
	if a.WrittenBytes() == 0 {
		t.Fatal("no write throughput recorded")
	}
	// Conservation: placed = completed + still running + never-placed.
	if a.Placed() < a.Completed() {
		t.Fatal("completed more than placed")
	}
}

func TestArrivalsFIFOQueueUnderPressure(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(3, "arr")
	// Tiny host: 1 socket × 4 cores; big VMs queue.
	h := hypervisor.New(k, hypervisor.Config{Sockets: 1, CoresPerSocket: 4}, rng.Fork("host"))
	cfg := ArrivalsConfig{
		Lambda:       30,
		Duration:     2 * sim.Minute,
		Sizes:        []int{4},
		Apps:         []AppKind{AppCloud9},
		Cloud9Bursts: 3000, // ~30 s per VM on 4 VCPUs
	}
	a := NewArrivals(k, h, cfg, VMHooks{}, rng.Fork("arr"))
	a.Start()
	k.RunUntil(90 * sim.Second)
	// Only one 4-VCPU VM fits at a time: a queue must have formed.
	if a.QueueLen() == 0 {
		t.Fatalf("no FIFO queue under pressure (arrived=%d placed=%d)", a.Arrived(), a.Placed())
	}
	if a.Placed() > 2+a.Completed() {
		t.Fatalf("overcommitted: placed=%d completed=%d", a.Placed(), a.Completed())
	}
}

func TestArrivalsStopsAtDuration(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(4, "arr")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	cfg := ArrivalsConfig{
		Lambda:       60,
		Duration:     30 * sim.Second,
		Sizes:        []int{2},
		Apps:         []AppKind{AppCloud9},
		Cloud9Bursts: 50,
	}
	a := NewArrivals(k, h, cfg, VMHooks{}, rng.Fork("arr"))
	a.Start()
	k.RunUntil(5 * sim.Minute)
	arrivedAtEnd := a.Arrived()
	k.RunUntil(10 * sim.Minute)
	if a.Arrived() != arrivedAtEnd {
		t.Fatal("arrivals continued past duration")
	}
	// ~30 VMs expected in 30 s at 60/min.
	if a.Arrived() < 15 || a.Arrived() > 50 {
		t.Fatalf("Arrived = %d, want ~30", a.Arrived())
	}
}

func TestAppKindString(t *testing.T) {
	if AppFS.String() != "FS" || AppYCSB1.String() != "YCSB1" || AppCloud9.String() != "Cloud9" {
		t.Fatal("AppKind names wrong")
	}
}

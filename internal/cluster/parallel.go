package cluster

import (
	"fmt"
	"sync"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// ParallelTestbed is the multi-kernel variant of Testbed: one sim kernel
// per host, so independent hosts can advance on separate goroutines.
// Hosts in this testbed share nothing — each has its own store, device,
// manager and RNG fork — so any cross-host interaction must go through
// an external channel (e.g. the federation store) applied at epoch
// boundaries via RunEpochs's sync callback. The single-kernel Testbed
// remains the right tool when hosts must interleave at event
// granularity (FederatedArrivals and the golden cluster trace use it).
type ParallelTestbed struct {
	kernels []*sim.Kernel
	hosts   []*hypervisor.Host
}

// NewParallelTestbed builds n identically configured hosts, each on its
// own kernel. RNG forks are drawn in host order from rng, so a given
// (seed, n) pair always yields the same per-host streams regardless of
// how the kernels are later scheduled onto goroutines.
func NewParallelTestbed(n int, cfg hypervisor.Config, rng *stats.Stream) *ParallelTestbed {
	if n <= 0 {
		n = 1
	}
	t := &ParallelTestbed{}
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("host%d", i)
		c.Device = nil
		k := sim.NewKernel()
		t.kernels = append(t.kernels, k)
		t.hosts = append(t.hosts, hypervisor.New(k, c, rng.Fork(c.Name)))
	}
	return t
}

// Size reports the number of hosts.
func (t *ParallelTestbed) Size() int { return len(t.hosts) }

// Host returns the i-th host.
func (t *ParallelTestbed) Host(i int) *hypervisor.Host { return t.hosts[i] }

// Kernel returns the kernel the i-th host runs on.
func (t *ParallelTestbed) Kernel(i int) *sim.Kernel { return t.kernels[i] }

// Kernels exposes the per-host kernels, in host order.
func (t *ParallelTestbed) Kernels() []*sim.Kernel { return t.kernels }

// RunUntil advances every host kernel to target in epoch-synced
// lockstep (see RunEpochs).
func (t *ParallelTestbed) RunUntil(target sim.Time, epoch sim.Duration) {
	RunEpochs(t.kernels, target, epoch, nil)
}

// RunEpochs advances every kernel to target in epoch-sized barrier
// steps: each kernel runs one epoch on its own goroutine, and no kernel
// starts epoch e+1 until every kernel has finished epoch e. Between
// epochs the optional sync callback runs on the caller's goroutine with
// all kernels quiescent at the same virtual instant — the only safe
// point to exchange state across hosts (publish load, apply arrivals).
//
// Because each kernel is single-threaded within its epoch and the
// kernels share no state, the interleaving of goroutines cannot affect
// any kernel's event order: a parallel run is event-for-event identical
// to running the same kernels sequentially (TestRunEpochsParity pins
// this). A single kernel short-circuits to a plain RunUntil.
func RunEpochs(kernels []*sim.Kernel, target sim.Time, epoch sim.Duration, sync func(upto sim.Time)) {
	if epoch <= 0 {
		panic("cluster: RunEpochs with non-positive epoch")
	}
	if len(kernels) == 1 {
		kernels[0].RunUntil(target)
		if sync != nil {
			sync(target)
		}
		return
	}
	// Start from the earliest kernel clock so a testbed resumed after a
	// partial advance still hits aligned barriers.
	var now sim.Time
	for i, k := range kernels {
		if i == 0 || k.Now() < now {
			now = k.Now()
		}
	}
	for now < target {
		upto := now + epoch
		if upto > target || upto < now { // clamp, and guard overflow
			upto = target
		}
		runEpoch(kernels, upto)
		if sync != nil {
			sync(upto)
		}
		now = upto
	}
}

// runEpoch runs every kernel to upto concurrently and waits for all.
func runEpoch(kernels []*sim.Kernel, upto sim.Time) {
	var wg sync.WaitGroup
	for _, k := range kernels {
		wg.Add(1)
		go func(k *sim.Kernel) {
			defer wg.Done()
			k.RunUntil(upto)
		}(k)
	}
	wg.Wait()
}

package cluster

import (
	"fmt"
	"testing"

	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// buildParityBed constructs a small multi-host scenario with real
// cross-layer traffic — bursty dirtying writers, guest drivers, and an
// Algorithm 1 manager per host — the same shape cmd/sim-bench scales
// up. Construction is a pure function of the seed, so two calls build
// identical simulations.
func buildParityBed(seed uint64) *ParallelTestbed {
	rng := stats.NewStream(seed, "parity")
	tb := NewParallelTestbed(3, hypervisor.Config{}, rng)
	for h := 0; h < tb.Size(); h++ {
		k := tb.Kernel(h)
		m := core.NewManager(tb.Host(h), core.All(), core.ManagerConfig{}, rng.Fork(fmt.Sprintf("mgr%d", h)))
		for i := 0; i < 4; i++ {
			rt := tb.Host(h).CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 28},
				guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
					DirtyRatio: 0.9, BackgroundRatio: 0.8,
				}})
			m.EnableGuest(rt)
			d := rt.G.Disk("xvda")
			p := rt.G.NewProcess(1)
			var write func()
			burst := 0
			write = func() {
				if burst == 0 {
					burst = 10
				}
				d.Write(p, 1<<20, nil)
				if burst--; burst > 0 {
					k.After(5*sim.Millisecond, write)
				} else {
					k.After(80*sim.Millisecond, write)
				}
			}
			k.After(sim.Duration(1+i)*sim.Millisecond, write)
		}
	}
	return tb
}

// TestRunEpochsParity pins the claim RunEpochs's doc makes: because the
// per-host kernels share nothing, the epoch-barrier parallel run is
// event-for-event identical to advancing the same kernels sequentially
// — same event counts, same clocks, same store contents — regardless of
// epoch length or goroutine interleaving.
func TestRunEpochsParity(t *testing.T) {
	const seed = 11
	const target = 500 * sim.Millisecond

	seq := buildParityBed(seed)
	for _, k := range seq.Kernels() {
		k.RunUntil(target)
	}

	for _, epoch := range []sim.Duration{7 * sim.Millisecond, 50 * sim.Millisecond, target} {
		par := buildParityBed(seed)
		RunEpochs(par.Kernels(), target, epoch, nil)
		for i := range par.Kernels() {
			pk, sk := par.Kernel(i), seq.Kernel(i)
			if pk.Now() != sk.Now() {
				t.Fatalf("epoch %v host %d: clock %v, sequential %v", epoch, i, pk.Now(), sk.Now())
			}
			if pk.Executed() != sk.Executed() {
				t.Fatalf("epoch %v host %d: executed %d events, sequential %d",
					epoch, i, pk.Executed(), sk.Executed())
			}
			ph, sh := par.Host(i).Store(), seq.Host(i).Store()
			if ph.Version() != sh.Version() {
				t.Fatalf("epoch %v host %d: store version %d, sequential %d",
					epoch, i, ph.Version(), sh.Version())
			}
			if ph.SubtreeHash("/") != sh.SubtreeHash("/") {
				t.Fatalf("epoch %v host %d: store content hash diverged from sequential run", epoch, i)
			}
		}
	}

	// The barrier sync callback observes every epoch boundary, in order,
	// with all kernels quiescent at exactly that instant.
	par := buildParityBed(seed)
	var barriers []sim.Time
	RunEpochs(par.Kernels(), target, 64*sim.Millisecond, func(upto sim.Time) {
		for i, k := range par.Kernels() {
			if k.Now() > upto {
				t.Fatalf("host %d ran past the %v barrier to %v", i, upto, k.Now())
			}
		}
		barriers = append(barriers, upto)
	})
	if len(barriers) == 0 || barriers[len(barriers)-1] != target {
		t.Fatalf("barriers %v do not end at target %v", barriers, target)
	}
	for i := 1; i < len(barriers); i++ {
		if barriers[i] <= barriers[i-1] {
			t.Fatalf("barriers not ascending: %v", barriers)
		}
	}
}

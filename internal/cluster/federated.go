package cluster

import (
	"fmt"

	"iorchestra/internal/apps"
	"iorchestra/internal/federation"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/workload"
)

// FederatedArrivals drives the dynamic VM experiment across a federated
// testbed: Poisson arrivals flow through the federation's placement
// engine instead of one host's FIFO budget, and guests are live-movable
// — the engine implements federation.MigrationHooks, so the rebalancer
// (or a test calling Federation.Migrate directly) can freeze a VM on
// one host, hand its store subtree and progress over, and resume the
// remainder of its problem size on another host (docs/CLUSTER.md §6).
type FederatedArrivals struct {
	k     *sim.Kernel
	fed   *federation.Federation
	cfg   ArrivalsConfig
	hooks VMHooks
	// rng drives the arrival process only; each app placement gets an
	// independent stream derived from appSeed, exactly like Arrivals.
	rng     *stats.Stream
	appSeed uint64

	queue   []fedPending
	running map[string]*fedVM

	arrived    int
	placements int // app starts, including post-migration resumes
	placed     int // distinct VMs admitted
	completed  int
	migrated   int

	writtenBytes float64
	ioBytes      float64

	stopped bool
}

type fedPending struct {
	uid   string
	vcpus int
	app   AppKind
}

// fedVM is one admitted VM. Progress accounting is split into the
// current placement (closures over the live app) and totals carried
// from placements retired by migration, so a VM's problem size survives
// the move: the target resumes target − done, not the whole thing.
type fedVM struct {
	uid   string
	host  string
	dom   store.DomID
	vcpus int
	app   AppKind

	stop       func()
	progress   func() float64 // app units done in the current placement
	curWritten func() float64
	curIO      func() float64

	doneUnits   float64 // units retired by earlier placements
	doneWritten float64
	doneIO      float64
	targetUnits float64

	frozen bool
	gen    int // bumped on freeze; stale poll closures see it and die
}

// NewFederatedArrivals builds the engine over an already-populated
// federation (hosts joined via fed.Join) and installs itself as the
// federation's migration hooks.
func NewFederatedArrivals(k *sim.Kernel, fed *federation.Federation, cfg ArrivalsConfig, hooks VMHooks, rng *stats.Stream) *FederatedArrivals {
	cfg.fillDefaults()
	f := &FederatedArrivals{
		k: k, fed: fed, cfg: cfg, hooks: hooks, rng: rng,
		appSeed: rng.Uint64(),
		running: map[string]*fedVM{},
	}
	fed.SetMigrationHooks(federation.MigrationHooks{
		Freeze:   f.freezeVM,
		Create:   f.createOnTarget,
		Unfreeze: f.unfreezeVM,
		Restore:  f.restoreVM,
	})
	return f
}

// Arrived, Placed, Completed, Migrated, QueueLen report progress.
func (f *FederatedArrivals) Arrived() int { return f.arrived }

// Placed reports distinct VMs that obtained capacity somewhere.
func (f *FederatedArrivals) Placed() int { return f.placed }

// Completed reports VMs that finished their problem size.
func (f *FederatedArrivals) Completed() int { return f.completed }

// Migrated reports completed live migrations of this engine's VMs.
func (f *FederatedArrivals) Migrated() int { return f.migrated }

// QueueLen reports VMs waiting for any host to admit them.
func (f *FederatedArrivals) QueueLen() int { return len(f.queue) }

// Running reports VMs currently placed and not yet finished.
func (f *FederatedArrivals) Running() int { return len(f.running) }

// WrittenBytes reports aggregate application write bytes, including
// running VMs and progress carried across migrations.
func (f *FederatedArrivals) WrittenBytes() float64 {
	total := f.writtenBytes
	for _, vm := range f.running {
		total += vm.doneWritten
		if vm.curWritten != nil {
			total += vm.curWritten()
		}
	}
	return total
}

// IOBytes reports aggregate application I/O bytes (reads and writes).
func (f *FederatedArrivals) IOBytes() float64 {
	total := f.ioBytes
	for _, vm := range f.running {
		total += vm.doneIO
		if vm.curIO != nil {
			total += vm.curIO()
		}
	}
	return total
}

// Start begins Poisson arrivals until the configured duration.
func (f *FederatedArrivals) Start() { f.scheduleNext() }

// Stop halts new arrivals.
func (f *FederatedArrivals) Stop() { f.stopped = true }

func (f *FederatedArrivals) scheduleNext() {
	if f.stopped {
		return
	}
	ratePerSec := f.cfg.Lambda / 60.0
	gap := sim.DurationOf(f.rng.Exponential(ratePerSec))
	f.k.After(gap, func() {
		if f.stopped || f.k.Now() >= f.cfg.Duration {
			return
		}
		f.arrive()
		f.scheduleNext()
	})
}

func (f *FederatedArrivals) arrive() {
	f.arrived++
	f.queue = append(f.queue, fedPending{
		uid:   fmt.Sprintf("vm%03d", f.arrived),
		vcpus: stats.Pick(f.rng, f.cfg.Sizes),
		app:   stats.Pick(f.rng, f.cfg.Apps),
	})
	f.tryPlace()
}

// tryPlace admits queued VMs FIFO through the placement engine; a
// rejected head blocks the queue until capacity frees (each refused
// attempt is traced as cluster.reject by the federation).
func (f *FederatedArrivals) tryPlace() {
	for len(f.queue) > 0 {
		p := f.queue[0]
		hostID, ok := f.fed.Place(federation.Request{Guest: p.uid, VCPUs: p.vcpus})
		if !ok {
			return
		}
		f.queue = f.queue[1:]
		f.place(p, hostID)
	}
}

func (f *FederatedArrivals) place(p fedPending, hostID string) {
	f.placed++
	rt := f.createGuest(hostID, p.vcpus)
	f.fed.BindGuest(p.uid, rt.G.ID())
	vm := &fedVM{
		uid: p.uid, host: hostID, dom: rt.G.ID(),
		vcpus: p.vcpus, app: p.app,
		targetUnits: f.targetUnits(p.app),
	}
	f.running[p.uid] = vm
	f.startApp(vm, rt)
}

// createGuest builds a VM shell on the named host with the same sizing
// the single-host Arrivals engine uses.
func (f *FederatedArrivals) createGuest(hostID string, vcpus int) *hypervisor.GuestRuntime {
	h := f.fed.Member(hostID)
	rt := h.CreateGuest(guest.Config{
		VCPUs:    vcpus,
		MemBytes: int64(vcpus) << 30,
	}, guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
		// Same dirty-budget regime as Arrivals.place: the cache available
		// for dirty data is what the apps leave free, not the whole VM.
		TotalPages:      (1 << 30) / pagecache.PageSize,
		DirtyRatio:      0.2,
		BackgroundRatio: 0.1,
		WritebackWindow: 64,
	}})
	if f.hooks.OnCreate != nil {
		f.hooks.OnCreate(rt)
	}
	return rt
}

// targetUnits is the app's problem size in its own progress units
// (bytes for FS, ops for YCSB, bursts for Cloud9).
func (f *FederatedArrivals) targetUnits(app AppKind) float64 {
	switch app {
	case AppFS:
		return float64(f.cfg.FSBytes)
	case AppYCSB1:
		return float64(f.cfg.YCSBOps)
	default:
		return float64(f.cfg.Cloud9Bursts)
	}
}

// finishVM retires a VM that met its problem size. A VM mid-migration
// is left to the migration's outcome — the next poll finishes it
// wherever it lands (its store subtree must not vanish under the
// transfer).
func (f *FederatedArrivals) finishVM(vm *fedVM) {
	if f.running[vm.uid] != vm {
		return
	}
	for _, uid := range f.fed.Migrating() {
		if uid == vm.uid {
			f.k.After(250*sim.Millisecond, func() { f.finishVM(vm) })
			return
		}
	}
	if vm.stop != nil {
		vm.stop()
	}
	vm.doneUnits += f.progressOf(vm)
	if vm.curWritten != nil {
		vm.doneWritten += vm.curWritten()
	}
	if vm.curIO != nil {
		vm.doneIO += vm.curIO()
	}
	vm.stop, vm.progress, vm.curWritten, vm.curIO = nil, nil, nil, nil
	delete(f.running, vm.uid)
	f.completed++
	f.writtenBytes += vm.doneWritten
	f.ioBytes += vm.doneIO
	h := f.fed.Member(vm.host)
	if rt := h.Guest(vm.dom); rt != nil && f.hooks.OnRemove != nil {
		f.hooks.OnRemove(rt)
	}
	h.RemoveGuest(vm.dom)
	f.fed.NoteGuestGone(vm.uid)
	f.tryPlace()
}

func (f *FederatedArrivals) progressOf(vm *fedVM) float64 {
	if vm.progress == nil {
		return 0
	}
	return vm.progress()
}

// startApp launches (or resumes) the VM's application for the remainder
// of its problem size. Each start draws an independent deterministic
// stream, exactly like the single-host engine.
func (f *FederatedArrivals) startApp(vm *fedVM, rt *hypervisor.GuestRuntime) {
	remaining := vm.targetUnits - vm.doneUnits
	if remaining <= 0 {
		f.finishVM(vm)
		return
	}
	f.placements++
	rng := stats.NewStream(f.appSeed+uint64(f.placements), "app")
	g := rt.G
	gen := vm.gen
	// poll re-checks completion every 250 ms; it dies silently when the
	// placement it belongs to was retired (freeze bumps vm.gen).
	poll := func(done func() bool) {
		var check func()
		check = func() {
			if f.running[vm.uid] != vm || vm.gen != gen || vm.frozen {
				return
			}
			if done() {
				f.finishVM(vm)
				return
			}
			f.k.After(250*sim.Millisecond, check)
		}
		f.k.After(250*sim.Millisecond, check)
	}
	switch vm.app {
	case AppFS:
		d := g.Disks()[0]
		fs := workload.NewFS(f.k, g, d, workload.FSConfig{
			Threads:      vm.vcpus,
			MeanFileSize: 1 << 20,
			Think:        6 * sim.Millisecond,
			WriteFrac:    0.8, AppendFrac: 0.1, ReadFrac: 0.05,
			BurstOn:  1500 * sim.Millisecond,
			BurstOff: 3500 * sim.Millisecond,
		}, rng)
		fs.Start()
		vm.stop = fs.Stop
		vm.progress = fs.WrittenBytes
		vm.curWritten = fs.WrittenBytes
		vm.curIO = fs.WrittenBytes
		poll(func() bool { return fs.WrittenBytes() >= remaining })
	case AppYCSB1:
		d := g.Disks()[0]
		node := apps.NewCassandraNode(f.k, g, d, apps.CassandraConfig{}, rng.Fork("node"))
		cl := apps.NewCassandraCluster(f.k, []*apps.CassandraNode{node}, rng.Fork("cl"))
		cfg := workload.YCSB1()
		op := workload.YCSBOp(cfg, cl, rng.Fork("op"))
		genr := workload.NewClosedLoop(f.k, vm.vcpus, 0, op, rng.Fork("gen"))
		genr.Start()
		vm.stop = genr.Stop
		vm.progress = func() float64 { return float64(genr.Recorder().Completed()) }
		// Half the ops are 4 KiB commitlog updates (Table 2 accounting).
		vm.curWritten = func() float64 { return float64(genr.Recorder().Completed()) / 2 * 4096 }
		vm.curIO = func() float64 { return float64(genr.Recorder().Completed()) * 4096 }
		poll(func() bool { return float64(genr.Recorder().Completed()) >= remaining })
	case AppCloud9:
		cb := workload.NewCPUBound(f.k, g, rng)
		cb.TotalBursts = int(remaining)
		cb.OnDone = func() {
			if f.running[vm.uid] == vm && vm.gen == gen && !vm.frozen {
				f.finishVM(vm)
			}
		}
		cb.Start()
		vm.stop = cb.Stop
		vm.progress = func() float64 { return float64(cb.Ops().Completed()) }
	}
}

// --- federation.MigrationHooks ----------------------------------------------

// freezeVM quiesces the VM on its source: the app stops, its progress
// folds into the carried totals, and the poll generation is retired.
func (f *FederatedArrivals) freezeVM(uid string) {
	vm := f.running[uid]
	if vm == nil || vm.frozen {
		return
	}
	vm.frozen = true
	vm.gen++
	if vm.stop != nil {
		vm.stop()
	}
	vm.doneUnits += f.progressOf(vm)
	if vm.curWritten != nil {
		vm.doneWritten += vm.curWritten()
	}
	if vm.curIO != nil {
		vm.doneIO += vm.curIO()
	}
	vm.stop, vm.progress, vm.curWritten, vm.curIO = nil, nil, nil, nil
}

// createOnTarget builds the frozen VM's shell on the target host.
func (f *FederatedArrivals) createOnTarget(uid, target string) (store.DomID, error) {
	vm := f.running[uid]
	if vm == nil {
		return 0, fmt.Errorf("cluster: migrating unknown guest %q", uid)
	}
	rt := f.createGuest(target, vm.vcpus)
	return rt.G.ID(), nil
}

// unfreezeVM resumes the VM on its new host with its remaining work.
func (f *FederatedArrivals) unfreezeVM(uid, target string, dom store.DomID) {
	vm := f.running[uid]
	if vm == nil {
		return
	}
	vm.host, vm.dom = target, dom
	vm.frozen = false
	f.migrated++
	rt := f.fed.Member(target).Guest(dom)
	f.startApp(vm, rt)
	f.tryPlace()
}

// restoreVM resumes a frozen VM on its source after an aborted
// migration — the source copy was never disturbed.
func (f *FederatedArrivals) restoreVM(uid string) {
	vm := f.running[uid]
	if vm == nil || !vm.frozen {
		return
	}
	vm.frozen = false
	rt := f.fed.Member(vm.host).Guest(vm.dom)
	f.startApp(vm, rt)
}

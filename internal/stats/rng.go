// Package stats provides deterministic random-number streams, the
// distributions the workload models draw from (exponential, Poisson,
// zipfian, Pareto), and small summary-statistics helpers.
//
// Every stochastic component in the simulator owns its own Stream, derived
// from an experiment seed and a component label, so adding or removing one
// component never perturbs the draws seen by another — a property the
// experiment harness relies on for paired comparisons between Baseline,
// SDC, DIF and IOrchestra runs.
package stats

import "math"

// Stream is a deterministic pseudo-random stream (PCG-XSH-RR 64/32 state
// advanced as 64-bit, output folded to 64 bits via two draws). It is small,
// fast, and has no global state. The zero value is a valid stream seeded
// with zero; prefer NewStream.
type Stream struct {
	state uint64
	inc   uint64
	// seed and label identify the stream so Fork can derive children
	// without consuming parent state — forking never perturbs the
	// parent's draw sequence, which keeps paired experiments paired.
	seed  uint64
	label string
}

// splitmix64 is used to diffuse seeds into initial state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns a stream determined entirely by (seed, label). Distinct
// labels yield statistically independent streams for the same seed.
func NewStream(seed uint64, label string) *Stream {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	s := &Stream{
		state: splitmix64(seed ^ h),
		inc:   splitmix64(h^0xda3e39cb94b95bdb) | 1, // must be odd
		seed:  seed,
		label: label,
	}
	// Warm up past the correlated first outputs.
	s.Uint64()
	s.Uint64()
	return s
}

// Fork derives an independent child stream, e.g. one per VM or per
// client. Derivation is purely lexical — (seed, parent label, child
// label) — so forking consumes no parent state; forking the same label
// twice yields the same stream, so callers must use distinct labels for
// distinct entities.
func (s *Stream) Fork(label string) *Stream {
	return NewStream(s.seed, s.label+"/"+label)
}

func (s *Stream) next32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 {
	return uint64(s.next32())<<32 | uint64(s.next32())
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, 64-bit.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Int63n returns a uniform value in [0, n) for int64 bounds.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	bound := uint64(n)
	hi, lo := mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = mul64(s.Uint64(), bound)
		}
	}
	return int64(hi)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// Exponential returns a draw from Exp(rate): mean 1/rate.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a draw from Poisson(mean) using inversion for small means
// and the PTRS transformed-rejection method threshold via normal
// approximation fallback for large means.
func (s *Stream) Poisson(mean float64) int {
	if mean < 0 {
		panic("stats: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		// Knuth inversion.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction is adequate for the
	// arrival-rate ranges used in the experiments (λ ≤ a few hundred).
	for {
		v := s.Normal(mean, math.Sqrt(mean))
		if v > -0.5 {
			return int(v + 0.5)
		}
	}
}

// Normal returns a draw from N(mean, stddev) via Box–Muller.
func (s *Stream) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a draw from a Pareto distribution with the given minimum
// value and shape alpha. Heavy-tailed service times use alpha in (1, 2).
func (s *Stream) Pareto(min, alpha float64) float64 {
	if min <= 0 || alpha <= 0 {
		panic("stats: Pareto with non-positive parameter")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return min / math.Pow(u, 1/alpha)
}

// LogNormal returns a draw whose logarithm is N(mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle[T any](s *Stream, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Pick returns a uniformly chosen element of xs.
func Pick[T any](s *Stream, xs []T) T {
	return xs[s.Intn(len(xs))]
}

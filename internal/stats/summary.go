package stats

import (
	"math"
	"sort"
)

// Summary holds streaming first- and second-moment statistics plus extrema.
// The zero value is an empty summary.
type Summary struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N reports the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean reports the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the unbiased sample variance (0 for n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Merge folds another summary into s, as if all of o's samples had been
// added directly (Chan et al. parallel variance combination). Used when
// merging per-replication results from the experiment worker pool.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesSorted computes several percentiles from one sort. xs is
// copied and sorted once.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanOf returns the arithmetic mean of xs (0 when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "device")
	b := NewStream(42, "device")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed,label) streams diverged")
		}
	}
}

func TestStreamIndependenceByLabel(t *testing.T) {
	a := NewStream(42, "device")
	b := NewStream(42, "guest")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different labels produced %d identical draws", same)
	}
}

func TestStreamForkDeterministic(t *testing.T) {
	a := NewStream(7, "x").Fork("vm0")
	b := NewStream(7, "x").Fork("vm0")
	if a.Uint64() != b.Uint64() {
		t.Fatal("forked streams not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1, "f")
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	s := NewStream(2, "i")
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStream(1, "p").Intn(0)
}

func TestExponentialMean(t *testing.T) {
	s := NewStream(3, "exp")
	var sum Summary
	for i := 0; i < 200000; i++ {
		sum.Add(s.Exponential(2.0))
	}
	if got, want := sum.Mean(), 0.5; math.Abs(got-want) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want ~%v", got, want)
	}
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	s := NewStream(4, "poisson")
	for _, mean := range []float64{0.5, 5, 100} {
		var sum Summary
		for i := 0; i < 100000; i++ {
			sum.Add(float64(s.Poisson(mean)))
		}
		if math.Abs(sum.Mean()-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, sum.Mean())
		}
	}
	if s.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewStream(5, "normal")
	var sum Summary
	for i := 0; i < 200000; i++ {
		sum.Add(s.Normal(10, 3))
	}
	if math.Abs(sum.Mean()-10) > 0.05 {
		t.Fatalf("Normal mean = %v", sum.Mean())
	}
	if math.Abs(sum.StdDev()-3) > 0.05 {
		t.Fatalf("Normal stddev = %v", sum.StdDev())
	}
}

func TestParetoTailAndMin(t *testing.T) {
	s := NewStream(6, "pareto")
	for i := 0; i < 100000; i++ {
		v := s.Pareto(1.0, 1.5)
		if v < 1.0 {
			t.Fatalf("Pareto draw %v below minimum", v)
		}
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	s := NewStream(7, "zipf")
	z := NewZipf(s, 1000, 0.99)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 1000 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be the most popular and dramatically above uniform.
	uniform := n / 1000
	if counts[0] < 10*uniform {
		t.Fatalf("rank-0 count %d not skewed (uniform ≈ %d)", counts[0], uniform)
	}
	if counts[0] < counts[500] {
		t.Fatal("zipf not monotone in expectation between rank 0 and 500")
	}
}

func TestZipfScrambledCoversSpace(t *testing.T) {
	s := NewStream(8, "zipfscramble")
	z := NewZipf(s, 100, 0.99)
	seen := map[int]bool{}
	for i := 0; i < 50000; i++ {
		k := z.ScrambledNext()
		if k < 0 || k >= 100 {
			t.Fatalf("scrambled key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 60 {
		t.Fatalf("scrambled zipf covered only %d/100 keys", len(seen))
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("summary = n%d mean%v min%v max%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("Var() = %v, want 2.5", s.Var())
	}
}

func TestSummaryMergeMatchesDirect(t *testing.T) {
	f := func(a, b []float64) bool {
		var s1, s2, all Summary
		for _, v := range a {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			s1.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			s2.Add(v)
			all.Add(v)
		}
		s1.Merge(&s2)
		if s1.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(s1.Mean()-all.Mean()) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
	ps := Percentiles(xs, 0, 50, 100)
	if ps[0] != 10 || ps[1] != 25 || ps[2] != 40 {
		t.Fatalf("Percentiles = %v", ps)
	}
}

func TestShuffleAndPick(t *testing.T) {
	s := NewStream(9, "shuffle")
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	Shuffle(s, xs)
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatal("shuffle changed multiset")
	}
	_ = orig
	v := Pick(s, xs)
	found := false
	for _, x := range xs {
		if x == v {
			found = true
		}
	}
	if !found {
		t.Fatal("Pick returned element not in slice")
	}
}

func TestRangeBool(t *testing.T) {
	s := NewStream(10, "range")
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Range = %v", v)
		}
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if s.Bool(0.3) {
			trues++
		}
	}
	if trues < 28000 || trues > 32000 {
		t.Fatalf("Bool(0.3) rate = %v", float64(trues)/100000)
	}
}

func TestInt63n(t *testing.T) {
	s := NewStream(11, "i63")
	for i := 0; i < 10000; i++ {
		v := s.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewStream(12, "ln")
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal = %v", v)
		}
	}
}

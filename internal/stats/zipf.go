package stats

import "math"

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta, the key-popularity distribution YCSB uses (theta ≈ 0.99
// in the standard core workloads). It uses the rejection-inversion sampler
// of Hörmann and Derflinger, which needs O(1) time and no per-rank tables,
// so very large keyspaces are cheap.
type Zipf struct {
	s     *Stream
	n     float64
	theta float64

	// Precomputed constants for rejection inversion.
	oneMinusTheta    float64
	hIntegralX1      float64
	hIntegralNumElem float64
	scale            float64
}

// NewZipf returns a zipfian sampler over [0, n) with exponent theta in
// (0, 1) ∪ (1, ∞); theta == 1 is approximated by 1+1e-9.
func NewZipf(s *Stream, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	if theta <= 0 {
		panic("stats: NewZipf with non-positive theta")
	}
	if theta == 1 {
		theta = 1 + 1e-9
	}
	z := &Zipf{s: s, n: float64(n), theta: theta, oneMinusTheta: 1 - theta}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(z.n + 0.5)
	z.scale = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// N reports the size of the keyspace.
func (z *Zipf) N() int { return int(z.n) }

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.theta)*logX) * logX
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusTheta
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x/3.0*(1+0.25*x))
}

// Next returns the next zipf-distributed rank in [0, N).
func (z *Zipf) Next() int {
	for {
		u := z.hIntegralNumElem + z.s.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.scale || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}

// ScrambledNext returns a zipf rank scattered over the keyspace with an FNV
// hash, matching YCSB's "scrambled zipfian" so that popular keys are not
// clustered at the low end.
func (z *Zipf) ScrambledNext() int {
	r := uint64(z.Next())
	h := (r ^ 14695981039346656037) * 1099511628211
	h = splitmix64(h)
	return int(h % uint64(z.n))
}

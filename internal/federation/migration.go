package federation

import (
	"sort"
	"strings"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Live migration (docs/CLUSTER.md §4): a deterministic state machine of
// sim-timed phases. The guest keeps running through the pre-copy, so
// its store writes race the transfer; the post-freeze delta catch-up
// (hash-versioned SyncSubtree rounds, the netstore OpSync machinery)
// closes the race. Target liveness is re-checked at every phase
// boundary: a target that TTL-expires mid-migration aborts the transfer
// and restores the guest on the source.
//
//	start ──► pre-copy ──► freeze ──► catch-up ──► commit ──► done
//	             │            │          │  ▲         │
//	             ▼            ▼          ▼  └─(delta)  ▼
//	           abort        abort      abort         abort
//	                                 (diverged)  (source-dead: no restore)

// MigrationHooks is the guest-lifecycle surface the embedder supplies
// (the federated arrival testbed, or a real toolstack): the federation
// moves store state and capacity accounting; the hooks move the guest.
type MigrationHooks struct {
	// Freeze quiesces the guest on the source: stop its application and
	// record progress so Unfreeze can resume the remainder.
	Freeze func(uid string)
	// Create builds the frozen guest shell on the target host and
	// returns its new domain id.
	Create func(uid, target string) (store.DomID, error)
	// Unfreeze resumes the guest on the target with its remaining work.
	Unfreeze func(uid, target string, dom store.DomID)
	// Restore resumes a frozen guest on the source after an abort.
	Restore func(uid string)
}

// SetMigrationHooks installs the guest-lifecycle hooks; migration (and
// the rebalancer) stays inert until they are set.
func (f *Federation) SetMigrationHooks(h MigrationHooks) {
	f.hooks = h
	f.hasHooks = true
}

// Migrating reports the uids of in-flight migrations, sorted.
func (f *Federation) Migrating() []string {
	out := make([]string, 0, len(f.migrating))
	for uid := range f.migrating {
		out = append(out, uid)
	}
	sort.Strings(out)
	return out
}

// Abort reasons recorded in cluster.migrate.abort traces.
const (
	abortTargetDead   = "target-dead"
	abortSourceDead   = "source-dead"
	abortDiverged     = "diverged"
	abortCreateFailed = "create-failed"
)

// migration is one in-flight transfer's state.
type migration struct {
	uid      string
	from, to string
	srcDom   store.DomID
	srcRoot  string
	start    sim.Time

	// Sync cursor: the source-store version/hash the collected nodes
	// reflect, and the collected subtree itself.
	version uint64
	hash    uint64
	nodes   map[string]string

	rounds int
	frozen bool
}

// Migrate starts a live migration of guest uid from host `from` to host
// `to`. It returns false (with no trace) when the request is malformed:
// unknown hosts, no hooks, the guest is elsewhere or already moving, or
// the target is already dead — a migration that never starts needs no
// abort. Progress and outcome arrive as cluster.migrate.* events.
func (f *Federation) Migrate(uid, from, to string) bool {
	if !f.hasHooks || from == to || f.migrating[uid] != nil {
		return false
	}
	if f.members[from] == nil || f.members[to] == nil || !f.reg.Live(to) {
		return false
	}
	if readString(f.view, store.ClusterGuestKey(uid, keyGuestHost), "") != from {
		return false
	}
	srcDom := store.DomID(readInt(f.view, store.ClusterGuestKey(uid, keyGuestDom), -1))
	if srcDom <= 0 || f.members[from].host.Guest(srcDom) == nil {
		return false
	}
	m := &migration{
		uid: uid, from: from, to: to,
		srcDom: srcDom, srcRoot: store.DomainPath(srcDom),
		start: f.k.Now(),
	}
	f.migrating[uid] = m
	f.migrateStarts++
	f.record(trace.Record{
		Kind: trace.KindClusterMigrateStart, Path: uid,
		Host: from, Value: to,
	})
	f.k.After(f.cfg.MigrationStep, func() { f.migratePreCopy(m) })
	return true
}

// migratePreCopy snapshots the source subtree while the guest still
// runs; writes landing after the snapshot are caught by the post-freeze
// delta rounds.
func (f *Federation) migratePreCopy(m *migration) {
	if !f.reg.Live(m.to) {
		f.migrateAbort(m, abortTargetDead)
		return
	}
	// since > current version forces the full walk on the first round
	// (the journal cannot cover the future).
	page, err := f.members[m.from].view.SyncSubtree(m.srcRoot, ^uint64(0), 0)
	if err != nil {
		f.migrateAbort(m, abortSourceDead)
		return
	}
	n := m.apply(page)
	f.migrateSyncs++
	f.record(trace.Record{
		Kind: trace.KindClusterMigrateSync, Path: m.uid, Host: m.to,
		Value: page.Mode.String(), Size: int64(n),
	})
	f.k.After(f.cfg.MigrationStep, func() { f.migrateFreeze(m) })
}

// migrateFreeze quiesces the guest; from here until commit or abort it
// executes nowhere.
func (f *Federation) migrateFreeze(m *migration) {
	if !f.reg.Live(m.to) {
		f.migrateAbort(m, abortTargetDead)
		return
	}
	f.hooks.Freeze(m.uid)
	m.frozen = true
	f.k.After(f.cfg.MigrationStep, func() { f.migrateCatchUp(m) })
}

// migrateCatchUp drains post-snapshot mutations with hash-versioned
// delta rounds until the source subtree hash matches, then commits.
// Bounded rounds: a source that keeps mutating a frozen guest's subtree
// (a store fault, a rogue writer) aborts as diverged instead of looping.
func (f *Federation) migrateCatchUp(m *migration) {
	if !f.reg.Live(m.to) {
		f.migrateAbort(m, abortTargetDead)
		return
	}
	page, err := f.members[m.from].view.SyncSubtree(m.srcRoot, m.version, m.hash)
	if err != nil {
		f.migrateAbort(m, abortSourceDead)
		return
	}
	n := m.apply(page)
	f.migrateSyncs++
	f.record(trace.Record{
		Kind: trace.KindClusterMigrateSync, Path: m.uid, Host: m.to,
		Value: page.Mode.String(), Size: int64(n),
	})
	if page.Mode == SyncMatch {
		f.k.After(f.cfg.MigrationStep, func() { f.migrateCommit(m) })
		return
	}
	m.rounds++
	if m.rounds >= f.cfg.CatchUpRounds {
		f.migrateAbort(m, abortDiverged)
		return
	}
	f.k.After(f.cfg.MigrationStep, func() { f.migrateCatchUp(m) })
}

// migrateCommit materializes the guest on the target: create the shell,
// replay the subtree under the new domain root (granting the guest
// write access, as the toolstack would with SET_PERMS), hand over the
// monitoring module's dirty-page state, retire the source copy, and
// unfreeze on the target.
func (f *Federation) migrateCommit(m *migration) {
	if !f.reg.Live(m.to) {
		f.migrateAbort(m, abortTargetDead)
		return
	}
	if !f.reg.Live(m.from) {
		// The source died with the authoritative guest state; there is
		// nothing to restore onto. docs/CLUSTER.md §5 runbook.
		f.migrateAbort(m, abortSourceDead)
		return
	}
	dstDom, err := f.hooks.Create(m.uid, m.to)
	if err != nil {
		f.migrateAbort(m, abortCreateFailed)
		return
	}
	src, dst := f.members[m.from], f.members[m.to]
	dstRoot := store.DomainPath(dstDom)
	paths := make([]string, 0, len(m.nodes))
	for p := range m.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	moved := 0
	for _, p := range paths {
		rel := strings.TrimPrefix(p, m.srcRoot)
		if rel == "" && m.nodes[p] == "" {
			continue // the home node itself; Create already made it
		}
		dp := dstRoot + rel
		dst.view.Write(dp, m.nodes[p])
		dst.view.Grant(dp, dstDom, store.PermWrite)
		moved++
	}
	// Dirty-page observations move with the guest so the target's flush
	// policy starts from the source's view instead of from zero.
	smon, dmon := src.host.Monitor(), dst.host.Monitor()
	for _, disk := range smon.DirtyDisks(m.srcDom) {
		if ds, ok := smon.Dirty(m.srcDom, disk); ok {
			dmon.ObserveDirty(dstDom, disk, ds.HasDirty)
			dmon.ObserveNrDirty(dstDom, disk, ds.Nr)
		}
	}
	smon.ForgetGuest(m.srcDom)
	src.host.RemoveGuest(m.srcDom)
	src.view.Remove(m.srcRoot)
	f.view.Write(store.ClusterGuestKey(m.uid, keyGuestHost), m.to)
	f.view.Write(store.ClusterGuestKey(m.uid, keyGuestDom), itoa(int64(dstDom)))
	if !src.agent.Stopped() {
		src.agent.PublishStats()
	}
	if !dst.agent.Stopped() {
		dst.agent.PublishStats()
	}
	f.hooks.Unfreeze(m.uid, m.to, dstDom)
	delete(f.migrating, m.uid)
	f.migrateDones++
	f.record(trace.Record{
		Kind: trace.KindClusterMigrateDone, Path: m.uid, Host: m.to,
		Size: int64(moved), Latency: f.k.Now() - m.start,
	})
}

// migrateAbort rolls the migration back: the source copy was never
// disturbed, so restoring is just unfreezing the guest where it stands.
// A dead source is the one unrecoverable case — the guest died with it,
// and its cluster record is removed.
func (f *Federation) migrateAbort(m *migration, reason string) {
	delete(f.migrating, m.uid)
	if reason == abortSourceDead {
		f.view.Remove(store.ClusterGuestPath(m.uid))
	} else if m.frozen {
		f.hooks.Restore(m.uid)
	}
	f.migrateAborts++
	f.record(trace.Record{
		Kind: trace.KindClusterMigrateAbort, Path: m.uid,
		Host: m.from, Value: reason,
	})
}

// apply folds one sync page into the migration's collected subtree and
// advances its cursor; it returns the pairs applied. Prune markers
// arrive first (OpSync ordering), so a removed-then-recreated path
// drops its stale children before its current value lands.
func (m *migration) apply(page SyncPage) int {
	switch page.Mode {
	case SyncFull:
		m.nodes = make(map[string]string, len(page.Pairs))
		for _, kv := range page.Pairs {
			m.nodes[kv.Path] = kv.Value
		}
	case SyncDelta:
		for _, kv := range page.Pairs {
			if kv.Removed {
				prefix := kv.Path + "/"
				delete(m.nodes, kv.Path)
				for p := range m.nodes {
					if strings.HasPrefix(p, prefix) {
						delete(m.nodes, p)
					}
				}
				continue
			}
			if m.nodes == nil {
				m.nodes = map[string]string{}
			}
			m.nodes[kv.Path] = kv.Value
		}
	case SyncMatch:
		// Converged; nothing to apply.
	}
	m.version, m.hash = page.Version, page.Hash
	return len(page.Pairs)
}

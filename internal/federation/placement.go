package federation

// The placement engine: hard constraints filter, weighted soft
// preferences rank. The shape follows the policy engines of multi-host
// schedulers (hard feasibility + normalized weighted scoring with
// enforce/permissive modes); docs/CLUSTER.md §3 is the normative
// description, including the worked example the tests pin down.

import "iorchestra/internal/gstate"

// Mode selects how placement treats infeasibility.
type Mode int

const (
	// Enforce rejects a request no feasible host can take.
	Enforce Mode = iota
	// Permissive falls back to the least-loaded live host when no host
	// is feasible — liveness stays a hard constraint even here.
	Permissive
)

// String names the mode.
func (m Mode) String() string {
	if m == Permissive {
		return "permissive"
	}
	return "enforce"
}

// Policy parameterizes placement scoring.
type Policy struct {
	// Mode selects enforce or permissive handling of infeasibility.
	Mode Mode
	// Overcommit scales each host's VCPU capacity: a host fits a request
	// while activeVCPUs + request <= cores × Overcommit (default 1.0).
	Overcommit float64
	// QueueWeight, UtilWeight and LatencyWeight are the soft-preference
	// weights over queue depth, device utilization and host-path p99
	// latency (defaults 0.4, 0.4, 0.2). Each metric is normalized by the
	// maximum over the feasible candidates, so weights compare like with
	// like regardless of units.
	QueueWeight   float64
	UtilWeight    float64
	LatencyWeight float64
	// TierWeight is the gold-spread preference (default 0.2): a gold
	// request favors hosts holding fewer gold guests, so the strongest
	// tier does not concentrate on one hypervisor. It only contributes
	// for gold requests — untiered and weaker-tier requests score
	// exactly as before tiering existed.
	TierWeight float64
}

func (p *Policy) fillDefaults() {
	if p.Overcommit <= 0 {
		p.Overcommit = 1.0
	}
	if p.QueueWeight == 0 && p.UtilWeight == 0 && p.LatencyWeight == 0 {
		p.QueueWeight, p.UtilWeight, p.LatencyWeight = 0.4, 0.4, 0.2
	}
	if p.TierWeight == 0 {
		p.TierWeight = 0.2
	}
}

// Request is one guest admission request.
type Request struct {
	// Guest is the cluster-wide guest uid.
	Guest string
	// VCPUs is the capacity ask (= GB of memory in the paper's sizing).
	VCPUs int
	// Class, when non-empty, must match the host's domain class for the
	// host to be feasible (a hard constraint, relaxed only by the
	// permissive fallback).
	Class string
	// Tier, when non-empty, is the guest's SLA tier ("gold", "silver",
	// "bronze"; internal/gstate's taxonomy). The host must admit the
	// tier — publish it under its registry /tiers subtree — for the host
	// to be feasible; gold requests additionally prefer hosts with fewer
	// gold guests (see Policy.TierWeight).
	Tier string
}

// HostStats is one candidate's scoring input, as read from the registry
// (Federation) or any other source (clusterd's one-shot scoring).
type HostStats struct {
	ID          string
	Live        bool
	Cores       int
	Class       string
	ActiveVCPUs int
	QueueDepth  int
	Util        float64
	P99Ms       float64
	// TierCounts is the host's per-tier admitted-guest census as
	// published under /cluster/hypervisors/<id>/tiers: a key's presence
	// declares the host admits that tier (even at count 0), its value is
	// how many such guests the host currently holds. A nil map is a host
	// that predates tiering — feasible only for untiered requests.
	TierCounts map[string]int
}

// AdmitsTier reports whether the host declares capability for tier.
func (h HostStats) AdmitsTier(tier string) bool {
	_, ok := h.TierCounts[tier]
	return ok
}

// HostScore is one candidate's scoring outcome.
type HostScore struct {
	HostStats
	// Feasible reports whether every hard constraint passed; Reason
	// names the first failed constraint ("dead", "capacity", "class",
	// "tier").
	Feasible bool
	Reason   string
	// Score is the weighted soft preference in [0, 1]; only meaningful
	// for feasible hosts.
	Score float64
}

// Placement decision modes recorded in cluster.place traces.
const (
	decisionEnforce    = "enforce"
	decisionPermissive = "permissive"
	decisionFallback   = "fallback"
)

// Rejection reasons recorded in cluster.reject traces.
const (
	rejectNoLiveHost     = "no-live-host"
	rejectNoFeasibleHost = "no-feasible-host"
)

// ScoreHosts scores candidates for req under pol and picks a winner.
// hosts must be sorted by ID (ties break toward the lexicographically
// smaller id, which the sorted scan gives for free). winner is an index
// into the returned scores, -1 for a rejection; mode is the decision
// mode ("enforce", "permissive", "fallback") or a rejection reason.
//
// The function is pure — same inputs, same decision — so the in-sim
// Federation and the wall-clock clusterd share it verbatim.
func ScoreHosts(pol Policy, req Request, hosts []HostStats) (scores []HostScore, winner int, mode string) {
	pol.fillDefaults()
	scores = make([]HostScore, len(hosts))
	anyLive := false
	// Hard constraints first: liveness, capacity, class, tier.
	for i, h := range hosts {
		s := HostScore{HostStats: h}
		switch {
		case !h.Live:
			s.Reason = "dead"
		case float64(h.ActiveVCPUs+req.VCPUs) > float64(h.Cores)*pol.Overcommit:
			s.Reason = "capacity"
		case req.Class != "" && h.Class != req.Class:
			s.Reason = "class"
		case req.Tier != "" && !h.AdmitsTier(req.Tier):
			s.Reason = "tier"
		default:
			s.Feasible = true
		}
		if h.Live {
			anyLive = true
		}
		scores[i] = s
	}
	// Soft preferences over the feasible set: normalize each metric by
	// its maximum among candidates, score = Σ wᵢ·(1 − normᵢ). A metric
	// that is zero everywhere contributes its full weight to everyone
	// (all equal), leaving the tiebreak to the id order.
	var maxQ, maxU, maxP, maxG float64
	goldSpread := req.Tier == string(gstate.Gold)
	for _, s := range scores {
		if !s.Feasible {
			continue
		}
		maxQ = maxf(maxQ, float64(s.QueueDepth))
		maxU = maxf(maxU, s.Util)
		maxP = maxf(maxP, s.P99Ms)
		if goldSpread {
			maxG = maxf(maxG, float64(s.TierCounts[req.Tier]))
		}
	}
	winner = -1
	for i := range scores {
		s := &scores[i]
		if !s.Feasible {
			continue
		}
		s.Score = pol.QueueWeight*(1-norm(float64(s.QueueDepth), maxQ)) +
			pol.UtilWeight*(1-norm(s.Util, maxU)) +
			pol.LatencyWeight*(1-norm(s.P99Ms, maxP))
		if goldSpread {
			// Spread gold: prefer hosts holding fewer gold guests.
			s.Score += pol.TierWeight * (1 - norm(float64(s.TierCounts[req.Tier]), maxG))
		}
		if winner < 0 || s.Score > scores[winner].Score {
			winner = i
		}
	}
	if winner >= 0 {
		if pol.Mode == Permissive {
			return scores, winner, decisionPermissive
		}
		return scores, winner, decisionEnforce
	}
	// Permissive fallback: the most-headroom live host takes the guest
	// anyway. Liveness is never relaxed — a dead host cannot take work.
	if pol.Mode == Permissive && anyLive {
		for i, s := range scores {
			if !s.Live {
				continue
			}
			if winner < 0 || headroom(s.HostStats, pol) > headroom(scores[winner].HostStats, pol) {
				winner = i
			}
		}
		return scores, winner, decisionFallback
	}
	if !anyLive {
		return scores, -1, rejectNoLiveHost
	}
	return scores, -1, rejectNoFeasibleHost
}

// headroom is a host's remaining overcommitted VCPU capacity (may be
// negative under permissive fallback pressure).
func headroom(h HostStats, pol Policy) float64 {
	return float64(h.Cores)*pol.Overcommit - float64(h.ActiveVCPUs)
}

// norm scales v into [0, 1] by max (0 when the whole candidate set is 0).
func norm(v, max float64) float64 {
	if max <= 0 {
		return 0
	}
	return v / max
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

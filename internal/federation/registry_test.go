package federation

import (
	"reflect"
	"testing"

	"iorchestra/internal/gstate"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// bed is a two-host in-sim federation over a dedicated cluster store,
// with a recorder that sees only cluster.* events.
type bed struct {
	k      *sim.Kernel
	cs     *store.Store
	rec    *trace.Recorder
	fed    *Federation
	hosts  map[string]*hypervisor.Host
	agents map[string]*HostAgent
}

func newBed(t *testing.T, cfg Config, ids ...string) *bed {
	t.Helper()
	k := sim.NewKernel()
	rng := stats.NewStream(42, "fedbed")
	b := &bed{
		k:      k,
		cs:     store.New(k, 30*sim.Microsecond),
		rec:    trace.NewRecorder(k, 1<<14),
		hosts:  map[string]*hypervisor.Host{},
		agents: map[string]*HostAgent{},
	}
	b.fed = New(k, LocalView{St: b.cs}, b.rec, cfg)
	for _, id := range ids {
		h := hypervisor.New(k, hypervisor.Config{Sockets: 1, CoresPerSocket: 6}, rng.Fork(id))
		ag, err := b.fed.Join(id, "", h)
		if err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
		b.hosts[id], b.agents[id] = h, ag
	}
	b.fed.Start()
	return b
}

// TestRegistryJoinAndLiveness: joined hosts appear in the registry with
// their published capacity and stay live while their agents beat.
func TestRegistryJoinAndLiveness(t *testing.T) {
	b := newBed(t, Config{}, "ha", "hb")
	b.k.RunUntil(sim.Second)

	if got := b.fed.Registry().Hosts(); !reflect.DeepEqual(got, []string{"ha", "hb"}) {
		t.Fatalf("Hosts() = %v, want [ha hb]", got)
	}
	for _, id := range []string{"ha", "hb"} {
		if !b.fed.Registry().Live(id) {
			t.Fatalf("host %s not live while beating", id)
		}
	}
	cores := readInt(LocalView{St: b.cs}, store.HypervisorKey("ha", keyCores), -1)
	if cores != int64(b.hosts["ha"].TotalCores()) {
		t.Fatalf("published cores = %d, want %d", cores, b.hosts["ha"].TotalCores())
	}
	c := b.fed.Counters()
	if c.Joins != 2 || c.Expiries != 0 {
		t.Fatalf("counters = %+v, want 2 joins, 0 expiries", c)
	}
	if n := b.rec.Count(trace.KindClusterJoin); n != c.Joins {
		t.Fatalf("join events %d != joins counter %d", n, c.Joins)
	}
	if _, dup := b.fed.Join("ha", "", b.hosts["ha"]); dup == nil {
		t.Fatal("duplicate Join accepted")
	}
}

// TestRegistryTTLExpiryAndSelfHeal: a host whose agent stops beating is
// TTL-expired by the sweep (entry removed, cluster.expire traced and
// counted); restarting the agent republishes the entry and the host
// rejoins without any explicit re-registration.
func TestRegistryTTLExpiryAndSelfHeal(t *testing.T) {
	b := newBed(t, Config{}, "ha", "hb")
	b.k.RunUntil(500 * sim.Millisecond)

	b.agents["hb"].Stop()
	b.k.RunUntil(2 * sim.Second)

	if got := b.fed.Registry().Hosts(); !reflect.DeepEqual(got, []string{"ha"}) {
		t.Fatalf("after expiry Hosts() = %v, want [ha]", got)
	}
	if b.fed.Registry().Live("hb") {
		t.Fatal("stopped host still live")
	}
	c := b.fed.Counters()
	if c.Expiries != 1 {
		t.Fatalf("expiries = %d, want 1", c.Expiries)
	}
	if n := b.rec.Count(trace.KindClusterExpire); n != c.Expiries {
		t.Fatalf("expire events %d != expiries counter %d", n, c.Expiries)
	}

	// Self-heal: the restarted agent's next beat recreates the entry.
	b.agents["hb"].Start()
	b.k.RunUntil(2*sim.Second + 500*sim.Millisecond)
	if got := b.fed.Registry().Hosts(); !reflect.DeepEqual(got, []string{"ha", "hb"}) {
		t.Fatalf("after restart Hosts() = %v, want [ha hb]", got)
	}
	if !b.fed.Registry().Live("hb") {
		t.Fatal("restarted host not live again")
	}
}

// TestFederationPlaceAndReject: placement through the live registry
// picks the lexicographically-first of two equal hosts, records the
// guest, and rejects an impossible ask with a traced reason.
func TestFederationPlaceAndReject(t *testing.T) {
	b := newBed(t, Config{}, "ha", "hb")
	b.k.RunUntil(sim.Second)

	host, ok := b.fed.Place(Request{Guest: "vm001", VCPUs: 2})
	if !ok || host != "ha" {
		t.Fatalf("Place = (%q, %v), want (ha, true)", host, ok)
	}
	if got := b.fed.GuestHost("vm001"); got != "ha" {
		t.Fatalf("GuestHost = %q, want ha", got)
	}

	// 64 VCPUs fit nowhere: enforce mode rejects with a reason.
	if _, ok := b.fed.Place(Request{Guest: "vm002", VCPUs: 64}); ok {
		t.Fatal("impossible request admitted")
	}
	c := b.fed.Counters()
	if c.Places != 1 || c.Rejects != 1 {
		t.Fatalf("counters = %+v, want 1 place, 1 reject", c)
	}
	var reject *trace.Record
	for _, e := range b.rec.Events() {
		if e.Kind == trace.KindClusterReject {
			e := e
			reject = &e
		}
	}
	if reject == nil || reject.Value != "no-feasible-host" {
		t.Fatalf("reject event = %+v, want reason no-feasible-host", reject)
	}
}

// TestLocalViewSyncSubtree: the in-process sync mirrors netstore OpSync —
// full walk for an uncovered version, delta with prune-markers-first for
// a covered window, match for an up-to-date hash, and a rejection for a
// non-domain root.
func TestLocalViewSyncSubtree(t *testing.T) {
	k := sim.NewKernel()
	st := store.New(k, 30*sim.Microsecond)
	v := LocalView{St: st}
	st.AddDomain(7)
	root := store.DomainPath(7)
	st.Write(store.Dom0, root+"/a", "1")
	st.Write(store.Dom0, root+"/b/c", "2")

	if _, err := v.SyncSubtree(store.HypervisorsPath(), ^uint64(0), 0); err == nil {
		t.Fatal("non-domain sync root accepted")
	}

	full, err := v.SyncSubtree(root, ^uint64(0), 0)
	if err != nil || full.Mode != SyncFull {
		t.Fatalf("first sync = (%v, %v), want full walk", full.Mode, err)
	}
	got := map[string]string{}
	for _, p := range full.Pairs {
		got[p.Path] = p.Value
	}
	if got[root+"/a"] != "1" || got[root+"/b/c"] != "2" {
		t.Fatalf("full walk pairs = %v", full.Pairs)
	}

	// No mutation: the hash matches and nothing is sent.
	match, err := v.SyncSubtree(root, full.Version, full.Hash)
	if err != nil || match.Mode != SyncMatch || len(match.Pairs) != 0 {
		t.Fatalf("unchanged sync = %+v, %v, want empty match", match, err)
	}

	// A write and a removal inside the window: delta, prune marker first.
	st.Write(store.Dom0, root+"/a", "1b")
	st.Remove(store.Dom0, root+"/b")
	delta, err := v.SyncSubtree(root, full.Version, full.Hash)
	if err != nil || delta.Mode != SyncDelta {
		t.Fatalf("windowed sync = (%v, %v), want delta", delta.Mode, err)
	}
	sawRemove, sawValue := false, false
	for _, p := range delta.Pairs {
		if p.Removed {
			if sawValue {
				t.Fatalf("prune marker after values: %v", delta.Pairs)
			}
			if p.Path == root+"/b" {
				sawRemove = true
			}
		} else if p.Path == root+"/a" && p.Value == "1b" {
			sawValue = true
		}
	}
	if !sawRemove || !sawValue {
		t.Fatalf("delta pairs = %v, want /b prune + /a value", delta.Pairs)
	}
}

// TestTierCensusPublishAndRead: a tier-capable agent publishes its
// per-tier guest census under /tiers (counting the host store's SLA
// declarations, undeclared guests as bronze), ReadHostStats reads it
// back, and an untiered agent publishes no census at all.
func TestTierCensusPublishAndRead(t *testing.T) {
	b := newBed(t, Config{}, "ha", "hb")
	b.agents["ha"].SetTierCapability([]gstate.Tier{gstate.Gold, gstate.Silver, gstate.Bronze})

	// Two resident guests on ha: dom 1 declared gold, dom 2 undeclared.
	hst := b.hosts["ha"].Store()
	hst.AddDomain(1)
	hst.AddDomain(2)
	gstate.PublishSLA(hst, 1, gstate.Gold, gstate.SLA{})
	b.k.RunUntil(sim.Second)

	v := LocalView{St: b.cs}
	hs := ReadHostStats(v, "ha")
	want := map[string]int{"gold": 1, "silver": 0, "bronze": 1}
	if !reflect.DeepEqual(hs.TierCounts, want) {
		t.Fatalf("ha TierCounts = %v, want %v", hs.TierCounts, want)
	}
	if !hs.AdmitsTier("gold") || hs.AdmitsTier("platinum") {
		t.Fatal("AdmitsTier must track census key presence")
	}
	if hb := ReadHostStats(v, "hb"); hb.TierCounts != nil {
		t.Fatalf("untiered hb published a census: %v", hb.TierCounts)
	}
}

package federation

import (
	"strconv"

	"iorchestra/internal/gstate"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Registry host keys under /cluster/hypervisors/<id>/ (docs/CLUSTER.md
// §2 is normative). Statics are republished with every heartbeat so an
// entry wrongly expired under watch faults heals itself on the next
// beat (lochness-style soft state: the registry is a cache of the
// agents' periodic writes, never the source of truth).
const (
	keyHeartbeat   = "heartbeat"    // monotonic beat counter
	keyCores       = "cores"        // physical cores (capacity input)
	keyClass       = "class"        // domain class ("" = unclassed)
	keyActiveVCPUs = "active_vcpus" // summed VCPUs of resident guests
	keyQueueDepth  = "queue_depth"  // cgroup backlog + device pending
	keyUtil        = "util"         // device utilization fraction [0,1]
	keyP99Ms       = "p99_ms"       // host-path p99 latency, milliseconds
)

// Guest keys under /cluster/guests/<uid>/.
const (
	keyGuestHost  = "host"  // hypervisor currently holding the guest
	keyGuestVCPUs = "vcpus" // admitted VCPU request
	keyGuestDom   = "dom"   // domain id on the holding host
)

// Registry tracks cluster membership and liveness from the store: a
// watch on /cluster/hypervisors stamps heartbeat arrivals, and Stale
// compares the stamp age against the TTL. It never writes host entries
// itself — expiry (removal plus trace) is the Federation's (or
// clusterd's expirer's) job, so every removal is accounted.
type Registry struct {
	k        *sim.Kernel
	view     View
	ttl      sim.Duration
	lastBeat map[string]sim.Time
	watchID  store.WatchID
	watching bool
}

// NewRegistry builds a registry over the cluster view with the given
// heartbeat TTL and begins watching membership.
func NewRegistry(k *sim.Kernel, view View, ttl sim.Duration) *Registry {
	r := &Registry{k: k, view: view, ttl: ttl, lastBeat: map[string]sim.Time{}}
	hp := store.HypervisorsPath()
	id, err := view.Watch(hp, func(path, value string) { r.observe(hp, path, value) })
	if err == nil {
		r.watchID, r.watching = id, true
	}
	return r
}

// Close removes the membership watch.
func (r *Registry) Close() {
	if r.watching {
		r.view.Unwatch(r.watchID)
		r.watching = false
	}
}

// observe stamps heartbeat arrivals and forgets removed entries. Only
// the heartbeat key refreshes liveness — stats churn alone must not
// keep a host alive whose agent died between beats.
func (r *Registry) observe(hyperRoot, path, value string) {
	if id, ok := BeatObserved(hyperRoot, path); ok {
		r.lastBeat[id] = r.k.Now()
		return
	}
	if id, ok := EntryRemoved(hyperRoot, path, value); ok {
		// The whole entry went away (expiry or a graceful leave).
		delete(r.lastBeat, id)
	}
}

// BeatObserved decodes a watch notification under root (the hypervisors
// prefix): it reports the host id when path is a heartbeat arrival —
// the only key that refreshes liveness. Shared with clusterd's
// wall-clock watcher and expirer so both clocks agree on what counts as
// a beat.
func BeatObserved(root, path string) (id string, ok bool) {
	rel, ok := cutPrefix(path, root+"/")
	if !ok {
		return "", false
	}
	id, key, hasKey := cutSlash(rel)
	return id, hasKey && key == keyHeartbeat
}

// EntryRemoved decodes a watch notification under root: it reports the
// host id when a whole registry entry went away (a TTL expiry or a
// graceful leave). Edge-triggered watches deliver removals as an empty
// value on the entry path itself.
func EntryRemoved(root, path, value string) (id string, ok bool) {
	rel, ok := cutPrefix(path, root+"/")
	if !ok || value != "" {
		return "", false
	}
	id, _, hasKey := cutSlash(rel)
	return id, !hasKey
}

// MarkAlive stamps id as just-heard-from — used at join time so a host
// cannot expire in the watch-latency window before its first beat lands.
func (r *Registry) MarkAlive(id string) { r.lastBeat[id] = r.k.Now() }

// Forget drops the liveness stamp for an expired or departed host.
func (r *Registry) Forget(id string) { delete(r.lastBeat, id) }

// Hosts lists the registered hypervisor ids in ascending order (empty
// before the first join).
func (r *Registry) Hosts() []string {
	names, err := r.view.List(store.HypervisorsPath())
	if err != nil {
		return nil
	}
	return names
}

// Live reports whether id's last heartbeat is within the TTL.
func (r *Registry) Live(id string) bool {
	stale, _ := r.Stale(id)
	return !stale
}

// Stale reports whether id's heartbeat has aged past the TTL, and the
// age itself. A host never heard from is stale with age 0 (it may be in
// the registry tree from before this registry started watching).
func (r *Registry) Stale(id string) (bool, sim.Duration) {
	at, ok := r.lastBeat[id]
	if !ok {
		return true, 0
	}
	age := sim.Duration(r.k.Now() - at)
	return age > r.ttl, age
}

// TTL reports the configured heartbeat time-to-live.
func (r *Registry) TTL() sim.Duration { return r.ttl }

// cutPrefix is strings.CutPrefix (kept local to avoid importing strings
// for two one-liners shared with cutSlash).
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// cutSlash splits "id/key..." into id and the remainder.
func cutSlash(s string) (id, rest string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// HostAgent is the per-hypervisor publisher: it registers the host in
// the cluster registry and keeps its entry fresh with periodic
// heartbeats carrying capacity and load measurements read through
// hypervisor.Monitor. Stopping the agent (a fault-kill in tests, a
// crashed daemon in production) is what makes the entry TTL-expire.
type HostAgent struct {
	k        *sim.Kernel
	view     View
	id       string
	class    string
	h        *hypervisor.Host
	interval sim.Duration
	beats    int64
	stopped  bool
	tiers    []gstate.Tier // admitted SLA tiers; nil = untiered host
}

// NewHostAgent builds an agent publishing host h as id every interval.
func NewHostAgent(k *sim.Kernel, view View, id, class string, h *hypervisor.Host, interval sim.Duration) *HostAgent {
	return &HostAgent{k: k, view: view, id: id, class: class, h: h, interval: interval}
}

// Start publishes the first beat immediately and schedules the rest.
func (a *HostAgent) Start() {
	a.stopped = false
	a.beat()
}

// Stop halts heartbeating; the registry entry is left to TTL-expire,
// exactly as if the host died.
func (a *HostAgent) Stop() { a.stopped = true }

// Stopped reports whether the agent has been halted.
func (a *HostAgent) Stopped() bool { return a.stopped }

func (a *HostAgent) beat() {
	if a.stopped {
		return
	}
	a.beats++
	a.Publish()
	a.k.After(a.interval, a.beat)
}

// Publish writes the full registry entry: statics (cores, class), the
// heartbeat counter, and the load stats placement scores on. Statics
// ride along so an expired entry heals on the next beat.
func (a *HostAgent) Publish() {
	PublishHostStatics(a.view, a.id, a.class, a.h.TotalCores())
	PublishHeartbeat(a.view, a.id, a.beats)
	a.PublishStats()
}

// PublishStats refreshes only the load keys — called between beats when
// placement or migration just changed the host's occupancy, so scoring
// sees the new load without waiting out the heartbeat interval.
func (a *HostAgent) PublishStats() {
	mon := a.h.Monitor()
	dev := mon.DeviceSnapshot(a.k.Now())
	PublishHostLoad(a.view, a.id, HostLoad{
		ActiveVCPUs: mon.ActiveVCPUs(),
		QueueDepth:  mon.QueueBacklog() + mon.DevPending(),
		Util:        dev.UtilFraction,
		P99Ms:       float64(mon.HostPathP99()) / 1e6,
	})
	a.publishTiers()
}

// SetTierCapability declares which SLA tiers this host admits; every
// Publish from then on writes the /tiers census (key presence =
// capability, value = resident guests of that tier, with undeclared
// guests counting as bronze per internal/gstate's taxonomy). The nil
// default keeps the host untiered, exactly as before tiering existed.
func (a *HostAgent) SetTierCapability(tiers []gstate.Tier) { a.tiers = tiers }

// publishTiers counts resident guests per tier from the host's local
// store SLA declarations and publishes the census.
func (a *HostAgent) publishTiers() {
	if len(a.tiers) == 0 {
		return
	}
	counts := make(map[string]int, len(a.tiers))
	for _, t := range a.tiers {
		counts[string(t)] = 0
	}
	st := a.h.Store()
	doms, _ := st.List(store.Dom0, store.Root)
	for _, d := range doms {
		id, err := strconv.Atoi(d)
		if err != nil || id == 0 {
			continue // Dom0 is the control domain, not a placed guest
		}
		tier, _ := gstate.ReadSLA(st, store.DomID(id))
		if _, ok := counts[string(tier)]; ok {
			counts[string(tier)]++
		}
	}
	PublishTierCounts(a.view, a.id, counts)
}

// --- Registry-entry schema helpers -------------------------------------------
//
// These are the only writers and reader of the /cluster/hypervisors/<id>
// keys, shared by the in-sim HostAgent and cmd/iorchestra-clusterd's
// wall-clock agent, so the two can never drift apart on the schema.

// HostLoad is one load sample: the soft-preference inputs placement
// scores on.
type HostLoad struct {
	ActiveVCPUs int
	QueueDepth  int
	Util        float64
	P99Ms       float64
}

// PublishHostStatics writes a host's capacity facts (cores, class).
func PublishHostStatics(v View, id, class string, cores int) {
	v.Write(store.HypervisorKey(id, keyCores), itoa(int64(cores)))
	v.Write(store.HypervisorKey(id, keyClass), class)
}

// PublishHeartbeat writes the monotonic beat counter — the one write
// that refreshes liveness.
func PublishHeartbeat(v View, id string, beat int64) {
	v.Write(store.HypervisorKey(id, keyHeartbeat), itoa(beat))
}

// PublishHostLoad writes a host's load sample.
func PublishHostLoad(v View, id string, l HostLoad) {
	v.Write(store.HypervisorKey(id, keyActiveVCPUs), itoa(int64(l.ActiveVCPUs)))
	v.Write(store.HypervisorKey(id, keyQueueDepth), itoa(int64(l.QueueDepth)))
	v.Write(store.HypervisorKey(id, keyUtil), ftoa(l.Util))
	v.Write(store.HypervisorKey(id, keyP99Ms), ftoa(l.P99Ms))
}

// RecordPlacement writes the guest admission record under
// /cluster/guests/<uid> — the durable outcome of a placement decision,
// whether it came from the in-sim Federation or clusterd's one-shot
// scorer.
func RecordPlacement(v View, uid, host string, vcpus int) error {
	if err := v.Write(store.ClusterGuestKey(uid, keyGuestHost), host); err != nil {
		return err
	}
	return v.Write(store.ClusterGuestKey(uid, keyGuestVCPUs), itoa(int64(vcpus)))
}

// PublishTierCounts writes a host's per-tier admitted-guest census
// under /cluster/hypervisors/<id>/tiers: a key's presence declares the
// host admits the tier (even at count 0), the value is how many such
// guests it holds. Written strongest-tier-first for deterministic
// store-write order.
func PublishTierCounts(v View, id string, counts map[string]int) {
	for _, t := range gstate.Tiers() {
		if n, ok := counts[string(t)]; ok {
			v.Write(store.HypervisorTierKey(id, string(t)), itoa(int64(n)))
		}
	}
}

// ReadTierCounts assembles a host's tier census from its registry
// entry; nil when the host publishes no /tiers subtree (an untiered
// host from before tiering existed).
func ReadTierCounts(v View, id string) map[string]int {
	names, err := v.List(store.HypervisorTiersPath(id))
	if err != nil || len(names) == 0 {
		return nil
	}
	counts := make(map[string]int, len(names))
	for _, t := range names {
		counts[t] = int(readInt(v, store.HypervisorTierKey(id, t), 0))
	}
	return counts
}

// ReadHostStats assembles one host's scoring input from its registry
// entry. Liveness is the caller's call — the registry (or an expirer)
// owns the heartbeat clock — so Live is left false here.
func ReadHostStats(v View, id string) HostStats {
	return HostStats{
		ID:          id,
		Cores:       int(readInt(v, store.HypervisorKey(id, keyCores), 0)),
		Class:       readString(v, store.HypervisorKey(id, keyClass), ""),
		ActiveVCPUs: int(readInt(v, store.HypervisorKey(id, keyActiveVCPUs), 0)),
		QueueDepth:  int(readInt(v, store.HypervisorKey(id, keyQueueDepth), 0)),
		Util:        readFloat(v, store.HypervisorKey(id, keyUtil), 0),
		P99Ms:       readFloat(v, store.HypervisorKey(id, keyP99Ms), 0),
		TierCounts:  ReadTierCounts(v, id),
	}
}

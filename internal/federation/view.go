package federation

import (
	"fmt"
	"strconv"
	"strings"

	"iorchestra/internal/store"
)

// SyncMode classifies a SyncSubtree reply, mirroring the netstore OpSync
// outcomes (docs/WIRE_PROTOCOL.md §6): cheapest first.
type SyncMode uint8

const (
	// SyncMatch: the caller's hash matches the subtree; nothing sent.
	SyncMatch SyncMode = iota
	// SyncDelta: the mutation journal covered the caller's version; the
	// reply carries exactly the paths that moved.
	SyncDelta
	// SyncFull: the caller predates the journal window; the reply is a
	// full subtree walk.
	SyncFull
)

// String names the mode for trace records.
func (m SyncMode) String() string {
	switch m {
	case SyncMatch:
		return "match"
	case SyncDelta:
		return "delta"
	default:
		return "full"
	}
}

// SyncPair is one path of a sync reply. Removed marks prune markers: the
// consumer must drop its copy of the subtree at Path before applying the
// value pairs that follow (the path may have been recreated since).
type SyncPair struct {
	Path    string
	Value   string
	Removed bool
}

// SyncPage is one hash-versioned subtree sync reply; Version and Hash
// anchor the caller's next sync.
type SyncPage struct {
	Mode    SyncMode
	Version uint64
	Hash    uint64
	Pairs   []SyncPair
}

// View is the store surface the federation consumes: a privileged
// (Dom0) absolute-path handle plus the hash-versioned subtree sync the
// migration handoff rides on. LocalView implements it in-process;
// cmd/iorchestra-clusterd adapts netstore.Client to it, so the same
// registry, placement and migration logic runs whether the cluster
// store is an object or a socket away.
type View interface {
	Read(path string) (string, error)
	Write(path, value string) error
	Remove(path string) error
	List(path string) ([]string, error)
	Grant(path string, target store.DomID, perm store.Perm) error
	Watch(prefix string, fn func(path, value string)) (store.WatchID, error)
	Unwatch(id store.WatchID)
	// SyncSubtree answers a catch-up request for one domain subtree,
	// with netstore OpSync semantics: root must be a /local/domain/<id>
	// subtree root; prune markers lead the pairs.
	SyncSubtree(root string, since, known uint64) (SyncPage, error)
}

// LocalView adapts an in-process store to View with Dom0 privilege.
type LocalView struct {
	St *store.Store
}

var _ View = LocalView{}

// Read reads path as Dom0.
func (v LocalView) Read(path string) (string, error) { return v.St.Read(store.Dom0, path) }

// Write writes path as Dom0.
func (v LocalView) Write(path, value string) error { return v.St.Write(store.Dom0, path, value) }

// Remove deletes path (and its subtree) as Dom0.
func (v LocalView) Remove(path string) error { return v.St.Remove(store.Dom0, path) }

// List returns the sorted child names under path.
func (v LocalView) List(path string) ([]string, error) { return v.St.List(store.Dom0, path) }

// Grant gives target perm on path (XenStore SET_PERMS, as Dom0).
func (v LocalView) Grant(path string, target store.DomID, perm store.Perm) error {
	return v.St.Grant(store.Dom0, path, target, perm)
}

// Watch registers an edge-triggered prefix watch as Dom0.
func (v LocalView) Watch(prefix string, fn func(path, value string)) (store.WatchID, error) {
	return v.St.Watch(store.Dom0, prefix, fn)
}

// Unwatch removes a watch.
func (v LocalView) Unwatch(id store.WatchID) { v.St.Unwatch(id) }

// SyncSubtree mirrors the netstore server's OpSync algorithm against the
// local store (internal/netstore server.go handleSync): a hash match
// costs nothing, a journal hit sends exactly the paths that moved with
// prune markers first, and only a journal miss walks the subtree.
func (v LocalView) SyncSubtree(root string, since, known uint64) (SyncPage, error) {
	if dom, ok := store.PathDomain(root); !ok || root != store.DomainPath(dom) {
		return SyncPage{}, fmt.Errorf("federation: sync root %q is not a domain subtree root", root)
	}
	page := SyncPage{Version: v.St.Version(), Hash: v.St.SubtreeHash(root)}
	prefix := root + "/"
	if known == page.Hash {
		page.Mode = SyncMatch
		return page, nil
	}
	if deltas, covered := v.St.DeltasSince(since); covered && since <= page.Version {
		page.Mode = SyncDelta
		// Prune markers lead the reply so the consumer drops stale
		// subtrees before applying current values — a path removed and
		// then recreated in the window carries both a marker and a value,
		// in that order.
		var values []SyncPair
		for _, dl := range deltas {
			p := dl.Path
			if p != root && !strings.HasPrefix(p, prefix) {
				continue
			}
			val, err := v.St.Read(store.Dom0, p)
			switch {
			case dl.Removed:
				page.Pairs = append(page.Pairs, SyncPair{Path: p, Removed: true})
				if err == nil {
					values = append(values, SyncPair{Path: p, Value: val})
				}
			case err == nil:
				values = append(values, SyncPair{Path: p, Value: val})
			default:
				page.Pairs = append(page.Pairs, SyncPair{Path: p, Removed: true})
			}
		}
		page.Pairs = append(page.Pairs, values...)
		return page, nil
	}
	page.Mode = SyncFull
	v.walk(root, &page.Pairs)
	return page, nil
}

// walk emits every node at or below root in deterministic
// (sorted-children) order, the in-process twin of snapshotWalk.
func (v LocalView) walk(root string, out *[]SyncPair) {
	if val, err := v.St.Read(store.Dom0, root); err == nil {
		*out = append(*out, SyncPair{Path: root, Value: val})
	}
	names, err := v.St.List(store.Dom0, root)
	if err != nil {
		return
	}
	base := root
	if base != "/" {
		base += "/"
	}
	for _, name := range names {
		v.walk(base+name, out)
	}
}

// --- Typed read helpers over a View -----------------------------------------

// readInt reads an integer key, returning def when the key is absent or
// malformed (a half-written registry entry must not wedge placement).
func readInt(v View, path string, def int64) int64 {
	raw, err := v.Read(path)
	if err != nil {
		return def
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// readFloat reads a float key with a default, like readInt.
func readFloat(v View, path string, def float64) float64 {
	raw, err := v.Read(path)
	if err != nil {
		return def
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return def
	}
	return f
}

// readString reads a string key with a default.
func readString(v View, path, def string) string {
	raw, err := v.Read(path)
	if err != nil {
		return def
	}
	return raw
}

// itoa and ftoa are the store's canonical integer and float encodings
// (store.WriteInt / store.WriteFloat), spelled out here because a View
// exposes only the string surface.
func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

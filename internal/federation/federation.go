// Package federation is the cluster-scale control plane on top of the
// per-host managers: a store-backed hypervisor registry with heartbeat
// liveness and TTL expiry, a placement engine scoring live hosts with
// hard constraints plus weighted soft preferences, and live guest
// migration with hash-versioned store-subtree handoff — the layer that
// turns `internal/cluster`'s isolated hosts into one datacenter
// (docs/CLUSTER.md is the normative reference).
//
// All cluster coordination state lives under /cluster in a shared store
// (internal/store's key constructors own the schema), so the same logic
// runs in-process over LocalView or across machines over netstore.
// Every cluster.* trace event is mirrored 1:1 by a Counters field,
// enforced by the iorchestra-vet tracecounter pass.
package federation

import (
	"fmt"
	"sort"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Config parameterizes a Federation.
type Config struct {
	// HeartbeatInterval is the host agents' publish cadence
	// (default 100 ms).
	HeartbeatInterval sim.Duration
	// TTL is the heartbeat age past which a host is considered dead
	// (default 3.5 × HeartbeatInterval — a few missed beats, not one).
	TTL sim.Duration
	// ExpirySweep is the registry reaper cadence (default TTL/2).
	ExpirySweep sim.Duration
	// Policy is the placement policy.
	Policy Policy
	// RebalanceInterval enables the load rebalancer: every interval, if
	// the live VCPU spread exceeds RebalanceGap, one guest migrates from
	// the busiest to the idlest host (0 = rebalancer off).
	RebalanceInterval sim.Duration
	// RebalanceGap is the minimum activeVCPUs spread that triggers a
	// rebalance migration (default 4).
	RebalanceGap int
	// MigrationStep is the latency of each migration phase — the window
	// in which guest writes race the pre-copy (default 2 ms).
	MigrationStep sim.Duration
	// CatchUpRounds bounds delta catch-up after freeze before the
	// migration is declared diverged and aborted (default 8).
	CatchUpRounds int
}

func (c *Config) fillDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * sim.Millisecond
	}
	if c.TTL <= 0 {
		c.TTL = c.HeartbeatInterval * 7 / 2
	}
	if c.ExpirySweep <= 0 {
		c.ExpirySweep = c.TTL / 2
	}
	if c.RebalanceGap <= 0 {
		c.RebalanceGap = 4
	}
	if c.MigrationStep <= 0 {
		c.MigrationStep = 2 * sim.Millisecond
	}
	if c.CatchUpRounds <= 0 {
		c.CatchUpRounds = 8
	}
}

// Counters mirrors the cluster.* trace kinds 1:1 (tracecounter pass),
// so operators can reconcile NDJSON traces against the federation even
// when the recorder ring has evicted events.
type Counters struct {
	Joins          uint64 `json:"joins"`
	Expiries       uint64 `json:"expiries"`
	Places         uint64 `json:"places"`
	Rejects        uint64 `json:"rejects"`
	MigrateStarts  uint64 `json:"migrate_starts"`
	MigrateSyncs   uint64 `json:"migrate_syncs"`
	MigrateDones   uint64 `json:"migrate_dones"`
	MigrateAborts  uint64 `json:"migrate_aborts"`
	RebalanceScans uint64 `json:"rebalance_scans"`
}

// member is one in-process host under federation control: the host
// itself, its registry agent, and a privileged view of its own store
// (the migration handoff reads the source's and writes the target's).
type member struct {
	id    string
	host  *hypervisor.Host
	agent *HostAgent
	view  View
}

// Federation assembles registry, placement and migration over one
// cluster view. Like everything on a sim kernel it is single-goroutine.
type Federation struct {
	k    *sim.Kernel
	view View
	rec  *trace.Recorder
	cfg  Config
	reg  *Registry

	members   map[string]*member
	memberIDs []string // sorted; deterministic iteration everywhere

	hooks     MigrationHooks
	hasHooks  bool
	migrating map[string]*migration

	stopped bool

	// Trace/counter mirror (Counters); fields bump exactly where the
	// matching cluster.* kind is recorded.
	joins, expiries, places, rejects                         uint64
	migrateStarts, migrateSyncs, migrateDones, migrateAborts uint64
	rebalanceScans                                           uint64
}

// New builds a federation over the shared cluster view. rec may be nil
// (no tracing); with a recorder, every decision lands in it as a typed
// cluster.* event.
func New(k *sim.Kernel, view View, rec *trace.Recorder, cfg Config) *Federation {
	cfg.fillDefaults()
	cfg.Policy.fillDefaults()
	return &Federation{
		k: k, view: view, rec: rec, cfg: cfg,
		reg:       NewRegistry(k, view, cfg.TTL),
		members:   map[string]*member{},
		migrating: map[string]*migration{},
	}
}

// Registry exposes the membership/liveness tracker.
func (f *Federation) Registry() *Registry { return f.reg }

// Config reports the effective (default-filled) configuration.
func (f *Federation) Config() Config { return f.cfg }

// Counters snapshots the trace-mirroring counters.
func (f *Federation) Counters() Counters {
	return Counters{
		Joins: f.joins, Expiries: f.expiries,
		Places: f.places, Rejects: f.rejects,
		MigrateStarts: f.migrateStarts, MigrateSyncs: f.migrateSyncs,
		MigrateDones: f.migrateDones, MigrateAborts: f.migrateAborts,
		RebalanceScans: f.rebalanceScans,
	}
}

// Start arms the periodic registry expiry sweep and, if configured, the
// load rebalancer.
func (f *Federation) Start() {
	f.stopped = false
	f.k.After(f.cfg.ExpirySweep, f.sweepTick)
	if f.cfg.RebalanceInterval > 0 {
		f.k.After(f.cfg.RebalanceInterval, f.rebalanceTick)
	}
}

// Stop halts the periodic work (agents keep beating until stopped
// individually — they belong to their hosts, not the federation loop).
func (f *Federation) Stop() { f.stopped = true }

// Join registers host h in the cluster as id with the given domain
// class, starts its heartbeat agent, and returns the agent (tests stop
// it to fault-kill the host).
func (f *Federation) Join(id, class string, h *hypervisor.Host) (*HostAgent, error) {
	if _, dup := f.members[id]; dup {
		return nil, fmt.Errorf("federation: host %q already joined", id)
	}
	m := &member{
		id:    id,
		host:  h,
		agent: NewHostAgent(f.k, f.view, id, class, h, f.cfg.HeartbeatInterval),
		view:  LocalView{St: h.Store()},
	}
	f.members[id] = m
	f.memberIDs = append(f.memberIDs, id)
	sort.Strings(f.memberIDs)
	f.reg.MarkAlive(id)
	m.agent.Start()
	f.joins++
	f.record(trace.Record{
		Kind: trace.KindClusterJoin, Host: id,
		Size: int64(h.TotalCores()), Value: class,
	})
	return m.agent, nil
}

// Member returns a joined host by id (nil if unknown).
func (f *Federation) Member(id string) *hypervisor.Host {
	if m := f.members[id]; m != nil {
		return m.host
	}
	return nil
}

// MemberIDs lists joined hosts in ascending id order.
func (f *Federation) MemberIDs() []string {
	return append([]string(nil), f.memberIDs...)
}

// hostStats assembles the placement inputs for every registered host
// from the registry, in ascending id order.
func (f *Federation) hostStats() []HostStats {
	ids := f.reg.Hosts()
	out := make([]HostStats, 0, len(ids))
	for _, id := range ids {
		hs := ReadHostStats(f.view, id)
		hs.Live = f.reg.Live(id)
		out = append(out, hs)
	}
	return out
}

// Place runs the scoring engine over the live registry for req. On
// admission it records the guest under /cluster/guests/<uid> and
// returns the chosen host id; on rejection ok is false. Either way the
// decision is traced (cluster.place / cluster.reject) and counted.
func (f *Federation) Place(req Request) (hostID string, ok bool) {
	scores, winner, mode := ScoreHosts(f.cfg.Policy, req, f.hostStats())
	if winner < 0 {
		f.rejects++
		f.record(trace.Record{
			Kind: trace.KindClusterReject, Path: req.Guest,
			Size: int64(req.VCPUs), Value: mode,
		})
		return "", false
	}
	win := scores[winner]
	RecordPlacement(f.view, req.Guest, win.ID, req.VCPUs)
	f.places++
	f.record(trace.Record{
		Kind: trace.KindClusterPlace, Host: win.ID, Path: req.Guest,
		Size: int64(req.VCPUs), Weight: win.Score, Value: mode,
	})
	return win.ID, true
}

// BindGuest records the domain id a placed guest received on its host
// and refreshes the host's load stats so the next placement sees the
// new occupancy immediately.
func (f *Federation) BindGuest(uid string, dom store.DomID) {
	f.view.Write(store.ClusterGuestKey(uid, keyGuestDom), itoa(int64(dom)))
	host := readString(f.view, store.ClusterGuestKey(uid, keyGuestHost), "")
	if m := f.members[host]; m != nil && !m.agent.Stopped() {
		m.agent.PublishStats()
	}
}

// NoteGuestGone removes a completed (or destroyed) guest's cluster
// record and refreshes its host's stats.
func (f *Federation) NoteGuestGone(uid string) {
	host := readString(f.view, store.ClusterGuestKey(uid, keyGuestHost), "")
	f.view.Remove(store.ClusterGuestPath(uid))
	if m := f.members[host]; m != nil && !m.agent.Stopped() {
		m.agent.PublishStats()
	}
}

// GuestHost reports which hypervisor currently holds uid ("" unknown).
func (f *Federation) GuestHost(uid string) string {
	return readString(f.view, store.ClusterGuestKey(uid, keyGuestHost), "")
}

// sweepTick TTL-expires hosts whose heartbeat stalled: the registry
// entry is removed (agents republish statics each beat, so a wrongly
// expired but living host heals itself) and the expiry is traced.
func (f *Federation) sweepTick() {
	if f.stopped {
		return
	}
	for _, id := range f.reg.Hosts() {
		stale, age := f.reg.Stale(id)
		if !stale {
			continue
		}
		f.reg.Forget(id)
		f.view.Remove(store.HypervisorPath(id))
		f.expiries++
		f.record(trace.Record{Kind: trace.KindClusterExpire, Host: id, Latency: sim.Time(age)})
	}
	f.k.After(f.cfg.ExpirySweep, f.sweepTick)
}

// rebalanceTick migrates one guest from the busiest to the idlest live
// host when the VCPU spread exceeds the configured gap. At most one
// migration is in flight at a time — rebalancing is a background
// pressure valve, not a scheduler.
func (f *Federation) rebalanceTick() {
	if f.stopped {
		return
	}
	defer f.k.After(f.cfg.RebalanceInterval, f.rebalanceTick)
	if len(f.migrating) > 0 || !f.hasHooks {
		return
	}
	f.rebalanceScans++
	stats := f.hostStats()
	busiest, idlest := -1, -1
	for i, h := range stats {
		if !h.Live || f.members[h.ID] == nil {
			continue
		}
		if busiest < 0 || h.ActiveVCPUs > stats[busiest].ActiveVCPUs {
			busiest = i
		}
		if idlest < 0 || h.ActiveVCPUs < stats[idlest].ActiveVCPUs {
			idlest = i
		}
	}
	if busiest < 0 || idlest < 0 || busiest == idlest {
		return
	}
	src, dst := stats[busiest], stats[idlest]
	if src.ActiveVCPUs-dst.ActiveVCPUs < f.cfg.RebalanceGap {
		return
	}
	// Pick the smallest movable guest on the busiest host that fits the
	// idlest (smallest uid on ties) — least dirty state to drag across.
	uids, err := f.view.List(store.ClusterGuestsPath())
	if err != nil {
		return
	}
	pick, pickVCPUs := "", 0
	for _, uid := range uids {
		if readString(f.view, store.ClusterGuestKey(uid, keyGuestHost), "") != src.ID {
			continue
		}
		v := int(readInt(f.view, store.ClusterGuestKey(uid, keyGuestVCPUs), 0))
		if v <= 0 {
			continue
		}
		if float64(dst.ActiveVCPUs+v) > float64(dst.Cores)*f.cfg.Policy.Overcommit {
			continue
		}
		if pick == "" || v < pickVCPUs {
			pick, pickVCPUs = uid, v
		}
	}
	if pick == "" {
		return
	}
	f.Migrate(pick, src.ID, dst.ID)
}

// record mirrors a decision into the trace recorder, if any.
func (f *Federation) record(rec trace.Record) {
	if f.rec != nil {
		f.rec.Record(rec)
	}
}

package federation

import (
	"math"
	"testing"
)

// almost compares floats with the slack the scoring arithmetic needs.
func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestScoreHostsWorkedExample pins the exact numbers docs/CLUSTER.md §3
// walks through: three 12-core hosts, a 4-VCPU request, default weights
// 0.4/0.4/0.2. h1 fails capacity; among the feasible pair h3 wins with
// score 0.4·(1−2/8) + 0.4·(1−0.25/0.5) + 0.2·(1−4/12) ≈ 0.6333.
func TestScoreHostsWorkedExample(t *testing.T) {
	hosts := []HostStats{
		{ID: "h1", Live: true, Cores: 12, ActiveVCPUs: 10},
		{ID: "h2", Live: true, Cores: 12, ActiveVCPUs: 4, QueueDepth: 8, Util: 0.5, P99Ms: 12},
		{ID: "h3", Live: true, Cores: 12, ActiveVCPUs: 6, QueueDepth: 2, Util: 0.25, P99Ms: 4},
	}
	scores, winner, mode := ScoreHosts(Policy{}, Request{Guest: "vm1", VCPUs: 4}, hosts)
	if mode != "enforce" {
		t.Fatalf("mode = %q, want enforce", mode)
	}
	if winner != 2 || scores[winner].ID != "h3" {
		t.Fatalf("winner = %d (%+v), want h3", winner, scores)
	}
	if scores[0].Feasible || scores[0].Reason != "capacity" {
		t.Fatalf("h1 = %+v, want infeasible for capacity", scores[0])
	}
	if !almost(scores[1].Score, 0) {
		t.Fatalf("h2 score = %g, want 0 (maximal on every metric)", scores[1].Score)
	}
	want := 0.4*(1-2.0/8) + 0.4*(1-0.25/0.5) + 0.2*(1-4.0/12)
	if !almost(scores[2].Score, want) {
		t.Fatalf("h3 score = %g, want %g", scores[2].Score, want)
	}
}

// TestScoreHostsTiebreak: identical feasible hosts resolve to the
// lexicographically smaller id (the strictly-greater scan over
// sorted-by-id input).
func TestScoreHostsTiebreak(t *testing.T) {
	hosts := []HostStats{
		{ID: "a", Live: true, Cores: 8},
		{ID: "b", Live: true, Cores: 8},
	}
	_, winner, _ := ScoreHosts(Policy{}, Request{VCPUs: 2}, hosts)
	if winner != 0 {
		t.Fatalf("winner = %d, want 0 (id tiebreak)", winner)
	}
}

// TestScoreHostsZeroMetricsShareFullWeight: when a metric is zero on
// every candidate it must not divide by zero, and every candidate gets
// the metric's full weight.
func TestScoreHostsZeroMetricsShareFullWeight(t *testing.T) {
	hosts := []HostStats{{ID: "a", Live: true, Cores: 4}}
	scores, winner, _ := ScoreHosts(Policy{}, Request{VCPUs: 1}, hosts)
	if winner != 0 || !almost(scores[0].Score, 1.0) {
		t.Fatalf("score = %+v, want full weight 1.0", scores[0])
	}
}

// TestScoreHostsClassConstraint: a class mismatch is a hard constraint
// under enforce, and exactly the constraint the permissive fallback
// relaxes.
func TestScoreHostsClassConstraint(t *testing.T) {
	hosts := []HostStats{{ID: "hdd0", Live: true, Cores: 16, Class: "hdd"}}
	req := Request{Guest: "vm1", VCPUs: 2, Class: "ssd"}

	scores, winner, mode := ScoreHosts(Policy{}, req, hosts)
	if winner != -1 || mode != "no-feasible-host" {
		t.Fatalf("enforce: winner=%d mode=%q, want rejection", winner, mode)
	}
	if scores[0].Reason != "class" {
		t.Fatalf("reason = %q, want class", scores[0].Reason)
	}

	_, winner, mode = ScoreHosts(Policy{Mode: Permissive}, req, hosts)
	if winner != 0 || mode != "fallback" {
		t.Fatalf("permissive: winner=%d mode=%q, want fallback onto hdd0", winner, mode)
	}
}

// TestScoreHostsPermissiveZeroFeasible is the satellite case: no host is
// feasible. Enforce rejects; permissive falls back onto the live host
// with the most headroom; with no live host at all, even permissive
// rejects — liveness is never relaxed.
func TestScoreHostsPermissiveZeroFeasible(t *testing.T) {
	hosts := []HostStats{
		{ID: "a", Live: true, Cores: 4, ActiveVCPUs: 4},
		{ID: "b", Live: true, Cores: 8, ActiveVCPUs: 6},
		{ID: "c", Live: false, Cores: 64},
	}
	req := Request{Guest: "vm9", VCPUs: 4}

	_, winner, mode := ScoreHosts(Policy{}, req, hosts)
	if winner != -1 || mode != "no-feasible-host" {
		t.Fatalf("enforce: winner=%d mode=%q, want no-feasible-host", winner, mode)
	}

	// Permissive: b has headroom 8−6=2 > a's 0; dead c's 64 cores must
	// not tempt the fallback.
	_, winner, mode = ScoreHosts(Policy{Mode: Permissive}, req, hosts)
	if winner != 1 || mode != "fallback" {
		t.Fatalf("permissive: winner=%d mode=%q, want fallback onto b", winner, mode)
	}

	// All dead: rejection even under permissive.
	dead := []HostStats{{ID: "a", Cores: 4}, {ID: "b", Cores: 8}}
	_, winner, mode = ScoreHosts(Policy{Mode: Permissive}, req, dead)
	if winner != -1 || mode != "no-live-host" {
		t.Fatalf("all-dead: winner=%d mode=%q, want no-live-host", winner, mode)
	}
}

// TestScoreHostsOvercommit: Overcommit scales capacity — a host over
// physical cores but under cores×overcommit stays feasible.
func TestScoreHostsOvercommit(t *testing.T) {
	hosts := []HostStats{{ID: "a", Live: true, Cores: 4, ActiveVCPUs: 4}}
	req := Request{VCPUs: 2}
	if _, winner, _ := ScoreHosts(Policy{}, req, hosts); winner != -1 {
		t.Fatal("1.0 overcommit admitted past physical capacity")
	}
	if _, winner, _ := ScoreHosts(Policy{Overcommit: 1.5}, req, hosts); winner != 0 {
		t.Fatal("1.5 overcommit refused 6 <= 4*1.5")
	}
}

// TestScoreHostsTierConstraint: a tiered request is only feasible on
// hosts that publish the tier in their census; untiered requests ignore
// tiering entirely, so pre-tiering callers score identically.
func TestScoreHostsTierConstraint(t *testing.T) {
	hosts := []HostStats{
		{ID: "a", Live: true, Cores: 8}, // untiered host
		{ID: "b", Live: true, Cores: 8, TierCounts: map[string]int{"silver": 1, "bronze": 2}},
		{ID: "c", Live: true, Cores: 8, TierCounts: map[string]int{"gold": 0, "silver": 0, "bronze": 0}},
	}
	scores, winner, _ := ScoreHosts(Policy{}, Request{VCPUs: 2, Tier: "gold"}, hosts)
	if winner != 2 || scores[winner].ID != "c" {
		t.Fatalf("gold winner = %d (%+v), want c", winner, scores)
	}
	for _, i := range []int{0, 1} {
		if scores[i].Feasible || scores[i].Reason != "tier" {
			t.Fatalf("%s = %+v, want infeasible for tier", scores[i].ID, scores[i])
		}
	}
	// Untiered request: every live host stays feasible, a untouched by
	// its missing census.
	scores, _, _ = ScoreHosts(Policy{}, Request{VCPUs: 2}, hosts)
	for _, s := range scores {
		if !s.Feasible {
			t.Fatalf("untiered request found %s infeasible (%q)", s.ID, s.Reason)
		}
	}
}

// TestScoreHostsGoldSpread: between otherwise identical gold-capable
// hosts, a gold request lands on the one holding fewer gold guests; a
// bronze request ignores the census and falls back to the id tiebreak.
func TestScoreHostsGoldSpread(t *testing.T) {
	hosts := []HostStats{
		{ID: "a", Live: true, Cores: 8, TierCounts: map[string]int{"gold": 3, "silver": 0, "bronze": 0}},
		{ID: "b", Live: true, Cores: 8, TierCounts: map[string]int{"gold": 1, "silver": 0, "bronze": 0}},
	}
	_, winner, _ := ScoreHosts(Policy{}, Request{VCPUs: 2, Tier: "gold"}, hosts)
	if winner != 1 {
		t.Fatalf("gold winner = %d, want 1 (fewer gold guests)", winner)
	}
	_, winner, _ = ScoreHosts(Policy{}, Request{VCPUs: 2, Tier: "bronze"}, hosts)
	if winner != 0 {
		t.Fatalf("bronze winner = %d, want 0 (id tiebreak, census ignored)", winner)
	}
}

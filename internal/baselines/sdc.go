package baselines

import (
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/store"
)

// SDC configures static dedicated I/O cores: one polling core per socket,
// every VM's requests routed to its home socket's core (the "all VCPUs on
// the same socket" assumption of the original framework), and static
// equal time shares on each core. It owns no runtime logic beyond
// enforcing the equal quanta — precisely the rigidity IOrchestra's
// Algorithm 3 replaces.
type SDC struct {
	h *hypervisor.Host
	// EqualQuantum is the static per-VM DRR quantum in bytes.
	EqualQuantum float64
}

// NewSDC wraps a host that must have been built with ModeDedicated and
// RouteBySocket=false.
func NewSDC(h *hypervisor.Host) *SDC {
	return &SDC{h: h, EqualQuantum: 256 << 10}
}

// HostConfig returns the host configuration SDC requires.
func HostConfig() hypervisor.Config {
	return hypervisor.Config{Mode: hypervisor.ModeDedicated, RouteBySocket: false}
}

// Name identifies SDC in the platform's controller registry.
func (s *SDC) Name() string { return "sdc" }

// Attach is the Controller lifecycle entry (see EnableGuest).
func (s *SDC) Attach(rt *hypervisor.GuestRuntime) { s.EnableGuest(rt) }

// Detach is a no-op: the static quantum is harmless once the guest stops
// submitting, and SDC keeps no other per-guest state.
func (s *SDC) Detach(dom store.DomID) {}

// EnableGuest applies the static equal share for a VM on every core (the
// original scheme gives each VM the same quantum regardless of load or
// priority).
func (s *SDC) EnableGuest(rt *hypervisor.GuestRuntime) {
	for _, c := range s.h.IOCores() {
		c.SetQuantum(rt.G.ID(), s.EqualQuantum)
	}
}

// Rebalance is a no-op: SDC is static by definition. It exists so tests
// can assert the contrast with IOrchestra's dynamic updates.
func (s *SDC) Rebalance() {}

// Dom0 re-exported for convenience in experiment wiring.
var _ = store.Dom0

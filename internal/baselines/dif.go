// Package baselines implements the two comparison systems the paper
// emulates (Sec. 5): SDC — static dedicated I/O cores with equal shares
// and a same-socket assumption (Har'El et al. / SplitX style) — and DIF —
// disk-idleness-based flushing (Elango et al.), which passes physical disk
// idleness into every VM so guest flushers can pick a good moment, but
// with no cross-VM arbitration.
package baselines

import (
	"sort"
	"strconv"

	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Both baselines plug into the same policy-controller framework as
// IOrchestra's manager, so platforms install them through one registry.
var (
	_ core.Controller = (*DIF)(nil)
	_ core.Controller = (*SDC)(nil)
)

// DIF coordinates disk-idleness-based flushing: the host publishes an
// idleness signal to all guests; every guest with dirty pages reacts by
// flushing. Unlike IOrchestra's Algorithm 1 there is no argmax selection —
// all dirty VMs flush at once, which recreates the thundering-herd
// behaviour IOrchestra avoids.
type DIF struct {
	h   *hypervisor.Host
	k   *sim.Kernel
	mon *hypervisor.Monitor

	// IdleFrac: the disk counts as idle below this bandwidth fraction.
	IdleFrac float64
	// CheckInterval paces idleness sampling while dirty pages exist.
	CheckInterval sim.Duration

	guests map[store.DomID]*difGuest
	timer  *sim.Event

	signals uint64
}

type difGuest struct {
	dif   *DIF
	dom   store.DomID
	disks []*guest.VDisk
	dirty int64
}

// NewDIF attaches the DIF coordinator to a host.
func NewDIF(h *hypervisor.Host) *DIF {
	return &DIF{
		h:             h,
		k:             h.Kernel(),
		mon:           h.Monitor(),
		IdleFrac:      0.1,
		CheckInterval: 50 * sim.Millisecond,
		guests:        map[store.DomID]*difGuest{},
	}
}

// Signals reports how many idleness notifications were published.
func (d *DIF) Signals() uint64 { return d.signals }

// Name identifies the coordinator in the platform's controller registry.
func (d *DIF) Name() string { return "dif" }

// Attach is the Controller lifecycle entry (see EnableGuest).
func (d *DIF) Attach(rt *hypervisor.GuestRuntime) { d.EnableGuest(rt) }

// Detach forgets a removed guest: its dirty tracking stops feeding the
// idleness timer and a late disk_idle watch fire is ignored. Safe for
// guests that were never attached.
func (d *DIF) Detach(dom store.DomID) {
	dg := d.guests[dom]
	if dg == nil {
		return
	}
	delete(d.guests, dom)
	for _, v := range dg.disks {
		v.Cache.OnDirtyChange = nil
	}
}

// EnableGuest installs the DIF guest hook: dirty-page tracking plus a
// watch on the idleness signal.
func (d *DIF) EnableGuest(rt *hypervisor.GuestRuntime) {
	dg := &difGuest{dif: d, dom: rt.G.ID(), disks: rt.G.Disks()}
	d.guests[dg.dom] = dg
	for _, v := range dg.disks {
		v := v
		v.Cache.OnDirtyChange = func(nr int64) {
			dg.noteDirty(v, nr)
		}
	}
	rt.Dom.WriteBool("disk_idle", false)
	rt.Dom.Watch("disk_idle", func(rel, value string) {
		if value == "1" {
			dg.onIdle()
		}
	})
}

func (dg *difGuest) noteDirty(v *guest.VDisk, nr int64) {
	var total int64
	for _, d := range dg.disks {
		total += d.Cache.DirtyPages()
	}
	dg.dirty = total
	if total > 0 {
		dg.dif.arm()
	}
}

func (dg *difGuest) onIdle() {
	if dg.dif.guests[dg.dom] != dg {
		return // detached; a late idleness notification
	}
	// Every disk with dirty pages flushes — no cross-VM coordination.
	for _, v := range dg.disks {
		if v.Cache.DirtyPages() > 0 {
			v.Cache.FlushNow()
		}
	}
	dg.dif.h.Store().WriteBool(store.Dom0, store.DomainPath(dg.dom)+"/disk_idle", false)
}

func (d *DIF) anyDirty() bool {
	for _, dg := range d.guests {
		if dg.dirty > 0 {
			return true
		}
	}
	return false
}

func (d *DIF) arm() {
	if d.timer != nil {
		return
	}
	d.timer = d.k.After(d.CheckInterval, func() {
		d.timer = nil
		d.tick()
		if d.anyDirty() {
			d.arm()
		}
	})
}

// tick publishes idleness to every guest when the device is quiet. Like
// IOrchestra's own policies, DIF reads the device through the monitoring
// module's snapshot rather than touching the device directly.
func (d *DIF) tick() {
	dev := d.mon.DeviceSnapshot(d.k.Now())
	if dev.BandwidthBps >= d.IdleFrac*dev.CapacityBps {
		return
	}
	// Ascending-domain order keeps the signal writes (and the decision
	// trace behind them) identical on every fixed-seed run.
	doms := make([]store.DomID, 0, len(d.guests))
	for dom := range d.guests {
		doms = append(doms, dom)
	}
	sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
	for _, dom := range doms {
		if d.guests[dom].dirty > 0 {
			d.signals++
			d.h.Store().WriteBool(store.Dom0, store.DomainPath(dom)+"/disk_idle", true)
		}
	}
}

// String identifies the coordinator.
func (d *DIF) String() string { return "dif(" + strconv.Itoa(len(d.guests)) + " guests)" }

package baselines

import (
	"testing"

	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

func TestDIFFlushesOnIdle(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(1, "dif")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	dif := NewDIF(h)
	rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
			WakeInterval: 60 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
		}})
	dif.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	k.At(sim.Millisecond, func() { d.Write(p, 16<<20, nil) })
	k.RunUntil(2 * sim.Second)
	if d.Cache.DirtyPages() != 0 {
		t.Fatalf("DIF left %d dirty pages", d.Cache.DirtyPages())
	}
	if dif.Signals() == 0 {
		t.Fatal("no idleness signals published")
	}
}

func TestDIFSignalsAllDirtyGuestsAtOnce(t *testing.T) {
	// The defining contrast with IOrchestra: both dirty guests get the
	// idle signal in the same tick (thundering herd).
	k := sim.NewKernel()
	rng := stats.NewStream(2, "dif")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	dif := NewDIF(h)
	mk := func() *hypervisor.GuestRuntime {
		rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
			guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
				WakeInterval: 60 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
			}})
		dif.EnableGuest(rt)
		return rt
	}
	rt1, rt2 := mk(), mk()
	p1, p2 := rt1.G.NewProcess(1), rt2.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		rt1.G.Disk("xvda").Write(p1, 8<<20, nil)
		rt2.G.Disk("xvda").Write(p2, 8<<20, nil)
	})
	k.RunUntil(150 * sim.Millisecond)
	if dif.Signals() < 2 {
		t.Fatalf("Signals = %d, want both guests signalled", dif.Signals())
	}
	k.RunUntil(3 * sim.Second)
	if rt1.G.Disk("xvda").Cache.DirtyPages() != 0 || rt2.G.Disk("xvda").Cache.DirtyPages() != 0 {
		t.Fatal("caches not drained")
	}
}

func TestSDCStaticEqualQuanta(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(3, "sdc")
	cfg := HostConfig()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	h := hypervisor.New(k, cfg, rng.Fork("host"))
	if h.Mode() != hypervisor.ModeDedicated {
		t.Fatal("SDC host not in dedicated mode")
	}
	sdc := NewSDC(h)
	rt1 := h.CreateGuest(guest.Config{VCPUs: 1})
	rt2 := h.CreateGuest(guest.Config{VCPUs: 1})
	sdc.EnableGuest(rt1)
	sdc.EnableGuest(rt2)
	for _, c := range h.IOCores() {
		if c.Quantum(rt1.G.ID()) != c.Quantum(rt2.G.ID()) {
			t.Fatal("SDC quanta not equal")
		}
	}
	sdc.Rebalance() // no-op by contract
	for _, c := range h.IOCores() {
		if c.Quantum(rt1.G.ID()) != sdc.EqualQuantum {
			t.Fatal("Rebalance changed static quanta")
		}
	}
}

func TestSDCRoutesToHomeSocketOnly(t *testing.T) {
	k := sim.NewKernel()
	rng := stats.NewStream(4, "sdc")
	cfg := HostConfig()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	h := hypervisor.New(k, cfg, rng.Fork("host"))
	sdc := NewSDC(h)
	// Cross-socket guest: 2 VCPUs but only 1 free core per socket.
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	sdc.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p0 := rt.G.NewProcess(1)
	p1 := rt.G.NewProcess(1)
	for i := 0; i < 10; i++ {
		d.Read(p0, 4096, false, nil)
		d.Read(p1, 4096, false, nil)
	}
	k.Run()
	home := h.IOCores()[rt.HomeSocket]
	other := h.IOCores()[1-rt.HomeSocket]
	if home.Processed() != 20 || other.Processed() != 0 {
		t.Fatalf("SDC routing: home=%d other=%d, want all on home socket",
			home.Processed(), other.Processed())
	}
}

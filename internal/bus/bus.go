// Package bus implements the IOrchestra inter-domain communication layer,
// the equivalent of XenBus in the paper's prototype (Sec. 4): domains
// register with the system store, obtain scoped handles to their own
// subtree, register watch callbacks, and exchange notifications over
// paired event-channel ports with a simulated delivery latency.
package bus

import (
	"fmt"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Bus connects domains to the system store and to each other.
type Bus struct {
	k       *sim.Kernel
	st      *store.Store
	latency sim.Duration
	domains map[store.DomID]*Domain
	// notifications counts event-channel deliveries, for overhead accounting.
	notifications uint64
}

// New returns a bus over st with the given event-channel delivery latency.
func New(k *sim.Kernel, st *store.Store, eventLatency sim.Duration) *Bus {
	return &Bus{k: k, st: st, latency: eventLatency, domains: map[store.DomID]*Domain{}}
}

// Store exposes the underlying system store (the hypervisor-side modules
// use it directly; guests go through their Domain handle).
func (b *Bus) Store() *store.Store { return b.st }

// Kernel exposes the simulation clock the bus is bound to.
func (b *Bus) Kernel() *sim.Kernel { return b.k }

// Register creates (or returns) the domain handle for dom, creating its
// store home directory as the toolstack would at domain creation.
func (b *Bus) Register(dom store.DomID) *Domain {
	if d, ok := b.domains[dom]; ok {
		return d
	}
	b.st.AddDomain(dom)
	// The cursor map is built here, not lazily in cursor(): that is the
	// per-op hot path and a nil check plus literal there is an allocation
	// the hotpathalloc pass would rightly flag.
	d := &Domain{b: b, id: dom, home: store.DomainPath(dom), cursors: map[string]*store.Cursor{}}
	b.domains[dom] = d
	return d
}

// Domains returns the ids of all registered domains in ascending order.
func (b *Bus) Domains() []store.DomID {
	out := make([]store.DomID, 0, len(b.domains))
	for id := range b.domains {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort; the set is small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Notifications reports the number of event-channel deliveries so far.
func (b *Bus) Notifications() uint64 { return b.notifications }

// Conn is the store surface a guest-side component consumes: a handle
// scoped to one domain's subtree with relative-path reads, writes and
// watches. *Domain implements it in-process; netstore.Client's Domain
// adapter implements it over the wire, so a guest store driver runs
// unchanged whether the system store is an object or a socket away.
// The wire adapter satisfies Conn on either protocol version — against
// an old v1 server the client transparently drops back to per-op
// frames, so a driver never observes which generation it dialed.
type Conn interface {
	ID() store.DomID
	Path(rel string) string
	Write(rel, value string) error
	WriteBool(rel string, v bool) error
	WriteInt(rel string, v int64) error
	WriteFloat(rel string, v float64) error
	Read(rel string) (string, error)
	ReadBool(rel string) (bool, error)
	ReadInt(rel string, def int64) (int64, error)
	ReadFloat(rel string, def float64) (float64, error)
	Watch(rel string, fn func(rel, value string)) (store.WatchID, error)
	Unwatch(id store.WatchID)
}

// Domain is a handle scoped to one domain's view of the store.
type Domain struct {
	b    *Bus
	id   store.DomID
	home string // cached store.DomainPath(id); Path runs on every store op
	// cursors memoizes rel → pinned store cursors: a domain touches a
	// small fixed key set, so both the path concatenation and the store's
	// absolute-path resolution happen once per key instead of once per
	// operation — every typed op below is one short-key map hit plus the
	// cursor fast path. Kernel-goroutine only, like every other
	// store-facing structure.
	cursors map[string]*store.Cursor
}

var _ Conn = (*Domain)(nil)

// ID reports the domain id.
func (d *Domain) ID() store.DomID { return d.id }

// cursor returns (creating if needed) the pinned cursor for rel.
//
// hotpath
func (d *Domain) cursor(rel string) *store.Cursor {
	if c, ok := d.cursors[rel]; ok {
		return c
	}
	p := d.home
	if rel != "" {
		p = d.home + "/" + rel
	}
	c := d.b.st.CursorFor(p)
	d.cursors[rel] = c
	return c
}

// Path resolves a relative key to the domain's absolute store path.
func (d *Domain) Path(rel string) string {
	return d.cursor(rel).Path()
}

// Write sets a key within the domain's own subtree.
//
// hotpath
func (d *Domain) Write(rel, value string) error {
	return d.b.st.WriteCursor(d.id, d.cursor(rel), value)
}

// WriteBool sets a boolean key within the domain's own subtree.
func (d *Domain) WriteBool(rel string, v bool) error {
	return d.b.st.WriteBoolCursor(d.id, d.cursor(rel), v)
}

// WriteInt sets an integer key within the domain's own subtree.
func (d *Domain) WriteInt(rel string, v int64) error {
	return d.b.st.WriteIntCursor(d.id, d.cursor(rel), v)
}

// WriteFloat sets a float key within the domain's own subtree.
func (d *Domain) WriteFloat(rel string, v float64) error {
	return d.b.st.WriteFloatCursor(d.id, d.cursor(rel), v)
}

// Read reads a key from the domain's own subtree.
//
// hotpath
func (d *Domain) Read(rel string) (string, error) {
	return d.b.st.ReadCursor(d.id, d.cursor(rel))
}

// ReadBool reads a boolean key (false when absent).
func (d *Domain) ReadBool(rel string) (bool, error) {
	return d.b.st.ReadBoolCursor(d.id, d.cursor(rel))
}

// ReadInt reads an integer key with a default.
func (d *Domain) ReadInt(rel string, def int64) (int64, error) {
	return d.b.st.ReadIntCursor(d.id, d.cursor(rel), def)
}

// ReadFloat reads a float key with a default.
func (d *Domain) ReadFloat(rel string, def float64) (float64, error) {
	return d.b.st.ReadFloatCursor(d.id, d.cursor(rel), def)
}

// Watch registers a callback on a relative prefix of the domain's own
// subtree; fn receives the path relative to the domain root.
func (d *Domain) Watch(rel string, fn func(rel, value string)) (store.WatchID, error) {
	prefix := d.Path(rel)
	base := d.home + "/"
	return d.b.st.Watch(d.id, prefix, func(path, value string) {
		r := path
		if len(path) > len(base) && path[:len(base)] == base {
			r = path[len(base):]
		}
		fn(r, value)
	})
}

// Unwatch removes a previously registered watch.
func (d *Domain) Unwatch(id store.WatchID) { d.b.st.Unwatch(id) }

// Port is one end of an event channel. Notifications carry no payload
// (exactly as in Xen); data travels through the store or shared rings.
type Port struct {
	b       *Bus
	peer    *Port
	dom     store.DomID
	handler func()
	closed  bool
}

// NewChannel creates a bound pair of event-channel ports between two
// domains.
func (b *Bus) NewChannel(a, z store.DomID) (*Port, *Port) {
	pa := &Port{b: b, dom: a}
	pz := &Port{b: b, dom: z}
	pa.peer, pz.peer = pz, pa
	return pa, pz
}

// SetHandler installs the callback invoked when the peer notifies.
func (p *Port) SetHandler(fn func()) { p.handler = fn }

// Notify signals the peer port; its handler runs after the bus latency.
// Notifying a closed channel is a no-op, as the event is simply lost.
func (p *Port) Notify() {
	if p.closed || p.peer == nil || p.peer.closed {
		return
	}
	peer := p.peer
	p.b.notifications++
	p.b.k.After(p.b.latency, func() {
		if !peer.closed && peer.handler != nil {
			peer.handler()
		}
	})
}

// Close tears down this end; in-flight notifications to it are dropped.
func (p *Port) Close() { p.closed = true }

// String identifies the port for diagnostics.
func (p *Port) String() string { return fmt.Sprintf("port(dom%d)", p.dom) }

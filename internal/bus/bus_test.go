package bus

import (
	"errors"
	"testing"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

func mk() (*sim.Kernel, *Bus) {
	k := sim.NewKernel()
	st := store.New(k, 5*sim.Microsecond)
	return k, New(k, st, 20*sim.Microsecond)
}

func TestRegisterIdempotent(t *testing.T) {
	_, b := mk()
	d1 := b.Register(3)
	d2 := b.Register(3)
	if d1 != d2 {
		t.Fatal("Register returned distinct handles for same domain")
	}
	if d1.ID() != 3 {
		t.Fatalf("ID = %d", d1.ID())
	}
}

func TestDomainsSorted(t *testing.T) {
	_, b := mk()
	for _, id := range []store.DomID{5, 1, 3} {
		b.Register(id)
	}
	got := b.Domains()
	want := []store.DomID{1, 3, 5}
	if len(got) != 3 {
		t.Fatalf("Domains = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Domains = %v, want %v", got, want)
		}
	}
}

func TestDomainScopedReadWrite(t *testing.T) {
	_, b := mk()
	d := b.Register(2)
	if err := d.Write("virt-dev/xvda/nr", "10"); err != nil {
		t.Fatal(err)
	}
	if v, err := d.Read("virt-dev/xvda/nr"); err != nil || v != "10" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	// Raw store confirms the absolute path.
	if v, err := b.Store().Read(store.Dom0, store.DiskPath(2, "xvda", "nr")); err != nil || v != "10" {
		t.Fatalf("absolute Read = %q, %v", v, err)
	}
}

func TestDomainTypedHelpers(t *testing.T) {
	_, b := mk()
	d := b.Register(2)
	d.WriteBool("flag", true)
	if v, err := d.ReadBool("flag"); err != nil || !v {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	d.WriteInt("count", 9)
	if v, err := d.ReadInt("count", 0); err != nil || v != 9 {
		t.Fatalf("ReadInt = %d, %v", v, err)
	}
	d.WriteFloat("ratio", 0.5)
	if v, err := d.ReadFloat("ratio", 0); err != nil || v != 0.5 {
		t.Fatalf("ReadFloat = %v, %v", v, err)
	}
	if v, err := d.ReadInt("absent", 4); err != nil || v != 4 {
		t.Fatalf("ReadInt default = %d, %v", v, err)
	}
}

func TestDomainCannotEscapeSubtree(t *testing.T) {
	_, b := mk()
	b.Register(1)
	d2 := b.Register(2)
	// Domain 2's handle is rooted at its own path; the only way to reach
	// domain 1 is through the raw store, which denies it.
	err := b.Store().Write(2, store.DomainPath(1)+"/x", "intrude")
	if !errors.Is(err, store.ErrPermission) {
		t.Fatalf("cross-domain raw write err = %v", err)
	}
	_ = d2
}

func TestDomainWatchRelativePaths(t *testing.T) {
	k, b := mk()
	d := b.Register(4)
	var gotRel, gotVal string
	d.Watch("virt-dev", func(rel, v string) { gotRel, gotVal = rel, v })
	k.At(1, func() { d.Write("virt-dev/xvda/congested", "1") })
	k.Run()
	if gotRel != "virt-dev/xvda/congested" || gotVal != "1" {
		t.Fatalf("watch got (%q, %q)", gotRel, gotVal)
	}
}

func TestDomainUnwatch(t *testing.T) {
	k, b := mk()
	d := b.Register(4)
	fired := false
	id, _ := d.Watch("x", func(rel, v string) { fired = true })
	d.Unwatch(id)
	k.At(1, func() { d.Write("x", "1") })
	k.Run()
	if fired {
		t.Fatal("unwatched callback fired")
	}
}

func TestChannelNotifyLatencyAndDirection(t *testing.T) {
	k, b := mk()
	front, back := b.NewChannel(1, 0)
	var frontAt, backAt sim.Time
	front.SetHandler(func() { frontAt = k.Now() })
	back.SetHandler(func() { backAt = k.Now() })
	k.At(sim.Millisecond, func() { front.Notify() }) // guest kicks backend
	k.At(2*sim.Millisecond, func() { back.Notify() })
	k.Run()
	if want := sim.Millisecond + 20*sim.Microsecond; backAt != want {
		t.Fatalf("backend handler at %v, want %v", backAt, want)
	}
	if want := 2*sim.Millisecond + 20*sim.Microsecond; frontAt != want {
		t.Fatalf("frontend handler at %v, want %v", frontAt, want)
	}
	if b.Notifications() != 2 {
		t.Fatalf("Notifications = %d", b.Notifications())
	}
}

func TestChannelClosedDropsEvents(t *testing.T) {
	k, b := mk()
	a, z := b.NewChannel(1, 2)
	fired := false
	z.SetHandler(func() { fired = true })
	k.At(1, func() {
		a.Notify()
		z.Close() // close before delivery: in-flight event dropped
	})
	k.Run()
	if fired {
		t.Fatal("closed port received event")
	}
	// Notify on closed peer is a no-op rather than a panic.
	k2, b2 := mk()
	a2, z2 := b2.NewChannel(1, 2)
	z2.Close()
	k2.At(1, func() { a2.Notify() })
	k2.Run()
	if b2.Notifications() != 0 {
		t.Fatal("notification counted despite closed peer")
	}
}

func TestChannelNoHandlerIsSafe(t *testing.T) {
	k, b := mk()
	a, _ := b.NewChannel(1, 2)
	k.At(1, func() { a.Notify() })
	k.Run() // must not panic
}

func TestPortString(t *testing.T) {
	_, b := mk()
	a, _ := b.NewChannel(7, 0)
	if a.String() != "port(dom7)" {
		t.Fatalf("String = %q", a.String())
	}
}

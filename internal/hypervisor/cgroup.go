// Package hypervisor models the host side of the paper's platform: NUMA
// topology with pinned VCPUs, the paravirtual frontend/backend request
// path, a cgroup-style weighted proportional-share dispatcher in front of
// the shared device, and dedicated polling I/O cores running the paper's
// deficit-round-robin scheme (Algorithm 3).
package hypervisor

import (
	"sort"

	"iorchestra/internal/device"
	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
)

// Cgroup is a weighted proportional-share dispatcher in front of a block
// device, standing in for the blkio cgroup controller: each class (a VM in
// backend mode, an I/O core in dedicated mode) gets device bandwidth in
// proportion to its weight, enforced with byte-denominated deficit round
// robin.
type Cgroup struct {
	k   *sim.Kernel
	dev device.BlockDevice

	classes map[int]*cgClass
	order   []int // active class ids, round-robin cursor below
	cursor  int

	inFlight    int
	maxInFlight int
	quantumBase float64 // bytes granted per unit weight per round

	dispatched uint64

	// tracer, when set, records Q/D/C events for every request that
	// crosses the host dispatch path — the blktrace feed the paper's
	// monitoring module consumes. arrivals remembers queue timestamps so
	// completions can carry the host-path latency into the decision trace.
	tracer   *trace.Tracer
	arrivals map[*device.Request]sim.Time
}

type cgClass struct {
	id     int
	weight float64
	credit float64
	queue  *sim.FIFO[*device.Request]
	// bytes dispatched, for fairness assertions in tests
	bytes float64
}

// NewCgroup builds a dispatcher over dev. maxInFlight bounds requests
// outstanding at the device (default: half the device queue limit, so the
// device itself never hits its congestion threshold from one host).
func NewCgroup(k *sim.Kernel, dev device.BlockDevice, maxInFlight int) *Cgroup {
	if maxInFlight <= 0 {
		maxInFlight = dev.QueueLimit() / 2
		if maxInFlight < 8 {
			maxInFlight = 8
		}
	}
	return &Cgroup{
		k:           k,
		dev:         dev,
		classes:     map[int]*cgClass{},
		maxInFlight: maxInFlight,
		quantumBase: 256 << 10,
	}
}

// Device exposes the backing device.
func (c *Cgroup) Device() device.BlockDevice { return c.dev }

// SetTracer installs a blktrace-style event recorder on the dispatch path.
func (c *Cgroup) SetTracer(t *trace.Tracer) {
	c.tracer = t
	if t != nil && c.arrivals == nil {
		c.arrivals = map[*device.Request]sim.Time{}
	}
}

// SetWeight sets a class's proportional weight, creating the class if
// needed (weight 0 removes it once drained).
func (c *Cgroup) SetWeight(id int, w float64) {
	cl := c.classes[id]
	if cl == nil {
		cl = &cgClass{id: id, queue: sim.NewFIFO[*device.Request](0)}
		c.classes[id] = cl
		c.order = append(c.order, id)
		sort.Ints(c.order)
	}
	cl.weight = w
}

// Weight reports a class's weight (0 for unknown).
func (c *Cgroup) Weight(id int) float64 {
	if cl := c.classes[id]; cl != nil {
		return cl.weight
	}
	return 0
}

// Queued reports requests waiting in class queues.
func (c *Cgroup) Queued() int {
	n := 0
	for _, cl := range c.classes {
		n += cl.queue.Len()
	}
	return n
}

// InFlight reports requests outstanding at the device.
func (c *Cgroup) InFlight() int { return c.inFlight }

// Backlog reports queued plus in-flight requests.
func (c *Cgroup) Backlog() int { return c.Queued() + c.inFlight }

// MaxInFlight reports the dispatch concurrency bound.
func (c *Cgroup) MaxInFlight() int { return c.maxInFlight }

// Congested reports whether the host I/O path is overcrowded: total
// backlog (queued plus in flight) at or beyond 7/8 of the dispatch
// concurrency — the host-side analogue of the guest threshold, and the
// test the management module applies in Algorithm 2.
func (c *Cgroup) Congested() bool {
	return c.Queued()+c.inFlight >= c.maxInFlight*device.CongestedOnNum/device.CongestedOnDen
}

// BytesDispatched reports lifetime bytes dispatched for a class.
func (c *Cgroup) BytesDispatched(id int) float64 {
	if cl := c.classes[id]; cl != nil {
		return cl.bytes
	}
	return 0
}

// Submit enqueues r under class id (created with weight 1 when unknown).
func (c *Cgroup) Submit(id int, r *device.Request) {
	cl := c.classes[id]
	if cl == nil {
		c.SetWeight(id, 1)
		cl = c.classes[id]
	}
	cl.queue.Push(r)
	if c.tracer != nil {
		c.tracer.Record(trace.Queue, r.Owner, r.Op == device.Write, r.Size)
		c.arrivals[r] = c.k.Now()
	}
	c.pump()
}

// pump dispatches by DRR while capacity remains.
func (c *Cgroup) pump() {
	for c.inFlight < c.maxInFlight {
		cl := c.pick()
		if cl == nil {
			return
		}
		r, _ := cl.queue.Pop()
		cl.credit -= float64(r.Size)
		cl.bytes += float64(r.Size)
		c.inFlight++
		c.dispatched++
		if c.tracer != nil {
			c.tracer.Record(trace.Issue, r.Owner, r.Op == device.Write, r.Size)
		}
		done := r.Done
		r.Done = func() {
			c.inFlight--
			if c.tracer != nil {
				lat := c.k.Now() - c.arrivals[r]
				delete(c.arrivals, r)
				c.tracer.RecordComplete(r.Owner, r.Op == device.Write, r.Size, lat)
			}
			if done != nil {
				done()
			}
			c.pump()
		}
		c.dev.Submit(r)
	}
}

// pick chooses the next class with queued work and credit, replenishing
// credits round by round.
func (c *Cgroup) pick() *cgClass {
	if len(c.order) == 0 {
		return nil
	}
	// Two sweeps: first an attempt with existing credit, then one credit
	// replenishment for every backlogged class; a class with an empty
	// queue forfeits its credit (standard DRR).
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < len(c.order); i++ {
			cl := c.classes[c.order[c.cursor]]
			c.cursor = (c.cursor + 1) % len(c.order)
			if cl.queue.Len() == 0 {
				cl.credit = 0
				continue
			}
			if r, _ := cl.queue.Peek(); cl.credit >= float64(r.Size) {
				// Un-advance so repeated picks drain this class while
				// its credit lasts.
				c.cursor = (c.cursor - 1 + len(c.order)) % len(c.order)
				return cl
			}
		}
		if sweep == 0 {
			any := false
			for _, id := range c.order {
				cl := c.classes[id]
				if cl.queue.Len() > 0 {
					cl.credit += c.quantumBase * cl.weight
					// Guarantee progress for oversized requests.
					if r, _ := cl.queue.Peek(); cl.credit < float64(r.Size) && cl.weight > 0 {
						cl.credit = float64(r.Size)
					}
					any = true
				}
			}
			if !any {
				return nil
			}
		}
	}
	return nil
}

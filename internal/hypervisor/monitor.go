package hypervisor

import (
	"sort"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Monitor is the paper's monitoring module (Sec. 3, Fig. 3) made
// first-class: the single owner of the hypervisor-side measurement state
// that policy controllers act on. Controllers read point-in-time
// snapshots from it — device utilization, per-I/O-core latencies, queue
// backlogs, per-guest dirty-page state — instead of sampling subsystems
// directly, so the read side of every policy is uniform and the write
// side (actuation: flush orders, DRR quanta, cgroup weights) stays on
// Host and the store.
//
// Per-guest dirty state is fed by whoever mirrors the guest's published
// counters (the flush controller's store-event handler) via the
// Observe methods; everything else is sampled from the host on demand.
type Monitor struct {
	h     *Host
	dirty map[store.DomID]map[string]*DirtyState
}

// DirtyState is the monitoring module's view of one (guest, disk)
// dirty-page mirror: the published nr_i count, the presence bit, and
// when the count last grew (a recent grow marks a mid-burst writer that
// Algorithm 1 leaves alone).
type DirtyState struct {
	Nr       int64
	HasDirty bool
	LastGrow sim.Time
}

// DeviceSnapshot is a point-in-time sample of the shared device.
type DeviceSnapshot struct {
	BandwidthBps float64 // current moving-window throughput
	CapacityBps  float64 // spec capacity
	UtilFraction float64 // BandwidthBps over capacity, device-reported
	Pending      int     // requests in flight at the device
}

// CoreSnapshot is a point-in-time sample of the dedicated I/O cores.
type CoreSnapshot struct {
	Latencies  []float64 // mean on-core latency L_i per core, seconds
	AnyTraffic bool      // any core has processed at least one request
}

// Monitor returns the host's monitoring module, creating it on first use.
func (h *Host) Monitor() *Monitor {
	if h.mon == nil {
		h.mon = &Monitor{h: h, dirty: map[store.DomID]map[string]*DirtyState{}}
	}
	return h.mon
}

// DeviceSnapshot samples the shared device at now.
func (mo *Monitor) DeviceSnapshot(now sim.Time) DeviceSnapshot {
	dev := mo.h.dev
	return DeviceSnapshot{
		BandwidthBps: dev.BandwidthBps(now),
		CapacityBps:  dev.CapacityBps(),
		UtilFraction: dev.UtilFraction(now),
		Pending:      dev.Pending(),
	}
}

// CoreSnapshot samples per-core latencies at now. Latencies is empty when
// the host runs no dedicated I/O cores (ModeBackend).
func (mo *Monitor) CoreSnapshot(now sim.Time) CoreSnapshot {
	cores := mo.h.iocores
	cs := CoreSnapshot{Latencies: make([]float64, len(cores))}
	for i, c := range cores {
		cs.Latencies[i] = c.MeanLatency(now)
		if c.Processed() > 0 {
			cs.AnyTraffic = true
		}
	}
	return cs
}

// CapacityBps reports the shared device's spec capacity — the cheap
// subset of DeviceSnapshot for callers that need no bandwidth sampling.
func (mo *Monitor) CapacityBps() float64 { return mo.h.dev.CapacityBps() }

// IOCongested reports the host-side congestion verdict input: the cgroup
// or the device itself is overcrowded (Algorithm 2's host check).
func (mo *Monitor) IOCongested() bool { return mo.h.IOCongested() }

// QueueBacklog reports requests parked in the host cgroup.
func (mo *Monitor) QueueBacklog() int { return mo.h.cg.Backlog() }

// DevPending reports requests in flight at the device — the cheap subset
// of DeviceSnapshot for callers that need no bandwidth sampling.
func (mo *Monitor) DevPending() int { return mo.h.dev.Pending() }

// HostPathP99 reports the 99th-percentile host-path completion latency
// across every guest, from the decision-trace recorder's histograms
// (0 when tracing is off or nothing has completed). The federation's
// host agents publish it as the registry's p99 health key.
func (mo *Monitor) HostPathP99() sim.Time {
	if mo.h.rec == nil {
		return 0
	}
	return mo.h.rec.LatencyPercentile(99)
}

// ActiveVCPUs reports the summed VCPU count of resident guests — the
// capacity quantity cluster placement budgets against (docs/CLUSTER.md).
// Guest order does not matter for a sum, so the map iteration is safe.
func (mo *Monitor) ActiveVCPUs() int {
	n := 0
	for _, rt := range mo.h.guests {
		n += rt.G.NumVCPUs()
	}
	return n
}

// ObserveDirty records a guest's has_dirty_pages transition and reports
// the new presence bit (the caller arms its check cadence on true).
func (mo *Monitor) ObserveDirty(dom store.DomID, disk string, has bool) {
	byDisk := mo.dirty[dom]
	if byDisk == nil {
		byDisk = map[string]*DirtyState{}
		mo.dirty[dom] = byDisk
	}
	ds := byDisk[disk]
	if ds == nil {
		ds = &DirtyState{}
		byDisk[disk] = ds
	}
	ds.HasDirty = has
	if !has {
		ds.Nr = 0
	}
}

// ObserveNrDirty records a guest's published nr_dirty count, stamping
// LastGrow when the count rose. Counts for unobserved (guest, disk)
// pairs are ignored — the presence bit always arrives first.
func (mo *Monitor) ObserveNrDirty(dom store.DomID, disk string, nr int64) {
	byDisk := mo.dirty[dom]
	if byDisk == nil {
		return
	}
	if ds := byDisk[disk]; ds != nil {
		if nr > ds.Nr {
			ds.LastGrow = mo.h.k.Now()
		}
		ds.Nr = nr
	}
}

// ForgetGuest drops all dirty state for a removed or demoted guest.
func (mo *Monitor) ForgetGuest(dom store.DomID) { delete(mo.dirty, dom) }

// AnyDirty reports whether any observed guest disk holds dirty pages.
func (mo *Monitor) AnyDirty() bool {
	for _, byDisk := range mo.dirty {
		for _, ds := range byDisk {
			if ds.HasDirty {
				return true
			}
		}
	}
	return false
}

// DirtyDoms lists domains with observed dirty state in ascending order —
// deterministic iteration for fixed-seed replay.
func (mo *Monitor) DirtyDoms() []store.DomID {
	out := make([]store.DomID, 0, len(mo.dirty))
	for dom := range mo.dirty {
		out = append(out, dom)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyDisks lists a domain's observed disks in ascending name order.
func (mo *Monitor) DirtyDisks(dom store.DomID) []string {
	byDisk := mo.dirty[dom]
	out := make([]string, 0, len(byDisk))
	for name := range byDisk {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dirty returns the state for one (guest, disk) pair.
func (mo *Monitor) Dirty(dom store.DomID, disk string) (DirtyState, bool) {
	if ds := mo.dirty[dom][disk]; ds != nil {
		return *ds, true
	}
	return DirtyState{}, false
}

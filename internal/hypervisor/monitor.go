package hypervisor

import (
	"sort"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Monitor is the paper's monitoring module (Sec. 3, Fig. 3) made
// first-class: the single owner of the hypervisor-side measurement state
// that policy controllers act on. Controllers read point-in-time
// snapshots from it — device utilization, per-I/O-core latencies, queue
// backlogs, per-guest dirty-page state — instead of sampling subsystems
// directly, so the read side of every policy is uniform and the write
// side (actuation: flush orders, DRR quanta, cgroup weights) stays on
// Host and the store.
//
// Per-guest dirty state is fed by whoever mirrors the guest's published
// counters (the flush controller's store-event handler) via the
// Observe methods; everything else is sampled from the host on demand.
//
// The dirty mirror is indexed incrementally so Algorithm 1's
// "argmax nr_i over settled guests" is O(log n) per update and O(1)
// per decision instead of a per-tick scan over every guest:
//
//   - entries whose count grew within the settle window (mid-burst
//     writers Algorithm 1 must leave alone) sit on the recent list,
//     ordered by LastGrow — updates stamp the current instant, so a
//     grown entry moves to the back in O(1) and expiry is a prefix pop;
//   - entries past the window sit in the settled max-heap, ordered by
//     (Nr desc, dom asc, disk asc) — exactly the winner order of the
//     replaced scan, whose first-wins-on-ties rule resolved equal
//     counts toward the lowest (dom, disk).
//
// Entries without dirty pages are in neither container. AnyDirty is a
// counter. TestDirtyIndexMatchesScan pins index-vs-scan equivalence and
// the golden traces pin end-to-end behavior.
type Monitor struct {
	h     *Host
	dirty map[store.DomID]map[string]*dirtyEntry

	dirtyCount int           // entries with HasDirty set
	settled    []*dirtyEntry // max-heap, (Nr desc, dom asc, disk asc)
	settleWin  sim.Duration
	// recent list bounds, LastGrow-ascending; nil when empty.
	recentHead, recentTail *dirtyEntry
}

// dirtyEntry is one (guest, disk) mirror plus its index position.
type dirtyEntry struct {
	dom  store.DomID
	disk string
	st   DirtyState

	pos        int // settled-heap index; -1 when not in the heap
	prev, next *dirtyEntry
	listed     bool // on the recent list
}

// DirtyState is the monitoring module's view of one (guest, disk)
// dirty-page mirror: the published nr_i count, the presence bit, and
// when the count last grew (a recent grow marks a mid-burst writer that
// Algorithm 1 leaves alone).
type DirtyState struct {
	Nr       int64
	HasDirty bool
	LastGrow sim.Time
}

// DeviceSnapshot is a point-in-time sample of the shared device.
type DeviceSnapshot struct {
	BandwidthBps float64 // current moving-window throughput
	CapacityBps  float64 // spec capacity
	UtilFraction float64 // BandwidthBps over capacity, device-reported
	Pending      int     // requests in flight at the device
}

// CoreSnapshot is a point-in-time sample of the dedicated I/O cores.
type CoreSnapshot struct {
	Latencies  []float64 // mean on-core latency L_i per core, seconds
	AnyTraffic bool      // any core has processed at least one request
}

// Monitor returns the host's monitoring module, creating it on first use.
func (h *Host) Monitor() *Monitor {
	if h.mon == nil {
		h.mon = &Monitor{h: h, dirty: map[store.DomID]map[string]*dirtyEntry{}}
	}
	return h.mon
}

// DeviceSnapshot samples the shared device at now.
func (mo *Monitor) DeviceSnapshot(now sim.Time) DeviceSnapshot {
	dev := mo.h.dev
	return DeviceSnapshot{
		BandwidthBps: dev.BandwidthBps(now),
		CapacityBps:  dev.CapacityBps(),
		UtilFraction: dev.UtilFraction(now),
		Pending:      dev.Pending(),
	}
}

// CoreSnapshot samples per-core latencies at now. Latencies is empty when
// the host runs no dedicated I/O cores (ModeBackend).
func (mo *Monitor) CoreSnapshot(now sim.Time) CoreSnapshot {
	cores := mo.h.iocores
	cs := CoreSnapshot{Latencies: make([]float64, len(cores))}
	for i, c := range cores {
		cs.Latencies[i] = c.MeanLatency(now)
		if c.Processed() > 0 {
			cs.AnyTraffic = true
		}
	}
	return cs
}

// CapacityBps reports the shared device's spec capacity — the cheap
// subset of DeviceSnapshot for callers that need no bandwidth sampling.
func (mo *Monitor) CapacityBps() float64 { return mo.h.dev.CapacityBps() }

// IOCongested reports the host-side congestion verdict input: the cgroup
// or the device itself is overcrowded (Algorithm 2's host check).
func (mo *Monitor) IOCongested() bool { return mo.h.IOCongested() }

// QueueBacklog reports requests parked in the host cgroup.
func (mo *Monitor) QueueBacklog() int { return mo.h.cg.Backlog() }

// DevPending reports requests in flight at the device — the cheap subset
// of DeviceSnapshot for callers that need no bandwidth sampling.
func (mo *Monitor) DevPending() int { return mo.h.dev.Pending() }

// HostPathP99 reports the 99th-percentile host-path completion latency
// across every guest, from the decision-trace recorder's histograms
// (0 when tracing is off or nothing has completed). The federation's
// host agents publish it as the registry's p99 health key.
func (mo *Monitor) HostPathP99() sim.Time {
	if mo.h.rec == nil {
		return 0
	}
	return mo.h.rec.LatencyPercentile(99)
}

// GuestPathStats reports the completion count and summed host-path
// latency recorded for one guest's I/O, from the decision-trace
// recorder's per-domain histogram (zeros when tracing is off or the
// guest has no completions). Two snapshots give a windowed mean — the
// G-state controller's per-guest latency verdict — without the
// saturation a lifetime percentile would suffer under sustained load.
func (mo *Monitor) GuestPathStats(dom store.DomID) (count uint64, sum sim.Time) {
	if mo.h.rec == nil {
		return 0, 0
	}
	h := mo.h.rec.DomainLatency(int(dom))
	if h == nil {
		return 0, 0
	}
	return h.Count(), h.Sum()
}

// ActiveVCPUs reports the summed VCPU count of resident guests — the
// capacity quantity cluster placement budgets against (docs/CLUSTER.md).
// Guest order does not matter for a sum, so the map iteration is safe.
func (mo *Monitor) ActiveVCPUs() int {
	n := 0
	for _, rt := range mo.h.guests {
		n += rt.G.NumVCPUs()
	}
	return n
}

// SetDirtySettleWindow sets how long a dirty count must stop growing
// before its entry is considered settled (Algorithm 1's mid-burst
// guard). The flush controller configures it at attach; changing the
// window does not re-shelve existing entries, so set it before traffic.
func (mo *Monitor) SetDirtySettleWindow(d sim.Duration) { mo.settleWin = d }

// ObserveDirty records a guest's has_dirty_pages transition and reports
// the new presence bit (the caller arms its check cadence on true).
func (mo *Monitor) ObserveDirty(dom store.DomID, disk string, has bool) {
	byDisk := mo.dirty[dom]
	if byDisk == nil {
		byDisk = map[string]*dirtyEntry{}
		mo.dirty[dom] = byDisk
	}
	e := byDisk[disk]
	if e == nil {
		e = &dirtyEntry{dom: dom, disk: disk, pos: -1}
		byDisk[disk] = e
	}
	if has == e.st.HasDirty {
		if !has {
			e.st.Nr = 0
		}
		return
	}
	e.st.HasDirty = has
	if !has {
		e.st.Nr = 0
		mo.unindex(e)
		mo.dirtyCount--
		return
	}
	mo.dirtyCount++
	mo.index(e, mo.h.k.Now())
}

// ObserveNrDirty records a guest's published nr_dirty count, stamping
// LastGrow when the count rose. Counts for unobserved (guest, disk)
// pairs are ignored — the presence bit always arrives first.
func (mo *Monitor) ObserveNrDirty(dom store.DomID, disk string, nr int64) {
	byDisk := mo.dirty[dom]
	if byDisk == nil {
		return
	}
	e := byDisk[disk]
	if e == nil {
		return
	}
	if nr > e.st.Nr {
		e.st.Nr = nr
		e.st.LastGrow = mo.h.k.Now()
		// A growing entry is mid-burst: shelve it on the recent list
		// (move-to-back keeps the list LastGrow-ordered, since stamps
		// are monotone).
		if e.pos >= 0 {
			mo.heapRemove(e)
		}
		if e.listed {
			mo.listRemove(e)
		}
		if e.st.HasDirty {
			mo.listPushBack(e)
		}
		return
	}
	if nr == e.st.Nr {
		return
	}
	e.st.Nr = nr
	if e.pos >= 0 {
		// Shrank in place: restore heap order (a smaller key only sinks).
		mo.siftDown(e.pos)
	}
}

// ForgetGuest drops all dirty state for a removed or demoted guest.
func (mo *Monitor) ForgetGuest(dom store.DomID) {
	for _, e := range mo.dirty[dom] {
		if e.st.HasDirty {
			mo.dirtyCount--
		}
		mo.unindex(e)
	}
	delete(mo.dirty, dom)
}

// AnyDirty reports whether any observed guest disk holds dirty pages.
func (mo *Monitor) AnyDirty() bool { return mo.dirtyCount > 0 }

// Observed reports whether any dirty state has been recorded for dom —
// the set the flush controller's liveness sweep runs over (it mirrors
// the demotion side effects of the replaced DirtyDoms scan).
func (mo *Monitor) Observed(dom store.DomID) bool {
	_, ok := mo.dirty[dom]
	return ok
}

// DirtyDoms lists domains with observed dirty state in ascending order —
// deterministic iteration for fixed-seed replay.
func (mo *Monitor) DirtyDoms() []store.DomID {
	out := make([]store.DomID, 0, len(mo.dirty))
	for dom := range mo.dirty {
		out = append(out, dom)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyDisks lists a domain's observed disks in ascending name order.
func (mo *Monitor) DirtyDisks(dom store.DomID) []string {
	byDisk := mo.dirty[dom]
	out := make([]string, 0, len(byDisk))
	for name := range byDisk {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dirty returns the state for one (guest, disk) pair.
func (mo *Monitor) Dirty(dom store.DomID, disk string) (DirtyState, bool) {
	if e := mo.dirty[dom][disk]; e != nil {
		return e.st, true
	}
	return DirtyState{}, false
}

// BestDirty returns Algorithm 1's argmax: the settled entry with the
// most dirty pages, lowest (dom, disk) first on ties, skipping domains
// rejected by ok (fallback guests whose flusher owns their pages).
// Entries whose count last grew within the settle window of now are
// mid-burst and never returned. The winner stays indexed — it leaves
// the heap only when its dirty pages do.
func (mo *Monitor) BestDirty(now sim.Time, ok func(store.DomID) bool) (dom store.DomID, disk string, nr int64, found bool) {
	// Promote entries whose burst has settled (LastGrow-ordered prefix).
	for e := mo.recentHead; e != nil && now-e.st.LastGrow > mo.settleWin; e = mo.recentHead {
		mo.listRemove(e)
		mo.heapPush(e)
	}
	// Pop rejected domains aside, then restore them: rejection is a
	// liveness verdict about the guest, not about its dirty pages.
	var stash []*dirtyEntry
	for len(mo.settled) > 0 {
		top := mo.settled[0]
		if ok == nil || ok(top.dom) {
			dom, disk, nr, found = top.dom, top.disk, top.st.Nr, true
			break
		}
		mo.heapRemove(top)
		stash = append(stash, top)
	}
	for _, e := range stash {
		mo.heapPush(e)
	}
	return dom, disk, nr, found
}

// index shelves a newly dirty entry: onto the recent list when its last
// growth is within the settle window of now, else into the settled heap.
func (mo *Monitor) index(e *dirtyEntry, now sim.Time) {
	if now-e.st.LastGrow > mo.settleWin {
		mo.heapPush(e)
		return
	}
	// Insert in LastGrow order from the back; re-dirtied entries carry a
	// fresh-enough stamp that this walk is short.
	at := mo.recentTail
	for at != nil && at.st.LastGrow > e.st.LastGrow {
		at = at.prev
	}
	mo.listInsertAfter(e, at)
}

// unindex removes an entry from whichever container holds it.
func (mo *Monitor) unindex(e *dirtyEntry) {
	if e.pos >= 0 {
		mo.heapRemove(e)
	}
	if e.listed {
		mo.listRemove(e)
	}
}

// DirtyOrderInvertedForTest flips the settled-heap comparison — the
// argmax becomes an argmin and ties resolve to the highest dom — so the
// golden perturbation self-test can prove the fixtures pin the index's
// exact winner order. Nothing but that test may set it: an index whose
// order quietly diverged from the replaced scan's semantics must fail
// trace parity, not ship.
var DirtyOrderInvertedForTest = false

// dirtyLess orders the settled heap: most dirty pages first, ties to
// the lowest (dom, disk) — the winner order of the replaced scan.
func dirtyLess(a, b *dirtyEntry) bool {
	if a.st.Nr != b.st.Nr {
		if DirtyOrderInvertedForTest {
			return a.st.Nr < b.st.Nr
		}
		return a.st.Nr > b.st.Nr
	}
	if a.dom != b.dom {
		if DirtyOrderInvertedForTest {
			return a.dom > b.dom
		}
		return a.dom < b.dom
	}
	return a.disk < b.disk
}

func (mo *Monitor) heapPush(e *dirtyEntry) {
	e.pos = len(mo.settled)
	mo.settled = append(mo.settled, e)
	mo.siftUp(e.pos)
}

func (mo *Monitor) heapRemove(e *dirtyEntry) {
	i, last := e.pos, len(mo.settled)-1
	mo.settled[i] = mo.settled[last]
	mo.settled[i].pos = i
	mo.settled[last] = nil
	mo.settled = mo.settled[:last]
	e.pos = -1
	if i < last {
		mo.siftDown(i)
		mo.siftUp(i)
	}
}

func (mo *Monitor) siftUp(i int) {
	h := mo.settled
	for i > 0 {
		parent := (i - 1) / 2
		if !dirtyLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].pos, h[parent].pos = i, parent
		i = parent
	}
}

func (mo *Monitor) siftDown(i int) {
	h := mo.settled
	n := len(h)
	for {
		best := i
		if l := 2*i + 1; l < n && dirtyLess(h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && dirtyLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		h[i].pos, h[best].pos = i, best
		i = best
	}
}

func (mo *Monitor) listPushBack(e *dirtyEntry) { mo.listInsertAfter(e, mo.recentTail) }

// listInsertAfter links e after at (at == nil inserts at the head).
func (mo *Monitor) listInsertAfter(e, at *dirtyEntry) {
	e.listed = true
	e.prev = at
	if at == nil {
		e.next = mo.recentHead
		mo.recentHead = e
	} else {
		e.next = at.next
		at.next = e
	}
	if e.next != nil {
		e.next.prev = e
	} else {
		mo.recentTail = e
	}
}

func (mo *Monitor) listRemove(e *dirtyEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		mo.recentHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		mo.recentTail = e.prev
	}
	e.prev, e.next, e.listed = nil, nil, false
}

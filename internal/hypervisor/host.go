package hypervisor

import (
	"fmt"

	"iorchestra/internal/blkio"
	"iorchestra/internal/bus"
	"iorchestra/internal/device"
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// IOMode selects how guest block requests are processed on the host.
type IOMode int

const (
	// ModeBackend is the classic paravirtual path: a driver-domain
	// backend processes requests (per-request CPU cost, interrupts), no
	// core is reserved. This is the paper's Baseline and DIF platform.
	ModeBackend IOMode = iota
	// ModeDedicated reserves one polling I/O core per socket (SDC and
	// IOrchestra platforms).
	ModeDedicated
)

// Config parameterizes a host.
type Config struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	// Device is the shared physical volume (the 8×SSD RAID0 by default).
	Device device.BlockDevice
	// Mode selects the I/O processing path.
	Mode IOMode
	// RouteBySocket routes requests to the I/O core of the submitting
	// process's socket (IOrchestra, Sec. 3.3). When false, every request
	// of a VM goes to its home socket's core — SDC's same-socket
	// assumption.
	RouteBySocket bool
	// RingLatency is the frontend↔backend notification latency each way.
	RingLatency sim.Duration
	// BackendCostPerReq is dom0 CPU time per request in ModeBackend
	// (VM exits, interrupt handling, grant mapping).
	BackendCostPerReq sim.Duration
	// BackendBps is the backend's per-byte processing rate (grant
	// copies); large requests occupy the backend proportionally, just as
	// they occupy a polling core (default 6 GB/s).
	BackendBps float64
	// IOCoreCostPerReq and IOCoreBps parameterize polling cores.
	IOCoreCostPerReq sim.Duration
	IOCoreBps        float64
	// StoreLatency is the system-store watch-notification latency.
	StoreLatency sim.Duration
	// MaxDeviceInFlight caps host dispatch concurrency at the device.
	MaxDeviceInFlight int
	// Trace enables the unified decision-trace recorder: store writes and
	// watch fires, guest congestion engagements, policy decisions and
	// per-request device events all land in one (sim-time, seq)-ordered
	// stream exportable as NDJSON. TraceCapacity bounds the event ring
	// (default trace.DefaultRecorderCapacity).
	Trace         bool
	TraceCapacity int
}

func (c *Config) fillDefaults() {
	if c.Name == "" {
		c.Name = "host0"
	}
	if c.Sockets <= 0 {
		c.Sockets = 2 // two six-core E5-2620s in the paper's testbed
	}
	if c.CoresPerSocket <= 0 {
		c.CoresPerSocket = 6
	}
	if c.RingLatency <= 0 {
		c.RingLatency = 25 * sim.Microsecond
	}
	if c.BackendCostPerReq <= 0 {
		// Each request costs VM exits, interrupt injection and grant
		// bookkeeping in the driver domain; eliminating this per-request
		// tax is why the dedicated polling designs exist.
		c.BackendCostPerReq = 30 * sim.Microsecond
	}
	if c.BackendBps <= 0 {
		// Grant mapping is per-page bookkeeping; the data itself moves by
		// DMA, so the effective per-byte rate is high.
		c.BackendBps = 25e9
	}
	if c.IOCoreCostPerReq <= 0 {
		c.IOCoreCostPerReq = 3 * sim.Microsecond
	}
	if c.IOCoreBps <= 0 {
		c.IOCoreBps = 25e9
	}
	if c.StoreLatency <= 0 {
		c.StoreLatency = 30 * sim.Microsecond
	}
}

// Host is one physical machine: topology, shared device, guests, and the
// host half of the I/O path.
type Host struct {
	k   *sim.Kernel
	cfg Config
	rng *stats.Stream

	st  *store.Store
	bs  *bus.Bus
	cg  *Cgroup
	dev device.BlockDevice

	iocores []*IOCore // one per socket in ModeDedicated

	backendBusy  bool
	backendQ     *sim.FIFO[*device.Request]
	backendOwner map[*device.Request]store.DomID
	backendUtil  metrics.Utilization

	guests     map[store.DomID]*GuestRuntime
	guestOrder []store.DomID
	nextDom    store.DomID
	tracer     *trace.Tracer
	rec        *trace.Recorder // nil unless Config.Trace

	// coreLoad[socket][core] counts VCPUs pinned to that core.
	coreLoad [][]int
	// pcores[socket][core] are the physical cores VCPUs execute on.
	pcores [][]*PCore

	mon *Monitor // lazily built by Monitor()
}

// GuestRuntime couples a guest with its host-side state.
type GuestRuntime struct {
	G          *guest.Guest
	Dom        *bus.Domain
	HomeSocket int
	vcpuCores  [][2]int // (socket, core) per VCPU
}

// New builds a host on kernel k. If dev is nil in cfg, the paper's RAID0
// array is created.
func New(k *sim.Kernel, cfg Config, rng *stats.Stream) *Host {
	cfg.fillDefaults()
	if cfg.Device == nil {
		cfg.Device = device.PaperArray(k, rng.Fork("array"))
	}
	st := store.New(k, cfg.StoreLatency)
	h := &Host{
		k:            k,
		cfg:          cfg,
		rng:          rng,
		st:           st,
		bs:           bus.New(k, st, cfg.RingLatency),
		dev:          cfg.Device,
		backendQ:     sim.NewFIFO[*device.Request](0),
		backendOwner: map[*device.Request]store.DomID{},
		guests:       map[store.DomID]*GuestRuntime{},
		nextDom:      1,
	}
	h.cg = NewCgroup(k, cfg.Device, cfg.MaxDeviceInFlight)
	h.tracer = trace.New(k, cfg.Device.Name(), 0)
	h.cg.SetTracer(h.tracer)
	if cfg.Trace {
		h.rec = trace.NewRecorder(k, cfg.TraceCapacity)
		h.tracer.SetRecorder(h.rec)
		st.SetRecorder(h.rec)
		if dr, ok := cfg.Device.(interface{ SetRecorder(*trace.Recorder) }); ok {
			dr.SetRecorder(h.rec)
		}
	}
	h.coreLoad = make([][]int, cfg.Sockets)
	h.pcores = make([][]*PCore, cfg.Sockets)
	for s := range h.coreLoad {
		h.coreLoad[s] = make([]int, cfg.CoresPerSocket)
		h.pcores[s] = make([]*PCore, cfg.CoresPerSocket)
		for c := range h.pcores[s] {
			h.pcores[s][c] = NewPCore(k, s, c)
		}
	}
	if cfg.Mode == ModeDedicated {
		for s := 0; s < cfg.Sockets; s++ {
			core := NewIOCore(k, s, s, h.cg, cfg.IOCoreCostPerReq, cfg.IOCoreBps)
			h.iocores = append(h.iocores, core)
			h.cg.SetWeight(core.ID(), 1)
			// Reserve core 0 of each socket for polling.
			h.coreLoad[s][0] = 1 << 20
		}
	}
	return h
}

// Kernel, Store, Bus, Device, Cgroup, IOCores expose subsystems to the
// control plane (monitoring and management modules).
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Store exposes the system store.
func (h *Host) Store() *store.Store { return h.st }

// Bus exposes the inter-domain bus.
func (h *Host) Bus() *bus.Bus { return h.bs }

// Device exposes the shared physical volume.
func (h *Host) Device() device.BlockDevice { return h.dev }

// Cgroup exposes the weighted device dispatcher.
func (h *Host) Cgroup() *Cgroup { return h.cg }

// Tracer exposes the blktrace-style host I/O event feed the monitoring
// module samples.
func (h *Host) Tracer() *trace.Tracer { return h.tracer }

// Recorder exposes the unified decision-trace recorder (nil unless the
// host was built with Config.Trace).
func (h *Host) Recorder() *trace.Recorder { return h.rec }

// IOCores lists dedicated polling cores (empty in ModeBackend).
func (h *Host) IOCores() []*IOCore { return h.iocores }

// Mode reports the configured I/O mode.
func (h *Host) Mode() IOMode { return h.cfg.Mode }

// Name reports the host name.
func (h *Host) Name() string { return h.cfg.Name }

// Guests returns runtimes in creation order.
func (h *Host) Guests() []*GuestRuntime {
	out := make([]*GuestRuntime, 0, len(h.guestOrder))
	for _, id := range h.guestOrder {
		if rt, ok := h.guests[id]; ok {
			out = append(out, rt)
		}
	}
	return out
}

// Guest returns one runtime (nil if absent).
func (h *Host) Guest(id store.DomID) *GuestRuntime { return h.guests[id] }

// CreateGuest places a VM on the host, pins its VCPUs (fill-first across
// sockets, skipping reserved I/O cores), registers it with the bus, and
// attaches its disks through paravirtual frontends. A zero cfg.ID is
// auto-assigned.
func (h *Host) CreateGuest(cfg guest.Config, disks ...guest.DiskConfig) *GuestRuntime {
	if cfg.ID == 0 {
		cfg.ID = h.nextDom
	}
	if cfg.ID >= h.nextDom {
		h.nextDom = cfg.ID + 1
	}
	if _, dup := h.guests[cfg.ID]; dup {
		panic(fmt.Sprintf("hypervisor: duplicate domain id %d", cfg.ID))
	}
	g := guest.New(h.k, cfg, h.rng.Fork(fmt.Sprintf("guest%d", cfg.ID)))
	rt := &GuestRuntime{G: g, Dom: h.bs.Register(cfg.ID)}
	h.placeVCPUs(rt)
	if len(disks) == 0 {
		disks = []guest.DiskConfig{{Name: "xvda"}}
	}
	for _, dc := range disks {
		h.attachDisk(rt, dc)
	}
	h.guests[cfg.ID] = rt
	h.guestOrder = append(h.guestOrder, cfg.ID)
	return rt
}

// placeVCPUs pins VCPUs to the least-loaded cores, filling socket by
// socket; large VMs therefore cross sockets exactly as Sec. 3.3 describes.
// Each VCPU executes its bursts on the pinned physical core, so busy
// co-located VCPUs serialize (work-conserving time sharing) while idle
// ones cost nothing.
func (h *Host) placeVCPUs(rt *GuestRuntime) {
	g := rt.G
	for i := 0; i < g.NumVCPUs(); i++ {
		s, c := h.leastLoadedCore()
		h.coreLoad[s][c]++
		rt.vcpuCores = append(rt.vcpuCores, [2]int{s, c})
		g.VCPU(i).Socket = s
		g.VCPU(i).Exec = h.pcores[s][c].Exec
		if i == 0 {
			rt.HomeSocket = s
		}
	}
}

func (h *Host) leastLoadedCore() (socket, core int) {
	best := -1
	for s := range h.coreLoad {
		for c := range h.coreLoad[s] {
			if best < 0 || h.coreLoad[s][c] < best {
				best = h.coreLoad[s][c]
				socket, core = s, c
			}
		}
	}
	return socket, core
}

// RemoveGuest releases a VM's cores and closes its caches (used by the
// dynamic-arrival experiments).
func (h *Host) RemoveGuest(id store.DomID) {
	rt := h.guests[id]
	if rt == nil {
		return
	}
	for _, sc := range rt.vcpuCores {
		h.coreLoad[sc[0]][sc[1]]--
	}
	for _, d := range rt.G.Disks() {
		d.Cache.Close()
	}
	delete(h.guests, id)
}

// attachDisk wires one virtual disk through a frontend into the host path.
func (h *Host) attachDisk(rt *GuestRuntime, dc guest.DiskConfig) {
	front := blkio.LowerFunc(func(r *device.Request) {
		// Frontend→host notification.
		h.k.After(h.cfg.RingLatency, func() {
			// Completion returns through the ring as well.
			done := r.Done
			r.Done = func() { h.k.After(h.cfg.RingLatency, done) }
			h.route(rt, r)
		})
	})
	v := rt.G.AddDisk(dc, front)
	if h.rec != nil {
		v.Queue.SetRecorder(h.rec, int(rt.G.ID()))
	}
}

// route delivers a guest request to the configured host path.
func (h *Host) route(rt *GuestRuntime, r *device.Request) {
	if h.cfg.Mode == ModeDedicated {
		socket := rt.HomeSocket
		if h.cfg.RouteBySocket {
			socket = r.Socket
		}
		if socket < 0 || socket >= len(h.iocores) {
			socket = rt.HomeSocket % len(h.iocores)
		}
		h.iocores[socket].Enqueue(rt.G.ID(), r)
		return
	}
	h.backendSubmit(rt.G.ID(), r)
}

// backendSubmit models the driver-domain backend: per-request CPU cost on
// a shared dom0 core, then weighted dispatch to the device with the VM's
// cgroup class.
func (h *Host) backendSubmit(dom store.DomID, r *device.Request) {
	h.backendOwner[r] = dom
	h.backendQ.Push(r)
	if !h.backendBusy {
		h.backendPump()
	}
}

func (h *Host) backendPump() {
	r, ok := h.backendQ.Pop()
	if !ok {
		h.backendBusy = false
		h.backendUtil.SetBusy(h.k.Now(), false)
		return
	}
	h.backendBusy = true
	h.backendUtil.SetBusy(h.k.Now(), true)
	cost := h.cfg.BackendCostPerReq +
		sim.Duration(float64(r.Size)/h.cfg.BackendBps*float64(sim.Second))
	h.k.After(cost, func() {
		dom := h.backendOwner[r]
		delete(h.backendOwner, r)
		h.cg.Submit(int(dom), r)
		h.backendPump()
	})
}

// IOCongested reports whether the host I/O subsystem is genuinely
// overcrowded: the dispatch path backlog or the device's own queue has
// crossed the congestion threshold.
func (h *Host) IOCongested() bool {
	return h.cg.Congested() || h.dev.Congested()
}

// SetGuestIOWeight sets a VM's cgroup weight on the device (backend mode).
func (h *Host) SetGuestIOWeight(dom store.DomID, w float64) {
	h.cg.SetWeight(int(dom), w)
}

// SetClassWeight sets an arbitrary dispatch class's cgroup weight on the
// device — the actuation surface co-scheduling uses for I/O-core classes
// (Sec. 3.3), so policy controllers never reach into the Cgroup itself.
func (h *Host) SetClassWeight(id int, w float64) {
	h.cg.SetWeight(id, w)
}

// TotalCores reports physical cores on the host.
func (h *Host) TotalCores() int { return h.cfg.Sockets * h.cfg.CoresPerSocket }

// CPUUtilization aggregates core usage at time now: physical-core busy
// fractions, spinning I/O cores at 100 %, and the backend's busy fraction
// — the quantity behind Fig. 10(c).
func (h *Host) CPUUtilization(now sim.Time) float64 {
	var used float64
	for s := range h.pcores {
		for c, pc := range h.pcores[s] {
			if h.cfg.Mode == ModeDedicated && c == 0 {
				continue // counted below as a spinning polling core
			}
			used += pc.UtilFraction(now)
		}
	}
	used += float64(len(h.iocores)) // polling cores always spin
	if h.cfg.Mode == ModeBackend {
		used += h.backendUtil.Fraction(now)
	}
	total := float64(h.TotalCores())
	if used > total {
		used = total
	}
	return used / total
}

// PCore returns the physical core at (socket, index), for tests and the
// monitoring module.
func (h *Host) PCore(socket, index int) *PCore { return h.pcores[socket][index] }

// BackendUtilization reports the dom0 backend core's busy fraction.
func (h *Host) BackendUtilization(now sim.Time) float64 {
	return h.backendUtil.Fraction(now)
}

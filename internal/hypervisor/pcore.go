package hypervisor

import (
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
)

// PCore is one physical core shared by the VCPUs pinned to it. It
// executes compute bursts FIFO at full speed — a work-conserving
// approximation of the Xen credit scheduler: idle co-located VCPUs cost
// nothing, busy ones interleave.
type PCore struct {
	k      *sim.Kernel
	socket int
	index  int

	busy  bool
	queue []pcoreBurst
	util  metrics.Utilization
}

type pcoreBurst struct {
	d    sim.Duration
	done func()
}

// Slice is the preemption quantum: a long burst runs one slice, then
// yields to other runnable VCPUs round-robin (credit-scheduler style), so
// short interactive bursts are not stuck behind batch compute.
const Slice = 250 * sim.Microsecond

// NewPCore builds a core at (socket, index).
func NewPCore(k *sim.Kernel, socket, index int) *PCore {
	return &PCore{k: k, socket: socket, index: index}
}

// Socket reports the core's socket.
func (c *PCore) Socket() int { return c.socket }

// Exec schedules a burst of duration d; done fires when it completes.
// Exec matches guest.ExecFunc so a VCPU can delegate to its pinned core.
func (c *PCore) Exec(d sim.Duration, done func()) {
	c.queue = append(c.queue, pcoreBurst{d: d, done: done})
	if !c.busy {
		c.dispatch()
	}
}

func (c *PCore) dispatch() {
	if len(c.queue) == 0 {
		c.busy = false
		c.util.SetBusy(c.k.Now(), false)
		return
	}
	b := c.queue[0]
	copy(c.queue, c.queue[1:])
	c.queue[len(c.queue)-1] = pcoreBurst{}
	c.queue = c.queue[:len(c.queue)-1]
	c.busy = true
	c.util.SetBusy(c.k.Now(), true)
	run := b.d
	if run > Slice && len(c.queue) > 0 {
		run = Slice
	}
	c.k.After(run, func() {
		if remaining := b.d - run; remaining > 0 {
			// Preempted: requeue the rest behind other runnables.
			c.queue = append(c.queue, pcoreBurst{d: remaining, done: b.done})
			c.dispatch()
			return
		}
		if b.done != nil {
			b.done()
		}
		c.dispatch()
	})
}

// UtilFraction reports the core's busy fraction.
func (c *PCore) UtilFraction(now sim.Time) float64 { return c.util.Fraction(now) }

// QueueLen reports runnable bursts waiting (steal-time indicator).
func (c *PCore) QueueLen() int { return len(c.queue) }

package hypervisor

import (
	"math"
	"testing"

	"iorchestra/internal/device"
	"iorchestra/internal/guest"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/trace"
)

func quietSSD(k *sim.Kernel, seed uint64) *device.SSD {
	cfg := device.Intel520Config("ssd")
	cfg.JitterFrac = 0
	cfg.WriteTailOdds = 0
	return device.NewSSD(k, cfg, stats.NewStream(seed, "ssd"))
}

func TestCgroupEqualWeightsShareEqually(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 1)
	cg := NewCgroup(k, dev, 4)
	cg.SetWeight(1, 1)
	cg.SetWeight(2, 1)
	for i := 0; i < 200; i++ {
		cg.Submit(1, &device.Request{Op: device.Read, Size: 64 << 10, Sequential: true})
		cg.Submit(2, &device.Request{Op: device.Read, Size: 64 << 10, Sequential: true})
	}
	// Run only part way so both classes are still backlogged (fairness is
	// only defined while both compete).
	k.RunUntil(20 * sim.Millisecond)
	b1, b2 := cg.BytesDispatched(1), cg.BytesDispatched(2)
	if b1 == 0 || b2 == 0 {
		t.Fatalf("no progress: %v/%v", b1, b2)
	}
	if ratio := b1 / b2; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("equal weights dispatched %v vs %v (ratio %v)", b1, b2, ratio)
	}
	k.Run()
}

func TestCgroupWeightedShares(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 2)
	cg := NewCgroup(k, dev, 4)
	cg.SetWeight(1, 3)
	cg.SetWeight(2, 1)
	for i := 0; i < 400; i++ {
		cg.Submit(1, &device.Request{Op: device.Read, Size: 64 << 10, Sequential: true})
		cg.Submit(2, &device.Request{Op: device.Read, Size: 64 << 10, Sequential: true})
	}
	k.RunUntil(20 * sim.Millisecond)
	b1, b2 := cg.BytesDispatched(1), cg.BytesDispatched(2)
	if ratio := b1 / b2; ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("3:1 weights dispatched ratio %v (%v vs %v)", ratio, b1, b2)
	}
	k.Run()
}

func TestCgroupInFlightCap(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 3)
	cg := NewCgroup(k, dev, 4)
	for i := 0; i < 50; i++ {
		cg.Submit(1, &device.Request{Op: device.Read, Size: 1 << 20, Sequential: true})
	}
	if cg.InFlight() != 4 {
		t.Fatalf("InFlight = %d, want cap 4", cg.InFlight())
	}
	if cg.Queued() != 46 {
		t.Fatalf("Queued = %d", cg.Queued())
	}
	k.Run()
	if cg.InFlight() != 0 || cg.Queued() != 0 {
		t.Fatal("not drained")
	}
}

func TestCgroupCompletionCallbacksPreserved(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 4)
	cg := NewCgroup(k, dev, 2)
	done := 0
	for i := 0; i < 10; i++ {
		cg.Submit(1, &device.Request{Op: device.Write, Size: 4096, Done: func() { done++ }})
	}
	k.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
}

func TestIOCoreProcessesAndObservesLatency(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 5)
	cg := NewCgroup(k, dev, 8)
	core := NewIOCore(k, 0, 0, cg, 3*sim.Microsecond, 6e9)
	done := 0
	for i := 0; i < 20; i++ {
		core.Enqueue(1, &device.Request{Op: device.Read, Size: 4096, Done: func() { done++ }})
	}
	k.Run()
	if done != 20 {
		t.Fatalf("done = %d", done)
	}
	if core.Processed() != 20 {
		t.Fatalf("Processed = %d", core.Processed())
	}
	if core.Latency().Count() != 20 {
		t.Fatal("latency not observed")
	}
	if core.MeanLatency(k.Now()) <= 0 {
		t.Fatal("MeanLatency not positive")
	}
	if core.Bytes() != 20*4096 {
		t.Fatalf("Bytes = %v", core.Bytes())
	}
}

func TestIOCoreDRRQuantaBiasService(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 6)
	// Large device concurrency: the polling core is the bottleneck.
	cg := NewCgroup(k, dev, 64)
	core := NewIOCore(k, 0, 0, cg, 10*sim.Microsecond, 1e9)
	core.SetQuantum(1, 4*256<<10)
	core.SetQuantum(2, 1*256<<10)
	var b1, b2 float64
	for i := 0; i < 300; i++ {
		core.Enqueue(1, &device.Request{Op: device.Read, Size: 64 << 10, Done: func() { b1 += 64 << 10 }})
		core.Enqueue(2, &device.Request{Op: device.Read, Size: 64 << 10, Done: func() { b2 += 64 << 10 }})
	}
	// Measure while both buffers are still backlogged (~200 of 600 served).
	k.RunUntil(15 * sim.Millisecond)
	if b1 == 0 || b2 == 0 {
		t.Fatalf("no progress: %v/%v", b1, b2)
	}
	if ratio := b1 / b2; ratio < 3.0 || ratio > 5.5 {
		t.Fatalf("4:1 quanta gave completion ratio %v", ratio)
	}
	k.Run()
}

func TestIOCoreEmptyBufferForfeitsCredit(t *testing.T) {
	k := sim.NewKernel()
	dev := quietSSD(k, 7)
	cg := NewCgroup(k, dev, 8)
	core := NewIOCore(k, 0, 0, cg, sim.Microsecond, 6e9)
	// VM 1 idles while VM 2 works: VM 1 must not accumulate credit.
	core.SetQuantum(1, 1<<20)
	core.SetQuantum(2, 1<<20)
	for i := 0; i < 10; i++ {
		core.Enqueue(2, &device.Request{Op: device.Read, Size: 4096})
	}
	k.Run()
	if got := core.QueuedFor(2); got != 0 {
		t.Fatalf("VM2 backlog = %d", got)
	}
	if core.Queued() != 0 {
		t.Fatal("core not drained")
	}
}

func TestHostEndToEndReadThroughBackend(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeBackend}, stats.NewStream(8, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	p := rt.G.NewProcess(1)
	d := rt.G.Disk("xvda")
	var doneAt sim.Time
	d.Read(p, 4096, false, func() { doneAt = k.Now() })
	k.Run()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// Must include two ring crossings (2×25µs), backend cost (12µs) and
	// device access (~80µs+).
	if doneAt < 100*sim.Microsecond {
		t.Fatalf("end-to-end read %v implausibly fast", doneAt)
	}
	if doneAt > 5*sim.Millisecond {
		t.Fatalf("end-to-end read %v implausibly slow", doneAt)
	}
}

func TestHostDedicatedRoutesToHomeSocket(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeDedicated, RouteBySocket: false, Sockets: 2, CoresPerSocket: 6},
		stats.NewStream(9, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	p := rt.G.NewProcess(1)
	d := rt.G.Disk("xvda")
	done := false
	d.Read(p, 4096, false, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("read lost")
	}
	home := h.IOCores()[rt.HomeSocket]
	other := h.IOCores()[1-rt.HomeSocket]
	if home.Processed() != 1 || other.Processed() != 0 {
		t.Fatalf("processed home=%d other=%d", home.Processed(), other.Processed())
	}
}

func TestHostDedicatedRouteBySocket(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeDedicated, RouteBySocket: true, Sockets: 2, CoresPerSocket: 2},
		stats.NewStream(10, "host"))
	// 2 sockets × 2 cores with core 0 reserved on each: only one free
	// core per socket, so a 2-VCPU guest spans sockets.
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	socks := rt.G.Sockets()
	if len(socks) != 2 {
		t.Fatalf("guest sockets = %v, want cross-socket placement", socks)
	}
	d := rt.G.Disk("xvda")
	p0 := rt.G.NewProcess(1) // vcpu0
	p1 := rt.G.NewProcess(1) // vcpu1 (other socket)
	d.Read(p0, 4096, false, nil)
	d.Read(p1, 4096, false, nil)
	k.Run()
	if h.IOCores()[0].Processed() != 1 || h.IOCores()[1].Processed() != 1 {
		t.Fatalf("routing by socket failed: %d/%d",
			h.IOCores()[0].Processed(), h.IOCores()[1].Processed())
	}
}

func TestPlacementOvercommitSharesCoresWorkConserving(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeBackend, Sockets: 2, CoresPerSocket: 2}, stats.NewStream(11, "host"))
	// 4 cores total; three 2-VCPU guests = 6 VCPUs → two cores carry two
	// VCPUs each.
	rt1 := h.CreateGuest(guest.Config{VCPUs: 2})
	rt2 := h.CreateGuest(guest.Config{VCPUs: 2})
	rt3 := h.CreateGuest(guest.Config{VCPUs: 2})
	// rt1's VCPU 0 and rt3's VCPU 0 share a core: concurrent bursts
	// serialize (10ms + 10ms = 20ms wall for the later one), but an idle
	// co-located VCPU costs nothing (work conserving).
	var doneA, doneB sim.Time
	rt1.G.VCPU(0).Run(10*sim.Millisecond, func() { doneA = k.Now() })
	rt3.G.VCPU(0).Run(10*sim.Millisecond, func() { doneB = k.Now() })
	k.Run()
	if doneA != 10*sim.Millisecond {
		t.Fatalf("first burst done at %v, want 10ms", doneA)
	}
	if doneB != 20*sim.Millisecond {
		t.Fatalf("second burst done at %v, want serialized 20ms", doneB)
	}
	// rt2's VCPUs are on uncontended cores: full speed.
	var doneC sim.Time
	start := k.Now()
	rt2.G.VCPU(0).Run(10*sim.Millisecond, func() { doneC = k.Now() })
	k.Run()
	if doneC-start != 10*sim.Millisecond {
		t.Fatalf("uncontended burst took %v, want 10ms", doneC-start)
	}
	h.RemoveGuest(rt3.G.ID())
}

func TestReservedIOCoresNotUsedForVCPUs(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeDedicated, Sockets: 2, CoresPerSocket: 2}, stats.NewStream(12, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 2})
	for _, sc := range rt.vcpuCores {
		if sc[1] == 0 {
			t.Fatalf("VCPU placed on reserved core: %v", sc)
		}
	}
}

func TestDuplicateDomainPanics(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{}, stats.NewStream(13, "host"))
	h.CreateGuest(guest.Config{ID: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.CreateGuest(guest.Config{ID: 5})
}

func TestCPUUtilizationAccounts(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeDedicated, Sockets: 2, CoresPerSocket: 6}, stats.NewStream(14, "host"))
	// Two spinning I/O cores out of 12 → at least 1/6 utilization.
	if got := h.CPUUtilization(sim.Second); got < 1.0/6-1e-9 {
		t.Fatalf("CPUUtilization = %v, want >= %v", got, 1.0/6)
	}
	rt := h.CreateGuest(guest.Config{VCPUs: 1})
	rt.G.VCPU(0).Run(sim.Second, nil)
	k.Run()
	got := h.CPUUtilization(k.Now())
	want := (2.0 + 1.0) / 12.0
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("CPUUtilization = %v, want ~%v", got, want)
	}
}

func TestBackendUtilizationTracksWork(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeBackend, BackendCostPerReq: sim.Millisecond}, stats.NewStream(15, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 1})
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	for i := 0; i < 5; i++ {
		d.Read(p, 4096, false, nil)
	}
	k.Run()
	if h.BackendUtilization(k.Now()) <= 0 {
		t.Fatal("backend utilization not tracked")
	}
}

func TestGuestsListingAndLookup(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{}, stats.NewStream(16, "host"))
	a := h.CreateGuest(guest.Config{VCPUs: 1})
	b := h.CreateGuest(guest.Config{VCPUs: 1})
	if len(h.Guests()) != 2 {
		t.Fatalf("Guests = %d", len(h.Guests()))
	}
	if h.Guest(a.G.ID()) != a || h.Guest(b.G.ID()) != b {
		t.Fatal("lookup broken")
	}
	h.RemoveGuest(a.G.ID())
	if len(h.Guests()) != 1 {
		t.Fatal("removal not reflected")
	}
	if h.Guest(a.G.ID()) != nil {
		t.Fatal("removed guest still present")
	}
}

func TestSetGuestIOWeightAffectsCgroup(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeBackend}, stats.NewStream(17, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 1})
	h.SetGuestIOWeight(rt.G.ID(), 4)
	if got := h.Cgroup().Weight(int(rt.G.ID())); got != 4 {
		t.Fatalf("Weight = %v", got)
	}
}

func TestHostTracerRecordsDispatchPath(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, Config{Mode: ModeBackend}, stats.NewStream(18, "host"))
	rt := h.CreateGuest(guest.Config{VCPUs: 1})
	p := rt.G.NewProcess(1)
	d := rt.G.Disk("xvda")
	for i := 0; i < 5; i++ {
		d.Read(p, 4096, false, nil)
	}
	k.Run()
	evs := h.Tracer().Events()
	var q, issue, comp int
	for _, e := range evs {
		switch e.Kind {
		case trace.Queue:
			q++
		case trace.Issue:
			issue++
		case trace.Complete:
			comp++
		}
	}
	if q != 5 || issue != 5 || comp != 5 {
		t.Fatalf("trace Q/D/C = %d/%d/%d, want 5/5/5", q, issue, comp)
	}
	if h.Tracer().CompletedBps(k.Now()) <= 0 {
		t.Fatal("tracer bandwidth window empty right after completions")
	}
}

package hypervisor

import (
	"iorchestra/internal/device"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// IOCore is a dedicated polling core serving guest request buffers, in the
// style of Efficient and Scalable Paravirtual I/O (the paper's SDC
// baseline) extended with the paper's Algorithm 3: per-VM buffers are
// served deficit-round-robin with quanta Q_i = BWmax · S^{VMi}_{SKT}, so
// time on the polling core tracks each VM's IOrchestra-computed I/O share.
type IOCore struct {
	k      *sim.Kernel
	id     int
	socket int
	out    *Cgroup

	// costPerReq is the CPU cost of polling + processing one request;
	// perByte models the data-touch cost.
	costPerReq sim.Duration
	perByteNs  float64

	buffers map[store.DomID]*coreBuffer
	order   []store.DomID
	cursor  int
	busy    bool

	// Latency on the I/O core (arrival in buffer → handed to the device):
	// the L_i the co-scheduling weight formula divides by. latWin holds
	// summed latency seconds, cnt the sample count, over the same window.
	latWin  *metrics.WindowRate
	cnt     *metrics.WindowRate
	latHist *metrics.Histogram

	processed uint64
	bytes     float64
}

type coreBuffer struct {
	dom     store.DomID
	queue   *sim.FIFO[*pendingReq]
	credit  float64
	quantum float64
}

type pendingReq struct {
	r       *device.Request
	arrived sim.Time
}

// NewIOCore builds a polling core on the given socket dispatching into
// out with class id = core id.
func NewIOCore(k *sim.Kernel, id, socket int, out *Cgroup, costPerReq sim.Duration, coreBps float64) *IOCore {
	if costPerReq <= 0 {
		costPerReq = 3 * sim.Microsecond
	}
	if coreBps <= 0 {
		coreBps = 25e9
	}
	return &IOCore{
		k:          k,
		id:         id,
		socket:     socket,
		out:        out,
		costPerReq: costPerReq,
		perByteNs:  float64(sim.Second) / coreBps,
		buffers:    map[store.DomID]*coreBuffer{},
		latWin:     metrics.NewWindowRate(sim.Second, 1024),
		cnt:        metrics.NewWindowRate(sim.Second, 1024),
		latHist:    metrics.NewHistogram(),
	}
}

// ID reports the core id; Socket its NUMA socket.
func (c *IOCore) ID() int { return c.id }

// Socket reports the core's NUMA socket.
func (c *IOCore) Socket() int { return c.socket }

// Processed reports lifetime requests handled.
func (c *IOCore) Processed() uint64 { return c.processed }

// Bytes reports lifetime bytes handled.
func (c *IOCore) Bytes() float64 { return c.bytes }

// Latency exposes the on-core latency histogram.
func (c *IOCore) Latency() *metrics.Histogram { return c.latHist }

// MeanLatency reports the trailing-window mean on-core latency in seconds
// (the L_i input to the weight redistribution formula). Zero-traffic cores
// report a small floor so the inverse-proportional formula stays finite.
func (c *IOCore) MeanLatency(now sim.Time) float64 {
	// The floor represents the expected on-core latency of a freshly
	// routed request, not zero: an idle core is attractive but not
	// infinitely so, which keeps the inverse-proportional weight formula
	// from slamming all load onto it at once.
	const floor = 100e-6
	n := c.cnt.Sum(now)
	if n == 0 {
		return floor
	}
	v := c.latWin.Sum(now) / n
	if v < floor {
		return floor
	}
	return v
}

func (c *IOCore) observe(lat sim.Duration) {
	c.latHist.Record(lat)
	c.latWin.Add(c.k.Now(), lat.Seconds())
	c.cnt.Add(c.k.Now(), 1)
}

// SetQuantum sets a VM's DRR quantum in bytes (Q_i = BWmax · S_SKT). The
// buffer is created on first use; quanta default to 256 KiB.
func (c *IOCore) SetQuantum(dom store.DomID, bytes float64) {
	b := c.buffer(dom)
	if bytes <= 0 {
		bytes = 256 << 10
	}
	b.quantum = bytes
}

// Quantum reports a VM's current quantum.
func (c *IOCore) Quantum(dom store.DomID) float64 { return c.buffer(dom).quantum }

func (c *IOCore) buffer(dom store.DomID) *coreBuffer {
	b := c.buffers[dom]
	if b == nil {
		b = &coreBuffer{dom: dom, queue: sim.NewFIFO[*pendingReq](0), quantum: 256 << 10}
		c.buffers[dom] = b
		c.order = append(c.order, dom)
	}
	return b
}

// Enqueue places a guest request in the VM's buffer on this core.
func (c *IOCore) Enqueue(dom store.DomID, r *device.Request) {
	c.buffer(dom).queue.Push(&pendingReq{r: r, arrived: c.k.Now()})
	if !c.busy {
		c.poll()
	}
}

// QueuedFor reports the backlog of one VM's buffer.
func (c *IOCore) QueuedFor(dom store.DomID) int {
	if b := c.buffers[dom]; b != nil {
		return b.queue.Len()
	}
	return 0
}

// Queued reports the total backlog on this core.
func (c *IOCore) Queued() int {
	n := 0
	for _, b := range c.buffers {
		n += b.queue.Len()
	}
	return n
}

// poll is one DRR service decision (Algorithm 3): pick the next buffer
// with work, replenish its credit on first visit this round, process its
// head request for the polling cost, hand it to the device, repeat.
func (c *IOCore) poll() {
	b := c.next()
	if b == nil {
		c.busy = false
		return
	}
	c.busy = true
	p, _ := b.queue.Pop()
	b.credit -= float64(p.r.Size)
	cost := c.costPerReq + sim.Duration(float64(p.r.Size)*c.perByteNs)
	c.k.After(cost, func() {
		c.processed++
		c.bytes += float64(p.r.Size)
		c.observe(c.k.Now() - p.arrived)
		c.out.Submit(c.id, p.r)
		c.poll()
	})
}

// next implements the credit scan: serve the current buffer while it has
// credit and work; otherwise advance, replenishing credits as rounds
// complete.
func (c *IOCore) next() *coreBuffer {
	if len(c.order) == 0 {
		return nil
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < len(c.order); i++ {
			b := c.buffers[c.order[c.cursor]]
			if b.queue.Len() == 0 {
				b.credit = 0 // Algorithm 3: empty buffer forfeits credit
				c.cursor = (c.cursor + 1) % len(c.order)
				continue
			}
			if p, _ := b.queue.Peek(); b.credit >= float64(p.r.Size) {
				return b
			}
			c.cursor = (c.cursor + 1) % len(c.order)
		}
		if sweep == 0 {
			any := false
			for _, id := range c.order {
				b := c.buffers[id]
				if b.queue.Len() > 0 {
					b.credit += b.quantum
					if p, _ := b.queue.Peek(); b.credit < float64(p.r.Size) {
						// A single request larger than the quantum must
						// still make progress (DRR anti-starvation).
						b.credit = float64(p.r.Size)
					}
					any = true
				}
			}
			if !any {
				return nil
			}
		}
	}
	return nil
}

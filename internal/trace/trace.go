// Package trace records per-device block-I/O events in the spirit of
// blktrace, which the paper's monitoring module uses to observe physical
// disk status. The tracer keeps a bounded ring of events plus windowed
// aggregates the monitoring module samples.
package trace

import (
	"fmt"

	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
)

// EventKind classifies trace events, mirroring blktrace actions.
type EventKind uint8

const (
	// Queue: request entered the device queue (blktrace Q).
	Queue EventKind = iota
	// Issue: request issued to the device (blktrace D).
	Issue
	// Complete: request finished (blktrace C).
	Complete
)

// String names the event kind with blktrace letters.
func (k EventKind) String() string {
	switch k {
	case Queue:
		return "Q"
	case Issue:
		return "D"
	default:
		return "C"
	}
}

// Event is one trace record.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Device string
	Owner  int
	Write  bool
	Size   int64
}

// String renders the event like a blktrace line.
func (e Event) String() string {
	rw := "R"
	if e.Write {
		rw = "W"
	}
	return fmt.Sprintf("%v %s %s %s %d dom%d", e.At, e.Device, e.Kind, rw, e.Size, e.Owner)
}

// Tracer collects events for one device.
type Tracer struct {
	k      *sim.Kernel
	device string
	ring   []Event
	head   int
	full   bool

	completes *metrics.WindowRate // bytes completed, trailing window
	queues    *metrics.WindowRate // requests queued, trailing window

	// rec, when set, receives each event as a typed decision-trace record
	// (dev.queue / dev.issue / dev.complete) for the unified pipeline.
	rec *Recorder
}

// New returns a tracer with a ring of the given capacity (default 4096)
// and 100 ms aggregation windows.
func New(k *sim.Kernel, device string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{
		k:         k,
		device:    device,
		ring:      make([]Event, capacity),
		completes: metrics.NewWindowRate(100*sim.Millisecond, 512),
		queues:    metrics.NewWindowRate(100*sim.Millisecond, 512),
	}
}

// SetRecorder forwards every event into the unified decision-trace
// recorder in addition to the local ring and aggregates.
func (t *Tracer) SetRecorder(r *Recorder) { t.rec = r }

// Record appends an event. Completions should use RecordComplete so the
// host-path latency reaches the decision trace.
func (t *Tracer) Record(kind EventKind, owner int, write bool, size int64) {
	t.record(kind, owner, write, size, 0)
}

// RecordComplete appends a completion event carrying the host-path
// latency (arrival at the dispatcher to completion).
func (t *Tracer) RecordComplete(owner int, write bool, size int64, latency sim.Duration) {
	t.record(Complete, owner, write, size, latency)
}

func (t *Tracer) record(kind EventKind, owner int, write bool, size int64, latency sim.Duration) {
	e := Event{At: t.k.Now(), Kind: kind, Device: t.device, Owner: owner, Write: write, Size: size}
	t.ring[t.head] = e
	t.head = (t.head + 1) % len(t.ring)
	if t.head == 0 {
		t.full = true
	}
	switch kind {
	case Complete:
		t.completes.Add(e.At, float64(size))
	case Queue:
		t.queues.Add(e.At, 1)
	}
	if t.rec != nil {
		rk := KindDevQueue
		switch kind {
		case Issue:
			rk = KindDevIssue
		case Complete:
			rk = KindDevComplete
		}
		t.rec.Record(Record{
			Kind: rk, Dom: owner, Device: t.device,
			Write: write, Size: size, Latency: latency,
		})
	}
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if !t.full {
		out := make([]Event, t.head)
		copy(out, t.ring[:t.head])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// CompletedBps reports the completion bandwidth over the trailing window.
func (t *Tracer) CompletedBps(now sim.Time) float64 { return t.completes.Rate(now) }

// QueueRate reports request arrivals per second over the trailing window.
func (t *Tracer) QueueRate(now sim.Time) float64 { return t.queues.Rate(now) }

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
)

// Kind classifies decision-trace records. Device-path kinds mirror
// blktrace's Q/D/C actions; the remaining kinds capture the control-plane
// decisions of Algorithms 1–3 and the store traffic that carries them.
// docs/ARCHITECTURE.md §7 documents which component emits each kind.
type Kind string

const (
	// KindStoreWrite is a system-store write: Dom is the writer,
	// Path/Value the node written.
	KindStoreWrite Kind = "store.write"
	// KindStoreWatch is a delivered watch notification: Dom is the
	// watching domain, Path/Value the change that fired it.
	KindStoreWatch Kind = "store.watch"

	// KindFlushOrder is a management-module flush decision (Algorithm 1):
	// flush_now=1 published to Dom/Disk carrying NrDirty and the device
	// bandwidth and utilization that justified it.
	KindFlushOrder Kind = "flush.order"
	// KindFlushSync is the guest driver's answering sync() (Algorithm 1,
	// notified branch), carrying the dirty-page count it is flushing.
	KindFlushSync Kind = "flush.sync"

	// KindCongestEngage is a guest queue crossing its congestion-on
	// threshold (QueueDepth = pending requests at that instant).
	KindCongestEngage Kind = "congest.engage"
	// KindCongestVeto is the management module ruling the host NOT
	// congested and releasing the querying guest (Algorithm 2).
	KindCongestVeto Kind = "congest.veto"
	// KindCongestConfirm is the management module confirming genuine host
	// congestion and holding the guest (Algorithm 2).
	KindCongestConfirm Kind = "congest.confirm"
	// KindCongestRelease is a held guest released on host relief, FIFO
	// with stagger (Algorithm 2).
	KindCongestRelease Kind = "congest.release"
	// KindQueueRelease is the guest-side collaborative release: avoidance
	// lifted, queue unplugged, producers woken.
	KindQueueRelease Kind = "queue.release"

	// KindCoschedUpdate is a co-scheduling weight update (Sec. 3.3):
	// CoreLatency holds the sampled per-core latencies L_i in seconds.
	KindCoschedUpdate Kind = "cosched.update"
	// KindCoschedMove is a guest driver migrating an I/O process to
	// Socket in response to published weight targets.
	KindCoschedMove Kind = "cosched.move"

	// KindDevQueue / KindDevIssue / KindDevComplete are the host dispatch
	// path's blktrace analogues (Q, D, C). KindDevComplete carries the
	// host-path latency (arrival at the dispatcher to completion).
	KindDevQueue    Kind = "dev.queue"
	KindDevIssue    Kind = "dev.issue"
	KindDevComplete Kind = "dev.complete"
	// KindDevService is a physical member device completing one request,
	// with its device-level service latency.
	KindDevService Kind = "dev.service"

	// KindFaultInject is an injected fault firing (internal/fault): Value
	// names the fault kind from the -faults spec grammar ("uncoop",
	// "crash", "restart", "watchdrop", "watchdelay", "stalewrite",
	// "stucksync", "member"), Dom/Disk/Path locate it.
	KindFaultInject Kind = "fault.inject"
	// KindHeartbeatMiss is the management module detecting a stale guest
	// heartbeat (Latency = time since the last beat); it precedes a
	// heartbeat-reason fallback.
	KindHeartbeatMiss Kind = "heartbeat.miss"
	// KindFlushTimeout is an unanswered flush_now order expiring its
	// deadline (Algorithm 1 degradation); Value carries the retry count
	// consumed so far for the (Dom, Disk) pair.
	KindFlushTimeout Kind = "flush.timeout"
	// KindReleaseRetry is the management module re-publishing an unacked
	// release_request after ReleaseAckTimeout (Algorithm 2 degradation);
	// Value carries the retry number.
	KindReleaseRetry Kind = "release.retry"
	// KindReleaseTimeout is a release_request exhausting its bounded
	// retries; the guest enters fallback.
	KindReleaseTimeout Kind = "release.timeout"
	// KindHoldTimeout is a held guest force-released after HoldDeadline
	// even though the host still looks congested — the safety valve that
	// keeps one stuck device from starving a held guest forever.
	KindHoldTimeout Kind = "hold.timeout"
	// KindFallbackEnter is a guest demoted to Baseline behavior (skipped
	// by Algorithm 1, unanswered in Algorithm 2, static in Algorithm 3);
	// Value names the reason ("heartbeat", "flush-deadline",
	// "release-deadline").
	KindFallbackEnter Kind = "fallback.enter"
	// KindFallbackExit is a guest restored to collaborative mode; Value
	// names the trigger ("driver-registered", "heartbeat-resumed").
	KindFallbackExit Kind = "fallback.exit"

	// KindWireOp is a netstore wire operation executed by the store
	// server: Dom is the connection's bound domain, Value names the opcode
	// and Path the operand (docs/WIRE_PROTOCOL.md).
	KindWireOp Kind = "wire.op"
	// KindWireConn is a netstore connection lifecycle event: Value is
	// "connect", "close" or "evict" (slow-client eviction).
	KindWireConn Kind = "wire.conn"
	// KindWireBatch is one shard-group of a batched netstore frame
	// (protocol v2): Dom is the connection's bound domain and Size the
	// number of sub-operations the group executed in a single store-loop
	// closure. Individual sub-ops are not recorded — the amortization is
	// the point (docs/WIRE_PROTOCOL.md §5).
	KindWireBatch Kind = "wire.batch"

	// Cluster federation kinds (internal/federation, docs/CLUSTER.md).
	// Each is mirrored 1:1 by a Federation counter, enforced by the
	// iorchestra-vet tracecounter pass.

	// KindClusterJoin is a hypervisor registering in the cluster host
	// registry: Host names it, Size carries its core count and Value its
	// domain class.
	KindClusterJoin Kind = "cluster.join"
	// KindClusterExpire is the registry TTL-expiring a host whose
	// heartbeat stalled: Host names it, Latency the heartbeat age.
	KindClusterExpire Kind = "cluster.expire"
	// KindClusterPlace is the placement engine admitting a guest: Host is
	// the chosen hypervisor, Path the guest uid, Size its VCPU request,
	// Weight the winning score and Value the decision mode ("enforce",
	// "permissive" or "fallback").
	KindClusterPlace Kind = "cluster.place"
	// KindClusterReject is the placement engine refusing a guest: Path is
	// the guest uid, Size its VCPU request and Value the reason
	// ("no-live-host", "no-feasible-host").
	KindClusterReject Kind = "cluster.reject"
	// KindClusterMigrateStart opens a live migration: Path is the guest
	// uid, Host the source and Value the target hypervisor.
	KindClusterMigrateStart Kind = "cluster.migrate.start"
	// KindClusterMigrateSync is one store-subtree transfer round of a
	// migration: Path is the guest uid, Host the target, Value the sync
	// mode ("full", "delta", "match") and Size the pairs applied.
	KindClusterMigrateSync Kind = "cluster.migrate.sync"
	// KindClusterMigrateDone commits a migration on the target: Path is
	// the guest uid, Host the target, Size the subtree nodes handed off
	// and Latency the freeze-to-unfreeze wall time in sim nanoseconds.
	KindClusterMigrateDone Kind = "cluster.migrate.done"
	// KindClusterMigrateAbort rolls a migration back to the source: Path
	// is the guest uid, Host the source the guest was restored on and
	// Value the reason ("target-dead", "source-dead", "diverged").
	KindClusterMigrateAbort Kind = "cluster.migrate.abort"

	// Elastic G-state kinds (internal/gstate + the core controller,
	// docs/GSTATES.md). Each is mirrored 1:1 by a Counters field,
	// enforced by the iorchestra-vet tracecounter pass.

	// KindGStateDemote is the controller stepping a guest one G-state
	// deeper under sustained contention: Value is the new state
	// ("G1".."G3"), Weight the new proportional share, Path the guest's
	// tier.
	KindGStateDemote Kind = "gstate.demote"
	// KindGStatePromote is the controller stepping a guest one G-state
	// back toward G0 on relief: Value is the new state, Weight the new
	// share, Path the guest's tier.
	KindGStatePromote Kind = "gstate.promote"
	// KindGStateViolation is an SLA-violation episode opening for a
	// guest: Path is its tier, Value the missed target ("bandwidth" or
	// "latency"). Accrued violation-seconds live in the Meter; only
	// onsets are traced.
	KindGStateViolation Kind = "gstate.violation"
	// KindGStateAdmit is admission control accepting a guest: Path is
	// its tier, Value "immediate" or "deferred" (a queued arrival
	// admitted on relief).
	KindGStateAdmit Kind = "gstate.admit"
	// KindGStateDefer is admission control parking a new bronze arrival
	// because gold is in violation: Path is the tier, Value the reason.
	KindGStateDefer Kind = "gstate.defer"
)

// Record is one decision-trace event. The zero value of every optional
// field is omitted from NDJSON so traces stay compact; At and Seq are
// stamped by the Recorder.
type Record struct {
	// Seq is a per-recorder monotonic sequence number; (At, Seq) is a
	// stable total order even for events recorded at the same sim tick.
	Seq uint64 `json:"seq"`
	// At is the simulation timestamp in nanoseconds.
	At sim.Time `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Dom is the domain the event concerns (0 = the control domain).
	Dom int `json:"dom"`

	// Disk names a virtual disk (per-disk decisions), Device a physical
	// device (device-path events), Host a hypervisor in cluster-level
	// events (federation joins, placements, migrations).
	Disk   string `json:"disk,omitempty"`
	Device string `json:"device,omitempty"`
	Host   string `json:"host,omitempty"`

	// Path and Value describe store traffic.
	Path  string `json:"path,omitempty"`
	Value string `json:"value,omitempty"`

	// Write and Size describe block requests.
	Write bool  `json:"write,omitempty"`
	Size  int64 `json:"size,omitempty"`
	// Latency is a per-request latency in nanoseconds (dev.complete:
	// host-path; dev.service: device service time).
	Latency sim.Time `json:"latency_ns,omitempty"`

	// NrDirty is a dirty-page count (flush decisions).
	NrDirty int64 `json:"nr_dirty,omitempty"`
	// DeviceBps and UtilFrac are the device observations behind a flush
	// decision (Algorithm 1's idle test).
	DeviceBps float64 `json:"device_bps,omitempty"`
	UtilFrac  float64 `json:"util_frac,omitempty"`

	// QueueDepth and DevPending are the dispatch backlog and device queue
	// depth behind a congestion verdict (Algorithm 2).
	QueueDepth int `json:"queue_depth,omitempty"`
	DevPending int `json:"dev_pending,omitempty"`

	// Socket and Weight describe co-scheduling moves; CoreLatency holds
	// the per-core latencies (seconds) behind a weight update.
	Socket      int       `json:"socket,omitempty"`
	Weight      float64   `json:"weight,omitempty"`
	CoreLatency []float64 `json:"core_latency,omitempty"`
}

// String renders the record as a one-line timeline entry.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12v dom%-3d %-16s", r.At, r.Dom, r.Kind)
	if r.Disk != "" {
		fmt.Fprintf(&b, " disk=%s", r.Disk)
	}
	if r.Device != "" {
		fmt.Fprintf(&b, " dev=%s", r.Device)
	}
	if r.Host != "" {
		fmt.Fprintf(&b, " host=%s", r.Host)
	}
	if r.Path != "" {
		fmt.Fprintf(&b, " %s=%q", r.Path, r.Value)
	}
	if r.Size > 0 {
		rw := "R"
		if r.Write {
			rw = "W"
		}
		fmt.Fprintf(&b, " %s %dB", rw, r.Size)
	}
	if r.Latency > 0 {
		fmt.Fprintf(&b, " lat=%v", r.Latency)
	}
	if r.NrDirty > 0 {
		fmt.Fprintf(&b, " nr_dirty=%d", r.NrDirty)
	}
	if r.DeviceBps > 0 {
		fmt.Fprintf(&b, " bw=%.1fMB/s", r.DeviceBps/1e6)
	}
	if r.QueueDepth > 0 {
		fmt.Fprintf(&b, " qdepth=%d", r.QueueDepth)
	}
	if r.DevPending > 0 {
		fmt.Fprintf(&b, " dev_pending=%d", r.DevPending)
	}
	if len(r.CoreLatency) > 0 {
		fmt.Fprintf(&b, " L=%v", r.CoreLatency)
	}
	if r.Kind == KindCoschedMove {
		fmt.Fprintf(&b, " ->socket%d w=%g", r.Socket, r.Weight)
	}
	return b.String()
}

// Recorder collects decision-trace records for one platform. It keeps a
// bounded ring of recent records (for NDJSON export) plus unbounded
// aggregates: per-kind counts and per-domain device-latency histograms,
// which survive ring eviction so end-of-run summaries are exact.
//
// A Recorder belongs to one simulation kernel and, like the kernel, is
// not safe for concurrent use.
type Recorder struct {
	k    *sim.Kernel
	ring []Record
	head int
	full bool
	seq  uint64

	counts map[Kind]uint64
	// devLat[dom] aggregates dev.complete host-path latencies, the feed
	// for per-run metrics summaries.
	devLat map[int]*metrics.Histogram

	// sink, when set, observes every record synchronously after it is
	// stamped — the feed for live NDJSON streaming (netstore's trace
	// endpoint). It runs on the recording goroutine and must not block.
	sink func(Record)
}

// DefaultRecorderCapacity bounds the event ring when no capacity is given.
const DefaultRecorderCapacity = 1 << 16

// NewRecorder returns a recorder bound to kernel k retaining up to
// capacity events (default DefaultRecorderCapacity).
func NewRecorder(k *sim.Kernel, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		k:      k,
		ring:   make([]Record, capacity),
		counts: map[Kind]uint64{},
		devLat: map[int]*metrics.Histogram{},
	}
}

// Record stamps rec with the current sim time and the next sequence
// number, folds it into the aggregates, and appends it to the ring.
func (r *Recorder) Record(rec Record) {
	rec.At = r.k.Now()
	rec.Seq = r.seq
	r.seq++
	r.counts[rec.Kind]++
	if rec.Kind == KindDevComplete {
		h := r.devLat[rec.Dom]
		if h == nil {
			h = metrics.NewHistogram()
			r.devLat[rec.Dom] = h
		}
		h.Record(rec.Latency)
	}
	r.ring[r.head] = rec
	r.head = (r.head + 1) % len(r.ring)
	if r.head == 0 {
		r.full = true
	}
	if r.sink != nil {
		r.sink(rec)
	}
}

// SetSink installs (or, with nil, removes) a function observing every
// stamped record as it is recorded. The sink runs synchronously on the
// recording goroutine; a slow sink slows recording, so implementations
// hand records off (e.g. to a buffered channel) rather than doing I/O.
func (r *Recorder) SetSink(fn func(Record)) { r.sink = fn }

// Recorded reports the lifetime number of records (>= len(Events())).
func (r *Recorder) Recorded() uint64 { return r.seq }

// Dropped reports records evicted from the ring by capacity pressure.
func (r *Recorder) Dropped() uint64 {
	if !r.full {
		return 0
	}
	return r.seq - uint64(len(r.ring))
}

// Count reports the lifetime number of records of one kind.
func (r *Recorder) Count(kind Kind) uint64 { return r.counts[kind] }

// Counts returns a copy of the lifetime per-kind counters.
func (r *Recorder) Counts() map[Kind]uint64 {
	out := make(map[Kind]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// DomainLatency exposes the per-domain host-path completion-latency
// histogram (nil if the domain completed no requests).
func (r *Recorder) DomainLatency(dom int) *metrics.Histogram { return r.devLat[dom] }

// LatencyPercentile reports the p-th percentile host-path completion
// latency across every domain (0 when nothing has completed) — the
// host-level health signal the federation's placement scoring reads via
// hypervisor.Monitor. Histogram merging is commutative, so the map
// iteration order does not affect the result.
func (r *Recorder) LatencyPercentile(p float64) sim.Time {
	merged := metrics.NewHistogram()
	for _, h := range r.devLat {
		merged.Merge(h)
	}
	if merged.Count() == 0 {
		return 0
	}
	return merged.Percentile(p)
}

// Events returns the retained records oldest-first. (At, Seq) is already
// non-decreasing, so no sort is needed.
func (r *Recorder) Events() []Record {
	if !r.full {
		out := make([]Record, r.head)
		copy(out, r.ring[:r.head])
		return out
	}
	out := make([]Record, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out
}

// WriteNDJSON encodes the retained records, one JSON object per line.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	return WriteNDJSON(w, r.Events())
}

// WriteNDJSON encodes records as newline-delimited JSON.
func WriteNDJSON(w io.Writer, events []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON decodes newline-delimited JSON records; blank lines are
// skipped, and a malformed line aborts with an error naming it.
func ReadNDJSON(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- Summaries --------------------------------------------------------------

// DomainSummary aggregates one domain's decision activity over a trace.
type DomainSummary struct {
	Dom        int
	Counts     map[Kind]uint64
	DevLatency *metrics.Histogram // host-path completion latencies
	First      sim.Time
	Last       sim.Time
}

// Summary aggregates a whole trace for reporting.
type Summary struct {
	Domains []*DomainSummary // ascending domain id
	Counts  map[Kind]uint64  // all domains
	First   sim.Time
	Last    sim.Time
	Total   int
}

// Summarize folds a record slice (e.g. from ReadNDJSON or
// Recorder.Events) into per-domain decision summaries.
func Summarize(events []Record) *Summary {
	s := &Summary{Counts: map[Kind]uint64{}, First: sim.Forever}
	byDom := map[int]*DomainSummary{}
	for _, e := range events {
		s.Total++
		s.Counts[e.Kind]++
		if e.At < s.First {
			s.First = e.At
		}
		if e.At > s.Last {
			s.Last = e.At
		}
		d := byDom[e.Dom]
		if d == nil {
			d = &DomainSummary{
				Dom:        e.Dom,
				Counts:     map[Kind]uint64{},
				DevLatency: metrics.NewHistogram(),
				First:      sim.Forever,
			}
			byDom[e.Dom] = d
		}
		d.Counts[e.Kind]++
		if e.At < d.First {
			d.First = e.At
		}
		if e.At > d.Last {
			d.Last = e.At
		}
		if e.Kind == KindDevComplete {
			d.DevLatency.Record(e.Latency)
		}
	}
	if s.Total == 0 {
		s.First = 0
	}
	for _, d := range byDom {
		s.Domains = append(s.Domains, d)
	}
	sort.Slice(s.Domains, func(i, j int) bool { return s.Domains[i].Dom < s.Domains[j].Dom })
	return s
}

// summaryKinds is the presentation order of decision counters.
var summaryKinds = []struct {
	kind  Kind
	label string
}{
	{KindFlushOrder, "flush orders"},
	{KindFlushSync, "flush syncs"},
	{KindCongestEngage, "congest engages"},
	{KindCongestVeto, "congest vetoes"},
	{KindCongestConfirm, "congest confirms"},
	{KindCongestRelease, "congest releases"},
	{KindQueueRelease, "queue releases"},
	{KindCoschedUpdate, "cosched updates"},
	{KindCoschedMove, "cosched moves"},
	{KindFaultInject, "injected faults"},
	{KindHeartbeatMiss, "heartbeat misses"},
	{KindFlushTimeout, "flush timeouts"},
	{KindReleaseRetry, "release retries"},
	{KindReleaseTimeout, "release timeouts"},
	{KindHoldTimeout, "hold timeouts"},
	{KindFallbackEnter, "fallbacks"},
	{KindFallbackExit, "restores"},
	{KindStoreWrite, "store writes"},
	{KindStoreWatch, "watch fires"},
	{KindWireOp, "wire ops"},
	{KindWireConn, "wire conns"},
	{KindWireBatch, "wire batches"},
	{KindClusterJoin, "cluster joins"},
	{KindClusterExpire, "cluster expiries"},
	{KindClusterPlace, "cluster placements"},
	{KindClusterReject, "cluster rejects"},
	{KindClusterMigrateStart, "migrations started"},
	{KindClusterMigrateSync, "migration sync rounds"},
	{KindClusterMigrateDone, "migrations committed"},
	{KindClusterMigrateAbort, "migrations aborted"},
	{KindGStateDemote, "gstate demotions"},
	{KindGStatePromote, "gstate promotions"},
	{KindGStateViolation, "sla violations"},
	{KindGStateAdmit, "gstate admissions"},
	{KindGStateDefer, "gstate deferrals"},
}

// Format renders the summary as the per-domain decision report the
// iorchestra-trace CLI prints.
func (s *Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %v – %v\n", s.Total, s.First, s.Last)
	for _, kl := range summaryKinds {
		if n := s.Counts[kl.kind]; n > 0 {
			fmt.Fprintf(&b, "  total %s: %d\n", kl.label, n)
		}
	}
	for _, d := range s.Domains {
		fmt.Fprintf(&b, "dom%d:", d.Dom)
		wrote := false
		for _, kl := range summaryKinds {
			if n := d.Counts[kl.kind]; n > 0 {
				if wrote {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " %d %s", n, kl.label)
				wrote = true
			}
		}
		if nc := d.Counts[KindDevComplete]; nc > 0 {
			if wrote {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %d completions (p50 %v, p99 %v device latency)",
				nc, d.DevLatency.Percentile(50), d.DevLatency.Percentile(99))
			wrote = true
		}
		if !wrote {
			b.WriteString(" no decision activity")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

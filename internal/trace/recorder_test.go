package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// TestRecorderSameTickOrdering: events recorded at the same sim tick keep
// their recording order — Seq is strictly increasing and Events() returns
// them (At, Seq)-sorted without any re-sort.
func TestRecorderSameTickOrdering(t *testing.T) {
	k := sim.NewKernel()
	r := trace.NewRecorder(k, 16)
	kinds := []trace.Kind{trace.KindFlushOrder, trace.KindCongestVeto, trace.KindCoschedUpdate, trace.KindStoreWrite}
	for i, kd := range kinds {
		r.Record(trace.Record{Kind: kd, Dom: i})
	}
	evs := r.Events()
	if len(evs) != len(kinds) {
		t.Fatalf("Events len = %d, want %d", len(evs), len(kinds))
	}
	for i, e := range evs {
		if e.At != 0 {
			t.Fatalf("event %d At = %v, want 0 (same tick)", i, e.At)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("event %d Seq = %d, want %d", i, e.Seq, i)
		}
		if e.Kind != kinds[i] {
			t.Fatalf("event %d Kind = %s, want %s (stable order)", i, e.Kind, kinds[i])
		}
	}
}

// TestRecorderRingEviction: the ring keeps the newest capacity events,
// oldest-first, while lifetime counters stay exact.
func TestRecorderRingEviction(t *testing.T) {
	k := sim.NewKernel()
	r := trace.NewRecorder(k, 4)
	for i := 0; i < 10; i++ {
		r.Record(trace.Record{Kind: trace.KindStoreWrite, Dom: i})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := r.Count(trace.KindStoreWrite); got != 10 {
		t.Fatalf("Count = %d, want 10 (lifetime, not ring)", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
}

// TestNDJSONRoundTrip: records with every field populated survive the
// encode/decode cycle byte-exactly.
func TestNDJSONRoundTrip(t *testing.T) {
	in := []trace.Record{
		{Seq: 0, At: 1_000_000, Kind: trace.KindStoreWrite, Dom: 1,
			Path: store.DiskPath(1, "xvda", "nr_dirty"), Value: "512"},
		{Seq: 1, At: 1_000_000, Kind: trace.KindFlushOrder, Dom: 1, Disk: "xvda",
			NrDirty: 512, DeviceBps: 12.5e6, UtilFrac: 0.03},
		{Seq: 2, At: 2_500_000, Kind: trace.KindCongestVeto, Dom: 2, Disk: "xvda",
			QueueDepth: 7, DevPending: 3},
		{Seq: 3, At: 2_500_000, Kind: trace.KindCoschedUpdate, Dom: 0,
			Weight: 1.75, CoreLatency: []float64{0.001, 0.004}},
		{Seq: 4, At: 3_000_000, Kind: trace.KindDevComplete, Dom: 3, Write: true,
			Size: 1 << 20, Latency: 8_100_000},
		{Seq: 5, At: 3_000_001, Kind: trace.KindCoschedMove, Dom: 3, Socket: 1, Weight: 2},
	}
	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := trace.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestReadNDJSONSkipsBlankAndReportsBadLines documents the loader's error
// contract: blank lines are fine, malformed ones abort with a line number.
func TestReadNDJSONSkipsBlankAndReportsBadLines(t *testing.T) {
	good := `{"seq":0,"at":1,"kind":"flush.order","dom":1}

{"seq":1,"at":2,"kind":"flush.sync","dom":1}
`
	out, err := trace.ReadNDJSON(strings.NewReader(good))
	if err != nil || len(out) != 2 {
		t.Fatalf("ReadNDJSON = %d records, %v", len(out), err)
	}
	_, err = trace.ReadNDJSON(strings.NewReader(good + "{not json}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("bad line error = %v, want line 4", err)
	}
}

// TestRecorderDeviceLatencyFeed: dev.complete records feed the per-domain
// metrics histograms that back per-run summaries.
func TestRecorderDeviceLatencyFeed(t *testing.T) {
	k := sim.NewKernel()
	r := trace.NewRecorder(k, 8)
	for i := 1; i <= 4; i++ {
		r.Record(trace.Record{Kind: trace.KindDevComplete, Dom: 3,
			Latency: sim.Time(i) * sim.Time(sim.Millisecond)})
	}
	h := r.DomainLatency(3)
	if h == nil || h.Count() != 4 {
		t.Fatalf("DomainLatency(3) = %v", h)
	}
	if r.DomainLatency(4) != nil {
		t.Fatal("DomainLatency(4) should be nil (no completions)")
	}
}

// TestSummarizeFormat: the CLI summary names each decision family and the
// per-domain completion latency percentiles.
func TestSummarizeFormat(t *testing.T) {
	evs := []trace.Record{
		{Seq: 0, At: 1, Kind: trace.KindFlushOrder, Dom: 3, Disk: "xvda"},
		{Seq: 1, At: 2, Kind: trace.KindFlushSync, Dom: 3, Disk: "xvda"},
		{Seq: 2, At: 3, Kind: trace.KindCongestVeto, Dom: 3},
		{Seq: 3, At: 4, Kind: trace.KindDevComplete, Dom: 3, Latency: 8_100_000},
	}
	s := trace.Summarize(evs)
	if s.Total != 4 || len(s.Domains) != 1 || s.Domains[0].Dom != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	text := s.Format()
	for _, want := range []string{"dom3:", "1 flush orders", "1 flush syncs",
		"1 congest vetoes", "1 completions"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}

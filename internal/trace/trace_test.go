package trace

import (
	"testing"

	"iorchestra/internal/sim"
)

func TestTracerRecordsAndReturnsInOrder(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, "md0", 8)
	k.At(1, func() { tr.Record(Queue, 1, false, 4096) })
	k.At(2, func() { tr.Record(Issue, 1, false, 4096) })
	k.At(3, func() { tr.Record(Complete, 1, false, 4096) })
	k.Run()
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Events = %d", len(evs))
	}
	if evs[0].Kind != Queue || evs[1].Kind != Issue || evs[2].Kind != Complete {
		t.Fatalf("order wrong: %v", evs)
	}
	if evs[0].At != 1 || evs[2].At != 3 {
		t.Fatal("timestamps wrong")
	}
}

func TestTracerRingWraps(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, "md0", 4)
	for i := 0; i < 10; i++ {
		tr.Record(Queue, i, true, 1)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events = %d, want ring size 4", len(evs))
	}
	if evs[0].Owner != 6 || evs[3].Owner != 9 {
		t.Fatalf("ring kept wrong events: %v", evs)
	}
}

func TestTracerWindowedRates(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, "md0", 0)
	k.At(sim.Millisecond, func() { tr.Record(Complete, 1, true, 1e6) })
	k.At(2*sim.Millisecond, func() { tr.Record(Complete, 1, true, 1e6) })
	k.Run()
	// 2 MB in a 100ms window = 20 MB/s.
	if got := tr.CompletedBps(k.Now()); got < 19e6 || got > 21e6 {
		t.Fatalf("CompletedBps = %v", got)
	}
	// Old events age out.
	k.At(sim.Second, func() {})
	k.Run()
	if got := tr.CompletedBps(k.Now()); got != 0 {
		t.Fatalf("CompletedBps after window = %v", got)
	}
}

func TestTracerQueueRate(t *testing.T) {
	k := sim.NewKernel()
	tr := New(k, "md0", 0)
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * sim.Millisecond
		k.At(at, func() { tr.Record(Queue, 0, false, 512) })
	}
	k.Run()
	if got := tr.QueueRate(k.Now()); got != 100 {
		t.Fatalf("QueueRate = %v, want 100/s", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Millisecond, Kind: Complete, Device: "md0", Owner: 2, Write: true, Size: 4096}
	if e.String() == "" {
		t.Fatal("empty String")
	}
	if Queue.String() != "Q" || Issue.String() != "D" || Complete.String() != "C" {
		t.Fatal("EventKind letters wrong")
	}
}

// Package apps models the distributed applications of the paper's
// evaluation on top of guest VMs: a Cassandra-style key-value store
// (driven by YCSB), the three-tier Olio social-events application (driven
// by CloudStone-style clients), and mpiBLAST scan jobs.
package apps

import (
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// NetLatency is the one-way inter-VM network latency (same rack).
const NetLatency = 100 * sim.Microsecond

// CassandraConfig tunes the node model.
type CassandraConfig struct {
	// ReadCPUTime is coordinator+row-materialization compute per read.
	ReadCPUTime sim.Duration
	// WriteCPUTime is memtable-insert compute per update.
	WriteCPUTime sim.Duration
	// RowBytes is the on-disk row size read per miss (default 8 KiB).
	RowBytes int64
	// CommitBytes is the commitlog append per update (default 4 KiB).
	CommitBytes int64
	// RowCacheHit is the fraction of reads served from the row cache.
	RowCacheHit float64
	// TwoSeekFrac reads hit two SSTables instead of one.
	TwoSeekFrac float64
	// MemtableBytes triggers a memtable flush (a large buffered
	// sequential SSTable write) once this many update bytes accumulate
	// (default 32 MiB). Zero keeps the default; negative disables.
	MemtableBytes int64
	// CompactEvery runs a compaction after this many SSTable flushes:
	// read CompactEvery×MemtableBytes sequentially, write the same amount
	// back (default 4). Negative disables.
	CompactEvery int
	// CompactChunk paces compaction I/O (default 2 MiB).
	CompactChunk int64
}

func (c *CassandraConfig) fillDefaults() {
	if c.ReadCPUTime <= 0 {
		// Row materialization, bloom filters, JVM overheads: the real
		// read path costs on the order of 100 µs of CPU.
		c.ReadCPUTime = 220 * sim.Microsecond
	}
	if c.WriteCPUTime <= 0 {
		c.WriteCPUTime = 120 * sim.Microsecond
	}
	if c.RowBytes <= 0 {
		c.RowBytes = 8 << 10
	}
	if c.CommitBytes <= 0 {
		c.CommitBytes = 8 << 10
	}
	if c.RowCacheHit <= 0 {
		c.RowCacheHit = 0.30
	}
	if c.TwoSeekFrac <= 0 {
		c.TwoSeekFrac = 0.25
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 8 << 20
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 4
	}
	if c.CompactChunk <= 0 {
		c.CompactChunk = 1 << 20
	}
}

// CassandraNode models one data node: reads hit the row cache or one/two
// SSTable seeks; updates append to the commitlog (buffered, periodic
// sync — the write-buffering that makes YCSB1 flush-sensitive) and insert
// into the memtable. Memtable flush pressure emerges from the page cache.
type CassandraNode struct {
	k   *sim.Kernel
	g   *guest.Guest
	d   *guest.VDisk
	cfg CassandraConfig
	rng *stats.Stream
	// procs is the request-stage pool (concurrent_reads/writes style);
	// ops round-robin across it so one slow op does not serialize the node.
	procs []*guest.Process
	pi    int

	readLat  *metrics.Histogram
	writeLat *metrics.Histogram

	// Background write machinery: memtable bytes since the last flush,
	// SSTable count since the last compaction, and a dedicated flush
	// process (Cassandra's flush-writer/compactor threads).
	memtable   int64
	sstables   int
	bg         *guest.Process
	compacting bool
	flushes    uint64
	compacts   uint64
}

// NewCassandraNode builds a node on guest g's disk d.
func NewCassandraNode(k *sim.Kernel, g *guest.Guest, d *guest.VDisk, cfg CassandraConfig, rng *stats.Stream) *CassandraNode {
	cfg.fillDefaults()
	n := &CassandraNode{
		k: k, g: g, d: d, cfg: cfg, rng: rng,
		bg:       g.NewProcess(1),
		readLat:  metrics.NewHistogram(),
		writeLat: metrics.NewHistogram(),
	}
	for i := 0; i < 4; i++ {
		n.procs = append(n.procs, g.NewProcess(1))
	}
	return n
}

func (n *CassandraNode) next() *guest.Process {
	n.pi++
	return n.procs[n.pi%len(n.procs)]
}

// Flushes and Compactions report background-write activity.
func (n *CassandraNode) Flushes() uint64 { return n.flushes }

// Compactions reports completed compaction rounds.
func (n *CassandraNode) Compactions() uint64 { return n.compacts }

// ReadLatency and WriteLatency expose node-local service histograms.
func (n *CassandraNode) ReadLatency() *metrics.Histogram { return n.readLat }

// WriteLatency exposes the node-local update histogram.
func (n *CassandraNode) WriteLatency() *metrics.Histogram { return n.writeLat }

// Read implements the node-local read path.
func (n *CassandraNode) Read(key int, done func()) {
	start := n.k.Now()
	finish := func() {
		n.readLat.Record(n.k.Now() - start)
		if done != nil {
			done()
		}
	}
	p := n.next()
	p.Compute(n.cfg.ReadCPUTime, func() {
		if n.rng.Float64() < n.cfg.RowCacheHit {
			finish()
			return
		}
		n.d.Read(p, n.cfg.RowBytes, false, func() {
			if n.rng.Float64() < n.cfg.TwoSeekFrac {
				n.d.Read(p, n.cfg.RowBytes, false, finish)
			} else {
				finish()
			}
		})
	})
}

// Update implements the node-local write path: commitlog append plus
// memtable insert; crossing the memtable threshold schedules an SSTable
// flush, and every CompactEvery flushes schedule a compaction — the
// write-amplification that makes YCSB1 flush-coordination-sensitive.
func (n *CassandraNode) Update(key int, done func()) {
	start := n.k.Now()
	p := n.next()
	p.Compute(n.cfg.WriteCPUTime, func() {
		n.d.Write(p, n.cfg.CommitBytes, func() {
			n.writeLat.Record(n.k.Now() - start)
			if done != nil {
				done()
			}
		})
		if n.cfg.MemtableBytes > 0 {
			n.memtable += n.cfg.CommitBytes
			if n.memtable >= n.cfg.MemtableBytes {
				n.memtable = 0
				n.flushSSTable()
			}
		}
	})
}

// flushSSTable writes one memtable's worth of data as a buffered
// sequential SSTable, in paced chunks on the background process.
func (n *CassandraNode) flushSSTable() {
	n.flushes++
	remaining := n.cfg.MemtableBytes
	var step func()
	step = func() {
		if remaining <= 0 {
			n.sstables++
			if n.cfg.CompactEvery > 0 && n.sstables >= n.cfg.CompactEvery && !n.compacting {
				n.sstables = 0
				n.compact()
			}
			return
		}
		chunk := n.cfg.CompactChunk
		if remaining < chunk {
			chunk = remaining
		}
		remaining -= chunk
		n.d.Write(n.bg, chunk, step)
	}
	step()
}

// compact streams CompactEvery SSTables through the node: sequential
// reads followed by an equal volume of buffered sequential writes.
func (n *CassandraNode) compact() {
	n.compacting = true
	total := int64(n.cfg.CompactEvery) * n.cfg.MemtableBytes
	readLeft, writeLeft := total, total
	var step func()
	step = func() {
		switch {
		case readLeft > 0:
			chunk := n.cfg.CompactChunk
			if readLeft < chunk {
				chunk = readLeft
			}
			readLeft -= chunk
			n.d.Read(n.bg, chunk, true, step)
		case writeLeft > 0:
			chunk := n.cfg.CompactChunk
			if writeLeft < chunk {
				chunk = writeLeft
			}
			writeLeft -= chunk
			n.d.Write(n.bg, chunk, step)
		default:
			n.compacting = false
			n.compacts++
		}
	}
	step()
}

// CassandraCluster shards keys across nodes and adds inter-node network
// latency for remote coordination; it implements workload.KV.
type CassandraCluster struct {
	k     *sim.Kernel
	nodes []*CassandraNode
	rng   *stats.Stream
}

// NewCassandraCluster groups nodes into one logical store.
func NewCassandraCluster(k *sim.Kernel, nodes []*CassandraNode, rng *stats.Stream) *CassandraCluster {
	if len(nodes) == 0 {
		panic("apps: empty cassandra cluster")
	}
	return &CassandraCluster{k: k, nodes: nodes, rng: rng}
}

// Nodes exposes the members.
func (c *CassandraCluster) Nodes() []*CassandraNode { return c.nodes }

// route picks the replica for a key and wraps done with network RTT when
// the coordinator (random) is not the replica.
func (c *CassandraCluster) route(key int, op func(n *CassandraNode, done func()), done func()) {
	replica := c.nodes[key%len(c.nodes)]
	if len(c.nodes) == 1 {
		op(replica, done)
		return
	}
	coordinator := c.rng.Intn(len(c.nodes))
	if c.nodes[coordinator] == replica {
		op(replica, done)
		return
	}
	// Forward hop, remote service, reply hop.
	c.k.After(NetLatency, func() {
		op(replica, func() {
			c.k.After(NetLatency, done)
		})
	})
}

// Read implements workload.KV.
func (c *CassandraCluster) Read(key int, done func()) {
	c.route(key, func(n *CassandraNode, d func()) { n.Read(key, d) }, done)
}

// Update implements workload.KV.
func (c *CassandraCluster) Update(key int, done func()) {
	c.route(key, func(n *CassandraNode, d func()) { n.Update(key, d) }, done)
}

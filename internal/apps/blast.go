package apps

import (
	"fmt"

	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/workload"
)

// BlastJob runs an mpiBLAST-style search: the sequence database is
// partitioned across worker VMs (the mpiBLAST database-segmentation
// model) and every worker scans its partition, looping for fixed-duration
// runs. The NT/NR inputs of the paper are represented by the database
// size; only the streaming access pattern matters to the I/O policies.
type BlastJob struct {
	workers []*workload.BlastScan

	remaining int
	// OnDone fires when every worker finishes (non-looping jobs).
	OnDone func()
}

// NewBlastJob partitions dbBytes evenly across the given guests (first
// disk of each). loop keeps workers scanning for fixed-duration tests.
func NewBlastJob(k *sim.Kernel, guests []*guest.Guest, dbBytes int64, loop bool, rng *stats.Stream) *BlastJob {
	if len(guests) == 0 {
		panic("apps: blast job with no workers")
	}
	part := dbBytes / int64(len(guests))
	job := &BlastJob{remaining: len(guests)}
	for i, g := range guests {
		w := workload.NewBlastScan(k, g, g.Disks()[0], part, rng.Fork(fmt.Sprintf("worker%d", i)))
		w.Loop = loop
		w.OnDone = func() {
			job.remaining--
			if job.remaining == 0 && job.OnDone != nil {
				job.OnDone()
			}
		}
		job.workers = append(job.workers, w)
	}
	return job
}

// Start launches all workers.
func (j *BlastJob) Start() {
	for _, w := range j.workers {
		w.Start()
	}
}

// Stop halts all workers.
func (j *BlastJob) Stop() {
	for _, w := range j.workers {
		w.Stop()
	}
}

// Workers exposes the per-VM scanners.
func (j *BlastJob) Workers() []*workload.BlastScan { return j.workers }

// ChunkLatency merges every worker's chunk-read latency — the mean I/O
// latency plotted in Fig. 7(a).
func (j *BlastJob) ChunkLatency() *metrics.Histogram {
	out := metrics.NewHistogram()
	for _, w := range j.workers {
		out.Merge(w.Ops().Latency)
	}
	return out
}

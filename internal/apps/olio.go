package apps

import (
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// OlioConfig tunes the three-tier social-events application (Sec. 5.1:
// Apache+PHP web VM, MySQL database VM, file-server VM, each 2 VCPU /
// 4 GB; ~40 GB dataset for 500 users).
type OlioConfig struct {
	// PHPMean is the mean web-tier render time per request.
	PHPMean sim.Duration
	// QueryCPU is database compute per query.
	QueryCPU sim.Duration
	// QueriesMin/Max bound queries per request (uniform).
	QueriesMin, QueriesMax int
	// BufferMiss is the probability a query misses the buffer pool and
	// reads a page from disk.
	BufferMiss float64
	// DBPage is the InnoDB page size (default 16 KiB).
	DBPage int64
	// StaticBytes is the file-server object size per request.
	StaticBytes int64
	// StaticFrac is the fraction of requests fetching static content.
	StaticFrac float64
	// WriteFrac is the fraction of requests that add events (DB write +
	// file upload).
	WriteFrac float64
	// UploadBytes is the file-server upload size on writes.
	UploadBytes int64
}

func (c *OlioConfig) fillDefaults() {
	if c.PHPMean <= 0 {
		c.PHPMean = 4 * sim.Millisecond
	}
	if c.QueryCPU <= 0 {
		c.QueryCPU = 300 * sim.Microsecond
	}
	if c.QueriesMin <= 0 {
		c.QueriesMin = 1
	}
	if c.QueriesMax < c.QueriesMin {
		c.QueriesMax = c.QueriesMin + 2
	}
	if c.BufferMiss <= 0 {
		c.BufferMiss = 0.6
	}
	if c.DBPage <= 0 {
		c.DBPage = 16 << 10
	}
	if c.StaticBytes <= 0 {
		c.StaticBytes = 64 << 10
	}
	if c.StaticFrac <= 0 {
		c.StaticFrac = 0.8
	}
	if c.WriteFrac <= 0 {
		c.WriteFrac = 0.1
	}
	if c.UploadBytes <= 0 {
		c.UploadBytes = 128 << 10
	}
}

// Olio is the assembled three-tier application.
type Olio struct {
	k   *sim.Kernel
	cfg OlioConfig
	rng *stats.Stream

	web, db, fs *guest.Guest
	webD        *guest.VDisk
	dbD         *guest.VDisk
	fsD         *guest.VDisk

	// Worker pools: Apache/PHP processes, MySQL threads, file-server
	// daemons. Requests round-robin across them so one slow request does
	// not serialize the tier.
	webP       []*guest.Process
	dbP        []*guest.Process
	fsP        []*guest.Process
	wi, di, fi int

	// Per-tier latency (Fig. 6: web = end-to-end, db = query, fs = op).
	webLat *metrics.Histogram
	dbLat  *metrics.Histogram
	fsLat  *metrics.Histogram
}

// NewOlio wires the application onto three guests; each guest's first
// disk carries that tier's data.
func NewOlio(k *sim.Kernel, web, db, fs *guest.Guest, cfg OlioConfig, rng *stats.Stream) *Olio {
	cfg.fillDefaults()
	o := &Olio{
		k: k, cfg: cfg, rng: rng,
		web: web, db: db, fs: fs,
		webD: web.Disks()[0], dbD: db.Disks()[0], fsD: fs.Disks()[0],
		webLat: metrics.NewHistogram(),
		dbLat:  metrics.NewHistogram(),
		fsLat:  metrics.NewHistogram(),
	}
	const workers = 8
	for i := 0; i < workers; i++ {
		o.webP = append(o.webP, web.NewProcess(1))
		o.dbP = append(o.dbP, db.NewProcess(1))
		o.fsP = append(o.fsP, fs.NewProcess(1))
	}
	return o
}

func (o *Olio) nextWeb() *guest.Process { o.wi++; return o.webP[o.wi%len(o.webP)] }
func (o *Olio) nextDB() *guest.Process  { o.di++; return o.dbP[o.di%len(o.dbP)] }
func (o *Olio) nextFS() *guest.Process  { o.fi++; return o.fsP[o.fi%len(o.fsP)] }

// WebLatency, DBLatency, FSLatency expose per-tier histograms (Fig. 6).
func (o *Olio) WebLatency() *metrics.Histogram { return o.webLat }

// DBLatency exposes per-query latency at the database VM.
func (o *Olio) DBLatency() *metrics.Histogram { return o.dbLat }

// FSLatency exposes per-operation latency at the file-server VM.
func (o *Olio) FSLatency() *metrics.Histogram { return o.fsLat }

// Request serves one page request: PHP render on the web VM, a batch of
// database queries, optional static fetch and optional event write; done
// fires when the page is complete. This is the Operation a ClosedLoop of
// CloudStone clients drives.
func (o *Olio) Request(done func()) {
	start := o.k.Now()
	finish := func() {
		o.webLat.Record(o.k.Now() - start)
		if done != nil {
			done()
		}
	}
	render := sim.DurationOf(o.rng.Exponential(1 / o.cfg.PHPMean.Seconds()))
	o.nextWeb().Compute(render, func() {
		nq := o.cfg.QueriesMin + o.rng.Intn(o.cfg.QueriesMax-o.cfg.QueriesMin+1)
		o.queries(nq, func() {
			write := o.rng.Float64() < o.cfg.WriteFrac
			if write {
				o.eventWrite(func() { o.static(finish) })
				return
			}
			o.static(finish)
		})
	})
}

// queries runs n database queries sequentially (PHP's synchronous driver).
func (o *Olio) queries(n int, done func()) {
	if n <= 0 {
		done()
		return
	}
	qStart := sim.Time(0)
	o.k.After(NetLatency, func() {
		qStart = o.k.Now()
		p := o.nextDB()
		p.Compute(o.cfg.QueryCPU, func() {
			after := func() {
				o.dbLat.Record(o.k.Now() - qStart)
				o.k.After(NetLatency, func() { o.queries(n-1, done) })
			}
			if o.rng.Float64() < o.cfg.BufferMiss {
				o.dbD.Read(p, o.cfg.DBPage, false, after)
			} else {
				after()
			}
		})
	})
}

// static fetches file-server content for most requests.
func (o *Olio) static(done func()) {
	if o.rng.Float64() >= o.cfg.StaticFrac {
		done()
		return
	}
	o.k.After(NetLatency, func() {
		fStart := o.k.Now()
		p := o.nextFS()
		o.fsD.Read(p, o.cfg.StaticBytes, false, func() {
			o.fsLat.Record(o.k.Now() - fStart)
			o.k.After(NetLatency, done)
		})
	})
}

// eventWrite performs the add-event path: a DB transaction write plus a
// file upload.
func (o *Olio) eventWrite(done func()) {
	o.k.After(NetLatency, func() {
		wStart := o.k.Now()
		p := o.nextDB()
		p.Compute(o.cfg.QueryCPU, func() {
			o.dbD.Write(p, o.cfg.DBPage, func() {
				o.dbLat.Record(o.k.Now() - wStart)
				o.k.After(NetLatency, func() {
					fStart := o.k.Now()
					fp := o.nextFS()
					o.fsD.Write(fp, o.cfg.UploadBytes, func() {
						o.fsLat.Record(o.k.Now() - fStart)
						done()
					})
				})
			})
		})
	})
}

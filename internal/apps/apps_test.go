package apps

import (
	"testing"

	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

func mkHost(seed uint64) (*sim.Kernel, *hypervisor.Host) {
	k := sim.NewKernel()
	h := hypervisor.New(k, hypervisor.Config{}, stats.NewStream(seed, "host"))
	return k, h
}

func TestCassandraNodeReadAndUpdate(t *testing.T) {
	k, h := mkHost(1)
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	n := NewCassandraNode(k, rt.G, rt.G.Disks()[0], CassandraConfig{}, stats.NewStream(2, "node"))
	reads, writes := 0, 0
	for i := 0; i < 50; i++ {
		n.Read(i, func() { reads++ })
		n.Update(i, func() { writes++ })
	}
	k.RunUntil(10 * sim.Second)
	if reads != 50 || writes != 50 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	if n.ReadLatency().Count() != 50 || n.WriteLatency().Count() != 50 {
		t.Fatal("latency histograms incomplete")
	}
	// Updates are buffered commitlog appends: they must return much
	// faster than cache-missing reads on average.
	if n.WriteLatency().Mean() > n.ReadLatency().Mean() {
		t.Fatalf("update mean %v ≥ read mean %v", n.WriteLatency().Mean(), n.ReadLatency().Mean())
	}
	// Updates dirtied the page cache.
	if rt.G.Disks()[0].Cache.WrittenBytes() == 0 {
		t.Fatal("commitlog writes missed the page cache")
	}
}

func TestCassandraClusterRoutesByKey(t *testing.T) {
	k, h := mkHost(3)
	var nodes []*CassandraNode
	for i := 0; i < 2; i++ {
		rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
		nodes = append(nodes, NewCassandraNode(k, rt.G, rt.G.Disks()[0], CassandraConfig{}, stats.NewStream(uint64(4+i), "n")))
	}
	cl := NewCassandraCluster(k, nodes, stats.NewStream(6, "cl"))
	done := 0
	for i := 0; i < 100; i++ {
		cl.Read(i, func() { done++ })
	}
	k.RunUntil(10 * sim.Second)
	if done != 100 {
		t.Fatalf("done = %d", done)
	}
	// Keys 50/50 split across the two nodes.
	c0 := nodes[0].ReadLatency().Count()
	c1 := nodes[1].ReadLatency().Count()
	if c0 != 50 || c1 != 50 {
		t.Fatalf("shard counts %d/%d, want 50/50", c0, c1)
	}
}

func TestCassandraSingleNodeNoNetworkHop(t *testing.T) {
	k, h := mkHost(7)
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	n := NewCassandraNode(k, rt.G, rt.G.Disks()[0], CassandraConfig{RowCacheHit: 1e-9}, stats.NewStream(8, "n"))
	cl := NewCassandraCluster(k, []*CassandraNode{n}, stats.NewStream(9, "cl"))
	var at sim.Time
	cl.Read(1, func() { at = k.Now() })
	k.RunUntil(sim.Second)
	if at == 0 {
		t.Fatal("read lost")
	}
}

func TestOlioRequestTraversesTiers(t *testing.T) {
	k, h := mkHost(10)
	mkG := func() *guest.Guest {
		rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
		return rt.G
	}
	o := NewOlio(k, mkG(), mkG(), mkG(), OlioConfig{}, stats.NewStream(11, "olio"))
	done := 0
	for i := 0; i < 30; i++ {
		o.Request(func() { done++ })
	}
	k.RunUntil(sim.Minute)
	if done != 30 {
		t.Fatalf("done = %d/30", done)
	}
	if o.WebLatency().Count() != 30 {
		t.Fatalf("web latencies = %d", o.WebLatency().Count())
	}
	if o.DBLatency().Count() == 0 {
		t.Fatal("no DB queries recorded")
	}
	if o.FSLatency().Count() == 0 {
		t.Fatal("no file-server ops recorded")
	}
	// End-to-end includes PHP render: mean should be several ms.
	if o.WebLatency().Mean() < 2*sim.Millisecond {
		t.Fatalf("web mean = %v, implausibly fast", o.WebLatency().Mean())
	}
	// Tiers are cheaper than the whole.
	if o.DBLatency().Mean() >= o.WebLatency().Mean() {
		t.Fatal("db tier slower than end-to-end")
	}
}

func TestBlastJobPartitionsAndCompletes(t *testing.T) {
	k, h := mkHost(12)
	var guests []*guest.Guest
	for i := 0; i < 4; i++ {
		rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 2 << 30})
		guests = append(guests, rt.G)
	}
	job := NewBlastJob(k, guests, 256<<20, false, stats.NewStream(13, "blast"))
	finished := false
	job.OnDone = func() { finished = true }
	job.Start()
	k.RunUntil(5 * sim.Minute)
	if !finished {
		t.Fatal("job never completed")
	}
	// 256 MiB / 4 workers / 4 MiB chunks = 16 chunks per worker.
	for i, w := range job.Workers() {
		if got := w.Ops().Completed(); got != 16 {
			t.Fatalf("worker %d chunks = %d, want 16", i, got)
		}
	}
	if job.ChunkLatency().Count() != 64 {
		t.Fatalf("merged latency count = %d", job.ChunkLatency().Count())
	}
}

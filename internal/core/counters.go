package core

// Counters is a point-in-time snapshot of every management-module
// counter: policy decisions (Sec. 5's measured quantities) and graceful-
// degradation events (docs/FAULTS.md). Zero values are reported for
// policies the manager was built without.
type Counters struct {
	// Algorithm 1: flush control.
	FlushNotices  uint64 // flush_now orders issued
	FlushTimeouts uint64 // orders abandoned at the deadline

	// Algorithm 2: congestion control.
	Vetoes          uint64 // queries answered "host not congested"
	Confirms        uint64 // queries answered "host congested"
	Relieves        uint64 // VMs released on host relief
	ReleaseRetries  uint64 // re-published release_request orders
	ReleaseTimeouts uint64 // releases that exhausted their retries
	HoldTimeouts    uint64 // guests force-released at the hold deadline

	// Sec. 3.3: co-scheduling.
	CoschedRuns uint64 // weight updates applied

	// Liveness middleware.
	HeartbeatMisses uint64 // stale-heartbeat detections
	Fallbacks       uint64 // guests demoted to Baseline behavior
	Restores        uint64 // guests restored to collaborative mode
}

// Counters snapshots every counter in one call; prefer it over the
// per-counter getters below.
func (m *Manager) Counters() Counters {
	var c Counters
	if fc := m.flush; fc != nil {
		c.FlushNotices = fc.notices
		c.FlushTimeouts = fc.timeouts
	}
	if cc := m.congest; cc != nil {
		c.Vetoes = cc.vetoes
		c.Confirms = cc.confirms
		c.Relieves = cc.relieves
		c.ReleaseRetries = cc.releaseRetries
		c.ReleaseTimeouts = cc.releaseTimeouts
		c.HoldTimeouts = cc.holdTimeouts
	}
	if sc := m.cosched; sc != nil {
		c.CoschedRuns = sc.runs
	}
	c.HeartbeatMisses = m.live.heartbeatMisses
	c.Fallbacks = m.live.fallbacks
	c.Restores = m.live.restores
	return c
}

// FlushNotices reports flush_now orders issued.
//
// Deprecated: use Counters.
func (m *Manager) FlushNotices() uint64 { return m.Counters().FlushNotices }

// Vetoes reports congestion queries answered "host not congested".
//
// Deprecated: use Counters.
func (m *Manager) Vetoes() uint64 { return m.Counters().Vetoes }

// Confirms reports congestion queries answered "host congested".
//
// Deprecated: use Counters.
func (m *Manager) Confirms() uint64 { return m.Counters().Confirms }

// Relieves reports VMs released when the host device left congestion.
//
// Deprecated: use Counters.
func (m *Manager) Relieves() uint64 { return m.Counters().Relieves }

// CoschedRuns reports co-scheduling weight updates applied.
//
// Deprecated: use Counters.
func (m *Manager) CoschedRuns() uint64 { return m.Counters().CoschedRuns }

// FlushTimeouts reports flush orders abandoned at the deadline.
//
// Deprecated: use Counters.
func (m *Manager) FlushTimeouts() uint64 { return m.Counters().FlushTimeouts }

// HeartbeatMisses reports stale-heartbeat detections.
//
// Deprecated: use Counters.
func (m *Manager) HeartbeatMisses() uint64 { return m.Counters().HeartbeatMisses }

// ReleaseRetries reports re-published release_request orders.
//
// Deprecated: use Counters.
func (m *Manager) ReleaseRetries() uint64 { return m.Counters().ReleaseRetries }

// ReleaseTimeouts reports releases that exhausted their retries.
//
// Deprecated: use Counters.
func (m *Manager) ReleaseTimeouts() uint64 { return m.Counters().ReleaseTimeouts }

// HoldTimeouts reports guests force-released at the hold deadline.
//
// Deprecated: use Counters.
func (m *Manager) HoldTimeouts() uint64 { return m.Counters().HoldTimeouts }

// Fallbacks reports guests demoted to Baseline behavior.
//
// Deprecated: use Counters.
func (m *Manager) Fallbacks() uint64 { return m.Counters().Fallbacks }

// Restores reports guests restored to collaborative mode.
//
// Deprecated: use Counters.
func (m *Manager) Restores() uint64 { return m.Counters().Restores }

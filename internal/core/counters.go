package core

// Counters is a point-in-time snapshot of every management-module
// counter: policy decisions (Sec. 5's measured quantities) and graceful-
// degradation events (docs/FAULTS.md). Zero values are reported for
// policies the manager was built without.
type Counters struct {
	// Algorithm 1: flush control.
	FlushNotices  uint64 // flush_now orders issued
	FlushTimeouts uint64 // orders abandoned at the deadline

	// Algorithm 2: congestion control.
	Vetoes          uint64 // queries answered "host not congested"
	Confirms        uint64 // queries answered "host congested"
	Relieves        uint64 // VMs released on host relief
	ReleaseRetries  uint64 // re-published release_request orders
	ReleaseTimeouts uint64 // releases that exhausted their retries
	HoldTimeouts    uint64 // guests force-released at the hold deadline

	// Sec. 3.3: co-scheduling.
	CoschedRuns uint64 // weight updates applied

	// Elastic G-states (docs/GSTATES.md).
	GStateDemotes  uint64 // guests stepped one G-state deeper
	GStatePromotes uint64 // guests stepped back toward G0
	SLAViolations  uint64 // violation episodes opened (onsets, not seconds)
	GStateAdmits   uint64 // guests admitted (immediate or deferred)
	GStateDefers   uint64 // bronze arrivals parked while gold was violating

	// Liveness middleware.
	HeartbeatMisses uint64 // stale-heartbeat detections
	Fallbacks       uint64 // guests demoted to Baseline behavior
	Restores        uint64 // guests restored to collaborative mode
}

// Counters snapshots every counter in one call. It is the only counter
// read surface: PR 3's deprecated per-counter getters are gone, and the
// nodeprecated vet pass keeps Manager from regrowing them.
func (m *Manager) Counters() Counters {
	var c Counters
	if fc := m.flush; fc != nil {
		c.FlushNotices = fc.notices
		c.FlushTimeouts = fc.timeouts
	}
	if cc := m.congest; cc != nil {
		c.Vetoes = cc.vetoes
		c.Confirms = cc.confirms
		c.Relieves = cc.relieves
		c.ReleaseRetries = cc.releaseRetries
		c.ReleaseTimeouts = cc.releaseTimeouts
		c.HoldTimeouts = cc.holdTimeouts
	}
	if sc := m.cosched; sc != nil {
		c.CoschedRuns = sc.runs
	}
	if gc := m.gstate; gc != nil {
		c.GStateDemotes = gc.gstateDemotes
		c.GStatePromotes = gc.gstatePromotes
		c.SLAViolations = gc.gstateViolations
		c.GStateAdmits = gc.gstateAdmits
		c.GStateDefers = gc.gstateDefers
	}
	c.HeartbeatMisses = m.live.heartbeatMisses
	c.Fallbacks = m.live.fallbacks
	c.Restores = m.live.restores
	return c
}

package core

import (
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// coschedController is Sec. 3.3, inter-domain I/O co-scheduling: it
// samples per-core latencies through the Monitor, publishes
// redistribution targets for cross-socket VMs (inverse-proportional to
// latency), computes per-VM per-socket I/O shares, and actuates DRR
// quanta on the I/O cores and cgroup weights at the device.
type coschedController struct {
	m   *Manager
	cfg *ManagerConfig
	mon *hypervisor.Monitor

	sample cadence

	lastRatio float64
	lastApply sim.Time
	runs      uint64
	off       map[store.DomID]bool
}

func newCoschedController(m *Manager) *coschedController {
	cc := &coschedController{
		m:   m,
		cfg: &m.cfg,
		mon: m.h.Monitor(),
		off: map[store.DomID]bool{},
	}
	// Sample faster than the apply cadence so the >50 %-change trigger
	// can fire early, as the paper specifies.
	period := m.cfg.CoschedInterval / 5
	if period <= 0 {
		period = 200 * sim.Millisecond
	}
	cc.sample = cadence{k: m.k, period: period, tick: cc.coschedTick}
	return cc
}

func (cc *coschedController) Name() string { return "cosched" }

// Attach starts the sampling cadence: a new guest may immediately shift
// the per-core latency distribution.
func (cc *coschedController) Attach(rt *hypervisor.GuestRuntime) { cc.sample.arm() }

// Detach forgets the guest's co-scheduling exclusion flag.
func (cc *coschedController) Detach(dom store.DomID) { delete(cc.off, dom) }

// Routes: guest-published per-socket weights and the share denominator;
// any change re-arms sampling.
func (cc *coschedController) Routes() Routes {
	return Routes{
		DomainKeys:     []string{keyTotalWeight},
		DomainPrefixes: []string{keyWeightPrefix + "/"},
	}
}

func (cc *coschedController) OnStoreEvent(ev StoreEvent) { cc.sample.arm() }

// OnFallback: nothing to unstick — the per-tick loops below skip
// fallen-back guests, leaving their last-applied static weights in place
// (Algorithm 3 degradation).
func (cc *coschedController) OnFallback(dom store.DomID) {}

// OnRestore: the next sample naturally folds the guest back in.
func (cc *coschedController) OnRestore(dom store.DomID) {}

// disable excludes one guest from co-scheduling decisions (weight
// targets and quanta); ablation experiments use it to hold a guest's
// process placement static on an otherwise identical platform.
func (cc *coschedController) disable(dom store.DomID) { cc.off[dom] = true }

// coschedTick samples per-core latencies, publishes redistribution targets
// for cross-socket VMs, computes per-VM per-socket I/O shares, and applies
// DRR quanta and cgroup weights. It reports whether co-scheduling should
// keep sampling (any I/O-core traffic or cross-socket guests present).
func (cc *coschedController) coschedTick() bool {
	m := cc.m
	cores := m.h.IOCores()
	now := m.k.Now()
	if len(cores) == 0 || len(m.drivers) == 0 {
		return false
	}
	// Monitoring module: collect L_i per core.
	cs := cc.mon.CoreSnapshot(now)
	lat := cs.Latencies
	// Change detection on the max/min latency ratio.
	ratio := maxOf(lat) / minOf(lat)
	due := now-cc.lastApply >= cc.cfg.CoschedInterval
	changed := cc.lastRatio > 0 && relDelta(ratio, cc.lastRatio) > cc.cfg.CoschedChangeFrac
	if !due && !changed {
		return cs.AnyTraffic || m.crossSocketGuestExists()
	}
	cc.lastApply = now
	cc.lastRatio = ratio
	cc.runs++
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind:        trace.KindCoschedUpdate,
			CoreLatency: append([]float64(nil), lat...),
			Weight:      ratio,
		})
	}

	// Weight targets: fraction on socket i ∝ 1/L_i (the paper's inverse-
	// proportional distribution). Published only when some core is
	// genuinely contended; otherwise placement is left alone.
	var invSum float64
	for _, l := range lat {
		invSum += 1 / l
	}
	contended := maxOf(lat) >= cc.cfg.CoschedMinLatency.Seconds()
	for _, dom := range sortedDomIDs(m.drivers) {
		drv := m.drivers[dom]
		if !contended || len(drv.g.Sockets()) < 2 || cc.off[dom] || !m.live.cooperative(dom) {
			continue
		}
		for _, s := range drv.g.Sockets() {
			if s >= 0 && s < len(lat) {
				f := (1 / lat[s]) / invSum
				// Keep every socket carrying some share so the
				// distribution converges instead of oscillating between
				// extremes.
				if f < 0.1 {
					f = 0.1
				}
				if f > 0.9 {
					f = 0.9
				}
				m.st.WriteFloat(store.Dom0, store.DomainPath(dom)+"/"+socketKey(keyTargetPrefix, s), f)
			}
		}
	}

	// Shares: S_SKT = W_SKT / ΣP · S^(VM); equal S^(VM) across enabled
	// guests unless overridden in the store.
	nGuests := len(m.drivers)
	bwMax := cc.mon.CapacityBps()
	type coreShare struct{ sum float64 }
	shares := make([]coreShare, len(cores))
	for _, dom := range sortedDomIDs(m.drivers) {
		drv := m.drivers[dom]
		if cc.off[dom] || m.live.inFallback(dom) {
			// Fallback guests keep their last-applied static weights
			// (Algorithm 3 degradation) — their stale store state must
			// not keep steering quanta.
			continue
		}
		base := store.DomainPath(dom)
		vmShare, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyVMShare, 1.0/float64(nGuests))
		totalW, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyTotalWeight, 0)
		if totalW <= 0 {
			continue
		}
		for _, s := range drv.g.Sockets() {
			w, _ := m.st.ReadFloat(store.Dom0, base+"/"+socketKey(keyWeightPrefix, s), 0)
			sSkt := w / totalW * vmShare
			m.st.WriteFloat(store.Dom0, base+"/"+socketKey(keySharePrefix, s), sSkt)
			if s >= 0 && s < len(cores) {
				// Q_i = BWmax · S_SKT, scaled to a 1 ms round.
				cores[s].SetQuantum(dom, bwMax*sSkt/1000)
				shares[s].sum += sSkt
			}
		}
	}
	// The sum of shares on a socket is its I/O core's weight at the
	// device (Sec. 3.3: "cgroups with these I/O cores' weights").
	for i, c := range cores {
		w := shares[i].sum
		if w <= 0 {
			w = 0.01
		}
		m.h.SetClassWeight(c.ID(), w)
	}
	return cs.AnyTraffic || m.crossSocketGuestExists()
}

func maxOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

func minOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}

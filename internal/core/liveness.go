package core

import (
	"sort"

	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// liveness is the cross-cutting degradation middleware that wraps every
// policy controller (docs/FAULTS.md). The collaborative functions assume
// a live driver on the other side of the store; when one guest stops
// cooperating — no driver, crashed driver, stuck sync, lost
// notifications — liveness demotes exactly that guest to Baseline
// behavior and notifies each registered FallbackHook so the policies can
// unstick anything they were holding or expecting from it. Siblings keep
// full collaboration.
//
// Policies consume it through two calls: cooperative(dom) at decision
// sites (which lazily runs the heartbeat check, so detection costs
// nothing while everyone is healthy) and inFallback(dom) for read-only
// gating. They never touch the fallback state directly.
type liveness struct {
	k   *sim.Kernel
	st  *store.Store
	rec *trace.Recorder

	timeout sim.Duration // HeartbeatTimeout
	penalty sim.Duration // FallbackPenalty

	// present reports whether a driver is attached for dom; a guest
	// without one (never enabled, or disabled) is never cooperative.
	present func(store.DomID) bool
	// hooks receive demote/restore callbacks in registration order.
	hooks []FallbackHook

	// beats holds per-guest heartbeat stamps, doubly linked in stamp
	// order (stamps are always "now", so a beat moves its node to the
	// back in O(1) and the stale set is always a prefix). This keeps
	// sweepStale proportional to the number of stale guests, not the
	// number of guests.
	beats              map[store.DomID]*beatNode
	beatHead, beatTail *beatNode
	fallback           map[store.DomID]*fallbackState

	heartbeatMisses uint64
	fallbacks       uint64
	restores        uint64
}

// beatNode is one guest's last-heartbeat stamp on the beat list.
type beatNode struct {
	dom        store.DomID
	last       sim.Time
	prev, next *beatNode
}

// fallbackState marks a guest demoted to Baseline behavior.
type fallbackState struct {
	reason string
	since  sim.Time
}

func newLiveness(k *sim.Kernel, st *store.Store, rec *trace.Recorder,
	cfg *ManagerConfig, present func(store.DomID) bool) *liveness {
	return &liveness{
		k:        k,
		st:       st,
		rec:      rec,
		timeout:  cfg.HeartbeatTimeout,
		penalty:  cfg.FallbackPenalty,
		present:  present,
		beats:    map[store.DomID]*beatNode{},
		fallback: map[store.DomID]*fallbackState{},
	}
}

// Routes: liveness consumes the guest driver's registration and
// heartbeat keys.
func (lv *liveness) Routes() Routes {
	return Routes{DomainKeys: []string{keyHeartbeat, keyDriverPresent}}
}

func (lv *liveness) OnStoreEvent(ev StoreEvent) {
	switch ev.Key {
	case keyHeartbeat:
		lv.noteHeartbeat(ev.Dom)
	case keyDriverPresent:
		if ev.Value == "1" {
			lv.noteDriverRegistered(ev.Dom)
		}
	}
}

// cooperative reports whether dom may participate in collaborative
// decisions, lazily demoting it on a stale heartbeat — the check runs at
// decision sites, so detection costs nothing while everyone is healthy.
func (lv *liveness) cooperative(dom store.DomID) bool {
	if !lv.present(dom) {
		return false
	}
	if lv.fallback[dom] != nil {
		return false
	}
	if t := lv.timeout; t > 0 {
		if n := lv.beats[dom]; n != nil && lv.k.Now()-n.last > t {
			lv.heartbeatMisses++
			if lv.rec != nil {
				lv.rec.Record(trace.Record{
					Kind: trace.KindHeartbeatMiss, Dom: int(dom),
					Latency: lv.k.Now() - n.last,
				})
			}
			lv.enterFallback(dom, "heartbeat")
			return false
		}
	}
	return true
}

// sweepStale demotes every stale-hearted guest accepted by keep, in
// ascending dom order. It replicates what a decision site's
// cooperative() calls over that dom set would do, but walks only the
// stale prefix of the beat list — O(stale guests), not O(guests). The
// flush controller runs it with keep = Monitor.Observed before each
// argmax, preserving the demotion side effects of the replaced
// every-dirty-dom scan.
func (lv *liveness) sweepStale(keep func(store.DomID) bool) {
	if lv.timeout <= 0 {
		return
	}
	now := lv.k.Now()
	var stale []store.DomID
	for n := lv.beatHead; n != nil && now-n.last > lv.timeout; n = n.next {
		if lv.fallback[n.dom] == nil && lv.present(n.dom) && keep(n.dom) {
			stale = append(stale, n.dom)
		}
	}
	if len(stale) == 0 {
		return
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, dom := range stale {
		lv.cooperative(dom)
	}
}

// noteBeat stamps dom's heartbeat at now, keeping the beat list in
// stamp order (move to back).
func (lv *liveness) noteBeat(dom store.DomID) {
	n := lv.beats[dom]
	if n == nil {
		n = &beatNode{dom: dom}
		lv.beats[dom] = n
	} else if n == lv.beatTail {
		n.last = lv.k.Now()
		return
	} else {
		lv.beatUnlink(n)
	}
	n.last = lv.k.Now()
	n.prev = lv.beatTail
	if lv.beatTail != nil {
		lv.beatTail.next = n
	} else {
		lv.beatHead = n
	}
	lv.beatTail = n
}

func (lv *liveness) beatUnlink(n *beatNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		lv.beatHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		lv.beatTail = n.prev
	}
	n.prev, n.next = nil, nil
}

// inFallback is the read-only probe (no lazy heartbeat check).
func (lv *liveness) inFallback(dom store.DomID) bool { return lv.fallback[dom] != nil }

func (lv *liveness) noteHeartbeat(dom store.DomID) {
	lv.noteBeat(dom)
	// A fallen-back guest that has served its penalty and is beating
	// again earns its way back to collaborative mode.
	if fb := lv.fallback[dom]; fb != nil && lv.k.Now()-fb.since >= lv.penalty {
		lv.exitFallback(dom, "heartbeat-resumed")
	}
}

func (lv *liveness) noteDriverRegistered(dom store.DomID) {
	lv.noteBeat(dom)
	if lv.fallback[dom] != nil {
		lv.exitFallback(dom, "driver-registered")
	}
}

// enterFallback demotes dom to Baseline behavior, then lets every policy
// unstick anything it was holding or expecting from the guest.
func (lv *liveness) enterFallback(dom store.DomID, reason string) {
	if lv.fallback[dom] != nil {
		return
	}
	lv.fallback[dom] = &fallbackState{reason: reason, since: lv.k.Now()}
	lv.fallbacks++
	if lv.rec != nil {
		lv.rec.Record(trace.Record{Kind: trace.KindFallbackEnter, Dom: int(dom), Value: reason})
	}
	lv.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, true)
	for _, h := range lv.hooks {
		h.OnFallback(dom)
	}
}

// exitFallback restores dom to collaborative mode with a clean slate.
func (lv *liveness) exitFallback(dom store.DomID, reason string) {
	if lv.fallback[dom] == nil {
		return
	}
	delete(lv.fallback, dom)
	lv.restores++
	if lv.rec != nil {
		lv.rec.Record(trace.Record{Kind: trace.KindFallbackExit, Dom: int(dom), Value: reason})
	}
	lv.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, false)
	lv.noteBeat(dom) // fresh grace window
	for _, h := range lv.hooks {
		h.OnRestore(dom)
	}
}

// noteAttached seeds the grace window: registration counts as the first
// heartbeat (the real one arrives through the store a notification
// latency later).
func (lv *liveness) noteAttached(dom store.DomID) { lv.noteBeat(dom) }

// forget drops all liveness state for a removed guest.
func (lv *liveness) forget(dom store.DomID) {
	if n := lv.beats[dom]; n != nil {
		lv.beatUnlink(n)
		delete(lv.beats, dom)
	}
	delete(lv.fallback, dom)
}

package core

import (
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// liveness is the cross-cutting degradation middleware that wraps every
// policy controller (docs/FAULTS.md). The collaborative functions assume
// a live driver on the other side of the store; when one guest stops
// cooperating — no driver, crashed driver, stuck sync, lost
// notifications — liveness demotes exactly that guest to Baseline
// behavior and notifies each registered FallbackHook so the policies can
// unstick anything they were holding or expecting from it. Siblings keep
// full collaboration.
//
// Policies consume it through two calls: cooperative(dom) at decision
// sites (which lazily runs the heartbeat check, so detection costs
// nothing while everyone is healthy) and inFallback(dom) for read-only
// gating. They never touch the fallback state directly.
type liveness struct {
	k   *sim.Kernel
	st  *store.Store
	rec *trace.Recorder

	timeout sim.Duration // HeartbeatTimeout
	penalty sim.Duration // FallbackPenalty

	// present reports whether a driver is attached for dom; a guest
	// without one (never enabled, or disabled) is never cooperative.
	present func(store.DomID) bool
	// hooks receive demote/restore callbacks in registration order.
	hooks []FallbackHook

	lastBeat map[store.DomID]sim.Time
	fallback map[store.DomID]*fallbackState

	heartbeatMisses uint64
	fallbacks       uint64
	restores        uint64
}

// fallbackState marks a guest demoted to Baseline behavior.
type fallbackState struct {
	reason string
	since  sim.Time
}

func newLiveness(k *sim.Kernel, st *store.Store, rec *trace.Recorder,
	cfg *ManagerConfig, present func(store.DomID) bool) *liveness {
	return &liveness{
		k:        k,
		st:       st,
		rec:      rec,
		timeout:  cfg.HeartbeatTimeout,
		penalty:  cfg.FallbackPenalty,
		present:  present,
		lastBeat: map[store.DomID]sim.Time{},
		fallback: map[store.DomID]*fallbackState{},
	}
}

// Routes: liveness consumes the guest driver's registration and
// heartbeat keys.
func (lv *liveness) Routes() Routes {
	return Routes{DomainKeys: []string{keyHeartbeat, keyDriverPresent}}
}

func (lv *liveness) OnStoreEvent(ev StoreEvent) {
	switch ev.Key {
	case keyHeartbeat:
		lv.noteHeartbeat(ev.Dom)
	case keyDriverPresent:
		if ev.Value == "1" {
			lv.noteDriverRegistered(ev.Dom)
		}
	}
}

// cooperative reports whether dom may participate in collaborative
// decisions, lazily demoting it on a stale heartbeat — the check runs at
// decision sites, so detection costs nothing while everyone is healthy.
func (lv *liveness) cooperative(dom store.DomID) bool {
	if !lv.present(dom) {
		return false
	}
	if lv.fallback[dom] != nil {
		return false
	}
	if t := lv.timeout; t > 0 {
		if last, ok := lv.lastBeat[dom]; ok && lv.k.Now()-last > t {
			lv.heartbeatMisses++
			if lv.rec != nil {
				lv.rec.Record(trace.Record{
					Kind: trace.KindHeartbeatMiss, Dom: int(dom),
					Latency: lv.k.Now() - last,
				})
			}
			lv.enterFallback(dom, "heartbeat")
			return false
		}
	}
	return true
}

// inFallback is the read-only probe (no lazy heartbeat check).
func (lv *liveness) inFallback(dom store.DomID) bool { return lv.fallback[dom] != nil }

func (lv *liveness) noteHeartbeat(dom store.DomID) {
	lv.lastBeat[dom] = lv.k.Now()
	// A fallen-back guest that has served its penalty and is beating
	// again earns its way back to collaborative mode.
	if fb := lv.fallback[dom]; fb != nil && lv.k.Now()-fb.since >= lv.penalty {
		lv.exitFallback(dom, "heartbeat-resumed")
	}
}

func (lv *liveness) noteDriverRegistered(dom store.DomID) {
	lv.lastBeat[dom] = lv.k.Now()
	if lv.fallback[dom] != nil {
		lv.exitFallback(dom, "driver-registered")
	}
}

// enterFallback demotes dom to Baseline behavior, then lets every policy
// unstick anything it was holding or expecting from the guest.
func (lv *liveness) enterFallback(dom store.DomID, reason string) {
	if lv.fallback[dom] != nil {
		return
	}
	lv.fallback[dom] = &fallbackState{reason: reason, since: lv.k.Now()}
	lv.fallbacks++
	if lv.rec != nil {
		lv.rec.Record(trace.Record{Kind: trace.KindFallbackEnter, Dom: int(dom), Value: reason})
	}
	lv.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, true)
	for _, h := range lv.hooks {
		h.OnFallback(dom)
	}
}

// exitFallback restores dom to collaborative mode with a clean slate.
func (lv *liveness) exitFallback(dom store.DomID, reason string) {
	if lv.fallback[dom] == nil {
		return
	}
	delete(lv.fallback, dom)
	lv.restores++
	if lv.rec != nil {
		lv.rec.Record(trace.Record{Kind: trace.KindFallbackExit, Dom: int(dom), Value: reason})
	}
	lv.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, false)
	lv.lastBeat[dom] = lv.k.Now() // fresh grace window
	for _, h := range lv.hooks {
		h.OnRestore(dom)
	}
}

// noteAttached seeds the grace window: registration counts as the first
// heartbeat (the real one arrives through the store a notification
// latency later).
func (lv *liveness) noteAttached(dom store.DomID) { lv.lastBeat[dom] = lv.k.Now() }

// forget drops all liveness state for a removed guest.
func (lv *liveness) forget(dom store.DomID) {
	delete(lv.lastBeat, dom)
	delete(lv.fallback, dom)
}

package core

import (
	"iorchestra/internal/gstate"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// gstateController is the elastic G-state policy (docs/GSTATES.md): a
// tiered-SLA performance-state controller layered on the paper's
// management module. It watches host pressure through the Monitor —
// never the devices directly — and walks guests down the G0..G3 ladder
// under sustained contention (bronze before silver before gold, the
// internal/gstate machine's victim order), actuating each step through
// the host cgroup weight and the guest's published sla/state key (the
// driver scales its congestion thresholds to match). Admission control
// defers new bronze arrivals while gold is in violation; the Meter
// accrues per-tier violation-seconds that the SLA experiments report.
//
// The split with internal/gstate is deliberate: that package is the
// pure model (tiers, machine, meter), this controller owns every
// measurement, hysteresis decision and actuation, exactly as the other
// policies do. G-state weights assume the backend I/O model (class id =
// domain id); combining GState with Cosched — which drives the same
// cgroup weights per I/O core — is unsupported.
type gstateController struct {
	m   *Manager
	cfg *ManagerConfig
	mon *hypervisor.Monitor

	machine *gstate.Machine
	meter   *gstate.Meter

	sample cadence

	// Hysteresis: consecutive pressure/relief verdicts. A demotion fires
	// after GStateDemoteAfter pressure ticks, a promotion after
	// GStatePromoteAfter relief ticks; the mid-band resets both so noisy
	// utilization cannot ratchet guests down.
	pressTicks  int
	reliefTicks int

	// lat holds per-guest (count, sum) latency snapshots; the delta
	// between ticks is the windowed mean the latency verdict uses.
	lat map[store.DomID]latWindow

	// pending holds deferred arrivals in FIFO order.
	pending []store.DomID

	// Decision counters, mirrored 1:1 by gstate.* trace kinds
	// (tracecounter vet pass).
	gstateDemotes    uint64
	gstatePromotes   uint64
	gstateViolations uint64
	gstateAdmits     uint64
	gstateDefers     uint64
}

type latWindow struct {
	count uint64
	sum   sim.Time
}

func newGStateController(m *Manager) *gstateController {
	gc := &gstateController{
		m:       m,
		cfg:     &m.cfg,
		mon:     m.h.Monitor(),
		machine: gstate.NewMachine(),
		meter:   gstate.NewMeter(),
		lat:     map[store.DomID]latWindow{},
	}
	gc.sample = cadence{k: m.k, period: m.cfg.GStateInterval, tick: gc.gstateTick}
	return gc
}

func (gc *gstateController) Name() string { return "gstate" }

// Attach runs admission control for a new guest: read its declared SLA,
// defer a bronze arrival while gold is in violation (parked at the
// bronze floor weight until relief), admit everyone else at G0.
func (gc *gstateController) Attach(rt *hypervisor.GuestRuntime) {
	dom := rt.G.ID()
	tier, sla := gstate.ReadSLA(gc.m.st, dom)
	if tier == gstate.Bronze && gc.meter.AnyViolating(gstate.Gold) {
		gc.gstateDefers++
		if gc.m.rec != nil {
			gc.m.rec.Record(trace.Record{
				Kind: trace.KindGStateDefer, Dom: int(dom),
				Path: string(tier), Value: "gold-violating",
			})
		}
		// Park the arrival at the bronze floor: it runs, but at the
		// deepest throttle, so it cannot widen the violation it arrived
		// into. admitPending lifts it on relief.
		gc.applyState(dom, gstate.Bronze.Floor())
		gc.pending = append(gc.pending, dom)
		gc.sample.arm()
		return
	}
	gc.admitGuest(dom, tier, sla, "immediate")
	gc.sample.arm()
}

// Detach forgets the guest: any open violation episode is closed and
// accrued so a removed guest's half-open violation still lands in the
// books.
func (gc *gstateController) Detach(dom store.DomID) {
	gc.machine.Remove(dom)
	gc.meter.Forget(dom, gc.m.k.Now())
	delete(gc.lat, dom)
	for i, d := range gc.pending {
		if d == dom {
			gc.pending = append(gc.pending[:i], gc.pending[i+1:]...)
			break
		}
	}
}

// Meter exposes the violation accounting for experiments and tests.
func (gc *gstateController) Meter() *gstate.Meter { return gc.meter }

// admitGuest installs a guest in the state machine at G0 and publishes
// the full-speed state.
func (gc *gstateController) admitGuest(dom store.DomID, tier gstate.Tier, sla gstate.SLA, how string) {
	gc.machine.Add(dom, tier, sla)
	gc.applyState(dom, gstate.G0)
	gc.gstateAdmits++
	if gc.m.rec != nil {
		gc.m.rec.Record(trace.Record{
			Kind: trace.KindGStateAdmit, Dom: int(dom),
			Path: string(tier), Value: how,
		})
	}
}

// applyState actuates one guest's G-state: the proportional-share
// weight at the host cgroup (backend mode: class id = domain id) and
// the published sla/state index the guest driver answers by scaling its
// congestion thresholds — the collaborative half of the actuation.
func (gc *gstateController) applyState(dom store.DomID, st gstate.State) {
	gc.m.h.SetClassWeight(int(dom), st.Weight())
	key := store.SLAKey(dom, gstate.KeyState)
	if !gc.m.st.Exists(key) {
		// The node is Dom0-owned (the manager publishes it), but the
		// guest driver watches it — and the store checks the watcher's
		// read permission at notification time. Create the node and
		// grant the guest read BEFORE the first meaningful write, or
		// every state notification would be silently filtered and the
		// guest would never scale its congestion thresholds.
		gc.m.st.WriteInt(store.Dom0, key, int64(gstate.G0))
		gc.m.st.Grant(store.Dom0, key, dom, store.PermRead)
	}
	gc.m.st.WriteInt(store.Dom0, key, int64(st))
}

// gstateTick is the control loop: classify host pressure, run the
// hysteresis counters, demote or promote one step when a threshold is
// crossed, meter per-guest SLA violations, and admit deferred arrivals
// on relief. It reports whether any guest remains to watch.
func (gc *gstateController) gstateTick() bool {
	now := gc.m.k.Now()
	if gc.machine.Len() == 0 && len(gc.pending) == 0 {
		return false
	}
	ds := gc.mon.DeviceSnapshot(now)
	congested := gc.mon.IOCongested()
	pressure := ds.UtilFraction >= gc.cfg.GStateHighUtil || congested
	relief := ds.UtilFraction <= gc.cfg.GStateLowUtil && !congested
	switch {
	case pressure:
		gc.pressTicks++
		gc.reliefTicks = 0
	case relief:
		gc.reliefTicks++
		gc.pressTicks = 0
	default:
		gc.pressTicks = 0
		gc.reliefTicks = 0
	}
	if gc.pressTicks >= gc.cfg.GStateDemoteAfter {
		gc.pressTicks = 0
		gc.demoteOne()
	}
	if gc.reliefTicks >= gc.cfg.GStatePromoteAfter {
		gc.reliefTicks = 0
		gc.promoteOne()
	}
	gc.observeViolations(now)
	gc.admitPending()
	return true
}

// demoteOne applies one demotion step to the machine's chosen victim.
func (gc *gstateController) demoteOne() {
	dom, st, ok := gc.machine.Demote()
	if !ok {
		return // every guest is at its tier floor
	}
	gc.applyState(dom, st)
	gc.gstateDemotes++
	if gc.m.rec != nil {
		gc.m.rec.Record(trace.Record{
			Kind: trace.KindGStateDemote, Dom: int(dom),
			Path: string(gc.machine.Tier(dom)), Value: st.String(), Weight: st.Weight(),
		})
	}
}

// promoteOne applies one promotion step (gold recovers first).
func (gc *gstateController) promoteOne() {
	dom, st, ok := gc.machine.Promote()
	if !ok {
		return // everyone already at G0
	}
	gc.applyState(dom, st)
	gc.gstatePromotes++
	if gc.m.rec != nil {
		gc.m.rec.Record(trace.Record{
			Kind: trace.KindGStatePromote, Dom: int(dom),
			Path: string(gc.machine.Tier(dom)), Value: st.String(), Weight: st.Weight(),
		})
	}
}

// observeViolations renders one verdict per admitted guest and folds it
// into the meter. Bandwidth: the applied weight sits below the declared
// minimum fraction (demotion past the floor the SLA promises).
// Latency: the windowed mean of the guest's host-path completions
// exceeds its budget — a lifetime percentile would stay saturated
// forever and never clear on relief.
func (gc *gstateController) observeViolations(now sim.Time) {
	for _, dom := range gc.machine.Doms() {
		tier := gc.machine.Tier(dom)
		sla := gc.machine.SLA(dom)
		reason := ""
		if gc.machine.State(dom).Weight() < sla.MinBWFrac {
			reason = "bandwidth"
		}
		count, sum := gc.mon.GuestPathStats(dom)
		if w := gc.lat[dom]; count > w.count && reason == "" {
			mean := sim.Duration(sum-w.sum) / sim.Duration(count-w.count)
			if mean > sla.P99Budget {
				reason = "latency"
			}
		}
		gc.lat[dom] = latWindow{count: count, sum: sum}
		if onset := gc.meter.Observe(dom, tier, reason != "", now); onset {
			gc.gstateViolations++
			if gc.m.rec != nil {
				gc.m.rec.Record(trace.Record{
					Kind: trace.KindGStateViolation, Dom: int(dom),
					Path: string(tier), Value: reason,
				})
			}
		}
	}
}

// admitPending lifts one deferred arrival per tick once gold is clean —
// gradual, so a burst of parked bronze guests cannot re-trigger the
// violation they were deferred for in a single step.
func (gc *gstateController) admitPending() {
	if len(gc.pending) == 0 || gc.meter.AnyViolating(gstate.Gold) {
		return
	}
	dom := gc.pending[0]
	gc.pending = gc.pending[1:]
	if gc.m.drivers[dom] == nil {
		return // guest left before admission
	}
	tier, sla := gstate.ReadSLA(gc.m.st, dom)
	gc.admitGuest(dom, tier, sla, "deferred")
}
